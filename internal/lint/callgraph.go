package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strconv"
	"strings"
)

// This file is the whole-program layer under the interprocedural analyzers
// (lockorder, spawnjoin, blockwhilelocked): a CHA-style static call graph over
// go/types, one node per declared function or function literal, with
// per-function concurrency facts (lock acquisitions, blocking operations,
// goroutine spawns, join signals) attached by the walker in locksummary.go
// and transitive summaries computed by fixpoint here.
//
// Identity is string-keyed, not pointer-keyed: the parallel loader gives each
// package its own importer, so a dependency's *types.Func objects are not
// shared across packages. funcKey and lock/channel classes canonicalize to
// "pkgpath.Type.name" strings, which unify across type-checker universes.
//
// Resolution policy (the precision/coverage trade each analyzer leans on):
//
//   - direct calls to declared functions and concrete methods: static edges;
//   - interface method calls: recorded as dynamic sites and resolved by CHA
//     (method name + receiver-stripped signature string) — used only where
//     missing an edge hides a bug (lockorder's may-acquire sets);
//   - calls through func-typed variables and fields: unresolved (no edge);
//     a function literal passed as a call argument is conservatively assumed
//     to be invoked by the callee (covers sync.Once.Do, sort.Slice);
//   - `go` statements: spawn sites, never call edges — a goroutine's blocking
//     and locking happen on another stack.

// program is the whole-program view RunAll hands to Analyzer.RunProgram.
type program struct {
	pkgs  []*Package
	fset  *token.FileSet
	nodes map[string]*funcNode
	order []*funcNode // nodes sorted by key, the deterministic iteration order

	// cha maps "methodName|signature" to the keys of every concrete method
	// with that shape, the class-hierarchy approximation for dynamic calls.
	cha map[string][]string

	// chanBuf records, per channel class, whether every make() observed for
	// it is unbuffered. Classes with no observed make stay absent (unknown).
	chanBuf map[string]bufState

	// directives holds //lint:<name> suppression comments as "file:line:name".
	directives map[string]bool
}

type bufState int

const (
	bufUnknown bufState = iota
	bufUnbuffered
	bufBuffered
)

// acqSite is one mutex Lock/RLock call.
type acqSite struct {
	class     string
	method    string
	pos       token.Pos
	held      []string // lock classes lexically held when this acquisition runs
	annotated bool     // //lint:lockorder at the site
}

// blockSite is one potentially-blocking operation.
type blockSite struct {
	what      string // "channel receive", "select without default", ...
	pos       token.Pos
	held      []string
	condOwner string // for sync.Cond.Wait: owner prefix of the cond's class
}

// callEdge is one resolved call site (static target).
type callEdge struct {
	callee string
	pos    token.Pos
	held   []string
}

// dynCall is an interface-dispatched call site, resolved later by CHA.
type dynCall struct {
	name string
	sig  string
	pos  token.Pos
	held []string
}

// spawnSite is one `go` statement.
type spawnSite struct {
	callee string // "" when the spawned callee cannot be resolved statically
	pos    token.Pos
}

// sendSig is one channel send, a completion signal for spawnjoin.
type sendSig struct {
	class string
	pos   token.Pos
}

// blockReason explains why a function may block, for interprocedural
// diagnostics ("call to F may block (channel receive at file.go:12)").
type blockReason struct {
	what string
	pos  token.Pos
	via  string // callee display name when the reason is inherited, else ""
}

// funcNode is one function (declared or literal) in the call graph.
type funcNode struct {
	key     string
	display string
	pkg     *Package
	pos     token.Pos

	acquires []acqSite
	blocks   []blockSite
	calls    []callEdge
	dyncalls []dynCall
	spawns   []spawnSite

	// Own join signals (spawnjoin's evidence set).
	wgDone    bool
	chanClose bool
	ctxDone   bool
	sends     []sendSig
	recvs     map[string]bool // channel classes this function receives from

	// Transitive summaries (computed by computeSummaries).
	mayAcquire map[string]token.Pos
	mayBlock   *blockReason
	joinsWG    bool
	joinsClose bool
	joinsCtx   bool
	joinSends  []sendSig
}

// shortName compresses "repro/internal/core.workQueue.mu" to
// "core.workQueue.mu" for diagnostics.
func shortName(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

// ownerPrefix returns the "pkgpath.Type" prefix of a field class, used to
// pair a sync.Cond with the mutex of the same struct.
func ownerPrefix(class string) string {
	if i := strings.LastIndex(class, "."); i >= 0 {
		return class[:i]
	}
	return class
}

// funcKey canonicalizes a function object to its cross-package identity.
func funcKey(fn *types.Func) string {
	fn = fn.Origin()
	pkgPath := "_"
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return pkgPath + "." + n.Obj().Name() + "." + fn.Name()
		}
		return pkgPath + "." + types.TypeString(t, nil) + "." + fn.Name()
	}
	return pkgPath + "." + fn.Name()
}

// sigKey is the CHA matching key: method name plus the receiver-stripped
// signature rendered with full package paths.
func sigKey(name string, sig *types.Signature) string {
	qual := func(p *types.Package) string { return p.Path() }
	return name + "|" + types.TypeString(types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic()), qual)
}

// buildProgram constructs the call graph and summaries for one package set.
func buildProgram(pkgs []*Package) *program {
	prog := &program{
		pkgs:       pkgs,
		nodes:      make(map[string]*funcNode),
		cha:        make(map[string][]string),
		chanBuf:    make(map[string]bufState),
		directives: make(map[string]bool),
	}
	if len(pkgs) > 0 {
		prog.fset = pkgs[0].Fset
	}
	for _, p := range pkgs {
		prog.collectDirectives(p)
		prog.collectChanMakes(p)
	}
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, _ := p.Info.Defs[fn.Name].(*types.Func)
				if obj == nil {
					continue
				}
				key := funcKey(obj)
				node := &funcNode{
					key:     key,
					display: shortName(key),
					pkg:     p,
					pos:     fn.Pos(),
					recvs:   make(map[string]bool),
				}
				prog.nodes[key] = node
				if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
					prog.cha[sigKey(obj.Name(), sig)] = append(prog.cha[sigKey(obj.Name(), sig)], key)
				}
				w := &bodyWalker{prog: prog, p: p, node: node, lits: make(map[*ast.FuncLit]string)}
				w.list(fn.Body.List, nil)
			}
		}
	}
	prog.order = make([]*funcNode, 0, len(prog.nodes))
	for _, n := range prog.nodes {
		prog.order = append(prog.order, n)
	}
	sort.Slice(prog.order, func(i, j int) bool { return prog.order[i].key < prog.order[j].key })
	for _, keys := range prog.cha {
		sort.Strings(keys)
	}
	// Calls that leave the program (or go through an interface) to a method
	// whose name promises blocking — Wait, ReadAt, WriteAt, Sleep — become
	// blocking sites of the caller: their bodies are invisible, so the name
	// is the only evidence available.
	for _, n := range prog.nodes {
		for _, c := range n.calls {
			if prog.nodes[c.callee] != nil {
				continue
			}
			name := c.callee[strings.LastIndex(c.callee, ".")+1:]
			if externalBlocking[name] {
				n.blocks = append(n.blocks, blockSite{what: "call to " + shortName(c.callee), pos: c.pos, held: c.held})
			}
		}
		for _, d := range n.dyncalls {
			if externalBlocking[d.name] {
				n.blocks = append(n.blocks, blockSite{what: "interface call to " + d.name, pos: d.pos, held: d.held})
			}
		}
	}
	prog.computeSummaries()
	return prog
}

// collectDirectives records every //lint:<name> comment position so analyzers
// can honor site suppressions (same line as the flagged statement, or the
// line directly above it).
func (prog *program) collectDirectives(p *Package) {
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, "//lint:") {
					continue
				}
				name := strings.TrimPrefix(text, "//lint:")
				if i := strings.IndexAny(name, " \t"); i >= 0 {
					name = name[:i]
				}
				pos := p.Fset.Position(c.Pos())
				prog.directives[pos.Filename+":"+strconv.Itoa(pos.Line)+":"+name] = true
			}
		}
	}
}

// suppressed reports whether a //lint:<name> directive covers pos: on the
// same source line (trailing comment) or the line above (own-line comment).
func (prog *program) suppressed(name string, pos token.Pos) bool {
	if prog.fset == nil {
		return false
	}
	pp := prog.fset.Position(pos)
	return prog.directives[pp.Filename+":"+strconv.Itoa(pp.Line)+":"+name] ||
		prog.directives[pp.Filename+":"+strconv.Itoa(pp.Line-1)+":"+name]
}

// collectChanMakes scans a package for make(chan ...) expressions whose
// destination resolves to a class (a struct field, package variable, or local
// variable) and records whether the channel is provably unbuffered.
func (prog *program) collectChanMakes(p *Package) {
	record := func(target ast.Expr, mk *ast.CallExpr) {
		class := chanClass(p, target)
		if class == "" {
			return
		}
		state := bufUnbuffered
		if len(mk.Args) >= 2 {
			state = bufBuffered
			if tv, ok := p.Info.Types[mk.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
				state = bufUnbuffered
			}
		}
		if prev, ok := prog.chanBuf[class]; ok && prev != state {
			prog.chanBuf[class] = bufBuffered // mixed: stay lenient
			return
		}
		prog.chanBuf[class] = state
	}
	asChanMake := func(e ast.Expr) *ast.CallExpr {
		call, ok := e.(*ast.CallExpr)
		if !ok || !isBuiltin(p, call, "make") || len(call.Args) == 0 {
			return nil
		}
		if t := p.Info.TypeOf(call.Args[0]); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				return call
			}
		}
		return nil
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.AssignStmt:
				if len(node.Lhs) == len(node.Rhs) {
					for i, rhs := range node.Rhs {
						if mk := asChanMake(rhs); mk != nil {
							record(node.Lhs[i], mk)
						}
					}
				}
			case *ast.ValueSpec:
				if len(node.Names) == len(node.Values) {
					for i, rhs := range node.Values {
						if mk := asChanMake(rhs); mk != nil {
							record(node.Names[i], mk)
						}
					}
				}
			case *ast.CompositeLit:
				for _, el := range node.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if mk := asChanMake(kv.Value); mk != nil {
						if key, ok := kv.Key.(*ast.Ident); ok {
							record(key, mk)
						}
					}
				}
			}
			return true
		})
	}
}

// classOf canonicalizes the lock or channel expression e to a cross-package
// identity: "pkgpath.Type.field" for struct fields, "pkgpath.name" for
// package variables, "pkgpath.name@file:line" (the declaration site) for
// locals, so the same local referenced from a closure resolves identically.
func classOf(p *Package, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return classOf(p, x.X)
	case *ast.StarExpr:
		return classOf(p, x.X)
	case *ast.UnaryExpr:
		return classOf(p, x.X)
	case *ast.IndexExpr:
		return classOf(p, x.X)
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			t := sel.Recv()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + x.Sel.Name
			}
		}
		if id, ok := x.X.(*ast.Ident); ok {
			if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Path() + "." + x.Sel.Name
			}
		}
		return p.PkgPath + "." + types.ExprString(x)
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if obj == nil {
			obj = p.Info.Defs[x]
		}
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		// Local variable: key by declaration site so every closure that
		// captures it agrees on the class.
		dp := p.Fset.Position(obj.Pos())
		return obj.Pkg().Path() + "." + obj.Name() + "@" + path.Base(dp.Filename) + ":" + strconv.Itoa(dp.Line)
	}
	return ""
}

// chanClass is classOf restricted to channel-typed expressions.
func chanClass(p *Package, e ast.Expr) string {
	t := p.Info.TypeOf(e)
	if t == nil {
		return ""
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return ""
	}
	return classOf(p, e)
}

// computeSummaries runs the interprocedural fixpoints: may-acquire lock sets
// (through static and CHA-resolved dynamic calls), may-block reasons (static
// calls only — CHA would drown blockwhilelocked in false positives), and
// join-signal closures for spawnjoin (static calls only; a spawned goroutine
// does not join its spawner's spawner).
func (prog *program) computeSummaries() {
	for _, n := range prog.order {
		n.mayAcquire = make(map[string]token.Pos)
		for _, a := range n.acquires {
			addWitness(n.mayAcquire, a.class, a.pos)
		}
		n.joinsWG, n.joinsClose, n.joinsCtx = n.wgDone, n.chanClose, n.ctxDone
		n.joinSends = append([]sendSig(nil), n.sends...)
	}
	for changed := true; changed; {
		changed = false
		for _, n := range prog.order {
			for _, c := range n.calls {
				callee := prog.nodes[c.callee]
				if callee == nil {
					continue
				}
				for class, pos := range callee.mayAcquire {
					if addWitness(n.mayAcquire, class, pos) {
						changed = true
					}
				}
				if mergeJoins(n, callee) {
					changed = true
				}
				if n.mayBlock == nil && callee.mayBlock != nil {
					n.mayBlock = &blockReason{what: callee.mayBlock.what, pos: callee.mayBlock.pos, via: callee.display}
					changed = true
				}
			}
			for _, d := range n.dyncalls {
				for _, key := range prog.cha[d.sig] {
					callee := prog.nodes[key]
					if callee == nil {
						continue
					}
					for class, pos := range callee.mayAcquire {
						if addWitness(n.mayAcquire, class, pos) {
							changed = true
						}
					}
				}
			}
			if n.mayBlock == nil && len(n.blocks) > 0 {
				b := n.blocks[0]
				for _, cand := range n.blocks {
					if cand.pos < b.pos {
						b = cand
					}
				}
				n.mayBlock = &blockReason{what: b.what, pos: b.pos}
				changed = true
			}
		}
	}
}

// addWitness records class with the smallest (deterministic) witness pos.
func addWitness(m map[string]token.Pos, class string, pos token.Pos) bool {
	if prev, ok := m[class]; ok {
		if pos < prev {
			m[class] = pos
		}
		return false
	}
	m[class] = pos
	return true
}

// mergeJoins folds callee's join signals into n, reporting any change.
func mergeJoins(n, callee *funcNode) bool {
	changed := false
	if callee.joinsWG && !n.joinsWG {
		n.joinsWG, changed = true, true
	}
	if callee.joinsClose && !n.joinsClose {
		n.joinsClose, changed = true, true
	}
	if callee.joinsCtx && !n.joinsCtx {
		n.joinsCtx, changed = true, true
	}
	for _, s := range callee.joinSends {
		found := false
		for _, own := range n.joinSends {
			if own.class == s.class {
				found = true
				break
			}
		}
		if !found {
			n.joinSends = append(n.joinSends, s)
			changed = true
		}
	}
	return changed
}

// posLabel renders a position as "file.go:line" for inclusion in messages
// (base name only, so diagnostics are stable across checkouts).
func (prog *program) posLabel(pos token.Pos) string {
	pp := prog.fset.Position(pos)
	return path.Base(pp.Filename) + ":" + strconv.Itoa(pp.Line)
}
