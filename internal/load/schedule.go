package load

import (
	"math/rand/v2"
	"time"
)

// Request is one scheduled arrival: everything a target needs to fire the
// query and everything the report needs to judge the reply.
type Request struct {
	// N is the arrival index (schedule order).
	N int `json:"n"`
	// At is the arrival offset from the start of the run.
	At time.Duration `json:"at"`
	// Tenant and Class go out as the X-Tenant / X-SLO-Class headers.
	Tenant string `json:"tenant"`
	Class  string `json:"class"`
	// Kernel is bfs, sssp, or cc.
	Kernel string `json:"kernel"`
	// Source is the query's source vertex (0 for cc).
	Source uint64 `json:"source"`
	// Deadline is the latency budget, sent as timeout_ms.
	Deadline time.Duration `json:"deadline"`
}

// BuildSchedule draws the whole arrival schedule from cfg's seed: arrival
// times from the inter-arrival process, tenants and kernels from their
// weight tables, sources from the source distribution. Every draw comes
// from one PCG stream in a fixed order, so the same config always yields
// the identical schedule — the property that makes FIFO-vs-priority runs a
// paired comparison rather than two different workloads.
func BuildSchedule(cfg *Config) ([]Request, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9E3779B97F4A7C15))
	arrivals := newArrivals(cfg, rng)
	source := newSource(cfg, rng)
	kernelNames, kernelWeights := cfg.kernels()
	tenantWeights := make([]float64, len(cfg.Tenants))
	for i, t := range cfg.Tenants {
		tenantWeights[i] = t.Weight
	}

	schedule := make([]Request, cfg.Requests)
	var at time.Duration
	for i := range schedule {
		at += arrivals.next()
		tenant := cfg.Tenants[weightedPick(rng, tenantWeights)]
		kernel := kernelNames[weightedPick(rng, kernelWeights)]
		src := source.pick()
		if kernel == "cc" {
			src = 0 // cc has no source; keep the schedule canonical
		}
		schedule[i] = Request{
			N:        i,
			At:       at,
			Tenant:   tenant.Name,
			Class:    tenant.Class,
			Kernel:   kernel,
			Source:   src,
			Deadline: tenant.Deadline,
		}
	}
	return schedule, nil
}

// weightedPick draws an index proportionally to weights. Weights are
// validated positive-sum before this runs.
func weightedPick(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
