package server

import (
	"container/heap"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Admission control: the SEM device services a bounded number of concurrent
// operations (ssd.Profile.Channels) and every traversal multiplies into
// hundreds of worker goroutines, so an unbounded query intake would
// oversubscribe the device and collapse every query's latency at once.
// admission caps running traversals at MaxConcurrent, parks up to MaxQueue
// excess requests on a wait queue, and sheds everything beyond that
// immediately — bounded concurrency, bounded queue, bounded wait.
//
// The wait queue is not FIFO by default. Under overload a FIFO queue gives
// every class the same p99, which is exactly backwards: the point of SLO
// classes is that a flood of batch traffic must not push interactive
// traffic's tail past its deadline. The queue is therefore a priority heap
// ordered by (SLO class rank, remaining deadline budget): a freed slot goes
// to the highest class first, and within a class to the request whose
// deadline expires soonest (earliest-deadline-first). A full queue does not
// blindly 429 either: if the newcomer outranks the worst parked waiter, the
// worst waiter is displaced (it gets the 429) and the newcomer takes its
// place — otherwise a batch flood that fills the queue first would lock
// interactive traffic out entirely. Config.Admission "fifo" restores strict
// arrival order (and plain reject-newest-on-full) for comparison runs.
//
// Deadline-aware shedding (Config.Shedding "deadline", the default) rejects
// a request at enqueue time when the estimated queue wait would consume its
// whole latency budget — a 503 now instead of a guaranteed 503/504 after
// QueueTimeout of dead waiting. The estimate is an EWMA of recent service
// times scaled by how many drain rounds stand ahead of the request — ahead
// in queue order, not arrival order, so under the priority policy a gold
// request is judged only against the waiters that would actually be served
// before it. The estimate is deliberately coarse (a scheduler hint, not a
// promise) and errs toward admitting: with no observations yet it never
// sheds. A queued request whose deadline expires before a slot frees is
// likewise shed at the deadline instead of waiting out the timer.

// ErrOverloaded reports that the admission queue is full; the handler maps it
// to 429 Too Many Requests.
var ErrOverloaded = errors.New("server: admission queue full")

// ErrQueueTimeout reports that a queued request waited QueueTimeout without a
// traversal slot freeing up; the handler maps it to 503 Service Unavailable.
var ErrQueueTimeout = errors.New("server: timed out waiting for a traversal slot")

// ErrDeadlineShed reports that a request was rejected because its latency
// budget cannot survive the queue: either the estimated wait already exceeds
// the remaining budget at enqueue time, or the deadline expired while
// queued. The handler maps it to 503 Service Unavailable.
var ErrDeadlineShed = errors.New("server: deadline budget exhausted before admission")

// waiter is one parked request. index is its heap position (-1 once popped
// or removed), grant is closed when the outcome is decided: a slot handoff,
// or displacement by a better waiter (displaced is set before the close, so
// the close's happens-before edge publishes it).
type waiter struct {
	class     SLOClass
	deadline  time.Time // zero = no deadline
	seq       uint64    // arrival order; FIFO key and final tiebreak
	index     int
	displaced bool
	grant     chan struct{}
}

// waiterQueue implements heap.Interface over *waiter with the admission
// policy's ordering.
type waiterQueue struct {
	ws   []*waiter
	fifo bool
}

func (q *waiterQueue) Len() int { return len(q.ws) }

func (q *waiterQueue) Less(i, j int) bool { return q.before(q.ws[i], q.ws[j]) }

// before is the admission policy's ordering, shared by the heap, the
// ahead-of count, and worst-waiter selection.
func (q *waiterQueue) before(a, b *waiter) bool {
	if q.fifo {
		return a.seq < b.seq
	}
	if a.class != b.class {
		return a.class < b.class
	}
	// Within a class: earliest deadline first; no deadline sorts last.
	switch {
	case a.deadline.IsZero() && b.deadline.IsZero():
		return a.seq < b.seq
	case a.deadline.IsZero():
		return false
	case b.deadline.IsZero():
		return true
	case !a.deadline.Equal(b.deadline):
		return a.deadline.Before(b.deadline)
	}
	return a.seq < b.seq
}

// aheadOf counts queued waiters that would be served before w.
func (q *waiterQueue) aheadOf(w *waiter) int {
	n := 0
	for _, o := range q.ws {
		if q.before(o, w) {
			n++
		}
	}
	return n
}

// worst returns the queued waiter that would be served last, nil when empty.
func (q *waiterQueue) worst() *waiter {
	if len(q.ws) == 0 {
		return nil
	}
	w := q.ws[0]
	for _, o := range q.ws[1:] {
		if q.before(w, o) {
			w = o
		}
	}
	return w
}

func (q *waiterQueue) Swap(i, j int) {
	q.ws[i], q.ws[j] = q.ws[j], q.ws[i]
	q.ws[i].index = i
	q.ws[j].index = j
}

func (q *waiterQueue) Push(x any) {
	w := x.(*waiter)
	w.index = len(q.ws)
	q.ws = append(q.ws, w)
}

func (q *waiterQueue) Pop() any {
	old := q.ws
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	q.ws = old[:n-1]
	return w
}

// classCounters are the per-SLO-class admission outcomes surfaced under
// /metrics "admission".
type classCounters struct {
	accepted atomic.Uint64
	rejected atomic.Uint64
}

type admission struct {
	maxConcurrent int
	maxQueue      int
	queueTimeout  time.Duration
	shed          bool

	mu      sync.Mutex
	running int
	queue   waiterQueue
	seq     uint64

	// avgServiceNs is an EWMA (alpha 1/8) of completed traversal times,
	// feeding the shed estimator.
	avgServiceNs atomic.Int64

	inFlight atomic.Int64
	queued   atomic.Int64
	waitHist *histogram
	classes  [NumClasses]classCounters
	rejected atomic.Uint64 // queue full
	timedOut atomic.Uint64 // queue timeout
	shedded  atomic.Uint64 // deadline shed (at enqueue or while queued)
}

func newAdmission(cfg *Config) *admission {
	return &admission{
		maxConcurrent: cfg.MaxConcurrent,
		maxQueue:      cfg.MaxQueue,
		queueTimeout:  cfg.QueueTimeout,
		shed:          cfg.Shedding == ShedDeadline,
		queue:         waiterQueue{fifo: cfg.Admission == AdmitFIFO},
		waitHist:      newHistogram(),
	}
}

// estimateWaitLocked guesses how long the candidate waiter would wait: the
// running queries must drain once, then the waiters served before it drain
// maxConcurrent per round, each round costing one EWMA service time. Under
// the priority policy "before it" is queue order, so a high-class arrival is
// not judged against the batch backlog behind it. Zero until the first
// completion seeds the average — cold servers never shed. Callers hold a.mu.
func (a *admission) estimateWaitLocked(cand *waiter) time.Duration {
	avg := a.avgServiceNs.Load()
	if avg == 0 {
		return 0
	}
	rounds := int64(a.queue.aheadOf(cand)/a.maxConcurrent + 1)
	return time.Duration(rounds * avg)
}

// acquire claims a traversal slot for a request of the given class and
// absolute deadline (zero = none), waiting in the policy-ordered queue if no
// slot is free. It fails fast with ErrOverloaded when the queue is full,
// with ErrDeadlineShed when the deadline cannot survive the queue, with
// ErrQueueTimeout after queueTimeout, and with ctx.Err() when the caller's
// request dies while waiting.
func (a *admission) acquire(ctx context.Context, class SLOClass, deadline time.Time) error {
	start := time.Now()
	a.mu.Lock()
	if a.running < a.maxConcurrent {
		a.running++
		a.mu.Unlock()
		a.admitted(class, 0)
		return nil
	}
	w := &waiter{class: class, deadline: deadline, seq: a.seq, grant: make(chan struct{})}
	if a.shed && !deadline.IsZero() {
		if wait := a.estimateWaitLocked(w); wait > 0 && start.Add(wait).After(deadline) {
			a.mu.Unlock()
			a.shedded.Add(1)
			a.classes[class].rejected.Add(1)
			return ErrDeadlineShed
		}
	}
	if a.queue.Len() >= a.maxQueue {
		// Full queue: displace the worst waiter if the newcomer outranks it
		// (never under FIFO, where before() is arrival order and the
		// newcomer always loses); otherwise reject the newcomer.
		worst := a.queue.worst()
		if worst == nil || !a.queue.before(w, worst) {
			a.mu.Unlock()
			a.rejected.Add(1)
			a.classes[class].rejected.Add(1)
			return ErrOverloaded
		}
		heap.Remove(&a.queue, worst.index)
		worst.displaced = true
		close(worst.grant)
	}
	a.seq++
	heap.Push(&a.queue, w)
	a.mu.Unlock()
	a.queued.Add(1)
	defer a.queued.Add(-1)

	timer := time.NewTimer(a.queueTimeout)
	defer timer.Stop()
	var deadlineC <-chan time.Time
	if a.shed && !deadline.IsZero() {
		if until := time.Until(deadline); until < a.queueTimeout {
			dt := time.NewTimer(until)
			defer dt.Stop()
			deadlineC = dt.C
		}
	}
	select {
	case <-w.grant:
		return a.granted(w, start)
	case <-timer.C:
		if a.abandon(w) {
			a.timedOut.Add(1)
			a.classes[class].rejected.Add(1)
			return ErrQueueTimeout
		}
	case <-deadlineC:
		if a.abandon(w) {
			a.shedded.Add(1)
			a.classes[class].rejected.Add(1)
			return ErrDeadlineShed
		}
	case <-ctx.Done():
		if a.abandon(w) {
			return ctx.Err()
		}
	}
	// Lost the race: a releaser popped (or a newcomer displaced) this waiter
	// before abandon got the lock — the grant channel carries the outcome.
	<-w.grant
	return a.granted(w, start)
}

// granted resolves a closed grant channel: either the waiter was handed a
// slot, or it was displaced from a full queue by a better request.
func (a *admission) granted(w *waiter, start time.Time) error {
	if w.displaced {
		a.rejected.Add(1)
		a.classes[w.class].rejected.Add(1)
		return ErrOverloaded
	}
	a.admitted(w.class, time.Since(start))
	return nil
}

// admitted records one successful admission after the given queue wait.
func (a *admission) admitted(class SLOClass, wait time.Duration) {
	a.inFlight.Add(1)
	a.waitHist.observe(wait)
	a.classes[class].accepted.Add(1)
}

// abandon removes a still-queued waiter, reporting whether the caller owns
// the outcome. False means a releaser already granted it the slot.
func (a *admission) abandon(w *waiter) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if w.index < 0 {
		return false
	}
	heap.Remove(&a.queue, w.index)
	return true
}

// release returns a slot after a traversal that ran for service, handing it
// directly to the best queued waiter if any (running stays constant across
// the handoff) and folding the service time into the shed estimator's EWMA.
func (a *admission) release(service time.Duration) {
	for {
		old := a.avgServiceNs.Load()
		next := old + (int64(service)-old)/8
		if old == 0 {
			next = int64(service)
		}
		if a.avgServiceNs.CompareAndSwap(old, next) {
			break
		}
	}
	a.inFlight.Add(-1)
	a.mu.Lock()
	if a.queue.Len() > 0 {
		w := heap.Pop(&a.queue).(*waiter)
		a.mu.Unlock()
		close(w.grant)
		return
	}
	a.running--
	a.mu.Unlock()
}

// InFlight reports traversals currently running.
func (a *admission) InFlight() int64 { return a.inFlight.Load() }

// QueueDepth reports requests currently parked waiting for a slot.
func (a *admission) QueueDepth() int64 { return a.queued.Load() }
