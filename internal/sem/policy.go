package sem

// This file is the state-aware cache-policy layer. The block cache's default
// replacement is recency-only (LRU), which is blind to algorithm state: a
// block whose vertices are all settled is as likely to be kept as a block the
// traversal is about to revisit. ACGraph-style async out-of-core engines win
// by scoring block residency by the state of the vertices on each block; the
// StatePolicy below does the same with a per-block pending-visitor counter
// fed by the engine's settle hook (core.Engine.SetSettle -> Graph.VertexQueued/
// VertexSettled). Eviction then prefers settled blocks (score 0) and keeps
// pinned ones (score > 0), with recency as the tiebreak; the legacy behavior
// stays selectable as -cachepolicy lru.

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Cache policy names accepted by ParseCachePolicy and the -cachepolicy flags.
const (
	PolicyLRU   = "lru"
	PolicyState = "state"
)

// CachePolicy scores cached blocks for eviction. Score is consulted under the
// cache's shard lock, so implementations must be cheap and lock-free (atomic
// loads). A score of 0 means "evict freely, recency decides"; higher scores
// pin the block harder. A nil policy on the CachedStore is exact LRU.
type CachePolicy interface {
	// Name reports the policy's flag spelling (PolicyLRU, PolicyState).
	Name() string
	// Score reports block id's retention priority. 0 = cold/settled.
	Score(block int64) int64
}

// CachePolicyConfig selects the block-cache eviction policy of a SEM mount.
type CachePolicyConfig struct {
	// Kind names the policy: PolicyLRU (the default when empty) keeps the
	// legacy recency-only replacement; PolicyState scores each block by its
	// count of unsettled vertices and pins blocks with pending work.
	Kind string
}

// normalize defaults an empty Kind to the legacy LRU policy.
func (c *CachePolicyConfig) normalize() {
	if c.Kind == "" {
		c.Kind = PolicyLRU
	}
}

// Validate rejects unknown policy names.
func (c *CachePolicyConfig) Validate() error {
	cc := *c
	cc.normalize()
	switch cc.Kind {
	case PolicyLRU, PolicyState:
		return nil
	}
	return fmt.Errorf("sem: unknown cache policy %q (want %s or %s)", c.Kind, PolicyLRU, PolicyState)
}

// StateAware reports whether the config selects the state-aware policy.
func (c CachePolicyConfig) StateAware() bool {
	c.normalize()
	return c.Kind == PolicyState
}

// ParseCachePolicy parses a -cachepolicy flag value ("", "lru", "state").
func ParseCachePolicy(s string) (CachePolicyConfig, error) {
	cfg := CachePolicyConfig{Kind: s}
	cfg.normalize()
	if err := cfg.Validate(); err != nil {
		return CachePolicyConfig{}, err
	}
	return cfg, nil
}

// StatePolicy is the state-aware cache policy: one pending-visitor counter
// per device block, incremented when a visitor targeting the block is queued
// and decremented when it settles (visited or dropped stale). Blocks with a
// positive count hold work the traversal will read soon, so eviction skips
// them while any same-shard settled block exists. All counters are atomics;
// queued/settled arrive concurrently from every engine worker while Score is
// read under cache shard locks.
type StatePolicy struct {
	pending []atomic.Int32

	// pinned tracks how many blocks currently have pending work (the 0 <-> 1
	// transitions of the counters); pinnedHW is its high-water mark, the
	// "pinned-block high-water" observability column.
	pinned   atomic.Int64
	pinnedHW atomic.Int64

	// onHot, when set (by CachedStore.EnableStatePolicy), fires on each
	// 0 -> 1 pending transition: the block just went from settled to holding
	// queued work. The cache uses it to refresh the block's recency before
	// the read arrives — advance notice pure LRU cannot have, since the
	// push-to-pop gap is exactly when an about-to-be-read block sits at the
	// LRU tail.
	onHot func(block int64)
}

// NewStatePolicy creates a policy for a store of nBlocks device blocks.
func NewStatePolicy(nBlocks int64) *StatePolicy {
	if nBlocks < 1 {
		nBlocks = 1
	}
	return &StatePolicy{pending: make([]atomic.Int32, nBlocks)}
}

// Name implements CachePolicy.
func (p *StatePolicy) Name() string { return PolicyState }

// Score implements CachePolicy: the block's pending-visitor count.
func (p *StatePolicy) Score(block int64) int64 {
	if block < 0 || block >= int64(len(p.pending)) {
		return 0
	}
	if n := p.pending[block].Load(); n > 0 {
		return int64(n)
	}
	return 0
}

// Queued records one visitor queued for a vertex on the given block.
//
//lint:hotpath
func (p *StatePolicy) Queued(block int64) {
	if block < 0 || block >= int64(len(p.pending)) {
		return
	}
	if p.pending[block].Add(1) == 1 {
		n := p.pinned.Add(1)
		for {
			hw := p.pinnedHW.Load()
			if n <= hw || p.pinnedHW.CompareAndSwap(hw, n) {
				break
			}
		}
		if p.onHot != nil {
			p.onHot(block)
		}
	}
}

// Settled records one visitor settled (visited or dropped stale) on the given
// block. The decrement saturates at zero: an aborted traversal may drain
// fewer settles than it queued, and the next traversal must not start from a
// negative count.
//
//lint:hotpath
func (p *StatePolicy) Settled(block int64) {
	if block < 0 || block >= int64(len(p.pending)) {
		return
	}
	for {
		cur := p.pending[block].Load()
		if cur <= 0 {
			return
		}
		if p.pending[block].CompareAndSwap(cur, cur-1) {
			if cur == 1 {
				p.pinned.Add(-1)
			}
			return
		}
	}
}

// Pinned reports the number of blocks currently holding pending work.
func (p *StatePolicy) Pinned() int64 { return p.pinned.Load() }

// PinnedHW reports the high-water mark of simultaneously pinned blocks.
func (p *StatePolicy) PinnedHW() int64 { return p.pinnedHW.Load() }

// ParseByteSize parses a byte count with an optional binary unit suffix:
// plain digits, or a k/K/KiB/KB (1024) or m/M/MiB/MB (1048576) suffix, e.g.
// "32768", "32k", "32KiB", "1MiB". Unknown units are an error — they used to
// be silently ignored by integer flag parsing.
func ParseByteSize(s string) (int, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("empty byte size")
	}
	mult := 1
	for _, u := range []struct {
		suffix string
		mult   int
	}{
		{"KiB", 1 << 10}, {"KB", 1 << 10}, {"k", 1 << 10}, {"K", 1 << 10},
		{"MiB", 1 << 20}, {"MB", 1 << 20}, {"m", 1 << 20}, {"M", 1 << 20},
	} {
		if strings.HasSuffix(t, u.suffix) {
			mult, t = u.mult, strings.TrimSuffix(t, u.suffix)
			break
		}
	}
	n, err := strconv.Atoi(t)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad byte size %q (want digits with optional k/KiB/m/MiB suffix)", s)
	}
	return n * mult, nil
}
