package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/pq"
)

var workerSweep = []int{1, 2, 4, 16, 64}

func TestEngineNoWorkTerminates(t *testing.T) {
	e := New[uint32](Config{Workers: 4}, func(*Ctx[uint32], pq.Item) error { return nil })
	e.Start()
	st, err := e.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if st.Visits != 0 || st.Pushes != 0 {
		t.Fatalf("stats = %+v, want zero work", st)
	}
}

func TestEngineSingleVisitor(t *testing.T) {
	var visited atomic.Uint64
	e := New[uint32](Config{Workers: 3}, func(_ *Ctx[uint32], it pq.Item) error {
		visited.Add(1)
		if it.Pri != 5 || it.V != 7 || it.Aux != 9 {
			t.Errorf("item = %+v", it)
		}
		return nil
	})
	e.Start()
	e.Push(5, 7, 9)
	st, err := e.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if visited.Load() != 1 || st.Visits != 1 {
		t.Fatalf("visited = %d, stats = %+v", visited.Load(), st)
	}
}

func TestEngineCascadingPushes(t *testing.T) {
	// Each visitor for value k pushes two visitors for k-1 until 0:
	// total visits = 2^(d+1) - 1.
	const depth = 10
	for _, w := range workerSweep {
		e := New[uint32](Config{Workers: w}, func(ctx *Ctx[uint32], it pq.Item) error {
			if it.Pri > 0 {
				ctx.Push(it.Pri-1, uint32(it.V*2+1)%1000, 0)
				ctx.Push(it.Pri-1, uint32(it.V*2+2)%1000, 0)
			}
			return nil
		})
		e.Start()
		e.Push(depth, 0, 0)
		st, err := e.Wait()
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(1)<<(depth+1) - 1
		if st.Visits != want {
			t.Fatalf("workers=%d: visits = %d, want %d", w, st.Visits, want)
		}
	}
}

func TestEngineVertexOwnership(t *testing.T) {
	// The same vertex must always be visited by the same worker: that is
	// the paper's lock-free exclusive-access guarantee.
	const n = 500
	owner := make([]atomic.Int64, n)
	for i := range owner {
		owner[i].Store(-1)
	}
	e := New[uint32](Config{Workers: 8}, func(ctx *Ctx[uint32], it pq.Item) error {
		v := it.V
		prev := owner[v].Swap(int64(ctx.Worker))
		if prev != -1 && prev != int64(ctx.Worker) {
			t.Errorf("vertex %d visited by workers %d and %d", v, prev, ctx.Worker)
		}
		if it.Pri > 0 {
			ctx.Push(it.Pri-1, uint32((v+17)%n), 0)
			ctx.Push(it.Pri-1, uint32((v+91)%n), 0)
		}
		return nil
	})
	e.Start()
	for v := uint32(0); v < 20; v++ {
		e.Push(6, v, 0)
	}
	if _, err := e.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineErrorAborts(t *testing.T) {
	sentinel := errors.New("boom")
	var visits atomic.Uint64
	e := New[uint32](Config{Workers: 2}, func(ctx *Ctx[uint32], it pq.Item) error {
		if visits.Add(1) == 3 {
			return sentinel
		}
		ctx.Push(it.Pri, uint32((it.V+1)%64), 0)
		return nil
	})
	e.Start()
	e.Push(0, 0, 0)
	_, err := e.Wait()
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
}

func TestEngineParallelInit(t *testing.T) {
	const n = 10000
	var sum atomic.Uint64
	e := New[uint32](Config{Workers: 8}, func(_ *Ctx[uint32], it pq.Item) error {
		sum.Add(it.V)
		return nil
	})
	e.Start()
	e.ParallelInit(n, func(i uint64) (uint64, uint32, uint64) {
		return i, uint32(i), 0
	})
	st, err := e.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if st.Visits != n {
		t.Fatalf("visits = %d, want %d", st.Visits, n)
	}
	if want := uint64(n) * (n - 1) / 2; sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestEnginePriorityWithinQueue(t *testing.T) {
	// With one worker there is a single queue, so pops must follow priority
	// order for items present simultaneously.
	var got []uint64
	e := New[uint32](Config{Workers: 1}, func(_ *Ctx[uint32], it pq.Item) error {
		got = append(got, it.Pri)
		return nil
	})
	e.Start()
	// Pushing before Start's workers can drain is racy; push a blocker
	// pattern instead: all pushes happen before Wait and the heap orders
	// whatever has accumulated. Tolerate the first few being consumed
	// eagerly by verifying overall non-strict monotonicity violations are
	// bounded by queue drain race: instead check multiset.
	for _, p := range []uint64{9, 1, 5, 3, 7} {
		e.Push(p, 0, 0)
	}
	if _, err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("visited %d items, want 5", len(got))
	}
}

func TestEngineOversubscriptionManyWorkers(t *testing.T) {
	// 512 workers on few cores, as in the paper's oversubscription runs.
	var visits atomic.Uint64
	e := New[uint32](Config{Workers: 512}, func(ctx *Ctx[uint32], it pq.Item) error {
		visits.Add(1)
		if it.Pri > 0 {
			ctx.Push(it.Pri-1, uint32(it.V+1), 0)
		}
		return nil
	})
	e.Start()
	for v := uint32(0); v < 256; v++ {
		e.Push(3, v*1000, 0)
	}
	if _, err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if visits.Load() != 256*4 {
		t.Fatalf("visits = %d, want %d", visits.Load(), 256*4)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.normalize()
	if c.Workers <= 0 {
		t.Fatalf("default workers = %d", c.Workers)
	}
	if c.Hash == nil {
		t.Fatal("default hash is nil")
	}
	if FibHash(1) == FibHash(2) {
		t.Fatal("FibHash collides trivially")
	}
	if IdentityHash(42) != 42 {
		t.Fatal("IdentityHash is not identity")
	}
}

// failingAdj returns an error after a fixed number of Neighbors calls,
// exercising the SEM error path through the engine.
type failingAdj struct {
	g     graph.Adjacency[uint32]
	limit int64
	calls atomic.Int64
}

func (f *failingAdj) NumVertices() uint64 { return f.g.NumVertices() }
func (f *failingAdj) Degree(v uint32) int { return f.g.Degree(v) }
func (f *failingAdj) Neighbors(v uint32, s *graph.Scratch[uint32]) ([]uint32, []graph.Weight, error) {
	if f.calls.Add(1) > f.limit {
		return nil, nil, errors.New("injected storage failure")
	}
	return f.g.Neighbors(v, s)
}

func TestTraversalSurfacesStorageErrors(t *testing.T) {
	g, err := graph.FromEdges(64, false, true, ringEdges(64))
	if err != nil {
		t.Fatal(err)
	}
	fa := &failingAdj{g: g, limit: 5}
	if _, err := BFS[uint32](fa, 0, Config{Workers: 4}); err == nil {
		t.Fatal("BFS did not surface the storage error")
	}
	fa = &failingAdj{g: g, limit: 5}
	if _, err := SSSP[uint32](fa, 0, Config{Workers: 4}); err == nil {
		t.Fatal("SSSP did not surface the storage error")
	}
	fa = &failingAdj{g: g, limit: 5}
	if _, err := CC[uint32](fa, Config{Workers: 4}); err == nil {
		t.Fatal("CC did not surface the storage error")
	}
}

func ringEdges(n uint32) []graph.Edge[uint32] {
	edges := make([]graph.Edge[uint32], 0, 2*n)
	for i := uint32(0); i < n; i++ {
		edges = append(edges,
			graph.Edge[uint32]{Src: i, Dst: (i + 1) % n},
			graph.Edge[uint32]{Src: (i + 1) % n, Dst: i})
	}
	return edges
}

func TestPeakOutstandingChainVsStar(t *testing.T) {
	// Figure 2's analysis made measurable: a chain has ~no path parallelism
	// (peak outstanding stays tiny), a star exposes all of it at once.
	chainEdges := make([]graph.Edge[uint32], 0, 199)
	for i := uint32(0); i < 199; i++ {
		chainEdges = append(chainEdges, graph.Edge[uint32]{Src: i, Dst: i + 1})
	}
	chain, err := graph.FromEdges(200, false, false, chainEdges)
	if err != nil {
		t.Fatal(err)
	}
	starEdges := make([]graph.Edge[uint32], 0, 199)
	for i := uint32(1); i < 200; i++ {
		starEdges = append(starEdges, graph.Edge[uint32]{Src: 0, Dst: i})
	}
	star, err := graph.FromEdges(200, false, false, starEdges)
	if err != nil {
		t.Fatal(err)
	}
	chainRes, err := BFS[uint32](chain, 0, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	starRes, err := BFS[uint32](star, 0, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if chainRes.Stats.PeakOutstanding > 4 {
		t.Fatalf("chain peak = %d, want ~1 (serialized)", chainRes.Stats.PeakOutstanding)
	}
	if starRes.Stats.PeakOutstanding < 100 {
		t.Fatalf("star peak = %d, want ~199 (fully parallel)", starRes.Stats.PeakOutstanding)
	}
}

func TestStatsImbalance(t *testing.T) {
	if (Stats{}).Imbalance() != 0 {
		t.Fatal("empty stats imbalance should be 0")
	}
	s := Stats{WorkerVisits: []uint64{10, 10, 10, 10}}
	if got := s.Imbalance(); got != 1.0 {
		t.Fatalf("balanced imbalance = %f", got)
	}
	s = Stats{WorkerVisits: []uint64{40, 0, 0, 0}}
	if got := s.Imbalance(); got != 4.0 {
		t.Fatalf("skewed imbalance = %f", got)
	}
}

func TestHashSpreadsLoadAcrossWorkers(t *testing.T) {
	// A CC over a random graph with the fibonacci hash should land visits
	// on every worker reasonably evenly (§III-A).
	g := randomUndirected(t, 2000, 8000, 44)
	res, err := CC[uint32](g, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.WorkerVisits) != 8 {
		t.Fatalf("worker visits = %v", res.Stats.WorkerVisits)
	}
	if imb := res.Stats.Imbalance(); imb > 1.5 {
		t.Fatalf("imbalance = %f, want near-uniform spread", imb)
	}
}
