package sem

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand/v2"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ssd"
)

func buildGraph(t testing.TB, n uint64, m int, weighted bool, seed uint64) *graph.CSR[uint32] {
	t.Helper()
	r := rand.New(rand.NewPCG(seed, seed^7))
	b := graph.NewBuilder[uint32](n, weighted)
	for i := 0; i < m; i++ {
		b.AddEdge(uint32(r.Uint64N(n)), uint32(r.Uint64N(n)), graph.Weight(r.Uint64N(50)))
	}
	g, err := b.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func writeToMem[V graph.Vertex](t testing.TB, g *graph.CSR[V]) *ssd.MemBacking {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	return &ssd.MemBacking{Data: buf.Bytes()}
}

// fastDevice wraps a mem backing with negligible latency for unit tests.
func fastDevice(backing *ssd.MemBacking) *ssd.Device {
	return ssd.New(ssd.Profile{Name: "fast", Channels: 64, ReadLatency: time.Nanosecond}, backing)
}

func TestRoundTripUnweighted(t *testing.T) {
	g := buildGraph(t, 100, 600, false, 1)
	back := writeToMem(t, g)
	got, err := LoadCSR[uint32](fastDevice(back))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip sizes: n=%d m=%d", got.NumVertices(), got.NumEdges())
	}
	for v := uint32(0); v < 100; v++ {
		want, _, _ := g.Neighbors(v, nil)
		have, _, _ := got.Neighbors(v, nil)
		if len(want) != len(have) {
			t.Fatalf("adj(%d): %v vs %v", v, want, have)
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("adj(%d)[%d]: %d vs %d", v, i, want[i], have[i])
			}
		}
	}
}

func TestRoundTripWeighted(t *testing.T) {
	g := buildGraph(t, 80, 500, true, 2)
	back := writeToMem(t, g)
	sg, err := Open[uint32](fastDevice(back))
	if err != nil {
		t.Fatal(err)
	}
	if !sg.Weighted() {
		t.Fatal("weighted flag lost")
	}
	if sg.NumEdges() != g.NumEdges() {
		t.Fatalf("m = %d, want %d", sg.NumEdges(), g.NumEdges())
	}
	scratch := &graph.Scratch[uint32]{}
	for v := uint32(0); v < 80; v++ {
		wt, ww, _ := g.Neighbors(v, nil)
		gt, gw, err := sg.Neighbors(v, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if len(wt) != len(gt) {
			t.Fatalf("adj(%d) length %d vs %d", v, len(wt), len(gt))
		}
		for i := range wt {
			if wt[i] != gt[i] || ww[i] != gw[i] {
				t.Fatalf("adj(%d)[%d]: (%d,%d) vs (%d,%d)", v, i, wt[i], ww[i], gt[i], gw[i])
			}
		}
		if sg.Degree(v) != len(wt) {
			t.Fatalf("degree(%d) = %d, want %d", v, sg.Degree(v), len(wt))
		}
	}
}

func TestRoundTripUint64(t *testing.T) {
	b := graph.NewBuilder[uint64](5, true)
	b.AddEdge(0, 4, 9)
	b.AddEdge(4, 2, 3)
	g, err := b.Build(false)
	if err != nil {
		t.Fatal(err)
	}
	back := writeToMem(t, g)
	sg, err := Open[uint64](fastDevice(back))
	if err != nil {
		t.Fatal(err)
	}
	scratch := &graph.Scratch[uint64]{}
	ts, ws, err := sg.Neighbors(4, scratch)
	if err != nil || len(ts) != 1 || ts[0] != 2 || ws[0] != 3 {
		t.Fatalf("adj(4) = %v %v %v", ts, ws, err)
	}
}

func TestVertexWidthMismatch(t *testing.T) {
	g := buildGraph(t, 10, 20, false, 3)
	back := writeToMem(t, g) // 32-bit file
	if _, err := Open[uint64](fastDevice(back)); err == nil {
		t.Fatal("64-bit open of 32-bit file did not error")
	}
}

func TestOpenRejectsCorruptHeader(t *testing.T) {
	g := buildGraph(t, 10, 20, false, 4)
	pristine := writeToMem(t, g).Data

	corrupt := func(mutate func(b []byte)) error {
		data := append([]byte(nil), pristine...)
		mutate(data)
		_, err := Open[uint32](fastDevice(&ssd.MemBacking{Data: data}))
		return err
	}
	if err := corrupt(func(b []byte) { b[0] = 'X' }); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[4:], 99) }); err == nil {
		t.Fatal("bad version accepted")
	}
	if err := corrupt(func(b []byte) {
		// Corrupt the last offset so offsets[n] != m.
		n := binary.LittleEndian.Uint64(b[16:])
		binary.LittleEndian.PutUint64(b[40+n*8:], 1<<60)
	}); err == nil {
		t.Fatal("corrupt index accepted")
	}
	if _, err := Open[uint32](fastDevice(&ssd.MemBacking{Data: pristine[:20]})); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := Open[uint32](fastDevice(&ssd.MemBacking{Data: pristine[:60]})); err == nil {
		t.Fatal("truncated index accepted")
	}
}

func TestNeighborsEmptyAdjacency(t *testing.T) {
	g := buildGraph(t, 10, 0, false, 5)
	sg, err := Open[uint32](fastDevice(writeToMem(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	ts, ws, err := sg.Neighbors(3, &graph.Scratch[uint32]{})
	if err != nil || ts != nil || ws != nil {
		t.Fatalf("empty adjacency = %v %v %v", ts, ws, err)
	}
}

// erroringStore fails after a number of reads, simulating device failure
// mid-traversal.
type erroringStore struct {
	inner Store
	after int64
	count atomic.Int64
}

func (e *erroringStore) ReadAt(p []byte, off int64) (int, error) {
	if e.count.Add(1) > e.after {
		return 0, errors.New("device failure")
	}
	return e.inner.ReadAt(p, off)
}

func TestTraversalSurfacesDeviceFailure(t *testing.T) {
	g := buildGraph(t, 200, 2000, false, 6)
	back := writeToMem(t, g)
	store := &erroringStore{inner: fastDevice(back), after: 20}
	sg, err := Open[uint32](store)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.BFS[uint32](sg, 0, core.Config{Workers: 4}); err == nil {
		t.Fatal("BFS over failing device did not return an error")
	}
}

func TestSEMBFSMatchesInMemory(t *testing.T) {
	g, err := gen.RMAT[uint32](10, 8, gen.RMATA, 11)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := Open[uint32](fastDevice(writeToMem(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	want, err := baseline.SerialBFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.BFS[uint32](sg, 0, core.Config{Workers: 16, SemiSort: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.Level[v] != want[v] {
			t.Fatalf("level[%d] = %d, want %d", v, res.Level[v], want[v])
		}
	}
}

func TestSEMSSSPMatchesDijkstra(t *testing.T) {
	g, err := gen.RMAT[uint32](9, 8, gen.RMATB, 12)
	if err != nil {
		t.Fatal(err)
	}
	g, err = gen.UniformWeights(g, 13)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := Open[uint32](fastDevice(writeToMem(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := baseline.SerialDijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.SSSP[uint32](sg, 0, core.Config{Workers: 16, SemiSort: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.Dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], want[v])
		}
	}
}

func TestSEMCCMatchesSerial(t *testing.T) {
	g, err := gen.RMATUndirected[uint32](9, 4, gen.RMATA, 14)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := Open[uint32](fastDevice(writeToMem(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	want, err := baseline.SerialCC(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.CC[uint32](sg, core.Config{Workers: 16, SemiSort: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.ID[v] != want[v] {
			t.Fatalf("id[%d] = %d, want %d", v, res.ID[v], want[v])
		}
	}
}

func TestEdgeBytesMatchesLayout(t *testing.T) {
	g := buildGraph(t, 50, 300, true, 7)
	back := writeToMem(t, g)
	sg, err := Open[uint32](fastDevice(back))
	if err != nil {
		t.Fatal(err)
	}
	wantFile := int64(headerSize) + int64(51)*8 + sg.EdgeBytes()
	if back.Size() != wantFile {
		t.Fatalf("file size = %d, want %d", back.Size(), wantFile)
	}
	if sg.EdgeBytes() != int64(g.NumEdges())*8 { // 4B target + 4B weight
		t.Fatalf("edge bytes = %d", sg.EdgeBytes())
	}
}

// Property: any CSR survives a write/open/load round trip bit-exactly.
func TestQuickRoundTrip(t *testing.T) {
	type rawEdge struct {
		S, D uint8
		W    uint8
	}
	f := func(raw []rawEdge, weighted bool) bool {
		const n = 256
		b := graph.NewBuilder[uint32](n, weighted)
		for _, e := range raw {
			b.AddEdge(uint32(e.S), uint32(e.D), graph.Weight(e.W))
		}
		g, err := b.Build(false)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteCSR(&buf, g); err != nil {
			return false
		}
		got, err := LoadCSR[uint32](fastDevice(&ssd.MemBacking{Data: buf.Bytes()}))
		if err != nil {
			return false
		}
		if got.NumEdges() != g.NumEdges() || got.Weighted() != g.Weighted() {
			return false
		}
		ok := true
		i := 0
		wantEdges := make([]graph.Edge[uint32], 0, g.NumEdges())
		g.ForEachEdge(func(u, v uint32, w graph.Weight) {
			wantEdges = append(wantEdges, graph.Edge[uint32]{Src: u, Dst: v, W: w})
		})
		got.ForEachEdge(func(u, v uint32, w graph.Weight) {
			if i >= len(wantEdges) || wantEdges[i] != (graph.Edge[uint32]{Src: u, Dst: v, W: w}) {
				ok = false
			}
			i++
		})
		return ok && i == len(wantEdges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
