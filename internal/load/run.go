package load

import (
	"context"
	"sync"
	"time"
)

// Runner fires a schedule at a real target, open-loop: each request departs
// at its scheduled offset on its own goroutine whether or not earlier
// requests have been answered. That is the property that lets offered load
// exceed capacity — the closed-loop benchmark can never get there.

// Clock abstracts time for the runner so tests can compress or pin it; the
// discrete-event simulator does not use it (virtual time lives in the event
// loop).
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

type wallClock struct{}

func (wallClock) Now() time.Time        { return time.Now() }
func (wallClock) Sleep(d time.Duration) { time.Sleep(d) }

// WallClock is the real time.Now/time.Sleep clock.
var WallClock Clock = wallClock{}

// Runner drives a Target with a schedule.
type Runner struct {
	Target Target
	// Clock defaults to WallClock.
	Clock Clock
}

// Run fires every request at its offset and returns outcomes in schedule
// order. Each request runs under a context bounded by its deadline plus
// grace (the server needs headroom past the deadline to deliver its 504).
// Cancelling ctx stops launching new requests; in-flight ones finish.
func (r *Runner) Run(ctx context.Context, schedule []Request) []Outcome {
	clock := r.Clock
	if clock == nil {
		clock = WallClock
	}
	outcomes := make([]Outcome, len(schedule))
	var wg sync.WaitGroup
	start := clock.Now()
	for i := range schedule {
		req := schedule[i]
		if wait := req.At - clock.Now().Sub(start); wait > 0 {
			clock.Sleep(wait)
		}
		if ctx.Err() != nil {
			for j := i; j < len(schedule); j++ {
				outcomes[j] = Outcome{Req: schedule[j], Err: ctx.Err().Error()}
			}
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Grace past the deadline: queue timeout or 504 delivery both
			// legitimately arrive after the budget expires.
			rctx, cancel := context.WithTimeout(ctx, req.Deadline+10*time.Second)
			defer cancel()
			outcomes[i] = r.Target.Do(rctx, req)
		}(i)
	}
	wg.Wait()
	return outcomes
}
