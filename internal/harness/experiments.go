package harness

import (
	"fmt"
	"io"
	"time"

	"repro/internal/baseline"
	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sem"
	"repro/internal/ssd"
)

// Options parameterizes every experiment. The defaults scale the paper's
// workloads (2^25-2^30 vertices on a 16-core, 256 GB machine) down to sizes a
// development box traverses in seconds while preserving the workload shape:
// RMAT-A/RMAT-B at average degree 16, UW/LUW weights, thread oversubscription,
// and the three flash profiles.
type Options struct {
	Scales      []int // log2 vertex counts for the in-memory tables (paper: 25..30)
	SEMScales   []int // log2 vertex counts for the semi-external tables (paper: 27..30)
	Degree      int   // average out-degree (paper: 16)
	Threads     []int // async worker sweep (paper: 1, 16, 512)
	SyncWorkers int   // worker count for the MTGL/SNAP-class baselines (paper: 16)
	SEMThreads  int   // async workers for semi-external runs (paper: 256)
	Ranks       int   // simulated PBGL cluster size (paper: 64-1024 cores)
	Seed        uint64
	// MemModel applies the DRAM-latency model (SlowAdj) to every in-memory
	// competitor so comparisons run in the paper's memory-bound regime
	// rather than at on-chip-cache speed.
	MemModel bool
	// CacheFrac sets the semi-external block-cache budget to
	// edgeBytes/CacheFrac, modelling the paper's RAM-vs-graph ratio: with
	// 16 GB of RAM the page cache covered most of the 9-36 GB graph files
	// and ~12%% of the 136 GB one.
	CacheFrac int64
	// Readahead is the number of consecutive 4 KiB blocks fetched per cache
	// miss in one device operation, modelling OS readahead over the
	// semi-sorted access stream.
	Readahead int
	// WebScale is the log2 size of the web-like stand-in graphs used by the
	// CC tables (paper: it-2004 .. ClueWeb09).
	WebScale int
	// SEMReps runs each semi-external measurement this many times and
	// reports the fastest, damping cache-timing variance.
	SEMReps int
	// Prefetch is the pop-window size applied to semi-external runs
	// (core.Config.Prefetch): 0 disables the asynchronous I/O pipeline,
	// preserving the historical one-read-per-visit behavior.
	Prefetch int
	// PrefetchGap is the span-coalescing slack in bytes
	// (sem.PrefetchConfig.MaxGap); only meaningful when Prefetch > 1.
	PrefetchGap int
	// CachePolicy selects the block-cache eviction policy of every SEM mount
	// (zero value = legacy LRU). The state-aware policy wires the engine's
	// settle hook into per-block pending-visitor counters, pins blocks with
	// queued work, and biases pop-windows toward cache-resident vertices.
	CachePolicy sem.CachePolicyConfig
	// Compressed mounts the semi-external tables on the delta+varint
	// compressed (v2) on-flash format instead of raw fixed records, cutting
	// device bytes per traversed edge; Table IV/V's B/edge column shows the
	// achieved density.
	Compressed bool
	// Shards hash-partitions every semi-external mount across this many
	// member stores, each with its own simulated device, block cache, and
	// prefetcher (0 or 1 = one store, the historical layout). SEMIO.PerShard
	// carries the per-member device counters.
	Shards int
	// Direction selects the BFS phase policy for the semi-external tables
	// (core.Config.Direction). Non-top-down values make every SEM mount carry
	// an on-flash in-edge section, and BFS runs derive the α/β switch
	// thresholds from each workload's degree statistics.
	Direction core.Direction
	// Fig1Threads and Fig1Duration control the IOPS sweep.
	Fig1Threads  []int
	Fig1Duration time.Duration
	Log          io.Writer // progress output; nil silences
}

// Defaults returns the laptop-scale configuration used by cmd/bench and the
// repository benchmarks.
func Defaults() Options {
	return Options{
		Scales:      []int{12, 13, 14},
		SEMScales:   []int{13, 14},
		Degree:      16,
		Threads:     []int{1, 16, 512},
		SyncWorkers: 16,
		// 128 workers saturate the simulated devices' channels while keeping
		// the semi-sorted access band tight enough for the block cache (the
		// paper used 256 OS threads on 8 cores against physical SSDs).
		SEMThreads:   128,
		Ranks:        16,
		Seed:         42,
		MemModel:     true,
		CacheFrac:    2,
		Readahead:    8,
		SEMReps:      3,
		WebScale:     13,
		Fig1Threads:  []int{1, 2, 4, 8, 16, 32, 64, 128, 256},
		Fig1Duration: 200 * time.Millisecond,
	}
}

// edgeFormat names the on-flash edge layout the SEM tables mount.
func (o *Options) edgeFormat() string {
	format := "raw"
	if o.Compressed {
		format = "compressed"
	}
	if o.Direction != core.DirectionTopDown {
		format += "+inedges"
	}
	if o.Shards > 1 {
		format = fmt.Sprintf("%s x%d shards", format, o.Shards)
	}
	return format
}

// writeConfig is the serialization recipe for every SEM mount the harness
// builds: compressed v2 blocks under Compressed, plus an on-flash in-edge
// section whenever the direction policy may run bottom-up phases.
func (o *Options) writeConfig() sem.WriteConfig {
	return sem.WriteConfig{
		Compress: o.Compressed,
		InEdges:  o.Direction != core.DirectionTopDown,
	}
}

// semBFSConfig is the engine config for the SEM BFS measurements, with the
// direction switch thresholds derived from g's degree statistics when a
// non-top-down policy is selected (the same derivation cmd/traverse and the
// server apply at mount time).
func (o *Options) semBFSConfig(g *graph.CSR[uint32]) core.Config {
	cfg := core.Config{
		Workers: o.SEMThreads, SemiSort: true, Prefetch: o.Prefetch,
		Direction: o.Direction,
	}
	if o.Direction != core.DirectionTopDown {
		cfg.Alpha, cfg.Beta = graph.DegreesOf[uint32](g).DirectionThresholds()
	}
	return cfg
}

func (o *Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format, args...)
	}
}

// wrap applies the DRAM-latency model when enabled.
func (o *Options) wrap(g graph.Adjacency[uint32]) graph.Adjacency[uint32] {
	if o.MemModel {
		return NewSlowAdj(g)
	}
	return g
}

// pickSource returns the highest-out-degree vertex, a deterministic stand-in
// for the paper's "start in the giant component" source selection.
func pickSource(g *graph.CSR[uint32]) uint32 {
	src := uint32(0)
	n := g.NumVertices()
	for v := uint32(0); uint64(v) < n; v++ {
		if g.Degree(v) > g.Degree(src) {
			src = v
		}
	}
	return src
}

var rmatVariants = []struct {
	Name   string
	Params gen.RMATParams
}{
	{"RMAT-A", gen.RMATA},
	{"RMAT-B", gen.RMATB},
}

// Figure1 reproduces the multithreaded random-read IOPS curves of Figure 1:
// for each flash profile, IOPS as an increasing number of threads issue
// 4 KiB random reads.
func Figure1(o Options) (*Table, error) {
	t := &Table{
		Title: "Figure 1: multithreaded random read IOPS on simulated NAND flash",
		Note:  "4 KiB random reads; devices saturate at their channel parallelism (paper: ~200k/60k/30k IOPS)",
		Cols:  append([]string{"threads"}, profileNames()...),
	}
	const span = 8 << 20
	backing := &ssd.MemBacking{Data: make([]byte, span)}
	for _, threads := range o.Fig1Threads {
		row := []string{fmt.Sprintf("%d", threads)}
		for _, p := range ssd.Profiles {
			dev := ssd.New(p, backing)
			iops := ssd.MeasureReadIOPS(dev, threads, 4096, o.Fig1Duration, o.Seed)
			row = append(row, fmt.Sprintf("%.0f", iops))
		}
		o.logf("fig1: threads=%d done\n", threads)
		t.Add(row...)
	}
	return t, nil
}

func profileNames() []string {
	names := make([]string, len(ssd.Profiles))
	for i, p := range ssd.Profiles {
		names[i] = p.Name
	}
	return names
}

// Table1 reproduces the in-memory BFS comparison of Table I: serial BGL,
// MTGL-class level-synchronous, SNAP-class vertex-scan, the asynchronous
// engine across a thread sweep, and the PBGL-class BSP cluster.
func Table1(o Options) (*Table, error) {
	t := &Table{
		Title: "Table I: In-Memory Breadth First Search",
		Note: fmt.Sprintf("degree=%d seed=%d memModel=%v; async columns are worker counts (paper: 1/16/512 threads)",
			o.Degree, o.Seed, o.MemModel),
		Cols: []string{"graph", "verts", "edges", "levs", "%vis",
			"BGL(s)", "MTGL(s)", "spd", "SNAP(s)", "spd"},
	}
	for _, th := range o.Threads {
		t.Cols = append(t.Cols, fmt.Sprintf("async%d(s)", th))
	}
	t.Cols = append(t.Cols, "scal", "spdBGL", "PBGL(s)")

	for _, variant := range rmatVariants {
		for _, scale := range o.Scales {
			g, err := gen.RMAT[uint32](scale, o.Degree, variant.Params, o.Seed)
			if err != nil {
				return nil, err
			}
			src := pickSource(g)
			adj := o.wrap(g)

			var levels, frac string
			asyncTimes := make([]time.Duration, len(o.Threads))
			for i, th := range o.Threads {
				var res *core.BFSResult[uint32]
				dur, err := timeIt(func() error {
					var err error
					res, err = core.BFS[uint32](adj, src, core.Config{Workers: th})
					return err
				})
				if err != nil {
					return nil, err
				}
				asyncTimes[i] = dur
				levels = fmt.Sprintf("%d", res.NumLevels())
				frac = fmt.Sprintf("%.1f%%", 100*res.FracVisited())
			}

			bglTime, err := timeIt(func() error {
				_, err := baseline.SerialBFS(adj, src)
				return err
			})
			if err != nil {
				return nil, err
			}
			mtglTime, err := timeIt(func() error {
				_, err := baseline.LevelSyncBFS(adj, src, o.SyncWorkers)
				return err
			})
			if err != nil {
				return nil, err
			}
			snapTime, err := timeIt(func() error {
				_, err := baseline.VertexScanBFS(adj, src, o.SyncWorkers)
				return err
			})
			if err != nil {
				return nil, err
			}
			cluster, err := bsp.NewCluster[uint32](adj, o.Ranks)
			if err != nil {
				return nil, err
			}
			pbglTime, err := timeIt(func() error {
				_, _, err := cluster.BFS(src)
				return err
			})
			if err != nil {
				return nil, err
			}

			best := asyncTimes[0]
			for _, d := range asyncTimes[1:] {
				if d < best {
					best = d
				}
			}
			row := []string{
				variant.Name, fmt.Sprintf("2^%d", scale), fmt.Sprintf("%d", g.NumEdges()),
				levels, frac,
				Seconds(bglTime), Seconds(mtglTime), Ratio(bglTime, mtglTime),
				Seconds(snapTime), Ratio(bglTime, snapTime),
			}
			for _, d := range asyncTimes {
				row = append(row, Seconds(d))
			}
			row = append(row, Ratio(asyncTimes[0], best), Ratio(bglTime, best), Seconds(pbglTime))
			t.Add(row...)
			o.logf("table1: %s 2^%d done\n", variant.Name, scale)
		}
	}
	return t, nil
}

// Table2 reproduces the in-memory SSSP comparison of Table II: serial
// Dijkstra (BGL) against the asynchronous engine, under uniform (UW) and
// log-uniform (LUW) edge weights.
func Table2(o Options) (*Table, error) {
	t := &Table{
		Title: "Table II: In-Memory Single Source Shortest Path",
		Note:  "UW: uniform weights [0,n); LUW: log-uniform weights (paper §V-A)",
		Cols:  []string{"graph", "wts", "verts", "edges", "BGL(s)"},
	}
	for _, th := range o.Threads {
		t.Cols = append(t.Cols, fmt.Sprintf("async%d(s)", th))
	}
	t.Cols = append(t.Cols, "scal", "spdBGL")

	weighters := []struct {
		Name string
		Fn   func(*graph.CSR[uint32], uint64) (*graph.CSR[uint32], error)
	}{
		{"UW", gen.UniformWeights[uint32]},
		{"LUW", gen.LogUniformWeights[uint32]},
	}
	for _, variant := range rmatVariants {
		for _, wt := range weighters {
			for _, scale := range o.Scales {
				g, err := gen.RMAT[uint32](scale, o.Degree, variant.Params, o.Seed)
				if err != nil {
					return nil, err
				}
				g, err = wt.Fn(g, o.Seed+uint64(scale))
				if err != nil {
					return nil, err
				}
				src := pickSource(g)
				adj := o.wrap(g)

				bglTime, err := timeIt(func() error {
					_, _, err := baseline.SerialDijkstra(adj, src)
					return err
				})
				if err != nil {
					return nil, err
				}
				asyncTimes := make([]time.Duration, len(o.Threads))
				for i, th := range o.Threads {
					asyncTimes[i], err = timeIt(func() error {
						_, err := core.SSSP[uint32](adj, src, core.Config{Workers: th})
						return err
					})
					if err != nil {
						return nil, err
					}
				}
				best := asyncTimes[0]
				for _, d := range asyncTimes[1:] {
					if d < best {
						best = d
					}
				}
				row := []string{
					variant.Name, wt.Name, fmt.Sprintf("2^%d", scale),
					fmt.Sprintf("%d", g.NumEdges()), Seconds(bglTime),
				}
				for _, d := range asyncTimes {
					row = append(row, Seconds(d))
				}
				row = append(row, Ratio(asyncTimes[0], best), Ratio(bglTime, best))
				t.Add(row...)
				o.logf("table2: %s %s 2^%d done\n", variant.Name, wt.Name, scale)
			}
		}
	}
	return t, nil
}
