package server

// Graph mounting shared by the serving binaries: cmd/serve and cmd/loadgen
// (in-process mode) both turn a -graph flag into a server.Graph, so the
// spec grammar and the storage-layer assembly live here once.

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sem"
	"repro/internal/ssd"
)

// MountSpec is one parsed -graph flag:
// name=path[,sem[,profile]][,shards=N][,limit=R[:B]].
type MountSpec struct {
	Name    string
	Path    string
	SEM     bool
	Profile string
	Shards  int // 0 = auto-detect from the files present
	// Limit is a per-graph tenant rate limit override (nil = server-wide).
	Limit *RateLimitConfig
}

// ParseMountSpec parses a -graph argument. The per-graph limit option
// overrides the server-wide rate limit for queries against this graph.
func ParseMountSpec(arg string) (MountSpec, error) {
	var s MountSpec
	name, rest, ok := strings.Cut(arg, "=")
	if !ok || name == "" || rest == "" {
		return s, fmt.Errorf("graph spec %q: want name=path[,sem[,profile]][,shards=N][,limit=R[:B]]", arg)
	}
	s.Name = name
	parts := strings.Split(rest, ",")
	s.Path = parts[0]
	s.Profile = "FusionIO"
	for _, opt := range parts[1:] {
		switch {
		case opt == "sem":
			s.SEM = true
		case strings.HasPrefix(opt, "shards="):
			n, err := strconv.Atoi(strings.TrimPrefix(opt, "shards="))
			if err != nil || n < 0 {
				return s, fmt.Errorf("graph spec %q: bad shard count %q", arg, opt)
			}
			s.Shards = n
		case strings.HasPrefix(opt, "limit="):
			rate, burst, err := ParseRateSpec(strings.TrimPrefix(opt, "limit="))
			if err != nil {
				return s, fmt.Errorf("graph spec %q: %w", arg, err)
			}
			s.Limit = &RateLimitConfig{Rate: rate, Burst: burst}
		case s.SEM:
			s.Profile = opt
		default:
			return s, fmt.Errorf("graph spec %q: unknown option %q (want \"sem\", \"shards=N\", or \"limit=R[:B]\")", arg, opt)
		}
	}
	if _, _, err := shardPaths(s.Path, s.Shards); err != nil {
		return s, fmt.Errorf("graph %q: %w", s.Name, err)
	}
	if s.SEM {
		if _, err := ssd.ProfileByName(s.Profile); err != nil {
			return s, fmt.Errorf("graph %q: %w", s.Name, err)
		}
	}
	return s, nil
}

// ParseRateSpec parses "rate[:burst]" (requests/second, requests) as used by
// the -ratelimit and -tenant-limit flags and the graph spec limit option.
func ParseRateSpec(arg string) (rate, burst float64, err error) {
	rateStr, burstStr, hasBurst := strings.Cut(arg, ":")
	if rate, err = strconv.ParseFloat(rateStr, 64); err != nil || rate < 0 {
		return 0, 0, fmt.Errorf("bad rate %q (want rate[:burst])", arg)
	}
	if hasBurst {
		if burst, err = strconv.ParseFloat(burstStr, 64); err != nil || burst < 0 {
			return 0, 0, fmt.Errorf("bad burst %q (want rate[:burst])", arg)
		}
	}
	return rate, burst, nil
}

// shardPaths resolves a spec's path/shards into the concrete file list:
// shards==0 auto-detects (a plain file mounts as is, otherwise path.shard0..
// are discovered); shards>=1 demands exactly that many shard files.
func shardPaths(path string, shards int) ([]string, bool, error) {
	if shards == 0 {
		if _, err := os.Stat(path); err == nil {
			return []string{path}, false, nil
		}
		var paths []string
		for k := 0; ; k++ {
			p := sem.ShardFileName(path, k)
			if _, err := os.Stat(p); err != nil {
				break
			}
			paths = append(paths, p)
		}
		if len(paths) == 0 {
			return nil, false, fmt.Errorf("neither %s nor %s exists", path, sem.ShardFileName(path, 0))
		}
		return paths, true, nil
	}
	paths := make([]string, shards)
	for k := range paths {
		paths[k] = sem.ShardFileName(path, k)
		if _, err := os.Stat(paths[k]); err != nil {
			return nil, false, fmt.Errorf("%w: shards=%d but shard file missing: %v", sem.ErrShardSpec, shards, err)
		}
	}
	return paths, true, nil
}

// MountOptions tune how MountGraph assembles the storage stack.
type MountOptions struct {
	// Prefetch is the engine pop-window size; SEM mounts enable the
	// prefetcher when it exceeds 1.
	Prefetch int
	// PrefetchGap is the max byte gap coalesced into one prefetch read.
	PrefetchGap int
	// CachePolicy selects the block-cache eviction policy of SEM mounts
	// (zero value = legacy LRU; see sem.CachePolicyConfig).
	CachePolicy sem.CachePolicyConfig
	// Direction is the engine's BFS direction policy; non-top-down
	// in-memory mounts pair the CSR with its transpose (semi-external
	// mounts must carry an in-edge section; AddGraph enforces that).
	Direction core.Direction
}

// MountGraph opens one graph (a plain file or a complete shard set) as a
// server.Graph: decoded fully into an in-memory CSR, or mounted
// semi-externally with one block-cached simulated flash device per shard.
func MountGraph(spec MountSpec, opt MountOptions) (Graph, error) {
	g := Graph{Name: spec.Name, RateLimit: spec.Limit}
	paths, sharded, err := shardPaths(spec.Path, spec.Shards)
	if err != nil {
		return g, err
	}
	backings := make([]*ssd.FileBacking, len(paths))
	for i, pth := range paths {
		f, err := os.Open(pth)
		if err != nil {
			return g, err
		}
		// The backing mmap-reads the file for the process lifetime; nothing
		// to close eagerly here.
		if backings[i], err = ssd.NewFileBacking(f); err != nil {
			_ = f.Close()
			return g, err
		}
	}
	if !spec.SEM {
		if sharded {
			stores := make([]sem.Store, len(backings))
			for i, b := range backings {
				stores[i] = b
			}
			csr, err := sem.LoadShardedCSR[uint32](stores)
			if err != nil {
				return g, err
			}
			if g.Adj, err = imAdjacency(csr, opt.Direction); err != nil {
				return g, err
			}
			g.Storage, g.Shards = "im", len(stores)
			return g, nil
		}
		csr, err := sem.LoadCSR[uint32](backings[0])
		if err != nil {
			return g, err
		}
		if g.Adj, err = imAdjacency(csr, opt.Direction); err != nil {
			return g, err
		}
		g.Storage = "im"
		return g, nil
	}
	p, err := ssd.ProfileByName(spec.Profile)
	if err != nil {
		return g, err
	}
	devs := make([]*ssd.Device, len(backings))
	caches := make([]*sem.CachedStore, len(backings))
	sgs := make([]*sem.Graph[uint32], len(backings))
	for i, b := range backings {
		devs[i] = ssd.New(p, b)
		if caches[i], err = sem.NewCachedStoreRA(devs[i], 4096, b.Size()/2, 8); err != nil {
			return g, err
		}
		if sgs[i], err = sem.Open[uint32](caches[i]); err != nil {
			return g, err
		}
		if opt.CachePolicy.StateAware() {
			sgs[i].EnableStateCache()
		}
		if opt.Prefetch > 1 {
			sgs[i].EnablePrefetch(sem.PrefetchConfig{MaxGap: opt.PrefetchGap})
		}
	}
	g.SEMGraphs = sgs
	if sharded {
		mounted, err := sem.MountShards(sgs)
		if err != nil {
			return g, err
		}
		g.Adj, g.Storage = mounted, "sem"
		g.Devices, g.BlockCaches, g.Shards = devs, caches, len(sgs)
		return g, nil
	}
	g.Adj, g.Storage, g.Device, g.BlockCache = sgs[0], "sem", devs[0], caches[0]
	return g, nil
}

// imAdjacency wraps an in-memory CSR for the requested direction: top-down
// serves the CSR as is, anything else pairs it with its transpose.
func imAdjacency(csr *graph.CSR[uint32], dir core.Direction) (graph.Adjacency[uint32], error) {
	if dir == core.DirectionTopDown {
		return csr, nil
	}
	rev, err := graph.Transpose(csr)
	if err != nil {
		return nil, err
	}
	return graph.NewBidi[uint32](csr, rev)
}
