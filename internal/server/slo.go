package server

import "strings"

// SLO classes: every request carries a service-level class that admission
// uses to order the wait queue and that the report layer (internal/load)
// aggregates by. Classes are a small fixed ladder — a serving tier is a
// contract, not an open namespace — ranked from most to least latency-
// sensitive. Unknown or absent class headers fall into ClassBronze so that
// untagged traffic neither jumps the queue nor starves.
//
// The class arrives on the X-SLO-Class request header; the tenant identity
// (for per-tenant rate limiting and reporting) on X-Tenant.

// Header names the query endpoint reads and the load generator sets.
const (
	// TenantHeader identifies the calling tenant; empty means DefaultTenant.
	TenantHeader = "X-Tenant"
	// ClassHeader names the request's SLO class; empty or unknown means
	// ClassBronze.
	ClassHeader = "X-SLO-Class"
	// RejectReasonHeader is set on every 429/503 rejection so callers (and
	// the load generator's report) can distinguish rejection causes without
	// parsing error bodies: "queue-full", "queue-timeout", "deadline-shed",
	// or "rate-limit".
	RejectReasonHeader = "X-Reject-Reason"
)

// DefaultTenant is the tenant identity of requests without a tenant header.
const DefaultTenant = "anon"

// SLOClass is a serving tier. Lower values admit first.
type SLOClass int

const (
	// ClassGold is interactive traffic with the tightest deadlines.
	ClassGold SLOClass = iota
	// ClassSilver is latency-sensitive but tolerant traffic.
	ClassSilver
	// ClassBronze is the default tier for untagged traffic.
	ClassBronze
	// ClassBatch is throughput-oriented traffic that yields to everything.
	ClassBatch

	// NumClasses bounds the class ladder; per-class counter arrays index by
	// SLOClass and are sized by it.
	NumClasses
)

var sloClassNames = [NumClasses]string{"gold", "silver", "bronze", "batch"}

func (c SLOClass) String() string {
	if c < 0 || c >= NumClasses {
		return "bronze"
	}
	return sloClassNames[c]
}

// ParseSLOClass maps a class header value to its tier. Unknown spellings and
// the empty string land in ClassBronze: misconfigured clients get the
// default tier, never an error and never a priority boost.
func ParseSLOClass(s string) SLOClass {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "gold":
		return ClassGold
	case "silver":
		return ClassSilver
	case "batch":
		return ClassBatch
	default:
		return ClassBronze
	}
}
