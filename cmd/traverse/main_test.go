package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestValidate(t *testing.T) {
	g := filepath.Join(t.TempDir(), "g.asg")
	if err := os.WriteFile(g, []byte("stub"), 0o644); err != nil {
		t.Fatal(err)
	}
	sharded := filepath.Join(t.TempDir(), "s.asg")
	for k := 0; k < 2; k++ {
		if err := os.WriteFile(sharded+".shard"+string(rune('0'+k)), []byte("stub"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name      string
		path      string
		algo      string
		engine    string
		workers   int
		ranks     int
		sem       bool
		profile   string
		shards    int
		direction string
		gap       string // "" means the flag default
		policy    string // "" normalizes to lru
		ok        bool
	}{
		{"valid async bfs", g, "bfs", "async", 512, 16, false, "", 0, "", "", "", true},
		{"valid bsp cc", g, "cc", "bsp", 8, 4, false, "", 0, "", "", "", true},
		{"valid sem profile", g, "sssp", "async", 8, 16, true, "Intel", 0, "", "", "", true},
		{"missing path", "", "bfs", "async", 8, 16, false, "", 0, "", "", "", false},
		{"nonexistent file", g + ".nope", "bfs", "async", 8, 16, false, "", 0, "", "", "", false},
		{"unknown algo", g, "pagerank", "async", 8, 16, false, "", 0, "", "", "", false},
		{"unknown engine", g, "bfs", "quantum", 8, 16, false, "", 0, "", "", "", false},
		{"sssp has no bsp engine", g, "sssp", "bsp", 8, 16, false, "", 0, "", "", "", false},
		{"negative workers", g, "bfs", "async", -1, 16, false, "", 0, "", "", "", false},
		{"zero workers", g, "bfs", "async", 0, 16, false, "", 0, "", "", "", false},
		{"bsp needs ranks", g, "bfs", "bsp", 8, 0, false, "", 0, "", "", "", false},
		{"unknown sem profile", g, "bfs", "async", 8, 16, true, "FloppyDisk", 0, "", "", "", false},
		{"negative shards", g, "bfs", "async", 8, 16, false, "", -1, "", "", "", false},
		{"shard files present", sharded, "bfs", "async", 8, 16, false, "", 2, "", "", "", true},
		{"shard files auto-detected", sharded, "bfs", "async", 8, 16, false, "", 0, "", "", "", true},
		{"shard count exceeds files", sharded, "bfs", "async", 8, 16, false, "", 3, "", "", "", false},
		{"shards of a plain file", g, "bfs", "async", 8, 16, false, "", 2, "", "", "", false},
		{"hybrid async bfs", g, "bfs", "async", 8, 16, false, "", 0, "hybrid", "", "", true},
		{"bottomup async bfs", g, "bfs", "async", 8, 16, false, "", 0, "bottomup", "", "", true},
		{"explicit topdown", g, "bfs", "async", 8, 16, false, "", 0, "topdown", "", "", true},
		{"unknown direction", g, "bfs", "async", 8, 16, false, "", 0, "sideways", "", "", false},
		{"hybrid needs bfs", g, "cc", "async", 8, 16, false, "", 0, "hybrid", "", "", false},
		{"hybrid needs async", g, "bfs", "serial", 8, 16, false, "", 0, "hybrid", "", "", false},
		{"topdown on any engine", g, "bfs", "serial", 8, 16, false, "", 0, "topdown", "", "", true},
		{"plain-byte prefetch gap", g, "bfs", "async", 8, 16, false, "", 0, "", "4096", "", true},
		{"suffixed prefetch gap", g, "bfs", "async", 8, 16, false, "", 0, "", "32KiB", "", true},
		{"lowercase k gap", g, "bfs", "async", 8, 16, false, "", 0, "", "8k", "", true},
		{"unknown gap unit", g, "bfs", "async", 8, 16, false, "", 0, "", "32GiB", "", false},
		{"negative gap", g, "bfs", "async", 8, 16, false, "", 0, "", "-1", "", false},
		{"garbage gap", g, "bfs", "async", 8, 16, false, "", 0, "", "lots", "", false},
		{"lru cache policy", g, "bfs", "async", 8, 16, true, "Intel", 0, "", "", "lru", true},
		{"state cache policy", g, "bfs", "async", 8, 16, true, "Intel", 0, "", "", "state", true},
		{"unknown cache policy", g, "bfs", "async", 8, 16, true, "Intel", 0, "", "", "mru", false},
	}
	for _, tc := range cases {
		gap := tc.gap
		if gap == "" {
			gap = "512" // stand in for the flag default, which is never empty
		}
		err := validate(tc.path, tc.algo, tc.engine, tc.workers, tc.ranks, tc.sem, tc.profile, tc.shards, tc.direction, gap, tc.policy)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}
