package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sem"
)

// semMirrorCfg serializes g per cfg and reopens it, so traversals exercise
// the SEM read paths (including the in-edge section / symmetric flag).
func semMirrorCfg(t testing.TB, g *graph.CSR[uint32], cfg sem.WriteConfig) *sem.Graph[uint32] {
	t.Helper()
	var buf bytes.Buffer
	if err := sem.Write(&buf, g, cfg); err != nil {
		t.Fatal(err)
	}
	sg, err := sem.Open[uint32](bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return sg
}

// semShardedMirror writes g as a shard set per cfg (plus the shard field) and
// mounts the shard router over the reopened members.
func semShardedMirror(t testing.TB, g *graph.CSR[uint32], shards int, cfg sem.WriteConfig) *graph.Sharded[uint32] {
	t.Helper()
	gs := make([]*sem.Graph[uint32], shards)
	for k := 0; k < shards; k++ {
		var buf bytes.Buffer
		c := cfg
		c.Shard = &sem.ShardConfig{Shard: k, Shards: shards}
		if err := sem.Write(&buf, g, c); err != nil {
			t.Fatal(err)
		}
		sg, err := sem.Open[uint32](bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		gs[k] = sg
	}
	mount, err := sem.MountShards(gs)
	if err != nil {
		t.Fatal(err)
	}
	return mount
}

// bidiIM pairs an in-memory CSR with its transpose (raw back end).
func bidiIM(t testing.TB, g *graph.CSR[uint32]) *graph.Bidi[uint32] {
	t.Helper()
	rev, err := graph.Transpose(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := graph.NewBidi[uint32](g, rev)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// bidiCompressed pairs the compressed CSR with its compressed transpose.
func bidiCompressed(t testing.TB, g *graph.CSR[uint32]) *graph.Bidi[uint32] {
	t.Helper()
	c, err := graph.Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := graph.TransposeCompressed(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := graph.NewBidi[uint32](c, rev)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDirectionEquivalence is the direction-dimension property test: BFS
// levels must be bit-identical across topdown (the asynchronous kernel),
// forced bottomup, and hybrid, on every direction-capable back end — IM
// raw/compressed Bidi pairings, symmetric IM, SEM v1/v2 with in-edge
// sections, SEM symmetric, and a sharded SEM mount — against the serial
// baseline. Parents are checked structurally (a parent must sit exactly one
// level above its child), the same contract the async kernel's tests use.
func TestDirectionEquivalence(t *testing.T) {
	type workload struct {
		name string
		g    graph.Adjacency[uint32]
		base *graph.CSR[uint32] // logical graph for the serial baseline
	}
	var workloads []workload
	for seed := uint64(1); seed <= 2; seed++ {
		rm, err := gen.RMAT[uint32](8, 8, gen.RMATA, seed)
		if err != nil {
			t.Fatal(err)
		}
		workloads = append(workloads,
			workload{fmt.Sprintf("rmat-%d-im-raw", seed), bidiIM(t, rm), rm},
			workload{fmt.Sprintf("rmat-%d-im-compressed", seed), bidiCompressed(t, rm), rm},
			workload{fmt.Sprintf("rmat-%d-sem-v1", seed), semMirrorCfg(t, rm, sem.WriteConfig{InEdges: true}), rm},
			workload{fmt.Sprintf("rmat-%d-sem-v2", seed), semMirrorCfg(t, rm, sem.WriteConfig{Compress: true, InEdges: true}), rm},
			workload{fmt.Sprintf("rmat-%d-sem-sharded-v1", seed), semShardedMirror(t, rm, 3, sem.WriteConfig{InEdges: true}), rm},
			workload{fmt.Sprintf("rmat-%d-sem-sharded-v2", seed), semShardedMirror(t, rm, 3, sem.WriteConfig{Compress: true, InEdges: true}), rm},
		)
	}
	ug := randomUndirected(t, 400, 1200, 7)
	workloads = append(workloads,
		workload{"undirected-im-symmetric", graph.NewSymmetric[uint32](ug), ug},
		workload{"undirected-sem-symmetric-v1", semMirrorCfg(t, ug, sem.WriteConfig{Symmetric: true}), ug},
		workload{"undirected-sem-symmetric-v2", semMirrorCfg(t, ug, sem.WriteConfig{Compress: true, Symmetric: true}), ug},
		// Sharded symmetric members hold complete out-lists of their owned
		// vertices, which double as complete in-lists on a symmetric graph.
		workload{"undirected-sem-sharded-symmetric", semShardedMirror(t, ug, 3, sem.WriteConfig{Symmetric: true}), ug},
	)
	// A long chain keeps every frontier at one vertex: the serial-inline
	// phase path, and the hybrid policy must never leave top-down.
	chainB := graph.NewBuilder[uint32](512, false)
	for v := uint32(0); v+1 < 512; v++ {
		chainB.AddEdge(v, v+1, 1)
		chainB.AddEdge(v+1, v, 1)
	}
	chain, err := chainB.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	workloads = append(workloads, workload{"chain-im", bidiIM(t, chain), chain})

	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			src := uint32(0)
			want, err := baseline.SerialBFS[uint32](w.base, src)
			if err != nil {
				t.Fatal(err)
			}
			for _, dir := range []Direction{DirectionTopDown, DirectionBottomUp, DirectionHybrid} {
				for _, workers := range []int{1, 6} {
					res, err := BFS[uint32](w.g, src, Config{Workers: workers, Direction: dir})
					if err != nil {
						t.Fatalf("%s workers=%d: %v", dir, workers, err)
					}
					for v := range want {
						if res.Level[v] != want[v] {
							t.Fatalf("%s workers=%d: level[%d] = %d, want %d",
								dir, workers, v, res.Level[v], want[v])
						}
					}
					for v, lvl := range res.Level {
						if lvl == graph.InfDist || uint32(v) == src {
							continue
						}
						if p := res.Parent[v]; res.Level[p] != lvl-1 {
							t.Fatalf("%s workers=%d: parent[%d]=%d at level %d, child at %d",
								dir, workers, v, p, res.Level[p], lvl)
						}
					}
					if dir != DirectionTopDown {
						if got := res.Stats.TopDownPhases + res.Stats.BottomUpPhases; got == 0 {
							t.Fatalf("%s: no phases recorded in stats", dir)
						}
					}
				}
			}
		})
	}
}

// TestDirectionHybridStaysTopDownOnChain pins the β floor behavior: on a
// path graph every frontier is one vertex, so the hybrid controller must
// never pay for a bottom-up scan.
func TestDirectionHybridStaysTopDownOnChain(t *testing.T) {
	b := graph.NewBuilder[uint32](256, false)
	for v := uint32(0); v+1 < 256; v++ {
		b.AddEdge(v, v+1, 1)
	}
	chain, err := b.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS[uint32](bidiIM(t, chain), 0, Config{Workers: 4, Direction: DirectionHybrid})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BottomUpPhases != 0 {
		t.Fatalf("hybrid ran %d bottom-up phases on a chain", res.Stats.BottomUpPhases)
	}
	if res.Stats.DirectionSwitches != 0 {
		t.Fatalf("hybrid switched direction %d times on a chain", res.Stats.DirectionSwitches)
	}
	if res.Stats.PeakFrontier != 1 {
		t.Fatalf("peak frontier %d on a chain, want 1", res.Stats.PeakFrontier)
	}
}

// TestDirectionRequiresInEdges pins the capability contract: a non-top-down
// direction against a back end without reverse adjacency fails with
// ErrNoInEdges (and the CLI maps that to a usage error).
func TestDirectionRequiresInEdges(t *testing.T) {
	g := randomDigraph(t, 100, 400, false, 3)
	for _, dir := range []Direction{DirectionBottomUp, DirectionHybrid} {
		_, err := BFS[uint32](g, 0, Config{Workers: 4, Direction: dir})
		if err == nil {
			t.Fatalf("%s on a plain CSR succeeded, want ErrNoInEdges", dir)
		}
		if !errors.Is(err, ErrNoInEdges) {
			t.Fatalf("%s: error %v does not wrap ErrNoInEdges", dir, err)
		}
	}
	// A sem store without an in-edge section declines dynamically.
	sg := semMirrorCfg(t, g, sem.WriteConfig{})
	if _, err := BFS[uint32](sg, 0, Config{Workers: 4, Direction: DirectionHybrid}); err == nil || !errors.Is(err, ErrNoInEdges) {
		t.Fatalf("sem store without in-edges: got %v, want ErrNoInEdges", err)
	}
}

// TestParseDirection covers the CLI spellings and the rejection path.
func TestParseDirection(t *testing.T) {
	for s, want := range map[string]Direction{
		"":         DirectionTopDown,
		"topdown":  DirectionTopDown,
		"bottomup": DirectionBottomUp,
		"hybrid":   DirectionHybrid,
	} {
		got, err := ParseDirection(s)
		if err != nil || got != want {
			t.Fatalf("ParseDirection(%q) = %v, %v; want %v", s, got, err, want)
		}
		if s != "" && got.String() != s {
			t.Fatalf("Direction(%v).String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := ParseDirection("sideways"); err == nil {
		t.Fatal("ParseDirection accepted garbage")
	}
}
