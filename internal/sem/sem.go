// Package sem implements the paper's semi-external memory graph storage
// (§IV-C): "enough memory to store algorithmic information about the
// vertices but not edges". The vertex index array lives in RAM; the edge
// records stay on the storage device and every adjacency access is an
// explicit random read, issued concurrently by the traversal workers so the
// device's internal parallelism is exercised.
//
// Two on-device layouts share the header. Format v1 is a raw compressed
// sparse row:
//
//	header (40 bytes): magic "ASG1", version, flags, n, m
//	offsets: (n+1) x uint64        -- edge counts, loaded into RAM at open
//	edges:   m x record            -- fetched per-visit with ReadAt
//
// A record is the target vertex id (4 or 8 bytes per the vertex width flag)
// followed by a uint32 weight when the graph is weighted. Format v2 replaces
// the fixed-width edge region with delta+varint compressed per-vertex blocks
// (graph.AppendAdjBlock) behind a block-extent index:
//
//	header (40 bytes): magic "ASG1", version=2, flags|compressed, n, m, blob size
//	offsets: (n+1) x uint64        -- BYTE offsets of each block in the blob
//	degrees: n x uint32            -- neighbor counts (blocks are self-delimiting
//	                                  in bytes via the index, not in edges)
//	blob:    concatenated blocks   -- fetched per-visit with ReadAt
//
// The offsets and degrees are the RAM-resident vertex information; the blob
// is what the traversal reads from flash, typically 2-4x smaller than the v1
// edge region. All integers are little-endian.
package sem

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/graph"
)

// Magic identifies the graph file format ("ASG1": Async Semi-external Graph).
const Magic = 0x31475341

// Format versions: v1 stores raw fixed-width edge records, v2 stores
// delta+varint compressed adjacency blocks behind a block-extent index.
// Open accepts both; WriteCSR emits v1 and WriteCompressed emits v2.
const (
	Version           = 1
	VersionCompressed = 2
)

// Header flags.
const (
	flagWeighted   = 1 << 0
	flag64Bit      = 1 << 1
	flagCompressed = 1 << 2
	// flagSharded marks a file holding one shard of a hash-partitioned graph;
	// a 24-byte shard map (see sharded.go) follows the header before the
	// vertex index. Files without the flag are byte-identical to pre-shard
	// writers' output.
	flagSharded = 1 << 3
	// flagInEdges marks a file carrying a reverse-adjacency (in-edge) section
	// after the edge region, the storage behind bottom-up traversal phases:
	//
	//	v1: in-offsets (n+1) x uint64   -- edge-record counts
	//	    in-records  mIn x vertexId  -- source ids only, never weighted
	//	v2: in-index   (n+1) x uint64   -- BYTE offsets of in-blocks
	//	    in-degrees  n x uint32      -- in-neighbor counts
	//	    in-blob                     -- delta+varint blocks, no weight stream
	//
	// The section mirrors the file's own format version. Weights are never
	// stored: the only consumer is the bottom-up BFS step, which needs edge
	// sources, not costs.
	flagInEdges = 1 << 4
	// flagSymmetric asserts the out-adjacency is its own transpose (the writer
	// symmetrized the graph), so in-edge reads are served from the edge region
	// itself and no in-edge section exists. Mutually exclusive with
	// flagInEdges.
	flagSymmetric = 1 << 5
)

const headerSize = 40

// Store is the device interface a semi-external graph reads from: the
// simulated flash device, a real file, or anything positionally readable.
type Store interface {
	io.ReaderAt
}

// Graph is a semi-external CSR: offsets in memory, edges on the store.
// It implements graph.Adjacency.
type Graph[V graph.Vertex] struct {
	store   Store
	offsets []uint64 // n+1 entries, RAM-resident ("information about the vertices")
	// In format v1 offsets count edge records; in v2 they are byte offsets of
	// the compressed blocks within the blob, and degrees carries the neighbor
	// counts the byte extents cannot express.
	degrees    []uint32 // v2 only: out-degree per vertex
	n, m       uint64
	weighted   bool
	compressed bool
	recSize    int
	vSize      int
	edgeBase   int64 // byte offset of the first edge record (v2: of the blob)

	// Shard-map fields (zero values for plain files): this file holds shard
	// `shard` of a `shards`-way partition whose logical graph has totalEdges
	// edges; m counts only this shard's records.
	shard      int
	shards     int
	totalEdges uint64

	// In-edge section state (see flagInEdges / flagSymmetric). symmetric means
	// in-edges are served from the edge region; otherwise inOffsets (and, for
	// v2, inDegrees) index a dedicated reverse-adjacency section at
	// inEdgeBase. Both nil/false for files without reverse capability.
	symmetric  bool
	inOffsets  []uint64
	inDegrees  []uint32 // v2 in-sections only
	inEdgeBase int64

	// prefetch, when non-nil, services NeighborsBatch windows with coalesced
	// asynchronous span reads (see prefetch.go). Nil means NeighborsBatch is
	// a no-op and every Neighbors call reads synchronously.
	prefetch *Prefetcher

	// State-aware cache-policy glue (see state.go): set together by
	// EnableStateCache when the store is a CachedStore. state receives the
	// engine's settle notifications mapped to block ids; cache answers the
	// pop-window affinity probes. Both nil under the legacy LRU policy.
	state *StatePolicy
	cache *CachedStore
}

// vertexWidth reports the on-disk vertex id width for V.
func vertexWidth[V graph.Vertex]() int {
	if uint64(^V(0)) == uint64(^uint32(0)) {
		return 4
	}
	return 8
}

// writeHeader emits the 40-byte header and, when sm is non-nil, the 24-byte
// shard map that follows it.
func writeHeader(w io.Writer, version uint32, flags, n, m, blobBytes uint64, sm *shardMap) error {
	if sm != nil {
		flags |= flagSharded
	}
	header := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(header[0:], Magic)
	binary.LittleEndian.PutUint32(header[4:], version)
	binary.LittleEndian.PutUint64(header[8:], flags)
	binary.LittleEndian.PutUint64(header[16:], n)
	binary.LittleEndian.PutUint64(header[24:], m)
	binary.LittleEndian.PutUint64(header[32:], blobBytes)
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("sem: write header: %w", err)
	}
	if sm != nil {
		if _, err := w.Write(sm.encode()); err != nil {
			return fmt.Errorf("sem: write shard map: %w", err)
		}
	}
	return nil
}

// WriteConfig selects the on-flash layout of Write, the one writer behind
// every CLI emit path: format version, reverse-adjacency capability, and
// shard extraction compose freely.
type WriteConfig struct {
	// Compress selects format v2 (delta+varint blocks) over raw v1 records.
	Compress bool
	// InEdges appends a reverse-adjacency section (flagInEdges) built from
	// the transpose of the logical graph, enabling bottom-up traversal
	// phases. Mutually exclusive with Symmetric.
	InEdges bool
	// Symmetric marks the out-adjacency as its own transpose (flagSymmetric):
	// direction-capable with zero extra storage. The caller asserts symmetry
	// (e.g. Builder.Symmetrize output); nothing is verified.
	Symmetric bool
	// Shard, when non-nil, extracts and writes that shard of g with a shard
	// map. The in-edge section of shard k holds the in-adjacency of k's owned
	// vertices (the transpose hash-partitions by destination, exactly as the
	// forward adjacency does by source).
	Shard *ShardConfig
}

// Validate rejects contradictory layout requests: the two reverse-adjacency
// capabilities are exclusive (a symmetric graph already serves in-edges from
// its edge region), and a shard request must name a member inside its range.
func (c *WriteConfig) Validate() error {
	_ = c.Compress // free toggle: v1 and v2 both support every capability below
	if c.InEdges && c.Symmetric {
		return fmt.Errorf("sem: InEdges and Symmetric are mutually exclusive (a symmetric graph already serves in-edges from its edge region)")
	}
	if c.Shard != nil {
		sc := *c.Shard
		sc.normalize()
		return sc.Validate()
	}
	return nil
}

// Write serializes an in-memory CSR into the semi-external format per cfg.
func Write[V graph.Vertex](w io.Writer, g *graph.CSR[V], cfg WriteConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	var sm *shardMap
	sub := g
	if cfg.Shard != nil {
		sc := *cfg.Shard
		sc.normalize()
		var err error
		if sub, err = graph.ExtractShard(g, sc.Shard, sc.Shards); err != nil {
			return err
		}
		sm = &shardMap{
			shard:      uint32(sc.Shard),
			shards:     uint32(sc.Shards),
			totalEdges: g.NumEdges(),
			hashID:     shardHashFib,
		}
	}
	var in *graph.CSR[V]
	if cfg.InEdges {
		t, err := graph.Transpose(g)
		if err != nil {
			return err
		}
		if cfg.Shard != nil {
			if t, err = graph.ExtractShard(t, cfg.Shard.Shard, cfg.Shard.Shards); err != nil {
				return err
			}
		}
		// The section stores sources only; drop the transposed weights.
		if in, err = graph.NewCSRRaw(t.Offsets(), t.Targets(), nil); err != nil {
			return err
		}
	}
	if cfg.Compress {
		c, err := graph.Compress(sub)
		if err != nil {
			return err
		}
		var inC *graph.CompressedCSR[V]
		if in != nil {
			if inC, err = graph.Compress(in); err != nil {
				return err
			}
		}
		return writeCompressed(w, c, inC, cfg.Symmetric, sm)
	}
	return writeCSR(w, sub, in, cfg.Symmetric, sm)
}

// WriteCSR serializes an in-memory CSR into the semi-external format.
func WriteCSR[V graph.Vertex](w io.Writer, g *graph.CSR[V]) error {
	return writeCSR(w, g, nil, false, nil)
}

// sectionFlags folds the reverse-capability bits into flags.
func sectionFlags(flags uint64, hasIn, symmetric bool) uint64 {
	if hasIn {
		flags |= flagInEdges
	}
	if symmetric {
		flags |= flagSymmetric
	}
	return flags
}

func writeCSR[V graph.Vertex](w io.Writer, g, in *graph.CSR[V], symmetric bool, sm *shardMap) error {
	vSize := vertexWidth[V]()
	var flags uint64
	if g.Weighted() {
		flags |= flagWeighted
	}
	if vSize == 8 {
		flags |= flag64Bit
	}
	flags = sectionFlags(flags, in != nil, symmetric)
	if err := writeHeader(w, Version, flags, g.NumVertices(), g.NumEdges(), 0, sm); err != nil {
		return err
	}

	buf := make([]byte, 0, 1<<16)
	for _, off := range g.Offsets() {
		buf = binary.LittleEndian.AppendUint64(buf, off)
		if len(buf) >= 1<<16-8 {
			if _, err := w.Write(buf); err != nil {
				return fmt.Errorf("sem: write offsets: %w", err)
			}
			buf = buf[:0]
		}
	}
	targets := g.Targets()
	weights := g.WeightsRaw()
	for i, t := range targets {
		if vSize == 4 {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(t))
		} else {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(t))
		}
		if weights != nil {
			buf = binary.LittleEndian.AppendUint32(buf, weights[i])
		}
		if len(buf) >= 1<<16-16 {
			if _, err := w.Write(buf); err != nil {
				return fmt.Errorf("sem: write edges: %w", err)
			}
			buf = buf[:0]
		}
	}
	if in != nil {
		for _, off := range in.Offsets() {
			buf = binary.LittleEndian.AppendUint64(buf, off)
			if len(buf) >= 1<<16-8 {
				if _, err := w.Write(buf); err != nil {
					return fmt.Errorf("sem: write in-edge offsets: %w", err)
				}
				buf = buf[:0]
			}
		}
		for _, t := range in.Targets() {
			if vSize == 4 {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(t))
			} else {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(t))
			}
			if len(buf) >= 1<<16-16 {
				if _, err := w.Write(buf); err != nil {
					return fmt.Errorf("sem: write in-edge records: %w", err)
				}
				buf = buf[:0]
			}
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("sem: write tail: %w", err)
		}
	}
	return nil
}

// WriteCompressed serializes an already-compressed graph into format v2:
// header, block-extent index ((n+1) byte offsets), degree array, blob.
func WriteCompressed[V graph.Vertex](w io.Writer, c *graph.CompressedCSR[V]) error {
	return writeCompressed(w, c, nil, false, nil)
}

func writeCompressed[V graph.Vertex](w io.Writer, c, in *graph.CompressedCSR[V], symmetric bool, sm *shardMap) error {
	vSize := vertexWidth[V]()
	flags := uint64(flagCompressed)
	if c.Weighted() {
		flags |= flagWeighted
	}
	if vSize == 8 {
		flags |= flag64Bit
	}
	flags = sectionFlags(flags, in != nil, symmetric)
	blob := c.Blob()
	if err := writeHeader(w, VersionCompressed, flags, c.NumVertices(), c.NumEdges(), uint64(len(blob)), sm); err != nil {
		return err
	}
	if err := writeIndexAndBlob(w, c.BlockOffsets(), c.Degrees(), blob); err != nil {
		return err
	}
	if in != nil {
		return writeIndexAndBlob(w, in.BlockOffsets(), in.Degrees(), in.Blob())
	}
	return nil
}

// writeIndexAndBlob emits one v2 section: byte-offset index, degree array,
// then the block blob. Both the edge region and the in-edge section share
// this layout.
func writeIndexAndBlob(w io.Writer, offsets []uint64, degrees []uint32, blob []byte) error {
	buf := make([]byte, 0, 1<<16)
	for _, off := range offsets {
		buf = binary.LittleEndian.AppendUint64(buf, off)
		if len(buf) >= 1<<16-8 {
			if _, err := w.Write(buf); err != nil {
				return fmt.Errorf("sem: write block index: %w", err)
			}
			buf = buf[:0]
		}
	}
	for _, deg := range degrees {
		buf = binary.LittleEndian.AppendUint32(buf, deg)
		if len(buf) >= 1<<16-8 {
			if _, err := w.Write(buf); err != nil {
				return fmt.Errorf("sem: write degrees: %w", err)
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("sem: write degrees: %w", err)
		}
	}
	if _, err := w.Write(blob); err != nil {
		return fmt.Errorf("sem: write blocks: %w", err)
	}
	return nil
}

// WriteCSRCompressed compresses an in-memory CSR and serializes it into
// format v2, the -compress path of gengraph and convert.
func WriteCSRCompressed[V graph.Vertex](w io.Writer, g *graph.CSR[V]) error {
	c, err := graph.Compress(g)
	if err != nil {
		return err
	}
	return WriteCompressed(w, c)
}

// Open reads the header and vertex index of a semi-external graph, leaving
// edge records on the store. The vertex width of V must match the file.
func Open[V graph.Vertex](store Store) (*Graph[V], error) {
	header := make([]byte, headerSize)
	if _, err := io.ReadFull(io.NewSectionReader(store, 0, headerSize), header); err != nil {
		return nil, fmt.Errorf("sem: read header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(header[0:]); m != Magic {
		return nil, fmt.Errorf("sem: bad magic %#x", m)
	}
	version := binary.LittleEndian.Uint32(header[4:])
	if version != Version && version != VersionCompressed {
		return nil, fmt.Errorf("sem: unsupported version %d", version)
	}
	flags := binary.LittleEndian.Uint64(header[8:])
	n := binary.LittleEndian.Uint64(header[16:])
	m := binary.LittleEndian.Uint64(header[24:])
	blobBytes := binary.LittleEndian.Uint64(header[32:])

	vSize := 4
	if flags&flag64Bit != 0 {
		vSize = 8
	}
	if vSize != vertexWidth[V]() {
		return nil, fmt.Errorf("sem: file has %d-byte vertex ids, caller expects %d", vSize, vertexWidth[V]())
	}
	g := &Graph[V]{
		store:      store,
		n:          n,
		m:          m,
		weighted:   flags&flagWeighted != 0,
		compressed: flags&flagCompressed != 0,
		vSize:      vSize,
	}
	if g.compressed != (version == VersionCompressed) {
		return nil, fmt.Errorf("sem: version %d contradicts compressed flag %v", version, g.compressed)
	}
	g.recSize = vSize
	if g.weighted {
		g.recSize += 4
	}
	if n >= 1<<56 || m >= 1<<56 || blobBytes >= 1<<56 {
		return nil, fmt.Errorf("sem: implausible header (n=%d m=%d blob=%d)", n, m, blobBytes)
	}
	indexBase := int64(headerSize)
	if flags&flagSharded != 0 {
		raw := make([]byte, shardMapSize)
		if _, err := io.ReadFull(io.NewSectionReader(store, headerSize, shardMapSize), raw); err != nil {
			return nil, fmt.Errorf("sem: read shard map: %w", err)
		}
		sm, err := parseShardMap(raw)
		if err != nil {
			return nil, err
		}
		g.shard = int(sm.shard)
		g.shards = int(sm.shards)
		g.totalEdges = sm.totalEdges
		if g.totalEdges < m {
			return nil, fmt.Errorf("sem: %w: shard map claims %d total edges, shard alone holds %d",
				ErrShardSpec, g.totalEdges, m)
		}
		indexBase += shardMapSize
	}
	g.edgeBase = indexBase + int64(n+1)*8
	if g.compressed {
		g.edgeBase += int64(n) * 4 // the degree array sits between index and blob
	}

	// Validate the header against the store size before allocating the
	// index: a corrupt vertex count must not drive a huge allocation.
	if szr, ok := store.(interface{ Size() int64 }); ok {
		need := g.edgeBase + int64(m)*int64(g.recSize)
		if g.compressed {
			need = g.edgeBase + int64(blobBytes)
		}
		if szr.Size() < need {
			return nil, fmt.Errorf("sem: store holds %d bytes, header requires %d", szr.Size(), need)
		}
	}

	// The vertex index is the RAM-resident "algorithmic information about
	// the vertices". One sequential read at open time.
	raw := make([]byte, (n+1)*8)
	if _, err := io.ReadFull(io.NewSectionReader(store, indexBase, int64(len(raw))), raw); err != nil {
		return nil, fmt.Errorf("sem: read vertex index: %w", err)
	}
	g.offsets = make([]uint64, n+1)
	for i := range g.offsets {
		g.offsets[i] = binary.LittleEndian.Uint64(raw[i*8:])
	}
	want := m
	if g.compressed {
		want = blobBytes
	}
	if g.offsets[n] != want {
		return nil, fmt.Errorf("sem: corrupt index: offsets[n]=%d, want %d", g.offsets[n], want)
	}
	for i := uint64(0); i < n; i++ {
		if g.offsets[i] > g.offsets[i+1] {
			return nil, fmt.Errorf("sem: corrupt index: offsets decrease at %d", i)
		}
	}
	if g.compressed {
		raw = make([]byte, n*4)
		if _, err := io.ReadFull(io.NewSectionReader(store, indexBase+int64(n+1)*8, int64(len(raw))), raw); err != nil {
			return nil, fmt.Errorf("sem: read degree array: %w", err)
		}
		g.degrees = make([]uint32, n)
		var sum uint64
		for i := range g.degrees {
			deg := binary.LittleEndian.Uint32(raw[i*4:])
			g.degrees[i] = deg
			sum += uint64(deg)
			// Every encoded value is at least one varint byte, so a degree
			// can never exceed its block's byte length. Rejecting here bounds
			// every decode-buffer allocation by the blob size.
			if uint64(deg) > g.offsets[uint64(i)+1]-g.offsets[i] {
				return nil, fmt.Errorf("sem: corrupt degree array: vertex %d claims %d edges in a %d-byte block",
					i, deg, g.offsets[uint64(i)+1]-g.offsets[i])
			}
		}
		if sum != m {
			return nil, fmt.Errorf("sem: corrupt degree array: sum %d, m %d", sum, m)
		}
	}

	// Reverse-adjacency capability: a symmetric graph serves in-edges from
	// the edge region itself; otherwise an in-edge section may follow it.
	g.symmetric = flags&flagSymmetric != 0
	if flags&flagInEdges != 0 {
		if g.symmetric {
			return nil, fmt.Errorf("sem: corrupt header: symmetric and in-edge flags are mutually exclusive")
		}
		if err := g.openInSection(store); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// openInSection reads the RAM-resident indexes of the in-edge section that
// follows the edge region (see flagInEdges for the layout) and validates them
// the same way Open validates the forward index.
func (g *Graph[V]) openInSection(store Store) error {
	inBase := g.edgeBase + g.EdgeBytes()
	raw := make([]byte, (g.n+1)*8)
	if _, err := io.ReadFull(io.NewSectionReader(store, inBase, int64(len(raw))), raw); err != nil {
		return fmt.Errorf("sem: read in-edge index: %w", err)
	}
	g.inOffsets = make([]uint64, g.n+1)
	for i := range g.inOffsets {
		g.inOffsets[i] = binary.LittleEndian.Uint64(raw[i*8:])
	}
	if g.inOffsets[0] != 0 {
		return fmt.Errorf("sem: corrupt in-edge index: offsets start at %d", g.inOffsets[0])
	}
	for i := uint64(0); i < g.n; i++ {
		if g.inOffsets[i] > g.inOffsets[i+1] {
			return fmt.Errorf("sem: corrupt in-edge index: offsets decrease at %d", i)
		}
	}
	g.inEdgeBase = inBase + int64(g.n+1)*8
	if !g.compressed {
		// v1: offsets count bare vertex-id records. A whole (unsharded) file's
		// in-edge count must equal its edge count — every edge has one source.
		if !g.Sharded() && g.inOffsets[g.n] != g.m {
			return fmt.Errorf("sem: corrupt in-edge index: %d in-records, %d edges", g.inOffsets[g.n], g.m)
		}
		if szr, ok := store.(interface{ Size() int64 }); ok {
			if need := g.inEdgeBase + int64(g.inOffsets[g.n])*int64(g.vSize); szr.Size() < need {
				return fmt.Errorf("sem: store holds %d bytes, in-edge section requires %d", szr.Size(), need)
			}
		}
		return nil
	}
	// v2: a degree array sits between the byte-offset index and the in-blob.
	g.inEdgeBase += int64(g.n) * 4
	raw = make([]byte, g.n*4)
	if _, err := io.ReadFull(io.NewSectionReader(store, inBase+int64(g.n+1)*8, int64(len(raw))), raw); err != nil {
		return fmt.Errorf("sem: read in-degree array: %w", err)
	}
	g.inDegrees = make([]uint32, g.n)
	var sum uint64
	for i := range g.inDegrees {
		deg := binary.LittleEndian.Uint32(raw[i*4:])
		g.inDegrees[i] = deg
		sum += uint64(deg)
		// Same bound as the forward degrees: one varint byte per value means a
		// degree can never exceed its block's byte length, which bounds every
		// decode-buffer allocation by the in-blob size.
		if uint64(deg) > g.inOffsets[uint64(i)+1]-g.inOffsets[i] {
			return fmt.Errorf("sem: corrupt in-degree array: vertex %d claims %d in-edges in a %d-byte block",
				i, deg, g.inOffsets[uint64(i)+1]-g.inOffsets[i])
		}
	}
	if !g.Sharded() && sum != g.m {
		return fmt.Errorf("sem: corrupt in-degree array: sum %d, m %d", sum, g.m)
	}
	if szr, ok := store.(interface{ Size() int64 }); ok {
		if need := g.inEdgeBase + int64(g.inOffsets[g.n]); szr.Size() < need {
			return fmt.Errorf("sem: store holds %d bytes, in-edge section requires %d", szr.Size(), need)
		}
	}
	return nil
}

// NumVertices implements graph.Adjacency.
func (g *Graph[V]) NumVertices() uint64 { return g.n }

// NumEdges reports the number of edge records on the store.
func (g *Graph[V]) NumEdges() uint64 { return g.m }

// Weighted reports whether edge records carry weights.
func (g *Graph[V]) Weighted() bool { return g.weighted }

// Compressed reports whether the store holds format v2 compressed blocks.
func (g *Graph[V]) Compressed() bool { return g.compressed }

// Sharded reports whether the file carries a shard map: it holds one shard of
// a hash-partitioned logical graph rather than the whole graph.
func (g *Graph[V]) Sharded() bool { return g.shards > 0 }

// Shard reports this file's shard index within its partition (0 when the file
// is not sharded).
func (g *Graph[V]) Shard() int { return g.shard }

// Shards reports the partition width recorded in the shard map (0 when the
// file is not sharded).
func (g *Graph[V]) Shards() int { return g.shards }

// TotalEdges reports the logical graph's edge count: the shard map's total
// for sharded files, NumEdges otherwise.
func (g *Graph[V]) TotalEdges() uint64 {
	if g.Sharded() {
		return g.totalEdges
	}
	return g.m
}

// Degree implements graph.Adjacency from the RAM-resident index.
func (g *Graph[V]) Degree(v V) int {
	if g.compressed {
		return int(g.degrees[v])
	}
	return int(g.offsets[v+1] - g.offsets[v])
}

// EdgeBytes reports the size of the edge region in bytes, the paper's
// "size on EM device" (excluding the RAM-resident index). For compressed
// graphs this is the blob size — divide by NumEdges for bytes/edge.
func (g *Graph[V]) EdgeBytes() int64 {
	if g.compressed {
		return int64(g.offsets[g.n])
	}
	return int64(g.m) * int64(g.recSize)
}

// extentOf reports the byte range of v's adjacency on the store: the record
// span in v1, the compressed block in v2. n is 0 for isolated vertices.
//
//lint:hotpath
func (g *Graph[V]) extentOf(v V) (off int64, n int) {
	lo, hi := g.offsets[v], g.offsets[v+1]
	if g.compressed {
		return g.edgeBase + int64(lo), int(hi - lo)
	}
	return g.edgeBase + int64(lo)*int64(g.recSize), int(hi-lo) * g.recSize
}

// decodeRecords decodes len(targets) consecutive edge records from block into
// targets and, when non-nil, weights. block must hold at least
// len(targets)*recSize bytes.
//
//lint:hotpath
func (g *Graph[V]) decodeRecords(block []byte, targets []V, weights []graph.Weight) {
	for i := range targets {
		rec := block[i*g.recSize:]
		if g.vSize == 4 {
			targets[i] = V(binary.LittleEndian.Uint32(rec))
		} else {
			targets[i] = V(binary.LittleEndian.Uint64(rec))
		}
		if weights != nil {
			weights[i] = binary.LittleEndian.Uint32(rec[g.vSize:])
		}
	}
}

// decodeInto decodes v's adjacency block (deg edges, raw records or a v2
// compressed block) through the scratch buffers, returning slices valid
// until the next call with the same scratch.
//
//lint:hotpath
func (g *Graph[V]) decodeInto(block []byte, v V, deg int, scratch *graph.Scratch[V]) ([]V, []graph.Weight, error) {
	if cap(scratch.Targets) < deg {
		scratch.Targets = make([]V, deg)
	}
	targets := scratch.Targets[:deg]
	var weights []graph.Weight
	if g.weighted {
		if cap(scratch.Weights) < deg {
			scratch.Weights = make([]graph.Weight, deg)
		}
		weights = scratch.Weights[:deg]
	}
	if g.compressed {
		if _, err := graph.DecodeAdjBlock(block, v, targets, weights); err != nil {
			return nil, nil, err
		}
		return targets, weights, nil
	}
	g.decodeRecords(block, targets, weights)
	return targets, weights, nil
}

// Neighbors implements graph.Adjacency with one positional read per call —
// the semi-external random access the experiments measure. When the worker's
// scratch carries a prefetch session holding an in-flight read for v (see
// NeighborsBatch), the call waits for that read instead of issuing its own,
// and decodes straight out of the coalesced span buffer. The decoded slices
// live in scratch and are valid until the next call.
func (g *Graph[V]) Neighbors(v V, scratch *graph.Scratch[V]) ([]V, []graph.Weight, error) {
	deg := g.Degree(v)
	if deg == 0 {
		return nil, nil, nil
	}
	if sess, ok := scratch.Prefetch.(*prefetchSession); ok {
		if block, err, prefetched := sess.take(uint64(v)); prefetched {
			if err != nil {
				return nil, nil, fmt.Errorf("sem: read adjacency of %d: %w", v, err)
			}
			return g.decodeInto(block, v, deg, scratch)
		}
	}
	off, need := g.extentOf(v)
	if cap(scratch.Block) < need {
		scratch.Block = make([]byte, need)
	}
	block := scratch.Block[:need]
	if _, err := g.store.ReadAt(block, off); err != nil {
		return nil, nil, fmt.Errorf("sem: read adjacency of %d: %w", v, err)
	}
	return g.decodeInto(block, v, deg, scratch)
}

// loadChunkBytes is the sequential read granularity of LoadCSR.
const loadChunkBytes = 1 << 20

// LoadCSR reads an entire semi-external graph back into an in-memory CSR.
// Used for round-trip verification and by tools that want IM processing of a
// stored graph. The edge region is streamed in large sequential chunks — one
// bandwidth-bound read per ~1 MiB instead of one latency-charged random read
// per vertex, which is the difference between seconds and hours on the
// simulated devices.
func LoadCSR[V graph.Vertex](store Store) (*graph.CSR[V], error) {
	g, err := Open[V](store)
	if err != nil {
		return nil, err
	}
	if g.compressed {
		return g.loadCompressed()
	}
	targets := make([]V, g.m)
	var weights []graph.Weight
	if g.weighted {
		weights = make([]graph.Weight, g.m)
	}
	recsPerChunk := uint64(loadChunkBytes / g.recSize)
	if recsPerChunk < 1 {
		recsPerChunk = 1
	}
	buf := make([]byte, recsPerChunk*uint64(g.recSize))
	for rec := uint64(0); rec < g.m; {
		take := recsPerChunk
		if rec+take > g.m {
			take = g.m - rec
		}
		block := buf[:take*uint64(g.recSize)]
		off := g.edgeBase + int64(rec)*int64(g.recSize)
		if _, err := g.store.ReadAt(block, off); err != nil {
			return nil, fmt.Errorf("sem: load edge records at %d: %w", rec, err)
		}
		var ws []graph.Weight
		if weights != nil {
			ws = weights[rec : rec+take]
		}
		g.decodeRecords(block, targets[rec:rec+take], ws)
		rec += take
	}
	offsets := make([]uint64, len(g.offsets))
	copy(offsets, g.offsets)
	return graph.NewCSRRaw(offsets, targets, weights)
}

// loadCompressed streams a v2 blob back into an in-memory CSR: vertices are
// grouped into ~loadChunkBytes byte ranges (one bandwidth-bound sequential
// read each) and their blocks decoded straight into the final edge arrays.
func (g *Graph[V]) loadCompressed() (*graph.CSR[V], error) {
	edgeOffsets := make([]uint64, g.n+1)
	for v := uint64(0); v < g.n; v++ {
		edgeOffsets[v+1] = edgeOffsets[v] + uint64(g.degrees[v])
	}
	targets := make([]V, g.m)
	var weights []graph.Weight
	if g.weighted {
		weights = make([]graph.Weight, g.m)
	}
	var buf []byte
	for v := uint64(0); v < g.n; {
		// Extend the chunk vertex by vertex until it holds ~loadChunkBytes of
		// blob (always at least one vertex, however large its block).
		end := v + 1
		for end < g.n && g.offsets[end+1]-g.offsets[v] <= loadChunkBytes {
			end++
		}
		lo, hi := g.offsets[v], g.offsets[end]
		if need := int(hi - lo); cap(buf) < need {
			buf = make([]byte, need)
		}
		block := buf[:hi-lo]
		if len(block) > 0 {
			if _, err := g.store.ReadAt(block, g.edgeBase+int64(lo)); err != nil {
				return nil, fmt.Errorf("sem: load blocks at vertex %d: %w", v, err)
			}
		}
		for ; v < end; v++ {
			elo, ehi := edgeOffsets[v], edgeOffsets[v+1]
			if elo == ehi {
				continue
			}
			var ws []graph.Weight
			if weights != nil {
				ws = weights[elo:ehi]
			}
			vb := block[g.offsets[v]-lo : g.offsets[v+1]-lo]
			if _, err := graph.DecodeAdjBlock(vb, V(v), targets[elo:ehi], ws); err != nil {
				return nil, fmt.Errorf("sem: decode block of vertex %d: %w", v, err)
			}
		}
	}
	return graph.NewCSRRaw(edgeOffsets, targets, weights)
}

// LoadCompressedCSR reads an entire v2 graph back into an in-memory
// CompressedCSR: the index, degrees, and blob move to RAM but the edges stay
// delta+varint encoded — the IM footprint win of the compressed format
// without a decode pass. Fails on v1 stores (use LoadCSR).
func LoadCompressedCSR[V graph.Vertex](store Store) (*graph.CompressedCSR[V], error) {
	g, err := Open[V](store)
	if err != nil {
		return nil, err
	}
	if !g.compressed {
		return nil, fmt.Errorf("sem: store holds a raw v1 graph, not compressed blocks")
	}
	blob := make([]byte, g.offsets[g.n])
	for off := 0; off < len(blob); off += loadChunkBytes {
		end := off + loadChunkBytes
		if end > len(blob) {
			end = len(blob)
		}
		if _, err := g.store.ReadAt(blob[off:end], g.edgeBase+int64(off)); err != nil {
			return nil, fmt.Errorf("sem: load blob at %d: %w", off, err)
		}
	}
	offsets := make([]uint64, len(g.offsets))
	copy(offsets, g.offsets)
	degrees := make([]uint32, len(g.degrees))
	copy(degrees, g.degrees)
	return graph.NewCompressedCSRRaw[V](offsets, degrees, blob, g.weighted)
}
