package ssd

import (
	"fmt"
	"sync"
)

// RAID0 stripes reads and writes across several devices, the software RAID 0
// the paper builds all three of its flash configurations from ("4x 80GB
// FusionIO SLC, PCI-E cards in a software RAID 0 configuration"). Striping
// multiplies available I/O parallelism: a request's chunks land on different
// member devices and are serviced concurrently, which is how four SATA SSDs
// reach IOPS no single card delivers.
//
// Members address the same logical byte space (they share a backing in the
// simulation); RAID0 routes chunk c to member c mod len(devices) and issues
// the per-member segment reads concurrently.
type RAID0 struct {
	devices []*Device
	chunk   int64
}

// NewRAID0 builds a stripe set with the given chunk size over the member
// devices.
func NewRAID0(devices []*Device, chunk int64) (*RAID0, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("ssd: RAID0 needs at least one device")
	}
	if chunk <= 0 {
		return nil, fmt.Errorf("ssd: RAID0 chunk size must be positive, got %d", chunk)
	}
	for i, d := range devices {
		if d == nil {
			return nil, fmt.Errorf("ssd: RAID0 member %d is nil", i)
		}
	}
	return &RAID0{devices: devices, chunk: chunk}, nil
}

// NewRAID0Array is a convenience constructor: `cards` member devices with the
// per-card profile, all over the shared backing.
func NewRAID0Array(perCard Profile, cards int, chunk int64, backing Backing) (*RAID0, error) {
	if cards <= 0 {
		return nil, fmt.Errorf("ssd: RAID0 needs at least one card, got %d", cards)
	}
	devices := make([]*Device, cards)
	for i := range devices {
		devices[i] = New(perCard, backing)
	}
	return NewRAID0(devices, chunk)
}

// Members returns the member devices (for stats inspection).
func (r *RAID0) Members() []*Device { return r.devices }

// Size implements the Sizer the semi-external cache requires.
func (r *RAID0) Size() int64 { return r.devices[0].Size() }

// Stats aggregates member counters.
func (r *RAID0) Stats() Stats {
	var total Stats
	for _, d := range r.devices {
		total.Add(d.Stats())
	}
	return total
}

type segment struct {
	dev    int
	off    int64 // logical offset
	lo, hi int   // slice of the caller's buffer
}

func (r *RAID0) segments(off int64, n int) []segment {
	var segs []segment
	pos := off
	done := 0
	for done < n {
		chunkIdx := pos / r.chunk
		inChunk := pos - chunkIdx*r.chunk
		take := int(r.chunk - inChunk)
		if take > n-done {
			take = n - done
		}
		segs = append(segs, segment{
			dev: int(chunkIdx % int64(len(r.devices))),
			off: pos,
			lo:  done,
			hi:  done + take,
		})
		pos += int64(take)
		done += take
	}
	return segs
}

// ReadAt implements io.ReaderAt, issuing per-member segment reads
// concurrently.
func (r *RAID0) ReadAt(p []byte, off int64) (int, error) {
	segs := r.segments(off, len(p))
	if len(segs) == 1 {
		s := segs[0]
		return r.devices[s.dev].ReadAt(p[s.lo:s.hi], s.off)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(segs))
	for i, s := range segs {
		wg.Add(1)
		go func(i int, s segment) {
			defer wg.Done()
			_, errs[i] = r.devices[s.dev].ReadAt(p[s.lo:s.hi], s.off)
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// WriteAt implements io.WriterAt with the same striping.
func (r *RAID0) WriteAt(p []byte, off int64) (int, error) {
	segs := r.segments(off, len(p))
	if len(segs) == 1 {
		s := segs[0]
		return r.devices[s.dev].WriteAt(p[s.lo:s.hi], s.off)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(segs))
	for i, s := range segs {
		wg.Add(1)
		go func(i int, s segment) {
			defer wg.Done()
			_, errs[i] = r.devices[s.dev].WriteAt(p[s.lo:s.hi], s.off)
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// CardProfile derives a single-member profile from an aggregate array
// profile: 1/cards of the channels (minimum 1), same latencies. Useful for
// stripe-width ablations where the aggregate parallelism should stay fixed.
func CardProfile(aggregate Profile, cards int) Profile {
	p := aggregate
	p.Name = fmt.Sprintf("%s/card", aggregate.Name)
	p.Channels = aggregate.Channels / cards
	if p.Channels < 1 {
		p.Channels = 1
	}
	if p.BytesPerSec > 0 {
		p.BytesPerSec = aggregate.BytesPerSec / int64(cards)
		if p.BytesPerSec < 1 {
			p.BytesPerSec = 1
		}
	}
	return p
}
