package core

import (
	"sync"

	"repro/internal/pq"
)

// This file is the engine's mailbox layer: the lock-protected per-worker
// visitor queues (mailboxes) and the per-worker outboxes that batch pushes
// destined for other owners.
//
// The paper hides queue-lock contention by oversubscribing threads (512 on 16
// cores, §IV-A) so that any one queue's lock is rarely fought over. The
// mailbox layer attacks the same cost directly: a visitor's pushes are
// buffered in its worker's outbox, bucketed by destination owner, and
// delivered in batches, so the destination's lock and condvar signal are
// amortized over Config.Batch items instead of paid per push. Batching is
// drain-triggered as well as size-triggered: a worker flushes every outbox
// buffer before it blocks on its own empty mailbox, which bounds delivery
// latency and makes starvation (and outbox-induced deadlock) impossible —
// a blocked worker never holds undelivered visitors, and the termination
// counter includes buffered visitors, so the traversal cannot be declared
// finished while any outbox is non-empty.

// workQueue is one worker's mailbox: a priority queue guarded by a mutex and
// condvar. Only the owning worker pops; any worker (or external caller)
// delivers into it.
type workQueue struct {
	mu   sync.Mutex
	cond sync.Cond
	heap pq.Queue
	done bool
}

// push delivers a single visitor (the lock-per-push path).
//
//lint:hotpath
func (q *workQueue) push(it pq.Item) {
	q.mu.Lock()
	q.heap.Push(it)
	q.mu.Unlock()
	q.cond.Signal()
}

// pushBatch delivers a batch of visitors under one lock acquisition and one
// signal. Only the owning worker waits on the condvar, so Signal suffices.
//
//lint:hotpath
func (q *workQueue) pushBatch(its []pq.Item) {
	if len(its) == 0 {
		return
	}
	q.mu.Lock()
	q.heap.PushBatch(its)
	q.mu.Unlock()
	q.cond.Signal()
}

// tryPop removes the minimum visitor without blocking.
//
//lint:hotpath
func (q *workQueue) tryPop() (pq.Item, bool) {
	q.mu.Lock()
	it, ok := q.heap.Pop()
	q.mu.Unlock()
	return it, ok
}

// tryPopBatch removes up to k visitors under one lock acquisition, appending
// them to dst (the worker's pop-window path; see Config.Prefetch). The queue
// implementation bounds the batch: the heap hands out k successive minima,
// the bucket queue at most the current minimum-priority bucket.
//
//lint:hotpath
func (q *workQueue) tryPopBatch(dst []pq.Item, k int) []pq.Item {
	q.mu.Lock()
	dst = q.heap.PopBatch(dst, k)
	q.mu.Unlock()
	return dst
}

// pop blocks until a visitor is available or the engine is done. Remaining
// queued visitors are still drained after done is set; callers decide whether
// to execute or discard them.
func (q *workQueue) pop() (pq.Item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if it, ok := q.heap.Pop(); ok {
			return it, true
		}
		if q.done {
			return pq.Item{}, false
		}
		q.cond.Wait()
	}
}

func (q *workQueue) finish() {
	q.mu.Lock()
	q.done = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// outbox buffers visitors by destination owner and flushes each bucket when
// it reaches the batch size. One outbox belongs to exactly one producer
// goroutine (a worker, or one ParallelInit goroutine) and needs no locking of
// its own.
type outbox struct {
	queues []*workQueue
	bufs   [][]pq.Item
	batch  int
}

func newOutbox(queues []*workQueue, batch int) *outbox {
	return &outbox{
		queues: queues,
		bufs:   make([][]pq.Item, len(queues)),
		batch:  batch,
	}
}

// add buffers a visitor for the given owner, flushing that owner's bucket if
// it reached the batch size. The caller must already have registered the
// visitor with the Terminator.
//
//lint:hotpath
func (o *outbox) add(owner int, it pq.Item) {
	buf := append(o.bufs[owner], it)
	if len(buf) >= o.batch {
		o.queues[owner].pushBatch(buf)
		o.bufs[owner] = buf[:0]
		return
	}
	o.bufs[owner] = buf
}

// flush delivers every buffered visitor (the drain trigger). Must be called
// before the producer blocks or exits.
//
//lint:hotpath
func (o *outbox) flush() {
	for owner, buf := range o.bufs {
		if len(buf) > 0 {
			o.queues[owner].pushBatch(buf)
			o.bufs[owner] = buf[:0]
		}
	}
}

// reset discards buffered visitors without delivering them, keeping the
// per-owner buffers for reuse. Called between traversals on recycled
// resources: an aborted worker may have exited with undelivered visitors,
// which must not leak into the next run.
func (o *outbox) reset() {
	for owner := range o.bufs {
		o.bufs[owner] = o.bufs[owner][:0]
	}
}
