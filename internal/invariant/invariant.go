// Package invariant provides build-tag-gated runtime assertions for the
// engine's ownership/termination protocol — the correctness properties the
// Go type system and the race detector cannot see (an owner-rule breach
// through correctly-ordered atomics is invisible to -race).
//
// Assertions compile to nothing in normal builds: Enabled is a constant
// false, so every `if invariant.Enabled { ... }` guard is dead code the
// compiler eliminates entirely. Building with `-tags invariants` flips the
// constant and makes protocol violations panic at the violation site:
//
//	go test -race -count=1 -tags invariants ./...
//
// The checked invariants (see DESIGN.md "Protocol invariants and how they
// are enforced"):
//
//   - owner rule: per-vertex state is written only by the hash-designated
//     owning worker (core.Ctx.AssertOwned, the worker pop loops);
//   - terminator: the outstanding-work counter never goes negative
//     (core.Terminator.Finish);
//   - pool recycling: a resource set is never released twice, and a
//     recycled set re-enters the pool pristine — empty reopened queues and
//     empty outboxes (core.EnginePool).
package invariant

import "fmt"

// Failf reports an invariant violation by panicking with a prefixed
// message. Call sites must be guarded by Enabled so the formatting cost
// (and the check itself) vanish from normal builds.
func Failf(format string, args ...any) {
	panic("invariant violation: " + fmt.Sprintf(format, args...))
}
