package graph

import (
	"testing"
	"testing/quick"
)

func TestTranspose(t *testing.T) {
	g := mustBuild(t, 4, true, false, []Edge[uint32]{
		{Src: 0, Dst: 1, W: 2}, {Src: 1, Dst: 2, W: 3}, {Src: 0, Dst: 2, W: 4},
	})
	tr, err := Transpose(g)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEdges() != 3 || !tr.Weighted() {
		t.Fatalf("m=%d weighted=%v", tr.NumEdges(), tr.Weighted())
	}
	ts, ws, _ := tr.Neighbors(2, nil)
	if len(ts) != 2 || ts[0] != 0 || ts[1] != 1 || ws[0] != 4 || ws[1] != 3 {
		t.Fatalf("adj(2) = %v %v", ts, ws)
	}
	if d := tr.Degree(0); d != 0 {
		t.Fatalf("transposed degree(0) = %d", d)
	}
}

// Property: transposing twice restores the original edge multiset.
func TestQuickTransposeInvolution(t *testing.T) {
	type rawEdge struct {
		S, D uint8
		W    uint8
	}
	f := func(raw []rawEdge) bool {
		const n = 128
		in := make([]Edge[uint32], len(raw))
		for i, e := range raw {
			in[i] = Edge[uint32]{Src: uint32(e.S) % n, Dst: uint32(e.D) % n, W: Weight(e.W)}
		}
		g, err := FromEdges(n, true, false, in)
		if err != nil {
			return false
		}
		t1, err := Transpose(g)
		if err != nil {
			return false
		}
		t2, err := Transpose(t1)
		if err != nil {
			return false
		}
		if t2.NumEdges() != g.NumEdges() {
			return false
		}
		var a, b []Edge[uint32]
		g.ForEachEdge(func(u, v uint32, w Weight) { a = append(a, Edge[uint32]{u, v, w}) })
		t2.ForEachEdge(func(u, v uint32, w Weight) { b = append(b, Edge[uint32]{u, v, w}) })
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreesEmptyGraph(t *testing.T) {
	g := mustBuild[uint32](t, 0, false, false, nil)
	st := Degrees(g)
	if st.NumVerts != 0 || st.NumEdges != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDegreesStarGraph(t *testing.T) {
	edges := make([]Edge[uint32], 0, 99)
	for i := uint32(1); i < 100; i++ {
		edges = append(edges, Edge[uint32]{Src: 0, Dst: i})
	}
	g := mustBuild(t, 100, false, false, edges)
	st := Degrees(g)
	if st.Max != 99 || st.Min != 0 || st.Median != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Isolated != 99 {
		t.Fatalf("isolated = %d, want 99 (all leaves have out-degree 0)", st.Isolated)
	}
	if st.HubFrac != 1.0 {
		t.Fatalf("hub frac = %f, want 1.0 (the hub owns every edge)", st.HubFrac)
	}
	if st.Mean < 0.98 || st.Mean > 1.0 {
		t.Fatalf("mean = %f", st.Mean)
	}
}

func TestDegreesUniformGraph(t *testing.T) {
	var edges []Edge[uint32]
	for i := uint32(0); i < 50; i++ {
		edges = append(edges, Edge[uint32]{Src: i, Dst: (i + 1) % 50})
	}
	g := mustBuild(t, 50, false, false, edges)
	st := Degrees(g)
	if st.Min != 1 || st.Max != 1 || st.P99 != 1 || st.Isolated != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HubFrac > 0.05 {
		t.Fatalf("uniform ring hub frac = %f", st.HubFrac)
	}
}
