package pq

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBucketQueueEmpty(t *testing.T) {
	b := NewBucket()
	if b.Len() != 0 {
		t.Fatalf("Len = %d", b.Len())
	}
	if _, ok := b.Pop(); ok {
		t.Fatal("Pop on empty queue returned ok")
	}
}

func TestBucketQueuePriorityOrder(t *testing.T) {
	b := NewBucket()
	for _, p := range []uint64{5, 1, 9, 1, 5, 0} {
		b.Push(Item{Pri: p})
	}
	want := []uint64{0, 1, 1, 5, 5, 9}
	for i, w := range want {
		it, ok := b.Pop()
		if !ok || it.Pri != w {
			t.Fatalf("pop %d = (%d, %v), want %d", i, it.Pri, ok, w)
		}
	}
}

func TestBucketQueueFIFOWithinPriority(t *testing.T) {
	b := NewBucket()
	for v := uint64(0); v < 5; v++ {
		b.Push(Item{Pri: 3, V: v})
	}
	for v := uint64(0); v < 5; v++ {
		it, ok := b.Pop()
		if !ok || it.V != v {
			t.Fatalf("pop = (%d, %v), want FIFO order %d", it.V, ok, v)
		}
	}
}

func TestBucketQueueMaxLen(t *testing.T) {
	b := NewBucket()
	for i := 0; i < 7; i++ {
		b.Push(Item{Pri: uint64(i % 2)})
	}
	b.Pop()
	b.Pop()
	b.Push(Item{Pri: 9})
	if b.MaxLen() != 7 {
		t.Fatalf("MaxLen = %d, want 7", b.MaxLen())
	}
	if b.Len() != 6 {
		t.Fatalf("Len = %d, want 6", b.Len())
	}
}

func TestBucketQueueInterleaved(t *testing.T) {
	b := NewBucket()
	h := New(false) // reference for priority order
	r := rand.New(rand.NewPCG(3, 4))
	for op := 0; op < 5000; op++ {
		if r.IntN(3) != 0 || h.Len() == 0 {
			it := Item{Pri: r.Uint64N(16), V: r.Uint64()}
			b.Push(it)
			h.Push(it)
		} else {
			got, ok1 := b.Pop()
			want, ok2 := h.Pop()
			if ok1 != ok2 || got.Pri != want.Pri {
				t.Fatalf("op %d: bucket pop pri %d, heap pop pri %d", op, got.Pri, want.Pri)
			}
		}
	}
}

// Property: bucket queue drains in non-decreasing priority order and
// preserves the multiset of pushed items.
func TestQuickBucketQueue(t *testing.T) {
	f := func(pris []uint16) bool {
		b := NewBucket()
		counts := make(map[uint64]int)
		for _, p := range pris {
			b.Push(Item{Pri: uint64(p)})
			counts[uint64(p)]++
		}
		var prev uint64
		first := true
		for {
			it, ok := b.Pop()
			if !ok {
				break
			}
			if !first && it.Pri < prev {
				return false
			}
			prev, first = it.Pri, false
			counts[it.Pri]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return b.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
