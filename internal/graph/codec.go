package graph

// This file is the delta + varint adjacency block codec shared by the
// in-memory CompressedCSR and the semi-external format v2 (WebGraph-style,
// the representation trick FlashGraph-class engines use to multiply their
// effective IOPS ceiling). One vertex's sorted neighbor list becomes one
// variable-length block:
//
//	zigzag(targets[0] - v)            first gap, signed relative to the source
//	targets[i] - targets[i-1]         remaining gaps, unsigned (sorted input)
//	weights[0..deg)                   parallel varint stream, weighted graphs
//
// all as unsigned LEB128 varints (encoding/binary's Uvarint). The first gap
// is taken relative to the source vertex because RMAT/web-like graphs are
// locally clustered: a neighbor near its source costs one or two bytes
// instead of a full id. Block boundaries live outside the block (the
// CompressedCSR byte-offset index, the sem v2 block-extent index), as does
// the neighbor count — a block cannot be decoded without its (v, degree)
// pair, and carries no redundancy to validate against beyond its length.

import "encoding/binary"

// errCorruptBlock is the shared decode failure: a block that ends before its
// degree is satisfied or that encodes an id outside V's range. A sentinel
// (not fmt.Errorf) because decode is a traversal hot path.
type codecError string

func (e codecError) Error() string { return string(e) }

// ErrCorruptBlock reports a compressed adjacency block inconsistent with its
// recorded degree: truncated varints or values overflowing the vertex width.
const ErrCorruptBlock = codecError("graph: corrupt compressed adjacency block")

// ErrUnsortedAdjacency reports an encode request whose neighbor list is not
// sorted ascending; delta encoding requires non-negative gaps.
const ErrUnsortedAdjacency = codecError("graph: adjacency list is not sorted ascending")

// zigzagGap encodes the signed distance from v to t without overflow:
// distances of either sign map onto the unsigned varint domain with small
// magnitudes staying small (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...).
func zigzagGap(v, t uint64) uint64 {
	if t >= v {
		return (t - v) << 1
	}
	return (v-t)<<1 - 1
}

// unzigzagGap inverts zigzagGap.
func unzigzagGap(v, z uint64) uint64 {
	if z&1 == 0 {
		return v + z>>1
	}
	return v - (z>>1 + 1)
}

// AppendAdjBlock appends the encoded adjacency block of vertex v to dst and
// returns the extended slice. targets must be sorted ascending (duplicates
// allowed); weights must be nil or parallel to targets. A zero-degree vertex
// encodes to zero bytes.
func AppendAdjBlock[V Vertex](dst []byte, v V, targets []V, weights []Weight) ([]byte, error) {
	if len(targets) == 0 {
		return dst, nil
	}
	dst = binary.AppendUvarint(dst, zigzagGap(uint64(v), uint64(targets[0])))
	prev := uint64(targets[0])
	for _, t := range targets[1:] {
		if uint64(t) < prev {
			return dst, ErrUnsortedAdjacency
		}
		dst = binary.AppendUvarint(dst, uint64(t)-prev)
		prev = uint64(t)
	}
	for _, w := range weights {
		dst = binary.AppendUvarint(dst, uint64(w))
	}
	return dst, nil
}

// DecodeAdjBlock decodes the adjacency block of vertex v into the caller's
// pre-sized slices: len(targets) is the degree and len(weights) must be 0 or
// the degree. It returns the number of block bytes consumed. The slices are
// the per-worker scratch of the traversal engine — the call allocates
// nothing and never panics on arbitrary block bytes.
//
//lint:hotpath
func DecodeAdjBlock[V Vertex](block []byte, v V, targets []V, weights []Weight) (int, error) {
	if len(targets) == 0 {
		return 0, nil
	}
	z, n := binary.Uvarint(block)
	if n <= 0 {
		return 0, ErrCorruptBlock
	}
	off := n
	prev := unzigzagGap(uint64(v), z)
	if prev > uint64(^V(0)) {
		return 0, ErrCorruptBlock
	}
	targets[0] = V(prev)
	for i := 1; i < len(targets); i++ {
		gap, n := binary.Uvarint(block[off:])
		if n <= 0 {
			return 0, ErrCorruptBlock
		}
		off += n
		prev += gap
		if prev > uint64(^V(0)) {
			return 0, ErrCorruptBlock
		}
		targets[i] = V(prev)
	}
	for i := range weights {
		w, n := binary.Uvarint(block[off:])
		if n <= 0 || w > uint64(^Weight(0)) {
			return 0, ErrCorruptBlock
		}
		off += n
		weights[i] = Weight(w)
	}
	return off, nil
}

// NeighborCursor streams one vertex's compressed adjacency block without
// materializing it: targets first (Next), then, for weighted blocks, the
// parallel weight stream (NextWeight). The traversal kernel does not use the
// cursor — it decodes whole blocks into per-worker scratch — but analysis
// passes and tools that want one neighbor at a time iterate without a decode
// buffer.
type NeighborCursor[V Vertex] struct {
	block []byte
	off   int
	v     uint64
	prev  uint64
	deg   int
	i     int // targets yielded
	w     int // weights yielded
	err   error
}

// Cursor returns a NeighborCursor over one encoded block. deg is the
// vertex's degree, recorded outside the block.
func Cursor[V Vertex](block []byte, v V, deg int) NeighborCursor[V] {
	return NeighborCursor[V]{block: block, v: uint64(v), deg: deg}
}

// Next yields the next neighbor; ok is false when the target stream is
// exhausted or the block is corrupt (see Err).
func (c *NeighborCursor[V]) Next() (t V, ok bool) {
	if c.err != nil || c.i >= c.deg {
		return 0, false
	}
	z, n := binary.Uvarint(c.block[c.off:])
	if n <= 0 {
		c.err = ErrCorruptBlock
		return 0, false
	}
	c.off += n
	if c.i == 0 {
		c.prev = unzigzagGap(c.v, z)
	} else {
		c.prev += z
	}
	if c.prev > uint64(^V(0)) {
		c.err = ErrCorruptBlock
		return 0, false
	}
	c.i++
	return V(c.prev), true
}

// NextWeight yields the next edge weight. Valid only after the target stream
// is exhausted (weights are a trailing parallel stream); ok is false once
// deg weights were yielded or on corruption.
func (c *NeighborCursor[V]) NextWeight() (w Weight, ok bool) {
	if c.err != nil || c.i < c.deg || c.w >= c.deg {
		return 0, false
	}
	u, n := binary.Uvarint(c.block[c.off:])
	if n <= 0 || u > uint64(^Weight(0)) {
		c.err = ErrCorruptBlock
		return 0, false
	}
	c.off += n
	c.w++
	return Weight(u), true
}

// Err reports the first corruption the cursor hit, if any.
func (c *NeighborCursor[V]) Err() error { return c.err }

// Consumed reports the block bytes the cursor has decoded so far.
func (c *NeighborCursor[V]) Consumed() int { return c.off }
