//go:build !invariants

// Mirror of invariant_on_test.go for production builds: the same
// deliberately broken scenarios must run to completion without panicking,
// proving the assertions compile away and cost nothing when the tag is off.

package core

import (
	"testing"

	"repro/internal/invariant"
	"repro/internal/pq"
)

func TestInvariantsDisabled(t *testing.T) {
	if invariant.Enabled {
		t.Fatal("built without -tags invariants but invariant.Enabled is true")
	}
}

// TestOwnerRuleViolationSilent runs the same broken visitor as
// TestOwnerRuleViolationPanics: without the tag AssertOwned is a no-op and
// the traversal completes normally.
func TestOwnerRuleViolationSilent(t *testing.T) {
	visit := func(ctx *Ctx[uint32], it pq.Item) error {
		ctx.AssertOwned(uint32(it.V + 1)) // not owned; must be a no-op
		return nil
	}
	e := New[uint32](Config{Workers: 2, Hash: IdentityHash}, visit)
	e.Start()
	e.Push(0, 0, 0)
	if _, err := e.Wait(); err != nil {
		t.Fatalf("AssertOwned had an effect without -tags invariants: %v", err)
	}
}

func TestTerminatorUnderflowSilent(t *testing.T) {
	tm := NewTerminator()
	if !tm.Release() {
		t.Fatal("Release of an idle terminator did not report termination")
	}
	if tm.Finish() { // 0 -> -1: silently tolerated without the tag
		t.Fatal("underflowed terminator reported termination")
	}
	if tm.Outstanding() != -1 {
		t.Fatalf("outstanding = %d, want -1 after unchecked underflow", tm.Outstanding())
	}
}

func TestPoolDoubleReleaseSilent(t *testing.T) {
	p := NewEnginePool[uint32](Config{Workers: 2})
	r := p.acquire()
	p.release(r)
	p.release(r) // no double-release detection without the tag
	if got := p.Idle(); got != 2 {
		t.Fatalf("free list holds %d sets, want 2 (both releases accepted)", got)
	}
}
