package core

import (
	"repro/internal/graph"
)

// BFSResult holds the output of a breadth-first search: per-vertex level and
// parent plus traversal statistics used by the benchmark harness (the paper's
// Table I reports the number of levels and the fraction of vertices visited).
// The traversal itself is the shared relaxation kernel in kernels.go.
type BFSResult[V graph.Vertex] struct {
	Level  []graph.Dist // InfDist for unreachable vertices
	Parent []V
	Stats  Stats
}

// Reached reports whether v was reached from the source.
func (r *BFSResult[V]) Reached(v V) bool { return r.Level[v] != graph.InfDist }

// NumLevels returns the number of BFS levels (max level + 1), 0 if nothing
// was reached.
func (r *BFSResult[V]) NumLevels() int {
	max := graph.Dist(0)
	seen := false
	for _, l := range r.Level {
		if l == graph.InfDist {
			continue
		}
		seen = true
		if l > max {
			max = l
		}
	}
	if !seen {
		return 0
	}
	return int(max) + 1
}

// FracVisited returns the fraction of vertices reached, the "% vis" column of
// Table I.
func (r *BFSResult[V]) FracVisited() float64 {
	if len(r.Level) == 0 {
		return 0
	}
	reached := 0
	for _, l := range r.Level {
		if l != graph.InfDist {
			reached++
		}
	}
	return float64(reached) / float64(len(r.Level))
}
