package core

// This file is the direction-optimizing BFS driver. The paper's asynchronous
// engine wins by removing barriers, but the densest frontier phases of
// scale-free graphs — where most edge traffic lives — are won by a different
// trick (Beamer-style direction switching, PAPERS.md): when the frontier's
// out-edges outnumber the unexplored region's, stop pushing and instead let
// every unvisited vertex scan its in-edges for a settled parent, breaking out
// of the scan at the first hit. A hub vertex with a million in-edges is then
// settled by one probe instead of receiving a million pushes.
//
// The driver is deliberately NOT the asynchronous engine: bottom-up scanning
// is only correct when "settled parent" is well-defined, which requires
// level-synchronous phases. DirectionTopDown (the default) therefore routes
// BFS through the unchanged asynchronous kernel, and the hybrid driver here
// runs its own barrier-per-level loop — the direction dimension of the
// experiments measures exactly this trade (async ownership vs phase-switched
// direction) per graph family.
//
// Phase correctness: top-down phases settle vertices with a CAS on the level
// word (Inf -> level+1); the CAS winner alone writes the parent and appends
// to its per-worker next-frontier list. Bottom-up phases partition the vertex
// id space, so each worker settles only vertices in its own range (plain
// store, atomic so concurrent phase readers see no torn word). All cross-
// phase visibility goes through the WaitGroup barrier. Levels are therefore
// deterministic and bit-identical to the asynchronous kernel's: a vertex's
// BFS level does not depend on which direction discovered it.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Direction selects the BFS traversal direction policy.
type Direction int

const (
	// DirectionTopDown expands frontier vertices' out-edges — the classical
	// push direction, run on the asynchronous engine. The default.
	DirectionTopDown Direction = iota
	// DirectionBottomUp forces every phase to scan unvisited vertices'
	// in-edges for a settled parent. An ablation extreme: profitable only for
	// dense phases, pathological on long-diameter graphs.
	DirectionBottomUp
	// DirectionHybrid switches per phase on the α/β frontier heuristics:
	// bottom-up while the frontier is dense, top-down otherwise.
	DirectionHybrid
)

// Default α/β switch thresholds (Config.Alpha, Config.Beta), the classical
// direction-optimizing values. Mount paths that know the degree distribution
// derive graph-specific values with graph.DegreeStats.DirectionThresholds.
const (
	DefaultAlpha = 14
	DefaultBeta  = 24
)

func (d Direction) String() string {
	switch d {
	case DirectionBottomUp:
		return "bottomup"
	case DirectionHybrid:
		return "hybrid"
	default:
		return "topdown"
	}
}

// ParseDirection parses the CLI spelling of a direction policy.
func ParseDirection(s string) (Direction, error) {
	switch s {
	case "topdown", "":
		return DirectionTopDown, nil
	case "bottomup":
		return DirectionBottomUp, nil
	case "hybrid":
		return DirectionHybrid, nil
	}
	return DirectionTopDown, fmt.Errorf("core: unknown direction %q (want topdown, bottomup, or hybrid)", s)
}

// ErrNoInEdges reports a bottom-up or hybrid traversal requested against a
// back end without reverse-adjacency capability (graph.InEdges): an
// in-memory graph not wrapped in a Bidi pairing, or a semi-external store
// written without an in-edge section or symmetric flag. Front ends map it to
// usage errors.
var ErrNoInEdges = errors.New("backend has no in-edge capability")

// serialPhaseEdges is the work estimate below which a phase runs inline in
// the driver goroutine instead of fanning out: on long-diameter graphs
// (chains, grids) every frontier is a handful of vertices and per-level
// goroutine spawns would dominate the traversal.
const serialPhaseEdges = 2048

// dirDriver is the per-traversal state of the hybrid driver.
type dirDriver[V graph.Vertex] struct {
	g      graph.Adjacency[V]
	in     graph.InAdjacency[V]
	scan   graph.InScanner[V]      // nil when in lacks bulk range scanning
	batch  graph.BatchAdjacency[V] // nil when g lacks read-ahead batching
	window int                     // cfg.Prefetch: top-down announce width
	level  []graph.Dist
	parent []V
	n      uint64
}

// unvisited is the bottom-up need predicate: consulted (atomically — other
// workers are settling their own ranges concurrently) before any I/O or
// decode is spent on a vertex.
//
//lint:hotpath
func (d *dirDriver[V]) unvisited(v V) bool {
	return atomic.LoadUint64(&d.level[v]) == graph.InfDist
}

// dirWorker is one phase worker's private state, reused across phases.
type dirWorker[V graph.Vertex] struct {
	scratch *graph.Scratch[V]
	next    []V    // vertices this worker settled in the current phase
	mf      uint64 // out-degree sum of next (frontier edges of the next phase)
	visits  uint64 // vertices expanded (TD) or probed with in-lists (BU)
	edges   uint64 // edges examined
	err     error
}

// grow doubles next's capacity; kept out of the hotpath append sites so they
// stay allocation-free on the common path.
func (w *dirWorker[V]) grow() {
	next := make([]V, len(w.next), 2*cap(w.next)+64)
	copy(next, w.next)
	w.next = next
}

// topDown expands one slice of the current frontier: the CAS winner on a
// neighbor's level word settles it, records the parent, and claims it for
// the next frontier. On batching back ends (the semi-external store, the
// shard router) each window of frontier vertices is announced before its
// expansions run — the pop-window trick of the asynchronous engine — so
// adjacency reads are in flight concurrently even in a width-1 phase; without
// it, the trickle phases of high-diameter graphs would pay one full device
// latency per vertex that the top-down async kernel overlaps.
//
//lint:hotpath
func (w *dirWorker[V]) topDown(d *dirDriver[V], frontier []V, nextLevel uint64) {
	for len(frontier) > 0 {
		win := frontier
		if d.window > 1 && len(win) > d.window {
			win = win[:d.window]
		}
		frontier = frontier[len(win):]
		if d.batch != nil && d.window > 1 && len(win) > 1 {
			d.batch.NeighborsBatch(win, w.scratch)
		}
		for _, u := range win {
			w.visits++
			targets, _, err := d.g.Neighbors(u, w.scratch)
			if err != nil {
				w.err = err
				return
			}
			w.edges += uint64(len(targets))
			for _, t := range targets {
				if atomic.LoadUint64(&d.level[t]) != graph.InfDist {
					continue
				}
				if atomic.CompareAndSwapUint64(&d.level[t], graph.InfDist, nextLevel) {
					d.parent[t] = u
					w.mf += uint64(d.g.Degree(t))
					if len(w.next) == cap(w.next) {
						w.grow()
					}
					w.next = append(w.next, t)
				}
			}
		}
	}
}

// probe is the bottom-up relaxation for one unvisited vertex: scan its
// in-neighbors for a member of the current frontier (level == curLevel) and
// settle at the first hit. The store is exclusive — v lies in this worker's
// id range — and atomic so concurrent unvisited() readers never tear.
//
//lint:hotpath
func (w *dirWorker[V]) probe(d *dirDriver[V], v V, in []V, curLevel uint64) error {
	w.visits++
	w.edges += uint64(len(in))
	for _, u := range in {
		if atomic.LoadUint64(&d.level[u]) != curLevel {
			continue
		}
		atomic.StoreUint64(&d.level[v], curLevel+1)
		d.parent[v] = u
		w.mf += uint64(d.g.Degree(v))
		if len(w.next) == cap(w.next) {
			w.grow()
		}
		w.next = append(w.next, v)
		break
	}
	return nil
}

// buVisitor adapts probe to the InScanner visit signature for one phase.
type buVisitor[V graph.Vertex] struct {
	d        *dirDriver[V]
	w        *dirWorker[V]
	curLevel uint64
}

func (b *buVisitor[V]) visit(v V, in []V) error {
	return b.w.probe(b.d, v, in, b.curLevel)
}

// bottomUp scans this worker's vertex-id range for unvisited vertices with a
// settled in-neighbor. Back ends with bulk scanning (the semi-external store,
// the shard router) stream the range in storage order — the SEM sequential-
// scan phase; others fall back to per-vertex in-neighbor reads.
func (w *dirWorker[V]) bottomUp(d *dirDriver[V], lo, hi V, curLevel uint64) {
	b := &buVisitor[V]{d: d, w: w, curLevel: curLevel}
	if d.scan != nil {
		if err := d.scan.ScanInEdges(lo, hi, d.unvisited, b.visit, w.scratch); err != nil {
			w.err = err
		}
		return
	}
	for v := lo; v < hi; v++ {
		if !d.unvisited(v) {
			continue
		}
		in, err := d.in.InNeighbors(v, w.scratch)
		if err != nil {
			w.err = err
			return
		}
		if len(in) == 0 {
			continue
		}
		if err := b.visit(v, in); err != nil {
			w.err = err
			return
		}
	}
}

// phaseWorkers scales the fan-out to the phase's work estimate, capped at the
// configured worker count: small phases run inline (see serialPhaseEdges),
// large ones use the full width — for SEM mounts the oversubscription hides
// device latency exactly as in the asynchronous engine.
func phaseWorkers(max int, work uint64) int {
	if work <= serialPhaseEdges {
		return 1
	}
	w := int(work / serialPhaseEdges)
	if w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// hybridBFS is the level-synchronous direction-optimizing BFS driver, the
// BFS path for DirectionBottomUp and DirectionHybrid. cfg.Direction selects
// the policy; Alpha/Beta tune the hybrid switch points. The resulting levels
// are bit-identical to the asynchronous kernel's (BFS levels are unique);
// parents are structurally valid tree edges, as everywhere else.
func hybridBFS[V graph.Vertex](g graph.Adjacency[V], src V, cfg Config) (*BFSResult[V], error) {
	cfg.normalize()
	in, ok := graph.InEdges(g)
	if !ok {
		return nil, fmt.Errorf("core: direction %s: %w", cfg.Direction, ErrNoInEdges)
	}
	n := g.NumVertices()
	if uint64(src) >= n {
		return nil, fmt.Errorf("core: source %d out of range for %d vertices", src, n)
	}
	res := &BFSResult[V]{
		Level:  make([]graph.Dist, n),
		Parent: make([]V, n),
	}
	initLabels(res.Level, res.Parent)
	d := &dirDriver[V]{g: g, in: in, level: res.Level, parent: res.Parent, n: n, window: cfg.Prefetch}
	d.scan, _ = g.(graph.InScanner[V])
	d.batch, _ = g.(graph.BatchAdjacency[V])

	workers := make([]*dirWorker[V], cfg.Workers)
	for i := range workers {
		workers[i] = &dirWorker[V]{scratch: &graph.Scratch[V]{}}
	}

	// mu tracks the out-edge count of the unexplored region for the α
	// heuristic; mf is the current frontier's out-edge count.
	var mu uint64
	if ne, ok := g.(interface{ NumEdges() uint64 }); ok {
		mu = ne.NumEdges()
	} else {
		for v := uint64(0); v < n; v++ {
			mu += uint64(g.Degree(V(v)))
		}
	}

	d.level[src] = 0
	d.parent[src] = src
	frontier := []V{src}
	mf := uint64(g.Degree(src))
	mu -= mf

	st := Stats{Workers: cfg.Workers}
	useBU := cfg.Direction == DirectionBottomUp
	var curLevel, prevNf uint64
	for len(frontier) > 0 {
		if ctx := cfg.Context; ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		nf := uint64(len(frontier))
		if nf > st.PeakFrontier {
			st.PeakFrontier = nf
		}
		if cfg.Direction == DirectionHybrid {
			// Beamer's heuristics: go bottom-up when a growing frontier's edges
			// outnumber 1/α of the unexplored edges (pushes would mostly hit
			// settled vertices), return top-down when the frontier thins below
			// n/β (scanning all unvisited vertices would dwarf the pushes).
			// Multiplication form keeps the comparisons exact — integer mu/α
			// truncates to 0 on the last levels of long-diameter graphs and
			// would flip a one-vertex frontier bottom-up — and the growing
			// requirement keeps constant trickle frontiers (chains, grids)
			// top-down for good.
			was := useBU
			if useBU {
				useBU = nf*uint64(cfg.Beta) >= n
			} else {
				useBU = nf > prevNf && mf*uint64(cfg.Alpha) > mu
			}
			if useBU != was {
				st.DirectionSwitches++
			}
		}

		var width int
		if useBU {
			st.BottomUpPhases++
			width = phaseWorkers(cfg.Workers, mu+nf)
		} else {
			st.TopDownPhases++
			width = phaseWorkers(cfg.Workers, mf)
			if d.batch != nil && d.window > 1 {
				// On an I/O-backed store the phase is latency-bound, not
				// CPU-bound: fan out by announce windows so every frontier
				// vertex's read is in flight at once, matching the overlap the
				// asynchronous kernel gets from its per-worker pop windows.
				if byWin := (len(frontier) + d.window - 1) / d.window; byWin > width {
					width = byWin
					if width > cfg.Workers {
						width = cfg.Workers
					}
				}
			}
		}

		if width == 1 {
			w := workers[0]
			if useBU {
				w.bottomUp(d, 0, V(n), curLevel)
			} else {
				w.topDown(d, frontier, curLevel+1)
			}
		} else {
			var wg sync.WaitGroup
			if useBU {
				chunk := (n + uint64(width) - 1) / uint64(width)
				for i := 0; i < width; i++ {
					lo := uint64(i) * chunk
					hi := lo + chunk
					if hi > n {
						hi = n
					}
					if lo >= hi {
						continue
					}
					wg.Add(1)
					go func(w *dirWorker[V], lo, hi uint64) {
						defer wg.Done()
						w.bottomUp(d, V(lo), V(hi), curLevel)
					}(workers[i], lo, hi)
				}
			} else {
				chunk := (len(frontier) + width - 1) / width
				for i := 0; i < width; i++ {
					lo := i * chunk
					hi := lo + chunk
					if hi > len(frontier) {
						hi = len(frontier)
					}
					if lo >= hi {
						continue
					}
					wg.Add(1)
					go func(w *dirWorker[V], part []V) {
						defer wg.Done()
						w.topDown(d, part, curLevel+1)
					}(workers[i], frontier[lo:hi])
				}
			}
			wg.Wait()
		}

		// Fold the phase: gather per-worker next-frontiers and counters, then
		// reset worker state for the next level.
		frontier = frontier[:0]
		mf = 0
		for _, w := range workers {
			if w.err != nil {
				return nil, w.err
			}
			frontier = append(frontier, w.next...)
			mf += w.mf
			st.Visits += w.visits
			st.Pushes += w.edges
			w.next = w.next[:0]
			w.mf, w.visits, w.edges = 0, 0, 0
		}
		mu -= mf
		prevNf = nf
		curLevel++
	}
	res.Stats = st
	return res, nil
}
