package sem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/graph"
)

// This file is the storage side of the shard router: one logical graph
// hash-partitioned over N stores, each written as a complete ASG file over
// the full vertex-id space (non-owned vertices have degree 0) plus a shard
// map recording its place in the partition. Keeping the full id space in
// every shard means per-shard offsets index logical vertex ids directly — no
// id translation on the traversal path — at the cost of (n+1-n/N) index
// entries of RAM per extra shard, which is the paper's RAM-resident vertex
// information and cheap by construction.
//
// Shard map layout (shardMapSize bytes, little-endian, after the header):
//
//	[0:4]   shard      uint32 -- this file's index in the partition
//	[4:8]   shards     uint32 -- partition width
//	[8:16]  totalEdges uint64 -- edge count of the LOGICAL graph (header m
//	                             counts only this shard's records)
//	[16:20] hashID     uint32 -- partitioning hash (1 = Fibonacci)
//	[20:24] reserved   uint32
//
// The v1/v2 distinction is orthogonal: a shard map can precede either body,
// and a mount may even mix formats across members (each member decodes its
// own extents).

// shardMapSize is the byte length of the shard map block.
const shardMapSize = 24

// shardHashFib identifies the Fibonacci multiplicative hash (graph.ShardOf)
// in the shard map's hash field. New hash ids may be added; readers reject
// ids they do not implement rather than silently mis-routing vertices.
const shardHashFib = 1

// ErrShardSpec marks shard-spec inconsistencies: a file list that does not
// assemble into one coherent partition (wrong count, wrong order, mixed
// graphs) or a shard map contradicting itself. Front ends map it to usage
// errors (exit 2 / HTTP 400) because the fix is the invocation, not the data.
var ErrShardSpec = errors.New("shard spec inconsistent")

type shardMap struct {
	shard      uint32
	shards     uint32
	totalEdges uint64
	hashID     uint32
}

func (sm *shardMap) encode() []byte {
	raw := make([]byte, shardMapSize)
	binary.LittleEndian.PutUint32(raw[0:], sm.shard)
	binary.LittleEndian.PutUint32(raw[4:], sm.shards)
	binary.LittleEndian.PutUint64(raw[8:], sm.totalEdges)
	binary.LittleEndian.PutUint32(raw[16:], sm.hashID)
	// raw[20:24] reserved.
	return raw
}

func parseShardMap(raw []byte) (shardMap, error) {
	sm := shardMap{
		shard:      binary.LittleEndian.Uint32(raw[0:]),
		shards:     binary.LittleEndian.Uint32(raw[4:]),
		totalEdges: binary.LittleEndian.Uint64(raw[8:]),
		hashID:     binary.LittleEndian.Uint32(raw[16:]),
	}
	if sm.shards < 1 {
		return sm, fmt.Errorf("sem: %w: shard map claims %d shards", ErrShardSpec, sm.shards)
	}
	if sm.shard >= sm.shards {
		return sm, fmt.Errorf("sem: %w: shard %d out of range for %d shards", ErrShardSpec, sm.shard, sm.shards)
	}
	if sm.hashID != shardHashFib {
		return sm, fmt.Errorf("sem: %w: unknown shard hash id %d (have %d)", ErrShardSpec, sm.hashID, shardHashFib)
	}
	return sm, nil
}

// ShardConfig selects one shard of a hash partition for the shard writers.
type ShardConfig struct {
	// Shard is the index of the shard to write, in [0, Shards).
	Shard int
	// Shards is the partition width; 0 normalizes to 1 (a single "shard"
	// holding the whole graph, still stamped with a shard map).
	Shards int
}

func (c *ShardConfig) normalize() {
	if c.Shards == 0 {
		c.Shards = 1
	}
}

// Validate rejects configs that name no writable shard.
func (c ShardConfig) Validate() error {
	if c.Shards < 1 {
		return fmt.Errorf("sem: %w: shard count must be >= 1, got %d", ErrShardSpec, c.Shards)
	}
	if c.Shard < 0 || c.Shard >= c.Shards {
		return fmt.Errorf("sem: %w: shard %d out of range for %d shards", ErrShardSpec, c.Shard, c.Shards)
	}
	return nil
}

// ShardFileName names shard k of a sharded graph written under base:
// "base.shard0", "base.shard1", ... — the layout gengraph/convert emit and
// traverse/serve discover.
func ShardFileName(base string, shard int) string {
	return fmt.Sprintf("%s.shard%d", base, shard)
}

// WriteCSRShard extracts cfg's shard of g and serializes it as a format v1
// file with a shard map. The logical graph's edge total goes in the shard
// map; the header's m counts only this shard's records.
func WriteCSRShard[V graph.Vertex](w io.Writer, g *graph.CSR[V], cfg ShardConfig) error {
	return Write(w, g, WriteConfig{Shard: &cfg})
}

// WriteCSRShardCompressed extracts cfg's shard of g, compresses it, and
// serializes it as a format v2 file with a shard map.
func WriteCSRShardCompressed[V graph.Vertex](w io.Writer, g *graph.CSR[V], cfg ShardConfig) error {
	return Write(w, g, WriteConfig{Compress: true, Shard: &cfg})
}

// validateShardSet checks that gs assembles into one coherent partition:
// every member sharded, in shard order, agreeing on width, vertex count,
// weightedness, and the logical edge total, with per-shard record counts
// summing to that total. As a convenience a single plain (unsharded) file
// passes — it is exactly the 1-way partition. All failures wrap ErrShardSpec.
func validateShardSet[V graph.Vertex](gs []*Graph[V]) error {
	if len(gs) == 0 {
		return fmt.Errorf("sem: %w: no shard files", ErrShardSpec)
	}
	if len(gs) == 1 && !gs[0].Sharded() {
		return nil
	}
	var sum uint64
	for i, g := range gs {
		if !g.Sharded() {
			return fmt.Errorf("sem: %w: file %d of %d carries no shard map", ErrShardSpec, i, len(gs))
		}
		if g.Shards() != len(gs) {
			return fmt.Errorf("sem: %w: file %d is part of a %d-shard graph, %d files given",
				ErrShardSpec, i, g.Shards(), len(gs))
		}
		if g.Shard() != i {
			return fmt.Errorf("sem: %w: file %d holds shard %d (files must be listed in shard order)",
				ErrShardSpec, i, g.Shard())
		}
		if g.NumVertices() != gs[0].NumVertices() {
			return fmt.Errorf("sem: %w: shard %d has %d vertices, shard 0 has %d",
				ErrShardSpec, i, g.NumVertices(), gs[0].NumVertices())
		}
		if g.Weighted() != gs[0].Weighted() {
			return fmt.Errorf("sem: %w: shard %d weighted=%v, shard 0 weighted=%v",
				ErrShardSpec, i, g.Weighted(), gs[0].Weighted())
		}
		if g.TotalEdges() != gs[0].TotalEdges() {
			return fmt.Errorf("sem: %w: shard %d claims %d total edges, shard 0 claims %d",
				ErrShardSpec, i, g.TotalEdges(), gs[0].TotalEdges())
		}
		sum += g.NumEdges()
	}
	if sum != gs[0].TotalEdges() {
		return fmt.Errorf("sem: %w: shards hold %d edges, shard map claims %d",
			ErrShardSpec, sum, gs[0].TotalEdges())
	}
	return nil
}

// MountShards assembles opened shard files into the logical graph's shard
// router. gs must be in shard order and form a complete partition (checked
// from the shard maps; failures wrap ErrShardSpec). Members may mix v1 and
// v2 formats — each decodes its own extents. Enable prefetching per member
// (EnablePrefetch on each g) before or after mounting; windows fan out to
// whichever members have it.
func MountShards[V graph.Vertex](gs []*Graph[V]) (*graph.Sharded[V], error) {
	if err := validateShardSet(gs); err != nil {
		return nil, err
	}
	members := make([]graph.Adjacency[V], len(gs))
	for i, g := range gs {
		members[i] = g
	}
	return graph.NewSharded(members)
}

// LoadShardedCSR reads a complete shard set back into one in-memory CSR, the
// IM mount of a sharded graph. Stores must be in shard order.
func LoadShardedCSR[V graph.Vertex](stores []Store) (*graph.CSR[V], error) {
	gs := make([]*Graph[V], len(stores))
	for i, st := range stores {
		g, err := Open[V](st)
		if err != nil {
			return nil, fmt.Errorf("sem: open shard %d: %w", i, err)
		}
		gs[i] = g
	}
	if err := validateShardSet(gs); err != nil {
		return nil, err
	}
	subs := make([]*graph.CSR[V], len(stores))
	for i, st := range stores {
		sub, err := LoadCSR[V](st)
		if err != nil {
			return nil, fmt.Errorf("sem: load shard %d: %w", i, err)
		}
		subs[i] = sub
	}
	if len(subs) == 1 {
		return subs[0], nil
	}
	n := subs[0].NumVertices()
	offsets := make([]uint64, n+1)
	var m uint64
	for v := uint64(0); v < n; v++ {
		m += uint64(subs[graph.ShardOf(v, len(subs))].Degree(V(v)))
		offsets[v+1] = m
	}
	targets := make([]V, m)
	var weights []graph.Weight
	if subs[0].Weighted() {
		weights = make([]graph.Weight, m)
	}
	for v := uint64(0); v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		if lo == hi {
			continue
		}
		sub := subs[graph.ShardOf(v, len(subs))]
		slo, shi := sub.Offsets()[v], sub.Offsets()[v+1]
		copy(targets[lo:hi], sub.Targets()[slo:shi])
		if weights != nil {
			copy(weights[lo:hi], sub.WeightsRaw()[slo:shi])
		}
	}
	return graph.NewCSRRaw(offsets, targets, weights)
}
