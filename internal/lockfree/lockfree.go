// Package lockfree is the design alternative the paper's engine argues
// against, implemented for comparison: instead of hashing each vertex to an
// owning worker (which gives single-writer vertex state for free), any worker
// may visit any vertex, per-vertex labels are relaxed with compare-and-swap
// loops, and idle workers steal work from their neighbors.
//
// The trade-offs the ablation measures:
//
//   - relaxation needs an atomic CAS loop per visit (the paper's ownership
//     scheme writes plain memory);
//   - distance and parent cannot be updated together without packing both
//     into one word, which caps distances at 2^32-1 here;
//   - work stealing rebalances load without the hash's uniformity assumption.
//
// The exported traversals produce exactly the same labels as internal/core
// and the serial baselines; only the concurrency discipline differs.
package lockfree

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pq"
)

// Config controls a lock-free traversal.
type Config struct {
	// Workers is the number of worker goroutines. Defaults to 4 x GOMAXPROCS.
	Workers int
	// NoSteal disables work stealing (each worker only drains its own
	// queue), isolating the stealing contribution in ablations.
	NoSteal bool
}

func (c *Config) normalize() {
	if c.Workers <= 0 {
		c.Workers = 4 * runtime.GOMAXPROCS(0)
	}
	if c.Workers == 1 {
		// A single worker has no victims; skip the steal probes entirely.
		c.NoSteal = true
	}
}

// Stats summarizes a completed traversal.
type Stats struct {
	Visits  uint64 // visitors executed
	Steals  uint64 // items obtained from another worker's queue
	CASFail uint64 // failed label CAS attempts (contention indicator)
}

func (s Stats) String() string {
	return fmt.Sprintf("visits=%d steals=%d casFail=%d", s.Visits, s.Steals, s.CASFail)
}

type visitFunc func(w *worker, it pq.Item) error

type queue struct {
	mu   sync.Mutex
	heap *pq.Heap
}

func (q *queue) push(it pq.Item) {
	q.mu.Lock()
	q.heap.Push(it)
	q.mu.Unlock()
}

func (q *queue) pop() (pq.Item, bool) {
	q.mu.Lock()
	it, ok := q.heap.Pop()
	q.mu.Unlock()
	return it, ok
}

type engine struct {
	cfg     Config
	queues  []*queue
	visit   visitFunc
	workers []*worker

	// term is the shared outstanding-work termination detector: the
	// detection protocol is identical under ownership hashing and work
	// stealing, so both engines consume core.Terminator.
	term    *core.Terminator
	done    atomic.Bool
	aborted atomic.Bool
	errOnce sync.Once
	err     error
	wg      sync.WaitGroup

	visits atomic.Uint64
	steals atomic.Uint64
}

type worker struct {
	e  *engine
	id int
	// casFail is accumulated locally and flushed at exit.
	casFail uint64
	scratch *graph.Scratch[uint32]
}

// push enqueues onto the worker's own queue (locality-first; stealing
// rebalances).
func (w *worker) push(it pq.Item) {
	w.e.term.Start()
	w.e.queues[w.id].push(it)
}

func newEngine(cfg Config, visit visitFunc) *engine {
	cfg.normalize()
	e := &engine{cfg: cfg, visit: visit, term: core.NewTerminator()}
	e.queues = make([]*queue, cfg.Workers)
	e.workers = make([]*worker, cfg.Workers)
	for i := range e.queues {
		e.queues[i] = &queue{heap: pq.New(false)}
		e.workers[i] = &worker{e: e, id: i, scratch: &graph.Scratch[uint32]{}}
	}
	return e
}

func (e *engine) fail(err error) {
	e.errOnce.Do(func() { e.err = err })
	e.aborted.Store(true)
}

// next obtains work for worker id: own queue first, then (unless disabled) a
// sweep over the other queues.
func (e *engine) next(w *worker) (pq.Item, bool) {
	if it, ok := e.queues[w.id].pop(); ok {
		return it, true
	}
	if e.cfg.NoSteal {
		return pq.Item{}, false
	}
	n := len(e.queues)
	for off := 1; off < n; off++ {
		victim := (w.id + off) % n
		if it, ok := e.queues[victim].pop(); ok {
			e.steals.Add(1)
			return it, true
		}
	}
	return pq.Item{}, false
}

func (e *engine) run(w *worker) {
	defer e.wg.Done()
	idle := time.Duration(0)
	for {
		it, ok := e.next(w)
		if !ok {
			if e.done.Load() {
				return
			}
			// Exponential-ish backoff while idle; work may arrive on any
			// queue, so parking on a condvar would miss it.
			runtime.Gosched()
			if idle < 200*time.Microsecond {
				idle += 20 * time.Microsecond
			}
			time.Sleep(idle)
			continue
		}
		idle = 0
		if !e.aborted.Load() {
			e.visits.Add(1)
			if err := e.visit(w, it); err != nil {
				e.fail(err)
			}
		}
		if e.term.Finish() {
			e.done.Store(true)
		}
	}
}

func (e *engine) start() {
	e.wg.Add(len(e.workers))
	for _, w := range e.workers {
		go e.run(w)
	}
}

func (e *engine) wait() (Stats, error) {
	if e.term.Release() {
		e.done.Store(true)
	}
	e.wg.Wait()
	var cas uint64
	for _, w := range e.workers {
		cas += w.casFail
	}
	return Stats{Visits: e.visits.Load(), Steals: e.steals.Load(), CASFail: cas}, e.err
}

// label packs (distance, parent) into one atomically-updated word so both
// change together: high 32 bits distance, low 32 bits parent.
func pack(dist uint32, parent uint32) uint64 { return uint64(dist)<<32 | uint64(parent) }

func unpack(l uint64) (dist uint32, parent uint32) {
	return uint32(l >> 32), uint32(l)
}

// InfDist32 is the unreached marker for the packed 32-bit distances.
const InfDist32 = math.MaxUint32

// Result holds packed traversal output.
type Result struct {
	Dist   []uint32 // InfDist32 for unreachable vertices
	Parent []uint32 // NoVertex for unreachable vertices
	Stats  Stats
}

// SSSP computes single-source shortest paths with atomic label relaxation
// and work stealing. Distances are capped at 2^32-2 (packing limitation);
// inputs whose shortest paths could exceed that must use internal/core.
func SSSP(g graph.Adjacency[uint32], src uint32, cfg Config) (*Result, error) {
	return traverse(g, src, cfg, true)
}

// BFS computes breadth-first levels with atomic label relaxation and work
// stealing (all edge weights treated as 1).
func BFS(g graph.Adjacency[uint32], src uint32, cfg Config) (*Result, error) {
	return traverse(g, src, cfg, false)
}

func traverse(g graph.Adjacency[uint32], src uint32, cfg Config, weighted bool) (*Result, error) {
	n := g.NumVertices()
	if uint64(src) >= n {
		return nil, fmt.Errorf("lockfree: source %d out of range for %d vertices", src, n)
	}
	labels := make([]atomic.Uint64, n)
	init := pack(InfDist32, InfDist32)
	for i := range labels {
		labels[i].Store(init)
	}

	e := newEngine(cfg, func(w *worker, it pq.Item) error {
		v := uint32(it.V)
		nd := uint32(it.Pri)
		// CAS-relax: any worker may visit v, so the label update must be
		// atomic (this is the cost the paper's ownership hashing avoids).
		for {
			old := labels[v].Load()
			oldDist, _ := unpack(old)
			if nd >= oldDist {
				return nil // stale visitor
			}
			if labels[v].CompareAndSwap(old, pack(nd, uint32(it.Aux))) {
				break
			}
			w.casFail++
		}
		targets, weights, err := g.Neighbors(v, w.scratch)
		if err != nil {
			return err
		}
		for i, t := range targets {
			wt := uint64(1)
			if weighted && weights != nil {
				wt = uint64(weights[i])
			}
			cand := uint64(nd) + wt
			if cand >= InfDist32 {
				return fmt.Errorf("lockfree: distance overflow at vertex %d (use internal/core)", t)
			}
			w.push(pq.Item{Pri: cand, V: uint64(t), Aux: uint64(v)})
		}
		return nil
	})
	e.start()
	e.workers[0].push(pq.Item{Pri: 0, V: uint64(src), Aux: uint64(src)})
	st, err := e.wait()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Dist:   make([]uint32, n),
		Parent: make([]uint32, n),
		Stats:  st,
	}
	for i := range res.Dist {
		res.Dist[i], res.Parent[i] = unpack(labels[i].Load())
	}
	return res, nil
}

// CCResult holds connected-component output.
type CCResult struct {
	ID    []uint32
	Stats Stats
}

// CC computes connected components of an undirected graph with atomic
// min-label relaxation and work stealing.
func CC(g graph.Adjacency[uint32], cfg Config) (*CCResult, error) {
	n := g.NumVertices()
	ids := make([]atomic.Uint32, n)
	for i := range ids {
		ids[i].Store(math.MaxUint32)
	}
	e := newEngine(cfg, func(w *worker, it pq.Item) error {
		v := uint32(it.V)
		cand := uint32(it.Pri)
		for {
			old := ids[v].Load()
			if cand >= old {
				return nil
			}
			if ids[v].CompareAndSwap(old, cand) {
				break
			}
			w.casFail++
		}
		targets, _, err := g.Neighbors(v, w.scratch)
		if err != nil {
			return err
		}
		for _, t := range targets {
			w.push(pq.Item{Pri: uint64(cand), V: uint64(t)})
		}
		return nil
	})
	e.start()
	// Seed every vertex with its own id, spread round-robin over workers.
	for v := uint64(0); v < n; v++ {
		e.workers[int(v)%len(e.workers)].push(pq.Item{Pri: v, V: v})
	}
	st, err := e.wait()
	if err != nil {
		return nil, err
	}
	res := &CCResult{ID: make([]uint32, n), Stats: st}
	for i := range res.ID {
		res.ID[i] = ids[i].Load()
	}
	return res, nil
}
