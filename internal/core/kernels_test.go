package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sem"
)

// semMirror serializes g into the semi-external format and reopens it with
// the edge records behind a ReaderAt store, so traversals exercise the SEM
// Neighbors path (per-visit positional reads into worker scratch).
func semMirror(t testing.TB, g *graph.CSR[uint32]) *sem.Graph[uint32] {
	t.Helper()
	var buf bytes.Buffer
	if err := sem.WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	sg, err := sem.Open[uint32](bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return sg
}

// TestKernelIMAndSEMMatchSerialBaselines is the algorithm-layer contract:
// BFS, SSSP, and CC run through the one relaxation kernel against both the
// in-memory CSR and the semi-external store, and all six combinations must
// match the serial baselines label-for-label.
func TestKernelIMAndSEMMatchSerialBaselines(t *testing.T) {
	dg := randomDigraph(t, 300, 1500, true, 11) // weighted digraph: BFS + SSSP
	ug := randomUndirected(t, 300, 900, 12)     // symmetric: CC

	wantLevel, err := baseline.SerialBFS[uint32](dg, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantDist, _, err := baseline.SerialDijkstra[uint32](dg, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantID, err := baseline.SerialCC[uint32](ug)
	if err != nil {
		t.Fatal(err)
	}

	backends := []struct {
		name     string
		directed graph.Adjacency[uint32]
		undirect graph.Adjacency[uint32]
	}{
		{"IM", dg, ug},
		{"SEM", semMirror(t, dg), semMirror(t, ug)},
	}
	for _, be := range backends {
		for _, cfg := range []Config{
			{Workers: 8},
			{Workers: 8, SemiSort: true},
		} {
			name := fmt.Sprintf("%s/semisort=%v", be.name, cfg.SemiSort)
			t.Run(name, func(t *testing.T) {
				bfs, err := BFS[uint32](be.directed, 0, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for v := range wantLevel {
					if bfs.Level[v] != wantLevel[v] {
						t.Fatalf("BFS level[%d] = %d, want %d", v, bfs.Level[v], wantLevel[v])
					}
				}
				sssp, err := SSSP[uint32](be.directed, 0, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for v := range wantDist {
					if sssp.Dist[v] != wantDist[v] {
						t.Fatalf("SSSP dist[%d] = %d, want %d", v, sssp.Dist[v], wantDist[v])
					}
				}
				cc, err := CC[uint32](be.undirect, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for v := range wantID {
					if cc.ID[v] != wantID[v] {
						t.Fatalf("CC id[%d] = %d, want %d", v, cc.ID[v], wantID[v])
					}
				}
			})
		}
	}
}

// TestCrossQueueEquivalence is the cross-queue property test: on random RMAT
// and Erdős–Rényi graphs, BFS labels must be identical across every queue
// discipline — binary heap vs bucket queue, semi-sort on or off, batched
// mailboxes or lock-per-push — and across the raw and compressed adjacency
// back ends. The label-correcting kernel guarantees the final labels are
// independent of visit order, and the compressed CSR must present exactly the
// raw graph's adjacency.
func TestCrossQueueEquivalence(t *testing.T) {
	type workload struct {
		name string
		g    graph.Adjacency[uint32]
	}
	var workloads []workload
	for seed := uint64(1); seed <= 3; seed++ {
		rm, err := gen.RMAT[uint32](8, 8, gen.RMATA, seed)
		if err != nil {
			t.Fatal(err)
		}
		crm, err := graph.Compress(rm)
		if err != nil {
			t.Fatal(err)
		}
		workloads = append(workloads,
			workload{fmt.Sprintf("rmat-%d", seed), rm},
			workload{fmt.Sprintf("rmat-%d-compressed", seed), crm})
		er, err := gen.ErdosRenyi[uint32](300, 1800, seed)
		if err != nil {
			t.Fatal(err)
		}
		cer, err := graph.Compress(er)
		if err != nil {
			t.Fatal(err)
		}
		workloads = append(workloads,
			workload{fmt.Sprintf("er-%d", seed), er},
			workload{fmt.Sprintf("er-%d-compressed", seed), cer})
	}
	variants := []struct {
		name string
		cfg  Config
	}{
		{"heap", Config{Workers: 6, Queue: QueueHeap}},
		{"heap-semisort", Config{Workers: 6, Queue: QueueHeap, SemiSort: true}},
		{"heap-semisort-direct", Config{Workers: 6, Queue: QueueHeap, SemiSort: true, Batch: 1}},
		{"bucket", Config{Workers: 6, Queue: QueueBucket}},
		{"bucket-direct", Config{Workers: 6, Queue: QueueBucket, Batch: 1}},
	}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			src := uint32(0)
			want, err := baseline.SerialBFS[uint32](w.g, src)
			if err != nil {
				t.Fatal(err)
			}
			for _, variant := range variants {
				res, err := BFS[uint32](w.g, src, variant.cfg)
				if err != nil {
					t.Fatalf("%s: %v", variant.name, err)
				}
				for v := range want {
					if res.Level[v] != want[v] {
						t.Fatalf("%s: level[%d] = %d, want %d",
							variant.name, v, res.Level[v], want[v])
					}
				}
			}
		})
	}
}

// TestMailboxBatchingMatchesLockPerPush pins the mailbox acceptance
// criterion directly: batched delivery must produce traversal results
// identical to the lock-per-push path for all three algorithms, across batch
// sizes that force both the size trigger and the drain trigger.
func TestMailboxBatchingMatchesLockPerPush(t *testing.T) {
	dg := randomDigraph(t, 400, 2400, true, 31)
	ug := randomUndirected(t, 400, 1200, 32)
	base := Config{Workers: 8, Batch: 1}
	wantBFS, err := BFS[uint32](dg, 0, base)
	if err != nil {
		t.Fatal(err)
	}
	wantSSSP, err := SSSP[uint32](dg, 0, base)
	if err != nil {
		t.Fatal(err)
	}
	wantCC, err := CC[uint32](ug, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{2, 3, DefaultBatch, 1024} {
		cfg := Config{Workers: 8, Batch: batch}
		bfs, err := BFS[uint32](dg, 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sssp, err := SSSP[uint32](dg, 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cc, err := CC[uint32](ug, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for v := range wantBFS.Level {
			if bfs.Level[v] != wantBFS.Level[v] {
				t.Fatalf("batch=%d: BFS level[%d] = %d, want %d", batch, v, bfs.Level[v], wantBFS.Level[v])
			}
			if sssp.Dist[v] != wantSSSP.Dist[v] {
				t.Fatalf("batch=%d: SSSP dist[%d] = %d, want %d", batch, v, sssp.Dist[v], wantSSSP.Dist[v])
			}
		}
		for v := range wantCC.ID {
			if cc.ID[v] != wantCC.ID[v] {
				t.Fatalf("batch=%d: CC id[%d] = %d, want %d", batch, v, cc.ID[v], wantCC.ID[v])
			}
		}
	}
}

// TestKernelSEMWithSemiSortAndCoarsen gives the SEM backend the optimization
// knobs that used to be IM-only concerns: semi-sort plus Δ-style coarsening
// through the same kernel, still exact against Dijkstra.
func TestKernelSEMWithSemiSortAndCoarsen(t *testing.T) {
	dg := randomDigraph(t, 250, 1500, true, 17)
	sg := semMirror(t, dg)
	want, _, err := baseline.SerialDijkstra[uint32](dg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, shift := range []uint8{0, 4, 10} {
		res, err := SSSP[uint32](sg, 0, Config{Workers: 8, SemiSort: true, CoarseShift: shift})
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if res.Dist[v] != want[v] {
				t.Fatalf("shift=%d: dist[%d] = %d, want %d", shift, v, res.Dist[v], want[v])
			}
		}
	}
}
