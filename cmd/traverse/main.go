// Command traverse runs a graph traversal over a graph file produced by
// cmd/gengraph, either in-memory or semi-externally through a simulated
// flash device, with a choice of engines.
//
// Examples:
//
//	traverse -graph a16.asg -algo bfs -engine async -workers 512
//	traverse -graph a16.asg -algo bfs -engine serial
//	traverse -graph a14w.asg -algo sssp -engine async
//	traverse -graph b14u.asg -algo cc -engine bsp -ranks 16
//	traverse -graph a16.asg -algo bfs -sem -profile FusionIO -workers 128
//	traverse -graph b16.asg -shards 4 -algo bfs -sem        # b16.asg.shard0..3
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/baseline"
	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lockfree"
	"repro/internal/sem"
	"repro/internal/ssd"
)

func main() {
	var (
		path     = flag.String("graph", "", "graph file from gengraph (required)")
		algo     = flag.String("algo", "bfs", "algorithm: bfs, sssp, cc")
		engine   = flag.String("engine", "async", "engine: async, lockfree, serial, levelsync, bsp")
		workers  = flag.Int("workers", 512, "async/levelsync worker count")
		ranks    = flag.Int("ranks", 16, "bsp simulated rank count")
		src      = flag.Uint64("src", 0, "source vertex (bfs/sssp); max-degree vertex if unset")
		autoSrc  = flag.Bool("autosrc", true, "pick the max-degree vertex as source")
		semMode  = flag.Bool("sem", false, "semi-external: leave edges on a simulated flash device")
		nocache  = flag.Bool("nocache", false, "mount the flash device without the block cache (every adjacency read hits the device; the regime BenchmarkSEMTraversal measures)")
		profile  = flag.String("profile", "FusionIO", "flash profile for -sem: FusionIO, Intel, Corsair")
		semisort = flag.Bool("semisort", true, "secondary vertex-id sort key (SEM locality)")
		batch    = flag.Int("batch", 0, "async mailbox batch size: 0 = default, 1 = lock-per-push")
		prefetch = flag.Int("prefetch", 0, "SEM pop-window size: pop this many visitors at once and start their adjacency reads asynchronously (0 = off)")
		prefgap  = flag.String("prefetchgap", strconv.Itoa(sem.DefaultPrefetchGap), "max byte gap bridged when coalescing prefetched adjacency extents into one device read (bytes, or with a k/KiB/m/MiB suffix)")
		cachePol = flag.String("cachepolicy", sem.PolicyLRU, "SEM block-cache eviction policy: lru (legacy recency order) or state (algorithm-driven: blocks with queued visitors are pinned, settled blocks evicted first)")
		check    = flag.Bool("check", false, "verify async results against the serial baseline")
		shards   = flag.Int("shards", 0, "mount graph.shard0..N-1 as one sharded graph (0 = auto-detect from the files present)")
		dirFlag  = flag.String("direction", "", "BFS direction policy: topdown (default), bottomup, or hybrid; non-topdown needs a graph with in-edges (gengraph/convert -symmetric)")
	)
	flag.Parse()
	if err := validate(*path, *algo, *engine, *workers, *ranks, *semMode, *profile, *shards, *dirFlag, *prefgap, *cachePol); err != nil {
		fmt.Fprintf(os.Stderr, "traverse: %v\n", err)
		os.Exit(2)
	}
	if err := run(*path, *algo, *engine, *workers, *ranks, *src, *autoSrc, *semMode, *nocache, *profile, *semisort, *batch, *prefetch, *prefgap, *check, *shards, *dirFlag, *cachePol); err != nil {
		fmt.Fprintf(os.Stderr, "traverse: %v\n", err)
		if errors.Is(err, sem.ErrShardSpec) || errors.Is(err, core.ErrNoInEdges) {
			// The files contradict the requested mount or capability: a usage
			// error, not a runtime failure.
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// engines maps each algorithm to the engines that implement it — the same
// pairs the run switch dispatches on, checked before any file is opened so
// bad invocations fail in microseconds with one line on stderr.
var engines = map[string][]string{
	"bfs":  {"async", "lockfree", "serial", "levelsync", "bsp"},
	"sssp": {"async", "lockfree", "serial"},
	"cc":   {"async", "lockfree", "serial", "levelsync", "bsp"},
}

// validate rejects bad flag combinations up front: unknown algorithm or
// engine, missing graph or shard files, non-positive parallelism, and
// direction policies the requested algorithm/engine pair cannot honor.
func validate(path, algo, engine string, workers, ranks int, semMode bool, profile string, shards int, direction, prefetchGap, cachePolicy string) error {
	if path == "" {
		return fmt.Errorf("-graph is required (a file produced by gengraph)")
	}
	if shards < 0 {
		return fmt.Errorf("-shards must be >= 0 (0 = auto-detect), got %d", shards)
	}
	if _, _, err := shardPaths(path, shards); err != nil {
		return err
	}
	supported, ok := engines[algo]
	if !ok {
		return fmt.Errorf("unknown -algo %q (want bfs, sssp, or cc)", algo)
	}
	found := false
	for _, e := range supported {
		found = found || e == engine
	}
	if !found {
		return fmt.Errorf("-algo %s does not support -engine %q (want one of %v)", algo, engine, supported)
	}
	if workers <= 0 {
		return fmt.Errorf("-workers must be positive, got %d", workers)
	}
	if engine == "bsp" && ranks <= 0 {
		return fmt.Errorf("-ranks must be positive, got %d", ranks)
	}
	if semMode {
		if _, err := ssd.ProfileByName(profile); err != nil {
			return err
		}
	}
	if _, err := sem.ParseByteSize(prefetchGap); err != nil {
		return fmt.Errorf("-prefetchgap: %v", err)
	}
	if _, err := sem.ParseCachePolicy(cachePolicy); err != nil {
		return fmt.Errorf("-cachepolicy: %v", err)
	}
	dir, err := core.ParseDirection(direction)
	if err != nil {
		return err
	}
	if dir != core.DirectionTopDown && (algo != "bfs" || engine != "async") {
		return fmt.Errorf("-direction %s requires -algo bfs -engine async (got -algo %s -engine %s)", dir, algo, engine)
	}
	return nil
}

// shardPaths resolves -graph/-shards into the concrete file list. shards==0
// auto-detects: a plain file mounts as is, otherwise path.shard0.. are
// discovered; shards>=1 demands exactly that many shard files. The second
// result reports whether the mount is a shard set.
func shardPaths(path string, shards int) ([]string, bool, error) {
	if shards == 0 {
		if _, err := os.Stat(path); err == nil {
			return []string{path}, false, nil
		}
		var paths []string
		for k := 0; ; k++ {
			p := sem.ShardFileName(path, k)
			if _, err := os.Stat(p); err != nil {
				break
			}
			paths = append(paths, p)
		}
		if len(paths) == 0 {
			return nil, false, fmt.Errorf("-graph: neither %s nor %s exists", path, sem.ShardFileName(path, 0))
		}
		return paths, true, nil
	}
	paths := make([]string, shards)
	for k := range paths {
		paths[k] = sem.ShardFileName(path, k)
		if _, err := os.Stat(paths[k]); err != nil {
			return nil, false, fmt.Errorf("%w: -shards %d but shard file missing: %v", sem.ErrShardSpec, shards, err)
		}
	}
	return paths, true, nil
}

func run(path, algo, engine string, workers, ranks int, src uint64, autoSrc, semMode, nocache bool, profile string, semisort bool, batch, prefetch int, prefetchGapSpec string, check bool, shards int, direction, cachePolicy string) error {
	dir, err := core.ParseDirection(direction)
	if err != nil {
		return err
	}
	prefetchGap, err := sem.ParseByteSize(prefetchGapSpec)
	if err != nil {
		return fmt.Errorf("-prefetchgap: %v", err)
	}
	policy, err := sem.ParseCachePolicy(cachePolicy)
	if err != nil {
		return fmt.Errorf("-cachepolicy: %v", err)
	}
	paths, sharded, err := shardPaths(path, shards)
	if err != nil {
		return err
	}
	backings := make([]*ssd.FileBacking, len(paths))
	for i, pth := range paths {
		f, err := os.Open(pth)
		if err != nil {
			return err
		}
		defer f.Close()
		if backings[i], err = ssd.NewFileBacking(f); err != nil {
			return err
		}
	}

	var adj graph.Adjacency[uint32]
	var im *graph.CSR[uint32]
	var devs []*ssd.Device
	var caches []*sem.CachedStore
	var sgs []*sem.Graph[uint32]
	if semMode {
		p, err := ssd.ProfileByName(profile)
		if err != nil {
			return err
		}
		devs = make([]*ssd.Device, len(backings))
		caches = make([]*sem.CachedStore, len(backings))
		sgs = make([]*sem.Graph[uint32], len(backings))
		for i, b := range backings {
			devs[i] = ssd.New(p, b)
			var store sem.Store = devs[i]
			if !nocache {
				if caches[i], err = sem.NewCachedStoreRA(devs[i], 4096, b.Size()/2, 8); err != nil {
					return err
				}
				store = caches[i]
			}
			if sgs[i], err = sem.Open[uint32](store); err != nil {
				return err
			}
			if policy.StateAware() {
				sgs[i].EnableStateCache()
			}
			if prefetch > 1 {
				sgs[i].EnablePrefetch(sem.PrefetchConfig{MaxGap: prefetchGap})
			}
		}
		if sharded {
			mounted, err := sem.MountShards(sgs)
			if err != nil {
				return err
			}
			var edgeBytes int64
			for _, sg := range sgs {
				edgeBytes += sg.EdgeBytes()
			}
			bpe := 0.0
			if mounted.NumEdges() > 0 {
				bpe = float64(edgeBytes) / float64(mounted.NumEdges())
			}
			fmt.Printf("semi-external sharded: %d shards, %d vertices, %d edges, %d edge bytes (%.2f B/edge) on %s\n",
				mounted.NumShards(), mounted.NumVertices(), mounted.NumEdges(), edgeBytes, bpe, p.Name)
			adj = mounted
		} else {
			sg := sgs[0]
			format := "raw"
			if sg.Compressed() {
				format = "compressed"
			}
			bpe := 0.0
			if sg.NumEdges() > 0 {
				bpe = float64(sg.EdgeBytes()) / float64(sg.NumEdges())
			}
			fmt.Printf("semi-external: %d vertices, %d edges, %d edge bytes (%s, %.2f B/edge) on %s\n",
				sg.NumVertices(), sg.NumEdges(), sg.EdgeBytes(), format, bpe, p.Name)
			adj = sg
		}
	} else {
		if sharded {
			stores := make([]sem.Store, len(backings))
			for i, b := range backings {
				stores[i] = b
			}
			im, err = sem.LoadShardedCSR[uint32](stores)
		} else {
			im, err = sem.LoadCSR[uint32](backings[0])
		}
		if err != nil {
			return err
		}
		fmt.Printf("in-memory: %d vertices, %d edges, weighted=%v\n",
			im.NumVertices(), im.NumEdges(), im.Weighted())
		adj = im
		if dir != core.DirectionTopDown {
			// An in-memory mount can always serve reverse adjacency: pair the
			// CSR with its transpose (the on-flash in-edge section only
			// matters when the edges stay on the device).
			rev, err := graph.Transpose(im)
			if err != nil {
				return err
			}
			bidi, err := graph.NewBidi[uint32](im, rev)
			if err != nil {
				return err
			}
			adj = bidi
		}
	}

	if autoSrc && src == 0 && algo != "cc" {
		src = maxDegreeVertex(adj)
		fmt.Printf("source: %d (max degree %d)\n", src, adj.Degree(uint32(src)))
	}

	cfg := core.Config{Workers: workers, SemiSort: semisort, Batch: batch, Prefetch: prefetch, Direction: dir}
	if dir != core.DirectionTopDown {
		if _, ok := graph.InEdges[uint32](adj); !ok {
			return fmt.Errorf("%w: -direction %s needs a graph written with in-edges (gengraph/convert -symmetric)", core.ErrNoInEdges, dir)
		}
		// Derive the switch thresholds from the mounted graph's degree shape
		// instead of one-size-fits-all constants.
		cfg.Alpha, cfg.Beta = graph.DegreesOf[uint32](adj).DirectionThresholds()
		fmt.Printf("direction: %s (alpha=%d beta=%d)\n", dir, cfg.Alpha, cfg.Beta)
	}
	start := time.Now()
	switch {
	case algo == "bfs" && engine == "async":
		res, err := core.BFS[uint32](adj, uint32(src), cfg)
		if err != nil {
			return err
		}
		report(start, res.Stats.String())
		fmt.Printf("levels=%d visited=%.1f%%\n", res.NumLevels(), 100*res.FracVisited())
		if dir != core.DirectionTopDown {
			fmt.Printf("direction: topdown=%d bottomup=%d switches=%d peakFrontier=%d\n",
				res.Stats.TopDownPhases, res.Stats.BottomUpPhases, res.Stats.DirectionSwitches, res.Stats.PeakFrontier)
		}
		if check {
			want, err := baseline.SerialBFS(adj, uint32(src))
			if err != nil {
				return err
			}
			for v := range want {
				if res.Level[v] != want[v] {
					return fmt.Errorf("check failed: level[%d] = %d, serial says %d", v, res.Level[v], want[v])
				}
			}
			fmt.Println("check: levels match serial BFS")
		}
	case algo == "bfs" && engine == "lockfree":
		res, err := lockfree.BFS(adj, uint32(src), lockfree.Config{Workers: workers})
		if err != nil {
			return err
		}
		report(start, res.Stats.String())
	case algo == "bfs" && engine == "serial":
		if _, err := baseline.SerialBFS(adj, uint32(src)); err != nil {
			return err
		}
		report(start, "serial queue BFS")
	case algo == "bfs" && engine == "levelsync":
		if _, err := baseline.LevelSyncBFS(adj, uint32(src), workers); err != nil {
			return err
		}
		report(start, fmt.Sprintf("level-synchronous BFS, %d workers", workers))
	case algo == "bfs" && engine == "bsp":
		c, err := bsp.NewCluster[uint32](adj, ranks)
		if err != nil {
			return err
		}
		_, stats, err := c.BFS(uint32(src))
		if err != nil {
			return err
		}
		report(start, fmt.Sprintf("BSP BFS: %d supersteps, %d messages, max imbalance %.2f",
			stats.Supersteps, stats.Messages, stats.MaxImbalance()))
	case algo == "sssp" && engine == "async":
		res, err := core.SSSP[uint32](adj, uint32(src), cfg)
		if err != nil {
			return err
		}
		report(start, res.Stats.String())
		if check {
			want, _, err := baseline.SerialDijkstra(adj, uint32(src))
			if err != nil {
				return err
			}
			for v := range want {
				if res.Dist[v] != want[v] {
					return fmt.Errorf("check failed: dist[%d] = %d, Dijkstra says %d", v, res.Dist[v], want[v])
				}
			}
			fmt.Println("check: distances match Dijkstra")
		}
	case algo == "sssp" && engine == "lockfree":
		res, err := lockfree.SSSP(adj, uint32(src), lockfree.Config{Workers: workers})
		if err != nil {
			return err
		}
		report(start, res.Stats.String())
	case algo == "sssp" && engine == "serial":
		if _, _, err := baseline.SerialDijkstra(adj, uint32(src)); err != nil {
			return err
		}
		report(start, "serial Dijkstra")
	case algo == "cc" && engine == "async":
		res, err := core.CC[uint32](adj, cfg)
		if err != nil {
			return err
		}
		report(start, res.Stats.String())
		fmt.Printf("components=%d\n", res.NumComponents())
		if check {
			want, err := baseline.SerialCC(adj)
			if err != nil {
				return err
			}
			for v := range want {
				if res.ID[v] != want[v] {
					return fmt.Errorf("check failed: id[%d] = %d, serial says %d", v, res.ID[v], want[v])
				}
			}
			fmt.Println("check: labels match serial CC")
		}
	case algo == "cc" && engine == "lockfree":
		res, err := lockfree.CC(adj, lockfree.Config{Workers: workers})
		if err != nil {
			return err
		}
		report(start, res.Stats.String())
	case algo == "cc" && engine == "serial":
		if _, err := baseline.SerialCC(adj); err != nil {
			return err
		}
		report(start, "serial BFS-labelling CC")
	case algo == "cc" && engine == "levelsync":
		if _, err := baseline.LabelPropCC(adj, workers); err != nil {
			return err
		}
		report(start, fmt.Sprintf("label-propagation CC, %d workers", workers))
	case algo == "cc" && engine == "bsp":
		c, err := bsp.NewCluster[uint32](adj, ranks)
		if err != nil {
			return err
		}
		_, stats, err := c.CC()
		if err != nil {
			return err
		}
		report(start, fmt.Sprintf("BSP CC: %d supersteps, %d messages, max imbalance %.2f",
			stats.Supersteps, stats.Messages, stats.MaxImbalance()))
	default:
		return fmt.Errorf("unsupported -algo %q with -engine %q", algo, engine)
	}
	if semMode {
		reportSemIO(devs, caches, sgs, sharded)
	}
	return nil
}

// reportSemIO prints the end-to-end I/O picture of a semi-external run:
// device operation and byte counts (per shard when the mount is sharded, so
// the fan-out of pop-window spans across member devices is visible), block-
// cache effectiveness, and — when the prefetch pipeline was on — its
// span-coalescing counters.
func reportSemIO(devs []*ssd.Device, caches []*sem.CachedStore, sgs []*sem.Graph[uint32], sharded bool) {
	stats := make([]ssd.Stats, len(devs))
	for i, d := range devs {
		stats[i] = d.Stats()
		if sharded {
			fmt.Printf("shard%d device: reads=%d bytesRead=%d avgRead=%.0fB maxRead=%dB\n",
				i, stats[i].Reads, stats[i].BytesRead, stats[i].AvgReadBytes(), stats[i].MaxReadBytes)
		}
	}
	st := ssd.Sum(stats...)
	fmt.Printf("device: reads=%d writes=%d bytesRead=%d avgRead=%.0fB maxRead=%dB peakReads=%d\n",
		st.Reads, st.Writes, st.BytesRead, st.AvgReadBytes(), st.MaxReadBytes, st.PeakReads)
	var hits, misses uint64
	var pinnedHW int64
	haveCache := false
	policy := ""
	for _, c := range caches {
		if c == nil {
			continue
		}
		haveCache = true
		policy = c.PolicyName()
		h, m := c.Stats()
		hits += h
		misses += m
		if hw := c.PinnedHW(); hw > pinnedHW {
			pinnedHW = hw
		}
	}
	if haveCache {
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = 100 * float64(hits) / float64(hits+misses)
		}
		fmt.Printf("cache: policy=%s hits=%d misses=%d hitRate=%.1f%%", policy, hits, misses, hitRate)
		if policy == sem.PolicyState {
			// High-water mark of simultaneously pinned blocks (per shard device):
			// how much of the budget the settle counters actually defended.
			fmt.Printf(" pinnedHW=%d", pinnedHW)
		}
		fmt.Println()
	}
	var ps sem.PrefetchStats
	for _, sg := range sgs {
		ps.Add(sg.PrefetchStats())
	}
	if ps.Windows > 0 {
		fmt.Printf("prefetch: windows=%d vertices=%d spans=%d v/span=%.1f spanBytes=%d gapBytes=%d consumed=%.0f%% dedupSpans=%d dedupBytes=%d\n",
			ps.Windows, ps.Vertices, ps.Spans, ps.VertsPerSpan(), ps.SpanBytes, ps.GapBytes, 100*ps.ConsumedFrac(), ps.DedupSpans, ps.DedupBytes)
	}
	if ps.ScanSpans > 0 {
		fmt.Printf("scan: spans=%d spanBytes=%d avgSpan=%.0fB\n",
			ps.ScanSpans, ps.ScanBytes, float64(ps.ScanBytes)/float64(ps.ScanSpans))
	}
}

func maxDegreeVertex(g graph.Adjacency[uint32]) uint64 {
	best := uint32(0)
	for v := uint32(0); uint64(v) < g.NumVertices(); v++ {
		if g.Degree(v) > g.Degree(best) {
			best = v
		}
	}
	return uint64(best)
}

func report(start time.Time, detail string) {
	fmt.Printf("time=%.3fs  %s\n", time.Since(start).Seconds(), detail)
}
