// Command convert translates between the text edge-list format used by
// public graph-trace distributions and this repository's binary semi-external
// graph format.
//
// Examples:
//
//	convert -in trace.txt -out trace.asg                 # text -> binary
//	convert -in graph.asg -out graph.txt -to edgelist    # binary -> text
//	convert -in trace.txt -out und.asg -symmetrize       # make undirected
//	convert -in graph.asg -out graph.casg -compress      # raw -> compressed v2
//	convert -in graph.asg -out g.asg -shards 4           # -> g.asg.shard0..3
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/graph"
	"repro/internal/sem"
	"repro/internal/ssd"
)

func main() {
	var (
		in         = flag.String("in", "", "input file (required)")
		out        = flag.String("out", "", "output file (required)")
		to         = flag.String("to", "asg", "output format: asg (binary) or edgelist (text)")
		minVerts   = flag.Uint64("minverts", 0, "minimum vertex count for edge-list input")
		symmetrize = flag.Bool("symmetrize", false, "add reverse edges (undirected output)")
		compress   = flag.Bool("compress", false, "write asg output in the delta+varint compressed (v2) edge format")
		shards     = flag.Int("shards", 1, "hash-partition asg output into N shard files (out.shard0..N-1)")
		symmetric  = flag.Bool("symmetric", false, "write in-edge data for direction-optimized traversal: the symmetric flag with -symmetrize, else a transpose in-edge section")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "convert: -in and -out are required")
		flag.Usage()
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "convert: -shards must be >= 1, got %d\n", *shards)
		os.Exit(2)
	}
	if err := run(*in, *out, *to, *minVerts, *symmetrize, *compress, *shards, *symmetric); err != nil {
		fmt.Fprintf(os.Stderr, "convert: %v\n", err)
		os.Exit(1)
	}
}

func run(in, out, to string, minVerts uint64, symmetrize, compress bool, shards int, symmetric bool) error {
	if compress && to != "asg" {
		return fmt.Errorf("-compress only applies to -to asg output")
	}
	if shards > 1 && to != "asg" {
		return fmt.Errorf("-shards only applies to -to asg output")
	}
	if symmetric && to != "asg" {
		return fmt.Errorf("-symmetric only applies to -to asg output")
	}
	g, err := load(in, minVerts)
	if err != nil {
		return err
	}
	if symmetrize {
		b := graph.NewBuilder[uint32](g.NumVertices(), g.Weighted())
		g.ForEachEdge(func(u, v uint32, w graph.Weight) {
			b.AddEdge(u, v, w)
		})
		b.Symmetrize()
		if g, err = b.Build(true); err != nil {
			return err
		}
	}

	// A symmetrized output already stores both directions of every edge, so
	// the symmetric flag serves in-edges for free; directed outputs pay for a
	// transpose section instead.
	wcfg := sem.WriteConfig{
		Compress:  compress,
		Symmetric: symmetric && symmetrize,
		InEdges:   symmetric && !symmetrize,
	}
	if shards > 1 {
		for k := 0; k < shards; k++ {
			cfg := wcfg
			cfg.Shard = &sem.ShardConfig{Shard: k, Shards: shards}
			if err := writeFile(sem.ShardFileName(out, k), func(w io.Writer) error {
				return sem.Write(w, g, cfg)
			}); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %s.shard0..%d: %d vertices, %d edges, weighted=%v\n",
			out, shards-1, g.NumVertices(), g.NumEdges(), g.Weighted())
		return nil
	}
	if err := writeFile(out, func(w io.Writer) error {
		switch to {
		case "asg":
			return sem.Write(w, g, wcfg)
		case "edgelist":
			return graph.WriteEdgeList(w, g)
		default:
			return fmt.Errorf("unknown -to %q (want asg or edgelist)", to)
		}
	}); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d vertices, %d edges, weighted=%v\n",
		out, g.NumVertices(), g.NumEdges(), g.Weighted())
	return nil
}

// writeFile creates path and streams write's output through a buffered
// writer, closing cleanly on every path.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := write(w); err != nil {
		_ = f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// load sniffs the input format: the binary header magic identifies .asg
// files, anything else is parsed as a text edge list.
func load(path string, minVerts uint64) (*graph.CSR[uint32], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	header := make([]byte, 4)
	n, err := f.ReadAt(header, 0)
	if err != nil && err != io.EOF {
		return nil, err
	}
	if n == 4 && strings.HasPrefix(string(header), "ASG") {
		backing, err := ssd.NewFileBacking(f)
		if err != nil {
			return nil, err
		}
		return sem.LoadCSR[uint32](backing)
	}
	return graph.ReadEdgeList[uint32](bufio.NewReaderSize(f, 1<<20), minVerts)
}
