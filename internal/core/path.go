package core

import (
	"fmt"

	"repro/internal/graph"
)

// pathTo reconstructs the tree path from the source to v by walking parents.
// The returned slice starts at the source and ends at v. steps guards against
// corrupted parent arrays.
func pathTo[V graph.Vertex](parent []V, reached func(V) bool, v V) ([]V, error) {
	if uint64(v) >= uint64(len(parent)) {
		return nil, fmt.Errorf("core: vertex %d out of range", v)
	}
	if !reached(v) {
		return nil, fmt.Errorf("core: vertex %d was not reached", v)
	}
	var rev []V
	cur := v
	for steps := 0; ; steps++ {
		if steps > len(parent) {
			return nil, fmt.Errorf("core: parent chain from %d does not terminate", v)
		}
		rev = append(rev, cur)
		p := parent[cur]
		if p == cur {
			break // the source parents itself
		}
		cur = p
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// PathTo returns the shortest path from the traversal's source to v
// (source first). It errors if v is out of range or unreached.
func (r *SSSPResult[V]) PathTo(v V) ([]V, error) {
	return pathTo(r.Parent, r.Reached, v)
}

// PathTo returns the BFS tree path from the traversal's source to v
// (source first). It errors if v is out of range or unreached.
func (r *BFSResult[V]) PathTo(v V) ([]V, error) {
	return pathTo(r.Parent, r.Reached, v)
}
