package lint

import (
	"go/ast"
	"go/types"
)

// DroppedErr flags I/O calls whose error result is silently discarded. The
// semi-external layers (internal/sem, internal/ssd, internal/extsort) funnel
// every byte through ReadAt/WriteAt/Write/Close; a dropped error there turns
// device failure into silent graph corruption. Flagged shapes:
//
//	f.Close()            // expression statement, error vanishes
//	n, _ := f.ReadAt(p)  // tuple assignment, error position is blank
//
// Two shapes are deliberately accepted:
//
//	_ = f.Close()        // solitary blank assign: explicit, auditable intent
//	defer f.Close()      // defer cannot propagate the error; conventional
//	                     // for read-only resources
//
// The defer-Close acceptance has one carve-out: when the same function
// handles (does not discard) the error of a write-family call on the same
// receiver, the resource is a write path, and its Close error completes the
// write — buffered data is flushed and the final device error surfaces
// there. A `defer f.Close()` in that function silently discards exactly the
// failure the handled writes were guarding against, so it is flagged; close
// explicitly and check the error.
//
// The method-name set is the positional/streams family the storage layers
// use: Read, ReadAt, Write, WriteAt, Close, Flush, Sync, plus the encoder
// family the server and load-report paths use: Encode, WriteString.
const droppedErrName = "droppederr"

var DroppedErr = &Analyzer{
	Name: droppedErrName,
	Doc:  "ignored error results from Read/ReadAt/Write/WriteAt/Close/Flush/Sync/Encode/WriteString",
	Run:  runDroppedErr,
}

var droppedErrMethods = map[string]bool{
	"Read": true, "ReadAt": true, "Write": true, "WriteAt": true,
	"Close": true, "Flush": true, "Sync": true,
	"Encode": true, "WriteString": true,
}

// droppedErrWriteMethods is the write-family subset: a handled error from
// one of these marks the receiver as a checked write path for the
// defer-Close rule.
var droppedErrWriteMethods = map[string]bool{
	"Write": true, "WriteAt": true, "WriteString": true,
	"Flush": true, "Sync": true, "Encode": true,
}

// errReturningIOCall reports whether call is a method call (not a package-
// qualified function) in the watched name set whose final result is error.
func errReturningIOCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !droppedErrMethods[sel.Sel.Name] {
		return "", false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
			return "", false // pkg.Func(...), e.g. fmt.Fprintln — not an I/O method
		}
	}
	// In-memory accumulators whose write methods are documented to never
	// return a non-nil error: flagging them teaches people to ignore the
	// analyzer.
	if t := info.TypeOf(sel.X); t != nil {
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
			case "strings.Builder", "bytes.Buffer":
				return "", false
			}
		}
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return "", false
	}
	return types.ExprString(sel.X) + "." + sel.Sel.Name, true
}

func runDroppedErr(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					if name, ok := errReturningIOCall(p.Info, call); ok {
						diags = append(diags, Diagnostic{
							Pos:      p.Fset.Position(stmt.Pos()),
							Analyzer: droppedErrName,
							Message:  name + " error is dropped; handle it or assign it to _ explicitly",
						})
					}
				}
			case *ast.AssignStmt:
				// n, _ := f.ReadAt(...): some results used, error blanked.
				if len(stmt.Rhs) != 1 || len(stmt.Lhs) < 2 {
					return true
				}
				call, ok := stmt.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				allBlank := true
				for _, lhs := range stmt.Lhs {
					if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
						allBlank = false
						break
					}
				}
				if allBlank {
					return true // fully explicit discard
				}
				if last, ok := stmt.Lhs[len(stmt.Lhs)-1].(*ast.Ident); ok && last.Name == "_" {
					if name, ok := errReturningIOCall(p.Info, call); ok {
						diags = append(diags, Diagnostic{
							Pos:      p.Fset.Position(stmt.Pos()),
							Analyzer: droppedErrName,
							Message:  name + " error is blanked while other results are used; handle it",
						})
					}
				}
			}
			return true
		})
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				diags = append(diags, checkDeferClosedWriter(p, body)...)
			}
			return true
		})
	}
	return diags
}

// checkDeferClosedWriter flags `defer x.Close()` in a function that handles
// the error of a write-family call on the same receiver. Nested function
// literals are separate scopes (their defers fire at their own return).
func checkDeferClosedWriter(p *Package, body *ast.BlockStmt) []Diagnostic {
	// Pass 1: mark write-family calls whose error is deliberately discarded
	// (expression statement, or assignment with the error position blank).
	discarded := make(map[*ast.CallExpr]bool)
	walkShallow(body, func(n ast.Node) {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok {
				discarded[call] = true
			}
		case *ast.AssignStmt:
			if len(stmt.Rhs) != 1 {
				return
			}
			call, ok := stmt.Rhs[0].(*ast.CallExpr)
			if !ok || len(stmt.Lhs) == 0 {
				return
			}
			if last, ok := stmt.Lhs[len(stmt.Lhs)-1].(*ast.Ident); ok && last.Name == "_" {
				discarded[call] = true
			}
		case *ast.DeferStmt:
			discarded[stmt.Call] = true
		case *ast.GoStmt:
			discarded[stmt.Call] = true
		}
	})
	// Pass 2: receivers with at least one handled write.
	handled := make(map[string]bool)
	walkShallow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || discarded[call] {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !droppedErrWriteMethods[sel.Sel.Name] {
			return
		}
		if _, ok := errReturningIOCall(p.Info, call); ok {
			handled[types.ExprString(sel.X)] = true
		}
	})
	if len(handled) == 0 {
		return nil
	}
	// Pass 3: flag deferred Closes on those receivers.
	var diags []Diagnostic
	walkShallow(body, func(n ast.Node) {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return
		}
		sel, ok := d.Call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" || !handled[types.ExprString(sel.X)] {
			return
		}
		if name, ok := errReturningIOCall(p.Info, d.Call); ok {
			diags = append(diags, Diagnostic{
				Pos:      p.Fset.Position(d.Pos()),
				Analyzer: droppedErrName,
				Message:  name + " error is discarded by defer on a write path; the close completes the handled writes — close explicitly and check the error",
			})
		}
	})
	return diags
}
