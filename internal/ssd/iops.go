package ssd

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// MeasureReadIOPS reproduces the paper's Figure 1 measurement: `threads`
// concurrent workers issue random reads of readSize bytes against the device
// for the given duration, and the aggregate operations-per-second is
// returned. IOPS rise with the thread count until the device's internal
// parallelism saturates.
func MeasureReadIOPS(d *Device, threads, readSize int, dur time.Duration, seed uint64) float64 {
	if threads <= 0 || readSize <= 0 || d.Size() < int64(readSize) {
		return 0
	}
	span := d.Size() - int64(readSize)
	var ops atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rand.New(rand.NewPCG(seed, uint64(id)))
			buf := make([]byte, readSize)
			for !stop.Load() {
				off := int64(0)
				if span > 0 {
					off = r.Int64N(span + 1)
				}
				if _, err := d.ReadAt(buf, off); err != nil {
					return
				}
				ops.Add(1)
			}
		}(t)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(ops.Load()) / elapsed
}
