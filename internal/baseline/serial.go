// Package baseline implements the comparator algorithms of the paper's
// evaluation. The serial routines play the role of the Boost Graph Library
// (the paper's "efficient serial baseline to compute speedup"); the
// level-synchronous and label-propagation routines play the roles of MTGL and
// SNAP, the barrier-synchronized shared-memory libraries the asynchronous
// approach is compared against.
//
// All baselines work against graph.Adjacency so the benchmark harness can
// interpose its DRAM-latency model, keeping every competitor subject to the
// same memory-system assumptions.
package baseline

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/pq"
)

// SerialBFS is a textbook queue-based breadth-first search, the RAM-model
// algorithm BGL implements.
func SerialBFS[V graph.Vertex](g graph.Adjacency[V], src V) ([]graph.Dist, error) {
	n := g.NumVertices()
	if uint64(src) >= n {
		return nil, fmt.Errorf("baseline: source %d out of range for %d vertices", src, n)
	}
	level := make([]graph.Dist, n)
	for i := range level {
		level[i] = graph.InfDist
	}
	scratch := &graph.Scratch[V]{}
	queue := make([]V, 0, 1024)
	level[src] = 0
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		next := level[v] + 1
		targets, _, err := g.Neighbors(v, scratch)
		if err != nil {
			return nil, err
		}
		for _, t := range targets {
			if level[t] == graph.InfDist {
				level[t] = next
				queue = append(queue, t)
			}
		}
	}
	return level, nil
}

// SerialDijkstra is a binary-heap Dijkstra SSSP, BGL's
// dijkstra_shortest_paths analogue. Stale heap entries are skipped lazily.
func SerialDijkstra[V graph.Vertex](g graph.Adjacency[V], src V) ([]graph.Dist, []V, error) {
	n := g.NumVertices()
	if uint64(src) >= n {
		return nil, nil, fmt.Errorf("baseline: source %d out of range for %d vertices", src, n)
	}
	dist := make([]graph.Dist, n)
	parent := make([]V, n)
	for i := range dist {
		dist[i] = graph.InfDist
		parent[i] = graph.NoVertex[V]()
	}
	scratch := &graph.Scratch[V]{}
	h := pq.New(false)
	dist[src] = 0
	parent[src] = src
	h.Push(pq.Item{Pri: 0, V: uint64(src)})
	for {
		it, ok := h.Pop()
		if !ok {
			break
		}
		v := V(it.V)
		if it.Pri > dist[v] {
			continue // stale entry
		}
		targets, weights, err := g.Neighbors(v, scratch)
		if err != nil {
			return nil, nil, err
		}
		for i, t := range targets {
			w := graph.Weight(1)
			if weights != nil {
				w = weights[i]
			}
			nd := it.Pri + uint64(w)
			if nd < dist[t] {
				dist[t] = nd
				parent[t] = v
				h.Push(pq.Item{Pri: nd, V: uint64(t)})
			}
		}
	}
	return dist, parent, nil
}

// SerialCC labels connected components of an undirected graph by repeated
// BFS from each unvisited vertex in ascending id order, so labels equal the
// minimum vertex id of each component — directly comparable with the
// asynchronous CC output.
func SerialCC[V graph.Vertex](g graph.Adjacency[V]) ([]V, error) {
	n := g.NumVertices()
	id := make([]V, n)
	no := graph.NoVertex[V]()
	for i := range id {
		id[i] = no
	}
	scratch := &graph.Scratch[V]{}
	queue := make([]V, 0, 1024)
	for s := uint64(0); s < n; s++ {
		if id[s] != no {
			continue
		}
		label := V(s)
		id[s] = label
		queue = append(queue[:0], V(s))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			targets, _, err := g.Neighbors(v, scratch)
			if err != nil {
				return nil, err
			}
			for _, t := range targets {
				if id[t] == no {
					id[t] = label
					queue = append(queue, t)
				}
			}
		}
	}
	return id, nil
}
