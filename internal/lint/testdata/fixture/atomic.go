// Package fixture seeds one deliberate violation per analyzer rule so the
// lint unit tests can prove each rule fires (and stays quiet on the clean
// counterparts). It lives under testdata so the go tool never builds it as
// part of the repository.
package fixture

import "sync/atomic"

type counters struct {
	mixed  uint64        // accessed both atomically and plainly: violation
	clean  uint64        // atomic-only: no diagnostic
	plain  uint64        // plain-only: no diagnostic
	boxed  atomic.Uint64 // method-form atomic, mixed with plain copy: violation
	method atomic.Uint64 // method-form atomic only: no diagnostic
}

func (c *counters) bump() {
	atomic.AddUint64(&c.mixed, 1)
	atomic.AddUint64(&c.clean, 1)
	c.boxed.Add(1)
	c.method.Add(1)
	c.plain++
}

func (c *counters) read() uint64 {
	n := c.mixed // plain load of an atomically-written field
	v := &c.boxed
	_ = v // plain (address) access to the wrapper field
	return n + c.plain
}
