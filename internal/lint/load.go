package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// This file is the analyzer suite's package loader. It is stdlib-only: the
// `go list -export` command resolves patterns, build constraints, and
// dependency export data (compiling what the build cache is missing), and
// go/parser + go/types rebuild full syntax trees and type information for
// the packages under analysis. Dependencies are imported from their compiled
// export data via go/importer's lookup hook, so loading cost scales with the
// analyzed packages, not the transitive source tree.

// Package is one loaded, parsed, and type-checked package ready for
// analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") relative to dir into parsed,
// type-checked packages. Test files are not included (matching what `go
// build` compiles and what export data describes). A package that fails to
// parse or type-check aborts the load: the analyzers assume well-typed
// input, and the build gate runs before the lint gate in CI.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var roots []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: load %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			pp := p
			roots = append(roots, &pp)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	// Parse and type-check the root packages in parallel. The token.FileSet
	// is concurrency-safe and shared (every Package reports positions in one
	// coordinate space), but a "gc" importer is not: each worker gets its own
	// importer reading the same export-data files, which means a dependency's
	// *types.Package is not pointer-identical across roots. The analyzers
	// already canonicalize cross-package identity to strings (funcKey,
	// classOf), so nothing downstream relies on object identity.
	fset := token.NewFileSet()
	results := make([]*Package, len(roots))
	errs := make([]error, len(roots))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, root := range roots {
		wg.Add(1)
		go func(i int, root *listedPkg) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = checkPackage(fset, exports, root)
		}(i, root)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err // roots are sorted: the first error is deterministic
		}
	}
	return results, nil
}

// checkPackage parses and type-checks one root package against the export
// data of its dependencies.
func checkPackage(fset *token.FileSet, exports map[string]string, root *listedPkg) (*Package, error) {
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	files := make([]*ast.File, 0, len(root.GoFiles))
	for _, name := range root.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(root.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, _ := conf.Check(root.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-check %s:\n  %s", root.ImportPath, strings.Join(typeErrs, "\n  "))
	}
	return &Package{
		PkgPath: root.ImportPath,
		Dir:     root.Dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
