// Package pq implements the binary min-heap underlying each worker's
// prioritized visitor queue. The heap orders items by a primary 64-bit
// priority and, when enabled, a secondary vertex-id key — the paper's
// semi-external "semi-sort" optimization that increases storage locality by
// visiting equal-priority vertices in ascending id order (§IV-C).
package pq

// Item is a queued visitor. Pri is the traversal priority (path length for
// SSSP/BFS, candidate component id for CC), V is the vertex to visit, and Aux
// carries algorithm payload (the proposed parent for SSSP/BFS).
type Item struct {
	Pri uint64
	V   uint64
	Aux uint64
}

// Heap is a non-concurrent binary min-heap of Items. Concurrency control
// belongs to the owning worker queue, not the heap.
type Heap struct {
	items    []Item
	semiSort bool  // break priority ties by ascending vertex id
	priShift uint8 // compare Pri >> priShift: Δ-style priority coarsening
	maxLen   int
}

// Note on cache-affine ordering: an earlier revision let semi-external mounts
// install a residency probe here as a tiebreak between the coarse priority
// and the semi-sort key, so pop-windows would drain cache-resident work
// first. Measured on RMAT under the state-aware cache policy it raised device
// reads 30-65%: the semi-sort key exists to make each window's extents
// contiguous on storage, and any ordering layered above it fragments the
// coalesced spans the prefetcher forms. Window membership must stay purely
// priority + id ordered; cache affinity is applied on the cache side instead
// (recency promotion of queued blocks, pending-run span extension).

// New returns an empty heap. When semiSort is true, ties on Pri are broken by
// ascending V.
func New(semiSort bool) *Heap {
	return &Heap{semiSort: semiSort}
}

// NewCoarse returns a heap that compares priorities coarsened by shift bits
// (Δ-stepping-style bucketing: priorities within the same 2^shift-wide bucket
// are considered equal, falling through to the semi-sort key). shift = 0 is
// exact ordering.
func NewCoarse(semiSort bool, shift uint8) *Heap {
	return &Heap{semiSort: semiSort, priShift: shift}
}

// Len reports the number of queued items.
func (h *Heap) Len() int { return len(h.items) }

// MaxLen reports the high-water mark of the heap size, used by the harness to
// report queue memory pressure.
func (h *Heap) MaxLen() int { return h.maxLen }

// Reset empties the heap and clears the high-water mark, keeping the backing
// array for reuse across traversals.
func (h *Heap) Reset() {
	h.items = h.items[:0]
	h.maxLen = 0
}

func (h *Heap) less(a, b Item) bool {
	if pa, pb := a.Pri>>h.priShift, b.Pri>>h.priShift; pa != pb {
		return pa < pb
	}
	if h.semiSort && a.V != b.V {
		return a.V < b.V
	}
	return false
}

// Push inserts an item.
//
//lint:hotpath
func (h *Heap) Push(it Item) {
	h.items = append(h.items, it)
	if len(h.items) > h.maxLen {
		h.maxLen = len(h.items)
	}
	h.siftUp(len(h.items) - 1)
}

// PushBatch inserts a batch of items, growing the backing array once. The
// engine's mailbox layer delivers outbox flushes through this path so the
// queue lock is held for one amortized operation instead of len(its) calls.
// The input slice is consumed before PushBatch returns; callers may reuse it.
//
//lint:hotpath
func (h *Heap) PushBatch(its []Item) {
	h.items = append(h.items, its...)
	if len(h.items) > h.maxLen {
		h.maxLen = len(h.items)
	}
	for i := len(h.items) - len(its); i < len(h.items); i++ {
		h.siftUp(i)
	}
}

func (h *Heap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

// Pop removes and returns the minimum item. ok is false when the heap is
// empty.
//
//lint:hotpath
func (h *Heap) Pop() (it Item, ok bool) {
	n := len(h.items)
	if n == 0 {
		return Item{}, false
	}
	it = h.items[0]
	h.items[0] = h.items[n-1]
	h.items = h.items[:n-1]
	h.siftDown(0)
	return it, true
}

// PopBatch removes up to k minimum items, appending them to dst and returning
// the extended slice. The sequence is exactly what k successive Pop calls
// would produce, so the engine's pop-window path keeps heap order. Fewer than
// k items are returned when the heap drains first.
//
// dst is grown to its final size in one reallocation up front, and each
// extraction sifts in place; the queue lock the caller holds covers k
// root-removals and at most one allocation, never k append growth steps.
//
//lint:hotpath
func (h *Heap) PopBatch(dst []Item, k int) []Item {
	if k > len(h.items) {
		k = len(h.items)
	}
	if k <= 0 {
		return dst
	}
	if free := cap(dst) - len(dst); free < k {
		grown := make([]Item, len(dst), len(dst)+k)
		copy(grown, dst)
		dst = grown
	}
	for i := 0; i < k; i++ {
		n := len(h.items)
		dst = append(dst, h.items[0])
		h.items[0] = h.items[n-1]
		h.items = h.items[:n-1]
		h.siftDown(0)
	}
	return dst
}

// Peek returns the minimum item without removing it.
func (h *Heap) Peek() (it Item, ok bool) {
	if len(h.items) == 0 {
		return Item{}, false
	}
	return h.items[0], true
}

func (h *Heap) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.less(h.items[l], h.items[min]) {
			min = l
		}
		if r < n && h.less(h.items[r], h.items[min]) {
			min = r
		}
		if min == i {
			return
		}
		h.items[i], h.items[min] = h.items[min], h.items[i]
		i = min
	}
}
