package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/gen"
	"repro/internal/graph"
)

func randomDigraph(t testing.TB, n uint64, m int, weighted bool, seed uint64) *graph.CSR[uint32] {
	t.Helper()
	r := rand.New(rand.NewPCG(seed, seed+1))
	edges := make([]graph.Edge[uint32], 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge[uint32]{
			Src: uint32(r.Uint64N(n)),
			Dst: uint32(r.Uint64N(n)),
			W:   graph.Weight(r.Uint64N(100)),
		})
	}
	g, err := graph.FromEdges(n, weighted, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randomUndirected(t testing.TB, n uint64, m int, seed uint64) *graph.CSR[uint32] {
	t.Helper()
	r := rand.New(rand.NewPCG(seed, seed+1))
	b := graph.NewBuilder[uint32](n, false)
	for i := 0; i < m; i++ {
		b.AddEdge(uint32(r.Uint64N(n)), uint32(r.Uint64N(n)), 1)
	}
	b.Symmetrize()
	g, err := b.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBFSMatchesSerialOnRandomGraphs(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		g := randomDigraph(t, 300, 1500, false, seed)
		want, err := baseline.SerialBFS(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerSweep {
			res, err := BFS[uint32](g, 0, Config{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if res.Level[v] != want[v] {
					t.Fatalf("seed=%d workers=%d: level[%d] = %d, want %d",
						seed, w, v, res.Level[v], want[v])
				}
			}
		}
	}
}

func TestSSSPMatchesDijkstraOnRandomGraphs(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		g := randomDigraph(t, 300, 1500, true, seed)
		wantDist, _, err := baseline.SerialDijkstra(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerSweep {
			res, err := SSSP[uint32](g, 0, Config{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			for v := range wantDist {
				if res.Dist[v] != wantDist[v] {
					t.Fatalf("seed=%d workers=%d: dist[%d] = %d, want %d",
						seed, w, v, res.Dist[v], wantDist[v])
				}
			}
		}
	}
}

func TestCCMatchesSerialOnRandomGraphs(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		g := randomUndirected(t, 400, 600, seed) // sparse: many components
		want, err := baseline.SerialCC(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerSweep {
			res, err := CC[uint32](g, Config{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if res.ID[v] != want[v] {
					t.Fatalf("seed=%d workers=%d: id[%d] = %d, want %d",
						seed, w, v, res.ID[v], want[v])
				}
			}
		}
	}
}

func TestSSSPParentsFormShortestPathTree(t *testing.T) {
	g := randomDigraph(t, 200, 1000, true, 42)
	res, err := SSSP[uint32](g, 0, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[0] != 0 {
		t.Fatalf("dist[src] = %d", res.Dist[0])
	}
	if res.Parent[0] != 0 {
		t.Fatalf("parent[src] = %d, want self", res.Parent[0])
	}
	// Walking parents from any reached vertex must reach the source with
	// dist decreasing along the way.
	for v := uint32(0); v < 200; v++ {
		if !res.Reached(v) {
			if res.Parent[v] != graph.NoVertex[uint32]() {
				t.Fatalf("unreached vertex %d has parent %d", v, res.Parent[v])
			}
			continue
		}
		cur := v
		for steps := 0; cur != 0; steps++ {
			if steps > 200 {
				t.Fatalf("parent chain from %d does not reach source", v)
			}
			p := res.Parent[cur]
			if !res.Reached(p) || res.Dist[p] >= res.Dist[cur] && cur != 0 && res.Dist[cur] != res.Dist[p] {
				// allow equal dist only via zero-weight edges
				if res.Dist[p] > res.Dist[cur] {
					t.Fatalf("parent dist increases: %d(%d) -> %d(%d)", cur, res.Dist[cur], p, res.Dist[p])
				}
			}
			cur = p
		}
	}
}

func TestBFSParentEdgesExist(t *testing.T) {
	g := randomDigraph(t, 150, 700, false, 9)
	res, err := BFS[uint32](g, 3, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	adj := make(map[[2]uint32]bool)
	g.ForEachEdge(func(u, v uint32, _ graph.Weight) { adj[[2]uint32{u, v}] = true })
	for v := uint32(0); v < 150; v++ {
		if !res.Reached(v) || v == 3 {
			continue
		}
		p := res.Parent[v]
		if !adj[[2]uint32{p, v}] {
			t.Fatalf("parent edge %d->%d does not exist", p, v)
		}
		if res.Level[v] != res.Level[p]+1 {
			t.Fatalf("level[%d]=%d but parent level %d", v, res.Level[v], res.Level[p])
		}
	}
}

func TestBFSOnChainIsSerialButCorrect(t *testing.T) {
	// Figure 2: a chain has no independent pathways; the traversal must
	// still produce exact levels at any worker count.
	g, err := gen.Chain[uint32](500)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS[uint32](g, 0, Config{Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < 500; v++ {
		if res.Level[v] != graph.Dist(v) {
			t.Fatalf("level[%d] = %d", v, res.Level[v])
		}
	}
	if got := res.NumLevels(); got != 500 {
		t.Fatalf("levels = %d, want 500", got)
	}
	if res.FracVisited() != 1.0 {
		t.Fatalf("frac = %f", res.FracVisited())
	}
}

func TestBFSUnreachableVertices(t *testing.T) {
	// Two disjoint chains; BFS from 0 must not reach the second chain.
	b := graph.NewBuilder[uint32](6, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	g, err := b.Build(false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS[uint32](g, 0, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := uint32(3); v < 6; v++ {
		if res.Reached(v) {
			t.Fatalf("vertex %d should be unreachable", v)
		}
	}
	if f := res.FracVisited(); f != 0.5 {
		t.Fatalf("frac visited = %f, want 0.5", f)
	}
	if res.NumLevels() != 3 {
		t.Fatalf("levels = %d, want 3", res.NumLevels())
	}
}

func TestPaperFigure3Graph(t *testing.T) {
	// The exact 5-vertex weighted digraph of Figure 3. Final labels from the
	// paper's walk-through: dist = [0, 2, 5, 6, 8].
	g := paperFigure3Graph(t)
	res, err := SSSP[uint32](g, 0, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Dist{0, 2, 5, 6, 8}
	for v, d := range want {
		if res.Dist[v] != d {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], d)
		}
	}
	// The example is constructed so label correction happens (vertices 2, 3,
	// 4 receive competing path lengths); with a single worker and semi-sorted
	// queues the traversal is still correct.
	res1, err := SSSP[uint32](g, 0, Config{Workers: 1, SemiSort: true})
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range want {
		if res1.Dist[v] != d {
			t.Fatalf("1-worker dist[%d] = %d, want %d", v, res1.Dist[v], d)
		}
	}
}

// paperFigure3Graph reconstructs the weighted digraph of Figure 3:
// 0->1 (2), 0->2 (5), 1->2 (4), 1->3 (7), 2->3 (1), 3->0 (1), 3->4 (2+3=5?).
// The figure's edges: 0-1 w2, 0-2 w5, 1-2 w4, 1-3 w7, 2-3 w1, 3-0 w1,
// 3-4 w2, 4-0 w3. Weights chosen to force multiple visits per vertex.
func paperFigure3Graph(t testing.TB) *graph.CSR[uint32] {
	t.Helper()
	b := graph.NewBuilder[uint32](5, true)
	b.AddEdge(0, 1, 2)
	b.AddEdge(0, 2, 5)
	b.AddEdge(1, 2, 4)
	b.AddEdge(1, 3, 7)
	b.AddEdge(2, 3, 1)
	b.AddEdge(3, 0, 1)
	b.AddEdge(3, 4, 2)
	b.AddEdge(4, 0, 3)
	g, err := b.Build(false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCCOnDisjointCliques(t *testing.T) {
	// 3 cliques of 4 vertices: components {0..3}, {4..7}, {8..11}.
	b := graph.NewBuilder[uint32](12, false)
	for c := uint32(0); c < 3; c++ {
		base := c * 4
		for i := uint32(0); i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				b.AddEdge(base+i, base+j, 1)
			}
		}
	}
	b.Symmetrize()
	g, err := b.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CC[uint32](g, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumComponents() != 3 {
		t.Fatalf("components = %d, want 3", res.NumComponents())
	}
	for v := uint32(0); v < 12; v++ {
		if res.ID[v] != (v/4)*4 {
			t.Fatalf("id[%d] = %d, want %d", v, res.ID[v], (v/4)*4)
		}
	}
	sizes := res.Sizes()
	for label, size := range sizes {
		if size != 4 {
			t.Fatalf("component %d size = %d, want 4", label, size)
		}
	}
}

func TestCCEmptyAndSingletons(t *testing.T) {
	g, err := graph.FromEdges[uint32](5, false, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CC[uint32](g, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumComponents() != 5 {
		t.Fatalf("components = %d, want 5 singletons", res.NumComponents())
	}

	empty, err := graph.FromEdges[uint32](0, false, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err = CC[uint32](empty, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumComponents() != 0 {
		t.Fatalf("components = %d, want 0", res.NumComponents())
	}
}

func TestSourceOutOfRange(t *testing.T) {
	g, err := graph.FromEdges[uint32](2, false, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BFS[uint32](g, 5, Config{}); err == nil {
		t.Fatal("BFS accepted out-of-range source")
	}
	if _, err := SSSP[uint32](g, 5, Config{}); err == nil {
		t.Fatal("SSSP accepted out-of-range source")
	}
}

func TestZeroWeightEdges(t *testing.T) {
	b := graph.NewBuilder[uint32](3, true)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	g, err := b.Build(false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SSSP[uint32](g, 0, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < 3; v++ {
		if res.Dist[v] != 0 {
			t.Fatalf("dist[%d] = %d, want 0", v, res.Dist[v])
		}
	}
}

func TestUint64VertexTraversal(t *testing.T) {
	b := graph.NewBuilder[uint64](4, true)
	b.AddEdge(0, 1, 3)
	b.AddEdge(1, 2, 4)
	b.AddEdge(0, 2, 10)
	g, err := b.Build(false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SSSP[uint64](g, 0, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[2] != 7 {
		t.Fatalf("dist[2] = %d, want 7", res.Dist[2])
	}
	if res.Reached(3) {
		t.Fatal("vertex 3 should be unreachable")
	}
}

// Property: async SSSP equals Dijkstra on arbitrary small weighted digraphs.
func TestQuickSSSPEquivalence(t *testing.T) {
	type rawEdge struct {
		S, D uint8
		W    uint16
	}
	f := func(raw []rawEdge) bool {
		const n = 64
		edges := make([]graph.Edge[uint32], len(raw))
		for i, e := range raw {
			edges[i] = graph.Edge[uint32]{
				Src: uint32(e.S) % n, Dst: uint32(e.D) % n, W: graph.Weight(e.W),
			}
		}
		g, err := graph.FromEdges(n, true, true, edges)
		if err != nil {
			return false
		}
		want, _, err := baseline.SerialDijkstra(g, 0)
		if err != nil {
			return false
		}
		got, err := SSSP[uint32](g, 0, Config{Workers: 7})
		if err != nil {
			return false
		}
		for v := range want {
			if got.Dist[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: async CC partitions equal union-find partitions with min-id
// labels on arbitrary undirected graphs.
func TestQuickCCEquivalence(t *testing.T) {
	type rawEdge struct{ S, D uint8 }
	f := func(raw []rawEdge) bool {
		const n = 64
		b := graph.NewBuilder[uint32](n, false)
		for _, e := range raw {
			b.AddEdge(uint32(e.S)%n, uint32(e.D)%n, 1)
		}
		b.Symmetrize()
		g, err := b.Build(true)
		if err != nil {
			return false
		}
		want, err := baseline.UnionFindCC(g, 3)
		if err != nil {
			return false
		}
		got, err := CC[uint32](g, Config{Workers: 5})
		if err != nil {
			return false
		}
		for v := range want {
			if got.ID[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS levels equal serial BFS on arbitrary digraphs, at varying
// worker counts and with semi-sort enabled.
func TestQuickBFSEquivalence(t *testing.T) {
	type rawEdge struct{ S, D uint8 }
	f := func(raw []rawEdge, semiSort bool) bool {
		const n = 64
		edges := make([]graph.Edge[uint32], len(raw))
		for i, e := range raw {
			edges[i] = graph.Edge[uint32]{Src: uint32(e.S) % n, Dst: uint32(e.D) % n}
		}
		g, err := graph.FromEdges(n, false, true, edges)
		if err != nil {
			return false
		}
		want, err := baseline.SerialBFS(g, 0)
		if err != nil {
			return false
		}
		got, err := BFS[uint32](g, 0, Config{Workers: 6, SemiSort: semiSort})
		if err != nil {
			return false
		}
		for v := range want {
			if got.Level[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSSSPCoarseShiftStillExact(t *testing.T) {
	// Δ-style priority coarsening may reorder work but must not change the
	// final shortest-path labels (label correction repairs any ordering).
	g := randomDigraph(t, 300, 1500, true, 77)
	want, _, err := baseline.SerialDijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, shift := range []uint8{0, 2, 6, 12, 63} {
		res, err := SSSP[uint32](g, 0, Config{Workers: 8, CoarseShift: shift})
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if res.Dist[v] != want[v] {
				t.Fatalf("shift=%d: dist[%d] = %d, want %d", shift, v, res.Dist[v], want[v])
			}
		}
	}
}

func TestCCWithIdentityHash(t *testing.T) {
	g := randomUndirected(t, 300, 500, 5)
	want, err := baseline.SerialCC(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CC[uint32](g, Config{Workers: 8, Hash: IdentityHash})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.ID[v] != want[v] {
			t.Fatalf("id[%d] = %d, want %d", v, res.ID[v], want[v])
		}
	}
}

func TestBFSWithBucketQueue(t *testing.T) {
	g := randomDigraph(t, 300, 1500, false, 21)
	want, err := baseline.SerialBFS[uint32](g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerSweep {
		res, err := BFS[uint32](g, 0, Config{Workers: w, Queue: QueueBucket})
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if res.Level[v] != want[v] {
				t.Fatalf("workers=%d: level[%d] = %d, want %d", w, v, res.Level[v], want[v])
			}
		}
	}
}

func TestCCWithBucketQueue(t *testing.T) {
	g := randomUndirected(t, 300, 500, 22)
	want, err := baseline.SerialCC[uint32](g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CC[uint32](g, Config{Workers: 8, Queue: QueueBucket})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.ID[v] != want[v] {
			t.Fatalf("id[%d] = %d, want %d", v, res.ID[v], want[v])
		}
	}
}

func TestSSSPWithBucketQueue(t *testing.T) {
	g := randomDigraph(t, 200, 1000, true, 23)
	want, _, err := baseline.SerialDijkstra[uint32](g, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SSSP[uint32](g, 0, Config{Workers: 8, Queue: QueueBucket})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.Dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], want[v])
		}
	}
}
