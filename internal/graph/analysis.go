package graph

import "sort"

// Transpose returns the reverse graph: every edge (u, v, w) becomes
// (v, u, w). Useful for in-neighborhood traversals and for turning a crawl's
// out-links into in-link structure.
func Transpose[V Vertex](g *CSR[V]) (*CSR[V], error) {
	b := NewBuilder[V](g.NumVertices(), g.Weighted())
	g.ForEachEdge(func(u, v V, w Weight) {
		b.AddEdge(v, u, w)
	})
	return b.Build(false)
}

// TransposeCompressed returns the delta+varint compressed reverse of c, the
// in-edge side of a Bidi pairing over compressed storage. The round trip
// (decompress, transpose, recompress) runs once at mount time; traversal
// then decodes reverse blocks exactly like forward ones.
func TransposeCompressed[V Vertex](c *CompressedCSR[V]) (*CompressedCSR[V], error) {
	raw, err := c.Decompress()
	if err != nil {
		return nil, err
	}
	t, err := Transpose(raw)
	if err != nil {
		return nil, err
	}
	return Compress(t)
}

// DegreeStats summarizes an out-degree distribution, the property that
// drives the paper's load-balance discussion (§I-B: hub vertices).
type DegreeStats struct {
	Min, Max int
	Mean     float64
	Median   int
	P99      int
	Isolated uint64  // vertices with out-degree 0
	HubFrac  float64 // fraction of edges incident to the top 1% of vertices
	NumVerts uint64
	NumEdges uint64
}

// Degrees computes the out-degree distribution summary of g.
func Degrees[V Vertex](g *CSR[V]) DegreeStats { return DegreesOf[V](g) }

// DegreesOf computes the out-degree distribution summary of any adjacency
// back end from its RAM-resident degree information — no edge I/O. Mount
// paths use it to derive the direction controller's default thresholds from
// the graph actually mounted (see DirectionThresholds).
func DegreesOf[V Vertex](g Adjacency[V]) DegreeStats {
	n := g.NumVertices()
	var m uint64
	if ne, ok := g.(interface{ NumEdges() uint64 }); ok {
		m = ne.NumEdges()
	}
	st := DegreeStats{NumVerts: n, NumEdges: m}
	if n == 0 {
		return st
	}
	degs := make([]int, n)
	for v := uint64(0); v < n; v++ {
		degs[v] = g.Degree(V(v))
	}
	sort.Ints(degs)
	st.Min = degs[0]
	st.Max = degs[n-1]
	st.Median = degs[n/2]
	st.P99 = degs[n-1-(n-1)/100]
	total := 0
	for _, d := range degs {
		total += d
		if d == 0 {
			st.Isolated++
		}
	}
	st.Mean = float64(total) / float64(n)
	if st.NumEdges == 0 {
		st.NumEdges = uint64(total)
	}
	top := n / 100
	if top == 0 {
		top = 1
	}
	hubEdges := 0
	for _, d := range degs[n-top:] {
		hubEdges += d
	}
	if total > 0 {
		st.HubFrac = float64(hubEdges) / float64(total)
	}
	return st
}

// DirectionThresholds derives the hybrid direction controller's α/β switch
// thresholds from the degree distribution, replacing one-size-fits-all
// constants with the statistics of the mounted graph. The controller (see
// internal/core) goes bottom-up when the frontier's out-edge count exceeds
// 1/α of the unexplored edges and returns top-down when the frontier shrinks
// below n/β vertices.
//
// Rationale: on hub-heavy graphs (high mean degree, edges concentrated on
// the top 1%) the dense phases arrive early and bottom-up scans settle most
// vertices after touching few in-edges, so switching should trigger sooner —
// α grows with mean degree and hub concentration. Low-degree meshes and
// chains (mean near 1, no hubs) get the floor values, which in practice
// never trigger a switch — exactly right, since bottom-up scans would touch
// every unvisited vertex per phase for frontiers of a handful of vertices. β
// tracks 1.5x the mean degree, landing at the classic 24 for degree-16
// scale-free graphs.
func (st DegreeStats) DirectionThresholds() (alpha, beta int) {
	clamp := func(x float64, lo, hi int) int {
		v := int(x + 0.5)
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	alpha = clamp(st.Mean*(1+2*st.HubFrac), 4, 64)
	beta = clamp(st.Mean*1.5, 8, 96)
	return alpha, beta
}
