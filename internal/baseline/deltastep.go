package baseline

import (
	"fmt"
	"sync"

	"repro/internal/graph"
)

// DeltaStepping is Meyer & Sanders' Δ-stepping parallel SSSP, the standard
// shared-memory parallel shortest-path comparator: vertices are bucketed by
// distance/Δ, one bucket is settled at a time (light edges relaxed to a
// fixpoint inside the bucket, then heavy edges once), and workers process a
// bucket's requests in parallel with a barrier per phase. Where the paper's
// asynchronous SSSP has no global ordering at all, Δ-stepping is
// partially-ordered-with-barriers; the contrast is what the engine ablations
// measure.
func DeltaStepping[V graph.Vertex](g graph.Adjacency[V], src V, delta graph.Dist, workers int) ([]graph.Dist, error) {
	n := g.NumVertices()
	if uint64(src) >= n {
		return nil, fmt.Errorf("baseline: source %d out of range for %d vertices", src, n)
	}
	if delta == 0 {
		delta = 1
	}
	if workers <= 0 {
		workers = 1
	}

	dist := make([]graph.Dist, n)
	for i := range dist {
		dist[i] = graph.InfDist
	}
	// buckets[b] holds vertices whose tentative distance is in
	// [b*delta, (b+1)*delta). Vertices may appear in multiple buckets; stale
	// entries are filtered on removal.
	buckets := make(map[uint64][]V)
	var mu sync.Mutex // guards dist + buckets during parallel relaxation

	relax := func(v V, nd graph.Dist) {
		if nd < dist[v] {
			dist[v] = nd
			b := uint64(nd / delta)
			buckets[b] = append(buckets[b], v)
		}
	}

	relaxBatch := func(reqs []request[V]) {
		if len(reqs) == 0 {
			return
		}
		// Requests are generated in parallel but applied under one lock;
		// contention is the price of the shared bucket structure (the
		// paper's per-thread queues avoid exactly this).
		mu.Lock()
		for _, r := range reqs {
			relax(r.v, r.d)
		}
		mu.Unlock()
	}

	relax(src, 0)
	for {
		// Find the smallest non-empty bucket.
		cur, ok := minBucket(buckets)
		if !ok {
			break
		}
		var settled []V
		// Phase 1: repeatedly relax light edges (w <= delta) of the current
		// bucket until it stops refilling.
		for {
			verts := buckets[cur]
			delete(buckets, cur)
			if len(verts) == 0 {
				break
			}
			verts = filterCurrent(verts, dist, delta, cur)
			settled = append(settled, verts...)
			reqs, err := genRequests(g, verts, dist, workers, func(w graph.Weight) bool {
				return graph.Dist(w) <= delta
			})
			if err != nil {
				return nil, err
			}
			relaxBatch(reqs)
			if len(buckets[cur]) == 0 {
				break
			}
		}
		// Phase 2: heavy edges of everything settled in this bucket, once.
		reqs, err := genRequests(g, settled, dist, workers, func(w graph.Weight) bool {
			return graph.Dist(w) > delta
		})
		if err != nil {
			return nil, err
		}
		relaxBatch(reqs)
	}
	return dist, nil
}

type request[V graph.Vertex] struct {
	v V
	d graph.Dist
}

func minBucket[V graph.Vertex](buckets map[uint64][]V) (uint64, bool) {
	min := uint64(0)
	found := false
	for b, verts := range buckets {
		if len(verts) == 0 {
			continue
		}
		if !found || b < min {
			min = b
			found = true
		}
	}
	return min, found
}

// filterCurrent drops stale bucket entries: vertices whose tentative
// distance no longer falls in the bucket being processed.
func filterCurrent[V graph.Vertex](verts []V, dist []graph.Dist, delta graph.Dist, cur uint64) []V {
	out := verts[:0]
	seen := make(map[V]bool, len(verts))
	for _, v := range verts {
		if seen[v] {
			continue
		}
		seen[v] = true
		if dist[v] != graph.InfDist && uint64(dist[v]/delta) == cur {
			out = append(out, v)
		}
	}
	return out
}

// genRequests expands the edges of verts in parallel, producing relaxation
// requests for edges passing the weight filter.
func genRequests[V graph.Vertex](g graph.Adjacency[V], verts []V, dist []graph.Dist, workers int, keep func(graph.Weight) bool) ([]request[V], error) {
	if len(verts) == 0 {
		return nil, nil
	}
	if workers > len(verts) {
		workers = len(verts)
	}
	parts := make([][]request[V], workers)
	var errs firstErr
	var wg sync.WaitGroup
	chunk := (len(verts) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(verts) {
			break
		}
		hi := lo + chunk
		if hi > len(verts) {
			hi = len(verts)
		}
		wg.Add(1)
		go func(w int, part []V) {
			defer wg.Done()
			scratch := &graph.Scratch[V]{}
			var out []request[V]
			for _, v := range part {
				base := dist[v]
				targets, weights, err := g.Neighbors(v, scratch)
				if err != nil {
					errs.set(err)
					return
				}
				for i, t := range targets {
					wt := graph.Weight(1)
					if weights != nil {
						wt = weights[i]
					}
					if keep(wt) {
						out = append(out, request[V]{v: t, d: base + graph.Dist(wt)})
					}
				}
			}
			parts[w] = out
		}(w, verts[lo:hi])
	}
	wg.Wait() // the per-phase barrier
	if errs.err != nil {
		return nil, errs.err
	}
	var all []request[V]
	for _, p := range parts {
		all = append(all, p...)
	}
	return all, nil
}
