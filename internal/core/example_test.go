package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pq"
)

// The basic workflow: build a CSR, run a traversal, read the labels.
func Example() {
	b := graph.NewBuilder[uint32](4, true)
	b.AddEdge(0, 1, 3)
	b.AddEdge(1, 2, 4)
	b.AddEdge(0, 2, 10)
	b.AddEdge(2, 3, 1)
	g, err := b.Build(true)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.SSSP[uint32](g, 0, core.Config{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Dist)
	// Output: [0 3 7 8]
}

func ExampleBFS() {
	b := graph.NewBuilder[uint32](5, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(0, 3, 1)
	g, err := b.Build(true)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.BFS[uint32](g, 0, core.Config{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Level[2], res.NumLevels(), res.Reached(4))
	// Output: 2 3 false
}

func ExampleCC() {
	b := graph.NewBuilder[uint32](5, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(3, 4, 1)
	b.Symmetrize()
	g, err := b.Build(true)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.CC[uint32](g, core.Config{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.NumComponents(), res.ID)
	// Output: 3 [0 0 2 3 3]
}

func ExampleSSSPResult_PathTo() {
	b := graph.NewBuilder[uint32](4, true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(0, 2, 5)
	b.AddEdge(2, 3, 1)
	g, err := b.Build(true)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.SSSP[uint32](g, 0, core.Config{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	path, err := res.PathTo(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(path, res.Dist[3])
	// Output: [0 1 2 3] 3
}

// A custom visitor on the raw engine: count vertices within 2 hops.
func ExampleNew() {
	b := graph.NewBuilder[uint32](6, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	b.AddEdge(3, 4, 1)
	g, err := b.Build(true)
	if err != nil {
		log.Fatal(err)
	}
	seen := make([]bool, g.NumVertices())
	e := core.New[uint32](core.Config{Workers: 2}, func(ctx *core.Ctx[uint32], it pq.Item) error {
		v := uint32(it.V)
		if seen[v] {
			return nil
		}
		seen[v] = true
		if it.Pri >= 2 { // radius reached
			return nil
		}
		targets, _, err := g.Neighbors(v, ctx.Scratch)
		if err != nil {
			return err
		}
		for _, t := range targets {
			ctx.Push(it.Pri+1, t, uint64(v))
		}
		return nil
	})
	e.Start()
	e.Push(0, 0, 0)
	if _, err := e.Wait(); err != nil {
		log.Fatal(err)
	}
	count := 0
	for _, s := range seen {
		if s {
			count++
		}
	}
	fmt.Println(count)
	// Output: 3
}
