package sem

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// The query service mounts one semi-external store and runs many traversals
// over it at once, so every layer under graph.Adjacency — the sem.Graph
// decoder, the sharded block cache with singleflight, the prefetcher, and
// the simulated device's channel pool — must tolerate concurrent readers.
// These tests pin that contract directly at the sem layer, under -race in CI.

// TestConcurrentTraversalsSharedStore runs many simultaneous traversals
// (mixed BFS and SSSP, distinct sources) over one block-cached store on one
// simulated device and checks every result against a single-traversal run.
func TestConcurrentTraversalsSharedStore(t *testing.T) {
	g, err := gen.RMAT[uint32](9, 8, gen.RMATA, 21)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := gen.UniformWeights(g, 13)
	if err != nil {
		t.Fatal(err)
	}
	back := writeToMem(t, weighted)
	dev := fastDevice(back)
	cache, err := NewCachedStore(dev, 4096, 1<<19)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := Open[uint32](cache)
	if err != nil {
		t.Fatal(err)
	}

	const traversals = 8
	cfg := core.Config{Workers: 8, Prefetch: 32}
	wantBFS := make([]*core.BFSResult[uint32], traversals)
	wantSSSP := make([]*core.SSSPResult[uint32], traversals)
	for i := range wantBFS {
		src := uint32(i * 3)
		if wantBFS[i], err = core.BFS[uint32](weighted, src, cfg); err != nil {
			t.Fatal(err)
		}
		if wantSSSP[i], err = core.SSSP[uint32](weighted, src, cfg); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 2*traversals)
	fail := func(err error) { errs <- err }
	for i := 0; i < traversals; i++ {
		src := uint32(i * 3)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := core.BFS[uint32](sg, src, cfg)
			if err != nil {
				fail(err)
				return
			}
			for v := range got.Level {
				if got.Level[v] != wantBFS[i].Level[v] {
					t.Errorf("bfs %d: level[%d] = %d, want %d", i, v, got.Level[v], wantBFS[i].Level[v])
					return
				}
			}
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := core.SSSP[uint32](sg, src, cfg)
			if err != nil {
				fail(err)
				return
			}
			for v := range got.Dist {
				if got.Dist[v] != wantSSSP[i].Dist[v] {
					t.Errorf("sssp %d: dist[%d] = %d, want %d", i, v, got.Dist[v], wantSSSP[i].Dist[v])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	hits, misses := cache.Stats()
	if hits+misses == 0 {
		t.Fatal("block cache untouched; traversals did not share the store")
	}
	if st := dev.Stats(); st.Reads == 0 {
		t.Fatal("device reads = 0; store never reached the device")
	}
}

// TestConcurrentTraversalsUncachedDevice hits the raw device (no block
// cache) from two simultaneous traversals, exercising the channel pool's
// slot accounting under contention.
func TestConcurrentTraversalsUncachedDevice(t *testing.T) {
	g, err := gen.RMAT[uint32](8, 8, gen.RMATA, 5)
	if err != nil {
		t.Fatal(err)
	}
	back := writeToMem(t, g)
	dev := fastDevice(back)
	sg, err := Open[uint32](dev)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Workers: 8}
	want, err := core.BFS[uint32](g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := core.BFS[uint32](sg, 0, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			for v := range got.Level {
				if got.Level[v] != want.Level[v] {
					t.Errorf("level[%d] = %d, want %d", v, got.Level[v], want.Level[v])
					return
				}
			}
		}()
	}
	wg.Wait()
}
