// Package graph provides the in-memory graph substrate for the traversal
// engine: a compressed sparse row (CSR) representation generic over 32- or
// 64-bit vertex identifiers, plus the Adjacency interface shared by the
// in-memory and semi-external storage back ends.
//
// The CSR layout mirrors the storage the paper uses for both its In-Memory
// (Boost CSR) and Semi-External (file-backed CSR) implementations: a vertex
// index array of n+1 offsets and a flat edge array, with an optional parallel
// weight array for weighted graphs.
package graph

// Vertex constrains the vertex identifier type. The paper notes its
// implementation "can be configured to use 32 or 64-bit integers"; the same
// configurability is expressed here with a type parameter.
type Vertex interface {
	~uint32 | ~uint64
}

// Weight is the edge weight type. The paper's SSSP experiments use integer
// weights drawn from [0, |V|) (UW) or log-uniform ranges (LUW); uint32 covers
// both at the scales exercised here while keeping edge records compact.
type Weight = uint32

// Dist is the path-length type: wide enough that summing uint32 weights along
// any simple path cannot overflow.
type Dist = uint64

// InfDist marks an unreached vertex, the paper's "initialized to infinity".
const InfDist Dist = ^Dist(0)

// NoVertex returns the sentinel "no parent / unlabeled" identifier for V,
// the maximum representable value.
func NoVertex[V Vertex]() V {
	return ^V(0)
}

// Scratch holds per-worker reusable buffers for adjacency reads. The
// in-memory back end ignores it; the semi-external back end decodes edge
// blocks into it so that steady-state traversal performs no allocation.
type Scratch[V Vertex] struct {
	Targets []V
	Weights []Weight
	Block   []byte
	// Prefetch is an opaque per-worker prefetch session owned by storage
	// back ends that implement BatchAdjacency. The engine only carries it
	// alongside the worker's other scratch state; the back end allocates and
	// interprets it. Nil until the back end's first NeighborsBatch call.
	Prefetch any
}

// Adjacency is the read interface the traversal engine works against. Both
// the in-memory CSR and the semi-external store implement it.
type Adjacency[V Vertex] interface {
	// NumVertices reports the number of vertices; valid ids are [0, n).
	NumVertices() uint64
	// Degree reports the out-degree of v.
	Degree(v V) int
	// Neighbors returns the adjacency list of v and, for weighted graphs, a
	// parallel weight slice (nil for unweighted graphs). The returned slices
	// are valid only until the next Neighbors call with the same scratch.
	Neighbors(v V, scratch *Scratch[V]) (targets []V, weights []Weight, err error)
}

// BatchAdjacency is implemented by storage back ends that can service a
// window of upcoming adjacency reads asynchronously. NeighborsBatch announces
// the vertices the calling worker will visit next; the back end may begin I/O
// immediately and hand each completed read to the subsequent Neighbors call
// for that vertex on the same scratch, without copying. Reads still
// unconsumed when the next NeighborsBatch arrives on the scratch are
// abandoned. In-memory back ends, for which adjacency access is free, have no
// reason to implement this.
type BatchAdjacency[V Vertex] interface {
	Adjacency[V]
	NeighborsBatch(vs []V, scratch *Scratch[V])
}

// Settler is implemented by storage back ends that want traversal-state
// notifications from the engine: VertexQueued fires when a visitor for v
// enters the engine (push), VertexSettled when that visitor leaves it
// (visited, or dropped stale). The semi-external back end feeds these into
// its state-aware block-cache policy — a block whose vertices all settled is
// evicted early, one with queued work is pinned. Calls arrive concurrently
// from every worker; implementations must be atomic and cheap. The engine
// guarantees queued/settled arrive pairwise per visitor on completed
// traversals and best-effort (drained, possibly lossy) on aborted ones, so
// implementations should tolerate missing settles.
type Settler interface {
	VertexQueued(v uint64)
	VertexSettled(v uint64)
}

// SettleProvider is the discovery side of Settler: back ends expose it
// unconditionally and return a nil sink while state-aware caching is
// inactive, so the engine wires the per-push notification calls only on
// mounts that will actually consume them — a plain LRU mount pays nothing.
type SettleProvider interface {
	SettleSink() Settler
}

// CSR is an immutable in-memory compressed sparse row graph.
type CSR[V Vertex] struct {
	offsets []uint64 // len n+1; edge span of v is [offsets[v], offsets[v+1])
	targets []V
	weights []Weight // nil for unweighted graphs
}

// NumVertices reports the number of vertices in the graph.
func (g *CSR[V]) NumVertices() uint64 {
	if len(g.offsets) == 0 {
		return 0
	}
	return uint64(len(g.offsets) - 1)
}

// NumEdges reports the number of directed edges stored.
func (g *CSR[V]) NumEdges() uint64 { return uint64(len(g.targets)) }

// Weighted reports whether the graph carries edge weights.
func (g *CSR[V]) Weighted() bool { return g.weights != nil }

// Degree reports the out-degree of v.
func (g *CSR[V]) Degree(v V) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors implements Adjacency. The in-memory back end returns slices that
// alias the CSR arrays; scratch is unused and may be nil.
func (g *CSR[V]) Neighbors(v V, _ *Scratch[V]) ([]V, []Weight, error) {
	lo, hi := g.offsets[v], g.offsets[v+1]
	if g.weights == nil {
		return g.targets[lo:hi], nil, nil
	}
	return g.targets[lo:hi], g.weights[lo:hi], nil
}

// EdgeWeight returns the weight of the i-th edge out of v (1 for unweighted
// graphs, matching "BFS = SSSP with all edge weights equal to 1").
func (g *CSR[V]) EdgeWeight(v V, i int) Weight {
	if g.weights == nil {
		return 1
	}
	return g.weights[g.offsets[v]+uint64(i)]
}

// Offsets exposes the vertex index array (length n+1). Intended for storage
// back ends and tests; callers must not mutate it.
func (g *CSR[V]) Offsets() []uint64 { return g.offsets }

// Targets exposes the flat edge-target array. Callers must not mutate it.
func (g *CSR[V]) Targets() []V { return g.targets }

// WeightsRaw exposes the flat weight array (nil if unweighted). Callers must
// not mutate it.
func (g *CSR[V]) WeightsRaw() []Weight { return g.weights }

// ForEachEdge invokes fn for every directed edge (u, v, w). Unweighted graphs
// report weight 1.
func (g *CSR[V]) ForEachEdge(fn func(u, v V, w Weight)) {
	n := g.NumVertices()
	for u := uint64(0); u < n; u++ {
		lo, hi := g.offsets[u], g.offsets[u+1]
		for i := lo; i < hi; i++ {
			w := Weight(1)
			if g.weights != nil {
				w = g.weights[i]
			}
			fn(V(u), g.targets[i], w)
		}
	}
}
