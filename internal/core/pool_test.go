package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func poolTestGraphs(t *testing.T) (directed, undirected, weighted *graph.CSR[uint32]) {
	t.Helper()
	var err error
	directed, err = gen.RMAT[uint32](10, 8, gen.RMATA, 3)
	if err != nil {
		t.Fatal(err)
	}
	undirected, err = gen.RMATUndirected[uint32](9, 8, gen.RMATA, 3)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err = gen.UniformWeights(directed, 4)
	if err != nil {
		t.Fatal(err)
	}
	return directed, undirected, weighted
}

// TestEnginePoolMatchesStandalone runs every kernel through a pool twice
// (second run on recycled resources) and compares against the package
// functions.
func TestEnginePoolMatchesStandalone(t *testing.T) {
	directed, undirected, weighted := poolTestGraphs(t)
	cfg := Config{Workers: 16, SemiSort: true}
	p := NewEnginePool[uint32](cfg)
	ctx := context.Background()

	wantBFS, err := BFS[uint32](directed, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantSSSP, err := SSSP[uint32](weighted, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantCC, err := CC[uint32](undirected, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 2; round++ {
		gotBFS, err := p.BFS(ctx, directed, 0)
		if err != nil {
			t.Fatal(err)
		}
		for v := range wantBFS.Level {
			if gotBFS.Level[v] != wantBFS.Level[v] {
				t.Fatalf("round %d: level[%d] = %d, want %d", round, v, gotBFS.Level[v], wantBFS.Level[v])
			}
		}
		gotSSSP, err := p.SSSP(ctx, weighted, 0)
		if err != nil {
			t.Fatal(err)
		}
		for v := range wantSSSP.Dist {
			if gotSSSP.Dist[v] != wantSSSP.Dist[v] {
				t.Fatalf("round %d: dist[%d] = %d, want %d", round, v, gotSSSP.Dist[v], wantSSSP.Dist[v])
			}
		}
		gotCC, err := p.CC(ctx, undirected)
		if err != nil {
			t.Fatal(err)
		}
		for v := range wantCC.ID {
			if gotCC.ID[v] != wantCC.ID[v] {
				t.Fatalf("round %d: id[%d] = %d, want %d", round, v, gotCC.ID[v], wantCC.ID[v])
			}
		}
	}
	if reused, total := p.Reuses(); total != 6 || reused < 3 {
		t.Fatalf("reuses = %d/%d, want >= 3 of 6 served from the free list", reused, total)
	}
}

// TestEnginePoolRecyclesAfterAbort pins the reset contract: resources
// recycled from an aborted run (non-empty queues, buffered outboxes, stale
// prefetch sessions) must not perturb the next traversal.
func TestEnginePoolRecyclesAfterAbort(t *testing.T) {
	directed, _, _ := poolTestGraphs(t)
	p := NewEnginePool[uint32](Config{Workers: 8})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.BFS(ctx, directed, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("aborted run err = %v, want context.Canceled", err)
	}
	if p.Idle() != 1 {
		t.Fatalf("idle = %d after aborted run, want 1", p.Idle())
	}

	got, err := p.BFS(context.Background(), directed, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BFS[uint32](directed, 0, p.Config())
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Level {
		if got.Level[v] != want.Level[v] {
			t.Fatalf("level[%d] = %d after recycle, want %d", v, got.Level[v], want.Level[v])
		}
	}
}

// TestEnginePoolConcurrent exercises many simultaneous traversals on one
// pool, each with its own resource set (run with -race in CI).
func TestEnginePoolConcurrent(t *testing.T) {
	directed, _, _ := poolTestGraphs(t)
	want, err := BFS[uint32](directed, 0, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	p := NewEnginePool[uint32](Config{Workers: 8})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for q := 0; q < 16; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := p.BFS(context.Background(), directed, 0)
			if err != nil {
				errs <- err
				return
			}
			for v := range want.Level {
				if got.Level[v] != want.Level[v] {
					errs <- errors.New("concurrent pool run diverged from standalone BFS")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
