package graph

import (
	"strings"
	"testing"
)

// FuzzReadEdgeList feeds arbitrary text through the edge-list parser: it
// must never panic, and anything it accepts must satisfy the CSR invariants.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n0 1 5\n")
	f.Add("")
	f.Add("0 1 2 3\n")
	f.Add("999999999999999999999 0\n")
	f.Add("0 1\n\n\n2 3 9\n")

	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		g, err := ReadEdgeListLimit[uint32](strings.NewReader(input), 0, 1<<22)
		if err != nil {
			return // rejected: fine
		}
		n := g.NumVertices()
		if g.NumEdges() > 0 && n == 0 {
			t.Fatal("edges without vertices")
		}
		total := 0
		for v := uint64(0); v < n; v++ {
			deg := g.Degree(uint32(v))
			if deg < 0 {
				t.Fatalf("negative degree at %d", v)
			}
			total += deg
			ts, _, _ := g.Neighbors(uint32(v), nil)
			for _, tgt := range ts {
				if uint64(tgt) >= n {
					t.Fatalf("target %d out of range %d", tgt, n)
				}
			}
		}
		if uint64(total) != g.NumEdges() {
			t.Fatalf("degree sum %d != m %d", total, g.NumEdges())
		}
	})
}
