// Package sem implements the paper's semi-external memory graph storage
// (§IV-C): "enough memory to store algorithmic information about the
// vertices but not edges". The vertex index array lives in RAM; the edge
// records stay on the storage device and every adjacency access is an
// explicit random read, issued concurrently by the traversal workers so the
// device's internal parallelism is exercised.
//
// The on-device layout is a compressed sparse row serialized as:
//
//	header (40 bytes): magic "ASG1", version, flags, n, m
//	offsets: (n+1) x uint64        -- loaded into RAM at open
//	edges:   m x record            -- fetched per-visit with ReadAt
//
// A record is the target vertex id (4 or 8 bytes per the vertex width flag)
// followed by a uint32 weight when the graph is weighted. All integers are
// little-endian.
package sem

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/graph"
)

// Magic identifies the graph file format ("ASG1": Async Semi-external Graph).
const Magic = 0x31475341

// Version is the current format version.
const Version = 1

// Header flags.
const (
	flagWeighted = 1 << 0
	flag64Bit    = 1 << 1
)

const headerSize = 40

// Store is the device interface a semi-external graph reads from: the
// simulated flash device, a real file, or anything positionally readable.
type Store interface {
	io.ReaderAt
}

// Graph is a semi-external CSR: offsets in memory, edges on the store.
// It implements graph.Adjacency.
type Graph[V graph.Vertex] struct {
	store    Store
	offsets  []uint64 // n+1 entries, RAM-resident ("information about the vertices")
	n, m     uint64
	weighted bool
	recSize  int
	vSize    int
	edgeBase int64 // byte offset of the first edge record

	// prefetch, when non-nil, services NeighborsBatch windows with coalesced
	// asynchronous span reads (see prefetch.go). Nil means NeighborsBatch is
	// a no-op and every Neighbors call reads synchronously.
	prefetch *Prefetcher
}

// vertexWidth reports the on-disk vertex id width for V.
func vertexWidth[V graph.Vertex]() int {
	if uint64(^V(0)) == uint64(^uint32(0)) {
		return 4
	}
	return 8
}

// WriteCSR serializes an in-memory CSR into the semi-external format.
func WriteCSR[V graph.Vertex](w io.Writer, g *graph.CSR[V]) error {
	vSize := vertexWidth[V]()
	var flags uint64
	if g.Weighted() {
		flags |= flagWeighted
	}
	if vSize == 8 {
		flags |= flag64Bit
	}
	header := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(header[0:], Magic)
	binary.LittleEndian.PutUint32(header[4:], Version)
	binary.LittleEndian.PutUint64(header[8:], flags)
	binary.LittleEndian.PutUint64(header[16:], g.NumVertices())
	binary.LittleEndian.PutUint64(header[24:], g.NumEdges())
	// header[32:40] reserved.
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("sem: write header: %w", err)
	}

	buf := make([]byte, 0, 1<<16)
	for _, off := range g.Offsets() {
		buf = binary.LittleEndian.AppendUint64(buf, off)
		if len(buf) >= 1<<16-8 {
			if _, err := w.Write(buf); err != nil {
				return fmt.Errorf("sem: write offsets: %w", err)
			}
			buf = buf[:0]
		}
	}
	targets := g.Targets()
	weights := g.WeightsRaw()
	for i, t := range targets {
		if vSize == 4 {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(t))
		} else {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(t))
		}
		if weights != nil {
			buf = binary.LittleEndian.AppendUint32(buf, weights[i])
		}
		if len(buf) >= 1<<16-16 {
			if _, err := w.Write(buf); err != nil {
				return fmt.Errorf("sem: write edges: %w", err)
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("sem: write tail: %w", err)
		}
	}
	return nil
}

// Open reads the header and vertex index of a semi-external graph, leaving
// edge records on the store. The vertex width of V must match the file.
func Open[V graph.Vertex](store Store) (*Graph[V], error) {
	header := make([]byte, headerSize)
	if _, err := io.ReadFull(io.NewSectionReader(store, 0, headerSize), header); err != nil {
		return nil, fmt.Errorf("sem: read header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(header[0:]); m != Magic {
		return nil, fmt.Errorf("sem: bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(header[4:]); v != Version {
		return nil, fmt.Errorf("sem: unsupported version %d", v)
	}
	flags := binary.LittleEndian.Uint64(header[8:])
	n := binary.LittleEndian.Uint64(header[16:])
	m := binary.LittleEndian.Uint64(header[24:])

	vSize := 4
	if flags&flag64Bit != 0 {
		vSize = 8
	}
	if vSize != vertexWidth[V]() {
		return nil, fmt.Errorf("sem: file has %d-byte vertex ids, caller expects %d", vSize, vertexWidth[V]())
	}
	g := &Graph[V]{
		store:    store,
		n:        n,
		m:        m,
		weighted: flags&flagWeighted != 0,
		vSize:    vSize,
	}
	g.recSize = vSize
	if g.weighted {
		g.recSize += 4
	}
	if n >= 1<<56 || m >= 1<<56 {
		return nil, fmt.Errorf("sem: implausible header (n=%d m=%d)", n, m)
	}
	g.edgeBase = headerSize + int64(n+1)*8

	// Validate the header against the store size before allocating the
	// index: a corrupt vertex count must not drive a huge allocation.
	if szr, ok := store.(interface{ Size() int64 }); ok {
		need := g.edgeBase + int64(m)*int64(g.recSize)
		if szr.Size() < need {
			return nil, fmt.Errorf("sem: store holds %d bytes, header requires %d", szr.Size(), need)
		}
	}

	// The vertex index is the RAM-resident "algorithmic information about
	// the vertices". One sequential read at open time.
	raw := make([]byte, (n+1)*8)
	if _, err := io.ReadFull(io.NewSectionReader(store, headerSize, int64(len(raw))), raw); err != nil {
		return nil, fmt.Errorf("sem: read vertex index: %w", err)
	}
	g.offsets = make([]uint64, n+1)
	for i := range g.offsets {
		g.offsets[i] = binary.LittleEndian.Uint64(raw[i*8:])
	}
	if g.offsets[n] != m {
		return nil, fmt.Errorf("sem: corrupt index: offsets[n]=%d, m=%d", g.offsets[n], m)
	}
	for i := uint64(0); i < n; i++ {
		if g.offsets[i] > g.offsets[i+1] {
			return nil, fmt.Errorf("sem: corrupt index: offsets decrease at %d", i)
		}
	}
	return g, nil
}

// NumVertices implements graph.Adjacency.
func (g *Graph[V]) NumVertices() uint64 { return g.n }

// NumEdges reports the number of edge records on the store.
func (g *Graph[V]) NumEdges() uint64 { return g.m }

// Weighted reports whether edge records carry weights.
func (g *Graph[V]) Weighted() bool { return g.weighted }

// Degree implements graph.Adjacency from the RAM-resident index.
func (g *Graph[V]) Degree(v V) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// EdgeBytes reports the size of the edge region in bytes, the paper's
// "size on EM device" (excluding the RAM-resident index).
func (g *Graph[V]) EdgeBytes() int64 { return int64(g.m) * int64(g.recSize) }

// decodeRecords decodes len(targets) consecutive edge records from block into
// targets and, when non-nil, weights. block must hold at least
// len(targets)*recSize bytes.
//
//lint:hotpath
func (g *Graph[V]) decodeRecords(block []byte, targets []V, weights []graph.Weight) {
	for i := range targets {
		rec := block[i*g.recSize:]
		if g.vSize == 4 {
			targets[i] = V(binary.LittleEndian.Uint32(rec))
		} else {
			targets[i] = V(binary.LittleEndian.Uint64(rec))
		}
		if weights != nil {
			weights[i] = binary.LittleEndian.Uint32(rec[g.vSize:])
		}
	}
}

// decodeInto decodes deg records from block through the scratch buffers,
// returning slices valid until the next call with the same scratch.
//
//lint:hotpath
func (g *Graph[V]) decodeInto(block []byte, deg int, scratch *graph.Scratch[V]) ([]V, []graph.Weight) {
	if cap(scratch.Targets) < deg {
		scratch.Targets = make([]V, deg)
	}
	targets := scratch.Targets[:deg]
	var weights []graph.Weight
	if g.weighted {
		if cap(scratch.Weights) < deg {
			scratch.Weights = make([]graph.Weight, deg)
		}
		weights = scratch.Weights[:deg]
	}
	g.decodeRecords(block, targets, weights)
	return targets, weights
}

// Neighbors implements graph.Adjacency with one positional read per call —
// the semi-external random access the experiments measure. When the worker's
// scratch carries a prefetch session holding an in-flight read for v (see
// NeighborsBatch), the call waits for that read instead of issuing its own,
// and decodes straight out of the coalesced span buffer. The decoded slices
// live in scratch and are valid until the next call.
func (g *Graph[V]) Neighbors(v V, scratch *graph.Scratch[V]) ([]V, []graph.Weight, error) {
	lo, hi := g.offsets[v], g.offsets[v+1]
	deg := int(hi - lo)
	if deg == 0 {
		return nil, nil, nil
	}
	if sess, ok := scratch.Prefetch.(*prefetchSession); ok {
		if block, err, prefetched := sess.take(uint64(v)); prefetched {
			if err != nil {
				return nil, nil, fmt.Errorf("sem: read adjacency of %d: %w", v, err)
			}
			targets, weights := g.decodeInto(block, deg, scratch)
			return targets, weights, nil
		}
	}
	need := deg * g.recSize
	if cap(scratch.Block) < need {
		scratch.Block = make([]byte, need)
	}
	block := scratch.Block[:need]
	off := g.edgeBase + int64(lo)*int64(g.recSize)
	if _, err := g.store.ReadAt(block, off); err != nil {
		return nil, nil, fmt.Errorf("sem: read adjacency of %d: %w", v, err)
	}
	targets, weights := g.decodeInto(block, deg, scratch)
	return targets, weights, nil
}

// loadChunkBytes is the sequential read granularity of LoadCSR.
const loadChunkBytes = 1 << 20

// LoadCSR reads an entire semi-external graph back into an in-memory CSR.
// Used for round-trip verification and by tools that want IM processing of a
// stored graph. The edge region is streamed in large sequential chunks — one
// bandwidth-bound read per ~1 MiB instead of one latency-charged random read
// per vertex, which is the difference between seconds and hours on the
// simulated devices.
func LoadCSR[V graph.Vertex](store Store) (*graph.CSR[V], error) {
	g, err := Open[V](store)
	if err != nil {
		return nil, err
	}
	targets := make([]V, g.m)
	var weights []graph.Weight
	if g.weighted {
		weights = make([]graph.Weight, g.m)
	}
	recsPerChunk := uint64(loadChunkBytes / g.recSize)
	if recsPerChunk < 1 {
		recsPerChunk = 1
	}
	buf := make([]byte, recsPerChunk*uint64(g.recSize))
	for rec := uint64(0); rec < g.m; {
		take := recsPerChunk
		if rec+take > g.m {
			take = g.m - rec
		}
		block := buf[:take*uint64(g.recSize)]
		off := g.edgeBase + int64(rec)*int64(g.recSize)
		if _, err := g.store.ReadAt(block, off); err != nil {
			return nil, fmt.Errorf("sem: load edge records at %d: %w", rec, err)
		}
		var ws []graph.Weight
		if weights != nil {
			ws = weights[rec : rec+take]
		}
		g.decodeRecords(block, targets[rec:rec+take], ws)
		rec += take
	}
	offsets := make([]uint64, len(g.offsets))
	copy(offsets, g.offsets)
	return graph.NewCSRRaw(offsets, targets, weights)
}
