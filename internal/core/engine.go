// Package core implements the paper's primary contribution: a multithreaded
// asynchronous visitor-queue engine for graph traversal (§III).
//
// The engine runs N workers; each worker owns one prioritized visitor queue.
// A visitor destined for vertex v is pushed to the queue selected by a hash
// of v, so a vertex is only ever visited by its owning worker. That ownership
// discipline provides the paper's "exclusive access to a vertex when
// executing, removing the need for additional vertex-level locking", and a
// near-uniform hash spreads high-cost hub vertices across queues for load
// balance. There are no barriers between traversal steps: workers run
// label-correcting visitors fully asynchronously and the traversal completes
// when every queued visitor has finished (termination is detected with an
// atomic outstanding-work counter).
//
// The implementation is layered into three files:
//
//   - mailbox.go — the delivery layer: lock-protected per-worker queues and
//     per-worker outboxes that batch pushes per destination owner, amortizing
//     the destination queue's lock over Config.Batch items;
//   - terminate.go — the termination layer: the Terminator outstanding-work
//     counter with init token and CAS-max peak tracking, shared with
//     internal/lockfree;
//   - kernels.go — the algorithm layer: the single label-relaxation kernel
//     that BFS, SSSP, and CC instantiate against any graph.Adjacency
//     (in-memory CSR or semi-external store).
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/pq"
)

// DefaultBatch is the outbox flush threshold used when Config.Batch is 0.
const DefaultBatch = 64

// Config controls an Engine run.
type Config struct {
	// Workers is the number of worker goroutines, each owning one visitor
	// queue. The paper oversubscribes (512 threads on 16 cores) to reduce
	// queue lock contention; values far above GOMAXPROCS are expected and
	// cheap with goroutines. Defaults to 4 x GOMAXPROCS.
	Workers int
	// SemiSort enables the secondary vertex-id sort key inside each queue,
	// the paper's semi-external locality optimization (§IV-C).
	SemiSort bool
	// Hash maps a vertex id to a queue-selection value. Defaults to a
	// Fibonacci multiplicative hash. An identity hash is provided for the
	// hash-quality ablation.
	Hash func(uint64) uint64
	// CoarseShift coarsens queue priority comparison to 2^CoarseShift-wide
	// buckets (Δ-stepping-style). 0 keeps exact priority order. Coarser
	// buckets trade extra label corrections for cheaper ordering and, with
	// SemiSort, longer sorted runs of vertex ids.
	CoarseShift uint8
	// Queue selects the per-worker queue implementation. The default binary
	// heap supports SemiSort and CoarseShift; the bucket queue is faster for
	// small integer priority domains (BFS levels) but is FIFO within a
	// priority.
	Queue QueueKind
	// Batch is the mailbox batching threshold: pushes issued from visitors
	// (and ParallelInit) are buffered per destination worker and delivered
	// Batch at a time under a single lock acquisition, with a drain-triggered
	// flush whenever the producing worker runs out of local work. 0 selects
	// DefaultBatch. 1 disables batching entirely — every push takes the
	// destination queue's lock, the engine's original behavior, kept
	// selectable for the mailbox ablation.
	Batch int
	// Prefetch is the pop-window size of the semi-external I/O pipeline: a
	// worker pops up to Prefetch visitors from its queue in one batch and
	// announces their vertices to the storage back end (via
	// graph.BatchAdjacency) so adjacency reads are in flight before the
	// visits run. 0 and 1 disable the window, preserving one-pop-per-visit
	// behavior exactly; back ends that do not implement BatchAdjacency (the
	// in-memory CSR) are unaffected at any setting. Window-order visiting is
	// safe for the label-correcting kernels by the same monotonicity argument
	// as CoarseShift, and exclusive vertex ownership is untouched — every
	// popped visitor still belongs to the popping worker.
	Prefetch int
	// Direction selects the BFS traversal direction policy (see direction.go):
	// DirectionTopDown (the default) runs the pure asynchronous
	// label-correcting kernel unchanged; DirectionHybrid switches per phase
	// between top-down expansion and bottom-up in-edge scanning on the α/β
	// frontier heuristics; DirectionBottomUp forces every phase bottom-up (the
	// ablation extreme). Non-top-down directions require a back end with
	// reverse-adjacency capability (graph.InEdges) and apply to BFS only —
	// SSSP and CC ignore the knob, as label-correcting with weights has no
	// bottom-up formulation here.
	Direction Direction
	// Alpha is the top-down→bottom-up switch threshold: a hybrid traversal
	// goes bottom-up when the frontier's out-edge count exceeds 1/Alpha of
	// the unexplored edges. 0 selects DefaultAlpha; mount paths derive a
	// graph-specific value via graph.DegreeStats.DirectionThresholds.
	Alpha int
	// Beta is the bottom-up→top-down switch threshold: a hybrid traversal
	// returns top-down when the frontier shrinks below NumVertices/Beta.
	// 0 selects DefaultBeta.
	Beta int
	// Context, when non-nil, cancels the traversal: the moment the context is
	// done the engine aborts with ctx.Err(), workers stop popping, blocked
	// workers are woken, and Wait returns the cancellation error. A serving
	// layer uses this to enforce per-query deadlines and to stop all workers
	// promptly when a client disconnects. Nil (the default) disables
	// cancellation; batch runs behave exactly as before.
	Context context.Context
}

// QueueKind selects the per-worker visitor queue implementation.
type QueueKind int

const (
	// QueueHeap is a binary min-heap on (priority, optional vertex id).
	QueueHeap QueueKind = iota
	// QueueBucket is a two-level bucket queue: O(1) push into an existing
	// priority bucket, FIFO within a bucket. Ignores SemiSort/CoarseShift.
	QueueBucket
)

func (c Config) newQueue() pq.Queue {
	switch c.Queue {
	case QueueBucket:
		return pq.NewBucket()
	default:
		return pq.NewCoarse(c.SemiSort, c.CoarseShift)
	}
}

func (c *Config) normalize() {
	if c.Workers <= 0 {
		c.Workers = 4 * runtime.GOMAXPROCS(0)
	}
	if c.Hash == nil {
		c.Hash = FibHash
	}
	if c.Batch == 0 {
		c.Batch = DefaultBatch
	}
	if c.Batch < 1 {
		c.Batch = 1
	}
	if c.Prefetch < 0 {
		c.Prefetch = 0
	}
	if c.Queue != QueueHeap && c.Queue != QueueBucket {
		c.Queue = QueueHeap
	}
	if c.Direction < DirectionTopDown || c.Direction > DirectionHybrid {
		c.Direction = DirectionTopDown
	}
	if c.Alpha <= 0 {
		c.Alpha = DefaultAlpha
	}
	if c.Beta <= 0 {
		c.Beta = DefaultBeta
	}
	if c.CoarseShift > 64 {
		// Priorities are 64-bit; every shift >= 64 coarsens all priorities
		// into one bucket, so 64 is the canonical saturating value.
		c.CoarseShift = 64
	}
	if c.Queue == QueueBucket {
		// The bucket queue is FIFO within a priority and supports neither the
		// secondary semi-sort key nor coarsened comparison; canonicalize the
		// ignored knobs so configurations that behave identically also
		// compare identically (EnginePool reuse keys off the whole Config).
		c.SemiSort = false
		c.CoarseShift = 0
	}
}

// FibHash is the default queue-selection hash: Fibonacci multiplicative
// hashing, near-uniform for sequential vertex ids.
func FibHash(v uint64) uint64 { return v * 0x9E3779B97F4A7C15 }

// IdentityHash assigns queues by raw vertex id (modulo queue count). Used by
// the hash-quality ablation; poor for clustered ids.
func IdentityHash(v uint64) uint64 { return v }

// Stats summarizes a completed traversal.
type Stats struct {
	Visits   uint64 // visitors executed (a vertex may be visited many times)
	Pushes   uint64 // visitors queued
	MaxQueue int    // high-water mark across all visitor queues
	Workers  int    // worker count used
	// PeakOutstanding is the maximum number of simultaneously queued or
	// executing visitors: a direct measurement of the graph's available
	// path parallelism (§III-B1 — the chain of Figure 2 pins this near 1,
	// scale-free graphs push it toward the frontier size).
	PeakOutstanding int64
	// WorkerVisits is the per-worker visit count, for load-balance analysis
	// (§III-A: the near-uniform hash should spread hub vertices evenly).
	WorkerVisits []uint64

	// Direction-controller counters (see direction.go); all zero for
	// traversals run by the asynchronous engine itself (the top-down default).
	TopDownPhases     int    // level-synchronous phases expanded top-down
	BottomUpPhases    int    // phases executed as bottom-up in-edge scans
	DirectionSwitches int    // direction changes between consecutive phases
	PeakFrontier      uint64 // largest per-phase frontier (vertices)
}

// Imbalance returns max-visits-per-worker divided by mean (1.0 = perfectly
// balanced), or 0 when no work ran.
func (s Stats) Imbalance() float64 {
	var total, max uint64
	for _, v := range s.WorkerVisits {
		total += v
		if v > max {
			max = v
		}
	}
	if total == 0 || len(s.WorkerVisits) == 0 {
		return 0
	}
	mean := float64(total) / float64(len(s.WorkerVisits))
	return float64(max) / mean
}

func (s Stats) String() string {
	return fmt.Sprintf("visits=%d pushes=%d maxQueue=%d peak=%d workers=%d",
		s.Visits, s.Pushes, s.MaxQueue, s.PeakOutstanding, s.Workers)
}

// Ctx is the per-worker context handed to every visitor invocation. It
// carries the worker's scratch buffers (for semi-external adjacency reads)
// and the push interface used to queue adjacent visitors.
type Ctx[V graph.Vertex] struct {
	engine  *Engine[V]
	Worker  int
	Scratch *graph.Scratch[V]
	out     *outbox // nil when batching is disabled (Batch == 1)
	// stats points at this worker's padded counter cell in the resource set
	// (engineRes.stats); the cell, not the Ctx, is what retire folds into the
	// engine totals.
	stats *workerStats
}

// Push queues a visitor for vertex v with the given priority and payload.
// With batching enabled the visitor is buffered in the worker's outbox and
// delivered when the destination bucket reaches Config.Batch items or the
// worker runs out of local work.
//
//lint:hotpath
func (c *Ctx[V]) Push(pri uint64, v V, aux uint64) {
	c.stats.pushes++
	e := c.engine
	e.term.Start()
	if e.settle != nil {
		e.settle.VertexQueued(uint64(v))
	}
	owner := e.owner(uint64(v))
	it := pq.Item{Pri: pri, V: uint64(v), Aux: aux}
	if c.out != nil {
		c.out.add(owner, it)
		return
	}
	e.queues[owner].push(it)
}

// Owns reports whether this worker is the hash-designated owner of v, i.e.
// whether the ownership protocol permits this visitor to read or write v's
// per-vertex state. Visitors only ever receive vertices they own; Owns exists
// so state writes can be guarded explicitly (see AssertOwned).
func (c *Ctx[V]) Owns(v V) bool {
	return c.engine.owner(uint64(v)) == c.Worker
}

// AssertOwned asserts the engine's owner rule — per-vertex state may only be
// written by the vertex's hash-designated owning worker — at a state-write
// site. In normal builds it compiles to nothing; under `-tags invariants` a
// violation panics with both worker ids. The traversal kernels call it before
// every label/parent write; custom visitors should do the same.
func (c *Ctx[V]) AssertOwned(v V) {
	if invariant.Enabled {
		if o := c.engine.owner(uint64(v)); o != c.Worker {
			invariant.Failf("owner rule: worker %d writing state of vertex %d owned by worker %d", c.Worker, v, o)
		}
	}
}

// VisitFunc is the vertex visitor body (the paper's Algorithm 2 / 4). It
// runs with exclusive access to per-vertex state of it.V and may push
// further visitors through ctx.
type VisitFunc[V graph.Vertex] func(ctx *Ctx[V], it pq.Item) error

// Engine is a single-traversal asynchronous visitor-queue executor. Create
// with New, call Start, push the initial visitor(s), then Wait. Engines are
// single-shot: a finished engine cannot be restarted.
type Engine[V graph.Vertex] struct {
	cfg    Config
	visit  VisitFunc[V]
	queues []*workQueue
	wg     sync.WaitGroup

	// res holds the recyclable per-worker state (queues, outboxes, scratch).
	// pool, when non-nil, receives res back after Wait so the next traversal
	// reuses it instead of reallocating (see EnginePool).
	res  *engineRes[V]
	pool *EnginePool[V]
	// stop is closed by Wait once the workers have exited; it retires the
	// Config.Context watcher goroutine so cancellation support never leaks.
	stop chan struct{}
	// watcherDone, non-nil iff Start launched a Config.Context watcher, is
	// closed when that watcher exits. Wait joins on it before handing the
	// resource set back to the pool: a watcher caught mid-Abort still holds
	// e.queues, and releasing (then recycling) the queues under it would let
	// its finish() mark a *different* traversal's queues done.
	watcherDone chan struct{}

	// term detects termination: it counts queued-but-unfinished visitors
	// (including visitors still buffered in outboxes) plus one init token
	// held until Wait is called, so the count cannot reach zero while the
	// caller is still issuing initial pushes.
	term       *Terminator
	aborted    atomic.Bool
	finishOnce sync.Once
	errOnce    sync.Once
	err        error

	visits atomic.Uint64
	pushes atomic.Uint64

	// workerVisits[i] is written only by worker i and read after wg.Wait.
	workerVisits []uint64

	// prefetch, when set (SetPrefetch), receives each worker's pop-window
	// before the window's visitors execute, so a storage back end can start
	// adjacency I/O early. Only consulted when cfg.Prefetch > 1.
	prefetch func(window []pq.Item, scratch *graph.Scratch[V])

	// settle, when set (SetSettle), receives the visitor lifecycle: a
	// VertexQueued at every push site (Ctx.Push, Engine.Push, ParallelInit)
	// and a VertexSettled for every visitor that leaves the engine — visited,
	// dropped stale by the kernel, or drained on abort. The pairing rides the
	// exact same sites as the Terminator's Start/Finish accounting, so on a
	// completed traversal the two notification streams balance per vertex.
	settle graph.Settler
}

// New creates an engine that will execute visit for every queued visitor.
func New[V graph.Vertex](cfg Config, visit VisitFunc[V]) *Engine[V] {
	cfg.normalize()
	return newEngine(cfg, visit, newEngineRes[V](cfg), nil)
}

// newEngine wires an engine onto a (fresh or recycled) resource set. cfg must
// already be normalized and must match the configuration res was built with.
func newEngine[V graph.Vertex](cfg Config, visit VisitFunc[V], res *engineRes[V], pool *EnginePool[V]) *Engine[V] {
	e := &Engine[V]{
		cfg:   cfg,
		visit: visit,
		term:  NewTerminator(),
		res:   res,
		pool:  pool,
		stop:  make(chan struct{}),
	}
	e.workerVisits = make([]uint64, cfg.Workers)
	e.queues = res.queues
	return e
}

// SetPrefetch registers the pop-window hook: fn is called with each batch of
// popped visitors (all owned by the calling worker) and that worker's scratch
// before any of the batch executes. Must be called before Start. The hook
// only fires when Config.Prefetch > 1 and a batch holds more than one
// visitor.
func (e *Engine[V]) SetPrefetch(fn func(window []pq.Item, scratch *graph.Scratch[V])) {
	e.prefetch = fn
}

// SetSettle registers a traversal-state sink (see graph.Settler): the engine
// notifies it of every visitor queued and settled, the feed behind
// state-aware SEM cache eviction. Must be called before Start and before any
// Push. The sink is called from every worker concurrently; it must be atomic
// and cheap.
func (e *Engine[V]) SetSettle(s graph.Settler) { e.settle = s }

// Start launches the worker goroutines. It must be called exactly once,
// before Wait.
func (e *Engine[V]) Start() {
	if ctx := e.cfg.Context; ctx != nil {
		e.watcherDone = make(chan struct{})
		go func() {
			defer close(e.watcherDone)
			select {
			case <-ctx.Done():
				e.Abort(ctx.Err())
			case <-e.stop:
			}
		}()
	}
	e.wg.Add(len(e.queues))
	for i := range e.queues {
		go e.worker(i)
	}
}

// owner maps a vertex id to the index of its owning worker (and queue): the
// single routing rule behind the engine's exclusive-ownership discipline.
func (e *Engine[V]) owner(v uint64) int {
	return int(e.cfg.Hash(v) % uint64(len(e.queues)))
}

// Push queues a visitor for v. Safe for concurrent use. External pushes are
// delivered directly (lock-per-push); pushes from inside visitors go through
// the worker's batching outbox instead (see Ctx.Push).
func (e *Engine[V]) Push(pri uint64, v V, aux uint64) {
	e.term.Start()
	if e.settle != nil {
		e.settle.VertexQueued(uint64(v))
	}
	e.queues[e.owner(uint64(v))].push(pq.Item{Pri: pri, V: uint64(v), Aux: aux})
}

// ParallelInit pushes n initial visitors concurrently, the paper's
// "for all v in g.vertex_list() parallel do" loop (Algorithm 3). Each init
// goroutine batches its pushes through an outbox when batching is enabled.
// gen is invoked once per index i in [0, n).
func (e *Engine[V]) ParallelInit(n uint64, gen func(i uint64) (pri uint64, v V, aux uint64)) {
	par := uint64(runtime.GOMAXPROCS(0))
	if par > n {
		par = 1
	}
	var wg sync.WaitGroup
	chunk := (n + par - 1) / par
	for p := uint64(0); p < par; p++ {
		lo := p * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			var out *outbox
			if e.cfg.Batch > 1 {
				out = newOutbox(e.queues, e.cfg.Batch)
			}
			for i := lo; i < hi; i++ {
				pri, v, aux := gen(i)
				e.term.Start()
				if e.settle != nil {
					e.settle.VertexQueued(uint64(v))
				}
				owner := e.owner(uint64(v))
				it := pq.Item{Pri: pri, V: uint64(v), Aux: aux}
				if out != nil {
					out.add(owner, it)
				} else {
					e.queues[owner].push(it)
				}
			}
			if out != nil {
				out.flush()
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Wait releases the init token and blocks until the traversal terminates
// (all visitor queues empty and all visitors complete — the paper's
// pri_q_visit.wait()). It returns aggregate statistics and the first visitor
// error, if any.
func (e *Engine[V]) Wait() (Stats, error) {
	if e.term.Release() {
		e.finish()
	}
	e.wg.Wait()
	close(e.stop)
	if e.watcherDone != nil {
		<-e.watcherDone
	}
	st := Stats{
		Visits:          e.visits.Load(),
		Pushes:          e.pushes.Load(),
		Workers:         len(e.queues),
		PeakOutstanding: e.term.Peak(),
		WorkerVisits:    e.workerVisits,
	}
	for _, q := range e.queues {
		if m := q.heap.MaxLen(); m > st.MaxQueue {
			st.MaxQueue = m
		}
	}
	if e.pool != nil {
		res := e.res
		e.res, e.queues = nil, nil // single-shot: no use after release
		e.pool.release(res)
	}
	return st, e.err
}

func (e *Engine[V]) finish() {
	e.finishOnce.Do(func() {
		for _, q := range e.queues {
			q.finish()
		}
	})
}

// fail records the first visitor error, marks the traversal aborted so no
// further visitors execute, and wakes every blocked worker so the engine
// winds down promptly even with work still queued.
func (e *Engine[V]) fail(err error) {
	e.errOnce.Do(func() { e.err = err })
	e.aborted.Store(true)
	e.finish()
}

// Abort cancels the traversal from outside a visitor: workers observe the
// abort flag in their pop loops and exit without draining remaining work,
// blocked workers are woken, and Wait returns err (unless a visitor error was
// recorded first). Safe for concurrent use; the first cause wins. Used by
// Config.Context cancellation and by serving layers tearing down a query
// whose client went away.
func (e *Engine[V]) Abort(err error) {
	e.fail(err)
}

// retire folds a finished worker's local counters into the engine totals.
// Deferred (as a bound method call, not a closure) by the worker loops.
func (e *Engine[V]) retire(ctx *Ctx[V], id int) {
	e.visits.Add(ctx.stats.visits)
	e.pushes.Add(ctx.stats.pushes)
	e.workerVisits[id] = ctx.stats.visits
	e.wg.Done()
}

//lint:hotpath
func (e *Engine[V]) worker(id int) {
	ctx := &Ctx[V]{engine: e, Worker: id, Scratch: e.res.scratch[id], stats: &e.res.stats[id]}
	if e.res.outs != nil {
		ctx.out = e.res.outs[id]
	}
	defer e.retire(ctx, id)
	if e.cfg.Prefetch > 1 && e.prefetch != nil {
		e.workerWindowed(id, ctx)
		return
	}
	q := e.queues[id]
	// The abort check at the loop top is the engine's cancellation point: an
	// aborted worker exits without draining its queue, so a deadline fires in
	// at most one visit's time regardless of how much work is still queued.
	for !e.aborted.Load() {
		it, ok := q.tryPop()
		if !ok {
			// Drain trigger: deliver every buffered visitor before blocking,
			// so a waiting worker never holds undelivered work.
			if ctx.out != nil {
				ctx.out.flush()
			}
			it, ok = q.pop()
			if !ok {
				return
			}
		}
		if invariant.Enabled {
			if o := e.owner(it.V); o != id {
				invariant.Failf("owner rule: visitor for vertex %d (owner %d) popped by worker %d", it.V, o, id)
			}
		}
		ctx.stats.visits++
		if err := e.visit(ctx, it); err != nil {
			e.fail(err)
		}
		if e.settle != nil {
			e.settle.VertexSettled(it.V)
		}
		if e.term.Finish() {
			e.finish()
		}
	}
	e.drainAborted(q, ctx)
}

// drainAborted settles the visitors an aborted worker leaves behind — its own
// queue plus its undelivered outbox buffers — so a storage back end's settle
// counters do not stay pinned after a cancelled query on a long-lived mount.
// Best-effort by design: visitors sitting in *other* workers' outboxes at
// abort time are missed, which graph.Settler implementations must tolerate
// (the sem policy's decrements saturate at zero, so a missed settle means at
// most a block that stays pinned until the file's next traversal touches it).
// The Terminator is left alone: aborted traversals already abandon its count.
func (e *Engine[V]) drainAborted(q *workQueue, ctx *Ctx[V]) {
	if e.settle == nil {
		return
	}
	if ctx.out != nil {
		for owner, buf := range ctx.out.bufs {
			for _, it := range buf {
				e.settle.VertexSettled(it.V)
			}
			ctx.out.bufs[owner] = buf[:0]
		}
	}
	for {
		it, ok := q.tryPop()
		if !ok {
			return
		}
		e.settle.VertexSettled(it.V)
	}
}

// workerWindowed is the pop-window variant of the worker loop, used when
// Config.Prefetch > 1 and a prefetch hook is registered. It pops up to
// Prefetch visitors in one lock acquisition, announces the window to the
// storage back end so adjacency I/O starts immediately, then executes the
// visits in window order while the reads are in flight. All popped visitors
// came off this worker's queue, so exclusive vertex ownership is exactly as
// in the one-at-a-time loop.
//
//lint:hotpath
func (e *Engine[V]) workerWindowed(id int, ctx *Ctx[V]) {
	q := e.queues[id]
	window := make([]pq.Item, 0, e.cfg.Prefetch)
	for !e.aborted.Load() {
		window = q.tryPopBatch(window[:0], e.cfg.Prefetch)
		if len(window) == 0 {
			// Drain trigger, as in the one-at-a-time loop: deliver every
			// buffered visitor before blocking.
			if ctx.out != nil {
				ctx.out.flush()
			}
			it, ok := q.pop()
			if !ok {
				return
			}
			window = append(window, it)
		}
		if invariant.Enabled {
			for _, it := range window {
				if o := e.owner(it.V); o != id {
					invariant.Failf("owner rule: visitor for vertex %d (owner %d) popped by worker %d", it.V, o, id)
				}
			}
		}
		if len(window) > 1 && !e.aborted.Load() {
			e.prefetch(window, ctx.Scratch)
		}
		for _, it := range window {
			if !e.aborted.Load() {
				ctx.stats.visits++
				if err := e.visit(ctx, it); err != nil {
					e.fail(err)
				}
			}
			if e.settle != nil {
				e.settle.VertexSettled(it.V)
			}
			if e.term.Finish() {
				e.finish()
			}
		}
	}
	e.drainAborted(q, ctx)
}
