package ssd

import (
	"bytes"
	"math/rand/v2"
	"os"
	"sync"
	"testing"
	"time"
)

func raidOver(t *testing.T, backing Backing, cards int, chunk int64) *RAID0 {
	t.Helper()
	r, err := NewRAID0Array(fastProfile(2), cards, chunk, backing)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRAID0Validation(t *testing.T) {
	back := &MemBacking{Data: make([]byte, 64)}
	if _, err := NewRAID0(nil, 16); err == nil {
		t.Fatal("empty device list accepted")
	}
	if _, err := NewRAID0([]*Device{New(fastProfile(1), back)}, 0); err == nil {
		t.Fatal("zero chunk accepted")
	}
	if _, err := NewRAID0([]*Device{nil}, 16); err == nil {
		t.Fatal("nil member accepted")
	}
	if _, err := NewRAID0Array(fastProfile(1), 0, 16, back); err == nil {
		t.Fatal("zero cards accepted")
	}
}

func TestRAID0ReadMatchesBacking(t *testing.T) {
	data := make([]byte, 1<<14)
	for i := range data {
		data[i] = byte(i * 131)
	}
	back := &MemBacking{Data: data}
	for _, cards := range []int{1, 2, 4} {
		r := raidOver(t, back, cards, 256)
		rng := rand.New(rand.NewPCG(7, uint64(cards)))
		for i := 0; i < 200; i++ {
			off := rng.Int64N(1 << 14)
			n := 1 + rng.IntN(1000) // spans multiple chunks
			if off+int64(n) > 1<<14 {
				n = int(int64(1<<14) - off)
			}
			buf := make([]byte, n)
			if _, err := r.ReadAt(buf, off); err != nil {
				t.Fatalf("cards=%d off=%d n=%d: %v", cards, off, n, err)
			}
			if !bytes.Equal(buf, data[off:off+int64(n)]) {
				t.Fatalf("cards=%d: mismatch at off=%d n=%d", cards, off, n)
			}
		}
	}
}

func TestRAID0WriteRoundTrip(t *testing.T) {
	back := &MemBacking{Data: make([]byte, 4096)}
	r := raidOver(t, back, 4, 64)
	payload := make([]byte, 700) // spans ~11 chunks
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := r.WriteAt(payload, 100); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if _, err := r.ReadAt(buf, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("write/read mismatch across stripes")
	}
}

func TestRAID0SegmentsRouting(t *testing.T) {
	back := &MemBacking{Data: make([]byte, 4096)}
	r := raidOver(t, back, 4, 64)
	segs := r.segments(60, 200) // 60..260 spans chunks 0,1,2,3,4
	if len(segs) != 5 {
		t.Fatalf("segments = %d, want 5", len(segs))
	}
	wantDev := []int{0, 1, 2, 3, 0} // chunk 4 wraps to device 0
	for i, s := range segs {
		if s.dev != wantDev[i] {
			t.Fatalf("segment %d routed to device %d, want %d", i, s.dev, wantDev[i])
		}
	}
	if segs[0].lo != 0 || segs[0].hi != 4 { // bytes 60..64 in chunk 0
		t.Fatalf("first segment = [%d,%d)", segs[0].lo, segs[0].hi)
	}
	total := 0
	for _, s := range segs {
		total += s.hi - s.lo
	}
	if total != 200 {
		t.Fatalf("segments cover %d bytes, want 200", total)
	}
}

func TestRAID0StatsAggregation(t *testing.T) {
	back := &MemBacking{Data: make([]byte, 4096)}
	r := raidOver(t, back, 2, 64)
	buf := make([]byte, 128) // exactly 2 chunks -> 1 read per member
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Reads != 2 || st.BytesRead != 128 {
		t.Fatalf("stats = %+v", st)
	}
	if len(r.Members()) != 2 {
		t.Fatalf("members = %d", len(r.Members()))
	}
}

func TestRAID0ParallelismSpeedsUpStripedReads(t *testing.T) {
	// One slow channel per member: a 4-chunk read on 1 card is serialized
	// (4 x 20ms), on 4 cards it overlaps (~20ms).
	p := Profile{Name: "t", Channels: 1, ReadLatency: 20 * time.Millisecond}
	back := &MemBacking{Data: make([]byte, 4096)}
	timeRead := func(cards int) time.Duration {
		r, err := NewRAID0Array(p, cards, 64, back)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 256)
		start := time.Now()
		if _, err := r.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	one := timeRead(1)
	four := timeRead(4)
	if four > one/2 {
		t.Fatalf("striping did not parallelize: 1 card %v, 4 cards %v", one, four)
	}
}

func TestRAID0ErrorPropagates(t *testing.T) {
	back := &MemBacking{Data: make([]byte, 100)}
	r := raidOver(t, back, 2, 64)
	if _, err := r.ReadAt(make([]byte, 200), 0); err == nil {
		t.Fatal("read past end did not error")
	}
}

func TestRAID0ConcurrentReaders(t *testing.T) {
	data := make([]byte, 1<<13)
	for i := range data {
		data[i] = byte(i * 7)
	}
	r := raidOver(t, &MemBacking{Data: data}, 4, 128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 3))
			buf := make([]byte, 300)
			for i := 0; i < 100; i++ {
				off := rng.Int64N(1<<13 - 300)
				if _, err := r.ReadAt(buf, off); err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if !bytes.Equal(buf, data[off:off+300]) {
					t.Errorf("mismatch at %d", off)
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
}

func TestCardProfile(t *testing.T) {
	card := CardProfile(FusionIO, 4)
	if card.Channels != FusionIO.Channels/4 {
		t.Fatalf("card channels = %d", card.Channels)
	}
	if card.ReadLatency != FusionIO.ReadLatency {
		t.Fatal("card latency changed")
	}
	if card.BytesPerSec != FusionIO.BytesPerSec/4 {
		t.Fatalf("card bandwidth = %d", card.BytesPerSec)
	}
	// Degenerate: more cards than channels still yields a valid profile.
	tiny := CardProfile(Profile{Name: "x", Channels: 2, BytesPerSec: 3}, 8)
	if tiny.Channels != 1 || tiny.BytesPerSec < 1 {
		t.Fatalf("tiny card profile = %+v", tiny)
	}
}

func TestFileBacking(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "ssd-*.bin")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFileBacking(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteAt([]byte("hello world"), 5); err != nil {
		t.Fatal(err)
	}
	if b.Size() != 16 {
		t.Fatalf("size = %d, want 16", b.Size())
	}
	buf := make([]byte, 5)
	if _, err := b.ReadAt(buf, 11); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Fatalf("read %q", buf)
	}
	// A device over a file backing works end to end.
	dev := New(fastProfile(2), b)
	if _, err := dev.ReadAt(buf, 5); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("device read %q", buf)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileBacking(f); err == nil {
		t.Fatal("stat on closed file should error")
	}
}
