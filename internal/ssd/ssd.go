// Package ssd simulates the NAND-flash storage devices of the paper's
// semi-external experiments (§II-D, §IV-C). Physical FusionIO / Intel X25-M /
// Corsair P128 RAID-0 arrays are not available here, so the device model
// reproduces the two properties the paper's results rest on:
//
//  1. random reads are orders of magnitude slower than RAM but far faster
//     than rotating disk (per-op service latency in the 100 µs range), and
//  2. the device services multiple concurrent requests — random-read IOPS
//     rise as more threads issue requests and saturate at the device's
//     internal parallelism (Figure 1), which is why EM algorithms "must be
//     multithreaded in order to achieve maximum I/O performance".
//
// The model is a bounded pool of service channels plus a per-operation
// service time (latency + bytes/bandwidth). Saturated read IOPS equal
// Channels / ReadLatency, calibrated per profile to the paper's measured
// ceilings. Writes cost more than reads (flash asymmetry).
package ssd

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Profile describes a simulated flash configuration.
type Profile struct {
	Name string
	// Channels is the device's internal parallelism: the number of requests
	// serviced concurrently (flash packages x RAID members).
	Channels int
	// ReadLatency is the service time of one random read operation.
	ReadLatency time.Duration
	// WriteLatency is the service time of one write operation; flash writes
	// are more costly than reads.
	WriteLatency time.Duration
	// BytesPerSec models transfer bandwidth; large requests pay
	// size/BytesPerSec on top of the fixed latency. Zero disables the term.
	BytesPerSec int64
}

// SaturatedReadIOPS is the model's peak random-read throughput for small
// reads: Channels / ReadLatency.
func (p Profile) SaturatedReadIOPS() float64 {
	if p.ReadLatency <= 0 {
		return 0
	}
	return float64(p.Channels) / p.ReadLatency.Seconds()
}

// The three configurations the paper tests (§IV-C), calibrated so the
// saturated random-read IOPS match the reported ceilings: FusionIO ~200k,
// Intel ~60k, Corsair ~30k. Single-thread IOPS (1/latency) are ordered the
// same way, as in Figure 1.
// Profile latencies are scaled 10x above the physical devices' (TimeScale)
// so each service time sits an order of magnitude above the Go runtime's
// sleep granularity; saturated IOPS are therefore 1/10 of the paper's
// ceilings (FusionIO ~200k -> 20k, Intel ~60k -> 6k, Corsair ~30k -> 3k)
// while relative ordering and the rise-then-saturate Figure 1 shape are
// unaffected.
var (
	// FusionIO: 4x 80GB SLC PCI-E cards, software RAID 0 (paper: ~200k IOPS).
	FusionIO = Profile{Name: "FusionIO", Channels: 20, ReadLatency: time.Millisecond,
		WriteLatency: 2500 * time.Microsecond, BytesPerSec: 700 << 20}
	// Intel: 4x 80GB X25-M MLC SATA SSDs, software RAID 0 (paper: ~60k IOPS).
	Intel = Profile{Name: "Intel", Channels: 12, ReadLatency: 2 * time.Millisecond,
		WriteLatency: 6 * time.Millisecond, BytesPerSec: 250 << 20}
	// Corsair: 4x 128GB P128 MLC SATA SSDs, software RAID 0 (paper: ~30k IOPS).
	Corsair = Profile{Name: "Corsair", Channels: 9, ReadLatency: 3 * time.Millisecond,
		WriteLatency: 9 * time.Millisecond, BytesPerSec: 200 << 20}
)

// TimeScale is the simulation's time dilation relative to the paper's
// hardware: simulated latencies are 10x the physical devices', so measured
// IOPS correspond to the paper's numbers divided by 10.
const TimeScale = 10

// Profiles lists the paper's three configurations, fastest first.
var Profiles = []Profile{FusionIO, Intel, Corsair}

// ProfileByName returns the named profile (case-sensitive) or an error.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("ssd: unknown profile %q (have FusionIO, Intel, Corsair)", name)
}

// Stats counts device traffic.
type Stats struct {
	Reads        uint64
	Writes       uint64
	BytesRead    uint64
	BytesWritten uint64
	// MaxReadBytes is the largest single read operation serviced, exposing
	// span coalescing in the layers above: k small adjacency reads merged
	// into one large ReadAt show up here as a multi-record span.
	MaxReadBytes uint64
	// PeakReads is the high-water count of concurrently in-flight read
	// operations (queued or occupying a service slot). Cross-worker span
	// dedup shows up here: workers that share one in-flight span instead of
	// issuing duplicate reads lower the peak at equal traversal concurrency.
	PeakReads uint64
}

// Add accumulates other into s: counters sum, MaxReadBytes takes the larger.
// This is the member roll-up RAID stripes and shard mounts report through.
func (s *Stats) Add(other Stats) {
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.BytesRead += other.BytesRead
	s.BytesWritten += other.BytesWritten
	if other.MaxReadBytes > s.MaxReadBytes {
		s.MaxReadBytes = other.MaxReadBytes
	}
	if other.PeakReads > s.PeakReads {
		s.PeakReads = other.PeakReads
	}
}

// Sum rolls member snapshots up into one aggregate.
func Sum(members ...Stats) Stats {
	var total Stats
	for _, m := range members {
		total.Add(m)
	}
	return total
}

// AvgReadBytes reports mean bytes per read operation (0 when no reads ran).
func (s Stats) AvgReadBytes() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.BytesRead) / float64(s.Reads)
}

// Device is a latency-simulating storage device wrapping a backing
// io.ReaderAt-style byte store. It implements io.ReaderAt and io.WriterAt.
// A zero TimeScale means 1.0 (real-time simulation).
type Device struct {
	profile Profile
	backing Backing
	// slots bounds in-flight operations at the device's channel count;
	// excess requests queue, which is what bends the IOPS curve flat.
	slots chan struct{}

	reads        atomic.Uint64
	writes       atomic.Uint64
	bytesRead    atomic.Uint64
	bytesWritten atomic.Uint64
	maxReadBytes atomic.Uint64
	inflight     atomic.Int64
	peakReads    atomic.Uint64
}

// Backing is the byte store behind a Device: a RAM buffer in tests and
// simulations, or a real file.
type Backing interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Size() int64
}

// MemBacking is an in-memory byte store. The simulation charges flash
// latency on every access, so RAM backing preserves the semi-external
// performance behaviour while keeping experiments self-contained.
type MemBacking struct{ Data []byte }

// ReadAt implements Backing.
func (m *MemBacking) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(m.Data)) {
		return 0, fmt.Errorf("ssd: read offset %d out of range (size %d)", off, len(m.Data))
	}
	n := copy(p, m.Data[off:])
	if n < len(p) {
		return n, errors.New("ssd: short read past end of device")
	}
	return n, nil
}

// WriteAt implements Backing, growing the buffer as needed.
func (m *MemBacking) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("ssd: negative write offset")
	}
	if end := off + int64(len(p)); end > int64(len(m.Data)) {
		grown := make([]byte, end)
		copy(grown, m.Data)
		m.Data = grown
	}
	return copy(m.Data[off:], p), nil
}

// Size implements Backing.
func (m *MemBacking) Size() int64 { return int64(len(m.Data)) }

// New creates a device with the given profile over the backing store.
func New(p Profile, backing Backing) *Device {
	if p.Channels <= 0 {
		p.Channels = 1
	}
	return &Device{
		profile: p,
		backing: backing,
		slots:   make(chan struct{}, p.Channels),
	}
}

// Profile returns the device's configuration.
func (d *Device) Profile() Profile { return d.profile }

// Stats returns a snapshot of traffic counters.
func (d *Device) Stats() Stats {
	return Stats{
		Reads:        d.reads.Load(),
		Writes:       d.writes.Load(),
		BytesRead:    d.bytesRead.Load(),
		BytesWritten: d.bytesWritten.Load(),
		MaxReadBytes: d.maxReadBytes.Load(),
		PeakReads:    d.peakReads.Load(),
	}
}

// Size reports the backing size in bytes.
func (d *Device) Size() int64 { return d.backing.Size() }

func (d *Device) serviceTime(base time.Duration, n int) time.Duration {
	t := base
	if d.profile.BytesPerSec > 0 {
		t += time.Duration(int64(n) * int64(time.Second) / d.profile.BytesPerSec)
	}
	return t
}

// occupy claims a service slot for dur, modelling one in-flight operation.
func (d *Device) occupy(dur time.Duration) {
	d.slots <- struct{}{}
	time.Sleep(dur)
	<-d.slots
}

// ReadAt reads len(p) bytes at off, charging one read operation's simulated
// latency. Implements io.ReaderAt.
func (d *Device) ReadAt(p []byte, off int64) (int, error) {
	for cur := uint64(d.inflight.Add(1)); ; {
		peak := d.peakReads.Load()
		if cur <= peak || d.peakReads.CompareAndSwap(peak, cur) {
			break
		}
	}
	d.occupy(d.serviceTime(d.profile.ReadLatency, len(p)))
	d.inflight.Add(-1)
	d.reads.Add(1)
	d.bytesRead.Add(uint64(len(p)))
	for n := uint64(len(p)); ; {
		cur := d.maxReadBytes.Load()
		if n <= cur || d.maxReadBytes.CompareAndSwap(cur, n) {
			break
		}
	}
	return d.backing.ReadAt(p, off)
}

// WriteAt writes len(p) bytes at off, charging one (more expensive) write
// operation. Implements io.WriterAt.
func (d *Device) WriteAt(p []byte, off int64) (int, error) {
	d.occupy(d.serviceTime(d.profile.WriteLatency, len(p)))
	d.writes.Add(1)
	d.bytesWritten.Add(uint64(len(p)))
	return d.backing.WriteAt(p, off)
}
