// social_sssp models the paper's social-network scenario (§I-A): vertices
// are people, weighted edges are interaction strengths (lower weight =
// stronger tie), and SSSP from a person ranks everyone by "relationship
// distance". The example compares the asynchronous label-correcting SSSP
// against serial Dijkstra for both answers and running time, under uniform
// and log-uniform weights (the paper's UW and LUW schemes).
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	const scale = 15
	fmt.Printf("generating RMAT-B social network at scale 2^%d (heavy-tailed degrees)...\n", scale)
	base, err := gen.RMAT[uint32](scale, 16, gen.RMATB, 11)
	if err != nil {
		log.Fatal(err)
	}

	for _, scheme := range []struct {
		name string
		fn   func(*graph.CSR[uint32], uint64) (*graph.CSR[uint32], error)
	}{
		{"UW (uniform weights)", gen.UniformWeights[uint32]},
		{"LUW (log-uniform weights)", gen.LogUniformWeights[uint32]},
	} {
		g, err := scheme.fn(base, 23)
		if err != nil {
			log.Fatal(err)
		}
		src := uint32(0)
		for v := uint32(0); uint64(v) < g.NumVertices(); v++ {
			if g.Degree(v) > g.Degree(src) {
				src = v
			}
		}
		fmt.Printf("\n== %s, source = person %d (degree %d) ==\n", scheme.name, src, g.Degree(src))

		start := time.Now()
		res, err := core.SSSP[uint32](g, src, core.Config{Workers: 64})
		if err != nil {
			log.Fatal(err)
		}
		asyncTime := time.Since(start)

		start = time.Now()
		dist, _, err := baseline.SerialDijkstra[uint32](g, src)
		if err != nil {
			log.Fatal(err)
		}
		dijkstraTime := time.Since(start)

		for v := range dist {
			if res.Dist[v] != dist[v] {
				log.Fatalf("disagreement at %d: async=%d dijkstra=%d", v, res.Dist[v], dist[v])
			}
		}

		// Rank the closest people (excluding the source itself).
		type person struct {
			id   uint32
			dist graph.Dist
		}
		var reachable []person
		for v := range res.Dist {
			if uint32(v) != src && res.Reached(uint32(v)) {
				reachable = append(reachable, person{uint32(v), res.Dist[v]})
			}
		}
		sort.Slice(reachable, func(i, j int) bool { return reachable[i].dist < reachable[j].dist })

		fmt.Printf("async SSSP: %v (%s)\n", asyncTime.Round(time.Microsecond), res.Stats)
		fmt.Printf("Dijkstra:   %v — labels agree on all %d reachable people\n",
			dijkstraTime.Round(time.Microsecond), len(reachable))
		fmt.Println("closest ties:")
		for i, p := range reachable {
			if i == 5 {
				break
			}
			fmt.Printf("  person %d at distance %d\n", p.id, p.dist)
		}
		extra := float64(res.Stats.Visits) / float64(len(reachable)+1)
		fmt.Printf("label-correction overhead: %.2f visits per reached vertex\n", extra)
	}
}
