package load

import (
	"container/heap"
	"fmt"
	"math/rand/v2"
	"net/http"
	"time"
)

// Discrete-event simulator: replays a schedule through a model of the query
// service's admission pipeline in virtual time. The model mirrors
// internal/server request for request — bounded slots, a policy-ordered
// wait queue (FIFO or SLO-priority), queue timeout, deadline-aware shedding
// with the same EWMA wait estimator, per-tenant GCRA token buckets, and
// deadline cancellation of running queries (the 504 path) — but replaces
// goroutines and wall time with an event heap, so a run is deterministic to
// the byte. Same seed, same config → same report. That is what lets CI
// assert "priority beats FIFO for gold p99 under 2× overload" as a
// regression test instead of a flaky benchmark, and what the EXPERIMENTS.md
// policy tables are generated from.
//
// Service demands are drawn per request, in schedule order, from their own
// seeded stream before the event loop runs — so FIFO and priority runs over
// one schedule face identical work, making the comparison paired.

// SimConfig models the server being simulated. Zero values select the
// documented defaults; Validate normalizes in place.
type SimConfig struct {
	// Slots is the modeled MaxConcurrent. Default 4.
	Slots int
	// MaxQueue is the modeled admission queue capacity. Default 64.
	MaxQueue int
	// QueueTimeout is the modeled max queue wait before 503. Default 2s.
	QueueTimeout time.Duration
	// Admission is the queue order: "priority" (default) or "fifo".
	Admission string
	// Shedding is "deadline" (default) or "off", as in server.Config.
	Shedding string
	// Service is the mean traversal time per kernel. Defaults:
	// bfs 20ms, sssp 40ms, cc 30ms.
	Service map[string]time.Duration
	// Jitter spreads each service draw uniformly over
	// mean * [1-Jitter, 1+Jitter]. Default 0.2; 0 < exact means.
	Jitter float64
	// RateLimit is the per-tenant sustained rate in req/s; 0 disables.
	RateLimit float64
	// Burst is the per-tenant burst allowance; raised to 1 when RateLimit
	// is set.
	Burst float64
}

// Validate normalizes defaults in place and reports contradictions.
func (c *SimConfig) Validate() error {
	if c.Slots == 0 {
		c.Slots = 4
	}
	if c.Slots < 0 {
		return fmt.Errorf("load: sim Slots %d is negative", c.Slots)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.MaxQueue < 0 {
		return fmt.Errorf("load: sim MaxQueue %d is negative", c.MaxQueue)
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.QueueTimeout < 0 {
		return fmt.Errorf("load: sim QueueTimeout %v is negative", c.QueueTimeout)
	}
	switch c.Admission {
	case "":
		c.Admission = "priority"
	case "priority", "fifo":
	default:
		return fmt.Errorf("load: sim Admission %q (want priority or fifo)", c.Admission)
	}
	switch c.Shedding {
	case "":
		c.Shedding = "deadline"
	case "deadline", "off":
	default:
		return fmt.Errorf("load: sim Shedding %q (want deadline or off)", c.Shedding)
	}
	if c.Service == nil {
		c.Service = map[string]time.Duration{
			"bfs": 20 * time.Millisecond, "sssp": 40 * time.Millisecond, "cc": 30 * time.Millisecond,
		}
	}
	for k, d := range c.Service {
		if d <= 0 {
			return fmt.Errorf("load: sim Service[%q] %v must be positive", k, d)
		}
	}
	if c.Jitter == 0 {
		c.Jitter = 0.2
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		return fmt.Errorf("load: sim Jitter %v out of [0, 1)", c.Jitter)
	}
	if c.RateLimit < 0 {
		return fmt.Errorf("load: sim RateLimit %v is negative", c.RateLimit)
	}
	if c.RateLimit > 0 && c.Burst < 1 {
		c.Burst = 1
	}
	return nil
}

// classRank mirrors server.ParseSLOClass's ladder for the simulator's
// priority ordering.
func classRank(class string) int {
	switch class {
	case "gold":
		return 0
	case "silver":
		return 1
	case "batch":
		return 3
	default:
		return 2 // bronze and anything unknown
	}
}

// simWaiter is one queued request in the model.
type simWaiter struct {
	i        int           // schedule index
	rank     int           // class rank
	deadline time.Duration // absolute virtual deadline
	seq      uint64
	index    int // heap position; -1 once granted or removed
}

type simQueue struct {
	ws   []*simWaiter
	fifo bool
}

func (q *simQueue) Len() int { return len(q.ws) }

func (q *simQueue) Less(i, j int) bool { return q.before(q.ws[i], q.ws[j]) }

// before mirrors the server's admission ordering exactly.
func (q *simQueue) before(a, b *simWaiter) bool {
	if q.fifo {
		return a.seq < b.seq
	}
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	return a.seq < b.seq
}

// aheadOf counts queued waiters served before w.
func (q *simQueue) aheadOf(w *simWaiter) int {
	n := 0
	for _, o := range q.ws {
		if q.before(o, w) {
			n++
		}
	}
	return n
}

// worst returns the waiter served last, nil when empty.
func (q *simQueue) worst() *simWaiter {
	if len(q.ws) == 0 {
		return nil
	}
	w := q.ws[0]
	for _, o := range q.ws[1:] {
		if q.before(w, o) {
			w = o
		}
	}
	return w
}

func (q *simQueue) Swap(i, j int) {
	q.ws[i], q.ws[j] = q.ws[j], q.ws[i]
	q.ws[i].index = i
	q.ws[j].index = j
}

func (q *simQueue) Push(x any) {
	w := x.(*simWaiter)
	w.index = len(q.ws)
	q.ws = append(q.ws, w)
}

func (q *simQueue) Pop() any {
	old := q.ws
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	q.ws = old[:n-1]
	return w
}

// Event kinds, in deliberate order: at equal timestamps departures free
// slots before arrivals claim them and before queue timers judge waiters.
const (
	evDepart = iota
	evArrive
	evTimeout
	evDeadline
)

type simEvent struct {
	at   time.Duration
	kind int
	seq  uint64
	i    int           // schedule index (arrive, depart)
	svc  time.Duration // service consumed (depart)
	w    *simWaiter    // timeout, deadline
}

type eventHeap []*simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*simEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// simBucket is the virtual-time mirror of the server's GCRA token bucket.
type simBucket struct {
	interval time.Duration
	tau      time.Duration
	tat      time.Duration
}

func (b *simBucket) allow(now time.Duration) bool {
	t := b.tat
	if now > t {
		t = now
	}
	if t-now > b.tau {
		return false
	}
	b.tat = t + b.interval
	return true
}

// simState is the event loop's mutable world.
type simState struct {
	cfg      *SimConfig
	schedule []Request
	svc      []time.Duration // pre-drawn service demand per request
	outcomes []Outcome

	events  eventHeap
	evSeq   uint64
	queue   simQueue
	wSeq    uint64
	running int
	avgNs   int64 // EWMA of consumed service, alpha 1/8
	buckets map[string]*simBucket
}

// Simulate replays schedule through the server model. cfg supplies the seed
// for the service-demand stream (kept separate from the schedule stream so
// both are stable under policy changes).
func Simulate(cfg *Config, sim *SimConfig, schedule []Request) ([]Outcome, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := sim.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed^0xA5A5A5A5A5A5A5A5, cfg.Seed+0x6C62272E07BB0142))
	st := &simState{
		cfg:      sim,
		schedule: schedule,
		svc:      make([]time.Duration, len(schedule)),
		outcomes: make([]Outcome, len(schedule)),
		queue:    simQueue{fifo: sim.Admission == "fifo"},
		buckets:  make(map[string]*simBucket),
	}
	for i, req := range schedule {
		mean, ok := sim.Service[req.Kernel]
		if !ok {
			return nil, fmt.Errorf("load: sim has no Service time for kernel %q", req.Kernel)
		}
		f := 1 - sim.Jitter + 2*sim.Jitter*rng.Float64()
		st.svc[i] = time.Duration(float64(mean) * f)
		st.push(&simEvent{at: req.At, kind: evArrive, i: i})
	}
	for st.events.Len() > 0 {
		ev := heap.Pop(&st.events).(*simEvent)
		switch ev.kind {
		case evArrive:
			st.arrive(ev.at, ev.i)
		case evDepart:
			st.depart(ev.at, ev.svc)
		case evTimeout:
			if ev.w.index >= 0 {
				heap.Remove(&st.queue, ev.w.index)
				st.reject(ev.w.i, http.StatusServiceUnavailable, "queue-timeout", st.cfg.QueueTimeout)
			}
		case evDeadline:
			if ev.w.index >= 0 {
				heap.Remove(&st.queue, ev.w.index)
				st.reject(ev.w.i, http.StatusServiceUnavailable, "deadline-shed", st.schedule[ev.w.i].Deadline)
			}
		}
	}
	return st.outcomes, nil
}

func (st *simState) push(ev *simEvent) {
	ev.seq = st.evSeq
	st.evSeq++
	heap.Push(&st.events, ev)
}

func (st *simState) reject(i, code int, reason string, latency time.Duration) {
	st.outcomes[i] = Outcome{Req: st.schedule[i], Code: code, Reason: reason, Latency: latency}
}

// estimate mirrors admission.estimateWaitLocked: drain rounds ahead of the
// candidate — ahead in queue order, not arrival order — times the EWMA
// service time; zero until the first completion.
func (st *simState) estimate(cand *simWaiter) time.Duration {
	if st.avgNs == 0 {
		return 0
	}
	rounds := int64(st.queue.aheadOf(cand)/st.cfg.Slots + 1)
	return time.Duration(rounds * st.avgNs)
}

func (st *simState) arrive(now time.Duration, i int) {
	req := st.schedule[i]
	if st.cfg.RateLimit > 0 {
		b, ok := st.buckets[req.Tenant]
		if !ok {
			interval := time.Duration(float64(time.Second) / st.cfg.RateLimit)
			b = &simBucket{interval: interval, tau: time.Duration((st.cfg.Burst - 1) * float64(interval))}
			st.buckets[req.Tenant] = b
		}
		if !b.allow(now) {
			st.reject(i, http.StatusTooManyRequests, "rate-limit", 0)
			return
		}
	}
	if st.running < st.cfg.Slots {
		st.start(now, i)
		return
	}
	deadlineAt := req.At + req.Deadline
	w := &simWaiter{i: i, rank: classRank(req.Class), deadline: deadlineAt, seq: st.wSeq}
	if st.cfg.Shedding == "deadline" {
		if est := st.estimate(w); est > 0 && now+est > deadlineAt {
			st.reject(i, http.StatusServiceUnavailable, "deadline-shed", 0)
			return
		}
	}
	if st.queue.Len() >= st.cfg.MaxQueue {
		// Full queue: displace the worst waiter when the newcomer outranks
		// it (never under FIFO), exactly as the server does.
		worst := st.queue.worst()
		if worst == nil || !st.queue.before(w, worst) {
			st.reject(i, http.StatusTooManyRequests, "queue-full", 0)
			return
		}
		heap.Remove(&st.queue, worst.index)
		st.reject(worst.i, http.StatusTooManyRequests, "queue-full", now-st.schedule[worst.i].At)
	}
	st.wSeq++
	heap.Push(&st.queue, w)
	st.push(&simEvent{at: now + st.cfg.QueueTimeout, kind: evTimeout, w: w})
	if st.cfg.Shedding == "deadline" && deadlineAt < now+st.cfg.QueueTimeout {
		st.push(&simEvent{at: deadlineAt, kind: evDeadline, w: w})
	}
}

// start puts request i on a slot at time now, judging its outcome up front:
// completion within budget is a 200 at finish time, past budget the engine
// is canceled at the deadline and the reply is a 504 — exactly the server's
// per-query context semantics.
func (st *simState) start(now time.Duration, i int) {
	st.running++
	req := st.schedule[i]
	deadlineAt := req.At + req.Deadline
	finish := now + st.svc[i]
	if finish > deadlineAt {
		consumed := deadlineAt - now
		st.outcomes[i] = Outcome{Req: req, Code: http.StatusGatewayTimeout, Latency: req.Deadline}
		st.push(&simEvent{at: deadlineAt, kind: evDepart, i: i, svc: consumed})
		return
	}
	st.outcomes[i] = Outcome{Req: req, Code: http.StatusOK, Latency: finish - req.At}
	st.push(&simEvent{at: finish, kind: evDepart, i: i, svc: st.svc[i]})
}

func (st *simState) depart(now time.Duration, consumed time.Duration) {
	next := st.avgNs + (int64(consumed)-st.avgNs)/8
	if st.avgNs == 0 {
		next = int64(consumed)
	}
	st.avgNs = next
	st.running--
	if st.queue.Len() > 0 {
		w := heap.Pop(&st.queue).(*simWaiter)
		st.start(now, w.i)
	}
}
