package fixture

import "sync"

// Seeded blockwhilelocked violations and accepted shapes.

type relay struct {
	mu sync.Mutex
	wg sync.WaitGroup
	ch chan int
}

// recvLocked parks on a channel receive while holding mu: violation.
func (r *relay) recvLocked() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return <-r.ch
}

// waitLocked parks on WaitGroup.Wait while holding mu: violation.
func (r *relay) waitLocked() {
	r.mu.Lock()
	r.wg.Wait()
	r.mu.Unlock()
}

// drain blocks (range over a channel); drainLocked calls it while holding
// mu — visible only through the may-block summary: violation at the call.
func (r *relay) drain() {
	for range r.ch {
		continue
	}
}

func (r *relay) drainLocked() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.drain()
}

type board struct {
	rw  sync.RWMutex
	in  chan int
	out chan int
}

// shuffleLocked parks in a select with no default while holding a read
// lock: violation (one finding for the select, not per comm).
func (b *board) shuffleLocked() {
	b.rw.RLock()
	defer b.rw.RUnlock()
	select {
	case v := <-b.in:
		_ = v
	case b.out <- 0:
	}
}

// recvUnlocked releases the lock before blocking: no diagnostic.
func (r *relay) recvUnlocked() int {
	r.mu.Lock()
	r.mu.Unlock()
	return <-r.ch
}

// condQueue is the canonical condvar loop: Wait releases the same struct's
// mutex while parked, so holding queue.mu across cond.Wait is exempt.
type condQueue struct {
	mu   sync.Mutex
	cond sync.Cond
	n    int
}

func (q *condQueue) pop() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 {
		q.cond.Wait()
	}
	q.n--
	return q.n
}

// pollLocked uses select-with-default as a non-blocking poll: no diagnostic.
func (r *relay) pollLocked() (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case v := <-r.ch:
		return v, true
	default:
		return 0, false
	}
}

// sendLockedAnnotated documents a deliberate locked send: no diagnostic.
func (r *relay) sendLockedAnnotated(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	//lint:blockwhilelocked the channel is buffered and drained by the owner
	r.ch <- v
}
