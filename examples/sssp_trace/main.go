// sssp_trace replays the paper's Figure 3: an asynchronous SSSP over a
// 5-vertex weighted digraph whose weights force label correction — vertices
// are visited multiple times as shorter paths arrive, with no synchronization
// between steps. The program instruments the visitor to print every visit and
// whether it relaxed the vertex, then checks the final labels against the
// paper's walk-through.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pq"
)

func main() {
	// Figure 3's graph: weights are "purposefully selected to require
	// multiple visits per vertex".
	b := graph.NewBuilder[uint32](5, true)
	b.AddEdge(0, 1, 2)
	b.AddEdge(0, 2, 5)
	b.AddEdge(1, 2, 4)
	b.AddEdge(1, 3, 7)
	b.AddEdge(2, 3, 1)
	b.AddEdge(3, 0, 1)
	b.AddEdge(3, 4, 2)
	b.AddEdge(4, 0, 3)
	g, err := b.Build(false)
	if err != nil {
		log.Fatal(err)
	}

	// Reimplement the SSSP visitor (Algorithm 2) with tracing, on the same
	// engine the library's core.SSSP uses. dist/parent are safely written
	// without locks because the engine guarantees per-vertex exclusivity.
	n := g.NumVertices()
	dist := make([]graph.Dist, n)
	parent := make([]uint32, n)
	for i := range dist {
		dist[i] = graph.InfDist
		parent[i] = graph.NoVertex[uint32]()
	}

	var traceMu sync.Mutex
	step := 0
	trace := func(format string, args ...any) {
		traceMu.Lock()
		step++
		fmt.Printf("%3d  "+format+"\n", append([]any{step}, args...)...)
		traceMu.Unlock()
	}

	e := core.New[uint32](core.Config{Workers: 2, SemiSort: true}, func(ctx *core.Ctx[uint32], it pq.Item) error {
		v := uint32(it.V)
		if it.Pri >= dist[v] {
			trace("visit v%d with length %d: no update (current %s)", v, it.Pri, distStr(dist[v]))
			return nil
		}
		trace("visit v%d with length %d: RELAX (was %s), parent <- v%d", v, it.Pri, distStr(dist[v]), it.Aux)
		dist[v] = it.Pri
		parent[v] = uint32(it.Aux)
		targets, weights, err := g.Neighbors(v, ctx.Scratch)
		if err != nil {
			return err
		}
		for i, t := range targets {
			nd := it.Pri + uint64(weights[i])
			trace("     queue visitor -> v%d with length %d", t, nd)
			ctx.Push(nd, t, uint64(v))
		}
		return nil
	})

	fmt.Println("asynchronous SSSP trace from vertex 0 (paper Figure 3):")
	e.Start()
	e.Push(0, 0, 0) // source visitor, path length 0
	st, err := e.Wait()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nfinal labels:")
	want := []graph.Dist{0, 2, 5, 6, 8} // the paper's walk-through result
	for v := range dist {
		marker := ""
		if dist[v] != want[v] {
			marker = "  << MISMATCH with paper"
		}
		fmt.Printf("  v%d: dist=%d parent=v%d%s\n", v, dist[v], parent[v], marker)
	}
	fmt.Printf("\nengine: %s\n", st)
	if st.Visits > 5 {
		fmt.Printf("label correction at work: %d visits for 5 vertices (some vertices were re-visited)\n", st.Visits)
	}
}

func distStr(d graph.Dist) string {
	if d == graph.InfDist {
		return "inf"
	}
	return fmt.Sprintf("%d", d)
}
