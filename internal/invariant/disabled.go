//go:build !invariants

package invariant

// Enabled is false in normal builds: every assertion guarded by it is dead
// code and is eliminated by the compiler, so the instrumented hot paths are
// bit-for-bit the uninstrumented ones.
const Enabled = false
