// Command lint runs the project's static analyzers (internal/lint) over the
// given package patterns and prints diagnostics as
//
//	file:line: analyzer: message
//
// Exit status: 0 when clean, 1 when any diagnostic fired, 2 on load errors
// (parse or type-check failure). CI runs `go run ./cmd/lint ./...` and treats
// any non-zero status as a gate failure.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
	cwd, err := os.Getwd()
	if err != nil {
		cwd = ""
	}
	diags := lint.RunAll(pkgs, lint.Analyzers())
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
		}
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
