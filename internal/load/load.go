// Package load is the production traffic simulator for the traversal query
// service: an open-loop workload generator plus a discrete-event policy
// simulator plus a report layer, turning "handles heavy traffic" from a
// claim into a measured, policy-tunable property.
//
// Closed-loop benchmarks (fire, wait, fire again) cannot overload a server:
// the benchmark slows down exactly as fast as the server does. Real users
// are open-loop — arrivals keep coming at their own rate regardless of how
// the server is doing — so the generator draws an arrival schedule from a
// stochastic process (Poisson or Gamma inter-arrivals), a source-vertex
// distribution (hot-key Zipf or uniform), a kernel blend (BFS/SSSP/CC), and
// a multi-tenant profile where each tenant carries an SLO class and a
// latency budget. Everything is drawn from one seeded RNG, so the same seed
// always produces the identical schedule: policy comparisons (FIFO vs
// priority admission, limiter on vs off) see the same offered load.
//
// Three ways to spend a schedule:
//
//   - Runner + HTTPTarget fires it at a live cmd/serve over HTTP;
//   - Runner + HandlerTarget fires it at an in-process server.Server with
//     no network between them (tests, cmd/loadgen -graph mode);
//   - Simulate replays it through a discrete-event model of the server's
//     admission pipeline in virtual time — deterministic to the byte, which
//     is what CI diffs and the EXPERIMENTS.md policy tables are built on.
//
// All three produce []Outcome; BuildReport folds outcomes into per-tenant
// and per-class latency percentiles, goodput (replies within deadline),
// rejection rates by cause, and a Jain fairness index, rendered as JSON or
// a human table.
package load

import (
	"fmt"
	"sort"
	"time"
)

// Tenant is one traffic source in the workload: a share of the arrival
// stream tagged with an identity, an SLO class, and a latency budget.
type Tenant struct {
	// Name is the tenant identity sent in the X-Tenant header.
	Name string `json:"name"`
	// Class is the SLO class name sent in the X-SLO-Class header:
	// gold, silver, bronze, or batch.
	Class string `json:"class"`
	// Weight is the tenant's share of arrivals relative to the other
	// tenants' weights.
	Weight float64 `json:"weight"`
	// Deadline is the per-request latency budget, sent as timeout_ms; a
	// reply after it does not count toward goodput.
	Deadline time.Duration `json:"deadline"`
}

// Config describes one workload. Zero values select the documented
// defaults; Validate normalizes in place and rejects contradictions.
type Config struct {
	// Graph names the served graph to query.
	Graph string
	// Requests is the total number of arrivals to schedule. Default 1000.
	Requests int
	// Rate is the mean arrival rate in requests/second (open-loop: arrivals
	// ignore how the server is doing). Default 100.
	Rate float64
	// Arrival selects the inter-arrival process: "poisson" (default) or
	// "gamma" (burstier below shape 1, smoother above).
	Arrival string
	// GammaShape is the Gamma shape parameter k; the scale is derived so
	// the mean inter-arrival stays 1/Rate. Default 4 (smoother than
	// Poisson); values below 1 give heavy bursts. Ignored for poisson.
	GammaShape float64
	// Source selects the source-vertex distribution: "zipf" (default,
	// hot-key skew) or "uniform".
	Source string
	// ZipfS is the Zipf exponent s (rank r drawn with probability
	// proportional to 1/r^s). Default 1.1. Ignored for uniform.
	ZipfS float64
	// Vertices is the source-vertex id space (ids 0..Vertices-1). Required.
	Vertices uint64
	// Mix weighs the kernel blend, e.g. {"bfs": 6, "sssp": 3, "cc": 1}.
	// Default all-BFS. CC requests normalize their source to 0.
	Mix map[string]float64
	// Tenants is the multi-tenant profile. Default: one bronze tenant
	// "anon" with a 1s deadline.
	Tenants []Tenant
	// Seed seeds every random draw; the same seed reproduces the identical
	// schedule. Default 1.
	Seed uint64
	// NoCache sets no_cache on every query so each request costs a real
	// traversal — the mode policy comparisons run under.
	NoCache bool
}

// Validate normalizes defaults in place and reports the first
// contradiction. It must be called (directly or via BuildSchedule) before
// the config is used.
func (c *Config) Validate() error {
	if c.Graph == "" {
		c.Graph = "g"
	}
	if c.Requests == 0 {
		c.Requests = 1000
	}
	if c.Requests < 0 {
		return fmt.Errorf("load: Requests %d is negative", c.Requests)
	}
	if c.Rate == 0 {
		c.Rate = 100
	}
	if c.Rate < 0 {
		return fmt.Errorf("load: Rate %v is negative", c.Rate)
	}
	switch c.Arrival {
	case "":
		c.Arrival = "poisson"
	case "poisson", "gamma":
	default:
		return fmt.Errorf("load: unknown Arrival %q (want poisson or gamma)", c.Arrival)
	}
	if c.GammaShape == 0 {
		c.GammaShape = 4
	}
	if c.GammaShape < 0 {
		return fmt.Errorf("load: GammaShape %v is negative", c.GammaShape)
	}
	switch c.Source {
	case "":
		c.Source = "zipf"
	case "zipf", "uniform":
	default:
		return fmt.Errorf("load: unknown Source %q (want zipf or uniform)", c.Source)
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.ZipfS < 0 {
		return fmt.Errorf("load: ZipfS %v is negative", c.ZipfS)
	}
	if c.Vertices == 0 {
		return fmt.Errorf("load: Vertices must be set (source id space)")
	}
	if len(c.Mix) == 0 {
		c.Mix = map[string]float64{"bfs": 1}
	}
	var mixTotal float64
	for kernel, w := range c.Mix {
		switch kernel {
		case "bfs", "sssp", "cc":
		default:
			return fmt.Errorf("load: unknown kernel %q in Mix", kernel)
		}
		if w < 0 {
			return fmt.Errorf("load: Mix[%q] weight %v is negative", kernel, w)
		}
		mixTotal += w
	}
	if mixTotal <= 0 {
		return fmt.Errorf("load: Mix has no positive weight")
	}
	if len(c.Tenants) == 0 {
		c.Tenants = []Tenant{{Name: "anon", Class: "bronze", Weight: 1, Deadline: time.Second}}
	}
	var tenantTotal float64
	for i := range c.Tenants {
		t := &c.Tenants[i]
		if t.Name == "" {
			return fmt.Errorf("load: tenant %d has no name", i)
		}
		switch t.Class {
		case "gold", "silver", "bronze", "batch":
		case "":
			t.Class = "bronze"
		default:
			return fmt.Errorf("load: tenant %q: unknown class %q", t.Name, t.Class)
		}
		if t.Weight < 0 {
			return fmt.Errorf("load: tenant %q: weight %v is negative", t.Name, t.Weight)
		}
		if t.Weight == 0 {
			t.Weight = 1
		}
		if t.Deadline <= 0 {
			t.Deadline = time.Second
		}
		tenantTotal += t.Weight
	}
	if tenantTotal <= 0 {
		return fmt.Errorf("load: tenants have no positive weight")
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	_ = c.NoCache // passthrough knob: any bool is valid
	return nil
}

// kernels returns the mix as deterministic (name, weight) pairs, sorted so
// scheduling never depends on map iteration order.
func (c *Config) kernels() ([]string, []float64) {
	names := make([]string, 0, len(c.Mix))
	for k := range c.Mix {
		names = append(names, k)
	}
	sort.Strings(names)
	weights := make([]float64, len(names))
	for i, k := range names {
		weights[i] = c.Mix[k]
	}
	return names, weights
}
