package sem

import (
	"bytes"
	"testing"

	"repro/internal/graph"
	"repro/internal/ssd"
)

// FuzzOpen feeds arbitrary bytes through the semi-external loader: it must
// reject corrupt input with an error — never panic, never over-allocate —
// and anything it accepts must be fully traversable.
func FuzzOpen(f *testing.F) {
	// Seed with a valid file and a few mutations.
	b := graph.NewBuilder[uint32](20, true)
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 19, 3)
	g, err := b.Build(false)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	mutated[16] = 0xFF // corrupt the vertex count
	f.Add(mutated)

	// Seed the compressed (v2) layout the same way so the fuzzer explores the
	// block-index and degree-array validation paths too.
	var cbuf bytes.Buffer
	if err := WriteCSRCompressed(&cbuf, g); err != nil {
		f.Fatal(err)
	}
	validV2 := cbuf.Bytes()
	f.Add(validV2)
	f.Add(validV2[:len(validV2)/2])
	mutatedV2 := append([]byte(nil), validV2...)
	mutatedV2[headerSize+8*21] = 0xFF // corrupt a degree-array byte
	f.Add(mutatedV2)

	f.Fuzz(func(t *testing.T, data []byte) {
		store := &ssd.MemBacking{Data: data}
		sg, err := Open[uint32](store)
		if err != nil {
			return // rejected: fine
		}
		// Accepted: every adjacency must decode without panicking, and
		// targets must be in range or the read must error.
		scratch := &graph.Scratch[uint32]{}
		n := sg.NumVertices()
		if n > 1<<20 {
			t.Fatalf("accepted implausible vertex count %d for %d bytes", n, len(data))
		}
		for v := uint64(0); v < n; v++ {
			ts, ws, err := sg.Neighbors(uint32(v), scratch)
			if err != nil {
				continue
			}
			if sg.Weighted() != (ws != nil) && len(ts) > 0 {
				t.Fatal("weight slice inconsistent with header flag")
			}
			_ = ts
		}
	})
}
