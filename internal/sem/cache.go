package sem

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// CachedStore wraps a Store with a fixed-budget block cache. The paper's
// semi-external runs read edge lists through the OS page cache (16 GB of RAM
// against 9-136 GB of graph), and the visitor queues' secondary vertex-id
// sort exists precisely to raise that cache's hit rate by "semi-sorting
// access" (§IV-C). CachedStore makes the same mechanism explicit and
// measurable: device reads happen in aligned blocks, recently used blocks are
// kept under a byte budget, and hit/miss counters expose the locality the
// semi-sort buys.
type CachedStore struct {
	inner     Store
	blockSize int64
	size      int64 // backing size, for tail-block clamping
	readahead int   // blocks fetched per miss (>= 1)
	shards    []cacheShard

	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheShard struct {
	mu       sync.Mutex
	capacity int // max cached blocks in this shard
	blocks   map[int64]*list.Element
	lru      *list.List // front = most recent; values are *cacheEntry
}

type cacheEntry struct {
	id    int64
	data  []byte
	ready chan struct{} // closed once data/err are set (singleflight)
	err   error
}

// Sizer is implemented by stores that know their total size (ssd.Device,
// os.File via a wrapper). CachedStore needs it to clamp the final block.
type Sizer interface{ Size() int64 }

// NewCachedStore creates a block cache over inner with the given block size
// and total capacity in bytes, and no readahead. inner must implement Sizer.
func NewCachedStore(inner Store, blockSize int, capacityBytes int64) (*CachedStore, error) {
	return NewCachedStoreRA(inner, blockSize, capacityBytes, 1)
}

// NewCachedStoreRA additionally fetches `readahead` consecutive blocks per
// miss in a single device operation, the way the OS page cache's readahead
// turns the semi-sorted edge sweep into large sequential transfers. One
// operation's latency is charged regardless of span; the extra bytes pay only
// the device's bandwidth term, matching sequential-transfer behaviour.
func NewCachedStoreRA(inner Store, blockSize int, capacityBytes int64, readahead int) (*CachedStore, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("sem: block size must be positive, got %d", blockSize)
	}
	if readahead < 1 {
		readahead = 1
	}
	szr, ok := inner.(Sizer)
	if !ok {
		return nil, fmt.Errorf("sem: cached store requires a store with a known size")
	}
	const numShards = 16
	totalBlocks := capacityBytes / int64(blockSize)
	perShard := int(totalBlocks / numShards)
	if perShard < 1 {
		perShard = 1
	}
	c := &CachedStore{
		inner:     inner,
		blockSize: int64(blockSize),
		size:      szr.Size(),
		readahead: readahead,
		shards:    make([]cacheShard, numShards),
	}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			capacity: perShard,
			blocks:   make(map[int64]*list.Element),
			lru:      list.New(),
		}
	}
	return c, nil
}

// Stats reports cache hits and misses (block granularity).
func (c *CachedStore) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Size implements Sizer.
func (c *CachedStore) Size() int64 { return c.size }

func (c *CachedStore) shard(id int64) *cacheShard {
	return &c.shards[uint64(id)%uint64(len(c.shards))]
}

// install adds an in-flight placeholder for id to its shard, evicting LRU
// entries past capacity. Returns (nil, existing) when id is already present.
func (c *CachedStore) install(id int64, entry *cacheEntry) (el *list.Element, existing *cacheEntry) {
	sh := c.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cur, ok := sh.blocks[id]; ok {
		sh.lru.MoveToFront(cur)
		return nil, cur.Value.(*cacheEntry)
	}
	el = sh.lru.PushFront(entry)
	sh.blocks[id] = el
	for sh.lru.Len() > sh.capacity {
		old := sh.lru.Back()
		if old == el {
			break // never evict the entry being installed
		}
		sh.lru.Remove(old)
		delete(sh.blocks, old.Value.(*cacheEntry).id)
	}
	return el, nil
}

func (c *CachedStore) remove(id int64, el *list.Element) {
	sh := c.shard(id)
	sh.mu.Lock()
	if cur, ok := sh.blocks[id]; ok && cur == el {
		sh.lru.Remove(el)
		delete(sh.blocks, id)
	}
	sh.mu.Unlock()
}

func (c *CachedStore) await(entry *cacheEntry) ([]byte, error) {
	<-entry.ready // no-op for completed entries
	if entry.err != nil {
		return nil, entry.err
	}
	c.hits.Add(1)
	return entry.data, nil
}

// block returns the cached contents of block id, fetching from the device on
// a miss. Concurrent misses on the same block share one device read
// (singleflight): with hundreds of visitors sweeping the same id range, the
// first requester fetches and the rest wait on the in-flight entry — without
// this, a cold block would be read once per waiting visitor. Each miss
// fetches up to `readahead` consecutive blocks in one device operation.
func (c *CachedStore) block(id int64) ([]byte, error) {
	sh := c.shard(id)
	sh.mu.Lock()
	if el, ok := sh.blocks[id]; ok {
		sh.lru.MoveToFront(el)
		entry := el.Value.(*cacheEntry)
		sh.mu.Unlock()
		return c.await(entry)
	}
	sh.mu.Unlock()

	maxBlock := (c.size + c.blockSize - 1) / c.blockSize
	if id >= maxBlock || id < 0 {
		return nil, fmt.Errorf("sem: cache read beyond device end (block %d)", id)
	}
	span := int64(c.readahead)
	if id+span > maxBlock {
		span = maxBlock - id
	}

	// Install placeholders for every absent block of the span. If block id
	// itself appears concurrently, another fetcher owns it: wait on theirs.
	type owned struct {
		id    int64
		el    *list.Element
		entry *cacheEntry
	}
	var mine []owned
	for k := int64(0); k < span; k++ {
		bid := id + k
		entry := &cacheEntry{id: bid, ready: make(chan struct{})}
		el, existing := c.install(bid, entry)
		if existing != nil {
			if k == 0 {
				return c.await(existing)
			}
			continue // already cached or being fetched by someone else
		}
		mine = append(mine, owned{id: bid, el: el, entry: entry})
	}
	c.misses.Add(1)

	// One device operation covers the whole span; extra blocks pay only the
	// bandwidth term, as with OS readahead.
	off := id * c.blockSize
	n := span * c.blockSize
	if off+n > c.size {
		n = c.size - off
	}
	data := make([]byte, n)
	_, err := c.inner.ReadAt(data, off)
	var out []byte
	for _, o := range mine {
		if err != nil {
			o.entry.err = err
			close(o.entry.ready)
			c.remove(o.id, o.el) // drop so later reads can retry
			continue
		}
		lo := (o.id - id) * c.blockSize
		hi := lo + c.blockSize
		if hi > n {
			hi = n
		}
		o.entry.data = data[lo:hi:hi]
		close(o.entry.ready)
		if o.id == id {
			out = o.entry.data
		}
	}
	if err != nil {
		return nil, err
	}
	if out == nil {
		// id was concurrently owned elsewhere and we fetched only trailing
		// blocks; fall back to the (now-present or refetchable) entry.
		return c.block(id)
	}
	return out, nil
}

// ReadAt implements Store, assembling the request from cached blocks.
func (c *CachedStore) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("sem: negative read offset %d", off)
	}
	read := 0
	for read < len(p) {
		pos := off + int64(read)
		id := pos / c.blockSize
		data, err := c.block(id)
		if err != nil {
			return read, err
		}
		inBlock := pos - id*c.blockSize
		if inBlock >= int64(len(data)) {
			return read, fmt.Errorf("sem: read past end of device at offset %d", pos)
		}
		read += copy(p[read:], data[inBlock:])
	}
	return read, nil
}
