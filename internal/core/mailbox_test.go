package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/pq"
)

func TestOutboxSizeTrigger(t *testing.T) {
	queues := make([]*workQueue, 2)
	for i := range queues {
		queues[i] = &workQueue{heap: pq.New(false)}
		queues[i].cond.L = &queues[i].mu
	}
	out := newOutbox(queues, 3)
	out.add(0, pq.Item{Pri: 1})
	out.add(0, pq.Item{Pri: 2})
	if queues[0].heap.Len() != 0 {
		t.Fatal("delivered before reaching the batch size")
	}
	out.add(0, pq.Item{Pri: 3}) // size trigger
	if got := queues[0].heap.Len(); got != 3 {
		t.Fatalf("queue holds %d items after size trigger, want 3", got)
	}
	out.add(1, pq.Item{Pri: 9})
	if queues[1].heap.Len() != 0 {
		t.Fatal("other owner's bucket flushed early")
	}
	out.flush() // drain trigger
	if got := queues[1].heap.Len(); got != 1 {
		t.Fatalf("queue holds %d items after drain flush, want 1", got)
	}
	out.flush() // idempotent on empty buckets
	if queues[0].heap.Len() != 3 || queues[1].heap.Len() != 1 {
		t.Fatal("second flush changed queue contents")
	}
}

func TestWorkQueuePushBatchOrdersItems(t *testing.T) {
	q := &workQueue{heap: pq.New(false)}
	q.cond.L = &q.mu
	q.pushBatch([]pq.Item{{Pri: 5}, {Pri: 1}, {Pri: 3}})
	q.pushBatch(nil) // no-op
	var got []uint64
	for {
		it, ok := q.tryPop()
		if !ok {
			break
		}
		got = append(got, it.Pri)
	}
	want := []uint64{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("popped %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestConfigBatchNormalization(t *testing.T) {
	var c Config
	c.normalize()
	if c.Batch != DefaultBatch {
		t.Fatalf("default batch = %d, want %d", c.Batch, DefaultBatch)
	}
	c = Config{Batch: -7}
	c.normalize()
	if c.Batch != 1 {
		t.Fatalf("negative batch normalized to %d, want 1", c.Batch)
	}
	c = Config{Batch: 1}
	c.normalize()
	if c.Batch != 1 {
		t.Fatalf("batch 1 normalized to %d", c.Batch)
	}
}

// TestEngineBatchedCascade re-runs the cascading-push workload across batch
// sizes: the visit count is exact regardless of delivery batching, proving no
// visitor is lost in an outbox (the termination counter includes buffered
// visitors, and the drain trigger flushes before any worker blocks).
func TestEngineBatchedCascade(t *testing.T) {
	const depth = 10
	for _, batch := range []int{1, 2, DefaultBatch, 4096} {
		e := New[uint32](Config{Workers: 8, Batch: batch}, func(ctx *Ctx[uint32], it pq.Item) error {
			if it.Pri > 0 {
				ctx.Push(it.Pri-1, uint32(it.V*2+1)%1000, 0)
				ctx.Push(it.Pri-1, uint32(it.V*2+2)%1000, 0)
			}
			return nil
		})
		e.Start()
		e.Push(depth, 0, 0)
		st, err := e.Wait()
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(1)<<(depth+1) - 1
		if st.Visits != want {
			t.Fatalf("batch=%d: visits = %d, want %d", batch, st.Visits, want)
		}
	}
}

// TestVisitorErrorAbortsPromptly is the abort satellite: a visitor error must
// abort the traversal, Wait must return that error, and no worker may
// deadlock even though the queues still hold a large amount of pending work
// when the error fires.
func TestVisitorErrorAbortsPromptly(t *testing.T) {
	sentinel := errors.New("injected visitor failure")
	e := New[uint32](Config{Workers: 4}, func(ctx *Ctx[uint32], it pq.Item) error {
		if it.V == 0 {
			return sentinel
		}
		// Keep generating work so the queues are non-empty at abort time.
		if it.Pri > 0 {
			ctx.Push(it.Pri-1, uint32(it.V+1), 0)
			ctx.Push(it.Pri-1, uint32(it.V+2), 0)
		}
		return nil
	})
	// Seed a large frontier plus the poisoned vertex before the workers
	// start, guaranteeing non-empty queues when the error is returned.
	for v := uint32(1); v <= 2048; v++ {
		e.Push(20, v, 0)
	}
	e.Push(0, 0, 0) // the poisoned visitor
	e.Start()

	type result struct {
		st  Stats
		err error
	}
	done := make(chan result, 1)
	go func() {
		st, err := e.Wait()
		done <- result{st, err}
	}()
	select {
	case r := <-done:
		if !errors.Is(r.err, sentinel) {
			t.Fatalf("Wait err = %v, want %v", r.err, sentinel)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Wait did not return: worker deadlocked on a non-empty queue")
	}
}

// TestVisitorErrorFirstWins pins "Wait returns the first error": with one
// worker and a strictly ordered queue, the lowest-priority poisoned visitor
// fails first and later failures must not replace its error.
func TestVisitorErrorFirstWins(t *testing.T) {
	errFirst := errors.New("first failure")
	errLater := errors.New("later failure")
	e := New[uint32](Config{Workers: 1}, func(_ *Ctx[uint32], it pq.Item) error {
		switch it.Pri {
		case 0:
			return errFirst
		case 1:
			return errLater
		}
		return nil
	})
	// Push before Start so the single queue orders all three items.
	e.Push(2, 30, 0)
	e.Push(1, 20, 0)
	e.Push(0, 10, 0)
	e.Start()
	_, err := e.Wait()
	if !errors.Is(err, errFirst) {
		t.Fatalf("Wait err = %v, want the first error %v", err, errFirst)
	}
}
