package pq

// Queue is the visitor-queue contract the engine's workers drive. Heap and
// BucketQueue both implement it.
type Queue interface {
	// Push inserts a visitor.
	Push(Item)
	// PushBatch inserts a batch of visitors in one operation (the mailbox
	// layer's amortized delivery path). Implementations must consume the
	// slice before returning; callers may reuse its backing array.
	PushBatch([]Item)
	// Pop removes a minimum-priority visitor; ok is false when empty.
	Pop() (Item, bool)
	// PopBatch removes up to k visitors in one operation, appending them to
	// dst and returning the extended slice (the engine's pop-window path).
	// Implementations may return fewer than k — the heap stops when it
	// drains, the bucket queue stops at the end of the current minimum-
	// priority bucket — but must return at least one item when non-empty.
	PopBatch(dst []Item, k int) []Item
	// Len reports the number of queued visitors.
	Len() int
	// MaxLen reports the high-water mark of Len.
	MaxLen() int
	// Reset empties the queue and clears the high-water mark, retaining
	// backing storage so a recycled queue (core.EnginePool) starts its next
	// traversal without reallocating.
	Reset()
}

var (
	_ Queue = (*Heap)(nil)
	_ Queue = (*BucketQueue)(nil)
)

// BucketQueue is a two-level priority queue for integer priorities: items
// with equal priority share a FIFO bucket, and a small min-heap orders the
// distinct priorities present. For traversals whose priorities cluster on few
// values — BFS levels, CC component ids mid-collapse — push is O(1) for an
// existing bucket and pop is O(log #distinct), versus O(log n) for the binary
// heap. The trade-off is that it cannot secondary-sort by vertex id inside a
// bucket (FIFO), so the semi-external semi-sort optimization requires Heap.
type BucketQueue struct {
	buckets map[uint64][]Item
	keys    *Heap // heap of distinct priorities (Item.Pri only)
	length  int
	maxLen  int
}

// NewBucket returns an empty bucket queue.
func NewBucket() *BucketQueue {
	return &BucketQueue{
		buckets: make(map[uint64][]Item),
		keys:    New(false),
	}
}

// Len reports the number of queued items.
func (b *BucketQueue) Len() int { return b.length }

// Reset implements Queue, dropping all buckets and the high-water mark.
func (b *BucketQueue) Reset() {
	clear(b.buckets)
	b.keys.Reset()
	b.length = 0
	b.maxLen = 0
}

// MaxLen reports the high-water mark of the queue size.
func (b *BucketQueue) MaxLen() int { return b.maxLen }

// Push inserts an item.
func (b *BucketQueue) Push(it Item) {
	bucket, ok := b.buckets[it.Pri]
	if !ok {
		b.keys.Push(Item{Pri: it.Pri})
	}
	b.buckets[it.Pri] = append(bucket, it)
	b.length++
	if b.length > b.maxLen {
		b.maxLen = b.length
	}
}

// PushBatch inserts a batch of items. Batches from the engine's mailbox
// layer cluster on few distinct priorities (BFS levels), so most inserts hit
// an existing bucket.
func (b *BucketQueue) PushBatch(its []Item) {
	for _, it := range its {
		b.Push(it)
	}
}

// PopBatch removes up to k items from the current minimum-priority bucket —
// never across buckets, so a batch stays within one priority level (one BFS
// frontier slice, one CC candidate id). FIFO order within the bucket is
// preserved.
func (b *BucketQueue) PopBatch(dst []Item, k int) []Item {
	if b.length == 0 || k <= 0 {
		return dst
	}
	key, _ := b.keys.Peek()
	bucket := b.buckets[key.Pri]
	take := k
	if take > len(bucket) {
		take = len(bucket)
	}
	dst = append(dst, bucket[:take]...)
	if take == len(bucket) {
		delete(b.buckets, key.Pri)
		b.keys.Pop()
	} else {
		b.buckets[key.Pri] = bucket[take:]
	}
	b.length -= take
	return dst
}

// Pop removes an item with the minimum priority (FIFO within a priority).
func (b *BucketQueue) Pop() (Item, bool) {
	if b.length == 0 {
		return Item{}, false
	}
	key, _ := b.keys.Peek()
	bucket := b.buckets[key.Pri]
	it := bucket[0]
	if len(bucket) == 1 {
		delete(b.buckets, key.Pri)
		b.keys.Pop()
	} else {
		b.buckets[key.Pri] = bucket[1:]
	}
	b.length--
	return it, true
}
