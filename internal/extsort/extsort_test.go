package extsort

import (
	"bytes"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/sem"
	"repro/internal/ssd"
)

// buildBoth constructs the same graph through the in-memory builder and the
// out-of-core builder (with a tiny budget to force spills) and returns both
// serialized files.
func buildBoth(t testing.TB, n uint64, weighted bool, budget int, edges []graph.Edge[uint32]) (inMem, outOfCore []byte) {
	t.Helper()
	gb := graph.NewBuilder[uint32](n, weighted)
	gb.AddEdges(edges)
	g, err := gb.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sem.WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}

	eb := NewBuilder(n, weighted, budget, t.TempDir())
	for _, e := range edges {
		if err := eb.Add(e.Src, e.Dst, e.W); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Create(filepath.Join(t.TempDir(), "out.asg"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := eb.WriteTo(f)
	if err != nil {
		t.Fatal(err)
	}
	if m != g.NumEdges() {
		t.Fatalf("edge count %d, want %d", m, g.NumEdges())
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), data
}

func randEdges(n uint64, m int, maxW uint64, seed uint64) []graph.Edge[uint32] {
	r := rand.New(rand.NewPCG(seed, 9))
	edges := make([]graph.Edge[uint32], m)
	for i := range edges {
		edges[i] = graph.Edge[uint32]{
			Src: uint32(r.Uint64N(n)), Dst: uint32(r.Uint64N(n)), W: graph.Weight(r.Uint64N(maxW)),
		}
	}
	return edges
}

func TestOutOfCoreMatchesInMemoryUnweighted(t *testing.T) {
	edges := randEdges(200, 5000, 1, 1)
	want, got := buildBoth(t, 200, false, 1024, edges) // ~5 spills
	if !bytes.Equal(want, got) {
		t.Fatal("out-of-core file differs from in-memory file")
	}
}

func TestOutOfCoreMatchesInMemoryWeighted(t *testing.T) {
	// Duplicate (src,dst) pairs with different weights across spill
	// boundaries exercise the min-weight dedup rule.
	edges := randEdges(50, 8000, 40, 2)
	want, got := buildBoth(t, 50, true, 1024, edges)
	if !bytes.Equal(want, got) {
		t.Fatal("out-of-core weighted file differs from in-memory file")
	}
}

func TestOutOfCoreNoSpill(t *testing.T) {
	edges := randEdges(64, 500, 10, 3)
	want, got := buildBoth(t, 64, true, 1<<20, edges)
	if !bytes.Equal(want, got) {
		t.Fatal("no-spill build differs")
	}
}

func TestOutOfCoreEmpty(t *testing.T) {
	eb := NewBuilder(10, false, 2048, t.TempDir())
	f, err := os.Create(filepath.Join(t.TempDir(), "empty.asg"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := eb.WriteTo(f)
	if err != nil || m != 0 {
		t.Fatalf("m=%d err=%v", m, err)
	}
	data, _ := os.ReadFile(f.Name())
	g, err := sem.LoadCSR[uint32](ssdFast(data))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 || g.NumEdges() != 0 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func ssdFast(data []byte) *ssd.MemBacking { return &ssd.MemBacking{Data: data} }

func TestBuilderValidation(t *testing.T) {
	eb := NewBuilder(4, false, 2048, t.TempDir())
	if err := eb.Add(9, 0, 1); err == nil {
		t.Fatal("out-of-range src accepted")
	}
	if err := eb.Add(0, 9, 1); err == nil {
		t.Fatal("out-of-range dst accepted")
	}
	if err := eb.Add(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if eb.NumEdgesAdded() != 1 {
		t.Fatalf("added = %d", eb.NumEdgesAdded())
	}
	f, err := os.Create(filepath.Join(t.TempDir(), "x.asg"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := eb.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if _, err := eb.WriteTo(f); err == nil {
		t.Fatal("double WriteTo accepted")
	}
	if err := eb.Add(0, 1, 1); err == nil {
		t.Fatal("Add after WriteTo accepted")
	}
}

func TestSpillFilesCleanedUp(t *testing.T) {
	dir := t.TempDir()
	eb := NewBuilder(100, false, 1024, dir)
	for _, e := range randEdges(100, 5000, 1, 4) {
		if err := eb.Add(e.Src, e.Dst, e.W); err != nil {
			t.Fatal(err)
		}
	}
	outDir := t.TempDir()
	f, err := os.Create(filepath.Join(outDir, "g.asg"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := eb.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("%d spill files left behind", len(entries))
	}
}

// Property: the out-of-core builder produces byte-identical files to the
// in-memory path for arbitrary edge lists and spill budgets.
func TestQuickOutOfCoreEquivalence(t *testing.T) {
	type rawEdge struct {
		S, D uint8
		W    uint8
	}
	f := func(raw []rawEdge, weighted bool) bool {
		const n = 256
		edges := make([]graph.Edge[uint32], len(raw))
		for i, e := range raw {
			edges[i] = graph.Edge[uint32]{Src: uint32(e.S), Dst: uint32(e.D), W: graph.Weight(e.W)}
		}
		want, got := buildBoth(t, n, weighted, 1024, edges)
		return bytes.Equal(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
