package harness

import (
	"time"

	"repro/internal/graph"
)

// SlowAdj wraps an adjacency with a per-edge access latency, modelling the
// cache-miss-bound DRAM behaviour of the paper's in-memory runs. The paper's
// Table I BGL times work out to ~140 ns per edge on 2^29-edge graphs — every
// adjacency access is a main-memory miss at that scale. The scaled-down
// graphs used here fit in on-chip cache, so without this model every
// in-memory competitor would run at L2 speed and the comparison against
// semi-external storage (Tables IV, V) would be against the wrong baseline.
//
// The latency is charged by busy-spinning, matching how a cache miss
// occupies a core without yielding it.
type SlowAdj[V graph.Vertex] struct {
	Inner   graph.Adjacency[V]
	PerEdge time.Duration
}

// DRAMPerEdge is the default per-edge charge: the paper's measured BGL
// throughput (Table I works out to ~65-140 ns per edge; 100 ns midpoint)
// multiplied by the simulation's ssd.TimeScale so that the DRAM:flash
// latency ratio matches the paper's hardware. All simulated components —
// flash service times and DRAM access times — live in the same 10x-dilated
// time domain; speedup ratios are therefore directly comparable to the
// paper's.
const DRAMPerEdge = 1 * time.Microsecond

// NewSlowAdj wraps g with the default DRAM-latency model.
func NewSlowAdj[V graph.Vertex](g graph.Adjacency[V]) *SlowAdj[V] {
	return &SlowAdj[V]{Inner: g, PerEdge: DRAMPerEdge}
}

// NumVertices implements graph.Adjacency.
func (s *SlowAdj[V]) NumVertices() uint64 { return s.Inner.NumVertices() }

// Degree implements graph.Adjacency.
func (s *SlowAdj[V]) Degree(v V) int { return s.Inner.Degree(v) }

// Neighbors implements graph.Adjacency, charging PerEdge per returned edge.
func (s *SlowAdj[V]) Neighbors(v V, scratch *graph.Scratch[V]) ([]V, []graph.Weight, error) {
	t, w, err := s.Inner.Neighbors(v, scratch)
	if err != nil {
		return t, w, err
	}
	if n := len(t); n > 0 && s.PerEdge > 0 {
		spin(time.Duration(n) * s.PerEdge)
	}
	return t, w, nil
}

// spin busy-waits for d, the way a stalled load occupies a core.
func spin(d time.Duration) {
	start := time.Now()
	for time.Since(start) < d {
	}
}
