package fixture

type spill struct{ closed bool }

func (s *spill) Close() error                            { s.closed = true; return nil }
func (s *spill) ReadAt(p []byte, off int64) (int, error) { return len(p), nil }
func (s *spill) Write(p []byte) (int, error)             { return len(p), nil }

// dropAll exercises the flagged shapes.
func dropAll(s *spill, p []byte) int {
	s.Close()              // violation: expression statement drops the error
	n, _ := s.ReadAt(p, 0) // violation: error blanked, count used
	s.Write(p)             // violation: expression statement drops both results
	return n
}

// acceptAll exercises the accepted shapes: no diagnostics.
func acceptAll(s *spill, p []byte) error {
	defer s.Close()   // defer cannot propagate; conventional
	_ = s.Close()     // solitary blank assign: explicit intent
	_, _ = s.Write(p) // fully blank tuple: explicit intent
	if _, err := s.ReadAt(p, 0); err != nil {
		return err
	}
	return nil
}
