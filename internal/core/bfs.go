package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/pq"
)

// BFSResult holds the output of a breadth-first search: per-vertex level and
// parent plus traversal statistics used by the benchmark harness (the paper's
// Table I reports the number of levels and the fraction of vertices visited).
type BFSResult[V graph.Vertex] struct {
	Level  []graph.Dist // InfDist for unreachable vertices
	Parent []V
	Stats  Stats
}

// Reached reports whether v was reached from the source.
func (r *BFSResult[V]) Reached(v V) bool { return r.Level[v] != graph.InfDist }

// NumLevels returns the number of BFS levels (max level + 1), 0 if nothing
// was reached.
func (r *BFSResult[V]) NumLevels() int {
	max := graph.Dist(0)
	seen := false
	for _, l := range r.Level {
		if l == graph.InfDist {
			continue
		}
		seen = true
		if l > max {
			max = l
		}
	}
	if !seen {
		return 0
	}
	return int(max) + 1
}

// FracVisited returns the fraction of vertices reached, the "% vis" column of
// Table I.
func (r *BFSResult[V]) FracVisited() float64 {
	if len(r.Level) == 0 {
		return 0
	}
	reached := 0
	for _, l := range r.Level {
		if l != graph.InfDist {
			reached++
		}
	}
	return float64(reached) / float64(len(r.Level))
}

// BFS computes a breadth-first search by applying the asynchronous SSSP
// traversal with all edge weights equal to 1 (§III-B). The visitor ignores
// any weight array, so the same code path serves weighted graph storage.
func BFS[V graph.Vertex](g graph.Adjacency[V], src V, cfg Config) (*BFSResult[V], error) {
	n := g.NumVertices()
	if uint64(src) >= n {
		return nil, fmt.Errorf("core: source %d out of range for %d vertices", src, n)
	}
	res := &BFSResult[V]{
		Level:  make([]graph.Dist, n),
		Parent: make([]V, n),
	}
	for i := range res.Level {
		res.Level[i] = graph.InfDist
		res.Parent[i] = graph.NoVertex[V]()
	}

	e := New[V](cfg, func(ctx *Ctx[V], it pq.Item) error {
		v := V(it.V)
		if it.Pri >= res.Level[v] {
			return nil
		}
		res.Level[v] = it.Pri
		res.Parent[v] = V(it.Aux)
		targets, _, err := g.Neighbors(v, ctx.Scratch)
		if err != nil {
			return err
		}
		next := it.Pri + 1
		for _, t := range targets {
			ctx.Push(next, t, uint64(v))
		}
		return nil
	})
	e.Start()
	e.Push(0, src, uint64(src))
	st, err := e.Wait()
	res.Stats = st
	if err != nil {
		return nil, err
	}
	return res, nil
}
