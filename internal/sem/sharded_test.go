package sem

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/ssd"
)

// writeShardBytes serializes one shard of g in the requested format.
func writeShardBytes(t testing.TB, g *graph.CSR[uint32], shard, shards int, compressed bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	var err error
	if compressed {
		err = WriteCSRShardCompressed(&buf, g, ShardConfig{Shard: shard, Shards: shards})
	} else {
		err = WriteCSRShard(&buf, g, ShardConfig{Shard: shard, Shards: shards})
	}
	if err != nil {
		t.Fatalf("write shard %d/%d (compressed=%v): %v", shard, shards, compressed, err)
	}
	return buf.Bytes()
}

// openShardSet writes and reopens a complete shard set of g.
func openShardSet(t testing.TB, g *graph.CSR[uint32], shards int, compressed bool) []*Graph[uint32] {
	t.Helper()
	gs := make([]*Graph[uint32], shards)
	for k := range gs {
		sg, err := Open[uint32](bytes.NewReader(writeShardBytes(t, g, k, shards, compressed)))
		if err != nil {
			t.Fatalf("open shard %d/%d: %v", k, shards, err)
		}
		gs[k] = sg
	}
	return gs
}

func TestShardFileName(t *testing.T) {
	if got := ShardFileName("b16.asg", 2); got != "b16.asg.shard2" {
		t.Fatalf("ShardFileName = %q", got)
	}
}

func TestShardConfigValidate(t *testing.T) {
	cases := []struct {
		cfg ShardConfig
		ok  bool
	}{
		{ShardConfig{Shard: 0, Shards: 1}, true},
		{ShardConfig{Shard: 3, Shards: 4}, true},
		{ShardConfig{Shard: 0, Shards: 0}, false},
		{ShardConfig{Shard: 0, Shards: -2}, false},
		{ShardConfig{Shard: -1, Shards: 2}, false},
		{ShardConfig{Shard: 2, Shards: 2}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.ok && err != nil {
			t.Fatalf("Validate(%+v) = %v, want nil", c.cfg, err)
		}
		if !c.ok {
			if err == nil {
				t.Fatalf("Validate(%+v) = nil, want error", c.cfg)
			}
			if !errors.Is(err, ErrShardSpec) {
				t.Fatalf("Validate(%+v) = %v, want ErrShardSpec", c.cfg, err)
			}
		}
	}
}

func TestShardMapRoundTrip(t *testing.T) {
	g := buildGraph(t, 64, 300, true, 21)
	for _, compressed := range []bool{false, true} {
		sg, err := Open[uint32](bytes.NewReader(writeShardBytes(t, g, 1, 3, compressed)))
		if err != nil {
			t.Fatalf("open (compressed=%v): %v", compressed, err)
		}
		if !sg.Sharded() || sg.Shard() != 1 || sg.Shards() != 3 {
			t.Fatalf("shard map: sharded=%v shard=%d shards=%d", sg.Sharded(), sg.Shard(), sg.Shards())
		}
		if sg.TotalEdges() != g.NumEdges() {
			t.Fatalf("TotalEdges = %d, want %d", sg.TotalEdges(), g.NumEdges())
		}
		if sg.NumEdges() >= g.NumEdges() {
			t.Fatalf("shard holds %d of %d edges; expected a strict subset", sg.NumEdges(), g.NumEdges())
		}
		if sg.Compressed() != compressed {
			t.Fatalf("Compressed = %v, want %v", sg.Compressed(), compressed)
		}
	}
	// Plain writers stay shard-free: TotalEdges falls back to the header m.
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	pg, err := Open[uint32](bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if pg.Sharded() || pg.Shards() != 0 || pg.TotalEdges() != g.NumEdges() {
		t.Fatalf("plain file: sharded=%v shards=%d total=%d", pg.Sharded(), pg.Shards(), pg.TotalEdges())
	}
}

func TestMountShardsEquivalence(t *testing.T) {
	g := buildGraph(t, 200, 1500, true, 33)
	for _, compressed := range []bool{false, true} {
		for _, shards := range []int{1, 2, 4} {
			mounted, err := MountShards(openShardSet(t, g, shards, compressed))
			if err != nil {
				t.Fatalf("MountShards(%d, compressed=%v): %v", shards, compressed, err)
			}
			if mounted.NumVertices() != g.NumVertices() || mounted.NumEdges() != g.NumEdges() {
				t.Fatalf("mount sizes: n=%d m=%d, want n=%d m=%d",
					mounted.NumVertices(), mounted.NumEdges(), g.NumVertices(), g.NumEdges())
			}
			scratch := &graph.Scratch[uint32]{}
			for v := uint32(0); uint64(v) < g.NumVertices(); v++ {
				wantTs, wantWs, _ := g.Neighbors(v, nil)
				ts, ws, err := mounted.Neighbors(v, scratch)
				if err != nil {
					t.Fatalf("Neighbors(%d): %v", v, err)
				}
				if len(ts) != len(wantTs) {
					t.Fatalf("shards=%d compressed=%v: degree(%d) = %d, want %d",
						shards, compressed, v, len(ts), len(wantTs))
				}
				for i := range ts {
					if ts[i] != wantTs[i] || ws[i] != wantWs[i] {
						t.Fatalf("shards=%d compressed=%v: edge %d of vertex %d differs",
							shards, compressed, i, v)
					}
				}
			}
		}
	}
}

func TestMountShardsMixedFormats(t *testing.T) {
	// v1 and v2 members may coexist in one mount: each decodes its own extents.
	g := buildGraph(t, 120, 700, false, 9)
	raw, err := Open[uint32](bytes.NewReader(writeShardBytes(t, g, 0, 2, false)))
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Open[uint32](bytes.NewReader(writeShardBytes(t, g, 1, 2, true)))
	if err != nil {
		t.Fatal(err)
	}
	mounted, err := MountShards([]*Graph[uint32]{raw, comp})
	if err != nil {
		t.Fatalf("mixed-format mount: %v", err)
	}
	scratch := &graph.Scratch[uint32]{}
	for v := uint32(0); uint64(v) < g.NumVertices(); v++ {
		want, _, _ := g.Neighbors(v, nil)
		got, _, err := mounted.Neighbors(v, scratch)
		if err != nil {
			t.Fatalf("Neighbors(%d): %v", v, err)
		}
		if len(got) != len(want) {
			t.Fatalf("degree(%d) = %d, want %d", v, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("edge %d of vertex %d differs", i, v)
			}
		}
	}
}

func TestMountShardsSinglePlainFile(t *testing.T) {
	g := buildGraph(t, 80, 400, false, 4)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	sg, err := Open[uint32](bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	mounted, err := MountShards([]*Graph[uint32]{sg})
	if err != nil {
		t.Fatalf("a single plain file is the 1-way partition: %v", err)
	}
	if mounted.NumShards() != 1 || mounted.NumEdges() != g.NumEdges() {
		t.Fatalf("plain mount: shards=%d m=%d", mounted.NumShards(), mounted.NumEdges())
	}
}

func TestMountShardsRejectsBadSets(t *testing.T) {
	g := buildGraph(t, 150, 900, true, 17)
	set3 := openShardSet(t, g, 3, false)
	var plainBuf bytes.Buffer
	if err := WriteCSR(&plainBuf, g); err != nil {
		t.Fatal(err)
	}
	plain, err := Open[uint32](bytes.NewReader(plainBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	other := buildGraph(t, 150, 500, true, 99)
	otherShard1, err := Open[uint32](bytes.NewReader(writeShardBytes(t, other, 1, 3, false)))
	if err != nil {
		t.Fatal(err)
	}
	smaller := buildGraph(t, 75, 300, true, 5)
	smallSet := openShardSet(t, smaller, 3, false)
	unweighted := buildGraph(t, 150, 900, false, 17)
	unweightedSet := openShardSet(t, unweighted, 3, false)

	cases := []struct {
		name string
		gs   []*Graph[uint32]
	}{
		{"empty set", nil},
		{"out of shard order", []*Graph[uint32]{set3[0], set3[2], set3[1]}},
		{"incomplete partition", []*Graph[uint32]{set3[0], set3[1]}},
		{"duplicate shard", []*Graph[uint32]{set3[0], set3[1], set3[1]}},
		{"plain file in a multi-file set", []*Graph[uint32]{set3[0], plain, set3[2]}},
		{"shard of a different graph", []*Graph[uint32]{set3[0], otherShard1, set3[2]}},
		{"vertex-count mismatch", []*Graph[uint32]{set3[0], smallSet[1], set3[2]}},
		{"weightedness mismatch", []*Graph[uint32]{set3[0], unweightedSet[1], set3[2]}},
	}
	for _, c := range cases {
		if _, err := MountShards(c.gs); err == nil {
			t.Fatalf("%s: MountShards succeeded, want error", c.name)
		} else if !errors.Is(err, ErrShardSpec) {
			t.Fatalf("%s: error %v does not wrap ErrShardSpec", c.name, err)
		}
	}
}

func TestOpenRejectsCorruptShardMap(t *testing.T) {
	g := buildGraph(t, 60, 250, false, 2)
	pristine := writeShardBytes(t, g, 0, 2, false)
	corrupt := func(mutate func(raw []byte)) error {
		raw := bytes.Clone(pristine)
		mutate(raw)
		_, err := Open[uint32](bytes.NewReader(raw))
		return err
	}
	cases := []struct {
		name   string
		mutate func(raw []byte)
	}{
		{"zero shard count", func(raw []byte) { binary.LittleEndian.PutUint32(raw[44:], 0) }},
		{"shard out of range", func(raw []byte) { binary.LittleEndian.PutUint32(raw[40:], 7) }},
		{"unknown hash id", func(raw []byte) { binary.LittleEndian.PutUint32(raw[56:], 42) }},
		{"total below shard edges", func(raw []byte) { binary.LittleEndian.PutUint64(raw[48:], 0) }},
	}
	for _, c := range cases {
		err := corrupt(c.mutate)
		if err == nil {
			t.Fatalf("%s: Open succeeded, want error", c.name)
		}
		if !errors.Is(err, ErrShardSpec) {
			t.Fatalf("%s: error %v does not wrap ErrShardSpec", c.name, err)
		}
	}
	if _, err := Open[uint32](bytes.NewReader(pristine)); err != nil {
		t.Fatalf("pristine shard file failed to open: %v", err)
	}
}

func TestLoadShardedCSR(t *testing.T) {
	g := buildGraph(t, 180, 1100, true, 41)
	for _, compressed := range []bool{false, true} {
		for _, shards := range []int{1, 2, 4} {
			stores := make([]Store, shards)
			for k := range stores {
				stores[k] = bytes.NewReader(writeShardBytes(t, g, k, shards, compressed))
			}
			got, err := LoadShardedCSR[uint32](stores)
			if err != nil {
				t.Fatalf("LoadShardedCSR(%d, compressed=%v): %v", shards, compressed, err)
			}
			if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
				t.Fatalf("sizes: n=%d m=%d, want n=%d m=%d",
					got.NumVertices(), got.NumEdges(), g.NumVertices(), g.NumEdges())
			}
			for v := uint32(0); uint64(v) < g.NumVertices(); v++ {
				wantTs, wantWs, _ := g.Neighbors(v, nil)
				ts, ws, _ := got.Neighbors(v, nil)
				if len(ts) != len(wantTs) {
					t.Fatalf("degree(%d) = %d, want %d", v, len(ts), len(wantTs))
				}
				for i := range ts {
					if ts[i] != wantTs[i] || ws[i] != wantWs[i] {
						t.Fatalf("edge %d of vertex %d differs", i, v)
					}
				}
			}
		}
	}
	// Order matters: a shuffled store list is a spec error, not silent misreads.
	stores := []Store{
		bytes.NewReader(writeShardBytes(t, g, 1, 2, false)),
		bytes.NewReader(writeShardBytes(t, g, 0, 2, false)),
	}
	if _, err := LoadShardedCSR[uint32](stores); !errors.Is(err, ErrShardSpec) {
		t.Fatalf("shuffled stores: err = %v, want ErrShardSpec", err)
	}
}

// TestShardedSEMWithDevices mounts a 4-shard set over four simulated flash
// devices with prefetching enabled and checks that batched windows fan out:
// after touching every vertex via NeighborsBatch+Neighbors, every member
// device has serviced reads and every member prefetcher has issued spans.
func TestShardedSEMWithDevices(t *testing.T) {
	g := buildGraph(t, 400, 4000, false, 55)
	const shards = 4
	devs := make([]*ssd.Device, shards)
	gs := make([]*Graph[uint32], shards)
	for k := 0; k < shards; k++ {
		devs[k] = fastDevice(&ssd.MemBacking{Data: writeShardBytes(t, g, k, shards, false)})
		sg, err := Open[uint32](devs[k])
		if err != nil {
			t.Fatal(err)
		}
		sg.EnablePrefetch(PrefetchConfig{})
		gs[k] = sg
	}
	mounted, err := MountShards(gs)
	if err != nil {
		t.Fatal(err)
	}
	scratch := &graph.Scratch[uint32]{}
	window := make([]uint32, 0, 64)
	flush := func() {
		mounted.NeighborsBatch(window, scratch)
		for _, v := range window {
			ts, _, err := mounted.Neighbors(v, scratch)
			if err != nil {
				t.Fatalf("Neighbors(%d): %v", v, err)
			}
			if len(ts) != g.Degree(v) {
				t.Fatalf("degree(%d) = %d, want %d", v, len(ts), g.Degree(v))
			}
		}
		window = window[:0]
	}
	for v := uint32(0); uint64(v) < g.NumVertices(); v++ {
		window = append(window, v)
		if len(window) == cap(window) {
			flush()
		}
	}
	flush()
	var agg PrefetchStats
	for k := 0; k < shards; k++ {
		if st := devs[k].Stats(); st.Reads == 0 {
			t.Fatalf("shard %d device serviced no reads; window fan-out broken", k)
		}
		ps := gs[k].PrefetchStats()
		if ps.Spans == 0 {
			t.Fatalf("shard %d prefetcher issued no spans", k)
		}
		agg.Add(ps)
	}
	if agg.Spans == 0 || agg.Vertices == 0 {
		t.Fatalf("aggregated prefetch stats empty: %+v", agg)
	}
}
