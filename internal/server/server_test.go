package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sem"
	"repro/internal/ssd"
)

// testStores builds the fixture the suite shares: one weighted RMAT graph
// served both in-memory and semi-externally (block-cached store on a fast
// simulated device), plus a small undirected graph for CC.
type testStores struct {
	im         *graph.CSR[uint32]
	semGraph   *sem.Graph[uint32]
	device     *ssd.Device
	blockCache *sem.CachedStore
	undirected *graph.CSR[uint32]
}

func buildStores(tb testing.TB, scale int) *testStores {
	tb.Helper()
	directed, err := gen.RMAT[uint32](scale, 8, gen.RMATA, 7)
	if err != nil {
		tb.Fatal(err)
	}
	weighted, err := gen.UniformWeights(directed, 11)
	if err != nil {
		tb.Fatal(err)
	}
	undirected, err := gen.RMATUndirected[uint32](scale-1, 8, gen.RMATA, 7)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sem.WriteCSR(&buf, weighted); err != nil {
		tb.Fatal(err)
	}
	dev := ssd.New(
		ssd.Profile{Name: "test-fast", Channels: 64, ReadLatency: 20 * time.Microsecond},
		&ssd.MemBacking{Data: buf.Bytes()},
	)
	cache, err := sem.NewCachedStore(dev, 4096, 1<<20)
	if err != nil {
		tb.Fatal(err)
	}
	sg, err := sem.Open[uint32](cache)
	if err != nil {
		tb.Fatal(err)
	}
	return &testStores{
		im:         weighted,
		semGraph:   sg,
		device:     dev,
		blockCache: cache,
		undirected: undirected,
	}
}

func newTestServer(tb testing.TB, cfg Config, st *testStores) *httptest.Server {
	tb.Helper()
	s := New(cfg)
	for _, g := range []Graph{
		{Name: "im", Adj: st.im, Storage: "im"},
		{Name: "sem", Adj: st.semGraph, Storage: "sem", Device: st.device, BlockCache: st.blockCache},
		{Name: "undirected", Adj: st.undirected, Storage: "im"},
	} {
		if err := s.AddGraph(g); err != nil {
			tb.Fatal(err)
		}
	}
	ts := httptest.NewServer(s.Handler())
	tb.Cleanup(ts.Close)
	return ts
}

func postQuery(tb testing.TB, ts *httptest.Server, req queryRequest) (*http.Response, []byte) {
	tb.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		tb.Fatal(err)
	}
	return resp, out.Bytes()
}

func decodeQuery(tb testing.TB, data []byte) *queryResponse {
	tb.Helper()
	var qr queryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		tb.Fatalf("decode %q: %v", data, err)
	}
	return &qr
}

func TestHealthzAndGraphs(t *testing.T) {
	ts := newTestServer(t, Config{Engine: core.Config{Workers: 8}}, buildStores(t, 8))

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var inv struct {
		Graphs []struct {
			Name     string `json:"name"`
			Vertices uint64 `json:"vertices"`
			Edges    uint64 `json:"edges"`
			Weighted bool   `json:"weighted"`
			Storage  string `json:"storage"`
		} `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&inv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(inv.Graphs) != 3 {
		t.Fatalf("got %d graphs, want 3", len(inv.Graphs))
	}
	// Sorted by name: im, sem, undirected. im and sem are the same graph
	// through different storage layers.
	if inv.Graphs[0].Name != "im" || inv.Graphs[1].Name != "sem" {
		t.Fatalf("graph order = %q, %q", inv.Graphs[0].Name, inv.Graphs[1].Name)
	}
	if inv.Graphs[0].Vertices != inv.Graphs[1].Vertices || inv.Graphs[0].Edges != inv.Graphs[1].Edges {
		t.Fatalf("im (%d v, %d e) and sem (%d v, %d e) disagree",
			inv.Graphs[0].Vertices, inv.Graphs[0].Edges, inv.Graphs[1].Vertices, inv.Graphs[1].Edges)
	}
	if !inv.Graphs[1].Weighted || inv.Graphs[1].Storage != "sem" {
		t.Fatalf("sem graph: weighted=%v storage=%q", inv.Graphs[1].Weighted, inv.Graphs[1].Storage)
	}
}

func TestQueryValidation(t *testing.T) {
	st := buildStores(t, 8)
	ts := newTestServer(t, Config{Engine: core.Config{Workers: 4}}, st)
	n := st.im.NumVertices()

	cases := []struct {
		name string
		req  queryRequest
		want int
	}{
		{"unknown graph", queryRequest{Graph: "nope", Kernel: "bfs"}, http.StatusNotFound},
		{"unknown kernel", queryRequest{Graph: "im", Kernel: "pagerank"}, http.StatusBadRequest},
		{"source out of range", queryRequest{Graph: "im", Kernel: "bfs", Source: n}, http.StatusBadRequest},
		{"target out of range", queryRequest{Graph: "im", Kernel: "bfs", Targets: []uint64{n + 7}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postQuery(t, ts, tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: expected JSON error body, got %q", tc.name, body)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query = %d, want 405", resp.StatusCode)
	}
}

func TestQueryTargetsMatchStandalone(t *testing.T) {
	st := buildStores(t, 8)
	ts := newTestServer(t, Config{Engine: core.Config{Workers: 8}}, st)

	want, err := core.SSSP[uint32](st.im, 1, core.Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	targets := []uint64{0, 1, 2, 100, 200}
	resp, body := postQuery(t, ts, queryRequest{Graph: "sem", Kernel: "sssp", Source: 1, Targets: targets})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	qr := decodeQuery(t, body)
	if len(qr.Targets) != len(targets) {
		t.Fatalf("got %d target states, want %d", len(qr.Targets), len(targets))
	}
	for _, ts := range qr.Targets {
		v := uint32(ts.Vertex)
		if ts.Reached != want.Reached(v) {
			t.Fatalf("vertex %d: reached=%v, standalone says %v", v, ts.Reached, want.Reached(v))
		}
		if ts.Reached && ts.Value != want.Dist[v] {
			t.Fatalf("vertex %d: dist=%d, standalone says %d", v, ts.Value, want.Dist[v])
		}
	}
	if qr.Stats.Visits == 0 || qr.Stats.Workers != 8 {
		t.Fatalf("stats = %+v, want visits > 0 and 8 workers", qr.Stats)
	}
}

func TestQueryCCSummary(t *testing.T) {
	st := buildStores(t, 8)
	ts := newTestServer(t, Config{Engine: core.Config{Workers: 8}}, st)

	want, err := core.CC[uint32](st.undirected, core.Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postQuery(t, ts, queryRequest{Graph: "undirected", Kernel: "cc", Source: 99})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	qr := decodeQuery(t, body)
	if qr.Summary == nil {
		t.Fatal("cc query returned no summary")
	}
	if qr.Summary.Components != want.NumComponents() {
		t.Fatalf("components = %d, want %d", qr.Summary.Components, want.NumComponents())
	}
	if qr.Summary.Reached != st.undirected.NumVertices() {
		t.Fatalf("cc reached = %d, want all %d vertices", qr.Summary.Reached, st.undirected.NumVertices())
	}
	if qr.Source != 0 {
		t.Fatalf("cc source normalized to %d, want 0", qr.Source)
	}
}

func TestResultCache(t *testing.T) {
	st := buildStores(t, 8)
	ts := newTestServer(t, Config{Engine: core.Config{Workers: 8}}, st)
	req := queryRequest{Graph: "im", Kernel: "bfs", Source: 3}

	resp, body := postQuery(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold query: %d %s", resp.StatusCode, body)
	}
	cold := decodeQuery(t, body)
	if cold.Cached {
		t.Fatal("first query reported cached=true")
	}

	resp, body = postQuery(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm query: %d %s", resp.StatusCode, body)
	}
	warm := decodeQuery(t, body)
	if !warm.Cached {
		t.Fatal("second identical query not served from cache")
	}
	if warm.Stats.Visits != cold.Stats.Visits {
		t.Fatalf("cached stats diverged: %d visits vs %d", warm.Stats.Visits, cold.Stats.Visits)
	}

	// no_cache must bypass both lookup and fill.
	req.NoCache = true
	resp, body = postQuery(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("no_cache query: %d %s", resp.StatusCode, body)
	}
	if decodeQuery(t, body).Cached {
		t.Fatal("no_cache query reported cached=true")
	}

	metrics := fetchMetrics(t, ts)
	cache := metrics["cache"].(map[string]any)
	if hits := cache["hits"].(float64); hits < 1 {
		t.Fatalf("cache hits = %v, want >= 1", hits)
	}
	if entries := cache["entries"].(float64); entries < 1 {
		t.Fatalf("cache entries = %v, want >= 1", entries)
	}
}

func fetchMetrics(tb testing.TB, ts *httptest.Server) map[string]any {
	tb.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		tb.Fatal(err)
	}
	return m
}

// TestConcurrentSSSPSharedSEM is the issue's acceptance test: 32 concurrent
// SSSP queries against one shared semi-external store, each under a
// per-query deadline enforced through core cancellation, all answered
// correctly, with /metrics accounting for every one of them.
func TestConcurrentSSSPSharedSEM(t *testing.T) {
	st := buildStores(t, 8)
	ts := newTestServer(t, Config{
		MaxConcurrent: 32,
		CacheEntries:  -1, // disabled: every query must traverse the store
		Engine:        core.Config{Workers: 8, Prefetch: 64},
	}, st)

	const queries = 32
	sources := make([]uint32, queries)
	wants := make([]*core.SSSPResult[uint32], queries)
	for i := range sources {
		sources[i] = uint32(i * 5)
		want, err := core.SSSP[uint32](st.im, sources[i], core.Config{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = want
	}

	var wg sync.WaitGroup
	errs := make(chan error, queries)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postQuery(t, ts, queryRequest{
				Graph:     "sem",
				Kernel:    "sssp",
				Source:    uint64(sources[i]),
				Targets:   []uint64{0, 17, 101, 255},
				TimeoutMs: 20_000,
			})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("query %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			qr := decodeQuery(t, body)
			for _, tgt := range qr.Targets {
				v := uint32(tgt.Vertex)
				if tgt.Reached != wants[i].Reached(v) {
					errs <- fmt.Errorf("query %d vertex %d: reached=%v, want %v", i, v, tgt.Reached, wants[i].Reached(v))
					return
				}
				if tgt.Reached && tgt.Value != wants[i].Dist[v] {
					errs <- fmt.Errorf("query %d vertex %d: dist=%d, want %d", i, v, tgt.Value, wants[i].Dist[v])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := fetchMetrics(t, ts)
	if total := m["queries_total"].(float64); total != queries {
		t.Fatalf("queries_total = %v, want %d", total, queries)
	}
	if inFlight := m["queries_in_flight"].(float64); inFlight != 0 {
		t.Fatalf("queries_in_flight = %v after drain, want 0", inFlight)
	}
	lat := m["latency"].(map[string]any)
	if count := lat["count"].(float64); count != queries {
		t.Fatalf("latency count = %v, want %d", count, queries)
	}
	dev := m["graphs"].(map[string]any)["sem"].(map[string]any)["device"].(map[string]any)
	if reads := dev["reads"].(float64); reads == 0 {
		t.Fatal("device reads = 0; queries did not touch the SEM store")
	}
}

// slowServerAdj delays every adjacency read so a traversal can be caught
// in flight by deadlines and admission limits.
type slowServerAdj struct {
	*graph.CSR[uint32]
	delay time.Duration
}

func (s *slowServerAdj) Neighbors(v uint32, scratch *graph.Scratch[uint32]) ([]uint32, []graph.Weight, error) {
	time.Sleep(s.delay)
	return s.CSR.Neighbors(v, scratch)
}

func slowStores(tb testing.TB, delay time.Duration) *slowServerAdj {
	return &slowServerAdj{CSR: buildStores(tb, 8).im, delay: delay}
}

func TestQueryDeadlineReturns504(t *testing.T) {
	slow := slowStores(t, 2*time.Millisecond)
	s := New(Config{CacheEntries: -1, Engine: core.Config{Workers: 2}})
	if err := s.AddGraph(Graph{Name: "slow", Adj: slow}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postQuery(t, ts, queryRequest{Graph: "slow", Kernel: "bfs", Source: 0, TimeoutMs: 30})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", resp.StatusCode, body)
	}
	m := fetchMetrics(t, ts)
	if n := m["queries_deadline_exceeded"].(float64); n != 1 {
		t.Fatalf("queries_deadline_exceeded = %v, want 1", n)
	}
}

func TestAdmissionShedsLoad(t *testing.T) {
	slow := slowStores(t, time.Millisecond)
	s := New(Config{
		MaxConcurrent: 1,
		MaxQueue:      1,
		QueueTimeout:  5 * time.Millisecond,
		CacheEntries:  -1,
		Engine:        core.Config{Workers: 2},
	})
	if err := s.AddGraph(Graph{Name: "slow", Adj: slow}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One slot, one queue seat, short queue timeout: a burst of slow queries
	// must see some mix of 429 (queue full) and 503 (queue timeout).
	const burst = 8
	var wg sync.WaitGroup
	codes := make(chan int, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postQuery(t, ts, queryRequest{Graph: "slow", Kernel: "bfs", Source: 0, TimeoutMs: 10_000})
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(codes)
	var ok, shed int
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			shed++
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if ok == 0 {
		t.Fatal("no query got through admission")
	}
	if shed == 0 {
		t.Fatal("burst of 8 over a 1-slot/1-seat server shed nothing")
	}
	m := fetchMetrics(t, ts)
	rejected := m["queries_rejected"].(float64)
	timedOut := m["queries_queue_timeout"].(float64)
	if rejected+timedOut == 0 {
		t.Fatalf("metrics: rejected=%v queue_timeout=%v, want their sum > 0", rejected, timedOut)
	}
}

func TestAddGraphValidation(t *testing.T) {
	st := buildStores(t, 8)
	s := New(Config{})
	if err := s.AddGraph(Graph{Name: "", Adj: st.im}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := s.AddGraph(Graph{Name: "g"}); err == nil {
		t.Fatal("nil adjacency accepted")
	}
	if err := s.AddGraph(Graph{Name: "g", Adj: st.im}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddGraph(Graph{Name: "g", Adj: st.im}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

// buildShardedGraph writes st.im as a `shards`-way partition, each member on
// its own block-cached simulated device, and assembles the server.Graph the
// way cmd/serve does for a sharded mount.
func buildShardedGraph(tb testing.TB, name string, g *graph.CSR[uint32], shards int) Graph {
	tb.Helper()
	devs := make([]*ssd.Device, shards)
	caches := make([]*sem.CachedStore, shards)
	sgs := make([]*sem.Graph[uint32], shards)
	for k := 0; k < shards; k++ {
		var buf bytes.Buffer
		if err := sem.WriteCSRShard(&buf, g, sem.ShardConfig{Shard: k, Shards: shards}); err != nil {
			tb.Fatal(err)
		}
		devs[k] = ssd.New(
			ssd.Profile{Name: "test-fast", Channels: 64, ReadLatency: 20 * time.Microsecond},
			&ssd.MemBacking{Data: buf.Bytes()},
		)
		cache, err := sem.NewCachedStore(devs[k], 4096, 1<<20)
		if err != nil {
			tb.Fatal(err)
		}
		caches[k] = cache
		if sgs[k], err = sem.Open[uint32](cache); err != nil {
			tb.Fatal(err)
		}
		sgs[k].EnablePrefetch(sem.PrefetchConfig{})
	}
	mounted, err := sem.MountShards(sgs)
	if err != nil {
		tb.Fatal(err)
	}
	return Graph{
		Name: name, Adj: mounted, Storage: "sem",
		Devices: devs, BlockCaches: caches, Shards: shards,
	}
}

// TestConcurrentQueriesShardedSEM serves a 3-shard SEM mount to many
// concurrent readers: results must match the in-memory baseline, /v1/graphs
// must advertise the shard count, and /metrics must show every member device
// reading (the pop-window fan-out observed end to end).
func TestConcurrentQueriesShardedSEM(t *testing.T) {
	st := buildStores(t, 8)
	const shards = 3
	s := New(Config{
		MaxConcurrent: 16,
		CacheEntries:  -1, // disabled: every query must traverse the stores
		Engine:        core.Config{Workers: 8, Prefetch: 64},
	})
	if err := s.AddGraph(buildShardedGraph(t, "sharded", st.im, shards)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	const queries = 24
	sources := make([]uint32, queries)
	wants := make([]*core.SSSPResult[uint32], queries)
	for i := range sources {
		sources[i] = uint32(i * 7)
		want, err := core.SSSP[uint32](st.im, sources[i], core.Config{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = want
	}

	var wg sync.WaitGroup
	errs := make(chan error, queries)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postQuery(t, ts, queryRequest{
				Graph:     "sharded",
				Kernel:    "sssp",
				Source:    uint64(sources[i]),
				Targets:   []uint64{0, 17, 101, 255},
				TimeoutMs: 20_000,
			})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("query %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			qr := decodeQuery(t, body)
			for _, tgt := range qr.Targets {
				v := uint32(tgt.Vertex)
				if tgt.Reached != wants[i].Reached(v) {
					errs <- fmt.Errorf("query %d vertex %d: reached=%v, want %v", i, v, tgt.Reached, wants[i].Reached(v))
					return
				}
				if tgt.Reached && tgt.Value != wants[i].Dist[v] {
					errs <- fmt.Errorf("query %d vertex %d: dist=%d, want %d", i, v, tgt.Value, wants[i].Dist[v])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	resp, err := http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Graphs []struct {
			Name    string `json:"name"`
			Storage string `json:"storage"`
			Shards  int    `json:"shards"`
		} `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Graphs) != 1 || listing.Graphs[0].Name != "sharded" ||
		listing.Graphs[0].Storage != "sem" || listing.Graphs[0].Shards != shards {
		t.Fatalf("/v1/graphs = %+v, want one sem graph with %d shards", listing.Graphs, shards)
	}

	m := fetchMetrics(t, ts)
	gv := m["graphs"].(map[string]any)["sharded"].(map[string]any)
	if got := gv["shards"].(float64); got != shards {
		t.Fatalf("metrics shards = %v, want %d", got, shards)
	}
	if reads := gv["device"].(map[string]any)["reads"].(float64); reads == 0 {
		t.Fatal("aggregate device reads = 0; queries did not touch the SEM stores")
	}
	perShard := gv["shard_devices"].([]any)
	if len(perShard) != shards {
		t.Fatalf("shard_devices has %d entries, want %d", len(perShard), shards)
	}
	for k, sv := range perShard {
		if reads := sv.(map[string]any)["reads"].(float64); reads == 0 {
			t.Fatalf("shard %d device reads = 0; window fan-out never reached it", k)
		}
	}
	if bc := gv["shard_block_caches"].([]any); len(bc) != shards {
		t.Fatalf("shard_block_caches has %d entries, want %d", len(bc), shards)
	}
}

// TestDirectionServing covers the hybrid serving path end to end: a server
// whose engine direction is hybrid must reject direction-incapable graphs at
// AddGraph, serve BFS through the phase driver with per-graph thresholds,
// report the phase counters in the query stats, and accumulate them under
// /metrics "direction".
func TestDirectionServing(t *testing.T) {
	st := buildStores(t, 8)
	s := New(Config{Engine: core.Config{Workers: 4, Direction: core.DirectionHybrid}})

	if err := s.AddGraph(Graph{Name: "plain", Adj: st.im, Storage: "im"}); err == nil {
		t.Fatal("AddGraph accepted a direction-incapable graph under hybrid")
	}

	rev, err := graph.Transpose(st.im)
	if err != nil {
		t.Fatal(err)
	}
	bidi, err := graph.NewBidi[uint32](st.im, rev)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddGraph(Graph{Name: "im", Adj: bidi, Storage: "im"}); err != nil {
		t.Fatal(err)
	}
	if g := s.graph("im"); g.Alpha <= 0 || g.Beta <= 0 {
		t.Fatalf("AddGraph left thresholds underived: alpha=%d beta=%d", g.Alpha, g.Beta)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := postQuery(t, ts, queryRequest{Graph: "im", Kernel: "bfs", Source: 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	qr := decodeQuery(t, body)
	if qr.Stats.TopDownPhases+qr.Stats.BottomUpPhases == 0 {
		t.Fatalf("hybrid query reported no phases: %+v", qr.Stats)
	}
	if qr.Stats.PeakFrontier == 0 {
		t.Fatal("hybrid query reported zero peak frontier")
	}

	// The traversal must agree with the pure top-down kernel.
	want, err := core.BFS[uint32](st.im, 0, core.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, sumBody := postQuery(t, ts, queryRequest{Graph: "im", Kernel: "bfs", Source: 0, NoCache: true})
	sum := decodeQuery(t, sumBody).Summary
	var reached uint64
	for _, l := range want.Level {
		if l != graph.InfDist {
			reached++
		}
	}
	if sum == nil || sum.Reached != reached {
		t.Fatalf("hybrid summary reached=%v, top-down kernel reached %d", sum, reached)
	}

	var metrics struct {
		Direction struct {
			Mode     string `json:"mode"`
			TopDown  uint64 `json:"topdown_phases"`
			BottomUp uint64 `json:"bottomup_phases"`
			Peak     uint64 `json:"peak_frontier"`
		} `json:"direction"`
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Direction.Mode != "hybrid" {
		t.Fatalf("metrics direction mode = %q, want hybrid", metrics.Direction.Mode)
	}
	if metrics.Direction.TopDown+metrics.Direction.BottomUp == 0 || metrics.Direction.Peak == 0 {
		t.Fatalf("metrics direction counters empty: %+v", metrics.Direction)
	}
}
