package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// queryReader marshals a query body for requests that need custom headers.
func queryReader(tb testing.TB, req queryRequest) *bytes.Reader {
	tb.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		tb.Fatal(err)
	}
	return bytes.NewReader(body)
}

// waitForQueueDepth spins until the admission queue holds want waiters; the
// enqueue happens on another goroutine, so tests must not race it.
func waitForQueueDepth(tb testing.TB, a *admission, want int64) {
	tb.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.QueueDepth() != want {
		if time.Now().After(deadline) {
			tb.Fatalf("queue depth never reached %d (at %d)", want, a.QueueDepth())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestAdmissionPriorityOrdering(t *testing.T) {
	a := newAdmission(&Config{MaxConcurrent: 1, MaxQueue: 8, QueueTimeout: 5 * time.Second})
	if err := a.acquire(context.Background(), ClassBronze, time.Time{}); err != nil {
		t.Fatal(err)
	}

	// Park one waiter per class, worst class first so arrival order and
	// priority order disagree.
	order := make(chan SLOClass, 4)
	var wg sync.WaitGroup
	for i, class := range []SLOClass{ClassBatch, ClassBronze, ClassSilver, ClassGold} {
		wg.Add(1)
		go func(class SLOClass) {
			defer wg.Done()
			if err := a.acquire(context.Background(), class, time.Time{}); err != nil {
				t.Errorf("class %v: %v", class, err)
				return
			}
			order <- class
			a.release(time.Millisecond)
		}(class)
		waitForQueueDepth(t, a, int64(i+1))
	}
	a.release(time.Millisecond) // free the seed slot; waiters drain one at a time
	wg.Wait()
	close(order)

	want := []SLOClass{ClassGold, ClassSilver, ClassBronze, ClassBatch}
	i := 0
	for got := range order {
		if got != want[i] {
			t.Fatalf("admission %d went to class %v, want %v", i, got, want[i])
		}
		i++
	}
}

func TestAdmissionEDFWithinClass(t *testing.T) {
	a := newAdmission(&Config{MaxConcurrent: 1, MaxQueue: 8, QueueTimeout: 5 * time.Second})
	if err := a.acquire(context.Background(), ClassBronze, time.Time{}); err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(time.Hour)
	order := make(chan time.Duration, 3)
	var wg sync.WaitGroup
	for i, off := range []time.Duration{3 * time.Second, time.Second, 2 * time.Second} {
		wg.Add(1)
		go func(off time.Duration) {
			defer wg.Done()
			if err := a.acquire(context.Background(), ClassBronze, base.Add(off)); err != nil {
				t.Errorf("offset %v: %v", off, err)
				return
			}
			order <- off
			a.release(time.Millisecond)
		}(off)
		waitForQueueDepth(t, a, int64(i+1))
	}
	a.release(time.Millisecond)
	wg.Wait()
	close(order)

	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	i := 0
	for got := range order {
		if got != want[i] {
			t.Fatalf("admission %d had deadline offset %v, want %v (earliest first)", i, got, want[i])
		}
		i++
	}
}

func TestAdmissionDisplacesWorstWhenFull(t *testing.T) {
	a := newAdmission(&Config{MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: 5 * time.Second})
	if err := a.acquire(context.Background(), ClassGold, time.Time{}); err != nil {
		t.Fatal(err)
	}

	batchErr := make(chan error, 1)
	go func() { batchErr <- a.acquire(context.Background(), ClassBatch, time.Time{}) }()
	waitForQueueDepth(t, a, 1)

	// Queue is full of batch; a gold arrival must displace it, not get 429.
	goldDone := make(chan error, 1)
	go func() { goldDone <- a.acquire(context.Background(), ClassGold, time.Now().Add(time.Minute)) }()

	if err := <-batchErr; !errors.Is(err, ErrOverloaded) {
		t.Fatalf("displaced batch waiter got %v, want ErrOverloaded", err)
	}
	a.release(time.Millisecond)
	if err := <-goldDone; err != nil {
		t.Fatalf("gold acquire after displacement: %v", err)
	}
	a.release(time.Millisecond)

	// And the mirror case: a batch arrival must not displace anyone.
	if err := a.acquire(context.Background(), ClassGold, time.Time{}); err != nil {
		t.Fatal(err)
	}
	go func() { batchErr <- a.acquire(context.Background(), ClassBronze, time.Time{}) }()
	waitForQueueDepth(t, a, 1)
	if err := a.acquire(context.Background(), ClassBatch, time.Time{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("batch arrival on a full queue got %v, want ErrOverloaded", err)
	}
	a.release(time.Millisecond)
	if err := <-batchErr; err != nil {
		t.Fatal(err)
	}
	a.release(time.Millisecond)
}

func TestAdmissionFIFONeverDisplaces(t *testing.T) {
	a := newAdmission(&Config{MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: 5 * time.Second, Admission: AdmitFIFO})
	if err := a.acquire(context.Background(), ClassBatch, time.Time{}); err != nil {
		t.Fatal(err)
	}
	parked := make(chan error, 1)
	go func() { parked <- a.acquire(context.Background(), ClassBatch, time.Time{}) }()
	waitForQueueDepth(t, a, 1)
	if err := a.acquire(context.Background(), ClassGold, time.Now().Add(time.Minute)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("gold on a full FIFO queue got %v, want ErrOverloaded (no displacement)", err)
	}
	a.release(time.Millisecond)
	if err := <-parked; err != nil {
		t.Fatal(err)
	}
	a.release(time.Millisecond)
}

func TestAdmissionDeadlineShedImmediate(t *testing.T) {
	a := newAdmission(&Config{MaxConcurrent: 1, MaxQueue: 8, QueueTimeout: 5 * time.Second, Shedding: ShedDeadline})

	// Cold server: no service observations, so nothing is shed even with a
	// hopeless deadline — admit-and-try is the cold policy.
	if err := a.acquire(context.Background(), ClassBronze, time.Time{}); err != nil {
		t.Fatal(err)
	}
	a.release(50 * time.Millisecond) // seeds the EWMA at 50ms

	// Occupy the slot, then offer a request whose whole budget is below the
	// estimated wait: it must be shed now, not after queueTimeout.
	if err := a.acquire(context.Background(), ClassBronze, time.Time{}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := a.acquire(context.Background(), ClassBronze, start.Add(time.Millisecond))
	if !errors.Is(err, ErrDeadlineShed) {
		t.Fatalf("hopeless deadline got %v, want ErrDeadlineShed", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("shed decision took %v, want immediate", waited)
	}
	// A deadline that fits the estimate is queued, not shed.
	fits := make(chan error, 1)
	go func() { fits <- a.acquire(context.Background(), ClassBronze, time.Now().Add(time.Minute)) }()
	waitForQueueDepth(t, a, 1)
	a.release(50 * time.Millisecond)
	if err := <-fits; err != nil {
		t.Fatal(err)
	}
	a.release(50 * time.Millisecond)

	if got := a.shedded.Load(); got != 1 {
		t.Fatalf("shedded = %d, want 1", got)
	}
}

func TestAdmissionQueueTimeout(t *testing.T) {
	a := newAdmission(&Config{MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: 5 * time.Millisecond})
	if err := a.acquire(context.Background(), ClassBronze, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(context.Background(), ClassBronze, time.Time{}); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("starved waiter got %v, want ErrQueueTimeout", err)
	}
	a.release(time.Millisecond)
}

// TestOverloadRejectReasons drives the overload paths end to end over HTTP
// and checks the status code and X-Reject-Reason header for each.
func TestOverloadRejectReasons(t *testing.T) {
	slow := slowStores(t, 200*time.Microsecond)
	s := New(Config{
		MaxConcurrent: 1,
		MaxQueue:      1,
		QueueTimeout:  50 * time.Millisecond,
		CacheEntries:  -1,
		Engine:        core.Config{Workers: 2},
	})
	if err := s.AddGraph(Graph{Name: "slow", Adj: slow}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Warm the EWMA so deadline shedding has an estimate to work with.
	if resp, body := postQuery(t, ts, queryRequest{Graph: "slow", Kernel: "bfs", Source: 0}); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup: %d %s", resp.StatusCode, body)
	}

	// Hold the only slot and the only queue seat with slow queries.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postQuery(t, ts, queryRequest{Graph: "slow", Kernel: "bfs", Source: 0, TimeoutMs: 10_000})
		}()
	}
	for s.admit.InFlight() != 1 || s.admit.QueueDepth() != 1 {
		time.Sleep(100 * time.Microsecond)
	}

	// Full queue, batch arrival: 429 queue-full (cannot displace the
	// queued anon/bronze waiter).
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", queryReader(t, queryRequest{Graph: "slow", Kernel: "bfs", Source: 0, TimeoutMs: 10_000}))
	req.Header.Set(ClassHeader, "batch")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get(RejectReasonHeader) != "queue-full" {
		t.Fatalf("full queue: status %d reason %q, want 429 queue-full", resp.StatusCode, resp.Header.Get(RejectReasonHeader))
	}

	// Budget below the estimated wait: immediate 503 deadline-shed.
	start := time.Now()
	resp2, _ := postQuery(t, ts, queryRequest{Graph: "slow", Kernel: "bfs", Source: 0, TimeoutMs: 1})
	if resp2.StatusCode != http.StatusServiceUnavailable || resp2.Header.Get(RejectReasonHeader) != "deadline-shed" {
		t.Fatalf("hopeless budget: status %d reason %q, want 503 deadline-shed", resp2.StatusCode, resp2.Header.Get(RejectReasonHeader))
	}
	if waited := time.Since(start); waited > 40*time.Millisecond {
		t.Fatalf("deadline shed took %v, want immediate (queue timeout is 50ms)", waited)
	}
	wg.Wait()

	m := fetchMetrics(t, ts)
	adm := m["admission"].(map[string]any)
	if adm["queue_full"].(float64) < 1 {
		t.Fatalf("admission.queue_full = %v, want >= 1", adm["queue_full"])
	}
	if adm["deadline_shed"].(float64) < 1 {
		t.Fatalf("admission.deadline_shed = %v, want >= 1", adm["deadline_shed"])
	}
	classes := adm["classes"].(map[string]any)
	if classes["batch"].(map[string]any)["rejected"].(float64) < 1 {
		t.Fatalf("admission.classes.batch.rejected = %v, want >= 1", classes["batch"])
	}
	wait := adm["queue_wait"].(map[string]any)
	if wait["count"].(float64) < 1 {
		t.Fatalf("admission.queue_wait.count = %v, want >= 1", wait["count"])
	}
}

// TestQueueTimeoutReturns503 starves a queued request past QueueTimeout.
func TestQueueTimeoutReturns503(t *testing.T) {
	slow := slowStores(t, time.Millisecond)
	s := New(Config{
		MaxConcurrent: 1,
		MaxQueue:      4,
		QueueTimeout:  5 * time.Millisecond,
		Shedding:      ShedOff,
		CacheEntries:  -1,
		Engine:        core.Config{Workers: 2},
	})
	if err := s.AddGraph(Graph{Name: "slow", Adj: slow}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	hold := make(chan struct{})
	go func() {
		postQuery(t, ts, queryRequest{Graph: "slow", Kernel: "bfs", Source: 0, TimeoutMs: 10_000})
		close(hold)
	}()
	for s.admit.InFlight() != 1 {
		time.Sleep(100 * time.Microsecond)
	}
	resp, _ := postQuery(t, ts, queryRequest{Graph: "slow", Kernel: "bfs", Source: 0, TimeoutMs: 10_000})
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get(RejectReasonHeader) != "queue-timeout" {
		t.Fatalf("starved waiter: status %d reason %q, want 503 queue-timeout", resp.StatusCode, resp.Header.Get(RejectReasonHeader))
	}
	<-hold
}

func TestRateLimitPerTenant(t *testing.T) {
	st := buildStores(t, 8)
	s := New(Config{
		CacheEntries: -1,
		RateLimit:    RateLimitConfig{Rate: 0.001, Burst: 1, Tenants: map[string]TenantLimit{"vip": {Rate: 1000, Burst: 1000}}},
		Engine:       core.Config{Workers: 4},
	})
	if err := s.AddGraph(Graph{Name: "im", Adj: st.im}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	send := func(tenant string) *http.Response {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", queryReader(t, queryRequest{Graph: "im", Kernel: "bfs", Source: 0}))
		req.Header.Set(TenantHeader, tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		return resp
	}

	// Default bucket: burst 1 at a glacial refill — first request passes,
	// the second is limited.
	if resp := send("slowpoke"); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d, want 200", resp.StatusCode)
	}
	resp := send("slowpoke")
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get(RejectReasonHeader) != "rate-limit" {
		t.Fatalf("second request: status %d reason %q, want 429 rate-limit", resp.StatusCode, resp.Header.Get(RejectReasonHeader))
	}
	// Tenant isolation: another tenant's bucket is untouched, and the vip
	// override grants far more than the default.
	if resp := send("other"); resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant's first request: %d, want 200 (buckets must be per-tenant)", resp.StatusCode)
	}
	for i := 0; i < 5; i++ {
		if resp := send("vip"); resp.StatusCode != http.StatusOK {
			t.Fatalf("vip request %d: %d, want 200 (override)", i, resp.StatusCode)
		}
	}
	m := fetchMetrics(t, ts)
	if n := m["queries_rate_limited"].(float64); n < 1 {
		t.Fatalf("queries_rate_limited = %v, want >= 1", n)
	}
	rl := m["rate_limit"].(map[string]any)
	if rl["enabled"] != true {
		t.Fatalf("rate_limit.enabled = %v, want true", rl["enabled"])
	}
}

// TestCacheKeyIncludesDirection pins the regression where identical queries
// against servers with different BFS direction policies shared a cache slot:
// parent trees differ between top-down and bottom-up/hybrid runs, so the
// direction must be part of the key.
func TestCacheKeyIncludesDirection(t *testing.T) {
	st := buildStores(t, 6)
	g := &Graph{Name: "g", Adj: st.im}
	req := &queryRequest{Graph: "g", Kernel: "bfs", Source: 3}

	td := New(Config{Engine: core.Config{Direction: core.DirectionTopDown}})
	hy := New(Config{Engine: core.Config{Direction: core.DirectionHybrid}})
	kTD := td.cacheKeyFor(req, g)
	kHY := hy.cacheKeyFor(req, g)
	if kTD == kHY {
		t.Fatalf("cache keys collide across directions: %+v", kTD)
	}
	if kTD != td.cacheKeyFor(req, g) {
		t.Fatal("cache key is not stable for identical queries")
	}
}
