package core

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/invariant"
)

// This file is the engine's reuse layer, built for long-lived serving
// processes (internal/server): a single traversal allocates per-worker
// visitor queues, mailbox outboxes, and adjacency scratch, which for the
// repository defaults (hundreds of workers, KiB-scale scratch blocks) is the
// dominant steady-state allocation of a query. EnginePool recycles those
// resources across traversals so a query service reaches a zero-allocation
// steady state on everything except the result arrays themselves.

// engineRes is the recyclable per-worker state of one engine run: the
// visitor queues (mailboxes), the batching outboxes, and the adjacency
// scratch buffers. A resource set is built for one normalized Config and may
// only be reused under the same Workers/Queue/Batch settings.
// workerStats is one worker's hot visit/push counters. The cells live in one
// contiguous array (engineRes.stats), so without padding adjacent workers'
// counters would share cache lines and every increment would ping-pong the
// line between cores; the pad gives each worker a 64-byte line of its own.
type workerStats struct {
	visits uint64
	pushes uint64
	_      [48]byte
}

type engineRes[V graph.Vertex] struct {
	queues  []*workQueue
	scratch []*graph.Scratch[V]
	stats   []workerStats
	outs    []*outbox // nil when batching is disabled (Batch == 1)

	// pooled marks a set currently sitting on the free list. Only consulted
	// under `-tags invariants`, where releasing a set twice — which would let
	// two concurrent traversals share queues — panics instead of corrupting
	// both traversals. Reads and writes are single-threaded: exactly one
	// goroutine holds a set between acquire and release.
	pooled bool
}

func newEngineRes[V graph.Vertex](cfg Config) *engineRes[V] {
	r := &engineRes[V]{
		queues:  make([]*workQueue, cfg.Workers),
		scratch: make([]*graph.Scratch[V], cfg.Workers),
		stats:   make([]workerStats, cfg.Workers),
	}
	for i := range r.queues {
		q := &workQueue{heap: cfg.newQueue()}
		q.cond.L = &q.mu
		r.queues[i] = q
		r.scratch[i] = &graph.Scratch[V]{}
	}
	if cfg.Batch > 1 {
		r.outs = make([]*outbox, cfg.Workers)
		for i := range r.outs {
			r.outs[i] = newOutbox(r.queues, cfg.Batch)
		}
	}
	return r
}

// reset returns the resource set to its pristine state: outbox buffers are
// discarded first (an aborted worker can exit holding undelivered visitors),
// then the queues are emptied and reopened. Scratch keeps its decode buffers
// — reusing them is the point — but drops any storage-backend prefetch
// session, which is tied to the graph of the previous run.
func (r *engineRes[V]) reset() {
	for _, o := range r.outs {
		o.reset()
	}
	for _, q := range r.queues {
		q.mu.Lock()
		q.heap.Reset()
		q.done = false
		q.mu.Unlock()
	}
	for _, s := range r.scratch {
		s.Prefetch = nil
	}
	for i := range r.stats {
		r.stats[i] = workerStats{} // counters belong to the finished traversal
	}
	if invariant.Enabled {
		r.assertPristine()
	}
}

// assertPristine panics unless the resource set is in its post-reset state:
// every queue empty and reopened, every outbox buffer empty. A dirty set
// re-entering the pool would leak visitors from one traversal into the next
// — a cross-query correctness breach that manifests as wrong labels long
// after the offending query finished. Called from reset under
// `-tags invariants`; exercised directly by tests.
func (r *engineRes[V]) assertPristine() {
	for i, q := range r.queues {
		q.mu.Lock()
		n, done := q.heap.Len(), q.done
		q.mu.Unlock()
		if n != 0 {
			invariant.Failf("engine pool: recycled queue %d still holds %d visitors after reset", i, n)
		}
		if done {
			invariant.Failf("engine pool: recycled queue %d still marked done after reset", i)
		}
	}
	for i, o := range r.outs {
		for owner, buf := range o.bufs {
			if len(buf) != 0 {
				invariant.Failf("engine pool: recycled outbox %d still buffers %d visitors for owner %d after reset", i, len(buf), owner)
			}
		}
	}
}

// EnginePool runs traversals on recycled engine resources. It is safe for
// concurrent use: each traversal acquires its own resource set (allocating
// one only when the free list is empty), and Wait returns the set after
// resetting it. The pool is unbounded — a serving layer bounds it implicitly
// by bounding concurrent traversals (admission control).
//
// All traversals run under the pool's Config; the per-query knob is the
// context passed to BFS/SSSP/CC, which cancels that traversal alone.
type EnginePool[V graph.Vertex] struct {
	cfg  Config
	mu   sync.Mutex
	free []*engineRes[V]

	acquires atomic.Uint64
	reuses   atomic.Uint64
}

// NewEnginePool creates a pool whose traversals all run under cfg
// (normalized once, here). cfg.Context is ignored; contexts are per-query.
func NewEnginePool[V graph.Vertex](cfg Config) *EnginePool[V] {
	cfg.normalize()
	cfg.Context = nil
	return &EnginePool[V]{cfg: cfg}
}

// Config reports the pool's normalized engine configuration.
func (p *EnginePool[V]) Config() Config { return p.cfg }

// Idle reports the number of resource sets currently on the free list.
func (p *EnginePool[V]) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Reuses reports how many acquisitions were served from the free list versus
// total acquisitions, the pool's effectiveness counters.
func (p *EnginePool[V]) Reuses() (reused, total uint64) {
	return p.reuses.Load(), p.acquires.Load()
}

func (p *EnginePool[V]) acquire() *engineRes[V] {
	p.acquires.Add(1)
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		p.reuses.Add(1)
		if invariant.Enabled {
			r.pooled = false
		}
		return r
	}
	p.mu.Unlock()
	return newEngineRes[V](p.cfg)
}

func (p *EnginePool[V]) release(r *engineRes[V]) {
	if invariant.Enabled {
		if r.pooled {
			invariant.Failf("engine pool: resource set released twice (two traversals would share queues)")
		}
		r.pooled = true
	}
	r.reset()
	p.mu.Lock()
	p.free = append(p.free, r)
	p.mu.Unlock()
}

// queryCfg is the pool configuration specialized to one query's context.
func (p *EnginePool[V]) queryCfg(ctx context.Context) Config {
	cfg := p.cfg
	cfg.Context = ctx
	return cfg
}

// BFS runs a breadth-first search on recycled resources; see the package
// function BFS. ctx cancels the traversal (Config.Context).
func (p *EnginePool[V]) BFS(ctx context.Context, g graph.Adjacency[V], src V) (*BFSResult[V], error) {
	return bfsKernel(g, src, p.queryCfg(ctx), p)
}

// SSSP runs single-source shortest paths on recycled resources; see the
// package function SSSP. ctx cancels the traversal (Config.Context).
func (p *EnginePool[V]) SSSP(ctx context.Context, g graph.Adjacency[V], src V) (*SSSPResult[V], error) {
	return ssspKernel(g, src, p.queryCfg(ctx), p)
}

// CC computes connected components on recycled resources; see the package
// function CC. ctx cancels the traversal (Config.Context).
func (p *EnginePool[V]) CC(ctx context.Context, g graph.Adjacency[V]) (*CCResult[V], error) {
	return ccKernel(g, p.queryCfg(ctx), p)
}
