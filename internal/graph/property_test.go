package graph

import (
	"testing"
	"testing/quick"
)

// Property: a CSR built from any edge list contains exactly the input edges
// (after dedup) and offsets are consistent with per-vertex degrees.
func TestQuickBuildRoundTrip(t *testing.T) {
	type rawEdge struct{ S, D uint8 }
	f := func(raw []rawEdge) bool {
		const n = 256
		in := make([]Edge[uint32], len(raw))
		set := make(map[[2]uint32]bool)
		for i, e := range raw {
			in[i] = Edge[uint32]{Src: uint32(e.S), Dst: uint32(e.D)}
			set[[2]uint32{uint32(e.S), uint32(e.D)}] = true
		}
		g, err := FromEdges(n, false, true, in)
		if err != nil {
			return false
		}
		if g.NumEdges() != uint64(len(set)) {
			return false
		}
		// Every stored edge must be in the input set, sorted per vertex.
		okAll := true
		g.ForEachEdge(func(u, v uint32, _ Weight) {
			if !set[[2]uint32{u, v}] {
				okAll = false
			}
		})
		if !okAll {
			return false
		}
		// Offsets sum check.
		total := 0
		for v := uint32(0); v < n; v++ {
			total += g.Degree(v)
		}
		return uint64(total) == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: symmetrize yields a symmetric adjacency relation.
func TestQuickSymmetrizeIsSymmetric(t *testing.T) {
	type rawEdge struct{ S, D uint8 }
	f := func(raw []rawEdge) bool {
		const n = 256
		b := NewBuilder[uint32](n, false)
		for _, e := range raw {
			b.AddEdge(uint32(e.S), uint32(e.D), 1)
		}
		b.Symmetrize()
		g, err := b.Build(true)
		if err != nil {
			return false
		}
		adj := make(map[[2]uint32]bool)
		g.ForEachEdge(func(u, v uint32, _ Weight) { adj[[2]uint32{u, v}] = true })
		for e := range adj {
			if e[0] != e[1] && !adj[[2]uint32{e[1], e[0]}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
