package sem_test

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sem"
	"repro/internal/ssd"
)

// The semi-external workflow: serialize a graph, mount it on a simulated
// flash device behind the block cache, and traverse it with vertex state in
// RAM.
func Example() {
	b := graph.NewBuilder[uint32](4, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	g, err := b.Build(true)
	if err != nil {
		log.Fatal(err)
	}

	var file bytes.Buffer
	if err := sem.WriteCSR(&file, g); err != nil {
		log.Fatal(err)
	}

	// A fast test profile; production code uses ssd.FusionIO etc.
	dev := ssd.New(ssd.Profile{Name: "test", Channels: 4, ReadLatency: time.Microsecond},
		&ssd.MemBacking{Data: file.Bytes()})
	cache, err := sem.NewCachedStoreRA(dev, 4096, 64*1024, 8)
	if err != nil {
		log.Fatal(err)
	}
	sg, err := sem.Open[uint32](cache)
	if err != nil {
		log.Fatal(err)
	}

	res, err := core.BFS[uint32](sg, 0, core.Config{Workers: 8, SemiSort: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Level, sg.NumEdges())
	// Output: [0 1 2 3] 3
}

func ExampleWriteCSR() {
	b := graph.NewBuilder[uint32](2, true)
	b.AddEdge(0, 1, 9)
	g, err := b.Build(true)
	if err != nil {
		log.Fatal(err)
	}
	var file bytes.Buffer
	if err := sem.WriteCSR(&file, g); err != nil {
		log.Fatal(err)
	}
	back, err := sem.LoadCSR[uint32](&ssd.MemBacking{Data: file.Bytes()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(back.NumVertices(), back.NumEdges(), back.EdgeWeight(0, 0))
	// Output: 2 1 9
}
