package core
