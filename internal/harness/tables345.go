package harness

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sem"
	"repro/internal/ssd"
)

// ccInput is one undirected workload row for Table III / Table V.
type ccInput struct {
	Name  string
	Graph *graph.CSR[uint32]
}

func ccInputs(o Options, includeWeb bool) ([]ccInput, error) {
	var inputs []ccInput
	for _, variant := range rmatVariants {
		for _, scale := range o.Scales {
			g, err := gen.RMATUndirected[uint32](scale, o.Degree, variant.Params, o.Seed)
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, ccInput{
				Name:  fmt.Sprintf("%s 2^%d", variant.Name, scale),
				Graph: g,
			})
		}
	}
	if includeWeb {
		// Stand-ins for the paper's web traces (sk-2005, uk-union, ...):
		// preferential attachment with community-local links.
		for i, n := range []uint64{1 << o.WebScale, 1 << (o.WebScale + 1)} {
			g, err := gen.WebGraph[uint32](n, 4, 2, o.Seed+uint64(i))
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, ccInput{
				Name:  fmt.Sprintf("web-%d", n),
				Graph: g,
			})
		}
	}
	return inputs, nil
}

// Table3 reproduces the in-memory connected-components comparison of
// Table III: serial BGL, MTGL-class synchronous label propagation, the
// asynchronous engine, and the PBGL-class BSP cluster, on undirected RMAT
// graphs and web-like graphs.
func Table3(o Options) (*Table, error) {
	t := &Table{
		Title: "Table III: In-Memory Connected Components",
		Note:  "undirected (symmetrized) graphs; web rows stand in for the paper's real web traces",
		Cols:  []string{"graph", "verts", "edges", "#CCs", "BGL(s)", "MTGL(s)", "spd"},
	}
	for _, th := range o.Threads {
		t.Cols = append(t.Cols, fmt.Sprintf("async%d(s)", th))
	}
	t.Cols = append(t.Cols, "scal", "spdBGL", "PBGL(s)")

	inputs, err := ccInputs(o, true)
	if err != nil {
		return nil, err
	}
	for _, in := range inputs {
		g := in.Graph
		adj := o.wrap(g)

		bglTime, err := timeIt(func() error {
			_, err := baseline.SerialCC(adj)
			return err
		})
		if err != nil {
			return nil, err
		}
		mtglTime, err := timeIt(func() error {
			_, err := baseline.LabelPropCC(adj, o.SyncWorkers)
			return err
		})
		if err != nil {
			return nil, err
		}
		var numCC uint64
		asyncTimes := make([]time.Duration, len(o.Threads))
		for i, th := range o.Threads {
			var res *core.CCResult[uint32]
			asyncTimes[i], err = timeIt(func() error {
				var err error
				res, err = core.CC[uint32](adj, core.Config{Workers: th})
				return err
			})
			if err != nil {
				return nil, err
			}
			numCC = res.NumComponents()
		}
		cluster, err := bsp.NewCluster[uint32](adj, o.Ranks)
		if err != nil {
			return nil, err
		}
		pbglTime, err := timeIt(func() error {
			_, _, err := cluster.CC()
			return err
		})
		if err != nil {
			return nil, err
		}

		best := asyncTimes[0]
		for _, d := range asyncTimes[1:] {
			if d < best {
				best = d
			}
		}
		row := []string{
			in.Name, fmt.Sprintf("%d", g.NumVertices()), fmt.Sprintf("%d", g.NumEdges()),
			fmt.Sprintf("%d", numCC),
			Seconds(bglTime), Seconds(mtglTime), Ratio(bglTime, mtglTime),
		}
		for _, d := range asyncTimes {
			row = append(row, Seconds(d))
		}
		row = append(row, Ratio(asyncTimes[0], best), Ratio(bglTime, best), Seconds(pbglTime))
		t.Add(row...)
		o.logf("table3: %s done\n", in.Name)
	}
	return t, nil
}

// SEMIO bundles the I/O-side observability of one semi-external run — device
// traffic, cache effectiveness, and the prefetch pipeline's coalescing
// counters — returned alongside core.Stats by the SEM harness paths. On a
// sharded mount Device aggregates the members and PerShard keeps the
// per-member snapshots (shard order), showing how pop-window spans fanned out
// across the member devices.
type SEMIO struct {
	Device      ssd.Stats
	PerShard    []ssd.Stats // nil when the mount is a single store
	CacheHits   uint64
	CacheMisses uint64
	Prefetch    sem.PrefetchStats
	// DedupSpans / DedupBytes count prefetch spans (and their bytes) that were
	// satisfied by another worker's in-flight read instead of a device
	// operation — the cross-worker span dedup's savings. They mirror the same
	// counters inside Prefetch, lifted out as first-class columns.
	DedupSpans uint64
	DedupBytes uint64
	// PinnedHW is the high-water mark of simultaneously pinned blocks under
	// the state-aware cache policy (max across shard members; 0 under LRU).
	PinnedHW  int64
	EdgeBytes int64  // on-flash edge bytes, summed across members
	Edges     uint64 // logical edge count
}

// ReadsPerEdge reports device read operations per logical edge, the ablation
// metric the cache-policy comparison is judged on (0 when the mount is empty).
func (s SEMIO) ReadsPerEdge() float64 {
	if s.Edges == 0 {
		return 0
	}
	return float64(s.Device.Reads) / float64(s.Edges)
}

// CacheHitRate reports block-cache hits over total block lookups (0 when the
// run performed none).
func (s SEMIO) CacheHitRate() float64 {
	if s.CacheHits+s.CacheMisses == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
}

// mountedSEM is one semi-external mount built for a measurement: a single
// store, or a shard router over per-shard devices and caches.
type mountedSEM struct {
	adj    graph.Adjacency[uint32]
	devs   []*ssd.Device
	caches []*sem.CachedStore
	sgs    []*sem.Graph[uint32]
}

// io snapshots the mount's observability counters into a SEMIO.
func (m *mountedSEM) io() SEMIO {
	var out SEMIO
	stats := make([]ssd.Stats, len(m.devs))
	for i, d := range m.devs {
		stats[i] = d.Stats()
	}
	out.Device = ssd.Sum(stats...)
	if len(stats) > 1 {
		out.PerShard = stats
	}
	for _, c := range m.caches {
		hits, misses := c.Stats()
		out.CacheHits += hits
		out.CacheMisses += misses
		if hw := c.PinnedHW(); hw > out.PinnedHW {
			out.PinnedHW = hw
		}
	}
	for _, sg := range m.sgs {
		out.Prefetch.Add(sg.PrefetchStats())
		out.EdgeBytes += sg.EdgeBytes()
		out.Edges += sg.NumEdges()
	}
	out.DedupSpans = out.Prefetch.DedupSpans
	out.DedupBytes = out.Prefetch.DedupBytes
	return out
}

// semMount serializes g into the SEM format and mounts it for a measurement:
// one store when o.Shards <= 1 (byte-identical to the historical layout), or
// o.Shards hash-partitioned stores behind the shard router, each with its own
// simulated device, block cache, and prefetcher.
func semMount(o Options, g *graph.CSR[uint32], p ssd.Profile) (*mountedSEM, error) {
	shards := o.Shards
	if shards < 1 {
		shards = 1
	}
	if shards == 1 {
		sg, dev, cache, err := semGraph(o, g, p)
		if err != nil {
			return nil, err
		}
		return &mountedSEM{
			adj:    sg,
			devs:   []*ssd.Device{dev},
			caches: []*sem.CachedStore{cache},
			sgs:    []*sem.Graph[uint32]{sg},
		}, nil
	}
	m := &mountedSEM{
		devs:   make([]*ssd.Device, shards),
		caches: make([]*sem.CachedStore, shards),
		sgs:    make([]*sem.Graph[uint32], shards),
	}
	for k := 0; k < shards; k++ {
		var buf bytes.Buffer
		cfg := o.writeConfig()
		cfg.Shard = &sem.ShardConfig{Shard: k, Shards: shards}
		if err := sem.Write(&buf, g, cfg); err != nil {
			return nil, err
		}
		var err error
		m.devs[k] = ssd.New(p, &ssd.MemBacking{Data: buf.Bytes()})
		budget := int64(buf.Len()) / o.CacheFrac
		if budget < 64*1024 {
			budget = 64 * 1024
		}
		if m.caches[k], err = sem.NewCachedStoreRA(m.devs[k], 4096, budget, o.Readahead); err != nil {
			return nil, err
		}
		if m.sgs[k], err = sem.Open[uint32](m.caches[k]); err != nil {
			return nil, err
		}
		if o.CachePolicy.StateAware() {
			m.sgs[k].EnableStateCache()
		}
		if o.Prefetch > 1 {
			m.sgs[k].EnablePrefetch(sem.PrefetchConfig{MaxGap: o.PrefetchGap})
		}
	}
	mounted, err := sem.MountShards(m.sgs)
	if err != nil {
		return nil, err
	}
	m.adj = mounted
	return m, nil
}

// timeSEM measures a semi-external run best-of-SEMReps, remounting fresh
// devices and cold caches each repetition. The returned SEMIO belongs to the
// fastest repetition.
func timeSEM(o Options, g *graph.CSR[uint32], p ssd.Profile, run func(adj graph.Adjacency[uint32]) error) (time.Duration, SEMIO, error) {
	reps := o.SEMReps
	if reps < 1 {
		reps = 1
	}
	var best time.Duration
	var bestIO SEMIO
	have := false
	for r := 0; r < reps; r++ {
		mnt, err := semMount(o, g, p)
		if err != nil {
			return 0, SEMIO{}, err
		}
		dur, err := timeIt(func() error { return run(mnt.adj) })
		if err != nil {
			return 0, SEMIO{}, err
		}
		if !have || dur < best {
			have = true
			best = dur
			bestIO = mnt.io()
		}
	}
	return best, bestIO, nil
}

// semGraph serializes g into the SEM format (raw v1 records, or compressed v2
// blocks under o.Compressed) and mounts it on a simulated flash device of the
// given profile behind the block cache, enabling the prefetch pipeline when
// o.Prefetch asks for it.
func semGraph(o Options, g *graph.CSR[uint32], p ssd.Profile) (*sem.Graph[uint32], *ssd.Device, *sem.CachedStore, error) {
	var buf bytes.Buffer
	if err := sem.Write(&buf, g, o.writeConfig()); err != nil {
		return nil, nil, nil, err
	}
	dev := ssd.New(p, &ssd.MemBacking{Data: buf.Bytes()})
	edgeBytes := int64(buf.Len())
	budget := edgeBytes / o.CacheFrac
	if budget < 64*1024 {
		budget = 64 * 1024
	}
	cache, err := sem.NewCachedStoreRA(dev, 4096, budget, o.Readahead)
	if err != nil {
		return nil, nil, nil, err
	}
	sg, err := sem.Open[uint32](cache)
	if err != nil {
		return nil, nil, nil, err
	}
	if o.CachePolicy.StateAware() {
		sg.EnableStateCache()
	}
	if o.Prefetch > 1 {
		sg.EnablePrefetch(sem.PrefetchConfig{MaxGap: o.PrefetchGap})
	}
	return sg, dev, cache, nil
}

// Table4 reproduces the semi-external BFS comparison of Table IV: the
// asynchronous traversal over the three flash profiles against the serial
// in-memory BGL baseline (run under the DRAM-latency model, as the paper's
// BGL runs were memory-bound at 2^27-2^30 vertices). The extra "FusionIO@1"
// column shows single-threaded SEM: the latency-hiding effect of concurrent
// visitors is the paper's core SEM claim.
func Table4(o Options) (*Table, error) {
	t := &Table{
		Title: "Table IV: Semi-External Memory Breadth First Search",
		Note: fmt.Sprintf("SEM threads=%d, cache=edges/%d, 4 KiB blocks, edge format=%s; speedups vs In-Memory serial BGL",
			o.SEMThreads, o.CacheFrac, o.edgeFormat()),
		Cols: []string{"graph", "verts", "EM bytes", "B/edge", "IM BGL(s)"},
	}
	for _, p := range ssd.Profiles {
		t.Cols = append(t.Cols, p.Name+"(s)", "spd")
	}
	t.Cols = append(t.Cols, "FusionIO@1(s)", "devReads")

	for _, variant := range rmatVariants {
		for _, scale := range o.SEMScales {
			g, err := gen.RMAT[uint32](scale, o.Degree, variant.Params, o.Seed)
			if err != nil {
				return nil, err
			}
			src := pickSource(g)
			bglTime, err := timeIt(func() error {
				_, err := baseline.SerialBFS(o.wrap(g), src)
				return err
			})
			if err != nil {
				return nil, err
			}

			row := []string{
				fmt.Sprintf("%s 2^%d", variant.Name, scale),
				fmt.Sprintf("%d", g.NumVertices()), "", "", Seconds(bglTime),
			}
			var devReads uint64
			cfg := o.semBFSConfig(g)
			for _, p := range ssd.Profiles {
				dur, io, err := timeSEM(o, g, p, func(adj graph.Adjacency[uint32]) error {
					_, err := core.BFS[uint32](adj, src, cfg)
					return err
				})
				if err != nil {
					return nil, err
				}
				row[2] = fmt.Sprintf("%d", io.EdgeBytes)
				row[3] = BytesPerEdge(io.EdgeBytes, io.Edges)
				row = append(row, Seconds(dur), Ratio(bglTime, dur))
				if p.Name == "FusionIO" {
					devReads = io.Device.Reads
				}
			}
			// Single-threaded SEM on the fastest device: no I/O overlap.
			mnt, err := semMount(o, g, ssd.FusionIO)
			if err != nil {
				return nil, err
			}
			cfg1 := cfg
			cfg1.Workers, cfg1.Prefetch = 1, 0
			oneThread, err := timeIt(func() error {
				_, err := core.BFS[uint32](mnt.adj, src, cfg1)
				return err
			})
			if err != nil {
				return nil, err
			}
			row = append(row, Seconds(oneThread), fmt.Sprintf("%d", devReads))
			t.Add(row...)
			o.logf("table4: %s 2^%d done\n", variant.Name, scale)
		}
	}
	return t, nil
}

// Table5 reproduces the semi-external connected-components comparison of
// Table V over the three flash profiles, including a web-like graph row.
func Table5(o Options) (*Table, error) {
	t := &Table{
		Title: "Table V: Semi-External Memory Connected Components",
		Note: fmt.Sprintf("SEM threads=%d, cache=edges/%d, 4 KiB blocks, edge format=%s; speedups vs In-Memory serial BGL",
			o.SEMThreads, o.CacheFrac, o.edgeFormat()),
		Cols: []string{"graph", "verts", "EM bytes", "B/edge", "IM BGL(s)"},
	}
	for _, p := range ssd.Profiles {
		t.Cols = append(t.Cols, p.Name+"(s)", "spd")
	}

	var inputs []ccInput
	for _, variant := range rmatVariants {
		for _, scale := range o.SEMScales {
			g, err := gen.RMATUndirected[uint32](scale, o.Degree, variant.Params, o.Seed)
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, ccInput{Name: fmt.Sprintf("%s 2^%d", variant.Name, scale), Graph: g})
		}
	}
	wg, err := gen.WebGraph[uint32](1<<o.WebScale, 4, 2, o.Seed)
	if err != nil {
		return nil, err
	}
	inputs = append(inputs, ccInput{Name: fmt.Sprintf("web-%d", uint64(1)<<o.WebScale), Graph: wg})

	for _, in := range inputs {
		g := in.Graph
		bglTime, err := timeIt(func() error {
			_, err := baseline.SerialCC(o.wrap(g))
			return err
		})
		if err != nil {
			return nil, err
		}
		row := []string{in.Name, fmt.Sprintf("%d", g.NumVertices()), "", "", Seconds(bglTime)}
		for _, p := range ssd.Profiles {
			dur, io, err := timeSEM(o, g, p, func(adj graph.Adjacency[uint32]) error {
				_, err := core.CC[uint32](adj, core.Config{
					Workers: o.SEMThreads, SemiSort: true, Prefetch: o.Prefetch,
				})
				return err
			})
			if err != nil {
				return nil, err
			}
			row[2] = fmt.Sprintf("%d", io.EdgeBytes)
			row[3] = BytesPerEdge(io.EdgeBytes, io.Edges)
			row = append(row, Seconds(dur), Ratio(bglTime, dur))
		}
		t.Add(row...)
		o.logf("table5: %s done\n", in.Name)
	}
	return t, nil
}
