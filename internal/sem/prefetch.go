package sem

// This file is the semi-external asynchronous I/O pipeline. The engine's
// SemiSort key already arranges for each worker to pop runs of id-adjacent
// vertices (§IV-C); their adjacency extents therefore sit near each other in
// the on-device edge region. The Prefetcher exploits that structure: a worker
// announces its next pop-window of vertices through NeighborsBatch, the
// prefetcher merges id-contiguous (or near-contiguous, within MaxGap bytes)
// extents into single coalesced ReadAt spans, and a bounded pool of I/O
// goroutines services the spans while the worker starts visiting. On
// ssd.Device a coalesced span pays one latency term plus bandwidth instead of
// k latencies — the request-merging trick of FlashGraph-class I/O layers —
// and the visit of the first window vertex overlaps the in-flight reads of
// the rest.
//
// Ownership and correctness: a window is popped from one worker's queue, so
// every vertex in it is owned by that worker (the engine's hash routing), and
// the session recording in-flight spans lives in that worker's scratch — no
// other worker ever touches it. The I/O goroutines communicate with the owner
// only through each span's ready channel (close happens-after the buffer and
// error are written). Visiting in pop-window order rather than strict
// one-at-a-time heap order is safe for the label-correcting kernels by the
// same monotonicity argument as CoarseShift: reordering costs at most extra
// corrections, never wrong labels.

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// DefaultPrefetchGap is the coalescing gap used by the traverse CLI and the
// harness when none is given. It is sized to bridge the ownership stride:
// with W workers each owning a pseudorandom 1/W of the frontier, consecutive
// extents in one worker's semi-sorted window sit ~W x degree x recordSize
// bytes apart (~16 KiB at the repository defaults of 128 workers, degree 16,
// 4-8 byte records). 32 KiB spans that stride most of the time, and the
// bridged bytes cost only the device's bandwidth term (~160 µs on the
// slowest profile) against the whole latency term they save (3 ms there).
const DefaultPrefetchGap = 32 << 10

// DefaultPrefetchIOWorkers bounds concurrent span reads per graph when
// PrefetchConfig.IOWorkers is unset. It sits above every simulated profile's
// channel count (20 at most), so the bound never throttles the device below
// its own parallelism; it exists to keep the goroutine and buffer fan-out
// finite when hundreds of traversal workers window simultaneously.
const DefaultPrefetchIOWorkers = 32

// PrefetchConfig tunes the asynchronous adjacency pipeline.
type PrefetchConfig struct {
	// MaxGap is the largest byte distance between two adjacency extents that
	// still merges them into one coalesced span. The gap bytes are read and
	// discarded: they cost the device's bandwidth term but save a whole
	// latency term. 0 merges only extents that touch exactly.
	MaxGap int
	// IOWorkers bounds the number of span reads in flight for this graph
	// across all traversal workers. <= 0 selects DefaultPrefetchIOWorkers.
	IOWorkers int
}

// PrefetchStats counts prefetcher activity over the graph's lifetime. All
// counters are monotone; read them after a traversal completes.
type PrefetchStats struct {
	Windows   uint64 // NeighborsBatch calls that issued at least one span
	Vertices  uint64 // nonzero-degree vertices accepted into windows
	Spans     uint64 // coalesced device reads issued
	SpanBytes uint64 // bytes requested by those reads, gap bytes included
	GapBytes  uint64 // bytes read only to bridge near-contiguous extents
	Consumed  uint64 // prefetched adjacency lists delivered to Neighbors
	Abandoned uint64 // prefetched lists dropped unread (stale by visit time)

	// Cross-worker span dedup (the in-flight span table): windows whose
	// coalesced range was already covered by another worker's in-flight read
	// share that read's buffer instead of issuing their own device op.
	DedupSpans uint64 // device reads avoided by sharing an in-flight span
	DedupBytes uint64 // bytes those avoided reads would have transferred

	// ResidentSkips counts coalesced spans whose whole byte range was already
	// cached or in flight at window time (state-aware mounts only): the span
	// read is served block-for-block from the cache and costs no device
	// operation.
	ResidentSkips uint64

	// Bottom-up scan-phase counters (ScanInEdges): sequential in-edge section
	// reads, disjoint from the pop-window span counters above.
	ScanSpans uint64 // sequential spans issued by bottom-up scans
	ScanBytes uint64 // bytes read by those spans, bridged gaps included
}

// Add accumulates other into s, the per-shard roll-up of a sharded mount.
func (s *PrefetchStats) Add(other PrefetchStats) {
	s.Windows += other.Windows
	s.Vertices += other.Vertices
	s.Spans += other.Spans
	s.SpanBytes += other.SpanBytes
	s.GapBytes += other.GapBytes
	s.Consumed += other.Consumed
	s.Abandoned += other.Abandoned
	s.DedupSpans += other.DedupSpans
	s.DedupBytes += other.DedupBytes
	s.ResidentSkips += other.ResidentSkips
	s.ScanSpans += other.ScanSpans
	s.ScanBytes += other.ScanBytes
}

// VertsPerSpan is the coalescing rate: how many vertex reads one device
// operation covers on average (1.0 = no coalescing happened).
func (s PrefetchStats) VertsPerSpan() float64 {
	if s.Spans == 0 {
		return 0
	}
	return float64(s.Vertices) / float64(s.Spans)
}

// ConsumedFrac is the fraction of prefetched lists that a visitor actually
// read; the remainder went stale between pop and visit.
func (s PrefetchStats) ConsumedFrac() float64 {
	if s.Vertices == 0 {
		return 0
	}
	return float64(s.Consumed) / float64(s.Vertices)
}

// Prefetcher coalesces and asynchronously services adjacency read windows
// for one semi-external graph. Safe for concurrent use by many workers; all
// shared state is the I/O semaphore and the atomic counters.
type Prefetcher struct {
	cfg PrefetchConfig
	sem chan struct{} // bounds in-flight span reads

	// The in-flight span table (cross-worker dedup): every issued span is
	// registered from issue to read completion, and a worker whose coalesced
	// range is fully covered by a registered span shares that span's buffer —
	// one device read, shared delivery via the span's ready channel — instead
	// of issuing a duplicate. Guarded by mu; the table holds only in-flight
	// reads, so the linear scan stays short (bounded by the I/O fan-out).
	mu       sync.Mutex
	inflight []inflightSpan

	windows    atomic.Uint64
	vertices   atomic.Uint64
	spans      atomic.Uint64
	spanBytes  atomic.Uint64
	gapBytes   atomic.Uint64
	consumed   atomic.Uint64
	abandoned  atomic.Uint64
	dedupSpans atomic.Uint64
	dedupBytes atomic.Uint64
	resSkips   atomic.Uint64
	scanSpans  atomic.Uint64
	scanBytes  atomic.Uint64
}

// inflightSpan is one dedup-table entry: the byte range an issued span read
// covers.
type inflightSpan struct {
	off, end int64
	sp       *span
}

// share consults the dedup table for an in-flight span fully covering
// [off, end): on a hit the covering span is returned for shared delivery; on
// a miss sp is registered for the range (the caller issues its read and
// unregister runs on completion) and nil is returned. Partial overlaps both
// read — splitting a span across two buffers would cost more coordination
// than the duplicated bytes.
func (p *Prefetcher) share(off, end int64, sp *span) *span {
	p.mu.Lock()
	for i := range p.inflight {
		if f := &p.inflight[i]; f.off <= off && f.end >= end {
			// Copy the span pointer before unlocking: f aliases a table slot
			// that a concurrent unregister may compact the moment the lock
			// drops.
			found := f.sp
			p.mu.Unlock()
			p.dedupSpans.Add(1)
			p.dedupBytes.Add(uint64(end - off))
			return found
		}
	}
	p.inflight = append(p.inflight, inflightSpan{off: off, end: end, sp: sp})
	p.mu.Unlock()
	return nil
}

// unregister drops a completed span from the dedup table. A worker that
// found the span just before completion still shares it safely: buf and err
// are immutable after ready closes.
func (p *Prefetcher) unregister(sp *span) {
	p.mu.Lock()
	for i := range p.inflight {
		if p.inflight[i].sp == sp {
			last := len(p.inflight) - 1
			p.inflight[i] = p.inflight[last]
			p.inflight = p.inflight[:last]
			break
		}
	}
	p.mu.Unlock()
}

// normalize clamps the prefetch knobs to their working ranges.
func (c *PrefetchConfig) normalize() {
	if c.IOWorkers <= 0 {
		c.IOWorkers = DefaultPrefetchIOWorkers
	}
	if c.MaxGap < 0 {
		c.MaxGap = 0
	}
}

func newPrefetcher(cfg PrefetchConfig) *Prefetcher {
	cfg.normalize()
	return &Prefetcher{cfg: cfg, sem: make(chan struct{}, cfg.IOWorkers)}
}

// Stats snapshots the counters.
func (p *Prefetcher) Stats() PrefetchStats {
	return PrefetchStats{
		Windows:       p.windows.Load(),
		Vertices:      p.vertices.Load(),
		Spans:         p.spans.Load(),
		SpanBytes:     p.spanBytes.Load(),
		GapBytes:      p.gapBytes.Load(),
		Consumed:      p.consumed.Load(),
		Abandoned:     p.abandoned.Load(),
		DedupSpans:    p.dedupSpans.Load(),
		DedupBytes:    p.dedupBytes.Load(),
		ResidentSkips: p.resSkips.Load(),
		ScanSpans:     p.scanSpans.Load(),
		ScanBytes:     p.scanBytes.Load(),
	}
}

// span is one coalesced device read in flight. err and buf contents are
// published by the close of ready.
type span struct {
	off   int64
	buf   []byte
	ready chan struct{}
	err   error
}

// pfEntry maps one window vertex onto its byte range within a span. Entries
// belong to exactly one worker's session; done marks consumption so a
// duplicate vertex in a window consumes its own entry.
type pfEntry struct {
	v    uint64
	sp   *span
	lo   int // byte offset of the vertex's records within sp.buf
	n    int // record bytes of the vertex
	done bool
}

// extent is a vertex's adjacency byte range before coalescing.
type extent struct {
	v   uint64
	off int64
	n   int
}

// prefetchSession is the per-worker window state, stored in the worker's
// graph.Scratch.Prefetch. Only the owning worker reads or writes it; the I/O
// pool publishes results through span.ready alone.
type prefetchSession struct {
	p       *Prefetcher
	entries []pfEntry
	exts    []extent // reused window scratch
}

// take hands v's prefetched records to the caller, blocking until the span
// read completes. prefetched is false when v has no live entry in the current
// window, in which case the caller reads synchronously. A span read error is
// surfaced to the consumer, consistent with the synchronous path's failure
// policy (no silent retry).
//
//lint:hotpath
func (s *prefetchSession) take(v uint64) (block []byte, err error, prefetched bool) {
	for i := range s.entries {
		e := &s.entries[i]
		if e.done || e.v != v {
			continue
		}
		e.done = true
		s.p.consumed.Add(1)
		<-e.sp.ready
		if e.sp.err != nil {
			return nil, e.sp.err, true
		}
		return e.sp.buf[e.lo : e.lo+e.n], nil, true
	}
	return nil, nil, false
}

// read services one span on the bounded I/O pool, then retires it from the
// dedup table.
//
//lint:hotpath
func (p *Prefetcher) read(store Store, sp *span) {
	p.sem <- struct{}{}
	_, err := store.ReadAt(sp.buf, sp.off)
	<-p.sem
	sp.err = err
	close(sp.ready)
	p.unregister(sp)
}

// EnablePrefetch attaches an asynchronous prefetcher to the graph. After the
// call the graph services NeighborsBatch windows with coalesced span reads;
// without it NeighborsBatch is a no-op and traversal behaves exactly as
// before. Call once, before the traversal starts.
func (g *Graph[V]) EnablePrefetch(cfg PrefetchConfig) {
	g.prefetch = newPrefetcher(cfg)
}

// PrefetchStats reports the prefetcher's counters; zero when prefetch was
// never enabled.
func (g *Graph[V]) PrefetchStats() PrefetchStats {
	if g.prefetch == nil {
		return PrefetchStats{}
	}
	return g.prefetch.Stats()
}

// NeighborsBatch implements graph.BatchAdjacency: it announces the worker's
// next pop-window of vertices, coalesces their adjacency extents into spans,
// and starts asynchronous reads. Subsequent Neighbors calls on the same
// scratch consume the completed reads without copying; entries still
// unconsumed when the next window arrives are abandoned (their reads complete
// harmlessly into their own buffers).
func (g *Graph[V]) NeighborsBatch(vs []V, scratch *graph.Scratch[V]) {
	p := g.prefetch
	if p == nil {
		return
	}
	sess, _ := scratch.Prefetch.(*prefetchSession)
	if sess == nil {
		sess = &prefetchSession{p: p}
		scratch.Prefetch = sess
	}
	for i := range sess.entries {
		if !sess.entries[i].done {
			p.abandoned.Add(1)
		}
	}
	sess.entries = sess.entries[:0]

	exts := sess.exts[:0]
	for _, v := range vs {
		// The extent is a record span on v1 stores and a compressed block on
		// v2 — the coalescing and zero-copy handoff below are format-blind.
		off, n := g.extentOf(v)
		if n == 0 {
			continue
		}
		exts = append(exts, extent{v: uint64(v), off: off, n: n})
	}
	sess.exts = exts
	if len(exts) == 0 {
		return
	}
	sort.Slice(exts, func(i, j int) bool { return exts[i].off < exts[j].off })
	p.windows.Add(1)
	p.vertices.Add(uint64(len(exts)))

	// Merge offset-sorted extents into coalesced spans: a following extent
	// joins the current span while it starts within MaxGap bytes of the
	// span's end. Duplicate or overlapping extents (the same vertex popped
	// twice in one window) fold into the same span bytes.
	maxGap := int64(p.cfg.MaxGap)
	affine := g.state != nil && g.cache != nil
	for i := 0; i < len(exts); {
		start := exts[i].off
		end := start + int64(exts[i].n)
		var gap int64
		j := i + 1
		for j < len(exts) {
			if exts[j].off > end+maxGap {
				break
			}
			if exts[j].off > end {
				gap += exts[j].off - end
			}
			if e := exts[j].off + int64(exts[j].n); e > end {
				end = e
			}
			j++
		}
		// Cache-affine accounting: a span whose whole byte range is already
		// resident (or in flight) is recorded as a resident window — its read
		// below is served block-for-block from the cache and costs no device
		// operation, only the copy into the span buffer. Skipping the read
		// instead is a trap: the bytes must be snapshotted now, while they are
		// resident, because visit-time fallback reads land after eviction
		// churn has recycled the blocks.
		if affine && g.cache.residentRange(start, int(end-start)) {
			p.resSkips.Add(1)
		}
		// Cross-worker dedup: when another worker's in-flight span already
		// covers this range, share its buffer and ready channel instead of
		// issuing a duplicate device read. The buffer is only allocated when
		// this worker actually issues.
		sp := &span{off: start, ready: make(chan struct{})}
		use := sp
		if shared := p.share(start, end, sp); shared != nil {
			use = shared
		}
		for k := i; k < j; k++ {
			sess.entries = append(sess.entries, pfEntry{
				v:  exts[k].v,
				sp: use,
				lo: int(exts[k].off - use.off),
				n:  exts[k].n,
			})
		}
		if use == sp {
			sp.buf = make([]byte, end-start)
			p.spans.Add(1)
			p.spanBytes.Add(uint64(len(sp.buf)))
			p.gapBytes.Add(uint64(gap))
			go p.read(g.store, sp)
		}
		i = j
	}
}

// The semi-external graph is the repository's only BatchAdjacency back end.
var _ graph.BatchAdjacency[uint32] = (*Graph[uint32])(nil)
