package graph

import (
	"testing"
)

func mustBuild[V Vertex](t *testing.T, n uint64, weighted, dedup bool, edges []Edge[V]) *CSR[V] {
	t.Helper()
	g, err := FromEdges(n, weighted, dedup, edges)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := mustBuild[uint32](t, 0, false, false, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestSingleVertexNoEdges(t *testing.T) {
	g := mustBuild[uint32](t, 1, false, false, nil)
	if g.NumVertices() != 1 {
		t.Fatalf("n = %d, want 1", g.NumVertices())
	}
	if g.Degree(0) != 0 {
		t.Fatalf("degree = %d, want 0", g.Degree(0))
	}
	ts, ws, err := g.Neighbors(0, nil)
	if err != nil || len(ts) != 0 || ws != nil {
		t.Fatalf("neighbors = %v %v %v", ts, ws, err)
	}
}

func TestBasicCSRLayout(t *testing.T) {
	g := mustBuild(t, 4, true, false, []Edge[uint32]{
		{Src: 2, Dst: 0, W: 9},
		{Src: 0, Dst: 1, W: 2},
		{Src: 0, Dst: 3, W: 5},
		{Src: 2, Dst: 3, W: 1},
	})
	if g.NumEdges() != 4 {
		t.Fatalf("m = %d, want 4", g.NumEdges())
	}
	ts, ws, _ := g.Neighbors(0, nil)
	if len(ts) != 2 || ts[0] != 1 || ts[1] != 3 || ws[0] != 2 || ws[1] != 5 {
		t.Fatalf("adj(0) = %v %v", ts, ws)
	}
	ts, _, _ = g.Neighbors(1, nil)
	if len(ts) != 0 {
		t.Fatalf("adj(1) = %v, want empty", ts)
	}
	ts, ws, _ = g.Neighbors(2, nil)
	if len(ts) != 2 || ts[0] != 0 || ts[1] != 3 || ws[0] != 9 || ws[1] != 1 {
		t.Fatalf("adj(2) = %v %v", ts, ws)
	}
	if g.Degree(2) != 2 || g.Degree(3) != 0 {
		t.Fatalf("degrees: %d %d", g.Degree(2), g.Degree(3))
	}
}

func TestDedupKeepsMinWeight(t *testing.T) {
	g := mustBuild(t, 2, true, true, []Edge[uint32]{
		{Src: 0, Dst: 1, W: 7},
		{Src: 0, Dst: 1, W: 3},
		{Src: 0, Dst: 1, W: 5},
	})
	if g.NumEdges() != 1 {
		t.Fatalf("m = %d, want 1", g.NumEdges())
	}
	if w := g.EdgeWeight(0, 0); w != 3 {
		t.Fatalf("weight = %d, want min 3", w)
	}
}

func TestDedupDisabledKeepsParallelEdges(t *testing.T) {
	g := mustBuild(t, 2, false, false, []Edge[uint32]{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 1},
	})
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2", g.NumEdges())
	}
}

func TestSelfLoopsPreserved(t *testing.T) {
	g := mustBuild(t, 2, false, true, []Edge[uint32]{
		{Src: 0, Dst: 0}, {Src: 0, Dst: 1},
	})
	ts, _, _ := g.Neighbors(0, nil)
	if len(ts) != 2 || ts[0] != 0 {
		t.Fatalf("adj(0) = %v, want self-loop first", ts)
	}
}

func TestSymmetrize(t *testing.T) {
	b := NewBuilder[uint32](3, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 2, 1) // self-loop must not be duplicated
	b.Symmetrize()
	g, err := b.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 5 { // 0-1, 1-0, 1-2, 2-1, 2-2
		t.Fatalf("m = %d, want 5", g.NumEdges())
	}
	ts, _, _ := g.Neighbors(1, nil)
	if len(ts) != 2 || ts[0] != 0 || ts[1] != 2 {
		t.Fatalf("adj(1) = %v", ts)
	}
}

func TestBuildRejectsOutOfRange(t *testing.T) {
	_, err := FromEdges(2, false, false, []Edge[uint32]{{Src: 0, Dst: 5}})
	if err == nil {
		t.Fatal("expected error for out-of-range endpoint")
	}
}

func TestEdgeWeightUnweightedIsOne(t *testing.T) {
	g := mustBuild(t, 2, false, false, []Edge[uint32]{{Src: 0, Dst: 1, W: 42}})
	if w := g.EdgeWeight(0, 0); w != 1 {
		t.Fatalf("unweighted EdgeWeight = %d, want 1", w)
	}
	if g.Weighted() {
		t.Fatal("graph should be unweighted")
	}
}

func TestForEachEdgeVisitsAll(t *testing.T) {
	edges := []Edge[uint32]{
		{Src: 0, Dst: 1, W: 2}, {Src: 1, Dst: 2, W: 3}, {Src: 2, Dst: 0, W: 4},
	}
	g := mustBuild(t, 3, true, false, edges)
	var got []Edge[uint32]
	g.ForEachEdge(func(u, v uint32, w Weight) {
		got = append(got, Edge[uint32]{Src: u, Dst: v, W: w})
	})
	if len(got) != 3 {
		t.Fatalf("visited %d edges, want 3", len(got))
	}
	for i, e := range got {
		if e != edges[i] {
			t.Fatalf("edge %d = %+v, want %+v", i, e, edges[i])
		}
	}
}

func TestUint64Vertices(t *testing.T) {
	g := mustBuild(t, 3, false, false, []Edge[uint64]{
		{Src: 0, Dst: 2}, {Src: 2, Dst: 1},
	})
	ts, _, _ := g.Neighbors(uint64(2), nil)
	if len(ts) != 1 || ts[0] != 1 {
		t.Fatalf("adj(2) = %v", ts)
	}
	if NoVertex[uint64]() != ^uint64(0) {
		t.Fatal("NoVertex[uint64] mismatch")
	}
	if NoVertex[uint32]() != ^uint32(0) {
		t.Fatal("NoVertex[uint32] mismatch")
	}
}

func TestNewCSRRawValidation(t *testing.T) {
	cases := []struct {
		name    string
		offsets []uint64
		targets []uint32
		weights []Weight
		wantErr bool
	}{
		{"valid", []uint64{0, 1, 2}, []uint32{1, 0}, nil, false},
		{"valid weighted", []uint64{0, 2}, []uint32{0, 0}, []Weight{1, 2}, false},
		{"empty offsets", nil, nil, nil, true},
		{"bad span", []uint64{0, 1}, []uint32{1, 0}, nil, true},
		{"decreasing", []uint64{0, 2, 1, 2}, []uint32{0, 0}, nil, true},
		{"weights mismatch", []uint64{0, 2}, []uint32{0, 0}, []Weight{1}, true},
		{"nonzero first", []uint64{1, 2}, []uint32{0, 0}, nil, true},
	}
	for _, c := range cases {
		_, err := NewCSRRaw(c.offsets, c.targets, c.weights)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", c.name, err, c.wantErr)
		}
	}
}

func TestBuilderSingleShot(t *testing.T) {
	b := NewBuilder[uint32](2, false)
	b.AddEdge(0, 1, 1)
	if b.NumEdgesPending() != 1 {
		t.Fatalf("pending = %d, want 1", b.NumEdgesPending())
	}
	if _, err := b.Build(false); err != nil {
		t.Fatal(err)
	}
	if b.NumEdgesPending() != 0 {
		t.Fatal("builder retained edges after Build")
	}
}
