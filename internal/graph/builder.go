package graph

import (
	"fmt"
	"sort"
)

// Edge is a single directed edge used during graph construction.
type Edge[V Vertex] struct {
	Src, Dst V
	W        Weight
}

// Builder accumulates edges and produces an immutable CSR. Construction
// follows the paper's preprocessing: edges are sorted by (src, dst), optional
// de-duplication keeps unique edges ("graphs with unique edges"), and
// undirected graphs are produced by adding reverse edges.
type Builder[V Vertex] struct {
	n        uint64
	weighted bool
	edges    []Edge[V]
}

// NewBuilder creates a builder for a graph with n vertices. If weighted is
// false, edge weights are ignored and the CSR stores no weight array.
func NewBuilder[V Vertex](n uint64, weighted bool) *Builder[V] {
	return &Builder[V]{n: n, weighted: weighted}
}

// AddEdge appends a directed edge u->v with weight w.
func (b *Builder[V]) AddEdge(u, v V, w Weight) {
	b.edges = append(b.edges, Edge[V]{Src: u, Dst: v, W: w})
}

// AddEdges appends a batch of directed edges.
func (b *Builder[V]) AddEdges(edges []Edge[V]) {
	b.edges = append(b.edges, edges...)
}

// Symmetrize adds the reverse of every edge currently in the builder,
// converting a directed edge list into an undirected one. This is the paper's
// "undirected versions of these graphs ... created by adding reverse edges".
func (b *Builder[V]) Symmetrize() {
	orig := len(b.edges)
	for i := 0; i < orig; i++ {
		e := b.edges[i]
		if e.Src != e.Dst {
			b.edges = append(b.edges, Edge[V]{Src: e.Dst, Dst: e.Src, W: e.W})
		}
	}
}

// NumEdgesPending reports the number of edges added so far.
func (b *Builder[V]) NumEdgesPending() int { return len(b.edges) }

// Build sorts the accumulated edges, removes duplicate (src, dst) pairs when
// dedup is set (keeping the smallest weight, so de-duplication never lengthens
// a shortest path), and assembles the CSR. Build validates endpoints and
// returns an error for out-of-range vertices rather than producing a
// corrupted graph.
func (b *Builder[V]) Build(dedup bool) (*CSR[V], error) {
	for _, e := range b.edges {
		if uint64(e.Src) >= b.n || uint64(e.Dst) >= b.n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for %d vertices", e.Src, e.Dst, b.n)
		}
	}
	sort.Slice(b.edges, func(i, j int) bool {
		a, c := b.edges[i], b.edges[j]
		if a.Src != c.Src {
			return a.Src < c.Src
		}
		if a.Dst != c.Dst {
			return a.Dst < c.Dst
		}
		return a.W < c.W
	})
	edges := b.edges
	if dedup {
		edges = edges[:0]
		for _, e := range b.edges {
			if k := len(edges); k > 0 && edges[k-1].Src == e.Src && edges[k-1].Dst == e.Dst {
				continue // sorted by weight within (src,dst): first kept is the minimum
			}
			edges = append(edges, e)
		}
	}

	g := &CSR[V]{
		offsets: make([]uint64, b.n+1),
		targets: make([]V, len(edges)),
	}
	if b.weighted {
		g.weights = make([]Weight, len(edges))
	}
	for _, e := range edges {
		g.offsets[e.Src+1]++
	}
	for i := uint64(0); i < b.n; i++ {
		g.offsets[i+1] += g.offsets[i]
	}
	// Edges are sorted by src, so a single pass lays them out in place.
	for i, e := range edges {
		g.targets[i] = e.Dst
		if b.weighted {
			g.weights[i] = e.W
		}
	}
	b.edges = nil // builder is single-shot; release memory
	return g, nil
}

// FromEdges is a convenience wrapper: build a CSR directly from an edge list.
func FromEdges[V Vertex](n uint64, weighted, dedup bool, edges []Edge[V]) (*CSR[V], error) {
	b := NewBuilder[V](n, weighted)
	b.AddEdges(edges)
	return b.Build(dedup)
}

// NewCSRRaw assembles a CSR from already-validated component arrays. offsets
// must have length n+1 and be non-decreasing with offsets[n] == len(targets);
// weights must be nil or parallel to targets. Used by the semi-external
// loader and by tests.
func NewCSRRaw[V Vertex](offsets []uint64, targets []V, weights []Weight) (*CSR[V], error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("graph: offsets must have length >= 1")
	}
	if offsets[0] != 0 || offsets[len(offsets)-1] != uint64(len(targets)) {
		return nil, fmt.Errorf("graph: offsets do not span targets (first=%d last=%d m=%d)",
			offsets[0], offsets[len(offsets)-1], len(targets))
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			return nil, fmt.Errorf("graph: offsets decrease at %d", i)
		}
	}
	if weights != nil && len(weights) != len(targets) {
		return nil, fmt.Errorf("graph: weights length %d != targets length %d", len(weights), len(targets))
	}
	return &CSR[V]{offsets: offsets, targets: targets, weights: weights}, nil
}
