// Command iops reproduces Figure 1's measurement for one simulated flash
// profile: random-read IOPS as a function of the number of issuing threads.
//
// Example:
//
//	iops -profile Intel -threads 1,2,4,8,16,32,64,128,256
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/ssd"
)

func main() {
	var (
		profile  = flag.String("profile", "FusionIO", "flash profile: FusionIO, Intel, Corsair")
		threads  = flag.String("threads", "1,2,4,8,16,32,64,128,256", "comma-separated thread counts")
		duration = flag.Duration("duration", 300*time.Millisecond, "measurement window per point")
		readSize = flag.Int("readsize", 4096, "bytes per random read")
		span     = flag.Int64("span", 64<<20, "device size in bytes")
		seed     = flag.Uint64("seed", 1, "random offset seed")
	)
	flag.Parse()
	if err := run(*profile, *threads, *duration, *readSize, *span, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "iops: %v\n", err)
		os.Exit(1)
	}
}

func run(profile, threads string, duration time.Duration, readSize int, span int64, seed uint64) error {
	p, err := ssd.ProfileByName(profile)
	if err != nil {
		return err
	}
	counts, err := parseThreads(threads)
	if err != nil {
		return err
	}
	backing := &ssd.MemBacking{Data: make([]byte, span)}
	fmt.Printf("# %s: %d channels, %v read latency, model ceiling %.0f IOPS (1/%d time scale)\n",
		p.Name, p.Channels, p.ReadLatency, p.SaturatedReadIOPS(), ssd.TimeScale)
	fmt.Printf("%-8s %s\n", "threads", "IOPS")
	for _, t := range counts {
		dev := ssd.New(p, backing)
		iops := ssd.MeasureReadIOPS(dev, t, readSize, duration, seed)
		fmt.Printf("%-8d %.0f\n", t, iops)
	}
	return nil
}

func parseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
