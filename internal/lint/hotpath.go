package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Hotpath enforces allocation discipline in functions annotated with a
// `//lint:hotpath` doc-comment line: the engine's per-visit code (worker pop
// loops, the relaxation kernel, mailbox delivery, queue operations, SEM
// decode and prefetch consumption) runs millions of times per traversal, and
// a single fmt call, time.Now, map allocation, or closure sneaking in
// regresses every benchmark at once. Inside an annotated function the
// analyzer flags:
//
//   - any call into the fmt package (formatting allocates);
//   - time.Now (a vDSO call per visit is still a call per visit);
//   - map allocation: make(map...) or a map composite literal;
//   - function literals: a closure capturing variables escapes them to the
//     heap (including the append-into-captured-slice pattern); hoist it to a
//     named method as Engine.retire and kernelState.visit are.
const hotpathName = "hotpath"

var Hotpath = &Analyzer{
	Name: hotpathName,
	Doc:  "no fmt, time.Now, map allocation, or closures in //lint:hotpath functions",
	Run:  runHotpath,
}

// HotpathDirective is the doc-comment line that opts a function into the
// hotpath discipline.
const HotpathDirective = "//lint:hotpath"

func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == HotpathDirective {
			return true
		}
	}
	return false
}

func runHotpath(p *Package) []Diagnostic {
	var diags []Diagnostic
	flag := func(n ast.Node, fnName, msg string) {
		diags = append(diags, Diagnostic{
			Pos:      p.Fset.Position(n.Pos()),
			Analyzer: hotpathName,
			Message:  msg + " in hotpath function " + fnName,
		})
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !isHotpath(fn) || fn.Body == nil {
				continue
			}
			name := fn.Name.Name
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.CallExpr:
					if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
						if id, ok := sel.X.(*ast.Ident); ok {
							if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
								switch pn.Imported().Path() {
								case "fmt":
									flag(node, name, "call to fmt."+sel.Sel.Name+" (formats and allocates)")
								case "time":
									if sel.Sel.Name == "Now" {
										flag(node, name, "call to time.Now")
									}
								}
							}
						}
					}
					if id, ok := node.Fun.(*ast.Ident); ok && id.Name == "make" && len(node.Args) > 0 {
						if t := p.Info.TypeOf(node.Args[0]); t != nil {
							if _, isMap := t.Underlying().(*types.Map); isMap {
								flag(node, name, "map allocation (make)")
							}
						}
					}
				case *ast.CompositeLit:
					if t := p.Info.TypeOf(node); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							flag(node, name, "map allocation (composite literal)")
						}
					}
				case *ast.FuncLit:
					flag(node, name, "closure allocation (captured variables escape); hoist to a named method")
					return false // the closure's body is not this function's hot path
				}
				return true
			})
		}
	}
	return diags
}
