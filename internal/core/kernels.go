package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/pq"
)

// This file is the engine's algorithm layer: one generic label-relaxation
// kernel that BFS, SSSP, and CC all instantiate (the paper's Algorithms 2 and
// 4 are the same visitor with different relaxation arithmetic). The kernel is
// parameterized over graph.Adjacency, so every algorithm runs unchanged
// against the in-memory CSR and the semi-external store — SEM traversals get
// SemiSort, CoarseShift, queue selection, and mailbox batching with no
// per-backend visitor code.
//
// The shared visitor body (label-correcting, §III-B):
//
//	if it.Pri >= label[v]: return            // stale visitor, drop
//	label[v] = it.Pri                        // relax vertex information
//	for each neighbor t of v:
//	    push(step(it.Pri, weight), t)        // propose a better label
//
// Correctness does not depend on visit order: every relaxation is monotone,
// so any interleaving (including mailbox-delayed delivery) converges to the
// same labels, verified against the serial baselines in tests.

// stepFunc computes the label proposed to a neighbor reached over an edge of
// weight w from a vertex whose label just became pri.
type stepFunc func(pri uint64, w graph.Weight) uint64

func bfsStep(pri uint64, _ graph.Weight) uint64  { return pri + 1 }
func ssspStep(pri uint64, w graph.Weight) uint64 { return pri + uint64(w) }
func ccStep(pri uint64, _ graph.Weight) uint64   { return pri }

// kernelState is the per-traversal state of the shared relaxation kernel:
// the label (and optional parent) arrays plus the relaxation arithmetic. Its
// visit method is the engine's VisitFunc — a named method rather than a
// closure so the per-visit path allocates nothing and carries the hotpath
// annotation.
type kernelState[V graph.Vertex] struct {
	g      graph.Adjacency[V]
	labels []graph.Dist
	parent []V
	step   stepFunc
}

// visit is the shared visitor body (label-correcting, §III-B). The owner
// rule makes the labels/parent writes race-free: vertex v is only ever
// visited by its hash-designated owning worker, which AssertOwned checks
// under `-tags invariants`.
//
//lint:hotpath
func (k *kernelState[V]) visit(ctx *Ctx[V], it pq.Item) error {
	v := V(it.V)
	if it.Pri >= k.labels[v] {
		return nil // stale visitor: current label is already as good
	}
	ctx.AssertOwned(v)
	k.labels[v] = it.Pri // relax vertex information
	var aux uint64
	if k.parent != nil {
		k.parent[v] = V(it.Aux)
		aux = uint64(v)
	}
	targets, weights, err := k.g.Neighbors(v, ctx.Scratch)
	if err != nil {
		return err
	}
	if weights == nil {
		for _, t := range targets {
			ctx.Push(k.step(it.Pri, 1), t, aux)
		}
	} else {
		for i, t := range targets {
			ctx.Push(k.step(it.Pri, weights[i]), t, aux)
		}
	}
	return nil
}

// runKernel executes the shared label-relaxation traversal. labels must be
// length NumVertices and initialized to graph.InfDist ("initialized to
// infinity"). parent, when non-nil, records the proposing vertex of each
// accepted label (tree edges for BFS/SSSP); pass nil for algorithms without
// parent tracking (CC). seed issues the initial visitors between Start and
// Wait.
func runKernel[V graph.Vertex](
	g graph.Adjacency[V],
	cfg Config,
	pool *EnginePool[V],
	labels []graph.Dist,
	parent []V,
	step stepFunc,
	seed func(e *Engine[V]),
) (Stats, error) {
	k := &kernelState[V]{g: g, labels: labels, parent: parent, step: step}
	var e *Engine[V]
	if pool != nil {
		e = newEngine(cfg, k.visit, pool.acquire(), pool)
	} else {
		e = New[V](cfg, k.visit)
	}
	// Storage back ends with state-aware caching opt in through an optional
	// capability: a SettleProvider's sink receives the visitor lifecycle,
	// feeding the per-block settle counters behind the cache's eviction
	// scoring and span shaping. The sink is nil while state-aware caching is
	// inactive, so plain mounts wire nothing and run bit-identically to the
	// legacy engine.
	if sp, ok := g.(graph.SettleProvider); ok {
		if sink := sp.SettleSink(); sink != nil {
			e.SetSettle(sink)
		}
	}
	if cfg.Prefetch > 1 {
		if ba, ok := g.(graph.BatchAdjacency[V]); ok {
			e.SetPrefetch(func(window []pq.Item, scratch *graph.Scratch[V]) {
				vs := make([]V, 0, len(window))
				for _, it := range window {
					v := V(it.V)
					// A stale visitor will be dropped at visit time; skip its
					// I/O too. Reading labels here is race-free: every vertex
					// in the window is owned by the calling worker.
					if it.Pri < labels[v] {
						vs = append(vs, v)
					}
				}
				if len(vs) > 0 {
					ba.NeighborsBatch(vs, scratch)
				}
			})
		}
	}
	e.Start()
	seed(e)
	return e.Wait()
}

// initLabels fills labels with InfDist and parent (if non-nil) with NoVertex.
func initLabels[V graph.Vertex](labels []graph.Dist, parent []V) {
	for i := range labels {
		labels[i] = graph.InfDist
	}
	if parent != nil {
		no := graph.NoVertex[V]()
		for i := range parent {
			parent[i] = no
		}
	}
}

// BFS computes a breadth-first search by running the relaxation kernel with
// every edge weight treated as 1 (§III-B: "BFS = SSSP with all edge weights
// equal to 1"), so the same code path serves weighted graph storage.
func BFS[V graph.Vertex](g graph.Adjacency[V], src V, cfg Config) (*BFSResult[V], error) {
	return bfsKernel(g, src, cfg, nil)
}

func bfsKernel[V graph.Vertex](g graph.Adjacency[V], src V, cfg Config, pool *EnginePool[V]) (*BFSResult[V], error) {
	cfg.normalize()
	if cfg.Direction != DirectionTopDown {
		// Bottom-up and hybrid BFS run the level-synchronous direction driver,
		// which needs no engine resources (the pool, if any, stays untouched).
		return hybridBFS(g, src, cfg)
	}
	n := g.NumVertices()
	if uint64(src) >= n {
		return nil, fmt.Errorf("core: source %d out of range for %d vertices", src, n)
	}
	res := &BFSResult[V]{
		Level:  make([]graph.Dist, n),
		Parent: make([]V, n),
	}
	initLabels(res.Level, res.Parent)
	st, err := runKernel(g, cfg, pool, res.Level, res.Parent, bfsStep, func(e *Engine[V]) {
		e.Push(0, src, uint64(src))
	})
	res.Stats = st
	if err != nil {
		return nil, err
	}
	return res, nil
}

// SSSP computes single-source shortest paths with the asynchronous
// label-correcting traversal of Algorithms 1 and 2: a hybrid of Bellman-Ford
// (label correction, no global ordering) and Dijkstra (each queue pops its
// locally shortest path first). Vertices may be visited multiple times; the
// relaxation predicate makes every visit monotone, so the final labels equal
// Dijkstra's. Only non-negative weights are supported (uint32 enforces this
// by construction).
func SSSP[V graph.Vertex](g graph.Adjacency[V], src V, cfg Config) (*SSSPResult[V], error) {
	return ssspKernel(g, src, cfg, nil)
}

func ssspKernel[V graph.Vertex](g graph.Adjacency[V], src V, cfg Config, pool *EnginePool[V]) (*SSSPResult[V], error) {
	n := g.NumVertices()
	if uint64(src) >= n {
		return nil, fmt.Errorf("core: source %d out of range for %d vertices", src, n)
	}
	res := &SSSPResult[V]{
		Dist:   make([]graph.Dist, n),
		Parent: make([]V, n),
	}
	initLabels(res.Dist, res.Parent)
	st, err := runKernel(g, cfg, pool, res.Dist, res.Parent, ssspStep, func(e *Engine[V]) {
		e.Push(0, src, uint64(src)) // source visitor with path length 0, parent = self
	})
	res.Stats = st
	if err != nil {
		return nil, err
	}
	return res, nil
}

// CC computes connected components of an undirected graph (the input must be
// symmetric, e.g. produced with Builder.Symmetrize). The computation starts a
// visitor at every vertex labeled with its own id; when traversals merge, the
// one started from the lowest id "takes over the remainder of both
// traversals" (§III-C). Prioritizing smaller candidate ids prunes doomed
// traversals early.
func CC[V graph.Vertex](g graph.Adjacency[V], cfg Config) (*CCResult[V], error) {
	return ccKernel(g, cfg, nil)
}

func ccKernel[V graph.Vertex](g graph.Adjacency[V], cfg Config, pool *EnginePool[V]) (*CCResult[V], error) {
	n := g.NumVertices()
	labels := make([]graph.Dist, n)
	initLabels[V](labels, nil) // the paper's "initialized to infinity"
	st, err := runKernel(g, cfg, pool, labels, nil, ccStep, func(e *Engine[V]) {
		e.ParallelInit(n, func(i uint64) (uint64, V, uint64) {
			return i, V(i), 0 // each vertex starts as its own component id
		})
	})
	if err != nil {
		return nil, err
	}
	res := &CCResult[V]{ID: make([]V, n), Stats: st}
	no := graph.NoVertex[V]()
	for i, l := range labels {
		if l == graph.InfDist {
			res.ID[i] = no
		} else {
			res.ID[i] = V(l)
		}
	}
	return res, nil
}
