package graph

import "fmt"

// This file is the graph-layer shard router: one logical graph hash-partitioned
// across N member stores, each member owning the adjacency of the vertices the
// shard hash assigns to it. It lifts the engine's ownership-hash idea
// (core.FibHash routes a vertex to its owning worker) to the storage layer —
// the same multiplicative hash routes a vertex to its owning store — so a
// graph that outgrows one flash device composes several, FlashGraph-style.
// Each member keeps its own device, block cache, and prefetcher; the router
// only decides which member answers for which vertex and fans pop-windows out
// per shard.

// shardHashMul is the Fibonacci multiplicative constant, the same mixing
// multiplier the engine's FibHash uses for worker ownership. It is part of the
// on-disk shard contract: shard files record which hash partitioned them
// (sem's shard-map header), and changing this constant would orphan every
// sharded graph already written.
const shardHashMul = 0x9E3779B97F4A7C15

// ShardOf maps a vertex id to its owning shard in a `shards`-way partition.
// The assignment is baked into shard files at write time, so this function is
// versioned by the shard-map header's hash id and must never change for
// hash id 1.
func ShardOf(v uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int((v * shardHashMul) % uint64(shards))
}

// ExtractShard returns the sub-CSR holding exactly the adjacency owned by
// `shard` in a `shards`-way partition of g: the full vertex-id space is
// preserved and non-owned vertices simply have degree 0, so per-shard offsets
// index the same ids as the logical graph and no id translation ever happens
// on the traversal path.
func ExtractShard[V Vertex](g *CSR[V], shard, shards int) (*CSR[V], error) {
	if shards < 1 {
		return nil, fmt.Errorf("graph: shard count must be >= 1, got %d", shards)
	}
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("graph: shard %d out of range for %d shards", shard, shards)
	}
	n := g.NumVertices()
	offsets := make([]uint64, n+1)
	var m uint64
	for v := uint64(0); v < n; v++ {
		if ShardOf(v, shards) == shard {
			m += uint64(g.Degree(V(v)))
		}
		offsets[v+1] = m
	}
	targets := make([]V, m)
	var weights []Weight
	if g.Weighted() {
		weights = make([]Weight, m)
	}
	for v := uint64(0); v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		if lo == hi {
			continue
		}
		glo, ghi := g.offsets[v], g.offsets[v+1]
		copy(targets[lo:hi], g.targets[glo:ghi])
		if weights != nil {
			copy(weights[lo:hi], g.weights[glo:ghi])
		}
	}
	return NewCSRRaw(offsets, targets, weights)
}

// Sharded composes N member adjacencies into one logical graph: vertex v's
// neighbors come from member ShardOf(v, N). It implements Adjacency and
// BatchAdjacency, so the one traversal kernel runs over a sharded mount
// unchanged; NeighborsBatch partitions a worker's pop-window by owning shard
// and hands each member its group, so every shard's prefetcher coalesces and
// issues spans against its own device concurrently.
//
// Sharded itself is stateless beyond the member list — all per-worker state
// (per-shard sub-scratches, window groups) lives in the caller's Scratch — so
// one router is safely shared by any number of traversal workers and queries.
type Sharded[V Vertex] struct {
	members []Adjacency[V]
	// batch[k] is members[k]'s BatchAdjacency side, nil when the member
	// cannot service windows (then its group's reads stay synchronous).
	batch []BatchAdjacency[V]
	n     uint64
}

// NewSharded builds the router over members, which must all present the same
// vertex-id space. Member k must hold the adjacency of exactly the vertices
// with ShardOf(v, len(members)) == k (zero degree elsewhere); sem.MountShards
// validates that contract from the shard-map headers before calling this.
func NewSharded[V Vertex](members []Adjacency[V]) (*Sharded[V], error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("graph: sharded mount needs at least one member")
	}
	s := &Sharded[V]{
		members: members,
		batch:   make([]BatchAdjacency[V], len(members)),
		n:       members[0].NumVertices(),
	}
	for i, m := range members {
		if m == nil {
			return nil, fmt.Errorf("graph: sharded member %d is nil", i)
		}
		if nv := m.NumVertices(); nv != s.n {
			return nil, fmt.Errorf("graph: sharded member %d has %d vertices, member 0 has %d", i, nv, s.n)
		}
		s.batch[i], _ = m.(BatchAdjacency[V])
	}
	return s, nil
}

// Members exposes the per-shard back ends, in shard order, for stats
// inspection (device counters, prefetch stats). Callers must not mutate the
// slice.
func (s *Sharded[V]) Members() []Adjacency[V] { return s.members }

// NumShards reports the partition width.
func (s *Sharded[V]) NumShards() int { return len(s.members) }

// NumVertices implements Adjacency.
func (s *Sharded[V]) NumVertices() uint64 { return s.n }

// NumEdges sums the member edge counts: the logical graph's edge total.
func (s *Sharded[V]) NumEdges() uint64 {
	var m uint64
	for _, mem := range s.members {
		if ne, ok := mem.(interface{ NumEdges() uint64 }); ok {
			m += ne.NumEdges()
		}
	}
	return m
}

// Weighted reports whether the members carry edge weights (uniform across
// shards; validated at mount time).
func (s *Sharded[V]) Weighted() bool {
	if w, ok := s.members[0].(interface{ Weighted() bool }); ok {
		return w.Weighted()
	}
	return false
}

// Degree implements Adjacency by asking v's owning shard; every other member
// reports 0 for v by construction.
//
//lint:hotpath
func (s *Sharded[V]) Degree(v V) int {
	return s.members[ShardOf(uint64(v), len(s.members))].Degree(v)
}

// shardScratch is the router's per-worker state, stored in Scratch.Prefetch:
// one sub-scratch per member (so each shard's decode buffers and prefetch
// session stay isolated — two members must never share a session) and the
// reusable window groups of NeighborsBatch.
type shardScratch[V Vertex] struct {
	subs   []*Scratch[V]
	groups [][]V
}

// state returns the worker's shard scratch, building it on first use with
// this router (or when the scratch last served a mount of different width).
func (s *Sharded[V]) state(scratch *Scratch[V]) *shardScratch[V] {
	ss, ok := scratch.Prefetch.(*shardScratch[V])
	if !ok || len(ss.subs) != len(s.members) {
		ss = &shardScratch[V]{
			subs:   make([]*Scratch[V], len(s.members)),
			groups: make([][]V, len(s.members)),
		}
		for i := range ss.subs {
			ss.subs[i] = &Scratch[V]{}
		}
		scratch.Prefetch = ss
	}
	return ss
}

// Neighbors implements Adjacency: route to v's owning member with that
// member's sub-scratch, so a prefetched span started by NeighborsBatch on the
// same scratch is consumed without copying. The returned slices live in the
// member's sub-scratch and are valid until the next call for a vertex of the
// same shard on the same scratch.
//
//lint:hotpath
func (s *Sharded[V]) Neighbors(v V, scratch *Scratch[V]) ([]V, []Weight, error) {
	if scratch == nil {
		scratch = &Scratch[V]{}
	}
	k := ShardOf(uint64(v), len(s.members))
	return s.members[k].Neighbors(v, s.state(scratch).subs[k])
}

// NeighborsBatch implements BatchAdjacency: group the pop-window by owning
// shard, then announce each group to its member so per-shard extents coalesce
// among themselves (extents of different shards live in different files and
// could never merge) and every shard's device starts reading concurrently.
func (s *Sharded[V]) NeighborsBatch(vs []V, scratch *Scratch[V]) {
	if scratch == nil {
		return // nothing could ever consume the prefetched reads
	}
	ss := s.state(scratch)
	for i := range ss.groups {
		ss.groups[i] = ss.groups[i][:0]
	}
	for _, v := range vs {
		k := ShardOf(uint64(v), len(s.members))
		ss.groups[k] = append(ss.groups[k], v)
	}
	for k, b := range s.batch {
		if b != nil && len(ss.groups[k]) > 0 {
			b.NeighborsBatch(ss.groups[k], ss.subs[k])
		}
	}
}

// shardSettler routes settle notifications to each vertex's owning member's
// sink; members without an active state policy have a nil slot and their
// vertices' events are dropped (nothing would consume them).
type shardSettler struct {
	sinks []Settler
}

//lint:hotpath
func (s *shardSettler) VertexQueued(v uint64) {
	if sink := s.sinks[ShardOf(v, len(s.sinks))]; sink != nil {
		sink.VertexQueued(v)
	}
}

//lint:hotpath
func (s *shardSettler) VertexSettled(v uint64) {
	if sink := s.sinks[ShardOf(v, len(s.sinks))]; sink != nil {
		sink.VertexSettled(v)
	}
}

// SettleSink implements SettleProvider by composing the members' sinks into
// one ShardOf router. Nil — no engine notification overhead — unless at
// least one member is actively consuming settle events.
func (s *Sharded[V]) SettleSink() Settler {
	sinks := make([]Settler, len(s.members))
	any := false
	for i, m := range s.members {
		if sp, ok := m.(SettleProvider); ok {
			if sinks[i] = sp.SettleSink(); sinks[i] != nil {
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	return &shardSettler{sinks: sinks}
}

// HasInEdges reports whether every member can serve reverse adjacency, the
// router's dynamic side of the InAdjacency capability: shard writers store a
// vertex's in-edges on its owning member (the transpose is hash-partitioned
// by destination, same as the forward adjacency by source), so the partition
// is direction-capable only when every file carries its in-edge section.
func (s *Sharded[V]) HasInEdges() bool {
	for _, m := range s.members {
		if _, ok := InEdges(m); !ok {
			return false
		}
	}
	return true
}

// InDegree implements InAdjacency by asking v's owning shard.
//
//lint:hotpath
func (s *Sharded[V]) InDegree(v V) int {
	k := ShardOf(uint64(v), len(s.members))
	return s.members[k].(InAdjacency[V]).InDegree(v)
}

// InNeighbors implements InAdjacency: route to v's owning member with that
// member's sub-scratch, exactly like Neighbors.
//
//lint:hotpath
func (s *Sharded[V]) InNeighbors(v V, scratch *Scratch[V]) ([]V, error) {
	if scratch == nil {
		scratch = &Scratch[V]{}
	}
	k := ShardOf(uint64(v), len(s.members))
	return s.members[k].(InAdjacency[V]).InNeighbors(v, s.state(scratch).subs[k])
}

// ScanInEdges implements InScanner by handing the range to every member:
// each member holds the in-adjacency of exactly its owned vertices (zero
// in-degree elsewhere), so the per-member scans partition the range's
// in-edges and each stays sequential within its own store. Members without
// bulk scan support fall back to per-vertex InNeighbors over their owned
// ids.
func (s *Sharded[V]) ScanInEdges(lo, hi V, need func(V) bool, visit func(v V, in []V) error, scratch *Scratch[V]) error {
	if scratch == nil {
		scratch = &Scratch[V]{}
	}
	ss := s.state(scratch)
	for k, m := range s.members {
		if sc, ok := m.(InScanner[V]); ok {
			if err := sc.ScanInEdges(lo, hi, need, visit, ss.subs[k]); err != nil {
				return err
			}
			continue
		}
		ia := m.(InAdjacency[V])
		for v := lo; v < hi; v++ {
			if ShardOf(uint64(v), len(s.members)) != k || !need(v) || ia.InDegree(v) == 0 {
				continue
			}
			in, err := ia.InNeighbors(v, ss.subs[k])
			if err != nil {
				return err
			}
			if err := visit(v, in); err != nil {
				return err
			}
		}
	}
	return nil
}

var (
	_ BatchAdjacency[uint32] = (*Sharded[uint32])(nil)
	_ InScanner[uint32]      = (*Sharded[uint32])(nil)
	_ SettleProvider         = (*Sharded[uint32])(nil)
)
