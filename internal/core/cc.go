package core

import (
	"repro/internal/graph"
	"repro/internal/pq"
)

// CCResult holds the output of an undirected connected-components traversal:
// every vertex is labeled with the smallest vertex id connectable to it
// (Algorithms 3 and 4).
type CCResult[V graph.Vertex] struct {
	ID    []V // component label per vertex: the minimum vertex id in the component
	Stats Stats
}

// NumComponents counts distinct component labels.
func (r *CCResult[V]) NumComponents() uint64 {
	var count uint64
	for v, id := range r.ID {
		if uint64(id) == uint64(v) { // labels are component-minimum ids
			count++
		}
	}
	return count
}

// Sizes returns the size of each component keyed by its label.
func (r *CCResult[V]) Sizes() map[V]uint64 {
	sizes := make(map[V]uint64)
	for _, id := range r.ID {
		sizes[id]++
	}
	return sizes
}

// CC computes connected components of an undirected graph (the input must be
// symmetric, e.g. produced with Builder.Symmetrize). The computation starts a
// visitor at every vertex labeled with its own id; when traversals merge, the
// one started from the lowest id "takes over the remainder of both
// traversals" (§III-C). Prioritizing smaller candidate ids prunes doomed
// traversals early.
func CC[V graph.Vertex](g graph.Adjacency[V], cfg Config) (*CCResult[V], error) {
	n := g.NumVertices()
	res := &CCResult[V]{ID: make([]V, n)}
	no := graph.NoVertex[V]()
	for i := range res.ID {
		res.ID[i] = no // the paper's "initialized to infinity"
	}

	e := New[V](cfg, func(ctx *Ctx[V], it pq.Item) error {
		v := V(it.V)
		if it.Pri >= uint64(res.ID[v]) {
			return nil
		}
		res.ID[v] = V(it.Pri) // relax vertex information
		targets, _, err := g.Neighbors(v, ctx.Scratch)
		if err != nil {
			return err
		}
		for _, t := range targets {
			ctx.Push(it.Pri, t, 0)
		}
		return nil
	})
	e.Start()
	e.ParallelInit(n, func(i uint64) (uint64, V, uint64) {
		return i, V(i), 0 // each vertex starts as its own component id
	})
	st, err := e.Wait()
	res.Stats = st
	if err != nil {
		return nil, err
	}
	return res, nil
}
