// Command serve runs the traversal query service: it loads one or more graph
// files produced by cmd/gengraph as shared read-only stores — in-memory CSRs
// or semi-external stores on a simulated flash device — and answers BFS /
// SSSP / CC queries over HTTP (see internal/server).
//
// Each -graph flag loads one store. The spec is name=path[,sem[,profile]]:
//
//	serve -listen :8080 -graph rmat16=a16.asg
//	serve -graph small=a14.asg -graph big=a22.asg,sem,FusionIO
//
// Query it with:
//
//	curl localhost:8080/healthz
//	curl localhost:8080/v1/graphs
//	curl -d '{"graph":"rmat16","kernel":"bfs","source":0}' localhost:8080/v1/query
//	curl localhost:8080/metrics
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/sem"
	"repro/internal/server"
	"repro/internal/ssd"
)

// graphSpec is one parsed -graph flag: name=path[,sem[,profile]].
type graphSpec struct {
	name    string
	path    string
	sem     bool
	profile string
}

func parseSpec(arg string) (graphSpec, error) {
	var s graphSpec
	name, rest, ok := strings.Cut(arg, "=")
	if !ok || name == "" || rest == "" {
		return s, fmt.Errorf("graph spec %q: want name=path[,sem[,profile]]", arg)
	}
	s.name = name
	parts := strings.Split(rest, ",")
	s.path = parts[0]
	s.profile = "FusionIO"
	switch len(parts) {
	case 1:
	case 2, 3:
		if parts[1] != "sem" {
			return s, fmt.Errorf("graph spec %q: unknown option %q (want \"sem\")", arg, parts[1])
		}
		s.sem = true
		if len(parts) == 3 {
			s.profile = parts[2]
		}
	default:
		return s, fmt.Errorf("graph spec %q: too many options", arg)
	}
	if _, err := os.Stat(s.path); err != nil {
		return s, fmt.Errorf("graph %q: %w", s.name, err)
	}
	if s.sem {
		if _, err := ssd.ProfileByName(s.profile); err != nil {
			return s, fmt.Errorf("graph %q: %w", s.name, err)
		}
	}
	return s, nil
}

// load opens one graph file as a server.Graph, either decoded fully into an
// in-memory CSR or mounted semi-externally behind a block-cached simulated
// flash device.
func load(spec graphSpec, prefetch, prefetchGap int) (server.Graph, error) {
	g := server.Graph{Name: spec.name}
	f, err := os.Open(spec.path)
	if err != nil {
		return g, err
	}
	// The backing mmap-reads the file for the process lifetime; nothing to
	// close eagerly here.
	backing, err := ssd.NewFileBacking(f)
	if err != nil {
		_ = f.Close()
		return g, err
	}
	if !spec.sem {
		im, err := sem.LoadCSR[uint32](backing)
		if err != nil {
			return g, err
		}
		g.Adj, g.Storage = im, "im"
		return g, nil
	}
	p, err := ssd.ProfileByName(spec.profile)
	if err != nil {
		return g, err
	}
	dev := ssd.New(p, backing)
	cache, err := sem.NewCachedStoreRA(dev, 4096, backing.Size()/2, 8)
	if err != nil {
		return g, err
	}
	sg, err := sem.Open[uint32](cache)
	if err != nil {
		return g, err
	}
	if prefetch > 1 {
		sg.EnablePrefetch(sem.PrefetchConfig{MaxGap: prefetchGap})
	}
	g.Adj, g.Storage, g.Device, g.BlockCache = sg, "sem", dev, cache
	return g, nil
}

func main() {
	var specs []graphSpec
	var (
		listen       = flag.String("listen", ":8080", "address to serve HTTP on")
		concurrency  = flag.Int("concurrency", 4, "max traversals running at once")
		queue        = flag.Int("queue", 64, "max requests waiting for a traversal slot")
		queueTimeout = flag.Duration("queue-timeout", 2*time.Second, "max wait for a traversal slot before 503")
		queryTimeout = flag.Duration("query-timeout", 30*time.Second, "per-query traversal deadline")
		cacheEntries = flag.Int("cache", 64, "result-cache capacity in snapshots (negative disables)")
		workers      = flag.Int("workers", 0, "engine workers per traversal (0 = default)")
		semisort     = flag.Bool("semisort", true, "secondary vertex-id sort key (SEM locality)")
		batch        = flag.Int("batch", 0, "engine mailbox batch size (0 = default)")
		prefetch     = flag.Int("prefetch", 64, "SEM pop-window prefetch size (0 = off)")
		prefgap      = flag.Int("prefetchgap", sem.DefaultPrefetchGap, "max byte gap coalesced into one prefetch read")
	)
	flag.Func("graph", "graph to serve, as name=path[,sem[,profile]] (repeatable, required)", func(arg string) error {
		s, err := parseSpec(arg)
		if err != nil {
			return err
		}
		specs = append(specs, s)
		return nil
	})
	flag.Parse()
	if len(specs) == 0 {
		fmt.Fprintln(os.Stderr, "serve: at least one -graph name=path is required")
		flag.Usage()
		os.Exit(2)
	}

	s := server.New(server.Config{
		MaxConcurrent: *concurrency,
		MaxQueue:      *queue,
		QueueTimeout:  *queueTimeout,
		QueryTimeout:  *queryTimeout,
		CacheEntries:  *cacheEntries,
		Engine:        core.Config{Workers: *workers, SemiSort: *semisort, Batch: *batch, Prefetch: *prefetch},
	})
	for _, spec := range specs {
		g, err := load(spec, *prefetch, *prefgap)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
		if err := s.AddGraph(g); err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
		log.Printf("loaded %s (%s) from %s", spec.name, g.Storage, spec.path)
	}

	log.Printf("serving %d graph(s) on %s", len(specs), *listen)
	if err := http.ListenAndServe(*listen, s.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
}
