// Command gengraph generates the paper's synthetic workloads and writes them
// in the semi-external graph format consumed by cmd/traverse.
//
// Examples:
//
//	gengraph -type rmat-a -scale 16 -degree 16 -out a16.asg
//	gengraph -type rmat-b -scale 14 -undirected -out b14u.asg
//	gengraph -type rmat-a -scale 14 -weights uw -out a14w.asg
//	gengraph -type web -scale 15 -out web.asg
//	gengraph -type chain -scale 12 -out chain.asg
//	gengraph -type rmat-b -scale 16 -shards 4 -out b16.asg   # b16.asg.shard0..3
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/bits"
	"math/rand/v2"
	"os"

	"repro/internal/extsort"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sem"
)

func main() {
	var (
		typ        = flag.String("type", "rmat-a", "graph type: rmat-a, rmat-b, web, er, chain, grid")
		scale      = flag.Int("scale", 14, "log2 number of vertices")
		degree     = flag.Int("degree", 16, "average out-degree (rmat/er)")
		undirected = flag.Bool("undirected", false, "symmetrize edges (for CC)")
		weights    = flag.String("weights", "", "edge weights: '', uw (uniform), luw (log-uniform)")
		seed       = flag.Uint64("seed", 42, "generator seed")
		out        = flag.String("out", "", "output file (required)")
		outOfCore  = flag.Bool("outofcore", false, "build through the external-sort pipeline (bounded memory)")
		budget     = flag.Int("budget", 1<<20, "in-memory edge budget for -outofcore")
		compress   = flag.Bool("compress", false, "write the delta+varint compressed (v2) edge format")
		shards     = flag.Int("shards", 1, "hash-partition the graph into N shard files (out.shard0..N-1)")
		symmetric  = flag.Bool("symmetric", false, "write in-edge data for direction-optimized traversal: the symmetric flag with -undirected, else a transpose in-edge section")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "gengraph: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "gengraph: -shards must be >= 1, got %d\n", *shards)
		os.Exit(2)
	}
	if err := run(*typ, *scale, *degree, *undirected, *weights, *seed, *out, *outOfCore, *budget, *compress, *shards, *symmetric); err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}
}

func run(typ string, scale, degree int, undirected bool, weights string, seed uint64, out string, outOfCore bool, budget int, compress bool, shards int, symmetric bool) error {
	if outOfCore {
		if compress {
			// The external-sort builder streams fixed records straight to the
			// file; block encoding needs the whole adjacency list of a vertex.
			return fmt.Errorf("-compress does not combine with -outofcore; generate raw and convert -compress afterwards")
		}
		if shards > 1 {
			// Hash partitioning permutes edges across files; the external-sort
			// builder streams one sorted run and cannot scatter it.
			return fmt.Errorf("-shards does not combine with -outofcore; generate raw and convert -shards afterwards")
		}
		if symmetric {
			// The in-edge section needs the finished forward index (or the
			// whole-graph transpose); the streaming writer has neither.
			return fmt.Errorf("-symmetric does not combine with -outofcore; generate raw and convert -symmetric afterwards")
		}
		return runOutOfCore(typ, scale, degree, undirected, weights, seed, out, budget)
	}
	g, err := build(typ, scale, degree, undirected, seed)
	if err != nil {
		return err
	}
	switch weights {
	case "":
	case "uw":
		if g, err = gen.UniformWeights(g, seed+1); err != nil {
			return err
		}
	case "luw":
		if g, err = gen.LogUniformWeights(g, seed+1); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -weights %q (want uw or luw)", weights)
	}

	format := "raw"
	if compress {
		format = "compressed"
	}
	// An -undirected build already stores every edge in both directions, so
	// the symmetric flag serves in-edges for free; directed graphs pay for a
	// transpose section instead.
	wcfg := sem.WriteConfig{
		Compress:  compress,
		Symmetric: symmetric && undirected,
		InEdges:   symmetric && !undirected,
	}
	if symmetric {
		if wcfg.Symmetric {
			format += "+symmetric"
		} else {
			format += "+inedges"
		}
	}
	if shards > 1 {
		if err := writeShardFiles(out, g, wcfg, shards); err != nil {
			return err
		}
		fmt.Printf("wrote %s.shard0..%d (%s): %d vertices, %d edges, weighted=%v, undirected=%v\n",
			out, shards-1, format, g.NumVertices(), g.NumEdges(), g.Weighted(), undirected)
		return nil
	}
	if err := writeFile(out, func(w io.Writer) error {
		return sem.Write(w, g, wcfg)
	}); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%s): %d vertices, %d edges, weighted=%v, undirected=%v\n",
		out, format, g.NumVertices(), g.NumEdges(), g.Weighted(), undirected)
	return nil
}

// writeFile creates path and streams write's output through a buffered
// writer, closing cleanly on every path.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := write(w); err != nil {
		_ = f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// writeShardFiles hash-partitions g into `shards` files named
// base.shard0..N-1, each a complete ASG file with a shard map (and, when the
// write config asks, that shard's slice of the in-edge data).
func writeShardFiles(base string, g *graph.CSR[uint32], wcfg sem.WriteConfig, shards int) error {
	for k := 0; k < shards; k++ {
		cfg := wcfg
		cfg.Shard = &sem.ShardConfig{Shard: k, Shards: shards}
		if err := writeFile(sem.ShardFileName(base, k), func(w io.Writer) error {
			return sem.Write(w, g, cfg)
		}); err != nil {
			return err
		}
	}
	return nil
}

// runOutOfCore streams RMAT edges through the external-sort builder, never
// materializing the edge list in memory — how the paper-scale inputs
// (billions of edges) are prepared.
func runOutOfCore(typ string, scale, degree int, undirected bool, weights string, seed uint64, out string, budget int) error {
	var params gen.RMATParams
	switch typ {
	case "rmat-a":
		params = gen.RMATA
	case "rmat-b":
		params = gen.RMATB
	default:
		return fmt.Errorf("-outofcore supports rmat-a and rmat-b, got %q", typ)
	}
	n := uint64(1) << scale
	weighted := weights != ""
	b := extsort.NewBuilder(n, weighted, budget, "")
	defer b.Cleanup()
	wgen, err := weightGen(weights, n, seed+1)
	if err != nil {
		return err
	}
	// Stream edges in batches so peak memory stays at the batch size plus
	// the builder's budget.
	const batch = 1 << 18
	total := n * uint64(degree)
	for done := uint64(0); done < total; done += batch {
		want := uint64(batch)
		if done+want > total {
			want = total - done
		}
		for _, e := range gen.RMATEdges[uint32](scale, want, params, seed+done) {
			if err := b.Add(e.Src, e.Dst, wgen()); err != nil {
				return err
			}
			if undirected && e.Src != e.Dst {
				if err := b.Add(e.Dst, e.Src, wgen()); err != nil {
					return err
				}
			}
		}
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	m, err := b.WriteTo(f)
	if err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s out-of-core: %d vertices, %d unique edges, weighted=%v, undirected=%v\n",
		out, n, m, weighted, undirected)
	return nil
}

// weightGen returns a weight source for the requested scheme.
func weightGen(scheme string, n, seed uint64) (func() graph.Weight, error) {
	switch scheme {
	case "":
		return func() graph.Weight { return 1 }, nil
	case "uw":
		r := rand.New(rand.NewPCG(seed, seed^0xABCD))
		return func() graph.Weight { return graph.Weight(r.Uint64N(n)) }, nil
	case "luw":
		r := rand.New(rand.NewPCG(seed, seed^0xDCBA))
		lg := bits.Len64(n) - 1
		if lg < 1 {
			lg = 1
		}
		return func() graph.Weight {
			i := r.IntN(lg)
			return graph.Weight(r.Uint64N(uint64(1) << i))
		}, nil
	default:
		return nil, fmt.Errorf("unknown -weights %q (want uw or luw)", scheme)
	}
}

func build(typ string, scale, degree int, undirected bool, seed uint64) (*graph.CSR[uint32], error) {
	n := uint64(1) << scale
	switch typ {
	case "rmat-a", "rmat-b":
		p := gen.RMATA
		if typ == "rmat-b" {
			p = gen.RMATB
		}
		if undirected {
			return gen.RMATUndirected[uint32](scale, degree, p, seed)
		}
		return gen.RMAT[uint32](scale, degree, p, seed)
	case "web":
		return gen.WebGraph[uint32](n, 4, 2, seed) // always undirected
	case "er":
		return gen.ErdosRenyi[uint32](n, n*uint64(degree), seed)
	case "chain":
		return gen.Chain[uint32](n)
	case "grid":
		side := uint64(1) << (scale / 2)
		return gen.Grid[uint32](side, n/side)
	default:
		return nil, fmt.Errorf("unknown -type %q (want rmat-a, rmat-b, web, er, chain, grid)", typ)
	}
}
