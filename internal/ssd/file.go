package ssd

import (
	"fmt"
	"os"
)

// FileBacking adapts an *os.File to the Backing interface so a simulated
// device can sit on top of a real on-disk graph file (cmd/traverse's SEM
// mode), or so graphs can be written through the device's write-cost model.
type FileBacking struct {
	f    *os.File
	size int64
}

// NewFileBacking wraps an open file. The size is captured at wrap time;
// writes past the end extend it.
func NewFileBacking(f *os.File) (*FileBacking, error) {
	info, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("ssd: stat %s: %w", f.Name(), err)
	}
	return &FileBacking{f: f, size: info.Size()}, nil
}

// ReadAt implements Backing.
func (b *FileBacking) ReadAt(p []byte, off int64) (int, error) {
	return b.f.ReadAt(p, off)
}

// WriteAt implements Backing.
func (b *FileBacking) WriteAt(p []byte, off int64) (int, error) {
	n, err := b.f.WriteAt(p, off)
	if end := off + int64(n); end > b.size {
		b.size = end
	}
	return n, err
}

// Size implements Backing.
func (b *FileBacking) Size() int64 { return b.size }
