package ssd

import (
	"bytes"
	"testing"
	"time"
)

func fastProfile(channels int) Profile {
	return Profile{
		Name:         "test",
		Channels:     channels,
		ReadLatency:  200 * time.Microsecond,
		WriteLatency: 400 * time.Microsecond,
	}
}

func TestMemBackingReadWrite(t *testing.T) {
	m := &MemBacking{}
	if _, err := m.WriteAt([]byte("hello"), 3); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 8 {
		t.Fatalf("size = %d, want 8", m.Size())
	}
	buf := make([]byte, 5)
	if _, err := m.ReadAt(buf, 3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("hello")) {
		t.Fatalf("read %q", buf)
	}
}

func TestMemBackingErrors(t *testing.T) {
	m := &MemBacking{Data: make([]byte, 10)}
	if _, err := m.ReadAt(make([]byte, 4), 8); err == nil {
		t.Fatal("short read did not error")
	}
	if _, err := m.ReadAt(make([]byte, 4), -1); err == nil {
		t.Fatal("negative offset did not error")
	}
	if _, err := m.WriteAt([]byte("x"), -1); err == nil {
		t.Fatal("negative write offset did not error")
	}
}

func TestDeviceReadWriteRoundTrip(t *testing.T) {
	d := New(fastProfile(4), &MemBacking{})
	data := []byte("semi-external")
	if _, err := d.WriteAt(data, 100); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if _, err := d.ReadAt(buf, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("read %q, want %q", buf, data)
	}
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.BytesRead != uint64(len(data)) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeviceChargesLatency(t *testing.T) {
	p := fastProfile(1)
	p.ReadLatency = 2 * time.Millisecond
	d := New(p, &MemBacking{Data: make([]byte, 64)})
	start := time.Now()
	const ops = 5
	buf := make([]byte, 8)
	for i := 0; i < ops; i++ {
		if _, err := d.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < ops*p.ReadLatency {
		t.Fatalf("5 serialized reads took %v, want >= %v", elapsed, ops*p.ReadLatency)
	}
}

func TestDeviceBoundsConcurrency(t *testing.T) {
	// With 2 channels and 20ms service, 8 concurrent 1-op readers need
	// ceil(8/2)*20ms = 80ms; unlimited concurrency would need ~20ms.
	p := Profile{Name: "t", Channels: 2, ReadLatency: 20 * time.Millisecond}
	d := New(p, &MemBacking{Data: make([]byte, 64)})
	start := time.Now()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			buf := make([]byte, 8)
			d.ReadAt(buf, 0)
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if elapsed := time.Since(start); elapsed < 75*time.Millisecond {
		t.Fatalf("8 reads on 2 channels took %v, want >= ~80ms", elapsed)
	}
}

func TestProfileSaturatedIOPS(t *testing.T) {
	// Paper ceilings divided by TimeScale (200k/60k/30k at 1:10).
	if got := FusionIO.SaturatedReadIOPS(); got < 19000 || got > 21000 {
		t.Fatalf("FusionIO saturated IOPS = %f, want ~200k/TimeScale", got)
	}
	if got := Intel.SaturatedReadIOPS(); got < 5500 || got > 6500 {
		t.Fatalf("Intel saturated IOPS = %f, want ~60k/TimeScale", got)
	}
	if got := Corsair.SaturatedReadIOPS(); got < 2800 || got > 3200 {
		t.Fatalf("Corsair saturated IOPS = %f, want ~30k/TimeScale", got)
	}
	if (Profile{}).SaturatedReadIOPS() != 0 {
		t.Fatal("zero profile should have 0 IOPS")
	}
}

func TestProfileOrdering(t *testing.T) {
	// The paper's device ordering must hold in the model: FusionIO fastest.
	if !(FusionIO.SaturatedReadIOPS() > Intel.SaturatedReadIOPS() &&
		Intel.SaturatedReadIOPS() > Corsair.SaturatedReadIOPS()) {
		t.Fatal("device IOPS ordering violated")
	}
	if !(FusionIO.ReadLatency < Intel.ReadLatency && Intel.ReadLatency < Corsair.ReadLatency) {
		t.Fatal("device latency ordering violated")
	}
	for _, p := range Profiles {
		if p.WriteLatency <= p.ReadLatency {
			t.Fatalf("%s: writes must cost more than reads", p.Name)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("Intel")
	if err != nil || p.Name != "Intel" {
		t.Fatalf("ProfileByName(Intel) = %+v, %v", p, err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile did not error")
	}
}

func TestIOPSRisesWithThreadsThenSaturates(t *testing.T) {
	// Figure 1's shape: more threads -> more IOPS, flattening at the
	// device's parallelism.
	p := Profile{Name: "t", Channels: 4, ReadLatency: 1 * time.Millisecond}
	d := New(p, &MemBacking{Data: make([]byte, 1<<16)})
	const dur = 150 * time.Millisecond
	one := MeasureReadIOPS(d, 1, 512, dur, 1)
	four := MeasureReadIOPS(d, 4, 512, dur, 2)
	sixteen := MeasureReadIOPS(d, 16, 512, dur, 3)
	if one <= 0 {
		t.Fatal("no ops measured")
	}
	if four < one*1.5 {
		t.Fatalf("IOPS did not rise with threads: 1->%f, 4->%f", one, four)
	}
	// Saturation: 16 threads cannot exceed the 4-channel ceiling by much.
	if sixteen > four*2 {
		t.Fatalf("IOPS did not saturate: 4->%f, 16->%f (ceiling %f)",
			four, sixteen, p.SaturatedReadIOPS())
	}
}

func TestMeasureReadIOPSDegenerate(t *testing.T) {
	d := New(fastProfile(2), &MemBacking{Data: make([]byte, 16)})
	if MeasureReadIOPS(d, 0, 8, time.Millisecond, 1) != 0 {
		t.Fatal("0 threads should give 0 IOPS")
	}
	if MeasureReadIOPS(d, 1, 0, time.Millisecond, 1) != 0 {
		t.Fatal("0-byte reads should give 0 IOPS")
	}
	if MeasureReadIOPS(d, 1, 64, time.Millisecond, 1) != 0 {
		t.Fatal("read larger than device should give 0 IOPS")
	}
}

func TestBandwidthTermIncreasesLargeReadCost(t *testing.T) {
	p := Profile{Name: "t", Channels: 1, ReadLatency: time.Microsecond, BytesPerSec: 1 << 20}
	d := New(p, &MemBacking{Data: make([]byte, 1<<20)})
	start := time.Now()
	buf := make([]byte, 1<<19) // 512 KiB at 1 MiB/s -> ~500ms
	if _, err := d.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 400*time.Millisecond {
		t.Fatalf("large read took %v, want >= ~500ms of bandwidth charge", elapsed)
	}
}
