package core

import (
	"sync/atomic"

	"repro/internal/invariant"
)

// Terminator implements the paper's asynchronous termination detection (the
// pri_q_visit.wait() of §III): an atomic counter of queued-but-unfinished
// visitors. A push increments the counter *before* the visitor is enqueued
// (or buffered in a mailbox outbox), and the owning worker decrements it only
// *after* the visit completes, so any visitors pushed during the visit keep
// the count positive. The traversal has terminated exactly when the counter
// reaches zero.
//
// The counter is created holding one extra "init token" so it cannot reach
// zero while the caller is still issuing initial pushes; Release drops the
// token when initialization is complete.
//
// Terminator is shared by the ownership-hashed engine (Engine) and the
// lock-free work-stealing alternative (internal/lockfree): the detection
// protocol is independent of the queueing discipline.
type Terminator struct {
	// outstanding counts queued-or-executing visitors plus the init token.
	// Every Start and Finish from every worker hits this cell, making it the
	// hottest word in the engine; the pads give it (and peak) a cache line
	// each, so Finish's decrement — which never touches peak — does not drag
	// the CAS loop's line along, and neither cell false-shares with whatever
	// the allocator places next to the Terminator.
	outstanding atomic.Int64
	_           [56]byte
	// peak is a monotone high-water mark of outstanding, maintained with a
	// CompareAndSwap loop so concurrent pushes can never overwrite a larger
	// observed peak with a smaller one.
	peak atomic.Int64
	_    [56]byte
}

// NewTerminator returns a Terminator holding the init token.
func NewTerminator() *Terminator {
	t := &Terminator{}
	t.outstanding.Store(1)
	return t
}

// Start registers one unit of outstanding work. Call before making the work
// visible to any consumer.
func (t *Terminator) Start() {
	out := t.outstanding.Add(1)
	for {
		p := t.peak.Load()
		if out <= p || t.peak.CompareAndSwap(p, out) {
			return
		}
	}
}

// Finish completes one unit of work and reports whether the computation has
// terminated (counter reached zero).
func (t *Terminator) Finish() bool {
	n := t.outstanding.Add(-1)
	if invariant.Enabled && n < 0 {
		// A negative count means a Finish without a matching Start (or a
		// double Release): termination would have been declared while work
		// could still be outstanding — the protocol's worst failure mode,
		// normally visible only as a rare lost-update hang or wrong answer.
		invariant.Failf("terminator underflow: outstanding work count %d < 0", n)
	}
	return n == 0
}

// Release drops the init token once the caller has issued every initial unit
// of work, and reports whether the computation already terminated (no work
// was ever outstanding, or all of it finished before Release).
func (t *Terminator) Release() bool {
	return t.Finish()
}

// Outstanding reports the current count, including the init token while held.
// Intended for diagnostics; the value is immediately stale under concurrency.
func (t *Terminator) Outstanding() int64 {
	return t.outstanding.Load()
}

// Peak reports the maximum number of simultaneously outstanding work units
// observed, excluding the init token — the paper's available path-parallelism
// measurement (§III-B1).
func (t *Terminator) Peak() int64 {
	p := t.peak.Load() - 1 // exclude the init token
	if p < 0 {
		return 0
	}
	return p
}
