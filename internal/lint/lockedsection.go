package lint

import (
	"go/ast"
	"go/types"
)

// LockedSection flags sync.Mutex / sync.RWMutex critical sections that can
// leak the lock: a Lock()/RLock() statement with neither a matching deferred
// unlock in the enclosing function nor a matching unlock later in the same
// statement list, and return statements inside the locked region that are
// not preceded by an unlock in their own block. The engine's mailbox layer
// (workQueue) and the server's graph registry both rely on short manual
// lock/unlock sections on the hot path where defer is too costly — this
// check keeps those sections honest as they are edited.
//
// The analysis is intentionally lexical (no CFG): it catches the common
// mutations — adding an early return inside a critical section, deleting the
// trailing unlock — and accepts any section covered by `defer x.Unlock()`.
const lockedSectionName = "locked-section"

var LockedSection = &Analyzer{
	Name: lockedSectionName,
	Doc:  "Lock without a dominating Unlock/defer Unlock on every return path",
	Run:  runLockedSection,
}

// lockCall identifies a mutex method call statement: the printed receiver
// expression plus the method name.
type lockCall struct {
	recv   string
	method string
}

// mutexCall decodes stmt as a call to a Lock/Unlock-family method on a
// sync.Mutex or sync.RWMutex value.
func mutexCall(info *types.Info, stmt ast.Stmt) (lockCall, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return lockCall{}, false
	}
	return mutexCallExpr(info, es.X)
}

func mutexCallExpr(info *types.Info, x ast.Expr) (lockCall, bool) {
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return lockCall{}, false
	}
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockCall{}, false
	}
	switch fun.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockCall{}, false
	}
	t := info.TypeOf(fun.X)
	if t == nil {
		return lockCall{}, false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return lockCall{}, false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return lockCall{}, false
	}
	return lockCall{recv: types.ExprString(fun.X), method: fun.Sel.Name}, true
}

// unlockFor maps a lock method to its required release.
func unlockFor(method string) string {
	if method == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

func runLockedSection(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range p.Files {
		// Examine each function independently; nested function literals are
		// separate functions (their defers do not release the outer lock).
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				diags = append(diags, checkFunc(p, body)...)
			}
			return true
		})
	}
	return diags
}

// checkFunc analyzes one function body (not descending into nested function
// literals).
func checkFunc(p *Package, body *ast.BlockStmt) []Diagnostic {
	// Collect the function's deferred unlocks.
	deferred := make(map[lockCall]bool)
	walkShallow(body, func(n ast.Node) {
		if d, ok := n.(*ast.DeferStmt); ok {
			if lc, ok := mutexCallExpr(p.Info, d.Call); ok {
				deferred[lockCall{recv: lc.recv, method: lc.method}] = true
			}
		}
	})

	var diags []Diagnostic
	// Visit every statement list in the function.
	var lists [][]ast.Stmt
	walkShallow(body, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.BlockStmt:
			lists = append(lists, s.List)
		case *ast.CaseClause:
			lists = append(lists, s.Body)
		case *ast.CommClause:
			lists = append(lists, s.Body)
		}
	})
	for _, list := range lists {
		diags = append(diags, checkList(p, list, deferred)...)
	}
	return diags
}

// checkList inspects one statement list for Lock statements and validates
// their critical sections.
func checkList(p *Package, list []ast.Stmt, deferred map[lockCall]bool) []Diagnostic {
	var diags []Diagnostic
	for i, stmt := range list {
		lc, ok := mutexCall(p.Info, stmt)
		if !ok || (lc.method != "Lock" && lc.method != "RLock") {
			continue
		}
		want := lockCall{recv: lc.recv, method: unlockFor(lc.method)}
		if deferred[want] {
			continue // covered on every path by defer
		}
		// Find the matching unlock later in the same list.
		unlockIdx := -1
		for j := i + 1; j < len(list); j++ {
			if u, ok := mutexCall(p.Info, list[j]); ok && u == want {
				unlockIdx = j
				break
			}
		}
		if unlockIdx < 0 {
			diags = append(diags, Diagnostic{
				Pos:      p.Fset.Position(stmt.Pos()),
				Analyzer: lockedSectionName,
				Message:  lc.recv + "." + lc.method + "() has no matching " + want.recv + "." + want.method + "() in this block and no defer; the lock can leak",
			})
			continue
		}
		// Any return between the lock and its unlock must release the lock
		// in its own block first.
		for _, mid := range list[i+1 : unlockIdx] {
			diags = append(diags, checkEscapes(p, mid, want)...)
		}
	}
	return diags
}

// checkEscapes walks a statement inside a critical section and flags return
// statements not preceded by the required unlock within their own enclosing
// statement list.
func checkEscapes(p *Package, stmt ast.Stmt, want lockCall) []Diagnostic {
	var diags []Diagnostic
	var visitList func(list []ast.Stmt, released bool)
	var visitStmt func(s ast.Stmt, released bool)
	visitList = func(list []ast.Stmt, released bool) {
		for _, s := range list {
			if u, ok := mutexCall(p.Info, s); ok && u == want {
				released = true
			}
			visitStmt(s, released)
		}
	}
	visitStmt = func(s ast.Stmt, released bool) {
		switch st := s.(type) {
		case *ast.ReturnStmt:
			if !released {
				diags = append(diags, Diagnostic{
					Pos:      p.Fset.Position(st.Pos()),
					Analyzer: lockedSectionName,
					Message:  "return inside " + want.recv + " critical section without " + want.recv + "." + want.method + "()",
				})
			}
		case *ast.BlockStmt:
			visitList(st.List, released)
		case *ast.IfStmt:
			visitList(st.Body.List, released)
			if st.Else != nil {
				visitStmt(st.Else, released)
			}
		case *ast.ForStmt:
			visitList(st.Body.List, released)
		case *ast.RangeStmt:
			visitList(st.Body.List, released)
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					visitList(cc.Body, released)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					visitList(cc.Body, released)
				}
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					visitList(cc.Body, released)
				}
			}
		case *ast.LabeledStmt:
			visitStmt(st.Stmt, released)
		}
	}
	visitStmt(stmt, false)
	return diags
}

// walkShallow walks the subtree rooted at n, invoking fn on every node but
// not descending into nested function literals.
func walkShallow(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok && node != n {
			return false
		}
		if node != nil {
			fn(node)
		}
		return true
	})
}
