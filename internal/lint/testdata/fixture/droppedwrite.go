package fixture

// Seeded droppederr extension cases: Encode/WriteString coverage and the
// defer-Close-on-a-write-path rule.

type sink struct{}

func (s *sink) Write(p []byte) (int, error)       { return len(p), nil }
func (s *sink) WriteString(x string) (int, error) { return len(x), nil }
func (s *sink) Encode(v any) error                { return nil }
func (s *sink) Close() error                      { return nil }

// deferClosedWriter checks its write errors but defers Close unchecked: the
// close error completes the write path, so the defer silently discards the
// final failure. Violation.
func deferClosedWriter(s *sink, p []byte) error {
	defer s.Close()
	if _, err := s.Write(p); err != nil {
		return err
	}
	return nil
}

// encodeDropped drops an Encode error: violation.
func encodeDropped(s *sink, v any) {
	s.Encode(v)
}

// writeStringDropped drops a WriteString error: violation.
func writeStringDropped(s *sink) {
	s.WriteString("x")
}

type reader struct{}

func (r *reader) Read(p []byte) (int, error) { return 0, nil }
func (r *reader) Close() error               { return nil }

// readOnlyDefer closes a read-side resource by defer: conventional, no
// diagnostic.
func readOnlyDefer(r *reader, p []byte) error {
	defer r.Close()
	_, err := r.Read(p)
	return err
}

// explicitClose checks both the write and the close: no diagnostic.
func explicitClose(s *sink, p []byte) error {
	if _, err := s.Write(p); err != nil {
		return err
	}
	return s.Close()
}
