package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// bodyWalker attaches per-function concurrency facts to one funcNode: lock
// acquisitions with the lexically-held set at each site, blocking operations,
// call edges, dynamic dispatch sites, goroutine spawns, and join signals.
//
// Held-lock tracking is lexical, the same bargain lockedsection.go makes: a
// Lock() statement adds its class, an Unlock() removes it, `defer Unlock()`
// keeps it held to the end of the function, and effects inside branches are
// not propagated past the branch (an unlock under `if` does not clear the
// straight-line held set). This is a may-hold approximation — precise enough
// for the repo's short critical sections, cheap enough to run on every CI
// push.

type bodyWalker struct {
	prog *program
	p    *Package
	node *funcNode
	lits map[*ast.FuncLit]string
	litN int
}

// externalBlocking names methods assumed to block when the callee is outside
// the program (time.Sleep, os.File.ReadAt) or reached through an interface
// (graph.Store.ReadAt on the I/O pool path).
var externalBlocking = map[string]bool{
	"Wait":    true,
	"ReadAt":  true,
	"WriteAt": true,
	"Sleep":   true,
}

func heldAdd(held []string, class string) []string {
	for _, h := range held {
		if h == class {
			return held
		}
	}
	out := make([]string, len(held)+1)
	copy(out, held)
	out[len(held)] = class
	return out
}

func heldRemove(held []string, class string) []string {
	var out []string
	for _, h := range held {
		if h != class {
			out = append(out, h)
		}
	}
	return out
}

// list walks one statement list, threading the held set through it.
func (w *bodyWalker) list(stmts []ast.Stmt, held []string) {
	for _, s := range stmts {
		held = w.stmt(s, held)
	}
}

// stmt processes one statement and returns the held set after it.
func (w *bodyWalker) stmt(s ast.Stmt, held []string) []string {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if kind, meth, recv, ok := w.syncCall(call); ok && (kind == "Mutex" || kind == "RWMutex") {
				class := classOf(w.p, recv)
				switch meth {
				case "Lock", "RLock", "TryLock", "TryRLock":
					w.acquire(class, meth, call.Pos(), held)
					return heldAdd(held, class)
				case "Unlock", "RUnlock":
					return heldRemove(held, class)
				}
				return held
			}
		}
		w.expr(st.X, held)
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			w.expr(rhs, held)
		}
		for _, lhs := range st.Lhs {
			w.expr(lhs, held)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held)
					}
				}
			}
		}
	case *ast.GoStmt:
		w.spawn(st, held)
	case *ast.DeferStmt:
		w.deferCall(st.Call, held)
	case *ast.SendStmt:
		w.expr(st.Chan, held)
		w.expr(st.Value, held)
		w.node.sends = append(w.node.sends, sendSig{class: chanClass(w.p, st.Chan), pos: st.Pos()})
		w.node.blocks = append(w.node.blocks, blockSite{what: "channel send", pos: st.Pos(), held: held})
	case *ast.IncDecStmt:
		w.expr(st.X, held)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.expr(r, held)
		}
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, held)
	case *ast.BlockStmt:
		w.list(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held = w.stmt(st.Init, held)
		}
		w.expr(st.Cond, held)
		w.list(st.Body.List, held)
		if st.Else != nil {
			w.stmt(st.Else, held)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			held = w.stmt(st.Init, held)
		}
		if st.Cond != nil {
			w.expr(st.Cond, held)
		}
		w.list(st.Body.List, held)
		if st.Post != nil {
			w.stmt(st.Post, held)
		}
	case *ast.RangeStmt:
		w.expr(st.X, held)
		if t := w.p.Info.TypeOf(st.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				if class := chanClass(w.p, st.X); class != "" {
					w.node.recvs[class] = true
				}
				w.node.blocks = append(w.node.blocks, blockSite{what: "channel receive (range)", pos: st.Pos(), held: held})
			}
		}
		w.list(st.Body.List, held)
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = w.stmt(st.Init, held)
		}
		if st.Tag != nil {
			w.expr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.list(cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			held = w.stmt(st.Init, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.list(cc.Body, held)
			}
		}
	case *ast.SelectStmt:
		w.selectStmt(st, held)
	}
	return held
}

func (w *bodyWalker) acquire(class, method string, pos token.Pos, held []string) {
	w.node.acquires = append(w.node.acquires, acqSite{
		class:     class,
		method:    method,
		pos:       pos,
		held:      held,
		annotated: w.prog.suppressed("lockorder", pos),
	})
}

// selectStmt records one blocking site for the whole select (none when a
// default clause makes it a poll) and harvests the comm clauses' join
// signals without double-counting each comm as its own blocking operation.
func (w *bodyWalker) selectStmt(st *ast.SelectStmt, held []string) {
	hasDefault := false
	for _, c := range st.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			hasDefault = true
			continue
		}
		switch comm := cc.Comm.(type) {
		case *ast.SendStmt:
			w.expr(comm.Value, held)
			w.node.sends = append(w.node.sends, sendSig{class: chanClass(w.p, comm.Chan), pos: comm.Pos()})
		case *ast.ExprStmt:
			if u, ok := comm.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				w.commRecv(u)
			}
		case *ast.AssignStmt:
			for _, rhs := range comm.Rhs {
				if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					w.commRecv(u)
				}
			}
		}
	}
	if !hasDefault {
		w.node.blocks = append(w.node.blocks, blockSite{what: "select without default", pos: st.Pos(), held: held})
	}
	for _, c := range st.Body.List {
		if cc, ok := c.(*ast.CommClause); ok {
			w.list(cc.Body, held)
		}
	}
}

// commRecv records the join-signal side of a receive appearing as a select
// comm: a context-done watcher or a receive from a classed channel.
func (w *bodyWalker) commRecv(u *ast.UnaryExpr) {
	if w.isDoneChan(u.X) {
		w.node.ctxDone = true
		return
	}
	if class := chanClass(w.p, u.X); class != "" {
		w.node.recvs[class] = true
	}
}

// isDoneChan matches `x.Done()` receive sources: the context watcher idiom.
func (w *bodyWalker) isDoneChan(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Done"
}

// expr scans an expression for calls, receives, and function literals.
// Nested literals become their own nodes and are not walked as part of this
// function.
func (w *bodyWalker) expr(e ast.Expr, held []string) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.litNode(x)
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.recvOp(x, held)
			}
		case *ast.CallExpr:
			w.call(x, held)
		}
		return true
	})
}

// recvOp records a standalone (non-select) channel receive.
func (w *bodyWalker) recvOp(x *ast.UnaryExpr, held []string) {
	if w.isDoneChan(x.X) {
		w.node.ctxDone = true
		w.node.blocks = append(w.node.blocks, blockSite{what: "channel receive", pos: x.Pos(), held: held})
		return
	}
	if class := chanClass(w.p, x.X); class != "" {
		w.node.recvs[class] = true
	}
	w.node.blocks = append(w.node.blocks, blockSite{what: "channel receive", pos: x.Pos(), held: held})
}

// call classifies one call expression: sync primitive operations, builtin
// close, static call edges, dynamic dispatch sites, and function literals
// passed as arguments (conservatively assumed to be invoked by the callee,
// which covers sync.Once.Do and sort.Slice).
func (w *bodyWalker) call(call *ast.CallExpr, held []string) {
	if tv, ok := w.p.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltinFn := w.p.Info.Uses[id].(*types.Builtin); isBuiltinFn {
			if id.Name == "close" {
				w.node.chanClose = true
			}
			return
		}
	}
	if kind, meth, recv, ok := w.syncCall(call); ok {
		class := classOf(w.p, recv)
		switch kind {
		case "Mutex", "RWMutex":
			switch meth {
			case "Lock", "RLock", "TryLock", "TryRLock":
				// Acquisition in expression position (if mu.TryLock() { ... }):
				// record the edge; the lexical held set is not extended.
				w.acquire(class, meth, call.Pos(), held)
			}
			return
		case "WaitGroup":
			switch meth {
			case "Done":
				w.node.wgDone = true
			case "Wait":
				w.node.blocks = append(w.node.blocks, blockSite{what: "sync.WaitGroup.Wait", pos: call.Pos(), held: held})
			}
			return
		case "Cond":
			if meth == "Wait" {
				w.node.blocks = append(w.node.blocks, blockSite{
					what:      "sync.Cond.Wait",
					pos:       call.Pos(),
					held:      held,
					condOwner: ownerPrefix(class),
				})
			}
			return
		}
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		w.node.calls = append(w.node.calls, callEdge{callee: w.litNode(lit), pos: call.Pos(), held: held})
	} else if key, dyn := w.resolveCallee(call); key != "" {
		w.node.calls = append(w.node.calls, callEdge{callee: key, pos: call.Pos(), held: held})
	} else if dyn != nil {
		dyn.pos = call.Pos()
		dyn.held = held
		w.node.dyncalls = append(w.node.dyncalls, *dyn)
	}
	for _, arg := range call.Args {
		if lit, ok := arg.(*ast.FuncLit); ok {
			w.node.calls = append(w.node.calls, callEdge{callee: w.litNode(lit), pos: call.Pos(), held: held})
		}
	}
}

// resolveCallee classifies a call target: a function key for direct calls to
// declared functions and concrete methods (in-program or not), a dynCall for
// interface dispatch, or neither for calls through func values.
func (w *bodyWalker) resolveCallee(call *ast.CallExpr) (string, *dynCall) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := w.p.Info.Uses[fun].(*types.Func); ok {
			return funcKey(fn), nil
		}
	case *ast.SelectorExpr:
		if sel, ok := w.p.Info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return "", nil // func-typed field: unresolved
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return "", nil
			}
			recvT := sel.Recv()
			if ptr, isPtr := recvT.Underlying().(*types.Pointer); isPtr {
				recvT = ptr.Elem()
			}
			if _, isIface := recvT.Underlying().(*types.Interface); isIface {
				sig, _ := fn.Type().(*types.Signature)
				if sig == nil {
					return "", nil
				}
				return "", &dynCall{name: fn.Name(), sig: sigKey(fn.Name(), sig)}
			}
			return funcKey(fn), nil
		}
		if fn, ok := w.p.Info.Uses[fun.Sel].(*types.Func); ok {
			return funcKey(fn), nil // package-qualified function
		}
	}
	return "", nil
}

// spawn records a `go` statement. The spawned callee is resolved like a call
// but produces a spawnSite, never a call edge: the goroutine's locking and
// blocking happen on its own stack.
func (w *bodyWalker) spawn(st *ast.GoStmt, held []string) {
	key := ""
	if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
		key = w.litNode(lit)
	} else if k, _ := w.resolveCallee(st.Call); k != "" {
		key = k
	}
	for _, arg := range st.Call.Args {
		w.expr(arg, held)
	}
	w.node.spawns = append(w.node.spawns, spawnSite{callee: key, pos: st.Pos()})
}

// deferCall handles `defer f(...)`: deferred unlocks keep the lock held to
// function end (lockedsection.go owns leak checking), everything else is a
// call that runs with the statement's held set.
func (w *bodyWalker) deferCall(call *ast.CallExpr, held []string) {
	if kind, _, _, ok := w.syncCall(call); ok && (kind == "Mutex" || kind == "RWMutex") {
		return
	}
	for _, arg := range call.Args {
		w.expr(arg, held) // deferred call arguments evaluate at the defer statement
	}
	w.call(call, held)
}

// syncCall decodes a method call on a sync.Mutex, sync.RWMutex,
// sync.WaitGroup, or sync.Cond value via the receiver expression's type (the
// same resolution mutexCallExpr uses; promoted methods of embedded sync
// fields are not matched).
func (w *bodyWalker) syncCall(call *ast.CallExpr) (kind, method string, recv ast.Expr, ok bool) {
	fun, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", nil, false
	}
	t := w.p.Info.TypeOf(fun.X)
	if t == nil {
		return "", "", nil, false
	}
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", "", nil, false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex", "WaitGroup", "Cond":
		return named.Obj().Name(), fun.Sel.Name, fun.X, true
	}
	return "", "", nil, false
}

// litNode materializes a funcNode for a function literal (idempotently) and
// walks its body as a separate function with an empty held set.
func (w *bodyWalker) litNode(lit *ast.FuncLit) string {
	if key, ok := w.lits[lit]; ok {
		return key
	}
	w.litN++
	key := w.node.key + "$" + strconv.Itoa(w.litN)
	w.lits[lit] = key
	child := &funcNode{
		key:     key,
		display: w.node.display + " func literal",
		pkg:     w.p,
		pos:     lit.Pos(),
		recvs:   make(map[string]bool),
	}
	w.prog.nodes[key] = child
	cw := &bodyWalker{prog: w.prog, p: w.p, node: child, lits: w.lits}
	cw.list(lit.Body.List, nil)
	return key
}
