package harness

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/gen"
	"repro/internal/graph"
)

// tiny returns options small enough that the full suite runs in seconds.
func tiny() Options {
	o := Defaults()
	o.Scales = []int{8}
	o.SEMScales = []int{8}
	o.Threads = []int{1, 4}
	o.SyncWorkers = 4
	o.SEMThreads = 16
	o.Ranks = 4
	o.MemModel = false
	o.SEMReps = 1
	o.WebScale = 8
	o.Fig1Threads = []int{1, 4}
	o.Fig1Duration = 50 * time.Millisecond
	return o
}

func checkTable(t *testing.T, tbl *Table, wantRows int) {
	t.Helper()
	if tbl.Title == "" {
		t.Fatal("table has no title")
	}
	if len(tbl.Rows) != wantRows {
		t.Fatalf("%s: rows = %d, want %d", tbl.Title, len(tbl.Rows), wantRows)
	}
	for i, row := range tbl.Rows {
		if len(row) != len(tbl.Cols) {
			t.Fatalf("%s: row %d has %d cells, want %d", tbl.Title, i, len(row), len(tbl.Cols))
		}
	}
}

// cell parses a numeric table cell.
func cell(t *testing.T, tbl *Table, row int, col string) float64 {
	t.Helper()
	for c, name := range tbl.Cols {
		if name == col {
			v, err := strconv.ParseFloat(strings.TrimSuffix(tbl.Rows[row][c], "%"), 64)
			if err != nil {
				t.Fatalf("%s[%d,%s] = %q: %v", tbl.Title, row, col, tbl.Rows[row][c], err)
			}
			return v
		}
	}
	t.Fatalf("%s: no column %q", tbl.Title, col)
	return 0
}

func TestFigure1ShapeAndRows(t *testing.T) {
	o := tiny()
	tbl, err := Figure1(o)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, len(o.Fig1Threads))
	// More threads must give more IOPS for every device at these counts
	// (both below saturation).
	for _, dev := range []string{"FusionIO", "Intel", "Corsair"} {
		if cell(t, tbl, 1, dev) <= cell(t, tbl, 0, dev) {
			t.Fatalf("%s IOPS did not rise with threads", dev)
		}
	}
	// Device ordering at a fixed thread count.
	if !(cell(t, tbl, 1, "FusionIO") > cell(t, tbl, 1, "Intel") &&
		cell(t, tbl, 1, "Intel") > cell(t, tbl, 1, "Corsair")) {
		t.Fatal("device IOPS ordering violated")
	}
}

func TestTable1Rows(t *testing.T) {
	o := tiny()
	tbl, err := Table1(o)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, 2*len(o.Scales)) // two RMAT variants per scale
	// RMAT-A reaches most of the graph; RMAT-B less (paper Table I).
	if cell(t, tbl, 0, "%vis") <= cell(t, tbl, 1, "%vis") {
		t.Fatalf("expected %%vis(RMAT-A) > %%vis(RMAT-B): %v vs %v",
			cell(t, tbl, 0, "%vis"), cell(t, tbl, 1, "%vis"))
	}
}

func TestTable2Rows(t *testing.T) {
	o := tiny()
	tbl, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, 2*2*len(o.Scales)) // variants x {UW, LUW} x scales
}

func TestTable3Rows(t *testing.T) {
	o := tiny()
	tbl, err := Table3(o)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, 2*len(o.Scales)+2) // RMAT rows + two web rows
	// Every row reports at least one component.
	for i := range tbl.Rows {
		if cell(t, tbl, i, "#CCs") < 1 {
			t.Fatalf("row %d: no components", i)
		}
	}
}

func TestTable4Rows(t *testing.T) {
	o := tiny()
	tbl, err := Table4(o)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, 2*len(o.SEMScales))
	for i := range tbl.Rows {
		if cell(t, tbl, i, "devReads") <= 0 {
			t.Fatalf("row %d: no device reads recorded", i)
		}
	}
}

func TestTable5Rows(t *testing.T) {
	o := tiny()
	tbl, err := Table5(o)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, 2*len(o.SEMScales)+1) // RMAT rows + one web row
}

func TestAblationDirection(t *testing.T) {
	o := tiny()
	tbl, err := AblationDirection(o)
	if err != nil {
		t.Fatal(err)
	}
	// Two RMAT variants get all three directions; chain and grid only the
	// top-down/hybrid guard pair.
	checkTable(t, tbl, 2*3+2*2)
	for i, row := range tbl.Rows {
		name, dir := row[0], row[1]
		rmat := strings.HasPrefix(name, "RMAT")
		switch {
		case dir == "hybrid" && rmat:
			// Dense scale-free frontiers must cross the α threshold.
			if cell(t, tbl, i, "bu") < 1 || cell(t, tbl, i, "switch") < 1 {
				t.Fatalf("%s hybrid: no bottom-up phases (row %v)", name, row)
			}
			if cell(t, tbl, i, "scanSpans") < 1 {
				t.Fatalf("%s hybrid: bottom-up ran without sequential scan spans", name)
			}
		case dir == "hybrid":
			// One-vertex frontiers on chain/grid must never leave top-down.
			if cell(t, tbl, i, "bu") != 0 || cell(t, tbl, i, "switch") != 0 {
				t.Fatalf("%s hybrid left top-down (row %v)", name, row)
			}
		case dir == "bottomup":
			if cell(t, tbl, i, "bu") < 1 {
				t.Fatalf("%s forced bottom-up recorded no bottom-up phases", name)
			}
		case dir == "topdown":
			if cell(t, tbl, i, "bu") != 0 {
				t.Fatalf("%s top-down recorded bottom-up phases", name)
			}
		}
	}
}

func TestFigure2AndAblations(t *testing.T) {
	o := tiny()
	tbl, err := Figure2(o)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, 3)
	abl, err := Ablations(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(abl) != 13 {
		t.Fatalf("ablations = %d tables, want 13", len(abl))
	}
	for _, tbl := range abl {
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s: empty", tbl.Title)
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "T", Note: "n", Cols: []string{"a", "bb"}}
	tbl.Add("1")            // short row padded
	tbl.Add("22", "3", "x") // long row truncated
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "a   bb") {
		t.Fatalf("render output:\n%s", out)
	}
	if strings.Contains(out, "x") {
		t.Fatal("extra cell not dropped")
	}
}

func TestSecondsAndRatio(t *testing.T) {
	if Seconds(1500*time.Millisecond) != "1.500" {
		t.Fatalf("Seconds = %s", Seconds(1500*time.Millisecond))
	}
	if Ratio(2*time.Second, time.Second) != "2.00" {
		t.Fatalf("Ratio = %s", Ratio(2*time.Second, time.Second))
	}
	if Ratio(time.Second, 0) != "n/a" {
		t.Fatal("Ratio with zero denominator")
	}
}

func TestSlowAdjChargesLatency(t *testing.T) {
	g, err := gen.Chain[uint32](1000)
	if err != nil {
		t.Fatal(err)
	}
	slow := &SlowAdj[uint32]{Inner: g, PerEdge: 50 * time.Microsecond}
	scratch := &graph.Scratch[uint32]{}
	start := time.Now()
	for v := uint32(0); v < 1000; v++ {
		if _, _, err := slow.Neighbors(v, scratch); err != nil {
			t.Fatal(err)
		}
	}
	// 999 edges x 50µs ≈ 50ms minimum.
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Fatalf("SlowAdj charged %v, want >= ~50ms", elapsed)
	}
	if slow.NumVertices() != 1000 || slow.Degree(0) != 1 {
		t.Fatal("SlowAdj does not delegate metadata")
	}
}

func TestMemModelSlowsRuns(t *testing.T) {
	// With the DRAM model on, the serial baseline must charge ~1µs per
	// edge; confirm the wrapped run is measurably slower than the raw one.
	o := tiny()
	g, err := gen.RMAT[uint32](10, 8, gen.RMATA, 1)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := timeIt(func() error {
		_, err := baselineBFS(g)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	o.MemModel = true
	slow, err := timeIt(func() error {
		_, err := baselineBFS(o.wrap(g))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if slow < 4*raw {
		t.Fatalf("mem model barely slowed the run: raw=%v slow=%v", raw, slow)
	}
}

func baselineBFS(adj graph.Adjacency[uint32]) ([]graph.Dist, error) {
	return baseline.SerialBFS(adj, 0)
}

func TestAblationWriteAsymmetryShape(t *testing.T) {
	o := tiny()
	tbl, err := AblationWriteAsymmetry(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		if cell(t, tbl, i, "write/read") < 1.5 {
			t.Fatalf("row %d: writes not dearer than reads: %v", i, tbl.Rows[i])
		}
	}
}
