// sem_bfs demonstrates the semi-external workflow end to end: generate an
// RMAT graph, serialize it to the on-device format, mount it on a simulated
// flash device behind the block cache, and traverse it with vertex state in
// RAM and every adjacency access going to "flash". It then shows the paper's
// two SEM effects: multithreading hides device latency (§II-D), and the
// semi-sorted visitor order raises storage locality (§IV-C).
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/sem"
	"repro/internal/ssd"
)

func main() {
	const scale = 13
	fmt.Printf("generating RMAT-A graph at scale 2^%d, degree 16...\n", scale)
	g, err := gen.RMAT[uint32](scale, 16, gen.RMATA, 42)
	if err != nil {
		log.Fatal(err)
	}
	src := uint32(0)
	for v := uint32(0); uint64(v) < g.NumVertices(); v++ {
		if g.Degree(v) > g.Degree(src) {
			src = v
		}
	}

	// Serialize into the semi-external format: header + RAM-resident vertex
	// index + on-device edge records.
	var buf bytes.Buffer
	if err := sem.WriteCSR(&buf, g); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph file: %d bytes (%d vertices, %d edges)\n\n",
		buf.Len(), g.NumVertices(), g.NumEdges())

	run := func(name string, profile ssd.Profile, workers int, semiSort bool, cacheFrac int64, readahead int) time.Duration {
		dev := ssd.New(profile, &ssd.MemBacking{Data: buf.Bytes()})
		cache, err := sem.NewCachedStoreRA(dev, 4096, int64(buf.Len())/cacheFrac, readahead)
		if err != nil {
			log.Fatal(err)
		}
		sg, err := sem.Open[uint32](cache)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := core.BFS[uint32](sg, src, core.Config{Workers: workers, SemiSort: semiSort})
		if err != nil {
			log.Fatal(err)
		}
		dur := time.Since(start)
		hits, misses := cache.Stats()
		fmt.Printf("%-34s %8v  devReads=%-5d cacheHit=%4.1f%%  levels=%d visited=%.1f%%\n",
			name, dur.Round(time.Millisecond), dev.Stats().Reads,
			100*float64(hits)/float64(hits+misses), res.NumLevels(), 100*res.FracVisited())
		return dur
	}

	// Semi-sort is disabled here so the access stream is random: with one
	// worker every cache miss's full device latency lands on the critical
	// path, while concurrent visitors keep all the flash channels busy.
	fmt.Println("1) latency hiding (tiny cache, no readahead, random access order):")
	one := run("FusionIO, 1 worker", ssd.FusionIO, 1, false, 32, 1)
	many := run("FusionIO, 128 workers", ssd.FusionIO, 128, false, 32, 1)
	fmt.Printf("   -> %d concurrent visitors hid device latency: %.1fx faster than 1 worker\n",
		128, float64(one)/float64(many))
	fmt.Println("   (the paper's §II-D point: flash needs multithreaded I/O to reach its IOPS ceiling)")

	fmt.Println("\n2) storage locality (realistic cache + readahead):")
	run("FusionIO, 128 workers", ssd.FusionIO, 128, true, 2, 8)
	run("FusionIO, 128 workers, no semisort", ssd.FusionIO, 128, false, 2, 8)
	run("Intel,    128 workers", ssd.Intel, 128, true, 2, 8)
	run("Corsair,  128 workers", ssd.Corsair, 128, true, 2, 8)
	fmt.Println("   -> semi-sorting the visitor queues (§IV-C) cuts device reads; device ordering")
	fmt.Println("      FusionIO < Intel < Corsair matches the paper's Table IV")
}
