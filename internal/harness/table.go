// Package harness drives the reproduction of the paper's evaluation: one
// runner per table or figure (Figure 1, Tables I-V) plus the ablation sweeps
// DESIGN.md calls out. Both cmd/bench and the repository-level Go benchmarks
// delegate to this package so the printed rows come from a single
// implementation.
package harness

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a formatted result table mirroring one of the paper's tables.
type Table struct {
	Title string
	Note  string
	Cols  []string
	Rows  [][]string
}

// Add appends a row; cells beyond len(Cols) are dropped, missing cells are
// blank.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Cols))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Cols)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
}

// Seconds formats a duration as the paper's "time (s)" cells.
func Seconds(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// BytesPerEdge formats an edge-density cell: on-device edge bytes divided by
// edge count (8.00 for raw weighted records, 1-4 for compressed blocks).
func BytesPerEdge(edgeBytes int64, m uint64) string {
	if m == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", float64(edgeBytes)/float64(m))
}

// Ratio formats a speedup/scaling cell.
func Ratio(num, den time.Duration) string {
	if den <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", num.Seconds()/den.Seconds())
}

// timeIt runs fn once and returns its wall-clock duration, propagating any
// error.
func timeIt(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}
