package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/sem"
	"repro/internal/ssd"
)

// shardedMount is one sharded SEM mirror of a CSR, with per-member devices
// exposed so tests can assert the pop-window fan-out reached every shard.
type shardedMount struct {
	adj  *graph.Sharded[uint32]
	devs []*ssd.Device
	sgs  []*sem.Graph[uint32]
}

// shardedSemMirror writes g as a `shards`-way partition, each shard on its own
// simulated flash device with prefetching enabled, and mounts the set.
func shardedSemMirror(t testing.TB, g *graph.CSR[uint32], shards int, compressed bool) *shardedMount {
	t.Helper()
	m := &shardedMount{
		devs: make([]*ssd.Device, shards),
		sgs:  make([]*sem.Graph[uint32], shards),
	}
	for k := 0; k < shards; k++ {
		var buf bytes.Buffer
		var err error
		cfg := sem.ShardConfig{Shard: k, Shards: shards}
		if compressed {
			err = sem.WriteCSRShardCompressed(&buf, g, cfg)
		} else {
			err = sem.WriteCSRShard(&buf, g, cfg)
		}
		if err != nil {
			t.Fatal(err)
		}
		m.devs[k] = ssd.New(
			ssd.Profile{Name: "fast", Channels: 64, ReadLatency: time.Nanosecond},
			&ssd.MemBacking{Data: buf.Bytes()},
		)
		if m.sgs[k], err = sem.Open[uint32](m.devs[k]); err != nil {
			t.Fatal(err)
		}
		m.sgs[k].EnablePrefetch(sem.PrefetchConfig{})
	}
	adj, err := sem.MountShards(m.sgs)
	if err != nil {
		t.Fatal(err)
	}
	m.adj = adj
	return m
}

// TestKernelShardedSEMMatchesSerialBaselines is the sharded storage contract:
// the one traversal kernel over a 1-, 2-, or 4-shard SEM mount — raw v1 or
// compressed v2 members — must produce labels identical to the serial
// baselines (and hence to the single-store mounts the existing tests pin).
// For multi-shard prefetching runs it also checks the acceptance criterion
// that windows fan out: every member device services reads and every member
// prefetcher issues spans.
func TestKernelShardedSEMMatchesSerialBaselines(t *testing.T) {
	dg := randomDigraph(t, 300, 1500, true, 11) // weighted digraph: BFS + SSSP
	ug := randomUndirected(t, 300, 900, 12)     // symmetric: CC

	wantLevel, err := baseline.SerialBFS[uint32](dg, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantDist, _, err := baseline.SerialDijkstra[uint32](dg, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantID, err := baseline.SerialCC[uint32](ug)
	if err != nil {
		t.Fatal(err)
	}

	for _, compressed := range []bool{false, true} {
		for _, shards := range []int{1, 2, 4} {
			name := fmt.Sprintf("shards=%d/compressed=%v", shards, compressed)
			t.Run(name, func(t *testing.T) {
				dm := shardedSemMirror(t, dg, shards, compressed)
				um := shardedSemMirror(t, ug, shards, compressed)
				cfg := Config{Workers: 8, SemiSort: true, Prefetch: 16}

				bfs, err := BFS[uint32](dm.adj, 0, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for v := range wantLevel {
					if bfs.Level[v] != wantLevel[v] {
						t.Fatalf("BFS level[%d] = %d, want %d", v, bfs.Level[v], wantLevel[v])
					}
				}
				sssp, err := SSSP[uint32](dm.adj, 0, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for v := range wantDist {
					if sssp.Dist[v] != wantDist[v] {
						t.Fatalf("SSSP dist[%d] = %d, want %d", v, sssp.Dist[v], wantDist[v])
					}
				}
				cc, err := CC[uint32](um.adj, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for v := range wantID {
					if cc.ID[v] != wantID[v] {
						t.Fatalf("CC id[%d] = %d, want %d", v, cc.ID[v], wantID[v])
					}
				}

				if shards > 1 {
					for k, dev := range dm.devs {
						if dev.Stats().Reads == 0 {
							t.Fatalf("shard %d device serviced no reads; pop-window fan-out broken", k)
						}
						if dm.sgs[k].PrefetchStats().Spans == 0 {
							t.Fatalf("shard %d prefetcher issued no spans", k)
						}
					}
				}
			})
		}
	}
}
