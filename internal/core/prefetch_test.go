package core

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/graph"
)

// TestPrefetchConfigFallsBackOnIMGraphs pins the Prefetch:0 compatibility
// contract from the other side: asking for a pop window on a back end without
// BatchAdjacency (the in-memory CSR) must not change results, and neither may
// a window on a SEM graph whose prefetcher was never enabled (NeighborsBatch
// is a documented no-op there).
func TestPrefetchConfigFallsBackOnIMGraphs(t *testing.T) {
	g := randomDigraph(t, 300, 2400, true, 19)
	wantLevel, err := baseline.SerialBFS[uint32](g, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantDist, _, err := baseline.SerialDijkstra[uint32](g, 0)
	if err != nil {
		t.Fatal(err)
	}
	backends := []struct {
		name string
		run  func(cfg Config) (levels, dists []graph.Dist, err error)
	}{
		{"IM", func(cfg Config) ([]graph.Dist, []graph.Dist, error) {
			b, err := BFS[uint32](g, 0, cfg)
			if err != nil {
				return nil, nil, err
			}
			s, err := SSSP[uint32](g, 0, cfg)
			if err != nil {
				return nil, nil, err
			}
			return b.Level, s.Dist, nil
		}},
		{"SEM-noprefetcher", func(cfg Config) ([]graph.Dist, []graph.Dist, error) {
			sg := semMirror(t, g)
			b, err := BFS[uint32](sg, 0, cfg)
			if err != nil {
				return nil, nil, err
			}
			s, err := SSSP[uint32](sg, 0, cfg)
			if err != nil {
				return nil, nil, err
			}
			return b.Level, s.Dist, nil
		}},
	}
	for _, be := range backends {
		for _, prefetch := range []int{-4, 1, 16} {
			levels, dists, err := be.run(Config{Workers: 8, SemiSort: true, Prefetch: prefetch})
			if err != nil {
				t.Fatalf("%s prefetch=%d: %v", be.name, prefetch, err)
			}
			for v := range wantLevel {
				if levels[v] != wantLevel[v] {
					t.Fatalf("%s prefetch=%d: level[%d] = %d, want %d",
						be.name, prefetch, v, levels[v], wantLevel[v])
				}
			}
			for v := range wantDist {
				if dists[v] != wantDist[v] {
					t.Fatalf("%s prefetch=%d: dist[%d] = %d, want %d",
						be.name, prefetch, v, dists[v], wantDist[v])
				}
			}
		}
	}
}
