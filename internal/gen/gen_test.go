package gen

import (
	"math"
	"math/bits"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/graph"
)

func TestRMATSizes(t *testing.T) {
	const scale, deg = 10, 8
	g, err := RMAT[uint32](scale, deg, RMATA, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(1) << scale
	if g.NumVertices() != n {
		t.Fatalf("n = %d, want %d", g.NumVertices(), n)
	}
	// Duplicates are removed, so edges <= n*deg, but most should survive.
	if g.NumEdges() > n*deg {
		t.Fatalf("m = %d > generated %d", g.NumEdges(), n*deg)
	}
	if g.NumEdges() < n*deg/2 {
		t.Fatalf("m = %d, too many duplicates (generated %d)", g.NumEdges(), n*deg)
	}
}

func TestRMATDeterministicPerSeed(t *testing.T) {
	a := RMATEdges[uint32](8, 1000, RMATA, 42)
	b := RMATEdges[uint32](8, 1000, RMATA, 42)
	c := RMATEdges[uint32](8, 1000, RMATA, 43)
	if len(a) != len(b) {
		t.Fatal("same seed, different edge counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at edge %d", i)
		}
	}
	same := 0
	for i := range a {
		if i < len(c) && a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRMATEdgesInRange(t *testing.T) {
	const scale = 7
	n := uint64(1) << scale
	for _, p := range []RMATParams{RMATA, RMATB} {
		for _, e := range RMATEdges[uint32](scale, 2000, p, 7) {
			if uint64(e.Src) >= n || uint64(e.Dst) >= n {
				t.Fatalf("edge (%d,%d) out of range", e.Src, e.Dst)
			}
		}
	}
}

// degreeSkew returns the fraction of edges incident to the top 1% of
// vertices by out-degree.
func degreeSkew(g *graph.CSR[uint32]) float64 {
	n := g.NumVertices()
	degs := make([]int, n)
	for v := uint64(0); v < n; v++ {
		degs[v] = g.Degree(uint32(v))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	top := int(math.Max(1, float64(n)/100))
	sum := 0
	for _, d := range degs[:top] {
		sum += d
	}
	return float64(sum) / float64(g.NumEdges())
}

func TestRMATBHeavierSkewThanRMATA(t *testing.T) {
	// The paper: RMAT-B has "heavy out-degree skewness", RMAT-A "moderate".
	ga, err := RMAT[uint32](12, 16, RMATA, 3)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := RMAT[uint32](12, 16, RMATB, 3)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := degreeSkew(ga), degreeSkew(gb)
	if sb <= sa {
		t.Fatalf("skew(RMAT-B)=%f <= skew(RMAT-A)=%f", sb, sa)
	}
}

func TestRMATUndirectedIsSymmetric(t *testing.T) {
	g, err := RMATUndirected[uint32](8, 4, RMATA, 5)
	if err != nil {
		t.Fatal(err)
	}
	adj := make(map[[2]uint32]bool)
	g.ForEachEdge(func(u, v uint32, _ graph.Weight) { adj[[2]uint32{u, v}] = true })
	for e := range adj {
		if e[0] != e[1] && !adj[[2]uint32{e[1], e[0]}] {
			t.Fatalf("missing reverse of %v", e)
		}
	}
}

func TestUniformWeightsRange(t *testing.T) {
	g, err := RMAT[uint32](8, 8, RMATA, 9)
	if err != nil {
		t.Fatal(err)
	}
	wg, err := UniformWeights(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !wg.Weighted() {
		t.Fatal("weights missing")
	}
	n := wg.NumVertices()
	seen := make(map[graph.Weight]bool)
	wg.ForEachEdge(func(_, _ uint32, w graph.Weight) {
		if uint64(w) >= n {
			t.Fatalf("weight %d out of [0, %d)", w, n)
		}
		seen[w] = true
	})
	if len(seen) < 10 {
		t.Fatalf("only %d distinct weights", len(seen))
	}
	// Original graph untouched.
	if g.Weighted() {
		t.Fatal("UniformWeights mutated its input")
	}
}

func TestLogUniformWeightsSkew(t *testing.T) {
	g, err := RMAT[uint32](10, 8, RMATA, 11)
	if err != nil {
		t.Fatal(err)
	}
	wg, err := LogUniformWeights(g, 12)
	if err != nil {
		t.Fatal(err)
	}
	lg := bits.Len64(g.NumVertices()) - 1
	small, total := 0, 0
	wg.ForEachEdge(func(_, _ uint32, w graph.Weight) {
		if uint64(w) >= uint64(1)<<lg {
			t.Fatalf("LUW weight %d >= 2^%d", w, lg)
		}
		total++
		if uint64(w) < g.NumVertices()/32 {
			small++
		}
	})
	// Log-uniform concentrates mass at small values: far more than the
	// uniform expectation of total/32.
	if float64(small) < 3*float64(total)/32 {
		t.Fatalf("LUW not skewed small: %d/%d", small, total)
	}
}

func TestChainShape(t *testing.T) {
	g, err := Chain[uint32](10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 9 {
		t.Fatalf("m = %d, want 9", g.NumEdges())
	}
	for v := uint32(0); v < 9; v++ {
		ts, _, _ := g.Neighbors(v, nil)
		if len(ts) != 1 || ts[0] != v+1 {
			t.Fatalf("adj(%d) = %v", v, ts)
		}
	}
	if g.Degree(9) != 0 {
		t.Fatal("last vertex must be a sink")
	}

	empty, err := Chain[uint32](0)
	if err != nil || empty.NumVertices() != 0 {
		t.Fatalf("Chain(0): %v %d", err, empty.NumVertices())
	}
	single, err := Chain[uint32](1)
	if err != nil || single.NumEdges() != 0 {
		t.Fatalf("Chain(1): %v %d", err, single.NumEdges())
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi[uint32](256, 2048, 13)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 256 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() == 0 || g.NumEdges() > 2048 {
		t.Fatalf("m = %d", g.NumEdges())
	}
	// ER graphs have low skew compared to RMAT-B at same size/density.
	gb, err := RMAT[uint32](8, 8, RMATB, 13)
	if err != nil {
		t.Fatal(err)
	}
	if degreeSkew(g) >= degreeSkew(gb) {
		t.Fatalf("ER skew %f >= RMAT-B skew %f", degreeSkew(g), degreeSkew(gb))
	}
}

func TestWebGraphProperties(t *testing.T) {
	g, err := WebGraph[uint32](2000, 2, 1, 17)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2000 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Symmetric.
	adj := make(map[[2]uint32]bool)
	g.ForEachEdge(func(u, v uint32, _ graph.Weight) { adj[[2]uint32{u, v}] = true })
	for e := range adj {
		if e[0] != e[1] && !adj[[2]uint32{e[1], e[0]}] {
			t.Fatalf("missing reverse of %v", e)
		}
	}
	// Preferential attachment produces a giant connected structure from
	// vertex 0 and skewed degrees.
	if degreeSkew(g) < 0.03 {
		t.Fatalf("web graph skew = %f, want skewed hubs", degreeSkew(g))
	}
}

// Property: RMAT generation never produces out-of-range endpoints and the
// built graph's edge count matches the dedup invariant m <= requested.
func TestQuickRMATInvariants(t *testing.T) {
	f := func(seed uint64, pick bool) bool {
		p := RMATA
		if pick {
			p = RMATB
		}
		const scale = 6
		g, err := RMAT[uint32](scale, 4, p, seed)
		if err != nil {
			return false
		}
		n := uint64(1) << scale
		if g.NumVertices() != n || g.NumEdges() > n*4 {
			return false
		}
		ok := true
		g.ForEachEdge(func(u, v uint32, _ graph.Weight) {
			if uint64(u) >= n || uint64(v) >= n {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRMATScrambleIsBijective(t *testing.T) {
	// Every vertex must keep a distinct identity: with enough edges, the
	// set of endpoint ids should cover nearly all of [0, n) — impossible if
	// the id scramble collides.
	const scale = 10
	n := uint64(1) << scale
	seen := make(map[uint32]bool)
	for _, e := range RMATEdges[uint32](scale, n*32, RMATA, 99) {
		seen[e.Src] = true
		seen[e.Dst] = true
	}
	if len(seen) < int(n)*95/100 {
		t.Fatalf("only %d/%d vertex ids appear; scramble is likely non-bijective", len(seen), n)
	}
}

func TestRMATGiantComponent(t *testing.T) {
	// Undirected RMAT-A at degree 16 must form a giant component covering
	// most of the graph (the paper's traversals visit 99%% of RMAT-A).
	g, err := RMATUndirected[uint32](11, 16, RMATA, 7)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := baseline.SerialCC(g)
	if err != nil {
		t.Fatal(err)
	}
	sizes := make(map[uint32]int)
	for _, id := range ids {
		sizes[id]++
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	if largest < int(g.NumVertices())*80/100 {
		t.Fatalf("largest CC = %d of %d; giant component missing", largest, g.NumVertices())
	}
}

func TestGridShape(t *testing.T) {
	g, err := Grid[uint32](3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 12 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Edges: right: 3*3=9, down: 2*4=8.
	if g.NumEdges() != 17 {
		t.Fatalf("m = %d, want 17", g.NumEdges())
	}
	// Corner degrees.
	if g.Degree(0) != 2 || g.Degree(11) != 0 || g.Degree(3) != 1 {
		t.Fatalf("degrees: %d %d %d", g.Degree(0), g.Degree(11), g.Degree(3))
	}
	// BFS level = Manhattan distance from the origin.
	lv, err := baseline.SerialBFS[uint32](g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for r := uint64(0); r < 3; r++ {
		for c := uint64(0); c < 4; c++ {
			if lv[r*4+c] != r+c {
				t.Fatalf("level(%d,%d) = %d, want %d", r, c, lv[r*4+c], r+c)
			}
		}
	}
	if _, err := Grid[uint32](0, 5); err != nil {
		t.Fatal(err)
	}
}

func TestGridPathParallelismBetweenChainAndStar(t *testing.T) {
	// Peak outstanding work on a grid sits between the chain (~1) and a
	// scale-free graph (frontier-sized), per §III-B1.
	g, err := Grid[uint32](32, 32)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.BFS[uint32](g, 0, core.Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	peak := res.Stats.PeakOutstanding
	if peak < 4 || peak > 1024 {
		t.Fatalf("grid peak outstanding = %d, want moderate parallelism", peak)
	}
}
