// Package core implements the paper's primary contribution: a multithreaded
// asynchronous visitor-queue engine for graph traversal (§III).
//
// The engine runs N workers; each worker owns one prioritized visitor queue.
// A visitor destined for vertex v is pushed to the queue selected by a hash
// of v, so a vertex is only ever visited by its owning worker. That ownership
// discipline provides the paper's "exclusive access to a vertex when
// executing, removing the need for additional vertex-level locking", and a
// near-uniform hash spreads high-cost hub vertices across queues for load
// balance. There are no barriers between traversal steps: workers run
// label-correcting visitors fully asynchronously and the traversal completes
// when every queued visitor has finished (termination is detected with an
// atomic outstanding-work counter).
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/pq"
)

// Config controls an Engine run.
type Config struct {
	// Workers is the number of worker goroutines, each owning one visitor
	// queue. The paper oversubscribes (512 threads on 16 cores) to reduce
	// queue lock contention; values far above GOMAXPROCS are expected and
	// cheap with goroutines. Defaults to 4 x GOMAXPROCS.
	Workers int
	// SemiSort enables the secondary vertex-id sort key inside each queue,
	// the paper's semi-external locality optimization (§IV-C).
	SemiSort bool
	// Hash maps a vertex id to a queue-selection value. Defaults to a
	// Fibonacci multiplicative hash. An identity hash is provided for the
	// hash-quality ablation.
	Hash func(uint64) uint64
	// CoarseShift coarsens queue priority comparison to 2^CoarseShift-wide
	// buckets (Δ-stepping-style). 0 keeps exact priority order. Coarser
	// buckets trade extra label corrections for cheaper ordering and, with
	// SemiSort, longer sorted runs of vertex ids.
	CoarseShift uint8
	// Queue selects the per-worker queue implementation. The default binary
	// heap supports SemiSort and CoarseShift; the bucket queue is faster for
	// small integer priority domains (BFS levels) but is FIFO within a
	// priority.
	Queue QueueKind
}

// QueueKind selects the per-worker visitor queue implementation.
type QueueKind int

const (
	// QueueHeap is a binary min-heap on (priority, optional vertex id).
	QueueHeap QueueKind = iota
	// QueueBucket is a two-level bucket queue: O(1) push into an existing
	// priority bucket, FIFO within a bucket. Ignores SemiSort/CoarseShift.
	QueueBucket
)

func (c Config) newQueue() pq.Queue {
	switch c.Queue {
	case QueueBucket:
		return pq.NewBucket()
	default:
		return pq.NewCoarse(c.SemiSort, c.CoarseShift)
	}
}

func (c *Config) normalize() {
	if c.Workers <= 0 {
		c.Workers = 4 * runtime.GOMAXPROCS(0)
	}
	if c.Hash == nil {
		c.Hash = FibHash
	}
}

// FibHash is the default queue-selection hash: Fibonacci multiplicative
// hashing, near-uniform for sequential vertex ids.
func FibHash(v uint64) uint64 { return v * 0x9E3779B97F4A7C15 }

// IdentityHash assigns queues by raw vertex id (modulo queue count). Used by
// the hash-quality ablation; poor for clustered ids.
func IdentityHash(v uint64) uint64 { return v }

// Stats summarizes a completed traversal.
type Stats struct {
	Visits   uint64 // visitors executed (a vertex may be visited many times)
	Pushes   uint64 // visitors queued
	MaxQueue int    // high-water mark across all visitor queues
	Workers  int    // worker count used
	// PeakOutstanding is the maximum number of simultaneously queued or
	// executing visitors: a direct measurement of the graph's available
	// path parallelism (§III-B1 — the chain of Figure 2 pins this near 1,
	// scale-free graphs push it toward the frontier size).
	PeakOutstanding int64
	// WorkerVisits is the per-worker visit count, for load-balance analysis
	// (§III-A: the near-uniform hash should spread hub vertices evenly).
	WorkerVisits []uint64
}

// Imbalance returns max-visits-per-worker divided by mean (1.0 = perfectly
// balanced), or 0 when no work ran.
func (s Stats) Imbalance() float64 {
	var total, max uint64
	for _, v := range s.WorkerVisits {
		total += v
		if v > max {
			max = v
		}
	}
	if total == 0 || len(s.WorkerVisits) == 0 {
		return 0
	}
	mean := float64(total) / float64(len(s.WorkerVisits))
	return float64(max) / mean
}

func (s Stats) String() string {
	return fmt.Sprintf("visits=%d pushes=%d maxQueue=%d peak=%d workers=%d",
		s.Visits, s.Pushes, s.MaxQueue, s.PeakOutstanding, s.Workers)
}

// Ctx is the per-worker context handed to every visitor invocation. It
// carries the worker's scratch buffers (for semi-external adjacency reads)
// and the push interface used to queue adjacent visitors.
type Ctx[V graph.Vertex] struct {
	engine  *Engine[V]
	Worker  int
	Scratch *graph.Scratch[V]
	visits  uint64
	pushes  uint64
}

// Push queues a visitor for vertex v with the given priority and payload.
func (c *Ctx[V]) Push(pri uint64, v V, aux uint64) {
	c.pushes++
	c.engine.Push(pri, v, aux)
}

// VisitFunc is the vertex visitor body (the paper's Algorithm 2 / 4). It
// runs with exclusive access to per-vertex state of it.V and may push
// further visitors through ctx.
type VisitFunc[V graph.Vertex] func(ctx *Ctx[V], it pq.Item) error

type workQueue struct {
	mu   sync.Mutex
	cond sync.Cond
	heap pq.Queue
	done bool
}

func (q *workQueue) push(it pq.Item) {
	q.mu.Lock()
	q.heap.Push(it)
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks until an item is available or the engine is done.
func (q *workQueue) pop() (pq.Item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if it, ok := q.heap.Pop(); ok {
			return it, true
		}
		if q.done {
			return pq.Item{}, false
		}
		q.cond.Wait()
	}
}

func (q *workQueue) finish() {
	q.mu.Lock()
	q.done = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Engine is a single-traversal asynchronous visitor-queue executor. Create
// with New, call Start, push the initial visitor(s), then Wait. Engines are
// single-shot: a finished engine cannot be restarted.
type Engine[V graph.Vertex] struct {
	cfg    Config
	visit  VisitFunc[V]
	queues []*workQueue
	wg     sync.WaitGroup

	// outstanding counts queued-but-unfinished visitors plus one "init
	// token" held until Wait is called, so the count cannot reach zero while
	// the caller is still issuing initial pushes.
	outstanding atomic.Int64
	peak        atomic.Int64
	aborted     atomic.Bool
	finishOnce  sync.Once
	errOnce     sync.Once
	err         error

	visits atomic.Uint64
	pushes atomic.Uint64

	// workerVisits[i] is written only by worker i and read after wg.Wait.
	workerVisits []uint64
}

// New creates an engine that will execute visit for every queued visitor.
func New[V graph.Vertex](cfg Config, visit VisitFunc[V]) *Engine[V] {
	cfg.normalize()
	e := &Engine[V]{cfg: cfg, visit: visit}
	e.workerVisits = make([]uint64, cfg.Workers)
	e.queues = make([]*workQueue, cfg.Workers)
	for i := range e.queues {
		q := &workQueue{heap: cfg.newQueue()}
		q.cond.L = &q.mu
		e.queues[i] = q
	}
	e.outstanding.Store(1) // init token, released by Wait
	return e
}

// Start launches the worker goroutines. It must be called exactly once,
// before Wait.
func (e *Engine[V]) Start() {
	e.wg.Add(len(e.queues))
	for i := range e.queues {
		go e.worker(i)
	}
}

// Push queues a visitor for v. Safe for concurrent use, including from
// within visitors.
func (e *Engine[V]) Push(pri uint64, v V, aux uint64) {
	if out := e.outstanding.Add(1); out > e.peak.Load() {
		// Racy max update: losing an occasional increment only understates
		// the peak slightly, which is acceptable for instrumentation.
		e.peak.Store(out)
	}
	q := e.queues[e.cfg.Hash(uint64(v))%uint64(len(e.queues))]
	q.push(pq.Item{Pri: pri, V: uint64(v), Aux: aux})
}

// ParallelInit pushes n initial visitors concurrently, the paper's
// "for all v in g.vertex_list() parallel do" loop (Algorithm 3). gen is
// invoked once per index i in [0, n).
func (e *Engine[V]) ParallelInit(n uint64, gen func(i uint64) (pri uint64, v V, aux uint64)) {
	par := uint64(runtime.GOMAXPROCS(0))
	if par > n {
		par = 1
	}
	var wg sync.WaitGroup
	chunk := (n + par - 1) / par
	for p := uint64(0); p < par; p++ {
		lo := p * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				pri, v, aux := gen(i)
				e.Push(pri, v, aux)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Wait releases the init token and blocks until the traversal terminates
// (all visitor queues empty and all visitors complete — the paper's
// pri_q_visit.wait()). It returns aggregate statistics and the first visitor
// error, if any.
func (e *Engine[V]) Wait() (Stats, error) {
	if e.outstanding.Add(-1) == 0 {
		e.finish()
	}
	e.wg.Wait()
	st := Stats{
		Visits:          e.visits.Load(),
		Pushes:          e.pushes.Load(),
		Workers:         len(e.queues),
		PeakOutstanding: e.peak.Load() - 1, // exclude the init token
		WorkerVisits:    e.workerVisits,
	}
	if st.PeakOutstanding < 0 {
		st.PeakOutstanding = 0
	}
	for _, q := range e.queues {
		if m := q.heap.MaxLen(); m > st.MaxQueue {
			st.MaxQueue = m
		}
	}
	return st, e.err
}

func (e *Engine[V]) finish() {
	e.finishOnce.Do(func() {
		for _, q := range e.queues {
			q.finish()
		}
	})
}

func (e *Engine[V]) fail(err error) {
	e.errOnce.Do(func() { e.err = err })
	e.aborted.Store(true)
}

func (e *Engine[V]) worker(id int) {
	defer e.wg.Done()
	ctx := &Ctx[V]{engine: e, Worker: id, Scratch: &graph.Scratch[V]{}}
	q := e.queues[id]
	for {
		it, ok := q.pop()
		if !ok {
			e.visits.Add(ctx.visits)
			e.pushes.Add(ctx.pushes)
			e.workerVisits[id] = ctx.visits
			return
		}
		if !e.aborted.Load() {
			ctx.visits++
			if err := e.visit(ctx, it); err != nil {
				e.fail(err)
			}
		}
		if e.outstanding.Add(-1) == 0 {
			e.finish()
		}
	}
}
