package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# comment
% also a comment
0 1
1 2

2 0
`
	g, err := ReadEdgeList[uint32](strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 || g.Weighted() {
		t.Fatalf("n=%d m=%d weighted=%v", g.NumVertices(), g.NumEdges(), g.Weighted())
	}
	ts, _, _ := g.Neighbors(1, nil)
	if len(ts) != 1 || ts[0] != 2 {
		t.Fatalf("adj(1) = %v", ts)
	}
}

func TestReadEdgeListWeighted(t *testing.T) {
	in := "0 1 5\n1 0 7\n"
	g, err := ReadEdgeList[uint32](strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("weights not detected")
	}
	if w := g.EdgeWeight(0, 0); w != 5 {
		t.Fatalf("weight = %d", w)
	}
}

func TestReadEdgeListMinVertices(t *testing.T) {
	g, err := ReadEdgeList[uint32](strings.NewReader("0 1\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 {
		t.Fatalf("n = %d, want 10", g.NumVertices())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"too few fields", "0\n"},
		{"too many fields", "0 1 2 3\n"},
		{"bad src", "x 1\n"},
		{"bad dst", "0 y\n"},
		{"bad weight", "0 1 z\n"},
		{"inconsistent weights", "0 1 5\n1 2\n"},
		{"negative src", "-1 2\n"},
	}
	for _, c := range cases {
		if _, err := ReadEdgeList[uint32](strings.NewReader(c.in), 0); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestReadEdgeListVertexWidth(t *testing.T) {
	// 2^33 exceeds uint32; the reader must reject it rather than truncate.
	if _, err := ReadEdgeList[uint32](strings.NewReader("8589934592 0\n"), 0); err == nil {
		t.Fatal("oversized endpoint accepted for uint32")
	}
	g, err := ReadEdgeList[uint64](strings.NewReader("7 0\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 8 {
		t.Fatalf("n = %d", g.NumVertices())
	}
}

func TestEdgeListEmptyInput(t *testing.T) {
	g, err := ReadEdgeList[uint32](strings.NewReader("# nothing\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestWriteReadEdgeListRoundTrip(t *testing.T) {
	g := mustBuild(t, 6, true, false, []Edge[uint32]{
		{Src: 0, Dst: 3, W: 2}, {Src: 3, Dst: 5, W: 9}, {Src: 5, Dst: 0, W: 1},
	})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList[uint32](&buf, g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != g.NumEdges() || !got.Weighted() {
		t.Fatalf("round trip: m=%d weighted=%v", got.NumEdges(), got.Weighted())
	}
	g.ForEachEdge(func(u, v uint32, w Weight) {
		found := false
		got.ForEachEdge(func(u2, v2 uint32, w2 Weight) {
			if u == u2 && v == v2 && w == w2 {
				found = true
			}
		})
		if !found {
			t.Fatalf("edge (%d,%d,%d) lost", u, v, w)
		}
	})
}

// Property: any generated graph survives a text round trip (modulo dedup,
// which FromEdges already applied).
func TestQuickEdgeListRoundTrip(t *testing.T) {
	type rawEdge struct {
		S, D uint8
		W    uint8
	}
	f := func(raw []rawEdge, weighted bool) bool {
		const n = 256
		in := make([]Edge[uint32], len(raw))
		for i, e := range raw {
			in[i] = Edge[uint32]{Src: uint32(e.S), Dst: uint32(e.D), W: Weight(e.W)}
		}
		g, err := FromEdges(n, weighted, true, in)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			return false
		}
		got, err := ReadEdgeList[uint32](&buf, n)
		if err != nil {
			return false
		}
		if got.NumEdges() != g.NumEdges() {
			return false
		}
		ok := true
		i := 0
		var want []Edge[uint32]
		g.ForEachEdge(func(u, v uint32, w Weight) {
			ww := w
			if !g.Weighted() {
				ww = 0 // unweighted text format drops the weight column
			}
			want = append(want, Edge[uint32]{Src: u, Dst: v, W: ww})
		})
		got.ForEachEdge(func(u, v uint32, w Weight) {
			e := Edge[uint32]{Src: u, Dst: v, W: w}
			if !got.Weighted() {
				e.W = 0
			}
			if i >= len(want) || want[i] != e {
				ok = false
			}
			i++
		})
		return ok && i == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReadEdgeListLimit(t *testing.T) {
	if _, err := ReadEdgeListLimit[uint32](strings.NewReader("5000 0\n"), 0, 1000); err == nil {
		t.Fatal("limit not enforced")
	}
	g, err := ReadEdgeListLimit[uint32](strings.NewReader("500 0\n"), 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 501 {
		t.Fatalf("n = %d", g.NumVertices())
	}
}
