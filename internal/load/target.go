package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/server"
)

// Targets: where a schedule's requests go. Both real targets speak the
// query service's HTTP surface, so outcomes are classified the same way
// whether the server is across a socket or in the same address space.

// Outcome is the judged result of one request.
type Outcome struct {
	// Req is the scheduled request this outcome answers.
	Req Request `json:"req"`
	// Code is the HTTP status (200, 429, 503, 504, ...); 0 means the
	// request itself failed (transport error).
	Code int `json:"code"`
	// Reason is the server's X-Reject-Reason header when rejected:
	// queue-full, queue-timeout, deadline-shed, or rate-limit.
	Reason string `json:"reason,omitempty"`
	// Latency is submit-to-reply time (for rejections: submit-to-reject).
	Latency time.Duration `json:"latency"`
	// Err carries the transport error text when Code is 0.
	Err string `json:"err,omitempty"`
}

// Good reports whether the outcome counts toward goodput: a 200 reply
// within the request's latency budget.
func (o *Outcome) Good() bool {
	return o.Code == http.StatusOK && o.Latency <= o.Req.Deadline
}

// Target fires one request and judges the reply.
type Target interface {
	Do(ctx context.Context, req Request) Outcome
}

// queryBody is the wire shape of POST /v1/query (mirrors the server's
// request schema; kept local so the generator exercises the real decode
// path instead of sharing a struct with the server).
type queryBody struct {
	Graph     string `json:"graph"`
	Kernel    string `json:"kernel"`
	Source    uint64 `json:"source"`
	TimeoutMs int64  `json:"timeout_ms,omitempty"`
	NoCache   bool   `json:"no_cache,omitempty"`
}

// HTTPTarget drives a live query service over HTTP.
type HTTPTarget struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// Graph names the served graph to query.
	Graph string
	// NoCache sets no_cache on every query.
	NoCache bool
	// Client overrides the HTTP client; nil uses http.DefaultClient. The
	// per-request context already bounds each call's lifetime.
	Client *http.Client
}

func (t *HTTPTarget) Do(ctx context.Context, req Request) Outcome {
	body, err := json.Marshal(queryBody{
		Graph:     t.Graph,
		Kernel:    req.Kernel,
		Source:    req.Source,
		TimeoutMs: req.Deadline.Milliseconds(),
		NoCache:   t.NoCache,
	})
	if err != nil {
		return Outcome{Req: req, Err: err.Error()}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, t.Base+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return Outcome{Req: req, Err: err.Error()}
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(server.TenantHeader, req.Tenant)
	hreq.Header.Set(server.ClassHeader, req.Class)
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	start := time.Now()
	resp, err := client.Do(hreq)
	latency := time.Since(start)
	if err != nil {
		return Outcome{Req: req, Latency: latency, Err: err.Error()}
	}
	_ = resp.Body.Close() // outcome classification needs only status + headers
	return Outcome{
		Req:     req,
		Code:    resp.StatusCode,
		Reason:  resp.Header.Get(server.RejectReasonHeader),
		Latency: latency,
	}
}

// Vertices asks a live server for the named graph's vertex count via
// /v1/graphs, so cfg.Vertices can be derived instead of guessed.
func (t *HTTPTarget) Vertices(ctx context.Context) (uint64, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, t.Base+"/v1/graphs", nil)
	if err != nil {
		return 0, err
	}
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var inv struct {
		Graphs []struct {
			Name     string `json:"name"`
			Vertices uint64 `json:"vertices"`
		} `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&inv); err != nil {
		return 0, err
	}
	for _, g := range inv.Graphs {
		if g.Name == t.Graph {
			return g.Vertices, nil
		}
	}
	return 0, fmt.Errorf("load: graph %q not served (see /v1/graphs)", t.Graph)
}

// HandlerTarget drives an http.Handler (an in-process server.Server) with
// no network in between: the handler runs on the caller's goroutine against
// a minimal in-memory response recorder.
type HandlerTarget struct {
	Handler http.Handler
	Graph   string
	NoCache bool
}

func (t *HandlerTarget) Do(ctx context.Context, req Request) Outcome {
	body, err := json.Marshal(queryBody{
		Graph:     t.Graph,
		Kernel:    req.Kernel,
		Source:    req.Source,
		TimeoutMs: req.Deadline.Milliseconds(),
		NoCache:   t.NoCache,
	})
	if err != nil {
		return Outcome{Req: req, Err: err.Error()}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, "/v1/query", bytes.NewReader(body))
	if err != nil {
		return Outcome{Req: req, Err: err.Error()}
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(server.TenantHeader, req.Tenant)
	hreq.Header.Set(server.ClassHeader, req.Class)
	rec := &responseRecorder{code: http.StatusOK, header: make(http.Header)}
	start := time.Now()
	t.Handler.ServeHTTP(rec, hreq)
	latency := time.Since(start)
	return Outcome{
		Req:     req,
		Code:    rec.code,
		Reason:  rec.header.Get(server.RejectReasonHeader),
		Latency: latency,
	}
}

// responseRecorder is the minimal http.ResponseWriter HandlerTarget needs:
// status code and headers, body discarded.
type responseRecorder struct {
	code   int
	header http.Header
}

func (r *responseRecorder) Header() http.Header         { return r.header }
func (r *responseRecorder) WriteHeader(code int)        { r.code = code }
func (r *responseRecorder) Write(p []byte) (int, error) { return len(p), nil }
