package core

import (
	"sync"
	"testing"
)

func TestTerminatorSequential(t *testing.T) {
	term := NewTerminator()
	if term.Peak() != 0 {
		t.Fatalf("fresh peak = %d", term.Peak())
	}
	for i := 0; i < 5; i++ {
		term.Start()
	}
	if term.Peak() != 5 {
		t.Fatalf("peak = %d, want 5", term.Peak())
	}
	for i := 0; i < 5; i++ {
		if done := term.Finish(); done {
			t.Fatal("terminated with init token still held")
		}
	}
	if !term.Release() {
		t.Fatal("Release did not report termination")
	}
	if term.Peak() != 5 {
		t.Fatalf("peak after completion = %d, want 5", term.Peak())
	}
}

func TestTerminatorReleaseWithNoWork(t *testing.T) {
	term := NewTerminator()
	if !term.Release() {
		t.Fatal("Release with no work must terminate immediately")
	}
}

// TestTerminatorPeakConcurrent pins the CAS-max fix for the peak tracker:
// when G units are outstanding simultaneously, the recorded peak must be
// exactly G. The previous load-then-store update could interleave two pushes
// so that the larger observed count was overwritten by the smaller one.
func TestTerminatorPeakConcurrent(t *testing.T) {
	const goroutines = 64
	for round := 0; round < 50; round++ {
		term := NewTerminator()
		var start, finish sync.WaitGroup
		gate := make(chan struct{})
		start.Add(goroutines)
		finish.Add(goroutines)
		for i := 0; i < goroutines; i++ {
			go func() {
				<-gate
				term.Start()
				start.Done()
				start.Wait() // all Starts complete before any Finish
				term.Finish()
				finish.Done()
			}()
		}
		close(gate)
		finish.Wait()
		// The goroutine whose increment observed the full count loops its
		// CompareAndSwap until the peak reflects it, so the maximum can
		// never be lost.
		if got := term.Peak(); got != goroutines {
			t.Fatalf("round %d: peak = %d, want %d", round, got, goroutines)
		}
		if !term.Release() {
			t.Fatal("not terminated after all work finished")
		}
	}
}
