// Package repro's benchmarks regenerate every figure and table of the
// paper's evaluation in testing.B form, one benchmark per exhibit, plus
// micro-benchmarks of the engine's building blocks. The cmd/bench tool runs
// the same experiments through internal/harness with full table output; the
// benchmarks here are sized so `go test -bench=.` finishes in minutes.
//
//	BenchmarkFig1IOPS         — Figure 1: random-read IOPS per device profile
//	BenchmarkFig2Chain        — Figure 2: worst-case serialized chain
//	BenchmarkTable1BFS        — Table I: in-memory BFS, all competitors
//	BenchmarkTable2SSSP       — Table II: in-memory SSSP, UW and LUW weights
//	BenchmarkTable3CC         — Table III: in-memory CC, all competitors
//	BenchmarkTable4SEMBFS     — Table IV: semi-external BFS per device
//	BenchmarkTable5SEMCC      — Table V: semi-external CC per device
//	BenchmarkAblation*        — the DESIGN.md ablation studies
package repro

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/extsort"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lockfree"
	"repro/internal/pq"
	"repro/internal/sem"
	"repro/internal/server"
	"repro/internal/ssd"
)

// Benchmark workloads are scaled so each sub-benchmark iteration runs in
// milliseconds; cmd/bench runs the full-size versions.
const (
	benchScale  = 12
	benchDegree = 16
	benchSeed   = 42
)

var benchGraphs struct {
	once       sync.Once
	directed   *graph.CSR[uint32] // RMAT-A, directed, unweighted
	directedB  *graph.CSR[uint32] // RMAT-B, directed, unweighted
	weightedUW *graph.CSR[uint32]
	weightedLU *graph.CSR[uint32]
	undirected *graph.CSR[uint32]
	src        uint32
	chain      *graph.CSR[uint32]
	grid       *graph.CSR[uint32]
	semFile    []byte // directed graph serialized for SEM runs
	semFileU   []byte // undirected graph serialized for SEM CC runs
	semFileW   []byte // weighted (UW) graph serialized for SEM SSSP runs
	semFileC   []byte // directed graph in the compressed (v2) SEM format
	semFileWC  []byte // weighted (UW) graph in the compressed (v2) SEM format
}

func graphs(tb testing.TB) *struct {
	once       sync.Once
	directed   *graph.CSR[uint32]
	directedB  *graph.CSR[uint32]
	weightedUW *graph.CSR[uint32]
	weightedLU *graph.CSR[uint32]
	undirected *graph.CSR[uint32]
	src        uint32
	chain      *graph.CSR[uint32]
	grid       *graph.CSR[uint32]
	semFile    []byte
	semFileU   []byte
	semFileW   []byte
	semFileC   []byte
	semFileWC  []byte
} {
	benchGraphs.once.Do(func() {
		must := func(err error) {
			if err != nil {
				tb.Fatal(err)
			}
		}
		var err error
		benchGraphs.directed, err = gen.RMAT[uint32](benchScale, benchDegree, gen.RMATA, benchSeed)
		must(err)
		benchGraphs.directedB, err = gen.RMAT[uint32](benchScale, benchDegree, gen.RMATB, benchSeed)
		must(err)
		benchGraphs.weightedUW, err = gen.UniformWeights(benchGraphs.directed, benchSeed)
		must(err)
		benchGraphs.weightedLU, err = gen.LogUniformWeights(benchGraphs.directed, benchSeed)
		must(err)
		benchGraphs.undirected, err = gen.RMATUndirected[uint32](benchScale, benchDegree, gen.RMATA, benchSeed)
		must(err)
		benchGraphs.chain, err = gen.Chain[uint32](1 << benchScale)
		must(err)
		side := uint64(1) << (benchScale / 2)
		benchGraphs.grid, err = gen.Grid[uint32](side, side)
		must(err)
		for v := uint32(0); uint64(v) < benchGraphs.directed.NumVertices(); v++ {
			if benchGraphs.directed.Degree(v) > benchGraphs.directed.Degree(benchGraphs.src) {
				benchGraphs.src = v
			}
		}
		var buf bytes.Buffer
		must(sem.WriteCSR(&buf, benchGraphs.directed))
		benchGraphs.semFile = append([]byte(nil), buf.Bytes()...)
		buf.Reset()
		must(sem.WriteCSR(&buf, benchGraphs.undirected))
		benchGraphs.semFileU = append([]byte(nil), buf.Bytes()...)
		buf.Reset()
		must(sem.WriteCSR(&buf, benchGraphs.weightedUW))
		benchGraphs.semFileW = append([]byte(nil), buf.Bytes()...)
		buf.Reset()
		must(sem.WriteCSRCompressed(&buf, benchGraphs.directed))
		benchGraphs.semFileC = append([]byte(nil), buf.Bytes()...)
		buf.Reset()
		must(sem.WriteCSRCompressed(&buf, benchGraphs.weightedUW))
		benchGraphs.semFileWC = append([]byte(nil), buf.Bytes()...)
	})
	return &benchGraphs
}

// edgesPerSec reports traversal throughput the way the paper's tables invite
// comparison (time per graph is scale-dependent; edges/s is not).
func edgesPerSec(b *testing.B, edges uint64) {
	b.ReportMetric(float64(edges)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkFig1IOPS regenerates Figure 1's data points: saturated-thread
// random-read IOPS per device profile (the per-thread sweep is in cmd/bench
// -exp fig1).
func BenchmarkFig1IOPS(b *testing.B) {
	backing := &ssd.MemBacking{Data: make([]byte, 4<<20)}
	for _, p := range ssd.Profiles {
		b.Run(p.Name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				dev := ssd.New(p, backing)
				total += ssd.MeasureReadIOPS(dev, 64, 4096, 100*time.Millisecond, benchSeed)
			}
			b.ReportMetric(total/float64(b.N), "IOPS")
		})
	}
}

// BenchmarkFig2Chain regenerates Figure 2's worst case: the chain graph
// serializes the asynchronous traversal regardless of worker count.
func BenchmarkFig2Chain(b *testing.B) {
	g := graphs(b).chain
	for _, workers := range []int{1, 16, 512} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BFS[uint32](g, 0, core.Config{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
			edgesPerSec(b, g.NumEdges())
		})
	}
}

// BenchmarkTable1BFS regenerates Table I: every in-memory BFS competitor on
// the same RMAT graphs.
func BenchmarkTable1BFS(b *testing.B) {
	gs := graphs(b)
	for _, in := range []struct {
		name string
		g    *graph.CSR[uint32]
	}{{"RMAT-A", gs.directed}, {"RMAT-B", gs.directedB}} {
		g := in.g
		b.Run(in.name+"/BGL-serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.SerialBFS[uint32](g, gs.src); err != nil {
					b.Fatal(err)
				}
			}
			edgesPerSec(b, g.NumEdges())
		})
		b.Run(in.name+"/MTGL-levelsync16", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.LevelSyncBFS[uint32](g, gs.src, 16); err != nil {
					b.Fatal(err)
				}
			}
			edgesPerSec(b, g.NumEdges())
		})
		b.Run(in.name+"/SNAP-vertexscan16", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.VertexScanBFS[uint32](g, gs.src, 16); err != nil {
					b.Fatal(err)
				}
			}
			edgesPerSec(b, g.NumEdges())
		})
		for _, workers := range []int{1, 16, 512} {
			b.Run(fmt.Sprintf("%s/async%d", in.name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.BFS[uint32](g, gs.src, core.Config{Workers: workers}); err != nil {
						b.Fatal(err)
					}
				}
				edgesPerSec(b, g.NumEdges())
			})
		}
		b.Run(in.name+"/PBGL-bsp16", func(b *testing.B) {
			c, err := bsp.NewCluster[uint32](g, 16)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, _, err := c.BFS(gs.src); err != nil {
					b.Fatal(err)
				}
			}
			edgesPerSec(b, g.NumEdges())
		})
	}
}

// BenchmarkTable2SSSP regenerates Table II: serial Dijkstra vs the
// asynchronous SSSP under both weight schemes.
func BenchmarkTable2SSSP(b *testing.B) {
	gs := graphs(b)
	for _, in := range []struct {
		name string
		g    *graph.CSR[uint32]
	}{{"UW", gs.weightedUW}, {"LUW", gs.weightedLU}} {
		g := in.g
		b.Run(in.name+"/BGL-dijkstra", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := baseline.SerialDijkstra[uint32](g, gs.src); err != nil {
					b.Fatal(err)
				}
			}
			edgesPerSec(b, g.NumEdges())
		})
		for _, workers := range []int{1, 16, 512} {
			b.Run(fmt.Sprintf("%s/async%d", in.name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.SSSP[uint32](g, gs.src, core.Config{Workers: workers}); err != nil {
						b.Fatal(err)
					}
				}
				edgesPerSec(b, g.NumEdges())
			})
		}
	}
}

// BenchmarkTable3CC regenerates Table III: every in-memory CC competitor on
// the undirected RMAT graph.
func BenchmarkTable3CC(b *testing.B) {
	gs := graphs(b)
	g := gs.undirected
	b.Run("BGL-serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.SerialCC[uint32](g); err != nil {
				b.Fatal(err)
			}
		}
		edgesPerSec(b, g.NumEdges())
	})
	b.Run("MTGL-labelprop16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.LabelPropCC[uint32](g, 16); err != nil {
				b.Fatal(err)
			}
		}
		edgesPerSec(b, g.NumEdges())
	})
	b.Run("unionfind16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.UnionFindCC[uint32](g, 16); err != nil {
				b.Fatal(err)
			}
		}
		edgesPerSec(b, g.NumEdges())
	})
	for _, workers := range []int{1, 16, 512} {
		b.Run(fmt.Sprintf("async%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.CC[uint32](g, core.Config{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
			edgesPerSec(b, g.NumEdges())
		})
	}
	b.Run("PBGL-bsp16", func(b *testing.B) {
		c, err := bsp.NewCluster[uint32](g, 16)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, _, err := c.CC(); err != nil {
				b.Fatal(err)
			}
		}
		edgesPerSec(b, g.NumEdges())
	})
}

func semMount(b *testing.B, file []byte, p ssd.Profile) (*sem.Graph[uint32], *ssd.Device) {
	b.Helper()
	dev := ssd.New(p, &ssd.MemBacking{Data: file})
	cache, err := sem.NewCachedStoreRA(dev, 4096, int64(len(file))/2, 8)
	if err != nil {
		b.Fatal(err)
	}
	sg, err := sem.Open[uint32](cache)
	if err != nil {
		b.Fatal(err)
	}
	return sg, dev
}

// BenchmarkTable4SEMBFS regenerates Table IV: semi-external BFS per flash
// profile (cold cache per iteration).
func BenchmarkTable4SEMBFS(b *testing.B) {
	gs := graphs(b)
	for _, p := range ssd.Profiles {
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sg, _ := semMount(b, gs.semFile, p)
				if _, err := core.BFS[uint32](sg, gs.src, core.Config{Workers: 128, SemiSort: true}); err != nil {
					b.Fatal(err)
				}
			}
			edgesPerSec(b, gs.directed.NumEdges())
		})
	}
}

// BenchmarkTable5SEMCC regenerates Table V: semi-external CC per flash
// profile (cold cache per iteration).
func BenchmarkTable5SEMCC(b *testing.B) {
	gs := graphs(b)
	for _, p := range ssd.Profiles {
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sg, _ := semMount(b, gs.semFileU, p)
				if _, err := core.CC[uint32](sg, core.Config{Workers: 128, SemiSort: true}); err != nil {
					b.Fatal(err)
				}
			}
			edgesPerSec(b, gs.undirected.NumEdges())
		})
	}
}

// semMountRaw mounts a SEM graph directly on the simulated device with no
// block cache: every adjacency access is a device read, the regime where the
// prefetch pipeline's span coalescing is the only source of locality.
func semMountRaw(b *testing.B, file []byte, p ssd.Profile, window int) (*sem.Graph[uint32], *ssd.Device) {
	b.Helper()
	dev := ssd.New(p, &ssd.MemBacking{Data: file})
	sg, err := sem.Open[uint32](dev)
	if err != nil {
		b.Fatal(err)
	}
	if window > 1 {
		sg.EnablePrefetch(sem.PrefetchConfig{MaxGap: sem.DefaultPrefetchGap})
	}
	return sg, dev
}

// shardFiles serializes g as a `shards`-way partition, one byte slice per
// member, in the requested on-flash format.
func shardFiles(b *testing.B, g *graph.CSR[uint32], shards int, compressed bool) [][]byte {
	b.Helper()
	files := make([][]byte, shards)
	for k := range files {
		var buf bytes.Buffer
		var err error
		cfg := sem.ShardConfig{Shard: k, Shards: shards}
		if compressed {
			err = sem.WriteCSRShardCompressed(&buf, g, cfg)
		} else {
			err = sem.WriteCSRShard(&buf, g, cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
		files[k] = append([]byte(nil), buf.Bytes()...)
	}
	return files
}

// semMountSharded mounts a shard set with each member directly on its own
// simulated device (no block cache, matching semMountRaw's regime).
func semMountSharded(b *testing.B, files [][]byte, p ssd.Profile, window int) (*graph.Sharded[uint32], []*ssd.Device) {
	b.Helper()
	devs := make([]*ssd.Device, len(files))
	sgs := make([]*sem.Graph[uint32], len(files))
	for k, f := range files {
		devs[k] = ssd.New(p, &ssd.MemBacking{Data: f})
		sg, err := sem.Open[uint32](devs[k])
		if err != nil {
			b.Fatal(err)
		}
		if window > 1 {
			sg.EnablePrefetch(sem.PrefetchConfig{MaxGap: sem.DefaultPrefetchGap})
		}
		sgs[k] = sg
	}
	mounted, err := sem.MountShards(sgs)
	if err != nil {
		b.Fatal(err)
	}
	return mounted, devs
}

// BenchmarkSEMTraversal measures the asynchronous SEM I/O pipeline: BFS and
// SSSP per flash profile and per on-flash edge format (raw v1 records vs
// delta+varint compressed v2 blocks), with the pop-window prefetcher off (the
// historical one-read-per-visit path) and on. With the device cold and
// uncached, the prefetch win is the coalescing rate — v/span vertices
// serviced per device read, each span paying one latency term instead of
// v/span of them — and the compression win is devB/edge: traversal bytes read
// from the device per graph edge (index reads at mount time excluded).
//
// The shards dimension (FusionIO only, prefetch on) mounts the same graph as
// a 2- or 4-way partition with one device per shard: per-shard read counts
// make the pop-window fan-out visible (healthy mounts read near-evenly), and
// devB/edge tracks the side cost of coalescing per shard — member files are
// sparser (same id space, 1/N the edges), so span coalescing bridges
// proportionally more discarded gap bytes.
//
// The direction dimension (BFS, FusionIO, prefetch on) runs the per-phase
// direction controller over files carrying the on-flash in-edge section:
// bottom-up phases replace per-vertex record pops with sequential in-section
// spans (scanSpans/op), which is where hybrid must beat pure top-down on the
// dense RMAT frontiers — and must stay within noise on the high-diameter
// chain/grid rows, where the controller never leaves top-down.
func BenchmarkSEMTraversal(b *testing.B) {
	gs := graphs(b)
	const window = 16
	algos := []struct {
		name      string
		src       *graph.CSR[uint32]
		raw, comp []byte
		run       func(adj graph.Adjacency[uint32], prefetch int) error
	}{
		{"BFS", gs.directed, gs.semFile, gs.semFileC, func(adj graph.Adjacency[uint32], prefetch int) error {
			_, err := core.BFS[uint32](adj, gs.src, core.Config{
				Workers: 128, SemiSort: true, Prefetch: prefetch,
			})
			return err
		}},
		{"SSSP", gs.weightedUW, gs.semFileW, gs.semFileWC, func(adj graph.Adjacency[uint32], prefetch int) error {
			_, err := core.SSSP[uint32](adj, gs.src, core.Config{
				Workers: 128, SemiSort: true, Prefetch: prefetch,
			})
			return err
		}},
	}
	for _, a := range algos {
		for _, fm := range []struct {
			name       string
			file       []byte
			compressed bool
		}{{"raw", a.raw, false}, {"compressed", a.comp, true}} {
			for _, p := range ssd.Profiles {
				for _, prefetch := range []int{0, window} {
					mode := "off"
					if prefetch > 1 {
						mode = fmt.Sprintf("window%d", prefetch)
					}
					b.Run(fmt.Sprintf("%s/%s/%s/%s", a.name, fm.name, p.Name, mode), func(b *testing.B) {
						var reads, devBytes, spans, verts uint64
						for i := 0; i < b.N; i++ {
							sg, dev := semMountRaw(b, fm.file, p, prefetch)
							mounted := dev.Stats().BytesRead
							if err := a.run(sg, prefetch); err != nil {
								b.Fatal(err)
							}
							reads += dev.Stats().Reads
							devBytes += dev.Stats().BytesRead - mounted
							ps := sg.PrefetchStats()
							spans += ps.Spans
							verts += ps.Vertices
						}
						edges := gs.directed.NumEdges()
						edgesPerSec(b, edges)
						b.ReportMetric(float64(reads)/float64(b.N), "devReads/op")
						b.ReportMetric(float64(devBytes)/float64(b.N)/float64(edges), "devB/edge")
						if spans > 0 {
							b.ReportMetric(float64(verts)/float64(spans), "v/span")
						}
					})
				}
			}
			for _, shards := range []int{2, 4} {
				name := fmt.Sprintf("%s/%s/%s/window%d/shards=%d", a.name, fm.name, ssd.FusionIO.Name, window, shards)
				b.Run(name, func(b *testing.B) {
					files := shardFiles(b, a.src, shards, fm.compressed)
					base := make([]uint64, shards)
					perReads := make([]uint64, shards)
					var devBytes uint64
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						mounted, devs := semMountSharded(b, files, ssd.FusionIO, window)
						for k, d := range devs {
							base[k] = d.Stats().BytesRead
						}
						if err := a.run(mounted, window); err != nil {
							b.Fatal(err)
						}
						for k, d := range devs {
							st := d.Stats()
							perReads[k] += st.Reads
							devBytes += st.BytesRead - base[k]
						}
					}
					edges := a.src.NumEdges()
					edgesPerSec(b, edges)
					b.ReportMetric(float64(devBytes)/float64(b.N)/float64(edges), "devB/edge")
					for k, r := range perReads {
						b.ReportMetric(float64(r)/float64(b.N), fmt.Sprintf("shard%dReads/op", k))
					}
				})
			}
		}
	}

	for _, in := range []struct {
		name string
		g    *graph.CSR[uint32]
		src  uint32
	}{
		{"RMAT-A", gs.directed, gs.src},
		{"RMAT-B", gs.directedB, maxDegSrc(gs.directedB)},
		{"chain", gs.chain, 0},
		{"grid", gs.grid, 0},
	} {
		var buf bytes.Buffer
		if err := sem.Write(&buf, in.g, sem.WriteConfig{InEdges: true}); err != nil {
			b.Fatal(err)
		}
		file := append([]byte(nil), buf.Bytes()...)
		alpha, beta := graph.DegreesOf[uint32](in.g).DirectionThresholds()
		for _, dir := range []core.Direction{core.DirectionTopDown, core.DirectionHybrid} {
			b.Run(fmt.Sprintf("BFS/direction/%s/%s", in.name, dir), func(b *testing.B) {
				var reads, devBytes, scanSpans uint64
				for i := 0; i < b.N; i++ {
					sg, dev := semMountRaw(b, file, ssd.FusionIO, window)
					mounted := dev.Stats().BytesRead
					if _, err := core.BFS[uint32](sg, in.src, core.Config{
						Workers: 128, SemiSort: true, Prefetch: window,
						Direction: dir, Alpha: alpha, Beta: beta,
					}); err != nil {
						b.Fatal(err)
					}
					st := dev.Stats()
					reads += st.Reads
					devBytes += st.BytesRead - mounted
					scanSpans += sg.PrefetchStats().ScanSpans
				}
				edgesPerSec(b, in.g.NumEdges())
				b.ReportMetric(float64(reads)/float64(b.N), "devReads/op")
				b.ReportMetric(float64(devBytes)/float64(b.N)/float64(in.g.NumEdges()), "devB/edge")
				b.ReportMetric(float64(scanSpans)/float64(b.N), "scanSpans/op")
			})
		}
	}
}

// maxDegSrc returns the highest-out-degree vertex, the same source rule the
// harness tables use.
func maxDegSrc(g *graph.CSR[uint32]) uint32 {
	src := uint32(0)
	for v := uint32(0); uint64(v) < g.NumVertices(); v++ {
		if g.Degree(v) > g.Degree(src) {
			src = v
		}
	}
	return src
}

// BenchmarkAblationOversubscription regenerates the §IV-A thread
// oversubscription study on the asynchronous BFS.
func BenchmarkAblationOversubscription(b *testing.B) {
	gs := graphs(b)
	for _, workers := range []int{1, 4, 16, 64, 256, 512, 1024} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BFS[uint32](gs.directed, gs.src, core.Config{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
			edgesPerSec(b, gs.directed.NumEdges())
		})
	}
}

// BenchmarkAblationSemiSort regenerates the §IV-C semi-sort locality study on
// semi-external BFS (FusionIO profile).
func BenchmarkAblationSemiSort(b *testing.B) {
	gs := graphs(b)
	for _, sorted := range []bool{true, false} {
		b.Run(fmt.Sprintf("semisort=%v", sorted), func(b *testing.B) {
			var reads uint64
			for i := 0; i < b.N; i++ {
				sg, dev := semMount(b, gs.semFile, ssd.FusionIO)
				if _, err := core.BFS[uint32](sg, gs.src, core.Config{Workers: 128, SemiSort: sorted}); err != nil {
					b.Fatal(err)
				}
				reads += dev.Stats().Reads
			}
			b.ReportMetric(float64(reads)/float64(b.N), "devReads/op")
		})
	}
}

// BenchmarkAblationCoarsen regenerates the Δ-style priority-coarsening study
// on the asynchronous SSSP.
func BenchmarkAblationCoarsen(b *testing.B) {
	gs := graphs(b)
	for _, shift := range []uint8{0, 8, 16} {
		b.Run(fmt.Sprintf("shift=%d", shift), func(b *testing.B) {
			var visits uint64
			for i := 0; i < b.N; i++ {
				res, err := core.SSSP[uint32](gs.weightedUW, gs.src, core.Config{
					Workers: 64, SemiSort: true, CoarseShift: shift,
				})
				if err != nil {
					b.Fatal(err)
				}
				visits += res.Stats.Visits
			}
			b.ReportMetric(float64(visits)/float64(b.N), "visits/op")
		})
	}
}

// BenchmarkAblationHash regenerates the §III-A queue-selection hash study on
// the asynchronous CC.
func BenchmarkAblationHash(b *testing.B) {
	gs := graphs(b)
	for _, h := range []struct {
		name string
		fn   func(uint64) uint64
	}{{"fibonacci", core.FibHash}, {"identity", core.IdentityHash}} {
		b.Run(h.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.CC[uint32](gs.undirected, core.Config{Workers: 64, Hash: h.fn}); err != nil {
					b.Fatal(err)
				}
			}
			edgesPerSec(b, gs.undirected.NumEdges())
		})
	}
}

// --- micro-benchmarks of the building blocks ---

func BenchmarkHeapPushPop(b *testing.B) {
	h := pq.New(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(pq.Item{Pri: uint64(i * 2654435761 % 1000), V: uint64(i)})
		if i%2 == 1 {
			h.Pop()
		}
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	// Raw visitor dispatch rate: each visitor does no work and pushes
	// nothing, isolating queue + termination overhead.
	for _, workers := range []int{1, 16, 512} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := core.New[uint32](core.Config{Workers: workers}, func(*core.Ctx[uint32], pq.Item) error {
				return nil
			})
			e.Start()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Push(uint64(i), uint32(i), 0)
			}
			if _, err := e.Wait(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "visitors/s")
		})
	}
}

// BenchmarkPushThroughput isolates the visitor-to-visitor Push delivery
// path, the operation the mailbox layer batches: each visitor fans out
// follow-up pushes while a shared budget lasts, so nearly all b.N pushes
// travel producer→owner through Ctx.Push (external Engine.Push, as used by
// BenchmarkEngineThroughput, always takes the direct lock-per-push path).
// "direct" is the pre-mailbox behavior (Batch=1, one lock acquisition and
// condvar signal per push); "batched" is the default outbox delivery.
func BenchmarkPushThroughput(b *testing.B) {
	maxProcs := runtime.GOMAXPROCS(0)
	for _, workers := range []int{1, maxProcs, 4 * maxProcs} {
		for _, mode := range []struct {
			name  string
			batch int
		}{{"direct", 1}, {"batched", core.DefaultBatch}} {
			b.Run(fmt.Sprintf("workers=%d/%s", workers, mode.name), func(b *testing.B) {
				var budget atomic.Int64
				budget.Store(int64(b.N))
				e := core.New[uint32](core.Config{Workers: workers, Batch: mode.batch},
					func(ctx *core.Ctx[uint32], it pq.Item) error {
						for k := uint64(0); k < 4; k++ {
							if budget.Add(-1) < 0 {
								return nil
							}
							ctx.Push(it.Pri+1, uint32((it.V*4+k+1)%65536), 0)
						}
						return nil
					})
				e.Start()
				b.ResetTimer()
				e.Push(0, 0, 0)
				st, err := e.Wait()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(st.Pushes)/b.Elapsed().Seconds(), "pushes/s")
			})
		}
	}
}

func BenchmarkRMATGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gen.RMAT[uint32](benchScale, benchDegree, gen.RMATA, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(uint64(1)<<benchScale*benchDegree)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

func BenchmarkSEMFormatRoundTrip(b *testing.B) {
	gs := graphs(b)
	b.Run("write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := sem.WriteCSR(&buf, gs.directed); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load", func(b *testing.B) {
		dev := ssd.New(ssd.Profile{Name: "fast", Channels: 64, ReadLatency: time.Nanosecond},
			&ssd.MemBacking{Data: gs.semFile})
		for i := 0; i < b.N; i++ {
			if _, err := sem.LoadCSR[uint32](dev); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineComparison pits the ownership-hashed engine (heap and
// bucket queues) against the lock-free CAS + work-stealing alternative on
// the same BFS, the engine-design ablation in testing.B form.
func BenchmarkEngineComparison(b *testing.B) {
	gs := graphs(b)
	b.Run("ownership-heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.BFS[uint32](gs.directed, gs.src, core.Config{Workers: 64}); err != nil {
				b.Fatal(err)
			}
		}
		edgesPerSec(b, gs.directed.NumEdges())
	})
	b.Run("ownership-bucket", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.BFS[uint32](gs.directed, gs.src, core.Config{Workers: 64, Queue: core.QueueBucket}); err != nil {
				b.Fatal(err)
			}
		}
		edgesPerSec(b, gs.directed.NumEdges())
	})
	b.Run("lockfree-steal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lockfree.BFS(gs.directed, gs.src, lockfree.Config{Workers: 64}); err != nil {
				b.Fatal(err)
			}
		}
		edgesPerSec(b, gs.directed.NumEdges())
	})
}

// BenchmarkDeltaStepping measures the Δ-stepping comparator across bucket
// widths.
func BenchmarkDeltaStepping(b *testing.B) {
	gs := graphs(b)
	for _, delta := range []uint64{1 << 8, 1 << 12} {
		b.Run(fmt.Sprintf("delta=2^%d", bitsLen(delta)-1), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.DeltaStepping[uint32](gs.weightedUW, gs.src, delta, 16); err != nil {
					b.Fatal(err)
				}
			}
			edgesPerSec(b, gs.weightedUW.NumEdges())
		})
	}
}

func bitsLen(v uint64) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// BenchmarkOutOfCoreBuild measures the external-sort graph build pipeline
// with a spill-forcing budget.
func BenchmarkOutOfCoreBuild(b *testing.B) {
	edges := gen.RMATEdges[uint32](benchScale, 1<<benchScale*benchDegree, gen.RMATA, benchSeed)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eb := extsort.NewBuilder(1<<benchScale, false, 8192, dir)
		for _, e := range edges {
			if err := eb.Add(e.Src, e.Dst, 1); err != nil {
				b.Fatal(err)
			}
		}
		f, err := os.CreateTemp(dir, "bench-*.asg")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eb.WriteTo(f); err != nil {
			b.Fatal(err)
		}
		f.Close()
		os.Remove(f.Name())
	}
	b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkRAID0Striping measures striped random reads at 1, 2, and 4 cards
// of fixed per-card hardware.
func BenchmarkRAID0Striping(b *testing.B) {
	backing := &ssd.MemBacking{Data: make([]byte, 1<<20)}
	card := ssd.CardProfile(ssd.FusionIO, 4)
	for _, cards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("cards=%d", cards), func(b *testing.B) {
			arr, err := ssd.NewRAID0Array(card, cards, 64*1024, backing)
			if err != nil {
				b.Fatal(err)
			}
			var wg sync.WaitGroup
			b.ResetTimer()
			// 32 concurrent readers issue b.N reads total.
			per := b.N/32 + 1
			for w := 0; w < 32; w++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					buf := make([]byte, 4096)
					for i := 0; i < per; i++ {
						off := int64((seed*per + i) * 7919 % (1<<20 - 4096))
						if _, err := arr.ReadAt(buf, off); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			b.ReportMetric(float64(32*per)/b.Elapsed().Seconds(), "IOPS")
		})
	}
}

func BenchmarkBucketQueue(b *testing.B) {
	q := pq.NewBucket()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(pq.Item{Pri: uint64(i % 8), V: uint64(i)})
		if i%2 == 1 {
			q.Pop()
		}
	}
}

// BenchmarkServerQueries measures the query service end to end, in-process:
// HTTP decode, admission, engine-pool traversal over a shared block-cached
// SEM store, snapshot, and render. "cold" forces a traversal per query
// (distinct sources, cache bypassed), "cached" serves one hot key from the
// result cache, and "concurrent" drives 16 cold clients at once against a
// 4-slot admission gate — the issue's serving regime.
func BenchmarkServerQueries(b *testing.B) {
	gs := graphs(b)
	dev := ssd.New(ssd.Profile{Name: "fast", Channels: 64, ReadLatency: time.Nanosecond},
		&ssd.MemBacking{Data: gs.semFileW})
	blockCache, err := sem.NewCachedStoreRA(dev, 4096, int64(len(gs.semFileW))/2, 8)
	if err != nil {
		b.Fatal(err)
	}
	sg, err := sem.Open[uint32](blockCache)
	if err != nil {
		b.Fatal(err)
	}
	srv := server.New(server.Config{
		MaxConcurrent: 4,
		MaxQueue:      256,
		CacheEntries:  64,
		Engine:        core.Config{Workers: 16, Prefetch: 64},
	})
	if err := srv.AddGraph(server.Graph{
		Name: "bench", Adj: sg, Storage: "sem", Device: dev, BlockCache: blockCache,
	}); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	n := sg.NumVertices()
	post := func(source uint64, noCache bool) error {
		body := fmt.Sprintf(`{"graph":"bench","kernel":"sssp","source":%d,"targets":[0],"no_cache":%v}`,
			source, noCache)
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := post(uint64(i)%n, true); err != nil {
				b.Fatal(err)
			}
		}
		edgesPerSec(b, sg.NumEdges())
	})
	b.Run("cached", func(b *testing.B) {
		if err := post(uint64(gs.src), false); err != nil {
			b.Fatal(err) // prime the one hot key
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := post(uint64(gs.src), false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("concurrent", func(b *testing.B) {
		var next atomic.Uint64
		b.SetParallelism(16 / runtime.GOMAXPROCS(0))
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := post(next.Add(1)%n, true); err != nil {
					b.Error(err)
					return
				}
			}
		})
		edgesPerSec(b, sg.NumEdges())
	})
}
