package lint

// SpawnJoin demands that every `go` statement have a reachable join: some
// acknowledgement, reachable from the spawned function through static calls,
// that lets the rest of the program observe the goroutine's completion.
// Accepted join signals, in the repo's order of idiom:
//
//   - a (transitive) call to sync.WaitGroup.Done — covers `defer wg.Done()`
//     literals and the worker -> retire -> wg.Done chain behind
//     Engine.Wait/Terminator retirement;
//   - a builtin close() of any channel — the prefetcher's span.ready and the
//     watcher's done-channel handshake;
//   - a receive from a Done()-method channel — the context-watcher idiom:
//     the goroutine is bounded by its context's lifetime;
//   - a channel send, provided the channel is not provably unbuffered, or —
//     when it is — the spawning function itself receives from the same
//     channel class. A goroutine whose only completion signal is a send on
//     an unbuffered channel that its spawner never drains leaks forever the
//     moment the receiver abandons it, so that case is reported separately.
//
// A goroutine that is detached by design (a process-lifetime flusher) is
// documented with `//lint:spawnjoin <why>` at the go statement.
const spawnJoinName = "spawnjoin"

var SpawnJoin = &Analyzer{
	Name:       spawnJoinName,
	Doc:        "every go statement needs a reachable join (WaitGroup.Done, close, context watcher, or a safe channel send)",
	RunProgram: runSpawnJoin,
}

func runSpawnJoin(prog *program) []Diagnostic {
	var diags []Diagnostic
	for _, n := range prog.order {
		for _, s := range n.spawns {
			if prog.suppressed(spawnJoinName, s.pos) {
				continue
			}
			callee := prog.nodes[s.callee]
			if callee == nil {
				diags = append(diags, Diagnostic{
					Pos:      prog.fset.Position(s.pos),
					Analyzer: spawnJoinName,
					Message:  "goroutine target is a dynamic function value; no join can be verified (name the function, or annotate //lint:spawnjoin)",
				})
				continue
			}
			if callee.joinsWG || callee.joinsClose || callee.joinsCtx {
				continue
			}
			// No structural join signal: channel sends are the last resort.
			unbuffered := ""
			joined := false
			for _, send := range callee.joinSends {
				if send.class == "" || prog.chanBuf[send.class] != bufUnbuffered {
					joined = true // buffered or unknown: the send cannot wedge the goroutine forever
					break
				}
				if n.recvs[send.class] {
					joined = true // the spawner itself drains the channel
					break
				}
				unbuffered = send.class
			}
			if joined {
				continue
			}
			msg := "goroutine has no reachable join: no WaitGroup.Done, channel close, send, or context-done receive on any path — a leak unless it is detached by design (//lint:spawnjoin)"
			if unbuffered != "" {
				msg = "goroutine's only completion signal is a send on unbuffered channel " + shortName(unbuffered) + ", which its spawner never receives; an abandoned receiver leaks the goroutine — buffer the channel or join it"
			}
			diags = append(diags, Diagnostic{
				Pos:      prog.fset.Position(s.pos),
				Analyzer: spawnJoinName,
				Message:  msg,
			})
		}
	}
	return diags
}
