// Command serve runs the traversal query service: it loads one or more graph
// files produced by cmd/gengraph as shared read-only stores — in-memory CSRs
// or semi-external stores on a simulated flash device — and answers BFS /
// SSSP / CC queries over HTTP (see internal/server).
//
// Each -graph flag loads one store. The spec is
// name=path[,sem[,profile]][,shards=N]:
//
//	serve -listen :8080 -graph rmat16=a16.asg
//	serve -graph small=a14.asg -graph big=a22.asg,sem,FusionIO
//	serve -graph big=b16.asg,sem,shards=4       # mounts b16.asg.shard0..3
//
// shards=0 (the default) auto-detects: a plain file mounts as is, otherwise
// path.shard0.. are discovered and mounted as one sharded graph.
//
// Query it with:
//
//	curl localhost:8080/healthz
//	curl localhost:8080/v1/graphs
//	curl -d '{"graph":"rmat16","kernel":"bfs","source":0}' localhost:8080/v1/query
//	curl localhost:8080/metrics
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sem"
	"repro/internal/server"
	"repro/internal/ssd"
)

// graphSpec is one parsed -graph flag: name=path[,sem[,profile]][,shards=N].
type graphSpec struct {
	name    string
	path    string
	sem     bool
	profile string
	shards  int // 0 = auto-detect from the files present
}

func parseSpec(arg string) (graphSpec, error) {
	var s graphSpec
	name, rest, ok := strings.Cut(arg, "=")
	if !ok || name == "" || rest == "" {
		return s, fmt.Errorf("graph spec %q: want name=path[,sem[,profile]][,shards=N]", arg)
	}
	s.name = name
	parts := strings.Split(rest, ",")
	s.path = parts[0]
	s.profile = "FusionIO"
	for _, opt := range parts[1:] {
		switch {
		case opt == "sem":
			s.sem = true
		case strings.HasPrefix(opt, "shards="):
			n, err := strconv.Atoi(strings.TrimPrefix(opt, "shards="))
			if err != nil || n < 0 {
				return s, fmt.Errorf("graph spec %q: bad shard count %q", arg, opt)
			}
			s.shards = n
		case s.sem:
			s.profile = opt
		default:
			return s, fmt.Errorf("graph spec %q: unknown option %q (want \"sem\" or \"shards=N\")", arg, opt)
		}
	}
	if _, _, err := shardPaths(s.path, s.shards); err != nil {
		return s, fmt.Errorf("graph %q: %w", s.name, err)
	}
	if s.sem {
		if _, err := ssd.ProfileByName(s.profile); err != nil {
			return s, fmt.Errorf("graph %q: %w", s.name, err)
		}
	}
	return s, nil
}

// shardPaths resolves a spec's path/shards into the concrete file list, the
// same resolution cmd/traverse performs: shards==0 auto-detects (a plain
// file mounts as is, otherwise path.shard0.. are discovered); shards>=1
// demands exactly that many shard files.
func shardPaths(path string, shards int) ([]string, bool, error) {
	if shards == 0 {
		if _, err := os.Stat(path); err == nil {
			return []string{path}, false, nil
		}
		var paths []string
		for k := 0; ; k++ {
			p := sem.ShardFileName(path, k)
			if _, err := os.Stat(p); err != nil {
				break
			}
			paths = append(paths, p)
		}
		if len(paths) == 0 {
			return nil, false, fmt.Errorf("neither %s nor %s exists", path, sem.ShardFileName(path, 0))
		}
		return paths, true, nil
	}
	paths := make([]string, shards)
	for k := range paths {
		paths[k] = sem.ShardFileName(path, k)
		if _, err := os.Stat(paths[k]); err != nil {
			return nil, false, fmt.Errorf("%w: shards=%d but shard file missing: %v", sem.ErrShardSpec, shards, err)
		}
	}
	return paths, true, nil
}

// load opens one graph (a plain file or a complete shard set) as a
// server.Graph: decoded fully into an in-memory CSR, or mounted
// semi-externally with one block-cached simulated flash device per shard.
// When dir asks for bottom-up phases, in-memory mounts pair the CSR with its
// transpose (semi-external mounts must carry an in-edge section in the file;
// AddGraph enforces that).
func load(spec graphSpec, prefetch, prefetchGap int, dir core.Direction) (server.Graph, error) {
	g := server.Graph{Name: spec.name}
	paths, sharded, err := shardPaths(spec.path, spec.shards)
	if err != nil {
		return g, err
	}
	backings := make([]*ssd.FileBacking, len(paths))
	for i, pth := range paths {
		f, err := os.Open(pth)
		if err != nil {
			return g, err
		}
		// The backing mmap-reads the file for the process lifetime; nothing
		// to close eagerly here.
		if backings[i], err = ssd.NewFileBacking(f); err != nil {
			_ = f.Close()
			return g, err
		}
	}
	if !spec.sem {
		if sharded {
			stores := make([]sem.Store, len(backings))
			for i, b := range backings {
				stores[i] = b
			}
			csr, err := sem.LoadShardedCSR[uint32](stores)
			if err != nil {
				return g, err
			}
			if g.Adj, err = imAdjacency(csr, dir); err != nil {
				return g, err
			}
			g.Storage, g.Shards = "im", len(stores)
			return g, nil
		}
		csr, err := sem.LoadCSR[uint32](backings[0])
		if err != nil {
			return g, err
		}
		if g.Adj, err = imAdjacency(csr, dir); err != nil {
			return g, err
		}
		g.Storage = "im"
		return g, nil
	}
	p, err := ssd.ProfileByName(spec.profile)
	if err != nil {
		return g, err
	}
	devs := make([]*ssd.Device, len(backings))
	caches := make([]*sem.CachedStore, len(backings))
	sgs := make([]*sem.Graph[uint32], len(backings))
	for i, b := range backings {
		devs[i] = ssd.New(p, b)
		if caches[i], err = sem.NewCachedStoreRA(devs[i], 4096, b.Size()/2, 8); err != nil {
			return g, err
		}
		if sgs[i], err = sem.Open[uint32](caches[i]); err != nil {
			return g, err
		}
		if prefetch > 1 {
			sgs[i].EnablePrefetch(sem.PrefetchConfig{MaxGap: prefetchGap})
		}
	}
	if sharded {
		mounted, err := sem.MountShards(sgs)
		if err != nil {
			return g, err
		}
		g.Adj, g.Storage = mounted, "sem"
		g.Devices, g.BlockCaches, g.Shards = devs, caches, len(sgs)
		return g, nil
	}
	g.Adj, g.Storage, g.Device, g.BlockCache = sgs[0], "sem", devs[0], caches[0]
	return g, nil
}

// imAdjacency wraps an in-memory CSR for the requested direction: top-down
// serves the CSR as is, anything else pairs it with its transpose.
func imAdjacency(csr *graph.CSR[uint32], dir core.Direction) (graph.Adjacency[uint32], error) {
	if dir == core.DirectionTopDown {
		return csr, nil
	}
	rev, err := graph.Transpose(csr)
	if err != nil {
		return nil, err
	}
	return graph.NewBidi[uint32](csr, rev)
}

func main() {
	var specs []graphSpec
	var (
		listen       = flag.String("listen", ":8080", "address to serve HTTP on")
		concurrency  = flag.Int("concurrency", 4, "max traversals running at once")
		queue        = flag.Int("queue", 64, "max requests waiting for a traversal slot")
		queueTimeout = flag.Duration("queue-timeout", 2*time.Second, "max wait for a traversal slot before 503")
		queryTimeout = flag.Duration("query-timeout", 30*time.Second, "per-query traversal deadline")
		cacheEntries = flag.Int("cache", 64, "result-cache capacity in snapshots (negative disables)")
		workers      = flag.Int("workers", 0, "engine workers per traversal (0 = default)")
		semisort     = flag.Bool("semisort", true, "secondary vertex-id sort key (SEM locality)")
		batch        = flag.Int("batch", 0, "engine mailbox batch size (0 = default)")
		prefetch     = flag.Int("prefetch", 64, "SEM pop-window prefetch size (0 = off)")
		prefgap      = flag.Int("prefetchgap", sem.DefaultPrefetchGap, "max byte gap coalesced into one prefetch read")
		dirFlag      = flag.String("direction", "", "BFS direction policy: topdown (default), bottomup, or hybrid; non-topdown requires every -graph to carry in-edges")
	)
	flag.Func("graph", "graph to serve, as name=path[,sem[,profile]] (repeatable, required)", func(arg string) error {
		s, err := parseSpec(arg)
		if err != nil {
			return err
		}
		specs = append(specs, s)
		return nil
	})
	flag.Parse()
	if len(specs) == 0 {
		fmt.Fprintln(os.Stderr, "serve: at least one -graph name=path is required")
		flag.Usage()
		os.Exit(2)
	}
	dir, err := core.ParseDirection(*dirFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(2)
	}

	s := server.New(server.Config{
		MaxConcurrent: *concurrency,
		MaxQueue:      *queue,
		QueueTimeout:  *queueTimeout,
		QueryTimeout:  *queryTimeout,
		CacheEntries:  *cacheEntries,
		Engine:        core.Config{Workers: *workers, SemiSort: *semisort, Batch: *batch, Prefetch: *prefetch, Direction: dir},
	})
	for _, spec := range specs {
		g, err := load(spec, *prefetch, *prefgap, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			if errors.Is(err, sem.ErrShardSpec) {
				// The shard files contradict the requested mount: a usage
				// error, not a runtime failure.
				os.Exit(2)
			}
			os.Exit(1)
		}
		if err := s.AddGraph(g); err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			if errors.Is(err, core.ErrNoInEdges) {
				// The graph file cannot honor the requested direction: a
				// usage error caught at startup, not per query.
				os.Exit(2)
			}
			os.Exit(1)
		}
		if g.Shards > 1 {
			log.Printf("loaded %s (%s, %d shards) from %s.shard0..%d", spec.name, g.Storage, g.Shards, spec.path, g.Shards-1)
		} else {
			log.Printf("loaded %s (%s) from %s", spec.name, g.Storage, spec.path)
		}
	}

	log.Printf("serving %d graph(s) on %s", len(specs), *listen)
	if err := http.ListenAndServe(*listen, s.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
}
