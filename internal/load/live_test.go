package load

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/server"
)

// slowAdj delays every adjacency read so traversals take long enough for
// admission queues to form at modest request rates.
type slowAdj struct {
	*graph.CSR[uint32]
	delay time.Duration
}

func (s *slowAdj) Neighbors(v uint32, scratch *graph.Scratch[uint32]) ([]uint32, []graph.Weight, error) {
	time.Sleep(s.delay)
	return s.CSR.Neighbors(v, scratch)
}

// newLiveServer serves a 32-vertex graph where every adjacency read sleeps
// 1ms on a single worker: each traversal costs a stable ~35ms (the sleep
// dwarfs scheduler jitter), so one slot caps capacity near 30 queries/s on
// any machine.
func newLiveServer(t *testing.T, admission, shedding string) *server.Server {
	t.Helper()
	csr, err := gen.RMAT[uint32](5, 8, gen.RMATA, 7)
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{
		MaxConcurrent: 1,
		MaxQueue:      64,
		Admission:     admission,
		Shedding:      shedding,
		CacheEntries:  -1,
		Engine:        core.Config{Workers: 1},
	})
	if err := s.AddGraph(server.Graph{Name: "g", Adj: &slowAdj{CSR: csr, delay: time.Millisecond}}); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestLivePriorityInversion replays one seeded schedule — a batch-class
// flood with a thin stream of tight-deadline gold traffic at ~2x the
// server's capacity — against real in-process servers under both admission
// policies. The low-class flood must not starve the high class: gold
// goodput has to be materially better under priority than under FIFO.
//
// Absolute latencies here are real, so the assertions compare policies on
// the identical schedule rather than pinning wall-clock numbers.
func TestLivePriorityInversion(t *testing.T) {
	if testing.Short() {
		t.Skip("drives ~1s of wall-clock load per policy")
	}
	cfg := Config{
		Vertices: 32,
		Requests: 90,
		Rate:     60, // ~2x the server's ~30 q/s capacity
		Tenants: []Tenant{
			{Name: "acme", Class: "gold", Weight: 1, Deadline: 150 * time.Millisecond},
			{Name: "bulk", Class: "batch", Weight: 19, Deadline: 2 * time.Second},
		},
		Seed:    11,
		NoCache: true,
	}
	schedule, err := BuildSchedule(&cfg)
	if err != nil {
		t.Fatal(err)
	}

	goldGood := func(admission, shedding string) (good, total int) {
		s := newLiveServer(t, admission, shedding)
		r := &Runner{Target: &HandlerTarget{Handler: s.Handler(), Graph: "g", NoCache: true}}
		outcomes := r.Run(context.Background(), schedule)
		for i := range outcomes {
			if outcomes[i].Req.Class != "gold" {
				continue
			}
			total++
			if outcomes[i].Good() {
				good++
			}
		}
		return good, total
	}

	prioGood, prioTotal := goldGood(server.AdmitPriority, server.ShedDeadline)
	fifoGood, fifoTotal := goldGood(server.AdmitFIFO, server.ShedOff)
	if prioTotal == 0 || prioTotal != fifoTotal {
		t.Fatalf("gold request counts diverged: %d vs %d (schedule must be shared)", prioTotal, fifoTotal)
	}
	t.Logf("gold goodput: priority %d/%d, fifo %d/%d", prioGood, prioTotal, fifoGood, fifoTotal)
	if prioGood <= fifoGood {
		t.Fatalf("priority gold goodput %d/%d not better than fifo %d/%d",
			prioGood, prioTotal, fifoGood, fifoTotal)
	}
	if float64(prioGood)/float64(prioTotal) < 0.7 {
		t.Fatalf("priority served only %d/%d gold requests well", prioGood, prioTotal)
	}
}
