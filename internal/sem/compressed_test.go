package sem

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ssd"
)

func writeCompressedToMem[V graph.Vertex](t testing.TB, g *graph.CSR[V]) *ssd.MemBacking {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCSRCompressed(&buf, g); err != nil {
		t.Fatal(err)
	}
	return &ssd.MemBacking{Data: buf.Bytes()}
}

// sameAdjacency fails unless both graphs expose identical adjacency (order
// and weights) for every vertex.
func sameAdjacency(t *testing.T, want, got graph.Adjacency[uint32]) {
	t.Helper()
	if want.NumVertices() != got.NumVertices() {
		t.Fatalf("vertex count %d != %d", got.NumVertices(), want.NumVertices())
	}
	scratch := &graph.Scratch[uint32]{}
	for v := uint32(0); uint64(v) < want.NumVertices(); v++ {
		wt, ww, err := want.Neighbors(v, nil)
		if err != nil {
			t.Fatal(err)
		}
		gt, gw, err := got.Neighbors(v, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if len(wt) != len(gt) {
			t.Fatalf("vertex %d: degree %d != %d", v, len(gt), len(wt))
		}
		for i := range wt {
			if wt[i] != gt[i] {
				t.Fatalf("vertex %d edge %d: target %d != %d", v, i, gt[i], wt[i])
			}
			if ww != nil && ww[i] != gw[i] {
				t.Fatalf("vertex %d edge %d: weight %d != %d", v, i, gw[i], ww[i])
			}
		}
	}
}

func TestCompressedRoundTripUnweighted(t *testing.T) {
	g := buildGraph(t, 200, 1500, false, 3)
	back := writeCompressedToMem(t, g)
	sg, err := Open[uint32](fastDevice(back))
	if err != nil {
		t.Fatal(err)
	}
	if !sg.Compressed() {
		t.Fatal("v2 store not reported compressed")
	}
	if sg.NumEdges() != g.NumEdges() || sg.Weighted() {
		t.Fatalf("header mismatch: m=%d weighted=%v", sg.NumEdges(), sg.Weighted())
	}
	sameAdjacency(t, g, sg)
}

func TestCompressedRoundTripWeighted(t *testing.T) {
	g := buildGraph(t, 150, 1200, true, 4)
	back := writeCompressedToMem(t, g)
	sg, err := Open[uint32](fastDevice(back))
	if err != nil {
		t.Fatal(err)
	}
	sameAdjacency(t, g, sg)

	// Degrees must come from the RAM-resident degree array, no decode.
	for v := uint32(0); uint64(v) < g.NumVertices(); v++ {
		if sg.Degree(v) != g.Degree(v) {
			t.Fatalf("vertex %d: degree %d != %d", v, sg.Degree(v), g.Degree(v))
		}
	}
}

func TestCompressedLoadCSR(t *testing.T) {
	g := buildGraph(t, 300, 2500, true, 5)
	back := writeCompressedToMem(t, g)
	got, err := LoadCSR[uint32](fastDevice(back))
	if err != nil {
		t.Fatal(err)
	}
	sameAdjacency(t, g, got)
}

func TestLoadCompressedCSR(t *testing.T) {
	g := buildGraph(t, 120, 900, true, 6)
	back := writeCompressedToMem(t, g)
	c, err := LoadCompressedCSR[uint32](fastDevice(back))
	if err != nil {
		t.Fatal(err)
	}
	sameAdjacency(t, g, c)

	if _, err := LoadCompressedCSR[uint32](fastDevice(writeToMem(t, g))); err == nil {
		t.Fatal("LoadCompressedCSR accepted a v1 store")
	}
}

// The v2 edge region must be meaningfully smaller than v1 on an RMAT graph —
// the entire point of the format.
func TestCompressedEdgeBytesShrink(t *testing.T) {
	g, err := gen.RMAT[uint32](10, 8, gen.RMATB, 42)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Open[uint32](fastDevice(writeToMem(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Open[uint32](fastDevice(writeCompressedToMem(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	if comp.EdgeBytes()*2 > raw.EdgeBytes() {
		t.Fatalf("compressed edge region %d bytes, raw %d: less than 2x shrink", comp.EdgeBytes(), raw.EdgeBytes())
	}
}

// BFS over a compressed store, with and without the prefetch pipeline, must
// match the in-memory traversal.
func TestCompressedSEMBFSMatchesInMemory(t *testing.T) {
	g, err := gen.RMAT[uint32](9, 8, gen.RMATA, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.BFS[uint32](g, 0, core.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, window := range []int{0, 16} {
		back := writeCompressedToMem(t, g)
		sg, err := Open[uint32](fastDevice(back))
		if err != nil {
			t.Fatal(err)
		}
		if window > 1 {
			sg.EnablePrefetch(PrefetchConfig{MaxGap: DefaultPrefetchGap})
		}
		got, err := core.BFS[uint32](sg, 0, core.Config{Workers: 8, SemiSort: true, Prefetch: window})
		if err != nil {
			t.Fatal(err)
		}
		for v := range want.Level {
			if want.Level[v] != got.Level[v] {
				t.Fatalf("window %d: level[%d] = %d, want %d", window, v, got.Level[v], want.Level[v])
			}
		}
	}
}

// SSSP exercises the weight stream through the prefetch zero-copy handoff.
func TestCompressedSEMSSSPMatchesRaw(t *testing.T) {
	g, err := gen.RMAT[uint32](9, 8, gen.RMATA, 8)
	if err != nil {
		t.Fatal(err)
	}
	g, err = gen.UniformWeights(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.SSSP[uint32](g, 0, core.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	back := writeCompressedToMem(t, g)
	sg, err := Open[uint32](fastDevice(back))
	if err != nil {
		t.Fatal(err)
	}
	sg.EnablePrefetch(PrefetchConfig{MaxGap: DefaultPrefetchGap})
	got, err := core.SSSP[uint32](sg, 0, core.Config{Workers: 8, SemiSort: true, Prefetch: 16})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Dist {
		if want.Dist[v] != got.Dist[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got.Dist[v], want.Dist[v])
		}
	}
}

// A compressed traversal must read fewer device bytes than the raw format on
// the same workload — checked end to end through ssd.Stats.
func TestCompressedReadsFewerDeviceBytes(t *testing.T) {
	g, err := gen.RMAT[uint32](10, 8, gen.RMATB, 42)
	if err != nil {
		t.Fatal(err)
	}
	run := func(back *ssd.MemBacking) uint64 {
		dev := fastDevice(back)
		sg, err := Open[uint32](dev)
		if err != nil {
			t.Fatal(err)
		}
		// Snapshot after open: the criterion is about traversal reads, and at
		// unit-test scales the index read would otherwise dominate.
		opened := dev.Stats().BytesRead
		if _, err := core.BFS[uint32](sg, 0, core.Config{Workers: 8, SemiSort: true}); err != nil {
			t.Fatal(err)
		}
		return dev.Stats().BytesRead - opened
	}
	rawBytes := run(writeToMem(t, g))
	compBytes := run(writeCompressedToMem(t, g))
	if compBytes*2 > rawBytes {
		t.Fatalf("compressed traversal read %d bytes, raw %d: less than the 2x target", compBytes, rawBytes)
	}
}

// Corrupt blobs must surface as decode errors, not wrong traversals.
func TestCompressedCorruptBlockSurfaces(t *testing.T) {
	g := buildGraph(t, 50, 400, false, 9)
	back := writeCompressedToMem(t, g)
	// Truncate every block's worth of blob to garbage: overwrite the last
	// byte region with continuation-bit bytes so some block decodes short.
	for i := len(back.Data) - 8; i < len(back.Data); i++ {
		back.Data[i] = 0x80
	}
	sg, err := Open[uint32](fastDevice(back))
	if err != nil {
		t.Skip("corruption caught at open; also acceptable")
	}
	scratch := &graph.Scratch[uint32]{}
	var sawErr bool
	for v := uint32(0); uint64(v) < sg.NumVertices(); v++ {
		if _, _, err := sg.Neighbors(v, scratch); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("corrupted blob decoded without error")
	}
}

// Open must reject v2 headers whose flag and version disagree, and degree
// arrays that do not sum to m.
func TestCompressedOpenRejectsCorruptHeader(t *testing.T) {
	g := buildGraph(t, 40, 200, false, 10)
	pristine := writeCompressedToMem(t, g).Data

	flip := func(mut func(d []byte)) error {
		d := append([]byte(nil), pristine...)
		mut(d)
		_, err := Open[uint32](&ssd.MemBacking{Data: d})
		return err
	}
	if err := flip(func(d []byte) { d[4] = 1 }); err == nil {
		t.Fatal("accepted version 1 with compressed flag")
	}
	if err := flip(func(d []byte) { d[headerSize+8*41] ^= 0xFF }); err == nil {
		t.Fatal("accepted corrupt degree array")
	}
}

// The v2 format works at 64-bit vertex width.
func TestCompressed64Bit(t *testing.T) {
	b := graph.NewBuilder[uint64](1<<20+5, true)
	b.AddEdge(0, 1<<20, 3)
	b.AddEdge(1<<20, 0, 4)
	b.AddEdge(5, 6, 5)
	g, err := b.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSRCompressed(&buf, g); err != nil {
		t.Fatal(err)
	}
	sg, err := Open[uint64](&ssd.MemBacking{Data: buf.Bytes()})
	if err != nil {
		t.Fatal(err)
	}
	scratch := &graph.Scratch[uint64]{}
	ts, ws, err := sg.Neighbors(0, scratch)
	if err != nil || len(ts) != 1 || ts[0] != 1<<20 || ws[0] != 3 {
		t.Fatalf("Neighbors(0) = %v %v %v", ts, ws, err)
	}
}

// A window announced over a compressed store must coalesce the variable-
// length block extents into spans and hand each block to Neighbors with the
// same contents a synchronous read yields — the zero-copy decode handoff.
func TestCompressedPrefetchConsumesSpans(t *testing.T) {
	g := buildGraph(t, 64, 700, true, 11)
	back := writeCompressedToMem(t, g)
	dev := ssd.New(ssd.Profile{Name: "fast", Channels: 64, ReadLatency: time.Microsecond}, back)
	sg, err := Open[uint32](dev)
	if err != nil {
		t.Fatal(err)
	}
	sg.EnablePrefetch(PrefetchConfig{MaxGap: DefaultPrefetchGap})
	scratch := &graph.Scratch[uint32]{}
	window := []uint32{3, 4, 5, 20, 21, 40}
	sg.NeighborsBatch(window, scratch)
	ps := sg.PrefetchStats()
	if ps.Spans == 0 {
		t.Fatalf("no spans issued for window: %+v", ps)
	}
	for _, v := range window {
		gt, gw, err := sg.Neighbors(v, scratch)
		if err != nil {
			t.Fatal(err)
		}
		wt, ww, _ := g.Neighbors(v, nil)
		if len(gt) != len(wt) {
			t.Fatalf("vertex %d: degree %d != %d", v, len(gt), len(wt))
		}
		for i := range wt {
			if gt[i] != wt[i] || gw[i] != ww[i] {
				t.Fatalf("vertex %d edge %d: (%d,%d) != (%d,%d)", v, i, gt[i], gw[i], wt[i], ww[i])
			}
		}
	}
	if ps = sg.PrefetchStats(); ps.Consumed != uint64(len(window)) {
		t.Fatalf("consumed %d of %d window vertices", ps.Consumed, len(window))
	}
}
