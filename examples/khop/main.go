// khop shows how to build a custom traversal on the visitor-queue engine
// directly — the same extension point the paper's vertex-visitor abstraction
// provides. The example computes a bounded-depth (k-hop) neighborhood: BFS
// that stops expanding at radius k, the primitive behind "friends of
// friends" queries and local community extraction.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/pq"
)

// khop returns the vertices within k hops of src, using a custom visitor on
// the asynchronous engine. The visitor is Algorithm 2 with one extra line:
// neighbors are queued only while the frontier is inside the radius.
func khop(g graph.Adjacency[uint32], src uint32, k uint64, cfg core.Config) ([]graph.Dist, core.Stats, error) {
	n := g.NumVertices()
	level := make([]graph.Dist, n)
	for i := range level {
		level[i] = graph.InfDist
	}
	e := core.New[uint32](cfg, func(ctx *core.Ctx[uint32], it pq.Item) error {
		v := uint32(it.V)
		if it.Pri >= level[v] {
			return nil // stale visitor
		}
		level[v] = it.Pri
		if it.Pri == k {
			return nil // radius reached: do not expand further
		}
		targets, _, err := g.Neighbors(v, ctx.Scratch)
		if err != nil {
			return err
		}
		for _, t := range targets {
			ctx.Push(it.Pri+1, t, uint64(v))
		}
		return nil
	})
	e.Start()
	e.Push(0, src, uint64(src))
	st, err := e.Wait()
	return level, st, err
}

func main() {
	const scale = 14
	g, err := gen.RMAT[uint32](scale, 16, gen.RMATA, 5)
	if err != nil {
		log.Fatal(err)
	}
	src := uint32(0)
	for v := uint32(0); uint64(v) < g.NumVertices(); v++ {
		if g.Degree(v) > g.Degree(src) {
			src = v
		}
	}
	fmt.Printf("graph: %d vertices, %d edges; source %d (degree %d)\n\n",
		g.NumVertices(), g.NumEdges(), src, g.Degree(src))

	fmt.Println("k-hop neighborhood sizes (custom visitor on the async engine):")
	prev := uint64(0)
	for k := uint64(0); k <= 5; k++ {
		level, st, err := khop(g, src, k, core.Config{Workers: 64})
		if err != nil {
			log.Fatal(err)
		}
		count := uint64(0)
		for _, l := range level {
			if l != graph.InfDist {
				count++
			}
		}
		fmt.Printf("  k=%d: %6d vertices reached (+%5d new), %d visitor executions\n",
			k, count, count-prev, st.Visits)
		prev = count
	}
	fmt.Println("\nthe small-diameter property (§I-B): a few hops reach most of the graph,")
	fmt.Println("and the early-exit visitor did proportionally less work at small k")
}
