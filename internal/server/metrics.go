package server

import (
	"expvar"
	"sync/atomic"
	"time"

	"repro/internal/sem"
	"repro/internal/ssd"
)

// Observability is expvar-shaped (the issue's stdlib-only constraint): the
// server assembles a private expvar.Map — not published to the global
// registry, so many servers can coexist in one process (tests, embedding) —
// and /metrics renders it as JSON. Latency is a fixed-bound log-spaced
// histogram; p50/p99 are read as bucket upper bounds, which is the standard
// histogram-quantile estimate and needs no per-request allocation.

// latencyBounds are the histogram bucket upper bounds. Log-spaced from 500µs
// to 30s: queries span in-memory sub-millisecond BFS to multi-second SEM
// traversals on the slowest simulated device.
var latencyBounds = []time.Duration{
	500 * time.Microsecond,
	time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second,
	30 * time.Second,
}

// histogram is a lock-free fixed-bucket latency histogram.
type histogram struct {
	counts []atomic.Uint64 // len(latencyBounds)+1; last bucket = overflow
	sumUs  atomic.Uint64
	n      atomic.Uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Uint64, len(latencyBounds)+1)}
}

func (h *histogram) observe(d time.Duration) {
	i := 0
	for i < len(latencyBounds) && d > latencyBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumUs.Add(uint64(d.Microseconds()))
	h.n.Add(1)
}

// quantile estimates the q-quantile (0 < q <= 1) as the upper bound of the
// bucket where the cumulative count crosses q*n. Zero when nothing was
// observed; the overflow bucket reports the largest bound.
func (h *histogram) quantile(q float64) time.Duration {
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i >= len(latencyBounds) {
				return latencyBounds[len(latencyBounds)-1]
			}
			return latencyBounds[i]
		}
	}
	return latencyBounds[len(latencyBounds)-1]
}

// mean reports the average observed latency.
func (h *histogram) mean() time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumUs.Load()/n) * time.Microsecond
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// buildVars assembles the server's /metrics document. Every leaf is an
// expvar.Func closure over live counters, so each scrape sees a fresh
// snapshot with no bookkeeping on the query path beyond the counters
// themselves.
func (s *Server) buildVars() *expvar.Map {
	m := new(expvar.Map).Init()
	m.Set("queries_total", expvar.Func(func() any { return s.queriesTotal.Load() }))
	m.Set("queries_in_flight", expvar.Func(func() any { return s.admit.InFlight() }))
	m.Set("queue_depth", expvar.Func(func() any { return s.admit.QueueDepth() }))
	m.Set("queries_rejected", expvar.Func(func() any { return s.admit.rejected.Load() }))
	m.Set("queries_queue_timeout", expvar.Func(func() any { return s.admit.timedOut.Load() }))
	m.Set("queries_deadline_exceeded", expvar.Func(func() any { return s.queriesDeadline.Load() }))
	m.Set("queries_canceled", expvar.Func(func() any { return s.queriesCanceled.Load() }))
	m.Set("queries_failed", expvar.Func(func() any { return s.queriesFailed.Load() }))
	m.Set("queries_deadline_shed", expvar.Func(func() any { return s.admit.shedded.Load() }))
	m.Set("queries_rate_limited", expvar.Func(func() any { return s.queriesRateLimited.Load() }))
	m.Set("admission", expvar.Func(func() any {
		classes := make(map[string]any, NumClasses)
		for c := SLOClass(0); c < NumClasses; c++ {
			classes[c.String()] = map[string]any{
				"accepted": s.admit.classes[c].accepted.Load(),
				"rejected": s.admit.classes[c].rejected.Load(),
			}
		}
		return map[string]any{
			"policy":        s.cfg.Admission,
			"shedding":      s.cfg.Shedding,
			"queue_full":    s.admit.rejected.Load(),
			"queue_timeout": s.admit.timedOut.Load(),
			"deadline_shed": s.admit.shedded.Load(),
			"queue_wait": map[string]any{
				"count":   s.admit.waitHist.n.Load(),
				"mean_ms": ms(s.admit.waitHist.mean()),
				"p50_ms":  ms(s.admit.waitHist.quantile(0.50)),
				"p99_ms":  ms(s.admit.waitHist.quantile(0.99)),
			},
			"classes": classes,
		}
	}))
	m.Set("rate_limit", expvar.Func(func() any {
		if s.limit == nil {
			return map[string]any{"enabled": false, "rejected": s.queriesRateLimited.Load()}
		}
		allowed, rejected := s.limit.Counters()
		return map[string]any{
			"enabled":  true,
			"rate":     s.cfg.RateLimit.Rate,
			"burst":    s.cfg.RateLimit.Burst,
			"allowed":  allowed,
			"rejected": rejected,
		}
	}))
	m.Set("latency", expvar.Func(func() any {
		return map[string]any{
			"count":   s.hist.n.Load(),
			"mean_ms": ms(s.hist.mean()),
			"p50_ms":  ms(s.hist.quantile(0.50)),
			"p99_ms":  ms(s.hist.quantile(0.99)),
		}
	}))
	m.Set("cache", expvar.Func(func() any {
		if s.cache == nil {
			return map[string]any{"enabled": false}
		}
		hits, misses, evictions := s.cache.Counters()
		return map[string]any{
			"enabled":   true,
			"entries":   s.cache.Len(),
			"hits":      hits,
			"misses":    misses,
			"evictions": evictions,
		}
	}))
	m.Set("direction", expvar.Func(func() any {
		return map[string]any{
			"mode":            s.pool.Config().Direction.String(),
			"topdown_phases":  s.tdPhases.Load(),
			"bottomup_phases": s.buPhases.Load(),
			"switches":        s.dirSwitches.Load(),
			"peak_frontier":   s.peakFrontier.Load(),
		}
	}))
	m.Set("engine_pool", expvar.Func(func() any {
		reused, total := s.pool.Reuses()
		return map[string]any{
			"idle":     s.pool.Idle(),
			"reused":   reused,
			"acquired": total,
		}
	}))
	m.Set("graphs", expvar.Func(func() any {
		s.mu.RLock()
		defer s.mu.RUnlock()
		out := make(map[string]any, len(s.graphs))
		for name, g := range s.graphs {
			gv := map[string]any{"storage": g.Storage}
			if g.Shards > 1 {
				gv["shards"] = g.Shards
			}
			if len(g.Devices) > 0 {
				stats := make([]ssd.Stats, len(g.Devices))
				for i, d := range g.Devices {
					stats[i] = d.Stats()
				}
				gv["device"] = deviceVars(ssd.Sum(stats...))
				// Per-shard counters make the pop-window fan-out visible: a
				// healthy sharded mount shows every member device reading.
				if len(stats) > 1 {
					perShard := make([]map[string]any, len(stats))
					for i, st := range stats {
						perShard[i] = deviceVars(st)
					}
					gv["shard_devices"] = perShard
				}
			}
			if len(g.BlockCaches) > 0 {
				var hits, misses uint64
				var pinnedHW int64
				policy := ""
				perShard := make([]map[string]any, 0, len(g.BlockCaches))
				for _, c := range g.BlockCaches {
					if c == nil {
						continue
					}
					policy = c.PolicyName()
					h, mi := c.Stats()
					hits += h
					misses += mi
					if hw := c.PinnedHW(); hw > pinnedHW {
						pinnedHW = hw
					}
					perShard = append(perShard, map[string]any{"hits": h, "misses": mi})
				}
				bc := map[string]any{"hits": hits, "misses": misses, "policy": policy}
				if policy == sem.PolicyState {
					bc["pinned_hw"] = pinnedHW
				}
				gv["block_cache"] = bc
				if len(perShard) > 1 {
					gv["shard_block_caches"] = perShard
				}
			}
			if len(g.SEMGraphs) > 0 {
				var ps sem.PrefetchStats
				for _, sg := range g.SEMGraphs {
					ps.Add(sg.PrefetchStats())
				}
				gv["prefetch"] = map[string]any{
					"windows":     ps.Windows,
					"spans":       ps.Spans,
					"span_bytes":  ps.SpanBytes,
					"dedup_spans": ps.DedupSpans,
					"dedup_bytes": ps.DedupBytes,
				}
			}
			out[name] = gv
		}
		return out
	}))
	return m
}

// deviceVars renders one device-stats snapshot for /metrics.
func deviceVars(st ssd.Stats) map[string]any {
	return map[string]any{
		"reads":          st.Reads,
		"writes":         st.Writes,
		"bytes_read":     st.BytesRead,
		"bytes_written":  st.BytesWritten,
		"max_read_bytes": st.MaxReadBytes,
		"peak_reads":     st.PeakReads,
	}
}
