package sem

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/graph"
)

// prefetchFixture is a 4-vertex unweighted graph with known extents:
// deg(0)=2, deg(1)=1, deg(2)=3, deg(3)=0. Unweighted uint32 records are
// 4 bytes, so the edge region is [v0: 0..8) [v1: 8..12) [v2: 12..24).
func prefetchFixture(t *testing.T) *graph.CSR[uint32] {
	t.Helper()
	b := graph.NewBuilder[uint32](4, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 2, 1)
	b.AddEdge(1, 3, 1)
	b.AddEdge(2, 0, 1)
	b.AddEdge(2, 1, 1)
	b.AddEdge(2, 3, 1)
	g, err := b.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func checkNeighbors(t *testing.T, sg *Graph[uint32], g *graph.CSR[uint32], v uint32, sc *graph.Scratch[uint32]) {
	t.Helper()
	got, _, err := sg.Neighbors(v, sc)
	if err != nil {
		t.Fatalf("Neighbors(%d): %v", v, err)
	}
	want, _, err := g.Neighbors(v, &graph.Scratch[uint32]{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("Neighbors(%d) = %v, want %v", v, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Neighbors(%d) = %v, want %v", v, got, want)
		}
	}
}

func TestPrefetchCoalescesWithinGap(t *testing.T) {
	g := prefetchFixture(t)
	back := writeToMem(t, g)
	dev := fastDevice(back)
	sg, err := Open[uint32](dev)
	if err != nil {
		t.Fatal(err)
	}
	// Window {0, 2} skips vertex 1: the extents sit 4 bytes apart. MaxGap 4
	// bridges them into one span whose gap bytes are exactly deg(1) records.
	sg.EnablePrefetch(PrefetchConfig{MaxGap: 4})
	sc := &graph.Scratch[uint32]{}
	base := dev.Stats().Reads
	sg.NeighborsBatch([]uint32{0, 2}, sc)
	checkNeighbors(t, sg, g, 0, sc)
	checkNeighbors(t, sg, g, 2, sc)
	st := sg.PrefetchStats()
	if st.Windows != 1 || st.Vertices != 2 || st.Spans != 1 {
		t.Fatalf("stats = %+v, want 1 window, 2 vertices, 1 span", st)
	}
	if st.GapBytes != 4 {
		t.Fatalf("gap bytes = %d, want 4 (vertex 1's records)", st.GapBytes)
	}
	if st.SpanBytes != 24 {
		t.Fatalf("span bytes = %d, want 24 (whole edge region)", st.SpanBytes)
	}
	if st.Consumed != 2 {
		t.Fatalf("consumed = %d, want 2", st.Consumed)
	}
	if got := dev.Stats().Reads - base; got != 1 {
		t.Fatalf("device reads = %d, want 1 coalesced span", got)
	}
}

func TestPrefetchSplitsBeyondGap(t *testing.T) {
	g := prefetchFixture(t)
	sg, err := Open[uint32](fastDevice(writeToMem(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	// MaxGap 3 cannot bridge the 4-byte hole left by vertex 1: two spans,
	// no gap bytes read.
	sg.EnablePrefetch(PrefetchConfig{MaxGap: 3})
	sc := &graph.Scratch[uint32]{}
	sg.NeighborsBatch([]uint32{0, 2}, sc)
	checkNeighbors(t, sg, g, 0, sc)
	checkNeighbors(t, sg, g, 2, sc)
	st := sg.PrefetchStats()
	if st.Spans != 2 || st.GapBytes != 0 {
		t.Fatalf("stats = %+v, want 2 spans and 0 gap bytes", st)
	}
	if st.SpanBytes != 20 {
		t.Fatalf("span bytes = %d, want 20 (both extents, no hole)", st.SpanBytes)
	}
}

func TestPrefetchDuplicateVertexInWindow(t *testing.T) {
	g := prefetchFixture(t)
	sg, err := Open[uint32](fastDevice(writeToMem(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	sg.EnablePrefetch(PrefetchConfig{MaxGap: 0})
	sc := &graph.Scratch[uint32]{}
	// The same vertex twice: overlapping extents fold into one span, and
	// each Neighbors call consumes its own entry.
	sg.NeighborsBatch([]uint32{2, 2}, sc)
	checkNeighbors(t, sg, g, 2, sc)
	checkNeighbors(t, sg, g, 2, sc)
	st := sg.PrefetchStats()
	if st.Spans != 1 || st.Vertices != 2 {
		t.Fatalf("stats = %+v, want 1 span covering 2 window entries", st)
	}
	if st.Consumed != 2 || st.Abandoned != 0 {
		t.Fatalf("consumed=%d abandoned=%d, want 2/0", st.Consumed, st.Abandoned)
	}
}

func TestPrefetchAbandonsUnconsumedEntries(t *testing.T) {
	g := prefetchFixture(t)
	sg, err := Open[uint32](fastDevice(writeToMem(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	sg.EnablePrefetch(PrefetchConfig{MaxGap: 0})
	sc := &graph.Scratch[uint32]{}
	sg.NeighborsBatch([]uint32{0, 2}, sc)
	checkNeighbors(t, sg, g, 0, sc) // vertex 2's entry left unread
	sg.NeighborsBatch([]uint32{1}, sc)
	checkNeighbors(t, sg, g, 1, sc)
	st := sg.PrefetchStats()
	if st.Abandoned != 1 {
		t.Fatalf("abandoned = %d, want 1", st.Abandoned)
	}
	if st.Consumed != 2 {
		t.Fatalf("consumed = %d, want 2", st.Consumed)
	}
	// A vertex whose entry was abandoned still reads synchronously.
	checkNeighbors(t, sg, g, 2, sc)
}

func TestPrefetchZeroDegreeAndEmptyWindows(t *testing.T) {
	g := prefetchFixture(t)
	sg, err := Open[uint32](fastDevice(writeToMem(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	sg.EnablePrefetch(PrefetchConfig{})
	sc := &graph.Scratch[uint32]{}
	sg.NeighborsBatch(nil, sc)
	sg.NeighborsBatch([]uint32{3}, sc) // degree 0: no extent, no span
	st := sg.PrefetchStats()
	if st.Windows != 0 || st.Spans != 0 {
		t.Fatalf("stats = %+v, want no windows or spans issued", st)
	}
	if got, _, err := sg.Neighbors(3, sc); err != nil || len(got) != 0 {
		t.Fatalf("Neighbors(3) = %v, %v; want empty", got, err)
	}
}

func TestPrefetchSurfacesReadError(t *testing.T) {
	g := prefetchFixture(t)
	sg, err := Open[uint32](fastDevice(writeToMem(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	sg.EnablePrefetch(PrefetchConfig{MaxGap: 0})
	// Fail every device read issued after mounting: the span read error must
	// reach the Neighbors caller, matching the synchronous failure policy.
	sg.store = &erroringStore{inner: sg.store, after: 0}
	sc := &graph.Scratch[uint32]{}
	sg.NeighborsBatch([]uint32{0}, sc)
	if _, _, err := sg.Neighbors(0, sc); err == nil {
		t.Fatal("prefetched read error was swallowed")
	}
}

// TestPrefetchTraversalMatchesBaseline runs the full engine with the pipeline
// on, over a raw uncached device, and checks every kernel's results against
// the serial baselines.
func TestPrefetchTraversalMatchesBaseline(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := buildGraph(t, 400, 4000, weighted, 17)
		sg, err := Open[uint32](fastDevice(writeToMem(t, g)))
		if err != nil {
			t.Fatal(err)
		}
		sg.EnablePrefetch(PrefetchConfig{MaxGap: DefaultPrefetchGap})
		for _, cfg := range []core.Config{
			{Workers: 1, SemiSort: true, Prefetch: 4},
			{Workers: 16, SemiSort: true, Prefetch: 8},
			{Workers: 64, SemiSort: true, Prefetch: 64},
		} {
			if weighted {
				res, err := core.SSSP[uint32](sg, 0, cfg)
				if err != nil {
					t.Fatal(err)
				}
				want, _, err := baseline.SerialDijkstra[uint32](g, 0)
				if err != nil {
					t.Fatal(err)
				}
				for v := range want {
					if res.Dist[v] != want[v] {
						t.Fatalf("workers=%d prefetch=%d: dist[%d] = %d, want %d",
							cfg.Workers, cfg.Prefetch, v, res.Dist[v], want[v])
					}
				}
			} else {
				res, err := core.BFS[uint32](sg, 0, cfg)
				if err != nil {
					t.Fatal(err)
				}
				want, err := baseline.SerialBFS[uint32](g, 0)
				if err != nil {
					t.Fatal(err)
				}
				for v := range want {
					if res.Level[v] != want[v] {
						t.Fatalf("workers=%d prefetch=%d: level[%d] = %d, want %d",
							cfg.Workers, cfg.Prefetch, v, res.Level[v], want[v])
					}
				}
			}
		}
		if st := sg.PrefetchStats(); st.Windows == 0 || st.Consumed == 0 {
			t.Fatalf("weighted=%v: prefetcher never engaged: %+v", weighted, st)
		}
	}
}
