package baseline

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// firstErr collects the first error seen across worker goroutines.
type firstErr struct {
	once sync.Once
	err  error
}

func (f *firstErr) set(err error) {
	if err != nil {
		f.once.Do(func() { f.err = err })
	}
}

// LevelSyncBFS is a barrier-synchronized parallel breadth-first search, the
// algorithmic class implemented by MTGL on SMP systems: the frontier of
// level i is split across workers, discovered vertices are claimed with a
// CAS on the level array, and a barrier separates levels. This is the
// "currently accepted synchronous technique" whose per-level load imbalance
// the paper's asynchronous design removes.
func LevelSyncBFS[V graph.Vertex](g graph.Adjacency[V], src V, workers int) ([]graph.Dist, error) {
	n := g.NumVertices()
	if uint64(src) >= n {
		return nil, fmt.Errorf("baseline: source %d out of range for %d vertices", src, n)
	}
	if workers <= 0 {
		workers = 1
	}
	level := make([]atomic.Uint64, n)
	for i := range level {
		level[i].Store(graph.InfDist)
	}
	level[src].Store(0)
	frontier := []V{src}
	cur := graph.Dist(0)
	var errs firstErr
	for len(frontier) > 0 && errs.err == nil {
		next := cur + 1
		nextFrontiers := make([][]V, workers)
		var wg sync.WaitGroup
		chunk := (len(frontier) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(frontier) {
				break
			}
			hi := lo + chunk
			if hi > len(frontier) {
				hi = len(frontier)
			}
			wg.Add(1)
			go func(w int, part []V) {
				defer wg.Done()
				scratch := &graph.Scratch[V]{}
				var out []V
				for _, v := range part {
					targets, _, err := g.Neighbors(v, scratch)
					if err != nil {
						errs.set(err)
						return
					}
					for _, t := range targets {
						if level[t].CompareAndSwap(graph.InfDist, next) {
							out = append(out, t)
						}
					}
				}
				nextFrontiers[w] = out
			}(w, frontier[lo:hi])
		}
		wg.Wait() // the per-level barrier
		frontier = frontier[:0]
		for _, part := range nextFrontiers {
			frontier = append(frontier, part...)
		}
		cur = next
	}
	if errs.err != nil {
		return nil, errs.err
	}
	out := make([]graph.Dist, n)
	for i := range level {
		out[i] = level[i].Load()
	}
	return out, nil
}

// VertexScanBFS is a level-synchronous BFS that re-scans the whole vertex
// set every level instead of maintaining a frontier — the simple
// OpenMP-style pattern (SNAP-class) whose work per level is O(n) regardless
// of frontier size. On graphs with many levels or heavy skew it wastes most
// of its scans, which is how the paper's SNAP column "struggles with the
// highly skewed degree distribution of the RMAT-B datasets".
func VertexScanBFS[V graph.Vertex](g graph.Adjacency[V], src V, workers int) ([]graph.Dist, error) {
	n := g.NumVertices()
	if uint64(src) >= n {
		return nil, fmt.Errorf("baseline: source %d out of range for %d vertices", src, n)
	}
	if workers <= 0 {
		workers = 1
	}
	level := make([]atomic.Uint64, n)
	for i := range level {
		level[i].Store(graph.InfDist)
	}
	level[src].Store(0)
	cur := graph.Dist(0)
	var errs firstErr
	for errs.err == nil {
		var found atomic.Bool
		var wg sync.WaitGroup
		chunk := (n + uint64(workers) - 1) / uint64(workers)
		for w := 0; w < workers; w++ {
			lo := uint64(w) * chunk
			if lo >= n {
				break
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(lo, hi uint64) {
				defer wg.Done()
				scratch := &graph.Scratch[V]{}
				for v := lo; v < hi; v++ {
					if level[v].Load() != uint64(cur) {
						continue
					}
					targets, _, err := g.Neighbors(V(v), scratch)
					if err != nil {
						errs.set(err)
						return
					}
					for _, t := range targets {
						if level[t].CompareAndSwap(graph.InfDist, uint64(cur)+1) {
							found.Store(true)
						}
					}
				}
			}(lo, hi)
		}
		wg.Wait() // the per-level barrier
		if !found.Load() {
			break
		}
		cur++
	}
	if errs.err != nil {
		return nil, errs.err
	}
	out := make([]graph.Dist, n)
	for i := range level {
		out[i] = level[i].Load()
	}
	return out, nil
}

// LabelPropCC is a synchronous parallel label-propagation connected
// components: every vertex repeatedly adopts the minimum label among itself
// and its neighbors, with a barrier per iteration (the bulk-synchronous
// analogue of MTGL's CC). Converges in O(diameter) rounds over the whole
// vertex set, which is exactly the redundant work the asynchronous version
// avoids.
func LabelPropCC[V graph.Vertex](g graph.Adjacency[V], workers int) ([]V, error) {
	n := g.NumVertices()
	if workers <= 0 {
		workers = 1
	}
	labels := make([]atomic.Uint64, n)
	for i := range labels {
		labels[i].Store(uint64(i))
	}
	var errs firstErr
	for errs.err == nil {
		var changed atomic.Bool
		var wg sync.WaitGroup
		chunk := (n + uint64(workers) - 1) / uint64(workers)
		for w := 0; w < workers; w++ {
			lo := uint64(w) * chunk
			if lo >= n {
				break
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(lo, hi uint64) {
				defer wg.Done()
				scratch := &graph.Scratch[V]{}
				for v := lo; v < hi; v++ {
					min := labels[v].Load()
					targets, _, err := g.Neighbors(V(v), scratch)
					if err != nil {
						errs.set(err)
						return
					}
					for _, t := range targets {
						if l := labels[t].Load(); l < min {
							min = l
						}
					}
					// Monotone decrease; retry CAS so concurrent writers
					// cannot raise a label.
					for {
						old := labels[v].Load()
						if min >= old {
							break
						}
						if labels[v].CompareAndSwap(old, min) {
							changed.Store(true)
							break
						}
					}
				}
			}(lo, hi)
		}
		wg.Wait() // the per-iteration barrier
		if !changed.Load() {
			break
		}
	}
	if errs.err != nil {
		return nil, errs.err
	}
	out := make([]V, n)
	for i := range out {
		out[i] = V(labels[i].Load())
	}
	return out, nil
}

// UnionFindCC is a lock-free concurrent union-find connected components
// (union by id with path halving), the asymptotically strongest shared-memory
// baseline. Labels are canonicalized to the minimum vertex id of each
// component for comparability.
func UnionFindCC[V graph.Vertex](g graph.Adjacency[V], workers int) ([]V, error) {
	n := g.NumVertices()
	if workers <= 0 {
		workers = 1
	}
	parent := make([]atomic.Uint64, n)
	for i := range parent {
		parent[i].Store(uint64(i))
	}
	find := func(x uint64) uint64 {
		for {
			p := parent[x].Load()
			if p == x {
				return x
			}
			gp := parent[p].Load()
			if gp != p {
				parent[x].CompareAndSwap(p, gp) // path halving
			}
			x = p
		}
	}
	union := func(a, b uint64) {
		for {
			ra, rb := find(a), find(b)
			if ra == rb {
				return
			}
			if ra > rb {
				ra, rb = rb, ra
			}
			// Attach the larger root under the smaller, so roots are
			// component minima.
			if parent[rb].CompareAndSwap(rb, ra) {
				return
			}
		}
	}
	var errs firstErr
	var wg sync.WaitGroup
	chunk := (n + uint64(workers) - 1) / uint64(workers)
	for w := 0; w < workers; w++ {
		lo := uint64(w) * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			scratch := &graph.Scratch[V]{}
			for v := lo; v < hi; v++ {
				targets, _, err := g.Neighbors(V(v), scratch)
				if err != nil {
					errs.set(err)
					return
				}
				for _, t := range targets {
					union(v, uint64(t))
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	if errs.err != nil {
		return nil, errs.err
	}
	out := make([]V, n)
	for i := uint64(0); i < n; i++ {
		out[i] = V(find(i))
	}
	return out, nil
}
