package bsp

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/gen"
	"repro/internal/graph"
)

var rankSweep = []int{1, 2, 3, 8}

func TestClusterValidation(t *testing.T) {
	g, _ := graph.FromEdges[uint32](2, false, false, nil)
	if _, err := NewCluster(g, 0); err == nil {
		t.Fatal("0 ranks accepted")
	}
	c, err := NewCluster(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ranks() != 4 {
		t.Fatalf("ranks = %d", c.Ranks())
	}
	if _, _, err := c.BFS(9); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestBSPBFSMatchesSerial(t *testing.T) {
	g, err := gen.RMAT[uint32](9, 8, gen.RMATA, 21)
	if err != nil {
		t.Fatal(err)
	}
	// Start from a vertex with out-edges so the traversal reaches beyond
	// the source (the paper's runs start in the giant component).
	src := uint32(0)
	for v := uint32(0); uint64(v) < g.NumVertices(); v++ {
		if g.Degree(v) > g.Degree(src) {
			src = v
		}
	}
	want, err := baseline.SerialBFS(g, src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range rankSweep {
		c, err := NewCluster(g, ranks)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := c.BFS(src)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("ranks=%d: level[%d] = %d, want %d", ranks, v, got[v], want[v])
			}
		}
		if stats.Supersteps == 0 || stats.Messages == 0 {
			t.Fatalf("ranks=%d: stats = %+v", ranks, stats)
		}
	}
}

func TestBSPBFSSuperstepsEqualLevels(t *testing.T) {
	// A level-synchronous BFS needs exactly one superstep per BFS level
	// reached — that coupling is the synchronization cost the async engine
	// removes.
	g, err := gen.Chain[uint32](50)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewCluster(g, 4)
	levels, stats, err := c.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	if levels[49] != 49 {
		t.Fatalf("level[49] = %d", levels[49])
	}
	if stats.Supersteps != 50 {
		t.Fatalf("supersteps = %d, want 50 (one per level)", stats.Supersteps)
	}
}

func TestBSPCCMatchesSerial(t *testing.T) {
	g, err := gen.RMATUndirected[uint32](9, 4, gen.RMATB, 22)
	if err != nil {
		t.Fatal(err)
	}
	want, err := baseline.SerialCC(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range rankSweep {
		c, err := NewCluster(g, ranks)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := c.CC()
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("ranks=%d: id[%d] = %d, want %d", ranks, v, got[v], want[v])
			}
		}
		if ranks > 1 && stats.MaxImbalance() < 1.0 {
			t.Fatalf("ranks=%d: imbalance = %v", ranks, stats.Imbalance)
		}
	}
}

func TestBSPCCDisconnected(t *testing.T) {
	b := graph.NewBuilder[uint32](6, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(4, 5, 1)
	b.Symmetrize()
	g, err := b.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewCluster(g, 3)
	got, _, err := c.CC()
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{0, 0, 2, 3, 4, 4}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("id[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestBSPEmptyGraph(t *testing.T) {
	g, _ := graph.FromEdges[uint32](0, false, false, nil)
	c, _ := NewCluster(g, 2)
	ids, stats, err := c.CC()
	if err != nil || len(ids) != 0 {
		t.Fatalf("ids=%v err=%v", ids, err)
	}
	if stats.Supersteps != 0 {
		t.Fatalf("supersteps = %d", stats.Supersteps)
	}
}

func TestBSPImbalanceOnSkewedGraph(t *testing.T) {
	// A star graph concentrates all messages at the hub's owner: the load
	// imbalance the paper attributes to power-law graphs on DM systems.
	const n = 1024
	b := graph.NewBuilder[uint32](n, false)
	for v := uint32(1); v < n; v++ {
		b.AddEdge(0, v, 1)
	}
	b.Symmetrize()
	g, err := b.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewCluster(g, 8)
	_, stats, err := c.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxImbalance() < 4.0 {
		t.Fatalf("hub imbalance = %f, want heavily imbalanced (>4x mean)", stats.MaxImbalance())
	}
}
