package core

import (
	"repro/internal/graph"
)

// CCResult holds the output of an undirected connected-components traversal:
// every vertex is labeled with the smallest vertex id connectable to it
// (Algorithms 3 and 4). The traversal itself is the shared relaxation kernel
// in kernels.go.
type CCResult[V graph.Vertex] struct {
	ID    []V // component label per vertex: the minimum vertex id in the component
	Stats Stats
}

// NumComponents counts distinct component labels.
func (r *CCResult[V]) NumComponents() uint64 {
	var count uint64
	for v, id := range r.ID {
		if uint64(id) == uint64(v) { // labels are component-minimum ids
			count++
		}
	}
	return count
}

// Sizes returns the size of each component keyed by its label.
func (r *CCResult[V]) Sizes() map[V]uint64 {
	sizes := make(map[V]uint64)
	for _, id := range r.ID {
		sizes[id]++
	}
	return sizes
}
