package graph

// CompressedCSR is the delta + varint compressed counterpart of CSR: the
// edge array is replaced by a flat blob of per-vertex encoded blocks (see
// codec.go) plus a byte-offset index and a degree array. The index and
// degrees are the RAM-resident "algorithmic information about the vertices";
// the blob is what shrinks — typically 2-4x on RMAT/web-like graphs, which
// is a matching cut in IM footprint and, through the sem v2 format, in
// device bytes per traversed edge.

import (
	"fmt"
	"sort"
)

// CompressedCSR is an immutable compressed sparse row graph with
// delta+varint encoded adjacency blocks. It implements Adjacency; Neighbors
// decodes into the caller's scratch, so traversal over a compressed graph
// allocates nothing per edge.
type CompressedCSR[V Vertex] struct {
	offsets  []uint64 // n+1 byte offsets into blob; block of v is blob[offsets[v]:offsets[v+1]]
	degrees  []uint32 // out-degree of each vertex (block length alone cannot recover it)
	blob     []byte   // concatenated encoded blocks
	weighted bool
	m        uint64
}

// Compress encodes g. Vertices whose adjacency lists are not already sorted
// ascending (Builder output always is) are sorted on a scratch copy, weights
// kept parallel, so compressed adjacency order is ascending by target.
func Compress[V Vertex](g *CSR[V]) (*CompressedCSR[V], error) {
	n := g.NumVertices()
	c := &CompressedCSR[V]{
		offsets:  make([]uint64, n+1),
		degrees:  make([]uint32, n),
		weighted: g.Weighted(),
		m:        g.NumEdges(),
	}
	// Pre-size the blob at one byte per edge — the dense-gap floor; growth
	// beyond it is a single amortized append chain.
	c.blob = make([]byte, 0, g.NumEdges())
	var sortT []V
	var sortW []Weight
	for v := uint64(0); v < n; v++ {
		targets, weights, _ := g.Neighbors(V(v), nil)
		if uint64(len(targets)) > uint64(^uint32(0)) {
			return nil, fmt.Errorf("graph: degree of %d (%d) overflows the compressed degree index", v, len(targets))
		}
		c.degrees[v] = uint32(len(targets))
		if !sortedAscending(targets) {
			sortT = append(sortT[:0], targets...)
			targets = sortT
			if weights != nil {
				sortW = append(sortW[:0], weights...)
				weights = sortW
				sort.Sort(&pairSort[V]{t: sortT, w: sortW})
			} else {
				sort.Slice(sortT, func(i, j int) bool { return sortT[i] < sortT[j] })
			}
		}
		var err error
		c.blob, err = AppendAdjBlock(c.blob, V(v), targets, weights)
		if err != nil {
			return nil, fmt.Errorf("graph: compress vertex %d: %w", v, err)
		}
		c.offsets[v+1] = uint64(len(c.blob))
	}
	return c, nil
}

func sortedAscending[V Vertex](ts []V) bool {
	for i := 1; i < len(ts); i++ {
		if ts[i] < ts[i-1] {
			return false
		}
	}
	return true
}

// pairSort sorts a target slice ascending, carrying weights along.
type pairSort[V Vertex] struct {
	t []V
	w []Weight
}

func (p *pairSort[V]) Len() int { return len(p.t) }
func (p *pairSort[V]) Less(i, j int) bool {
	if p.t[i] != p.t[j] {
		return p.t[i] < p.t[j]
	}
	return p.w[i] < p.w[j]
}
func (p *pairSort[V]) Swap(i, j int) {
	p.t[i], p.t[j] = p.t[j], p.t[i]
	p.w[i], p.w[j] = p.w[j], p.w[i]
}

// NewCompressedCSRRaw assembles a CompressedCSR from already-encoded
// component arrays (the semi-external v2 loader's path). offsets must have
// length n+1, start at 0, be non-decreasing, and end at len(blob); degrees
// must have length n and sum to m.
func NewCompressedCSRRaw[V Vertex](offsets []uint64, degrees []uint32, blob []byte, weighted bool) (*CompressedCSR[V], error) {
	if len(offsets) == 0 || len(offsets) != len(degrees)+1 {
		return nil, fmt.Errorf("graph: compressed index mismatch: %d offsets, %d degrees", len(offsets), len(degrees))
	}
	if offsets[0] != 0 || offsets[len(offsets)-1] != uint64(len(blob)) {
		return nil, fmt.Errorf("graph: compressed offsets do not span blob (first=%d last=%d size=%d)",
			offsets[0], offsets[len(offsets)-1], len(blob))
	}
	var m uint64
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			return nil, fmt.Errorf("graph: compressed offsets decrease at %d", i)
		}
		m += uint64(degrees[i-1])
	}
	return &CompressedCSR[V]{offsets: offsets, degrees: degrees, blob: blob, weighted: weighted, m: m}, nil
}

// NumVertices implements Adjacency.
func (c *CompressedCSR[V]) NumVertices() uint64 {
	if len(c.offsets) == 0 {
		return 0
	}
	return uint64(len(c.offsets) - 1)
}

// NumEdges reports the number of encoded directed edges.
func (c *CompressedCSR[V]) NumEdges() uint64 { return c.m }

// Weighted reports whether blocks carry a weight stream.
func (c *CompressedCSR[V]) Weighted() bool { return c.weighted }

// CompressedBytes reports the size of the encoded edge blob — the compressed
// counterpart of m x record bytes.
func (c *CompressedCSR[V]) CompressedBytes() int64 { return int64(len(c.blob)) }

// Degree implements Adjacency from the RAM-resident degree array; no decode.
func (c *CompressedCSR[V]) Degree(v V) int { return int(c.degrees[v]) }

// BlockOffsets exposes the n+1 byte-offset index into the blob. Storage back
// ends serialize it; callers must not mutate it.
func (c *CompressedCSR[V]) BlockOffsets() []uint64 { return c.offsets }

// Degrees exposes the per-vertex degree array. Callers must not mutate it.
func (c *CompressedCSR[V]) Degrees() []uint32 { return c.degrees }

// Blob exposes the concatenated encoded blocks. Callers must not mutate it.
func (c *CompressedCSR[V]) Blob() []byte { return c.blob }

// Block returns the encoded adjacency block of v (zero-length for isolated
// vertices), for cursor-based iteration: graph.Cursor(c.Block(v), v, c.Degree(v)).
func (c *CompressedCSR[V]) Block(v V) []byte {
	return c.blob[c.offsets[v]:c.offsets[v+1]]
}

// Neighbors implements Adjacency by decoding v's block into scratch; the
// returned slices are valid until the next call with the same scratch. A nil
// scratch allocates fresh slices — fine for serial baselines and tools, never
// done by the engine's workers.
//
//lint:hotpath
func (c *CompressedCSR[V]) Neighbors(v V, scratch *Scratch[V]) ([]V, []Weight, error) {
	deg := int(c.degrees[v])
	if deg == 0 {
		return nil, nil, nil
	}
	if scratch == nil {
		scratch = &Scratch[V]{}
	}
	if cap(scratch.Targets) < deg {
		scratch.Targets = make([]V, deg)
	}
	targets := scratch.Targets[:deg]
	var weights []Weight
	if c.weighted {
		if cap(scratch.Weights) < deg {
			scratch.Weights = make([]Weight, deg)
		}
		weights = scratch.Weights[:deg]
	}
	if _, err := DecodeAdjBlock(c.Block(v), v, targets, weights); err != nil {
		return nil, nil, err
	}
	return targets, weights, nil
}

// Decompress rebuilds the raw CSR (round-trip verification, tools that need
// aliasing adjacency slices).
func (c *CompressedCSR[V]) Decompress() (*CSR[V], error) {
	n := c.NumVertices()
	offsets := make([]uint64, n+1)
	for v := uint64(0); v < n; v++ {
		offsets[v+1] = offsets[v] + uint64(c.degrees[v])
	}
	targets := make([]V, c.m)
	var weights []Weight
	if c.weighted {
		weights = make([]Weight, c.m)
	}
	for v := uint64(0); v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		if lo == hi {
			continue
		}
		var ws []Weight
		if weights != nil {
			ws = weights[lo:hi]
		}
		if _, err := DecodeAdjBlock(c.Block(V(v)), V(v), targets[lo:hi], ws); err != nil {
			return nil, fmt.Errorf("graph: decompress vertex %d: %w", v, err)
		}
	}
	return NewCSRRaw(offsets, targets, weights)
}

// CompressedCSR is a full Adjacency back end.
var _ Adjacency[uint32] = (*CompressedCSR[uint32])(nil)
