package fixture

import (
	"fmt"
	"time"
)

//lint:hotpath
func hotVisit(labels []uint64, v uint64) string {
	s := fmt.Sprintf("v=%d", v)     // violation: fmt call
	t := time.Now()                 // violation: time.Now
	seen := make(map[uint64]bool)   // violation: map make
	extra := map[string]int{"x": 1} // violation: map composite literal
	f := func() { labels[v] = 1 }   // violation: closure allocation
	f()
	seen[v] = true
	_ = extra
	_ = t
	return s
}

// coldVisit does all the same things without the annotation: no diagnostics.
func coldVisit(labels []uint64, v uint64) string {
	s := fmt.Sprintf("v=%d", v)
	t := time.Now()
	seen := make(map[uint64]bool)
	f := func() { labels[v] = 1 }
	f()
	seen[v] = true
	_ = t
	return s
}

//lint:hotpath
func hotClean(labels []uint64, v uint64) {
	// Slices and arithmetic are fine on the hot path.
	buf := make([]uint64, 0, 4)
	buf = append(buf, v)
	labels[v] = buf[0]
}

//lint:hotpath
func hotGrow(vs []uint64) []uint64 {
	var out []uint64
	out = append(out, 0) // fine: not in a loop
	for _, v := range vs {
		out = append(out, v) // violation: uncapped growth per iteration
	}
	return out
}

// hotGrowHinted sizes the destination up front; the same loop stays quiet.
//
//lint:hotpath
func hotGrowHinted(vs []uint64) []uint64 {
	out := make([]uint64, 0, len(vs))
	for _, v := range vs {
		out = append(out, v)
	}
	return out
}

// hotGrowPregrown uses the cap() pre-grow idiom on a caller-owned slice.
//
//lint:hotpath
func hotGrowPregrown(dst, vs []uint64) []uint64 {
	if cap(dst)-len(dst) < len(vs) {
		grown := make([]uint64, len(dst), len(dst)+len(vs))
		copy(grown, dst)
		dst = grown
	}
	for _, v := range vs {
		dst = append(dst, v)
	}
	return dst
}

// coldGrow grows in a loop without the annotation: no diagnostics.
func coldGrow(vs []uint64) []uint64 {
	var out []uint64
	for _, v := range vs {
		out = append(out, v)
	}
	return out
}

// hotScanAlloc allocates a fresh slice every iteration of its scan loop, the
// per-vertex allocation storm the bottom-up rule exists for.
//
//lint:hotpath
func hotScanAlloc(vs []uint64) uint64 {
	var sum uint64
	for _, v := range vs {
		tmp := make([]uint64, 0, 4) // violation: slice make inside the loop
		tmp = append(tmp, v)
		sum += tmp[0]
	}
	return sum
}

// hotScanGuarded reallocates only on overflow behind a cap() guard — the
// grow-on-demand idiom — and stays quiet.
//
//lint:hotpath
func hotScanGuarded(dst, vs []uint64) []uint64 {
	for _, v := range vs {
		if len(dst) == cap(dst) {
			grown := make([]uint64, len(dst), 2*cap(dst)+1)
			copy(grown, dst)
			dst = grown
		}
		dst = append(dst, v)
	}
	return dst
}

// hotScanHoisted allocates once above the loop and reuses: quiet.
//
//lint:hotpath
func hotScanHoisted(vs []uint64) uint64 {
	tmp := make([]uint64, 0, 4)
	var sum uint64
	for _, v := range vs {
		tmp = append(tmp[:0], v)
		sum += tmp[0]
	}
	return sum
}

// coldScanAlloc makes per iteration without the annotation: no diagnostics.
func coldScanAlloc(vs []uint64) uint64 {
	var sum uint64
	for _, v := range vs {
		tmp := make([]uint64, 0, 4)
		tmp = append(tmp, v)
		sum += tmp[0]
	}
	return sum
}
