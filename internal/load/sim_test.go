package load

import (
	"testing"
	"time"
)

// overloadConfig offers ~2.6x the modeled capacity: 4 slots at a ~26ms mean
// service time serve ~154 req/s against 400 offered.
func overloadConfig() Config {
	return Config{
		Vertices: 1 << 16,
		Requests: 20000,
		Rate:     400,
		Mix:      map[string]float64{"bfs": 7, "sssp": 3},
		Tenants: []Tenant{
			{Name: "acme", Class: "gold", Weight: 1, Deadline: 300 * time.Millisecond},
			{Name: "bulk", Class: "batch", Weight: 8, Deadline: 2 * time.Second},
		},
		Seed: 7,
	}
}

func simReport(t *testing.T, cfg Config, sim SimConfig) *Report {
	t.Helper()
	schedule, err := BuildSchedule(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	outcomes, err := Simulate(&cfg, &sim, schedule)
	if err != nil {
		t.Fatal(err)
	}
	return BuildReport(outcomes)
}

func TestSimulateDeterministic(t *testing.T) {
	r1 := simReport(t, overloadConfig(), SimConfig{})
	r2 := simReport(t, overloadConfig(), SimConfig{})
	b1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("same seed and config produced different reports")
	}
}

// TestSimPriorityProtectsGold is the policy claim as a regression test:
// under ~2.6x overload, priority admission plus deadline shedding must give
// the gold class better goodput and a better p99 than FIFO, while the
// overall goodput stays in the same regime (the win must come from
// reordering, not from magically serving more work).
func TestSimPriorityProtectsGold(t *testing.T) {
	prio := simReport(t, overloadConfig(), SimConfig{Admission: "priority", Shedding: "deadline"})
	fifo := simReport(t, overloadConfig(), SimConfig{Admission: "fifo", Shedding: "off"})

	pGold, fGold := prio.Classes["gold"], fifo.Classes["gold"]
	if pGold == nil || fGold == nil {
		t.Fatal("gold class missing from report")
	}
	pGood := float64(pGold.Good) / float64(pGold.Requests)
	fGood := float64(fGold.Good) / float64(fGold.Requests)
	if pGood <= fGood {
		t.Fatalf("gold goodput: priority %.3f <= fifo %.3f", pGood, fGood)
	}
	if pGood < 0.9 {
		t.Fatalf("gold goodput under priority = %.3f, want >= 0.9", pGood)
	}
	if pGold.P99Ms >= fGold.P99Ms {
		t.Fatalf("gold p99: priority %.1fms >= fifo %.1fms", pGold.P99Ms, fGold.P99Ms)
	}
	if prio.Goodput < fifo.Goodput/2 {
		t.Fatalf("total goodput collapsed under priority: %.3f vs fifo %.3f", prio.Goodput, fifo.Goodput)
	}
	if prio.Fairness <= fifo.Fairness {
		t.Fatalf("fairness: priority %.3f <= fifo %.3f", prio.Fairness, fifo.Fairness)
	}
}

// TestSimUncontendedNoRegression: far below capacity, policy must not
// matter — both orders serve everything well and nothing is rejected.
func TestSimUncontendedNoRegression(t *testing.T) {
	cfg := overloadConfig()
	cfg.Rate = 40 // ~0.26x capacity
	cfg.Requests = 4000
	prio := simReport(t, cfg, SimConfig{Admission: "priority", Shedding: "deadline"})
	fifo := simReport(t, cfg, SimConfig{Admission: "fifo", Shedding: "off"})
	for name, r := range map[string]*Report{"priority": prio, "fifo": fifo} {
		if r.Total.Rejected != 0 {
			t.Fatalf("%s rejected %d requests uncontended", name, r.Total.Rejected)
		}
		if r.Goodput < 0.99 {
			t.Fatalf("%s goodput %.3f uncontended, want ~1", name, r.Goodput)
		}
	}
	if prio.Classes["gold"].P99Ms > fifo.Classes["gold"].P99Ms*1.25 {
		t.Fatalf("priority gold p99 %.1fms regressed vs fifo %.1fms uncontended",
			prio.Classes["gold"].P99Ms, fifo.Classes["gold"].P99Ms)
	}
}

func TestSimRateLimitIsolatesTenants(t *testing.T) {
	cfg := overloadConfig()
	cfg.Rate = 40
	cfg.Requests = 4000
	// Per-tenant cap of 10 req/s: bulk (~36 req/s offered) must be limited
	// heavily, acme (~4 req/s offered) not at all.
	r := simReport(t, cfg, SimConfig{RateLimit: 10, Burst: 20})
	bulk, acme := r.Tenants["bulk"], r.Tenants["acme"]
	if bulk.RateLimited == 0 {
		t.Fatal("bulk tenant over its rate cap was never limited")
	}
	if acme.RateLimited != 0 {
		t.Fatalf("acme tenant under its rate cap was limited %d times", acme.RateLimited)
	}
	if got := float64(bulk.OK) / (r.WallMs / 1000); got > 13 {
		t.Fatalf("bulk served at %.1f req/s against a 10 req/s cap", got)
	}
}

func TestSimQueueTimeoutPath(t *testing.T) {
	cfg := overloadConfig()
	// No shedding and a queue timeout shorter than the drain time: waiters
	// must exit via 503 queue-timeout.
	r := simReport(t, cfg, SimConfig{Shedding: "off", QueueTimeout: 100 * time.Millisecond})
	if r.Total.QueueTimeout == 0 {
		t.Fatal("overloaded no-shed run produced no queue timeouts")
	}
}

func TestSimRejectsUnknownKernel(t *testing.T) {
	cfg := overloadConfig()
	cfg.Requests = 10
	schedule, err := BuildSchedule(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim := SimConfig{Service: map[string]time.Duration{"cc": time.Millisecond}}
	if _, err := Simulate(&cfg, &sim, schedule); err == nil {
		t.Fatal("schedule kernels missing from Service table were accepted")
	}
}
