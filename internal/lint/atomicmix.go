package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
)

// AtomicMix flags struct fields that are accessed both through sync/atomic
// (atomic.AddUint64(&s.f, ...) or the method form s.f.Load() on the
// sync/atomic wrapper types) and with plain loads or stores anywhere in the
// declaring package. Mixing the two breaks the memory model silently: the
// plain access does not participate in the atomic happens-before order, yet
// the race detector often cannot observe the pair racing (the engine's
// termination counter and abort flag are exactly such fields). The protocol
// answer is one discipline per field, never both.
const atomicMixName = "atomic-mix"

var AtomicMix = &Analyzer{
	Name: atomicMixName,
	Doc:  "struct field accessed both via sync/atomic and with plain loads/stores",
	Run:  runAtomicMix,
}

type fieldAccess struct {
	atomic []token.Pos
	plain  []token.Pos
}

func runAtomicMix(p *Package) []Diagnostic {
	accesses := make(map[*types.Var]*fieldAccess)
	claimed := make(map[*ast.SelectorExpr]bool) // selectors consumed by an atomic access

	// fieldOf resolves a selector to the struct field it reads or writes.
	fieldOf := func(sel *ast.SelectorExpr) *types.Var {
		if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok && v.Pkg() == p.Types {
				return v
			}
		}
		return nil
	}
	record := func(v *types.Var, pos token.Pos, isAtomic bool) {
		acc := accesses[v]
		if acc == nil {
			acc = &fieldAccess{}
			accesses[v] = acc
		}
		if isAtomic {
			acc.atomic = append(acc.atomic, pos)
		} else {
			acc.plain = append(acc.plain, pos)
		}
	}

	// Pass 1: atomic accesses. Two shapes:
	//   atomic.AddUint64(&s.f, 1)   — sync/atomic package function on &field
	//   s.f.Add(1)                  — method on a sync/atomic wrapper type
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fun, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := fun.X.(*ast.Ident); ok {
				if pn, ok := p.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "sync/atomic" {
					for _, arg := range call.Args {
						un, ok := arg.(*ast.UnaryExpr)
						if !ok || un.Op != token.AND {
							continue
						}
						if sel, ok := un.X.(*ast.SelectorExpr); ok {
							if f := fieldOf(sel); f != nil {
								record(f, sel.Pos(), true)
								claimed[sel] = true
							}
						}
					}
					return true
				}
			}
			if m, ok := p.Info.Uses[fun.Sel].(*types.Func); ok && m.Pkg() != nil && m.Pkg().Path() == "sync/atomic" {
				if sel, ok := fun.X.(*ast.SelectorExpr); ok {
					if f := fieldOf(sel); f != nil {
						record(f, sel.Pos(), true)
						claimed[sel] = true
					}
				}
			}
			return true
		})
	}

	// Pass 2: every unclaimed selector on the same fields is a plain access.
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || claimed[sel] {
				return true
			}
			if f := fieldOf(sel); f != nil {
				record(f, sel.Pos(), false)
			}
			return true
		})
	}

	var diags []Diagnostic
	for f, acc := range accesses {
		if len(acc.atomic) == 0 || len(acc.plain) == 0 {
			continue
		}
		first := acc.plain[0]
		for _, pos := range acc.plain[1:] {
			if pos < first {
				first = pos
			}
		}
		firstAtomic := acc.atomic[0]
		for _, pos := range acc.atomic[1:] {
			if pos < firstAtomic {
				firstAtomic = pos
			}
		}
		ap := p.Fset.Position(firstAtomic)
		diags = append(diags, Diagnostic{
			Pos:      p.Fset.Position(first),
			Analyzer: atomicMixName,
			// Base name only: messages must not embed checkout-dependent
			// absolute paths (the golden-file test diffs them verbatim).
			Message: "field " + f.Name() + " is accessed with a plain load/store here but atomically at " +
				filepath.Base(ap.Filename) + ":" + strconv.Itoa(ap.Line) + "; pick one discipline",
		})
	}
	return diags
}
