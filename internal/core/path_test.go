package core

import (
	"testing"

	"repro/internal/graph"
)

func TestPathToSSSP(t *testing.T) {
	g := paperFigure3Graph(t)
	res, err := SSSP[uint32](g, 0, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	path, err := res.PathTo(4)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{0, 2, 3, 4} // dist 5+1+2 = 8, the shortest route
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	// Path to the source itself is just the source.
	path, err = res.PathTo(0)
	if err != nil || len(path) != 1 || path[0] != 0 {
		t.Fatalf("path to source = %v, %v", path, err)
	}
	// Path weights must sum to the reported distance.
	sum := graph.Dist(0)
	for i := 0; i+1 < len(want); i++ {
		ts, ws, _ := g.Neighbors(want[i], nil)
		for j, tgt := range ts {
			if tgt == want[i+1] {
				sum += graph.Dist(ws[j])
			}
		}
	}
	if sum != res.Dist[4] {
		t.Fatalf("path weight %d != dist %d", sum, res.Dist[4])
	}
}

func TestPathToErrors(t *testing.T) {
	b := graph.NewBuilder[uint32](3, false)
	b.AddEdge(0, 1, 1)
	g, err := b.Build(false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS[uint32](g, 0, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.PathTo(2); err == nil {
		t.Fatal("path to unreached vertex should error")
	}
	if _, err := res.PathTo(99); err == nil {
		t.Fatal("out-of-range vertex should error")
	}
	path, err := res.PathTo(1)
	if err != nil || len(path) != 2 || path[0] != 0 || path[1] != 1 {
		t.Fatalf("path = %v, %v", path, err)
	}
}

func TestPathToDetectsCorruptParents(t *testing.T) {
	res := &BFSResult[uint32]{
		Level:  []graph.Dist{0, 1, 1},
		Parent: []uint32{0, 2, 1}, // 1 <-> 2 cycle, never reaches source
	}
	if _, err := res.PathTo(1); err == nil {
		t.Fatal("parent cycle not detected")
	}
}
