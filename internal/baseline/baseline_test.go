package baseline

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func lineGraph(t testing.TB, n uint32) *graph.CSR[uint32] {
	t.Helper()
	b := graph.NewBuilder[uint32](uint64(n), false)
	for i := uint32(0); i+1 < n; i++ {
		b.AddEdge(i, i+1, 1)
	}
	g, err := b.Build(false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSerialBFSLine(t *testing.T) {
	g := lineGraph(t, 10)
	levels, err := SerialBFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < 10; v++ {
		if levels[v] != graph.Dist(v) {
			t.Fatalf("level[%d] = %d", v, levels[v])
		}
	}
	if _, err := SerialBFS(g, 99); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestSerialBFSUnreachable(t *testing.T) {
	b := graph.NewBuilder[uint32](4, false)
	b.AddEdge(0, 1, 1)
	g, _ := b.Build(false)
	levels, err := SerialBFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if levels[2] != graph.InfDist || levels[3] != graph.InfDist {
		t.Fatalf("levels = %v", levels)
	}
}

func TestSerialDijkstraKnownGraph(t *testing.T) {
	b := graph.NewBuilder[uint32](5, true)
	b.AddEdge(0, 1, 10)
	b.AddEdge(0, 2, 3)
	b.AddEdge(2, 1, 4)
	b.AddEdge(1, 3, 2)
	b.AddEdge(2, 3, 8)
	b.AddEdge(3, 4, 7)
	g, _ := b.Build(false)
	dist, parent, err := SerialDijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Dist{0, 7, 3, 9, 16}
	for v, d := range want {
		if dist[v] != d {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], d)
		}
	}
	if parent[1] != 2 || parent[3] != 1 {
		t.Fatalf("parents = %v", parent)
	}
	if _, _, err := SerialDijkstra(g, 9); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestSerialCCThreeComponents(t *testing.T) {
	b := graph.NewBuilder[uint32](7, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 1)
	b.Symmetrize()
	g, _ := b.Build(true)
	ids, err := SerialCC(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{0, 0, 0, 3, 3, 5, 6}
	for v, id := range want {
		if ids[v] != id {
			t.Fatalf("id[%d] = %d, want %d", v, ids[v], id)
		}
	}
}

func randomUndirected(t testing.TB, n uint64, m int, seed uint64) *graph.CSR[uint32] {
	t.Helper()
	r := rand.New(rand.NewPCG(seed, 99))
	b := graph.NewBuilder[uint32](n, false)
	for i := 0; i < m; i++ {
		b.AddEdge(uint32(r.Uint64N(n)), uint32(r.Uint64N(n)), 1)
	}
	b.Symmetrize()
	g, err := b.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLevelSyncBFSMatchesSerial(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := randomUndirected(t, 300, 900, seed)
		want, err := SerialBFS(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			got, err := LevelSyncBFS(g, 0, workers)
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("seed=%d workers=%d level[%d] = %d, want %d",
						seed, workers, v, got[v], want[v])
				}
			}
		}
	}
	if _, err := LevelSyncBFS(lineGraph(t, 3), 9, 2); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestLevelSyncBFSZeroWorkersDefaults(t *testing.T) {
	g := lineGraph(t, 5)
	got, err := LevelSyncBFS(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[4] != 4 {
		t.Fatalf("level[4] = %d", got[4])
	}
}

func TestLabelPropCCMatchesSerial(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := randomUndirected(t, 200, 300, seed)
		want, err := SerialCC(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 8} {
			got, err := LabelPropCC(g, workers)
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("seed=%d workers=%d id[%d] = %d, want %d",
						seed, workers, v, got[v], want[v])
				}
			}
		}
	}
}

func TestUnionFindCCMatchesSerial(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := randomUndirected(t, 200, 300, seed)
		want, err := SerialCC(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4, 16} {
			got, err := UnionFindCC(g, workers)
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("seed=%d workers=%d id[%d] = %d, want %d",
						seed, workers, v, got[v], want[v])
				}
			}
		}
	}
}

func TestCCVariantsOnEmptyAndSingleton(t *testing.T) {
	empty, _ := graph.FromEdges[uint32](0, false, false, nil)
	if ids, _ := SerialCC(empty); len(ids) != 0 {
		t.Fatal("SerialCC on empty graph")
	}
	if ids, _ := LabelPropCC(empty, 2); len(ids) != 0 {
		t.Fatal("LabelPropCC on empty graph")
	}
	if ids, _ := UnionFindCC(empty, 2); len(ids) != 0 {
		t.Fatal("UnionFindCC on empty graph")
	}
	single, _ := graph.FromEdges[uint32](1, false, false, nil)
	if ids, _ := SerialCC(single); ids[0] != 0 {
		t.Fatal("singleton label")
	}
	if ids, _ := LabelPropCC(single, 2); ids[0] != 0 {
		t.Fatal("singleton label (labelprop)")
	}
	if ids, _ := UnionFindCC(single, 2); ids[0] != 0 {
		t.Fatal("singleton label (unionfind)")
	}
}

// Property: the three CC implementations agree on arbitrary undirected
// graphs at varying worker counts.
func TestQuickCCAgreement(t *testing.T) {
	type rawEdge struct{ S, D uint8 }
	f := func(raw []rawEdge, w uint8) bool {
		const n = 80
		workers := int(w%7) + 1
		b := graph.NewBuilder[uint32](n, false)
		for _, e := range raw {
			b.AddEdge(uint32(e.S)%n, uint32(e.D)%n, 1)
		}
		b.Symmetrize()
		g, err := b.Build(true)
		if err != nil {
			return false
		}
		want, err := SerialCC(g)
		if err != nil {
			return false
		}
		lp, err := LabelPropCC(g, workers)
		if err != nil {
			return false
		}
		uf, err := UnionFindCC(g, workers)
		if err != nil {
			return false
		}
		for v := range want {
			if lp[v] != want[v] || uf[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: level-sync BFS equals serial BFS on arbitrary digraphs.
func TestQuickLevelSyncEquivalence(t *testing.T) {
	type rawEdge struct{ S, D uint8 }
	f := func(raw []rawEdge, w uint8) bool {
		const n = 80
		workers := int(w%5) + 1
		edges := make([]graph.Edge[uint32], len(raw))
		for i, e := range raw {
			edges[i] = graph.Edge[uint32]{Src: uint32(e.S) % n, Dst: uint32(e.D) % n}
		}
		g, err := graph.FromEdges(n, false, true, edges)
		if err != nil {
			return false
		}
		want, err := SerialBFS(g, 0)
		if err != nil {
			return false
		}
		got, err := LevelSyncBFS(g, 0, workers)
		if err != nil {
			return false
		}
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
