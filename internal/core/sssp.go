package core

import (
	"repro/internal/graph"
)

// SSSPResult holds the output of a single-source shortest path traversal:
// per-vertex path length and parent, the paper's dist_array / parent_array.
// The traversal itself is the shared relaxation kernel in kernels.go.
type SSSPResult[V graph.Vertex] struct {
	Dist   []graph.Dist // InfDist for unreachable vertices
	Parent []V          // NoVertex for unreachable vertices; source parents itself
	Stats  Stats
}

// Reached reports whether v was reached from the source.
func (r *SSSPResult[V]) Reached(v V) bool { return r.Dist[v] != graph.InfDist }
