package graph

import "sort"

// Transpose returns the reverse graph: every edge (u, v, w) becomes
// (v, u, w). Useful for in-neighborhood traversals and for turning a crawl's
// out-links into in-link structure.
func Transpose[V Vertex](g *CSR[V]) (*CSR[V], error) {
	b := NewBuilder[V](g.NumVertices(), g.Weighted())
	g.ForEachEdge(func(u, v V, w Weight) {
		b.AddEdge(v, u, w)
	})
	return b.Build(false)
}

// DegreeStats summarizes an out-degree distribution, the property that
// drives the paper's load-balance discussion (§I-B: hub vertices).
type DegreeStats struct {
	Min, Max int
	Mean     float64
	Median   int
	P99      int
	Isolated uint64  // vertices with out-degree 0
	HubFrac  float64 // fraction of edges incident to the top 1% of vertices
	NumVerts uint64
	NumEdges uint64
}

// Degrees computes the out-degree distribution summary of g.
func Degrees[V Vertex](g *CSR[V]) DegreeStats {
	n := g.NumVertices()
	st := DegreeStats{NumVerts: n, NumEdges: g.NumEdges()}
	if n == 0 {
		return st
	}
	degs := make([]int, n)
	for v := uint64(0); v < n; v++ {
		degs[v] = g.Degree(V(v))
	}
	sort.Ints(degs)
	st.Min = degs[0]
	st.Max = degs[n-1]
	st.Median = degs[n/2]
	st.P99 = degs[n-1-(n-1)/100]
	total := 0
	for _, d := range degs {
		total += d
		if d == 0 {
			st.Isolated++
		}
	}
	st.Mean = float64(total) / float64(n)
	top := n / 100
	if top == 0 {
		top = 1
	}
	hubEdges := 0
	for _, d := range degs[n-top:] {
		hubEdges += d
	}
	if total > 0 {
		st.HubFrac = float64(hubEdges) / float64(total)
	}
	return st
}
