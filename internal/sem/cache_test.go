package sem

import (
	"bytes"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ssd"
)

type sizelessStore struct{}

func (sizelessStore) ReadAt(p []byte, off int64) (int, error) { return len(p), nil }

func seqBacking(n int) *ssd.MemBacking {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i * 31)
	}
	return &ssd.MemBacking{Data: data}
}

func TestCachedStoreValidation(t *testing.T) {
	d := fastDevice(seqBacking(64))
	if _, err := NewCachedStore(d, 0, 1024); err == nil {
		t.Fatal("zero block size accepted")
	}
	if _, err := NewCachedStore(sizelessStore{}, 16, 1024); err == nil {
		t.Fatal("sizeless store accepted")
	}
}

func TestCachedStoreReadsMatchDevice(t *testing.T) {
	back := seqBacking(4096)
	d := fastDevice(back)
	c, err := NewCachedStore(d, 64, 1024)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 500; i++ {
		off := r.Int64N(4000)
		n := 1 + r.IntN(90) // spans up to 2 blocks
		if off+int64(n) > 4096 {
			n = int(4096 - off)
		}
		got := make([]byte, n)
		if _, err := c.ReadAt(got, off); err != nil {
			t.Fatalf("read off=%d n=%d: %v", off, n, err)
		}
		if !bytes.Equal(got, back.Data[off:off+int64(n)]) {
			t.Fatalf("mismatch at off=%d n=%d", off, n)
		}
	}
}

func TestCachedStoreHitsReduceDeviceReads(t *testing.T) {
	back := seqBacking(4096)
	d := fastDevice(back)
	c, err := NewCachedStore(d, 256, 4096) // whole device fits
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	for i := 0; i < 100; i++ {
		if _, err := c.ReadAt(buf, int64(i%4)*256); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := c.Stats()
	if misses != 4 {
		t.Fatalf("misses = %d, want 4 distinct blocks", misses)
	}
	if hits != 96 {
		t.Fatalf("hits = %d, want 96", hits)
	}
	if got := d.Stats().Reads; got != 4 {
		t.Fatalf("device reads = %d, want 4", got)
	}
}

func TestCachedStoreEvicts(t *testing.T) {
	back := seqBacking(1 << 16)
	d := fastDevice(back)
	// Capacity of 16 blocks over 16 shards: 1 block per shard.
	c, err := NewCachedStore(d, 64, 16*64)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	// Touch many distinct blocks; cache must stay bounded and correct.
	for i := 0; i < 512; i++ {
		off := int64(i) * 64
		if _, err := c.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, back.Data[off:off+8]) {
			t.Fatalf("mismatch at block %d", i)
		}
	}
	for s := range c.shards {
		if got := c.shards[s].lru.Len(); got > c.shards[s].capacity {
			t.Fatalf("shard %d holds %d blocks, cap %d", s, got, c.shards[s].capacity)
		}
	}
}

func TestCachedStoreOutOfRange(t *testing.T) {
	c, err := NewCachedStore(fastDevice(seqBacking(100)), 64, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadAt(make([]byte, 8), -1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := c.ReadAt(make([]byte, 8), 98); err == nil {
		t.Fatal("read past end accepted")
	}
	if _, err := c.ReadAt(make([]byte, 8), 500); err == nil {
		t.Fatal("read far past end accepted")
	}
}

func TestCachedStoreConcurrentReaders(t *testing.T) {
	back := seqBacking(1 << 15)
	d := fastDevice(back)
	c, err := NewCachedStore(d, 128, 2048)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rand.New(rand.NewPCG(seed, 0))
			buf := make([]byte, 64)
			for i := 0; i < 300; i++ {
				off := r.Int64N(1<<15 - 64)
				if _, err := c.ReadAt(buf, off); err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if !bytes.Equal(buf, back.Data[off:off+64]) {
					t.Errorf("mismatch at %d", off)
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
}

func TestSEMTraversalThroughCacheMatches(t *testing.T) {
	g := buildGraph(t, 300, 3000, false, 31)
	back := writeToMem(t, g)
	dev := fastDevice(back)
	c, err := NewCachedStore(dev, 4096, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := Open[uint32](c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.BFS[uint32](sg, 0, core.Config{Workers: 8, SemiSort: true})
	if err != nil {
		t.Fatal(err)
	}
	imRes, err := core.BFS[uint32](g, 0, core.Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for v := range res.Level {
		if res.Level[v] != imRes.Level[v] {
			t.Fatalf("level[%d] = %d, want %d", v, res.Level[v], imRes.Level[v])
		}
	}
	if h, m := c.Stats(); h == 0 || m == 0 {
		t.Fatalf("cache stats: hits=%d misses=%d (expected both nonzero)", h, m)
	}
}

func TestSemiSortImprovesCacheHitRate(t *testing.T) {
	// The paper's §IV-C claim: semi-sorting visitor order by vertex id
	// increases access locality on the storage device. Measure device reads
	// with and without the secondary sort key under a small cache.
	g := buildGraph(t, 4096, 32768, false, 33)
	back := writeToMem(t, g)

	deviceReads := func(semiSort bool) uint64 {
		dev := ssd.New(ssd.Profile{Name: "fast", Channels: 8, ReadLatency: time.Nanosecond}, back)
		c, err := NewCachedStore(dev, 4096, 16*4096) // small cache forces locality to matter
		if err != nil {
			t.Fatal(err)
		}
		sg, err := Open[uint32](c)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.BFS[uint32](sg, 0, core.Config{Workers: 1, SemiSort: semiSort}); err != nil {
			t.Fatal(err)
		}
		return dev.Stats().Reads
	}
	sorted := deviceReads(true)
	unsorted := deviceReads(false)
	if sorted > unsorted {
		t.Fatalf("semi-sort increased device reads: %d > %d", sorted, unsorted)
	}
}

func TestCachedStoreSingleflight(t *testing.T) {
	// Many goroutines cold-missing the same block must produce exactly one
	// device read.
	back := seqBacking(8192)
	dev := ssd.New(ssd.Profile{Name: "slow", Channels: 4, ReadLatency: 20 * time.Millisecond}, back)
	c, err := NewCachedStore(dev, 4096, 16*4096)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 16)
			if _, err := c.ReadAt(buf, 100); err != nil {
				t.Errorf("read: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := dev.Stats().Reads; got != 1 {
		t.Fatalf("device reads = %d, want 1 (singleflight)", got)
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != 31 {
		t.Fatalf("hits=%d misses=%d, want 31/1", hits, misses)
	}
}

func TestCachedStoreFailedFetchRetries(t *testing.T) {
	back := seqBacking(8192)
	inner := &erroringStore{inner: fastDevice(back), after: 0}
	// Wrap with a size so NewCachedStore accepts it.
	sized := struct {
		Store
		Sizer
	}{inner, &ssd.MemBacking{Data: back.Data}}
	c, err := NewCachedStore(sized, 4096, 4*4096)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := c.ReadAt(buf, 0); err == nil {
		t.Fatal("first read should fail")
	}
	// Allow reads again: the failed block must not be cached as poisoned.
	inner.after = 1 << 30
	if _, err := c.ReadAt(buf, 0); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
}

func TestConcurrentTraversalsShareCache(t *testing.T) {
	// Two traversals running simultaneously over one CachedStore must both
	// produce correct results (the store is shared, per-traversal state is
	// not).
	g := buildGraph(t, 500, 5000, false, 41)
	back := writeToMem(t, g)
	dev := fastDevice(back)
	c, err := NewCachedStoreRA(dev, 4096, 32*1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := Open[uint32](c)
	if err != nil {
		t.Fatal(err)
	}
	want, err := baseline.SerialBFS[uint32](g, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for run := 0; run < 4; run++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := core.BFS[uint32](sg, 0, core.Config{Workers: 8, SemiSort: true})
			if err != nil {
				t.Errorf("BFS: %v", err)
				return
			}
			for v := range want {
				if res.Level[v] != want[v] {
					t.Errorf("level[%d] = %d, want %d", v, res.Level[v], want[v])
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestCachedStoreTailBlockClamp(t *testing.T) {
	// A 100-byte store under 64-byte blocks: the final block is 36 bytes.
	// Reads inside the clamped tail succeed byte-exact; reads crossing the
	// end fail rather than returning fabricated bytes.
	back := seqBacking(100)
	c, err := NewCachedStore(fastDevice(back), 64, 1024)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 36)
	if _, err := c.ReadAt(got, 64); err != nil {
		t.Fatalf("tail block read: %v", err)
	}
	if !bytes.Equal(got, back.Data[64:100]) {
		t.Fatal("tail block bytes differ from backing")
	}
	if _, err := c.ReadAt(make([]byte, 4), 96); err != nil {
		t.Fatalf("read ending exactly at store end: %v", err)
	}
	if _, err := c.ReadAt(make([]byte, 5), 96); err == nil {
		t.Fatal("read crossing store end accepted")
	}
}

func TestCachedStoreReadaheadPastEnd(t *testing.T) {
	// Readahead spans are clamped to the store: a miss on the final block
	// with an 8-block readahead must fetch only what exists, in one device
	// operation, and later reads of the prefetched blocks must hit.
	back := seqBacking(100)
	d := fastDevice(back)
	c, err := NewCachedStoreRA(d, 64, 1024, 8)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := c.ReadAt(buf, 64); err != nil {
		t.Fatalf("miss on final block: %v", err)
	}
	if got := d.Stats().Reads; got != 1 {
		t.Fatalf("device reads = %d, want 1 clamped span", got)
	}
	// The same miss from block 0 covers both blocks; re-reads are all hits.
	c2, err := NewCachedStoreRA(fastDevice(back), 64, 1024, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.ReadAt(buf, 90); err != nil {
		t.Fatalf("read of readahead-filled tail: %v", err)
	}
	if hits, misses := c2.Stats(); misses != 1 || hits != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1 (tail served by readahead)", hits, misses)
	}
}

func TestCachedStoreConcurrentColdMisses(t *testing.T) {
	// Many goroutines racing over a cold cache with overlapping block sets:
	// singleflight must bound device reads by the number of distinct blocks,
	// and every byte must still be exact (run under -race in CI).
	const blocks = 8
	back := seqBacking(blocks * 64)
	d := fastDevice(back)
	c, err := NewCachedStore(d, 64, blocks*64*16) // ample: no evictions
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			buf := make([]byte, 16)
			for i := 0; i < blocks; i++ {
				off := int64((seed+i)%blocks) * 64
				if _, err := c.ReadAt(buf, off); err != nil {
					t.Errorf("read at %d: %v", off, err)
					return
				}
				if !bytes.Equal(buf, back.Data[off:off+16]) {
					t.Errorf("mismatch at %d", off)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := d.Stats().Reads; got > blocks {
		t.Fatalf("device reads = %d, want <= %d (one per distinct block)", got, blocks)
	}
}

func TestSEM64BitTraversal(t *testing.T) {
	b := graph.NewBuilder[uint64](100, false)
	for i := uint64(0); i < 99; i++ {
		b.AddEdge(i, i+1, 1)
	}
	g, err := b.Build(false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	sg, err := Open[uint64](fastDevice(&ssd.MemBacking{Data: buf.Bytes()}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.BFS[uint64](sg, 0, core.Config{Workers: 4, SemiSort: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Level[99] != 99 {
		t.Fatalf("level[99] = %d", res.Level[99])
	}
}
