package sem

// Tests for the state-aware cache-policy layer: flag parsing, the settle
// counters themselves, their effect on eviction, and — the contract the
// -cachepolicy flag advertises — bit-identical traversal results under either
// policy across kernels, formats, and sharding. The concurrency tests run
// under -race in CI alongside the existing sem concurrency suite.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ssd"
)

func TestParseCachePolicy(t *testing.T) {
	cases := []struct {
		in   string
		kind string
		ok   bool
	}{
		{"", PolicyLRU, true},
		{"lru", PolicyLRU, true},
		{"state", PolicyState, true},
		{"mru", "", false},
		{"State", "", false}, // case-sensitive, like -direction
		{"lru ", "", false},
	}
	for _, c := range cases {
		cfg, err := ParseCachePolicy(c.in)
		if c.ok && (err != nil || cfg.Kind != c.kind) {
			t.Errorf("ParseCachePolicy(%q) = %+v, %v; want kind %q", c.in, cfg, err, c.kind)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseCachePolicy(%q) succeeded, want error", c.in)
		}
	}
	if !(CachePolicyConfig{Kind: PolicyState}).StateAware() {
		t.Error("state config not StateAware")
	}
	if (CachePolicyConfig{}).StateAware() {
		t.Error("empty config (defaults to lru) reports StateAware")
	}
}

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in   string
		want int
		ok   bool
	}{
		{"0", 0, true},
		{"4096", 4096, true},
		{" 8k ", 8 << 10, true},
		{"8K", 8 << 10, true},
		{"32KiB", 32 << 10, true},
		{"32KB", 32 << 10, true},
		{"2m", 2 << 20, true},
		{"1MiB", 1 << 20, true},
		{"", 0, false},
		{"-1", 0, false},
		{"32GiB", 0, false},
		{"lots", 0, false},
		{"k", 0, false},
	}
	for _, c := range cases {
		got, err := ParseByteSize(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseByteSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseByteSize(%q) succeeded, want error", c.in)
		}
	}
}

func TestStatePolicyCounters(t *testing.T) {
	p := NewStatePolicy(4)
	if p.Score(2) != 0 || p.Pinned() != 0 {
		t.Fatal("fresh policy not zeroed")
	}
	p.Queued(2)
	p.Queued(2)
	p.Queued(3)
	if p.Score(2) != 2 || p.Score(3) != 1 {
		t.Fatalf("scores = %d,%d; want 2,1", p.Score(2), p.Score(3))
	}
	if p.Pinned() != 2 || p.PinnedHW() != 2 {
		t.Fatalf("pinned=%d hw=%d; want 2,2", p.Pinned(), p.PinnedHW())
	}
	p.Settled(2)
	p.Settled(2)
	p.Settled(3)
	if p.Score(2) != 0 || p.Score(3) != 0 || p.Pinned() != 0 {
		t.Fatal("settle did not drain counters")
	}
	if p.PinnedHW() != 2 {
		t.Fatalf("high-water lost: %d", p.PinnedHW())
	}
	// Saturating decrement: an aborted traversal can settle more than it
	// queued; the counter must not go negative and poison the next run.
	p.Settled(1)
	p.Settled(1)
	if p.Score(1) != 0 {
		t.Fatalf("over-settle produced score %d", p.Score(1))
	}
	p.Queued(1)
	if p.Score(1) != 1 {
		t.Fatalf("counter poisoned after over-settle: %d", p.Score(1))
	}
	// Out-of-range blocks are ignored, not a panic: shard maps can route a
	// vertex of another shard through a member's settle sink.
	p.Queued(-1)
	p.Queued(99)
	p.Settled(99)
	if p.Score(99) != 0 {
		t.Fatal("out-of-range score")
	}
}

// TestStatePolicyRace hammers one policy from many goroutines mixing queue,
// settle, and score traffic — the exact shape of engine workers feeding settle
// hooks while cache shards read scores during eviction.
func TestStatePolicyRace(t *testing.T) {
	p := NewStatePolicy(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				b := int64((w*31 + i) % 32)
				p.Queued(b)
				p.Score((b + 7) % 32)
				p.Settled(b)
			}
		}(w)
	}
	wg.Wait()
	for b := int64(0); b < 32; b++ {
		if p.Score(b) != 0 {
			t.Fatalf("block %d ended with score %d, want 0", b, p.Score(b))
		}
	}
	if p.Pinned() != 0 {
		t.Fatalf("pinned gauge ended at %d", p.Pinned())
	}
	if hw := p.PinnedHW(); hw < 1 || hw > 32 {
		t.Fatalf("high-water %d out of range", hw)
	}
}

// TestStateEvictionPrefersSettled checks the tentpole's eviction contract
// directly: with the cache over capacity, blocks whose settle counters are
// positive survive while settled blocks at equal recency are evicted.
func TestStateEvictionPrefersSettled(t *testing.T) {
	back := &ssd.MemBacking{Data: make([]byte, 64*512)}
	// One shard, 8-block budget, no readahead: eviction decisions are exact.
	cache, err := NewCachedStore(fastDevice(back), 512, 8*512)
	if err != nil {
		t.Fatal(err)
	}
	sp := cache.EnableStatePolicy()
	buf := make([]byte, 512)
	readBlock := func(id int64) {
		t.Helper()
		if _, err := cache.ReadAt(buf, id*512); err != nil {
			t.Fatal(err)
		}
	}
	// Pin block 0 (oldest), then stream enough blocks through to force
	// evictions. LRU order alone would evict block 0 first.
	sp.Queued(0)
	readBlock(0)
	for id := int64(1); id < 12; id++ {
		readBlock(id)
	}
	if !cache.residentRange(0, 512) {
		t.Fatal("pinned block 0 was evicted")
	}
	if cache.residentRange(1*512, 512) {
		t.Fatal("settled block 1 survived eviction pressure that should have taken it")
	}
	sp.Settled(0)
	for id := int64(12); id < 24; id++ {
		readBlock(id)
	}
	if cache.residentRange(0, 512) {
		t.Fatal("block 0 still resident after settling under continued pressure")
	}
}

func TestCachedStoreTouchAndResidentRange(t *testing.T) {
	back := &ssd.MemBacking{Data: make([]byte, 64*512)}
	cache, err := NewCachedStore(fastDevice(back), 512, 4*512)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	for id := int64(0); id < 4; id++ {
		if _, err := cache.ReadAt(buf, id*512); err != nil {
			t.Fatal(err)
		}
	}
	if !cache.residentRange(0, 4*512) {
		t.Fatal("freshly read range not resident")
	}
	if cache.residentRange(0, 5*512) {
		t.Fatal("range including an unread block reported resident")
	}
	// touch must refresh recency: re-touching block 0 right before an
	// eviction-forcing read should sacrifice block 1 instead.
	cache.touch(0)
	if _, err := cache.ReadAt(buf, 4*512); err != nil {
		t.Fatal(err)
	}
	if !cache.residentRange(0, 512) {
		t.Fatal("touched block evicted")
	}
	if cache.residentRange(1*512, 512) {
		t.Fatal("untouched LRU block survived")
	}
	cache.touch(999999) // out of range: must be a no-op, not a panic
}

// statePair mounts g twice on fast devices — once per policy — with prefetch
// enabled, returning the two adjacency views.
func statePair(t testing.TB, g *graph.CSR[uint32], compressed bool) (lru, state *Graph[uint32]) {
	t.Helper()
	mount := func(stateAware bool) *Graph[uint32] {
		var buf bytes.Buffer
		var err error
		if compressed {
			err = WriteCSRCompressed(&buf, g)
		} else {
			err = WriteCSR(&buf, g)
		}
		if err != nil {
			t.Fatal(err)
		}
		dev := fastDevice(&ssd.MemBacking{Data: buf.Bytes()})
		cache, err := NewCachedStoreRA(dev, 512, int64(buf.Len())/4, 4)
		if err != nil {
			t.Fatal(err)
		}
		sg, err := Open[uint32](cache)
		if err != nil {
			t.Fatal(err)
		}
		if stateAware {
			if !sg.EnableStateCache() {
				t.Fatal("EnableStateCache refused a cached mount")
			}
		}
		sg.EnablePrefetch(PrefetchConfig{MaxGap: 1024})
		return sg
	}
	return mount(false), mount(true)
}

// TestPolicyEquivalence is the -cachepolicy contract: the state-aware policy
// changes device traffic, never results. BFS, SSSP, and CC results under the
// state policy must equal the LRU mount's and the in-memory baseline's,
// raw and compressed.
func TestPolicyEquivalence(t *testing.T) {
	base, err := gen.RMATUndirected[uint32](9, 8, gen.RMATB, 17)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := gen.UniformWeights(base, 29)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Workers: 8, Prefetch: 16, SemiSort: true}
	src := uint32(1)
	for _, compressed := range []bool{false, true} {
		lru, state := statePair(t, weighted, compressed)
		name := map[bool]string{false: "raw", true: "compressed"}[compressed]

		imBFS, err := core.BFS[uint32](weighted, src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		lruBFS, err := core.BFS[uint32](lru, src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		stBFS, err := core.BFS[uint32](state, src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for v := range imBFS.Level {
			if lruBFS.Level[v] != imBFS.Level[v] || stBFS.Level[v] != imBFS.Level[v] {
				t.Fatalf("%s BFS level[%d]: im=%d lru=%d state=%d",
					name, v, imBFS.Level[v], lruBFS.Level[v], stBFS.Level[v])
			}
		}

		imSSSP, err := core.SSSP[uint32](weighted, src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		stSSSP, err := core.SSSP[uint32](state, src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for v := range imSSSP.Dist {
			if stSSSP.Dist[v] != imSSSP.Dist[v] {
				t.Fatalf("%s SSSP dist[%d]: im=%d state=%d", name, v, imSSSP.Dist[v], stSSSP.Dist[v])
			}
		}

		imCC, err := core.CC[uint32](weighted, cfg)
		if err != nil {
			t.Fatal(err)
		}
		stCC, err := core.CC[uint32](state, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for v := range imCC.ID {
			if stCC.ID[v] != imCC.ID[v] {
				t.Fatalf("%s CC id[%d]: im=%d state=%d", name, v, imCC.ID[v], stCC.ID[v])
			}
		}
	}
}

// TestPolicyEquivalenceSharded runs BFS over a sharded mount with the state
// policy active on every member cache and checks distances against the
// in-memory run.
func TestPolicyEquivalenceSharded(t *testing.T) {
	g, err := gen.RMAT[uint32](9, 8, gen.RMATA, 23)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 2
	members := make([]graph.Adjacency[uint32], shards)
	for k := 0; k < shards; k++ {
		data := writeShardBytes(t, g, k, shards, false)
		cache, err := NewCachedStoreRA(fastDevice(&ssd.MemBacking{Data: data}), 512, int64(len(data))/4, 4)
		if err != nil {
			t.Fatal(err)
		}
		sg, err := Open[uint32](cache)
		if err != nil {
			t.Fatal(err)
		}
		if !sg.EnableStateCache() {
			t.Fatal("EnableStateCache refused a cached shard mount")
		}
		sg.EnablePrefetch(PrefetchConfig{MaxGap: 1024})
		members[k] = sg
	}
	sh, err := graph.NewSharded[uint32](members)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Workers: 8, Prefetch: 16, SemiSort: true}
	src := uint32(1)
	want, err := core.BFS[uint32](g, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.BFS[uint32](sh, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Level {
		if got.Level[v] != want.Level[v] {
			t.Fatalf("sharded state BFS level[%d] = %d, want %d", v, got.Level[v], want.Level[v])
		}
	}
}

// TestConcurrentStateTraversals exercises the whole state-aware path — settle
// hooks, span dedup table, residency bitset, score-driven eviction — from
// many concurrent traversals over one shared mount. Run under -race in CI.
func TestConcurrentStateTraversals(t *testing.T) {
	g, err := gen.RMAT[uint32](9, 8, gen.RMATA, 31)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	cache, err := NewCachedStoreRA(fastDevice(&ssd.MemBacking{Data: buf.Bytes()}), 512, int64(buf.Len())/4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := Open[uint32](cache)
	if err != nil {
		t.Fatal(err)
	}
	sg.EnableStateCache()
	sg.EnablePrefetch(PrefetchConfig{MaxGap: 1024})
	cfg := core.Config{Workers: 8, Prefetch: 16, SemiSort: true}

	const traversals = 6
	want := make([]*core.BFSResult[uint32], traversals)
	for i := range want {
		var err error
		if want[i], err = core.BFS[uint32](g, uint32(i*5), cfg); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, traversals)
	for i := 0; i < traversals; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := core.BFS[uint32](sg, uint32(i*5), cfg)
			if err != nil {
				errs <- err
				return
			}
			for v := range want[i].Level {
				if res.Level[v] != want[i].Level[v] {
					errs <- fmt.Errorf("traversal %d: level[%d] = %d, want %d",
						i, v, res.Level[v], want[i].Level[v])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if sk := sg.PrefetchStats(); sk.Spans == 0 {
		t.Error("prefetcher issued no spans; test exercised nothing")
	}
}

// BenchmarkCacheEvict measures the batched eviction pass: Resize shrinks the
// cache by many entries in one lock acquisition per shard instead of a
// lock-and-walk per entry (the satellite fix this PR guards).
func BenchmarkCacheEvict(b *testing.B) {
	g := buildGraph(b, 1<<12, 1<<15, false, 5)
	back := writeToMem(b, g)
	blocks := int64(len(back.Data)) / 512 // full blocks only; the tail fragment would read past EOF
	buf := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cache, err := NewCachedStore(fastDevice(back), 512, blocks*512)
		if err != nil {
			b.Fatal(err)
		}
		for id := int64(0); id < blocks; id++ {
			if _, err := cache.ReadAt(buf, id*512); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		cache.Resize(blocks * 512 / 8) // evict 7/8 of the cache in one pass
	}
}
