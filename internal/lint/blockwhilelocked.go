package lint

import "strings"

// BlockWhileLocked flags potentially-blocking operations executed while a
// sync.Mutex or sync.RWMutex is (lexically) held: channel sends and
// receives, select statements without a default clause, sync.WaitGroup.Wait,
// sync.Cond.Wait on a foreign condvar, and calls — direct, external, or
// interface-dispatched ReadAt/WriteAt/Wait/Sleep — that may block. A
// goroutine that parks inside a critical section stalls every contender of
// that lock; the historical Engine.Wait-vs-context-watcher race was exactly
// this shape.
//
// Two exemptions keep the idiomatic patterns quiet:
//
//   - sync.Cond.Wait while holding only that condvar's own struct's locks is
//     the canonical condvar loop (Wait releases the mutex while parked);
//   - calls into functions the analysis can see are checked against their
//     computed may-block summary rather than their name, and the summary is
//     propagated through static calls only — CHA-widened dynamic targets
//     would drown the report in plausible-but-impossible paths.
//
// A deliberate blocking section (a bounded handoff protected by other means)
// is documented with `//lint:blockwhilelocked <why>` at the operation.
const blockWhileLockedName = "blockwhilelocked"

var BlockWhileLocked = &Analyzer{
	Name:       blockWhileLockedName,
	Doc:        "no blocking operation (send/recv/select/Wait/ReadAt) while a sync.Mutex/RWMutex is held",
	RunProgram: runBlockWhileLocked,
}

func heldLabel(held []string) string {
	short := make([]string, len(held))
	for i, h := range held {
		short[i] = shortName(h)
	}
	return strings.Join(short, ", ")
}

func runBlockWhileLocked(prog *program) []Diagnostic {
	var diags []Diagnostic
	for _, n := range prog.order {
		for _, b := range n.blocks {
			if len(b.held) == 0 || prog.suppressed(blockWhileLockedName, b.pos) {
				continue
			}
			if b.condOwner != "" && heldOnlyBy(b.held, b.condOwner) {
				continue // the canonical condvar loop: Wait releases the owner's mutex
			}
			diags = append(diags, Diagnostic{
				Pos:      prog.fset.Position(b.pos),
				Analyzer: blockWhileLockedName,
				Message: b.what + " while holding " + heldLabel(b.held) +
					"; a parked owner stalls every contender — release the lock first, or annotate //lint:blockwhilelocked",
			})
		}
		for _, c := range n.calls {
			if len(c.held) == 0 || prog.suppressed(blockWhileLockedName, c.pos) {
				continue
			}
			callee := prog.nodes[c.callee]
			if callee == nil || callee.mayBlock == nil {
				continue
			}
			r := callee.mayBlock
			why := r.what + " at " + prog.posLabel(r.pos)
			if r.via != "" {
				why += " via " + r.via
			}
			diags = append(diags, Diagnostic{
				Pos:      prog.fset.Position(c.pos),
				Analyzer: blockWhileLockedName,
				Message: "call to " + callee.display + " may block (" + why + ") while holding " + heldLabel(c.held) +
					" — release the lock first, or annotate //lint:blockwhilelocked",
			})
		}
	}
	return diags
}

// heldOnlyBy reports whether every held lock class belongs to the given
// owner prefix (the condvar's own struct).
func heldOnlyBy(held []string, owner string) bool {
	for _, h := range held {
		if ownerPrefix(h) != owner {
			return false
		}
	}
	return true
}
