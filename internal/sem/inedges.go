package sem

// This file is the semi-external reverse-adjacency read path: serving
// in-edges from the on-flash in-edge section (flagInEdges) or, for symmetric
// graphs (flagSymmetric), from the edge region itself. Its centerpiece is
// ScanInEdges, the storage side of the bottom-up traversal phase — instead of
// the pop-window's per-vertex random reads it walks a contiguous vertex-id
// range in storage order and coalesces the needed extents into large
// sequential spans, which is precisely the access pattern the paper's
// semi-external model rewards: the RAM-resident in-edge index decides what to
// read, and the device sees a handful of megabyte-scale streams instead of a
// frontier's worth of scattered records.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/graph"
)

// scanSpanBytes caps one bottom-up scan read. A span this size amortizes the
// device latency term thousands of times over while keeping the double
// buffer's memory footprint bounded (two spans per scanning worker).
const scanSpanBytes = 1 << 20

// errNoInSection reports a reverse-adjacency call on a store without the
// capability. Callers should gate on HasInEdges (via graph.InEdges) instead
// of relying on this error.
var errNoInSection = fmt.Errorf("sem: store carries no in-edge section (write with -symmetric or an in-edge section to enable bottom-up traversal)")

// HasInEdges reports whether the store can serve reverse adjacency — the
// dynamic side of the graph.InAdjacency capability: a symmetric file serves
// in-edges from its edge region, otherwise a dedicated in-edge section must
// be present.
func (g *Graph[V]) HasInEdges() bool { return g.symmetric || g.inOffsets != nil }

// Symmetric reports whether the file was written with the symmetric flag
// (out-adjacency is its own transpose).
func (g *Graph[V]) Symmetric() bool { return g.symmetric }

// InDegree implements graph.InAdjacency from the RAM-resident in-edge index
// (or the forward index for symmetric files). Zero for stores without
// reverse capability.
//
//lint:hotpath
func (g *Graph[V]) InDegree(v V) int {
	if g.symmetric {
		return g.Degree(v)
	}
	if g.inOffsets == nil {
		return 0
	}
	if g.compressed {
		return int(g.inDegrees[v])
	}
	return int(g.inOffsets[v+1] - g.inOffsets[v])
}

// inExtentOf reports the byte range of v's in-adjacency within the in-edge
// section: bare id records in v1, a compressed block in v2.
//
//lint:hotpath
func (g *Graph[V]) inExtentOf(v V) (off int64, n int) {
	lo, hi := g.inOffsets[v], g.inOffsets[v+1]
	if g.compressed {
		return g.inEdgeBase + int64(lo), int(hi - lo)
	}
	return g.inEdgeBase + int64(lo)*int64(g.vSize), int(hi-lo) * g.vSize
}

// decodeInBlock decodes v's in-adjacency block (deg sources, bare vertex-id
// records or a v2 compressed block — in-edge sections never carry weights)
// through the scratch target buffer, returning a slice valid until the next
// call with the same scratch.
//
//lint:hotpath
func (g *Graph[V]) decodeInBlock(block []byte, v V, deg int, scratch *graph.Scratch[V]) ([]V, error) {
	if cap(scratch.Targets) < deg {
		scratch.Targets = make([]V, deg)
	}
	targets := scratch.Targets[:deg]
	if g.compressed {
		if _, err := graph.DecodeAdjBlock(block, v, targets, nil); err != nil {
			return nil, err
		}
		return targets, nil
	}
	for i := range targets {
		rec := block[i*g.vSize:]
		if g.vSize == 4 {
			targets[i] = V(binary.LittleEndian.Uint32(rec))
		} else {
			targets[i] = V(binary.LittleEndian.Uint64(rec))
		}
	}
	return targets, nil
}

// InNeighbors implements graph.InAdjacency with one positional read per call,
// mirroring Neighbors. Symmetric files answer from the edge region (and may
// therefore consume a prefetched pop-window span); in-edge sections read
// synchronously — bottom-up phases should use ScanInEdges, whose sequential
// spans are the whole point.
func (g *Graph[V]) InNeighbors(v V, scratch *graph.Scratch[V]) ([]V, error) {
	if scratch == nil {
		scratch = &graph.Scratch[V]{}
	}
	if g.symmetric {
		targets, _, err := g.Neighbors(v, scratch)
		return targets, err
	}
	if g.inOffsets == nil {
		return nil, errNoInSection
	}
	deg := g.InDegree(v)
	if deg == 0 {
		return nil, nil
	}
	off, need := g.inExtentOf(v)
	if cap(scratch.Block) < need {
		scratch.Block = make([]byte, need)
	}
	block := scratch.Block[:need]
	if _, err := g.store.ReadAt(block, off); err != nil {
		return nil, fmt.Errorf("sem: read in-adjacency of %d: %w", v, err)
	}
	return g.decodeInBlock(block, v, deg, scratch)
}

// scanSpan is one sequential bottom-up read: the extents of exts[i:j] merged
// into a single device request. ready is non-nil when the read was issued
// asynchronously on the prefetcher's I/O pool.
type scanSpan struct {
	sp   span
	i, j int
}

// ScanInEdges implements graph.InScanner: walk [lo, hi) in storage order,
// coalesce the in-edge extents of needed vertices into sequential spans
// (bridging gaps up to the prefetcher's MaxGap, or DefaultPrefetchGap when
// prefetch is disabled, capped at scanSpanBytes per read), and visit each
// vertex from the span buffers. With a prefetcher attached the spans are
// double-buffered: span k+1 reads on the bounded I/O pool while span k
// decodes, so the device and the CPU overlap exactly as in the pop-window
// path — but with megabyte streams instead of per-vertex records. Scan reads
// are tallied in PrefetchStats.ScanSpans/ScanBytes.
func (g *Graph[V]) ScanInEdges(lo, hi V, need func(V) bool, visit func(v V, in []V) error, scratch *graph.Scratch[V]) error {
	if !g.HasInEdges() {
		return errNoInSection
	}
	if scratch == nil {
		scratch = &graph.Scratch[V]{}
	}
	if uint64(hi) > g.n {
		hi = V(g.n)
	}
	if lo >= hi {
		return nil
	}

	// Gather the needed extents in storage order. need is consulted here,
	// before any device I/O, per the InScanner contract; vertex ids ascend and
	// both index layouts are monotone, so the extents arrive pre-sorted.
	exts := make([]extent, 0, 256)
	for v := lo; v < hi; v++ {
		if !need(v) {
			continue
		}
		var off int64
		var nb int
		if g.symmetric {
			off, nb = g.extentOf(v)
		} else {
			off, nb = g.inExtentOf(v)
		}
		if nb == 0 {
			continue
		}
		exts = append(exts, extent{v: uint64(v), off: off, n: nb})
	}
	if len(exts) == 0 {
		return nil
	}

	maxGap := int64(DefaultPrefetchGap)
	if g.prefetch != nil {
		maxGap = int64(g.prefetch.cfg.MaxGap)
	}

	// Merge into sequential spans: a following extent joins while it starts
	// within maxGap of the span's end and the span stays under scanSpanBytes.
	spans := make([]scanSpan, 0, 16)
	for i := 0; i < len(exts); {
		start := exts[i].off
		end := start + int64(exts[i].n)
		j := i + 1
		for j < len(exts) {
			e := exts[j].off + int64(exts[j].n)
			if exts[j].off > end+maxGap || e-start > scanSpanBytes {
				break
			}
			if e > end {
				end = e
			}
			j++
		}
		spans = append(spans, scanSpan{sp: span{off: start, buf: make([]byte, end-start)}, i: i, j: j})
		i = j
	}

	// Double-buffered execution: keep the next span's read in flight on the
	// prefetcher's I/O pool while the current one decodes. Without a
	// prefetcher each span reads synchronously — still sequential, still
	// coalesced, just not overlapped.
	p := g.prefetch
	issue := func(s *scanSpan) {
		if p != nil {
			p.scanSpans.Add(1)
			p.scanBytes.Add(uint64(len(s.sp.buf)))
			s.sp.ready = make(chan struct{})
			go p.read(g.store, &s.sp)
		}
	}
	issue(&spans[0])
	for k := range spans {
		s := &spans[k]
		if k+1 < len(spans) {
			issue(&spans[k+1])
		}
		if s.sp.ready != nil {
			<-s.sp.ready
			if s.sp.err != nil {
				return fmt.Errorf("sem: scan in-edges at %d: %w", s.sp.off, s.sp.err)
			}
		} else if _, err := g.store.ReadAt(s.sp.buf, s.sp.off); err != nil {
			return fmt.Errorf("sem: scan in-edges at %d: %w", s.sp.off, err)
		}
		if err := g.visitScanSpan(s, exts, visit, scratch); err != nil {
			return err
		}
	}
	return nil
}

// visitScanSpan decodes and visits every vertex of one completed scan span.
// This is the bottom-up inner loop: no per-edge allocation — the decode
// target buffer is cap-guarded in scratch and the block slices alias the span
// buffer.
//
//lint:hotpath
func (g *Graph[V]) visitScanSpan(s *scanSpan, exts []extent, visit func(v V, in []V) error, scratch *graph.Scratch[V]) error {
	for k := s.i; k < s.j; k++ {
		e := &exts[k]
		v := V(e.v)
		deg := g.InDegree(v)
		block := s.sp.buf[e.off-s.sp.off : e.off-s.sp.off+int64(e.n)]
		var in []V
		var err error
		if g.symmetric {
			// Symmetric scans read the edge region, whose records may carry
			// weights; decode through the forward path and drop them.
			in, _, err = g.decodeInto(block, v, deg, scratch)
		} else {
			in, err = g.decodeInBlock(block, v, deg, scratch)
		}
		if err != nil {
			return err
		}
		if err := visit(v, in); err != nil {
			return err
		}
	}
	return nil
}

// The semi-external store is direction-capable when its file carries the
// symmetric flag or an in-edge section; HasInEdges gates the static
// interface below at runtime (see graph.InEdges).
var _ graph.InScanner[uint32] = (*Graph[uint32])(nil)
