package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestValidate(t *testing.T) {
	g := filepath.Join(t.TempDir(), "g.asg")
	if err := os.WriteFile(g, []byte("stub"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		path    string
		algo    string
		engine  string
		workers int
		ranks   int
		sem     bool
		profile string
		ok      bool
	}{
		{"valid async bfs", g, "bfs", "async", 512, 16, false, "", true},
		{"valid bsp cc", g, "cc", "bsp", 8, 4, false, "", true},
		{"valid sem profile", g, "sssp", "async", 8, 16, true, "Intel", true},
		{"missing path", "", "bfs", "async", 8, 16, false, "", false},
		{"nonexistent file", g + ".nope", "bfs", "async", 8, 16, false, "", false},
		{"unknown algo", g, "pagerank", "async", 8, 16, false, "", false},
		{"unknown engine", g, "bfs", "quantum", 8, 16, false, "", false},
		{"sssp has no bsp engine", g, "sssp", "bsp", 8, 16, false, "", false},
		{"negative workers", g, "bfs", "async", -1, 16, false, "", false},
		{"zero workers", g, "bfs", "async", 0, 16, false, "", false},
		{"bsp needs ranks", g, "bfs", "bsp", 8, 0, false, "", false},
		{"unknown sem profile", g, "bfs", "async", 8, 16, true, "FloppyDisk", false},
	}
	for _, tc := range cases {
		err := validate(tc.path, tc.algo, tc.engine, tc.workers, tc.ranks, tc.sem, tc.profile)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}
