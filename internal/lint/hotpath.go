package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Hotpath enforces allocation discipline in functions annotated with a
// `//lint:hotpath` doc-comment line: the engine's per-visit code (worker pop
// loops, the relaxation kernel, mailbox delivery, queue operations, SEM
// decode and prefetch consumption) runs millions of times per traversal, and
// a single fmt call, time.Now, map allocation, or closure sneaking in
// regresses every benchmark at once. Inside an annotated function the
// analyzer flags:
//
//   - any call into the fmt package (formatting allocates);
//   - time.Now (a vDSO call per visit is still a call per visit);
//   - map allocation: make(map...) or a map composite literal;
//   - function literals: a closure capturing variables escapes them to the
//     heap (including the append-into-captured-slice pattern); hoist it to a
//     named method as Engine.retire and kernelState.visit are;
//   - append growth inside a loop when the function never hints the slice's
//     capacity: each time append outgrows the backing array it reallocates
//     and copies, so a decode or batch loop pays O(n log n) copying and
//     allocator traffic that a single sized make (or a cap() pre-grow check,
//     as Heap.PopBatch does) would eliminate. A slice is considered hinted
//     when the function assigns it a make with an explicit capacity or
//     consults cap() on it;
//   - slice allocation (make) inside a loop: a scan or probe loop that makes
//     a fresh slice per iteration pays the allocator once per vertex — the
//     bottom-up in-edge scan visits every unvisited vertex per phase, so this
//     is a per-phase O(n) allocation storm. Hoist the make above the loop or
//     reuse per-worker scratch. A make under an if whose condition consults
//     cap() is the grow-on-overflow idiom (dirWorker.grow's call site) and
//     stays quiet: it runs O(log n) times, not O(n).
const hotpathName = "hotpath"

var Hotpath = &Analyzer{
	Name: hotpathName,
	Doc:  "no fmt, time.Now, map allocation, closures, uncapped append growth, or per-iteration slice makes in //lint:hotpath functions",
	Run:  runHotpath,
}

// HotpathDirective is the doc-comment line that opts a function into the
// hotpath discipline.
const HotpathDirective = "//lint:hotpath"

func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == HotpathDirective {
			return true
		}
	}
	return false
}

func runHotpath(p *Package) []Diagnostic {
	var diags []Diagnostic
	flag := func(n ast.Node, fnName, msg string) {
		diags = append(diags, Diagnostic{
			Pos:      p.Fset.Position(n.Pos()),
			Analyzer: hotpathName,
			Message:  msg + " in hotpath function " + fnName,
		})
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !isHotpath(fn) || fn.Body == nil {
				continue
			}
			name := fn.Name.Name
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.CallExpr:
					if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
						if id, ok := sel.X.(*ast.Ident); ok {
							if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
								switch pn.Imported().Path() {
								case "fmt":
									flag(node, name, "call to fmt."+sel.Sel.Name+" (formats and allocates)")
								case "time":
									if sel.Sel.Name == "Now" {
										flag(node, name, "call to time.Now")
									}
								}
							}
						}
					}
					if id, ok := node.Fun.(*ast.Ident); ok && id.Name == "make" && len(node.Args) > 0 {
						if t := p.Info.TypeOf(node.Args[0]); t != nil {
							if _, isMap := t.Underlying().(*types.Map); isMap {
								flag(node, name, "map allocation (make)")
							}
						}
					}
				case *ast.CompositeLit:
					if t := p.Info.TypeOf(node); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							flag(node, name, "map allocation (composite literal)")
						}
					}
				case *ast.FuncLit:
					flag(node, name, "closure allocation (captured variables escape); hoist to a named method")
					return false // the closure's body is not this function's hot path
				}
				return true
			})
			for _, d := range appendGrowth(p, fn) {
				flag(d, name, "append growth in a loop without a capacity hint (sized make or cap() pre-grow)")
			}
			for _, d := range sliceMakeInLoop(p, fn) {
				flag(d, name, "slice allocation (make) inside a loop without a cap() growth guard; hoist it or reuse scratch")
			}
		}
	}
	return diags
}

// sliceObj resolves the slice variable an append or cap expression refers to:
// the object of a plain identifier, of a selector's field, or of either under
// a reslicing (append(buf[:0], ...) reuses buf's backing array, so buf's
// capacity hint carries over). Nil for anything more elaborate (index
// expressions etc.), which the growth rule then skips.
func sliceObj(p *Package, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		if o := p.Info.Uses[x]; o != nil {
			return o
		}
		return p.Info.Defs[x]
	case *ast.SelectorExpr:
		return p.Info.Uses[x.Sel]
	case *ast.SliceExpr:
		return sliceObj(p, x.X)
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin (shadowed
// identifiers resolve to a non-Builtin object and are excluded).
func isBuiltin(p *Package, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.Info.Uses[id].(*types.Builtin)
	return ok
}

// sliceMakeInLoop returns the slice make calls lexically inside fn's loops
// that are not under a cap() growth guard: an enclosing if whose condition
// consults cap() marks the grow-on-overflow idiom, which allocates O(log n)
// times rather than once per iteration.
func sliceMakeInLoop(p *Package, fn *ast.FuncDecl) []ast.Node {
	hasCap := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isBuiltin(p, call, "cap") {
				found = true
			}
			return !found
		})
		return found
	}
	var bad []ast.Node
	flagged := make(map[ast.Node]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		case *ast.FuncLit:
			return false // closures are flagged (and skipped) wholesale above
		default:
			return true
		}
		ast.Inspect(body, func(m ast.Node) bool {
			switch node := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.IfStmt:
				if hasCap(node.Cond) {
					return false // grow-on-overflow: the make runs only when full
				}
			case *ast.CallExpr:
				if !isBuiltin(p, node, "make") || len(node.Args) == 0 || flagged[node] {
					return true
				}
				if t := p.Info.TypeOf(node.Args[0]); t != nil {
					if _, isSlice := t.Underlying().(*types.Slice); isSlice {
						flagged[node] = true
						bad = append(bad, node)
					}
				}
			}
			return true
		})
		return true
	})
	return bad
}

// appendGrowth returns the append calls inside fn's loops whose destination
// slice the function never capacity-hints.
func appendGrowth(p *Package, fn *ast.FuncDecl) []ast.Node {
	// Pass 1: collect hinted slices — assigned from a make with an explicit
	// capacity argument, or measured with cap() anywhere in the function (the
	// pre-grow idiom checks cap before the loop).
	hinted := make(map[types.Object]bool)
	hint := func(e ast.Expr) {
		if o := sliceObj(p, e); o != nil {
			hinted[o] = true
		}
	}
	sizedMake := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		return ok && isBuiltin(p, call, "make") && len(call.Args) >= 3
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(p, node, "cap") && len(node.Args) == 1 {
				hint(node.Args[0])
			}
		case *ast.AssignStmt:
			for i, rhs := range node.Rhs {
				if i < len(node.Lhs) && sizedMake(rhs) {
					hint(node.Lhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range node.Values {
				if i < len(node.Names) && sizedMake(rhs) {
					hint(node.Names[i])
				}
			}
		}
		return true
	})
	// Pass 2: flag unhinted appends lexically inside a loop. flagged dedupes
	// the appends nested loops would otherwise report once per level.
	var bad []ast.Node
	flagged := make(map[ast.Node]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		case *ast.FuncLit:
			return false // closures are flagged (and skipped) wholesale above
		default:
			return true
		}
		ast.Inspect(body, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok || !isBuiltin(p, call, "append") || len(call.Args) == 0 || flagged[call] {
				return true
			}
			if o := sliceObj(p, call.Args[0]); o != nil && hinted[o] {
				return true
			}
			flagged[call] = true
			bad = append(bad, call)
			return true
		})
		return true
	})
	return bad
}
