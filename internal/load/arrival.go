package load

import (
	"math"
	"math/rand/v2"
	"time"
)

// Arrival processes: open-loop inter-arrival gap generators. Both are
// parameterized to a mean gap of 1/rate so swapping the process changes
// burstiness, never offered load.
//
// Poisson arrivals (exponential gaps) are the memoryless baseline every
// queueing result assumes. Gamma(k) gaps generalize it: the squared
// coefficient of variation is 1/k, so k<1 is burstier than Poisson (flash
// crowds), k>1 smoother (paced clients) — the two regimes that make
// admission policy differences visible.

// arrivalProcess yields successive inter-arrival gaps.
type arrivalProcess interface {
	next() time.Duration
}

type poissonArrivals struct {
	rng  *rand.Rand
	mean float64 // seconds
}

func (p *poissonArrivals) next() time.Duration {
	return time.Duration(p.rng.ExpFloat64() * p.mean * float64(time.Second))
}

type gammaArrivals struct {
	rng   *rand.Rand
	shape float64
	scale float64 // seconds; mean gap = shape*scale
}

func (g *gammaArrivals) next() time.Duration {
	return time.Duration(gammaSample(g.rng, g.shape) * g.scale * float64(time.Second))
}

// newArrivals builds the configured process with mean gap 1/rate.
func newArrivals(cfg *Config, rng *rand.Rand) arrivalProcess {
	mean := 1 / cfg.Rate
	if cfg.Arrival == "gamma" {
		return &gammaArrivals{rng: rng, shape: cfg.GammaShape, scale: mean / cfg.GammaShape}
	}
	return &poissonArrivals{rng: rng, mean: mean}
}

// gammaSample draws Gamma(shape, 1) by Marsaglia–Tsang squeeze-rejection
// for shape >= 1, boosted by U^(1/shape) for shape < 1.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v
		}
	}
}
