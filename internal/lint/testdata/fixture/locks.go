package fixture

import "sync"

type registry struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	set map[string]int
}

// leakyLock takes the lock and never releases it: violation (no matching
// unlock in block, no defer).
func (r *registry) leakyLock() {
	r.mu.Lock()
	r.set["x"] = 1
}

// earlyReturn releases on the fall-through path but leaks the lock on the
// early return: violation (return inside critical section).
func (r *registry) earlyReturn(k string) int {
	r.mu.Lock()
	if v, ok := r.set[k]; ok {
		return v
	}
	r.mu.Unlock()
	return 0
}

// deferred is the canonical safe shape: no diagnostic.
func (r *registry) deferred(k string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.set[k]
}

// manualPaired unlocks on every path, including before the early return: no
// diagnostic.
func (r *registry) manualPaired(k string) int {
	r.mu.Lock()
	if v, ok := r.set[k]; ok {
		r.mu.Unlock()
		return v
	}
	r.mu.Unlock()
	return 0
}

// readLeak leaks a read lock: violation (RLock without RUnlock).
func (r *registry) readLeak(k string) int {
	r.rw.RLock()
	return r.set[k]
}
