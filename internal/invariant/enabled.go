//go:build invariants

package invariant

// Enabled reports whether runtime invariant checking is compiled in. This
// file is selected by `-tags invariants`.
const Enabled = true
