package harness

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lockfree"
	"repro/internal/sem"
	"repro/internal/ssd"
)

// AblationOversubscription sweeps the worker count far past the physical
// core count, the paper's §IV-A observation that "using as many as 512
// threads on 16 cores offers substantial benefit" because each worker owns a
// queue and more queues mean less lock contention.
func AblationOversubscription(o Options) (*Table, error) {
	t := &Table{
		Title: "Ablation: thread oversubscription (async BFS, RMAT-A)",
		Note:  "per-thread queues: more workers = less queue contention (paper §IV-A)",
		Cols:  []string{"workers", "time(s)", "visits", "pushes", "maxQueue"},
	}
	scale := o.Scales[len(o.Scales)-1]
	g, err := gen.RMAT[uint32](scale, o.Degree, gen.RMATA, o.Seed)
	if err != nil {
		return nil, err
	}
	src := pickSource(g)
	adj := o.wrap(g)
	for _, w := range []int{1, 4, 16, 64, 256, 512, 1024} {
		var res *core.BFSResult[uint32]
		dur, err := timeIt(func() error {
			var err error
			res, err = core.BFS[uint32](adj, src, core.Config{Workers: w})
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%d", w), Seconds(dur),
			fmt.Sprintf("%d", res.Stats.Visits), fmt.Sprintf("%d", res.Stats.Pushes),
			fmt.Sprintf("%d", res.Stats.MaxQueue))
		o.logf("ablation-oversub: workers=%d done\n", w)
	}
	return t, nil
}

// AblationHash compares the default near-uniform Fibonacci queue-selection
// hash against an identity hash (paper §III-A: "a near-uniform hash function
// may improve load balance amongst the visitor queues as high-cost vertices
// will be uniformly distributed").
func AblationHash(o Options) (*Table, error) {
	t := &Table{
		Title: "Ablation: queue-selection hash (async CC, RMAT-B)",
		Cols:  []string{"hash", "workers", "time(s)", "visits"},
	}
	scale := o.Scales[len(o.Scales)-1]
	g, err := gen.RMATUndirected[uint32](scale, o.Degree, gen.RMATB, o.Seed)
	if err != nil {
		return nil, err
	}
	adj := o.wrap(g)
	hashes := []struct {
		Name string
		Fn   func(uint64) uint64
	}{
		{"fibonacci", core.FibHash},
		{"identity", core.IdentityHash},
	}
	for _, h := range hashes {
		for _, w := range []int{16, 512} {
			var res *core.CCResult[uint32]
			dur, err := timeIt(func() error {
				var err error
				res, err = core.CC[uint32](adj, core.Config{Workers: w, Hash: h.Fn})
				return err
			})
			if err != nil {
				return nil, err
			}
			t.Add(h.Name, fmt.Sprintf("%d", w), Seconds(dur), fmt.Sprintf("%d", res.Stats.Visits))
			o.logf("ablation-hash: %s workers=%d done\n", h.Name, w)
		}
	}
	return t, nil
}

// AblationSemiSort measures the device-read savings of the secondary
// vertex-id sort key on semi-external traversal (paper §IV-C: semi-sorting
// "increases access locality to the storage devices").
func AblationSemiSort(o Options) (*Table, error) {
	t := &Table{
		Title: "Ablation: SEM semi-sort locality (async BFS, RMAT-A, FusionIO)",
		Cols:  []string{"semiSort", "time(s)", "devReads", "cacheHit%"},
	}
	scale := o.SEMScales[len(o.SEMScales)-1]
	g, err := gen.RMAT[uint32](scale, o.Degree, gen.RMATA, o.Seed)
	if err != nil {
		return nil, err
	}
	src := pickSource(g)
	for _, sorted := range []bool{true, false} {
		sg, dev, cache, err := semGraph(o, g, ssd.FusionIO)
		if err != nil {
			return nil, err
		}
		dur, err := timeIt(func() error {
			_, err := core.BFS[uint32](sg, src, core.Config{Workers: o.SEMThreads, SemiSort: sorted})
			return err
		})
		if err != nil {
			return nil, err
		}
		hits, misses := cache.Stats()
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = 100 * float64(hits) / float64(hits+misses)
		}
		t.Add(fmt.Sprintf("%v", sorted), Seconds(dur),
			fmt.Sprintf("%d", dev.Stats().Reads), fmt.Sprintf("%.1f", hitRate))
		o.logf("ablation-semisort: sorted=%v done\n", sorted)
	}
	return t, nil
}

// AblationCache sweeps the semi-external block-cache budget, exposing how
// the paper's implicit OS-page-cache capacity governs SEM performance.
func AblationCache(o Options) (*Table, error) {
	t := &Table{
		Title: "Ablation: SEM cache budget (async BFS, RMAT-A, Intel)",
		Cols:  []string{"cacheFrac", "time(s)", "devReads", "cacheHit%"},
	}
	scale := o.SEMScales[len(o.SEMScales)-1]
	g, err := gen.RMAT[uint32](scale, o.Degree, gen.RMATA, o.Seed)
	if err != nil {
		return nil, err
	}
	src := pickSource(g)
	for _, frac := range []int64{2, 4, 8, 16, 64} {
		opts := o
		opts.CacheFrac = frac
		sg, dev, cache, err := semGraph(opts, g, ssd.Intel)
		if err != nil {
			return nil, err
		}
		dur, err := timeIt(func() error {
			_, err := core.BFS[uint32](sg, src, core.Config{Workers: o.SEMThreads, SemiSort: true})
			return err
		})
		if err != nil {
			return nil, err
		}
		hits, misses := cache.Stats()
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = 100 * float64(hits) / float64(hits+misses)
		}
		t.Add(fmt.Sprintf("1/%d", frac), Seconds(dur),
			fmt.Sprintf("%d", dev.Stats().Reads), fmt.Sprintf("%.1f", hitRate))
		o.logf("ablation-cache: frac=1/%d done\n", frac)
	}
	return t, nil
}

// AblationCoarsen sweeps Δ-style priority coarsening on weighted SSSP: wider
// buckets cheapen heap ordering and lengthen semi-sorted runs at the cost of
// extra label corrections.
func AblationCoarsen(o Options) (*Table, error) {
	t := &Table{
		Title: "Ablation: Δ-style priority coarsening (async SSSP, RMAT-A, UW)",
		Cols:  []string{"shiftBits", "time(s)", "visits", "pushes"},
	}
	scale := o.Scales[len(o.Scales)-1]
	g, err := gen.RMAT[uint32](scale, o.Degree, gen.RMATA, o.Seed)
	if err != nil {
		return nil, err
	}
	g, err = gen.UniformWeights(g, o.Seed)
	if err != nil {
		return nil, err
	}
	src := pickSource(g)
	adj := o.wrap(g)
	for _, shift := range []uint8{0, 4, 8, 12, 16} {
		var res *core.SSSPResult[uint32]
		dur, err := timeIt(func() error {
			var err error
			res, err = core.SSSP[uint32](adj, src, core.Config{
				Workers: 64, SemiSort: true, CoarseShift: shift,
			})
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%d", shift), Seconds(dur),
			fmt.Sprintf("%d", res.Stats.Visits), fmt.Sprintf("%d", res.Stats.Pushes))
		o.logf("ablation-coarsen: shift=%d done\n", shift)
	}
	return t, nil
}

// AblationEngine compares the paper's ownership-hashed engine against the
// lock-free alternative (atomic CAS relaxation + work stealing) and the
// bucket-queue variant, quantifying the design choices of §III-A.
func AblationEngine(o Options) (*Table, error) {
	t := &Table{
		Title: "Ablation: engine design (BFS, RMAT-A)",
		Note:  "ownership = hash-routed queues, plain writes; lockfree = CAS labels + stealing; bucket = FIFO buckets per level",
		Cols:  []string{"engine", "workers", "time(s)", "visits", "extra"},
	}
	scale := o.Scales[len(o.Scales)-1]
	g, err := gen.RMAT[uint32](scale, o.Degree, gen.RMATA, o.Seed)
	if err != nil {
		return nil, err
	}
	src := pickSource(g)
	adj := o.wrap(g)
	for _, w := range []int{16, 512} {
		var res *core.BFSResult[uint32]
		dur, err := timeIt(func() error {
			var err error
			res, err = core.BFS[uint32](adj, src, core.Config{Workers: w})
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Add("ownership-heap", fmt.Sprintf("%d", w), Seconds(dur),
			fmt.Sprintf("%d", res.Stats.Visits), "")

		dur, err = timeIt(func() error {
			var err error
			res, err = core.BFS[uint32](adj, src, core.Config{Workers: w, Queue: core.QueueBucket})
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Add("ownership-bucket", fmt.Sprintf("%d", w), Seconds(dur),
			fmt.Sprintf("%d", res.Stats.Visits), "")

		var lf *lockfree.Result
		dur, err = timeIt(func() error {
			var err error
			lf, err = lockfree.BFS(adj, src, lockfree.Config{Workers: w})
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Add("lockfree-steal", fmt.Sprintf("%d", w), Seconds(dur),
			fmt.Sprintf("%d", lf.Stats.Visits),
			fmt.Sprintf("steals=%d casFail=%d", lf.Stats.Steals, lf.Stats.CASFail))
		o.logf("ablation-engine: workers=%d done\n", w)
	}
	return t, nil
}

// AblationMailbox compares batched mailbox delivery against lock-per-push on
// the asynchronous BFS: each producer buffers visitors per destination owner
// and delivers a full bucket under one lock acquisition and one condvar
// signal, amortizing the destination queue's synchronization over Batch items.
func AblationMailbox(o Options) (*Table, error) {
	t := &Table{
		Title: "Ablation: mailbox batching (async BFS, RMAT-A)",
		Note:  "batch=1 locks the destination queue per push; batch>1 delivers per-owner buffers in one acquisition",
		Cols:  []string{"batch", "workers", "time(s)", "visits", "peakOutstanding"},
	}
	scale := o.Scales[len(o.Scales)-1]
	g, err := gen.RMAT[uint32](scale, o.Degree, gen.RMATA, o.Seed)
	if err != nil {
		return nil, err
	}
	src := pickSource(g)
	adj := o.wrap(g)
	for _, batch := range []int{1, 16, core.DefaultBatch, 256} {
		for _, w := range []int{16, 512} {
			var res *core.BFSResult[uint32]
			dur, err := timeIt(func() error {
				var err error
				res, err = core.BFS[uint32](adj, src, core.Config{Workers: w, Batch: batch})
				return err
			})
			if err != nil {
				return nil, err
			}
			t.Add(fmt.Sprintf("%d", batch), fmt.Sprintf("%d", w), Seconds(dur),
				fmt.Sprintf("%d", res.Stats.Visits), fmt.Sprintf("%d", res.Stats.PeakOutstanding))
			o.logf("ablation-mailbox: batch=%d workers=%d done\n", batch, w)
		}
	}
	return t, nil
}

// AblationPrefetch sweeps the semi-external asynchronous I/O pipeline: the
// pop-window size (core.Config.Prefetch) against the span-coalescing gap
// (sem.PrefetchConfig.MaxGap), per device profile. The graph is mounted on
// the raw device with no block cache, so the devReads column is exactly the
// number of ReadAt operations the traversal issued and the coalescing effect
// is undiluted: window 0 pays one latency term per visited vertex, a window
// with a generous gap pays one per span. The v/span column is the coalescing
// rate (window vertices covered by one device read); gapB is the bytes read
// only to bridge near-contiguous extents.
func AblationPrefetch(o Options) (*Table, error) {
	t := &Table{
		Title: "Ablation: SEM prefetch pipeline (async BFS, RMAT-A, raw device)",
		Note: fmt.Sprintf("no block cache; %d workers; window = pop-window size, gap = coalescing slack (bytes)",
			o.SEMThreads),
		Cols: []string{"profile", "window", "gap", "time(s)", "devReads", "avgRead(B)", "v/span", "consumed%", "gapMB"},
	}
	scale := o.SEMScales[len(o.SEMScales)-1]
	g, err := gen.RMAT[uint32](scale, o.Degree, gen.RMATA, o.Seed)
	if err != nil {
		return nil, err
	}
	src := pickSource(g)
	var buf bytes.Buffer
	if err := sem.WriteCSR(&buf, g); err != nil {
		return nil, err
	}
	type setting struct{ window, gap int }
	settings := []setting{
		{0, 0},
		{16, 0},
		{16, 4096},
		{16, sem.DefaultPrefetchGap},
		{64, sem.DefaultPrefetchGap},
	}
	for _, p := range ssd.Profiles {
		for _, s := range settings {
			dev := ssd.New(p, &ssd.MemBacking{Data: buf.Bytes()})
			sg, err := sem.Open[uint32](dev)
			if err != nil {
				return nil, err
			}
			if s.window > 1 {
				sg.EnablePrefetch(sem.PrefetchConfig{MaxGap: s.gap})
			}
			dur, err := timeIt(func() error {
				_, err := core.BFS[uint32](sg, src, core.Config{
					Workers: o.SEMThreads, SemiSort: true, Prefetch: s.window,
				})
				return err
			})
			if err != nil {
				return nil, err
			}
			st := dev.Stats()
			vps, consumed, gapMB := "-", "-", "-"
			if ps := sg.PrefetchStats(); s.window > 1 {
				vps = fmt.Sprintf("%.1f", ps.VertsPerSpan())
				consumed = fmt.Sprintf("%.0f%%", 100*ps.ConsumedFrac())
				gapMB = fmt.Sprintf("%.1f", float64(ps.GapBytes)/(1<<20))
			}
			t.Add(p.Name, fmt.Sprintf("%d", s.window), fmt.Sprintf("%d", s.gap),
				Seconds(dur), fmt.Sprintf("%d", st.Reads),
				fmt.Sprintf("%.0f", st.AvgReadBytes()), vps, consumed, gapMB)
			o.logf("ablation-prefetch: %s window=%d gap=%d done\n", p.Name, s.window, s.gap)
		}
	}
	return t, nil
}

// AblationStripe sweeps RAID-0 stripe width at fixed aggregate parallelism:
// the paper's configurations are all 4-member software RAID 0 arrays, and
// striping is what lets commodity SATA SSDs reach array-level IOPS.
func AblationStripe(o Options) (*Table, error) {
	t := &Table{
		Title: "Ablation: RAID-0 stripe width (SEM BFS, RMAT-A, FusionIO-class array)",
		Note:  "per-card channels = aggregate/cards; 64 KiB chunks (paper: 4-card software RAID 0)",
		Cols:  []string{"cards", "time(s)", "devReads"},
	}
	scale := o.SEMScales[len(o.SEMScales)-1]
	g, err := gen.RMAT[uint32](scale, o.Degree, gen.RMATA, o.Seed)
	if err != nil {
		return nil, err
	}
	src := pickSource(g)
	var buf bytes.Buffer
	if err := sem.WriteCSR(&buf, g); err != nil {
		return nil, err
	}
	for _, cards := range []int{1, 2, 4} {
		// Fixed per-card hardware: stripe width multiplies available
		// parallelism, as adding cards to the array did for the authors.
		card := ssd.CardProfile(ssd.FusionIO, 4)
		arr, err := ssd.NewRAID0Array(card, cards, 64*1024, &ssd.MemBacking{Data: buf.Bytes()})
		if err != nil {
			return nil, err
		}
		cache, err := sem.NewCachedStoreRA(arr, 4096, int64(buf.Len())/o.CacheFrac, o.Readahead)
		if err != nil {
			return nil, err
		}
		sg, err := sem.Open[uint32](cache)
		if err != nil {
			return nil, err
		}
		dur, err := timeIt(func() error {
			_, err := core.BFS[uint32](sg, src, core.Config{Workers: o.SEMThreads, SemiSort: true})
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%d", cards), Seconds(dur), fmt.Sprintf("%d", arr.Stats().Reads))
		o.logf("ablation-stripe: cards=%d done\n", cards)
	}
	return t, nil
}

// AblationSSSP compares the three parallel shortest-path disciplines:
// serial Dijkstra (total order), Δ-stepping (bucketed order with barriers),
// and the paper's fully asynchronous label-correcting traversal.
func AblationSSSP(o Options) (*Table, error) {
	t := &Table{
		Title: "Ablation: SSSP discipline (RMAT-A, UW weights)",
		Note:  "Dijkstra = total order; Δ-stepping = bucket barriers; async = no ordering, label correction",
		Cols:  []string{"algorithm", "time(s)"},
	}
	scale := o.Scales[len(o.Scales)-1]
	g, err := gen.RMAT[uint32](scale, o.Degree, gen.RMATA, o.Seed)
	if err != nil {
		return nil, err
	}
	g, err = gen.UniformWeights(g, o.Seed)
	if err != nil {
		return nil, err
	}
	src := pickSource(g)
	adj := o.wrap(g)

	dur, err := timeIt(func() error {
		_, _, err := baseline.SerialDijkstra[uint32](adj, src)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.Add("dijkstra", Seconds(dur))
	for _, delta := range []uint64{1 << 8, 1 << 12, 1 << 16} {
		dur, err := timeIt(func() error {
			_, err := baseline.DeltaStepping[uint32](adj, src, delta, o.SyncWorkers)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("delta-stepping Δ=2^%d", log2(delta)), Seconds(dur))
		o.logf("ablation-sssp: delta=%d done\n", delta)
	}
	for _, w := range []int{16, 512} {
		dur, err := timeIt(func() error {
			_, err := core.SSSP[uint32](adj, src, core.Config{Workers: w})
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("async %d workers", w), Seconds(dur))
	}
	return t, nil
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// AblationWriteAsymmetry measures the paper's §II-D flash property that
// "writes are more costly than reads": serializing a graph onto each device
// (the build path) versus reading it back (the traversal path).
func AblationWriteAsymmetry(o Options) (*Table, error) {
	t := &Table{
		Title: "Ablation: flash write/read asymmetry (graph build vs load, RMAT-A)",
		Note:  "writes charge WriteLatency (2.5-3x ReadLatency per §II-D); 64 KiB transfers",
		Cols:  []string{"device", "write(s)", "read(s)", "write/read"},
	}
	scale := o.SEMScales[0]
	g, err := gen.RMAT[uint32](scale, o.Degree, gen.RMATA, o.Seed)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := sem.WriteCSR(&buf, g); err != nil {
		return nil, err
	}
	data := buf.Bytes()
	for _, p := range ssd.Profiles {
		dev := ssd.New(p, &ssd.MemBacking{})
		const chunk = 64 * 1024
		writeTime, err := timeIt(func() error {
			for off := 0; off < len(data); off += chunk {
				end := off + chunk
				if end > len(data) {
					end = len(data)
				}
				if _, err := dev.WriteAt(data[off:end], int64(off)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		readTime, err := timeIt(func() error {
			buf := make([]byte, chunk)
			for off := 0; off < len(data); off += chunk {
				end := off + chunk
				if end > len(data) {
					end = len(data)
				}
				if _, err := dev.ReadAt(buf[:end-off], int64(off)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.Add(p.Name, Seconds(writeTime), Seconds(readTime), Ratio(writeTime, readTime))
		o.logf("ablation-write: %s done\n", p.Name)
	}
	return t, nil
}

// AblationDirection compares forced top-down, forced bottom-up, and the
// frontier-adaptive hybrid controller on semi-external BFS (Table IV's
// FusionIO profile). Scale-free RMAT frontiers go dense within a few phases,
// so bottom-up in-edge scans settle most vertices from a handful of
// sequential device spans; high-diameter chain/grid frontiers never cross the
// α threshold and must stay top-down (the hybrid guard rows). Forced
// bottom-up is omitted on the high-diameter rows — scanning every unvisited
// vertex per phase is quadratic there, which is exactly why the controller
// exists. Non-top-down mounts carry the on-flash in-edge section; top-down
// rows mount the historical layout.
func AblationDirection(o Options) (*Table, error) {
	t := &Table{
		Title: "Ablation: traversal direction (SEM BFS, FusionIO)",
		Note:  "α/β derived per graph from degree stats; td/bu = phase counts, scanSpans = coalesced bottom-up degree-array reads",
		Cols:  []string{"graph", "direction", "time(s)", "devReads", "readMB", "td", "bu", "switch", "scanSpans"},
	}
	scale := o.SEMScales[len(o.SEMScales)-1]
	all := []core.Direction{core.DirectionTopDown, core.DirectionBottomUp, core.DirectionHybrid}
	guard := []core.Direction{core.DirectionTopDown, core.DirectionHybrid}
	type input struct {
		name string
		g    *graph.CSR[uint32]
		src  uint32
		dirs []core.Direction
	}
	var inputs []input
	for _, variant := range rmatVariants {
		g, err := gen.RMAT[uint32](scale, o.Degree, variant.Params, o.Seed)
		if err != nil {
			return nil, err
		}
		inputs = append(inputs, input{fmt.Sprintf("%s 2^%d", variant.Name, scale), g, pickSource(g), all})
	}
	chain, err := gen.Chain[uint32](1 << scale)
	if err != nil {
		return nil, err
	}
	inputs = append(inputs, input{fmt.Sprintf("chain 2^%d", scale), chain, 0, guard})
	side := uint64(1) << (scale / 2)
	grid, err := gen.Grid[uint32](side, side)
	if err != nil {
		return nil, err
	}
	inputs = append(inputs, input{fmt.Sprintf("grid %dx%d", side, side), grid, 0, guard})

	// The scan-phase double buffering (and its ScanSpans/ScanBytes counters)
	// lives in the prefetcher, so the ablation always mounts with the pipeline
	// on — the direction comparison should not also toggle I/O overlap.
	if o.Prefetch <= 1 {
		o.Prefetch, o.PrefetchGap = 64, sem.DefaultPrefetchGap
	}
	for _, in := range inputs {
		for _, dir := range in.dirs {
			opts := o
			opts.Direction = dir
			cfg := opts.semBFSConfig(in.g)
			var stats core.Stats
			dur, io, err := timeSEM(opts, in.g, ssd.FusionIO, func(adj graph.Adjacency[uint32]) error {
				res, err := core.BFS[uint32](adj, in.src, cfg)
				if err == nil {
					stats = res.Stats
				}
				return err
			})
			if err != nil {
				return nil, err
			}
			t.Add(in.name, dir.String(), Seconds(dur),
				fmt.Sprintf("%d", io.Device.Reads),
				fmt.Sprintf("%.1f", float64(io.Device.BytesRead)/(1<<20)),
				fmt.Sprintf("%d", stats.TopDownPhases),
				fmt.Sprintf("%d", stats.BottomUpPhases),
				fmt.Sprintf("%d", stats.DirectionSwitches),
				fmt.Sprintf("%d", io.Prefetch.ScanSpans))
			o.logf("ablation-direction: %s %s done\n", in.name, dir)
		}
	}
	return t, nil
}

// AblationCachePolicy compares the legacy recency-only block-cache eviction
// (lru) against the state-aware policy (state: settle counters pin blocks with
// queued visitors, pop-windows prefer cache-resident vertices, workers share
// in-flight spans) at equal cache size. The interesting regime is eviction
// pressure: at the harness default half-graph budget both policies mostly hit,
// so the comparison mounts with a tighter budget, identical for both. RMAT
// rows run all three flash profiles and carry the reads/edge claim; chain and
// grid rows are the guard — their narrow frontiers give the state policy
// nothing to pin, and its row must not regress wall clock. Each claim: /
// guard: line in the rendered note is machine-greppable; CI's cache-policy
// smoke step asserts them.
func AblationCachePolicy(o Options) (*Table, error) {
	t := &Table{
		Title: "Ablation: SEM block-cache policy (async BFS, equal cache size)",
		Cols:  []string{"graph", "profile", "policy", "time(s)", "devReads", "rd/edge", "cacheHit%", "pinnedHW", "dedupSp"},
	}
	// The cell is pinned, not inherited from the sweep options: the policies
	// only separate under sustained eviction pressure with a victim set big
	// enough for replacement order to matter. A quarter-graph budget at
	// scale 13 puts the cache at 64 blocks against a 256-block edge file —
	// large enough that announce-time residency survives to visit time (so
	// keeping the right blocks pays), small enough that both policies evict
	// constantly. At half-graph budgets both policies mostly hit; at an
	// eighth of the graph the churn is so fast no replacement order matters.
	scale := 13
	o.SEMThreads = 32
	o.CacheFrac = 4
	if o.Prefetch <= 1 {
		o.Prefetch = 64
	}
	// DefaultPrefetchGap (32 KiB) is sized for paper-scale edge files; at
	// ablation scales it bridges most of the edge region, every pop-window
	// degenerates into a near-sequential sweep, and no eviction policy can
	// matter. A one-block gap keeps spans honest about locality, so the
	// policies differ by what the cache keeps, not by what the prefetcher
	// accidentally streams.
	o.PrefetchGap = 4096
	t.Note = fmt.Sprintf("cache=edges/%d (equal for both policies), %d workers, window=%d; state = settle-counter pinning + cache-affine pop-windows + span dedup",
		o.CacheFrac, o.SEMThreads, o.Prefetch)
	type input struct {
		name     string
		g        *graph.CSR[uint32]
		src      uint32
		profiles []ssd.Profile
		claim    bool // RMAT rows claim reads/edge wins; others guard wall clock
	}
	var inputs []input
	for _, variant := range rmatVariants {
		g, err := gen.RMAT[uint32](scale, o.Degree, variant.Params, o.Seed)
		if err != nil {
			return nil, err
		}
		inputs = append(inputs, input{fmt.Sprintf("%s 2^%d", variant.Name, scale), g, pickSource(g), ssd.Profiles, true})
	}
	chain, err := gen.Chain[uint32](1 << scale)
	if err != nil {
		return nil, err
	}
	inputs = append(inputs, input{fmt.Sprintf("chain 2^%d", scale), chain, 0, []ssd.Profile{ssd.FusionIO}, false})
	side := uint64(1) << (scale / 2)
	grid, err := gen.Grid[uint32](side, side)
	if err != nil {
		return nil, err
	}
	inputs = append(inputs, input{fmt.Sprintf("grid %dx%d", side, side), grid, 0, []ssd.Profile{ssd.FusionIO}, false})

	policies := []string{sem.PolicyLRU, sem.PolicyState}
	var claims []string
	for _, in := range inputs {
		wins, runs := 0, 0
		for _, p := range in.profiles {
			var rpe [2]float64
			var dur [2]time.Duration
			for pi, pol := range policies {
				opts := o
				opts.CachePolicy = sem.CachePolicyConfig{Kind: pol}
				cfg := opts.semBFSConfig(in.g)
				// Async BFS is nondeterministic: per-run device reads vary by
				// several percent as label corrections race. One draw per cell
				// would compare noise, not policies, so the claim metric is
				// the per-rep MEAN of device reads over fresh mounts (wall
				// clock stays best-of, matching the other SEM tables). The
				// mean's standard error shrinks with the rep count, which is
				// why claim cells run more reps than guard cells.
				reps := opts.SEMReps
				if in.claim && reps < 6 {
					reps = 6
				} else if reps < 3 {
					reps = 3
				}
				opts.SEMReps = 1
				var d time.Duration
				var io SEMIO
				var sumReads uint64
				for r := 0; r < reps; r++ {
					rd, rio, err := timeSEM(opts, in.g, p, func(adj graph.Adjacency[uint32]) error {
						_, err := core.BFS[uint32](adj, in.src, cfg)
						return err
					})
					if err != nil {
						return nil, err
					}
					sumReads += rio.Device.Reads
					if r == 0 || rd < d {
						d = rd
					}
					if r == 0 || rio.Device.Reads < io.Device.Reads {
						io = rio
					}
				}
				io.Device.Reads = sumReads / uint64(reps)
				rpe[pi], dur[pi] = io.ReadsPerEdge(), d
				t.Add(in.name, p.Name, pol, Seconds(d),
					fmt.Sprintf("%d", io.Device.Reads),
					fmt.Sprintf("%.4f", io.ReadsPerEdge()),
					fmt.Sprintf("%.1f", 100*io.CacheHitRate()),
					fmt.Sprintf("%d", io.PinnedHW),
					fmt.Sprintf("%d", io.DedupSpans))
				o.logf("ablation-cachepolicy: %s %s %s done\n", in.name, p.Name, pol)
			}
			if in.claim {
				runs++
				if rpe[1] < rpe[0] {
					wins++
				}
			} else {
				claims = append(claims, fmt.Sprintf("guard: %s %s state/lru time ratio=%.2f",
					in.name, p.Name, dur[1].Seconds()/dur[0].Seconds()))
			}
		}
		if in.claim {
			claims = append(claims, fmt.Sprintf("claim: %s state reads/edge beats lru on %d/%d profiles", in.name, wins, runs))
		}
	}
	t.Note += "\n" + strings.Join(claims, "\n")
	return t, nil
}

// Ablations runs every ablation study.
func Ablations(o Options) ([]*Table, error) {
	var tables []*Table
	for _, fn := range []func(Options) (*Table, error){
		AblationOversubscription, AblationHash, AblationSemiSort, AblationCache,
		AblationCoarsen, AblationEngine, AblationMailbox, AblationPrefetch,
		AblationStripe, AblationSSSP, AblationWriteAsymmetry, AblationDirection,
		AblationCachePolicy,
	} {
		tbl, err := fn(o)
		if err != nil {
			return nil, err
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}

// Figure2 demonstrates the worst-case serialized traversal of Figure 2: on a
// chain graph the asynchronous traversal cannot exploit parallelism, so added
// workers do not help — the paper's §III-B1 bound discussion.
func Figure2(o Options) (*Table, error) {
	t := &Table{
		Title: "Figure 2: worst-case chain graph (no path parallelism)",
		Note:  "async BFS on a directed chain: worker count cannot help (§III-B1)",
		Cols:  []string{"workers", "time(s)", "visits"},
	}
	n := uint64(1) << o.Scales[0]
	g, err := gen.Chain[uint32](n)
	if err != nil {
		return nil, err
	}
	adj := o.wrap(g)
	for _, w := range []int{1, 16, 512} {
		var res *core.BFSResult[uint32]
		dur, err := timeIt(func() error {
			var err error
			res, err = core.BFS[uint32](adj, 0, core.Config{Workers: w})
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%d", w), Seconds(dur), fmt.Sprintf("%d", res.Stats.Visits))
	}
	return t, nil
}

// All runs every experiment in paper order and returns the tables.
func All(o Options) ([]*Table, error) {
	type exp struct {
		name string
		fn   func(Options) (*Table, error)
	}
	var tables []*Table
	for _, e := range []exp{
		{"fig1", Figure1}, {"fig2", Figure2},
		{"table1", Table1}, {"table2", Table2}, {"table3", Table3},
		{"table4", Table4}, {"table5", Table5},
	} {
		start := time.Now()
		tbl, err := e.fn(o)
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %w", e.name, err)
		}
		o.logf("%s finished in %s\n", e.name, time.Since(start).Round(time.Millisecond))
		tables = append(tables, tbl)
	}
	abl, err := Ablations(o)
	if err != nil {
		return nil, err
	}
	return append(tables, abl...), nil
}
