package server

import (
	"sync"
	"sync/atomic"
	"time"
)

// Per-tenant rate limiting: admission bounds how much work runs at once, but
// nothing stops one tenant from filling the whole queue and shedding
// everyone else's traffic before priority ordering can help. A token bucket
// per tenant caps each tenant's sustained request rate ahead of admission,
// so the queue only ever sees traffic each tenant is entitled to send.
//
// The bucket is the GCRA (virtual-scheduling) form: a single atomic int64
// holds the theoretical arrival time (TAT) of the next conforming request,
// in nanoseconds since the limiter started. A request at time t conforms
// when max(TAT, t) - t <= (burst-1)*interval; conforming requests advance
// TAT by one emission interval with a CAS. One atomic word, no locks, no
// token counters to refill — the vsa atomic-limiter idiom.

// TenantLimit overrides the default per-tenant rate for one named tenant.
// Rate <= 0 exempts the tenant from limiting entirely.
type TenantLimit struct {
	// Rate is the sustained request rate in requests/second.
	Rate float64
	// Burst is the instantaneous burst allowance in requests; values below 1
	// are raised to 1.
	Burst float64
}

// RateLimitConfig configures per-tenant token buckets. The zero value
// disables limiting.
type RateLimitConfig struct {
	// Rate is the default sustained per-tenant request rate in
	// requests/second; 0 disables limiting for tenants without an override.
	Rate float64
	// Burst is the default instantaneous burst allowance in requests;
	// values below 1 are raised to 1 when Rate is set.
	Burst float64
	// Tenants overrides Rate/Burst for named tenants.
	Tenants map[string]TenantLimit
}

func (c *RateLimitConfig) normalize() {
	if c.Rate < 0 {
		c.Rate = 0
	}
	if c.Rate > 0 && c.Burst < 1 {
		c.Burst = 1
	}
	for name, t := range c.Tenants {
		if t.Rate > 0 && t.Burst < 1 {
			t.Burst = 1
			c.Tenants[name] = t
		}
	}
}

// enabled reports whether any tenant can ever be limited.
func (c *RateLimitConfig) enabled() bool {
	if c.Rate > 0 {
		return true
	}
	for _, t := range c.Tenants {
		if t.Rate > 0 {
			return true
		}
	}
	return false
}

// tokenBucket is one tenant's GCRA state.
type tokenBucket struct {
	intervalNs int64 // ns between conforming requests at the sustained rate
	tauNs      int64 // burst tolerance: (burst-1) * interval
	tat        atomic.Int64
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	interval := int64(float64(time.Second) / rate)
	if interval < 1 {
		interval = 1
	}
	return &tokenBucket{
		intervalNs: interval,
		tauNs:      int64((burst - 1) * float64(interval)),
	}
}

// allow reports whether a request arriving nowNs conforms, advancing the
// bucket state when it does.
func (b *tokenBucket) allow(nowNs int64) bool {
	for {
		tat := b.tat.Load()
		t := tat
		if nowNs > t {
			t = nowNs
		}
		if t-nowNs > b.tauNs {
			return false
		}
		if b.tat.CompareAndSwap(tat, t+b.intervalNs) {
			return true
		}
	}
}

// limiter holds one scope's per-tenant buckets (the server-wide scope, or a
// per-graph override). Buckets materialize on a tenant's first request.
type limiter struct {
	cfg     RateLimitConfig
	start   time.Time
	buckets sync.Map // tenant name -> *tokenBucket (nil entry = exempt)

	allowed  atomic.Uint64
	rejected atomic.Uint64
}

func newLimiter(cfg RateLimitConfig) *limiter {
	cfg.normalize()
	if !cfg.enabled() {
		return nil
	}
	return &limiter{cfg: cfg, start: time.Now()}
}

// allow reports whether tenant's request conforms to its bucket. A nil
// limiter (limiting disabled) allows everything.
func (l *limiter) allow(tenant string) bool {
	if l == nil {
		return true
	}
	v, ok := l.buckets.Load(tenant)
	if !ok {
		rate, burst := l.cfg.Rate, l.cfg.Burst
		if t, ok := l.cfg.Tenants[tenant]; ok {
			rate, burst = t.Rate, t.Burst
		}
		var b *tokenBucket
		if rate > 0 {
			b = newTokenBucket(rate, burst)
		}
		v, _ = l.buckets.LoadOrStore(tenant, b)
	}
	b, _ := v.(*tokenBucket)
	if b == nil {
		l.allowed.Add(1)
		return true
	}
	if b.allow(int64(time.Since(l.start))) {
		l.allowed.Add(1)
		return true
	}
	l.rejected.Add(1)
	return false
}

// Counters snapshots allowed/rejected totals for /metrics.
func (l *limiter) Counters() (allowed, rejected uint64) {
	if l == nil {
		return 0, 0
	}
	return l.allowed.Load(), l.rejected.Load()
}
