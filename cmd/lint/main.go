// Command lint runs the project's static analyzers (internal/lint) over the
// given package patterns and prints diagnostics as
//
//	file:line: analyzer: message
//
// or, with -json, as a JSON array of {file, line, analyzer, message}
// objects. With -baseline FILE, findings already present in FILE (matched by
// file, analyzer, and message — line numbers are ignored, so unrelated edits
// do not resurrect suppressed findings) are filtered out, letting CI gate on
// new findings only; regenerate the baseline by redirecting the default
// text output to the file.
//
// Exit status: 0 when clean, 1 when any (new) diagnostic fired, 2 on load
// errors (parse or type-check failure). CI runs `go run ./cmd/lint ./...`
// and treats any non-zero status as a gate failure.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

// baselineKey identifies a finding across line-number drift: unrelated edits
// above a finding move it without changing what it says.
func baselineKey(file, analyzer, message string) string {
	return file + "\x00" + analyzer + "\x00" + message
}

// loadBaseline parses a baseline file of `file:line: analyzer: message`
// lines (the tool's own text output format; blank lines and # comments are
// skipped).
func loadBaseline(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	known := make(map[string]bool)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// file:line: analyzer: message
		parts := strings.SplitN(line, ": ", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("baseline line %q is not file:line: analyzer: message", line)
		}
		file := parts[0]
		if i := strings.LastIndex(file, ":"); i >= 0 {
			file = file[:i] // strip the line number
		}
		known[baselineKey(file, parts[1], parts[2])] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return known, nil
}

type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array instead of text lines")
	baselinePath := flag.String("baseline", "", "suppress findings present in this baseline file; exit 1 only on new ones")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
	var known map[string]bool
	if *baselinePath != "" {
		known, err = loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lint: baseline:", err)
			os.Exit(2)
		}
	}
	cwd, err := os.Getwd()
	if err != nil {
		cwd = ""
	}
	emitted := 0
	var out []jsonDiag
	for _, d := range lint.RunAll(pkgs, lint.Analyzers()) {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
		}
		if known[baselineKey(d.Pos.Filename, d.Analyzer, d.Message)] {
			continue
		}
		emitted++
		if *jsonOut {
			out = append(out, jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
			continue
		}
		fmt.Println(d.String())
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if out == nil {
			out = []jsonDiag{} // an empty run is [], not null
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "lint: encode:", err)
			os.Exit(2)
		}
	}
	if emitted > 0 {
		os.Exit(1)
	}
}
