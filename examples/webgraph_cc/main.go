// webgraph_cc analyzes the component structure of a web-like graph — the
// paper's motivating WWW scenario (§I-A): vertices are pages, edges are
// hyperlinks, and connected components reveal the crawl's reachable mass.
// The example generates a preferential-attachment web graph, runs the
// asynchronous CC, and prints a component-size histogram, comparing against
// the synchronous label-propagation baseline for both agreement and visit
// counts.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	const n = 1 << 16
	fmt.Printf("generating web-like graph with %d pages...\n", n)
	g, err := gen.WebGraph[uint32](n, 3, 2, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d directed edges (symmetrized)\n\n", g.NumVertices(), g.NumEdges())

	start := time.Now()
	res, err := core.CC[uint32](g, core.Config{Workers: 64})
	if err != nil {
		log.Fatal(err)
	}
	asyncTime := time.Since(start)

	sizes := res.Sizes()
	type comp struct {
		label uint32
		size  uint64
	}
	var comps []comp
	for label, size := range sizes {
		comps = append(comps, comp{label, size})
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].size > comps[j].size })

	fmt.Printf("asynchronous CC: %d components in %v (%s)\n", res.NumComponents(), asyncTime.Round(time.Microsecond), res.Stats)
	fmt.Println("largest components:")
	for i, c := range comps {
		if i == 5 {
			break
		}
		fmt.Printf("  #%d: label=%d size=%d (%.1f%% of graph)\n",
			i+1, c.label, c.size, 100*float64(c.size)/float64(n))
	}

	// Compare against the synchronous label-propagation baseline (the
	// MTGL-class algorithm of the paper's Table III).
	start = time.Now()
	lp, err := baseline.LabelPropCC[uint32](g, 16)
	if err != nil {
		log.Fatal(err)
	}
	lpTime := time.Since(start)
	for v := range lp {
		if lp[v] != res.ID[v] {
			log.Fatalf("disagreement at vertex %d: async=%d labelprop=%d", v, res.ID[v], lp[v])
		}
	}
	fmt.Printf("\nsynchronous label propagation agrees on every label (%v vs async %v;\n",
		lpTime.Round(time.Microsecond), asyncTime.Round(time.Microsecond))
	fmt.Println("relative speed depends on core count and memory latency — see the Table III harness)")
	fmt.Println("\nthe giant component dominating the graph is the paper's expected web structure:")
	fmt.Printf("  giant covers %.1f%% of pages; %d small components remain\n",
		100*float64(comps[0].size)/float64(n), len(comps)-1)
}
