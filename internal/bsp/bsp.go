// Package bsp simulates the distributed-memory comparator of the paper's
// evaluation (the Parallel Boost Graph Library). The graph is partitioned
// over P ranks by vertex ownership; ranks run as goroutines and communicate
// only by exchanging message buffers at superstep barriers, the
// bulk-synchronous model PBGL's distributed BFS and CC follow.
//
// The paper attributes distributed-memory weakness on power-law graphs to
// "significant load imbalance": a rank owning a hub vertex produces far more
// messages than its peers, and every rank waits at the barrier for the
// slowest. The per-superstep imbalance statistics exposed here quantify
// exactly that effect.
package bsp

import (
	"fmt"
	"sync"

	"repro/internal/graph"
)

// errCollector keeps the first error raised by any rank.
type errCollector struct {
	once sync.Once
	err  error
}

func (e *errCollector) set(err error) {
	if err != nil {
		e.once.Do(func() { e.err = err })
	}
}

// LoadStats records per-superstep message imbalance across ranks.
type LoadStats struct {
	Supersteps int
	// Imbalance is, per superstep, max-messages-per-rank divided by
	// mean-messages-per-rank (1.0 = perfectly balanced).
	Imbalance []float64
	Messages  uint64
}

// MaxImbalance returns the worst per-superstep imbalance factor.
func (s LoadStats) MaxImbalance() float64 {
	max := 0.0
	for _, f := range s.Imbalance {
		if f > max {
			max = f
		}
	}
	return max
}

// Cluster is a simulated distributed-memory machine processing a partitioned
// graph. Vertices are distributed cyclically: vertex v is owned by rank
// v mod P, the default PBGL distribution.
type Cluster[V graph.Vertex] struct {
	g     graph.Adjacency[V]
	ranks int
}

// NewCluster partitions g across `ranks` simulated compute nodes.
func NewCluster[V graph.Vertex](g graph.Adjacency[V], ranks int) (*Cluster[V], error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("bsp: ranks must be positive, got %d", ranks)
	}
	return &Cluster[V]{g: g, ranks: ranks}, nil
}

// Ranks reports the number of simulated compute nodes.
func (c *Cluster[V]) Ranks() int { return c.ranks }

func (c *Cluster[V]) owner(v V) int { return int(uint64(v) % uint64(c.ranks)) }

// exchange runs one superstep: every rank consumes its inbox and produces
// per-destination outboxes; a barrier separates compute from delivery.
// It returns the new inboxes and the number of messages moved.
func exchange[M any](ranks int, inboxes [][]M, step func(rank int, in []M, send func(dst int, m M))) ([][]M, []uint64) {
	outboxes := make([][][]M, ranks) // [src][dst][]M
	counts := make([]uint64, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			out := make([][]M, ranks)
			step(r, inboxes[r], func(dst int, m M) {
				out[dst] = append(out[dst], m)
				counts[r]++
			})
			outboxes[r] = out
		}(r)
	}
	wg.Wait() // superstep barrier
	next := make([][]M, ranks)
	for src := 0; src < ranks; src++ {
		for dst := 0; dst < ranks; dst++ {
			next[dst] = append(next[dst], outboxes[src][dst]...)
		}
	}
	return next, counts
}

func recordImbalance(stats *LoadStats, counts []uint64) {
	var total, max uint64
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	stats.Messages += total
	if total == 0 {
		return
	}
	mean := float64(total) / float64(len(counts))
	stats.Imbalance = append(stats.Imbalance, float64(max)/mean)
}

// BFS runs a level-synchronous distributed breadth-first search from src and
// returns per-vertex levels plus load statistics.
func (c *Cluster[V]) BFS(src V) ([]graph.Dist, LoadStats, error) {
	n := c.g.NumVertices()
	if uint64(src) >= n {
		return nil, LoadStats{}, fmt.Errorf("bsp: source %d out of range for %d vertices", src, n)
	}
	// level is sharded by ownership: rank r only touches level[v] with
	// owner(v) == r, so there are no concurrent writers.
	level := make([]graph.Dist, n)
	for i := range level {
		level[i] = graph.InfDist
	}
	inboxes := make([][]V, c.ranks)
	inboxes[c.owner(src)] = []V{src}
	var stats LoadStats
	var errs errCollector
	cur := graph.Dist(0)
	for errs.err == nil {
		empty := true
		for _, in := range inboxes {
			if len(in) > 0 {
				empty = false
				break
			}
		}
		if empty {
			break
		}
		stats.Supersteps++
		var counts []uint64
		inboxes, counts = exchange(c.ranks, inboxes, func(rank int, in []V, send func(int, V)) {
			scratch := &graph.Scratch[V]{}
			for _, v := range in {
				if level[v] != graph.InfDist {
					continue
				}
				level[v] = cur
				targets, _, err := c.g.Neighbors(v, scratch)
				if err != nil {
					errs.set(err)
					return
				}
				for _, t := range targets {
					send(c.owner(t), t)
				}
			}
		})
		recordImbalance(&stats, counts)
		cur++
	}
	if errs.err != nil {
		return nil, stats, errs.err
	}
	return level, stats, nil
}

type ccMsg[V graph.Vertex] struct {
	v     V
	label uint64
}

// CC runs a synchronous distributed label-propagation connected components
// over an undirected (symmetrized) graph and returns min-id component labels
// plus load statistics.
func (c *Cluster[V]) CC() ([]V, LoadStats, error) {
	n := c.g.NumVertices()
	labels := make([]uint64, n)
	inboxes := make([][]ccMsg[V], c.ranks)
	for v := uint64(0); v < n; v++ {
		labels[v] = v
		// Seed: every vertex announces its own label to itself, which
		// triggers the first propagation wave.
		r := c.owner(V(v))
		inboxes[r] = append(inboxes[r], ccMsg[V]{v: V(v), label: v})
	}
	// The seed wave is free (local); don't count it as communication.
	var stats LoadStats
	var errs errCollector
	first := true
	for errs.err == nil {
		empty := true
		for _, in := range inboxes {
			if len(in) > 0 {
				empty = false
				break
			}
		}
		if empty {
			break
		}
		stats.Supersteps++
		var counts []uint64
		inboxes, counts = exchange(c.ranks, inboxes, func(rank int, in []ccMsg[V], send func(int, ccMsg[V])) {
			scratch := &graph.Scratch[V]{}
			for _, m := range in {
				if m.label > labels[m.v] {
					continue
				}
				if m.label < labels[m.v] {
					labels[m.v] = m.label
				} else if !first {
					continue // equal label, already propagated
				}
				targets, _, err := c.g.Neighbors(m.v, scratch)
				if err != nil {
					errs.set(err)
					return
				}
				for _, t := range targets {
					// labels[t] may be owned by another rank; a distributed
					// implementation cannot read it, so the message is sent
					// unconditionally and filtered at the receiver.
					send(c.owner(t), ccMsg[V]{v: t, label: labels[m.v]})
				}
			}
		})
		first = false
		recordImbalance(&stats, counts)
	}
	if errs.err != nil {
		return nil, stats, errs.err
	}
	out := make([]V, n)
	for v := range out {
		out[v] = V(labels[v])
	}
	return out, stats, nil
}
