package load

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

func baseConfig() Config {
	return Config{
		Vertices: 1 << 16,
		Requests: 5000,
		Rate:     200,
		Mix:      map[string]float64{"bfs": 6, "sssp": 3, "cc": 1},
		Tenants: []Tenant{
			{Name: "acme", Class: "gold", Weight: 1, Deadline: 300 * time.Millisecond},
			{Name: "bulk", Class: "batch", Weight: 9, Deadline: 2 * time.Second},
		},
		Seed: 42,
	}
}

func TestScheduleDeterministic(t *testing.T) {
	cfg1, cfg2 := baseConfig(), baseConfig()
	s1, err := BuildSchedule(&cfg1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := BuildSchedule(&cfg2)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(s1)
	b2, _ := json.Marshal(s2)
	if string(b1) != string(b2) {
		t.Fatal("same config produced different schedules")
	}

	cfg3 := baseConfig()
	cfg3.Seed = 43
	s3, err := BuildSchedule(&cfg3)
	if err != nil {
		t.Fatal(err)
	}
	b3, _ := json.Marshal(s3)
	if string(b1) == string(b3) {
		t.Fatal("different seeds produced the identical schedule")
	}
}

func TestScheduleShape(t *testing.T) {
	cfg := baseConfig()
	schedule, err := BuildSchedule(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(schedule) != cfg.Requests {
		t.Fatalf("len = %d, want %d", len(schedule), cfg.Requests)
	}
	var last time.Duration
	tenants := map[string]int{}
	kernels := map[string]int{}
	for _, r := range schedule {
		if r.At < last {
			t.Fatalf("arrivals out of order: %v after %v", r.At, last)
		}
		last = r.At
		tenants[r.Tenant]++
		kernels[r.Kernel]++
		if r.Kernel == "cc" && r.Source != 0 {
			t.Fatalf("cc request carries source %d, want 0", r.Source)
		}
		if r.Source >= cfg.Vertices {
			t.Fatalf("source %d out of range", r.Source)
		}
	}
	// Mean arrival rate within 10% of configured.
	gotRate := float64(len(schedule)-1) / last.Seconds()
	if math.Abs(gotRate-cfg.Rate)/cfg.Rate > 0.10 {
		t.Fatalf("offered rate %.1f, want ~%.1f", gotRate, cfg.Rate)
	}
	// Tenant weights 1:9 — the gold share should be near 10%.
	goldShare := float64(tenants["acme"]) / float64(len(schedule))
	if goldShare < 0.07 || goldShare > 0.13 {
		t.Fatalf("gold tenant share %.3f, want ~0.10", goldShare)
	}
	// Kernel mix 6:3:1.
	if kernels["bfs"] < kernels["sssp"] || kernels["sssp"] < kernels["cc"] {
		t.Fatalf("kernel mix violates 6:3:1 ordering: %v", kernels)
	}
}

func TestGammaArrivalsBurstiness(t *testing.T) {
	// Gamma inter-arrivals with shape k have CV^2 = 1/k: shape 16 must be
	// much smoother than poisson (CV^2 = 1), shape 0.25 much burstier.
	cv2 := func(arrival string, shape float64) float64 {
		cfg := baseConfig()
		cfg.Arrival = arrival
		cfg.GammaShape = shape
		cfg.Requests = 20000
		schedule, err := BuildSchedule(&cfg)
		if err != nil {
			t.Fatal(err)
		}
		var gaps []float64
		last := time.Duration(0)
		for _, r := range schedule {
			gaps = append(gaps, (r.At - last).Seconds())
			last = r.At
		}
		var mean, varsum float64
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))
		for _, g := range gaps {
			varsum += (g - mean) * (g - mean)
		}
		return varsum / float64(len(gaps)) / (mean * mean)
	}
	poisson := cv2("poisson", 0)
	smooth := cv2("gamma", 16)
	bursty := cv2("gamma", 0.25)
	if math.Abs(poisson-1) > 0.15 {
		t.Fatalf("poisson CV^2 = %.3f, want ~1", poisson)
	}
	if smooth > poisson/2 {
		t.Fatalf("gamma(16) CV^2 = %.3f, want well below poisson %.3f", smooth, poisson)
	}
	if bursty < poisson*2 {
		t.Fatalf("gamma(0.25) CV^2 = %.3f, want well above poisson %.3f", bursty, poisson)
	}
}

func TestZipfSourceSkew(t *testing.T) {
	cfg := baseConfig()
	cfg.Requests = 20000
	schedule, err := BuildSchedule(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	for _, r := range schedule {
		if r.Kernel != "cc" && r.Source < 16 {
			hot++
		}
	}
	nonCC := 0
	for _, r := range schedule {
		if r.Kernel != "cc" {
			nonCC++
		}
	}
	if share := float64(hot) / float64(nonCC); share < 0.30 {
		t.Fatalf("zipf(1.1): hottest 16 of %d vertices drew %.3f of traffic, want > 0.30", cfg.Vertices, share)
	}

	cfg2 := baseConfig()
	cfg2.Source = "uniform"
	cfg2.Requests = 20000
	schedule2, err := BuildSchedule(&cfg2)
	if err != nil {
		t.Fatal(err)
	}
	hot2, nonCC2 := 0, 0
	for _, r := range schedule2 {
		if r.Kernel != "cc" {
			nonCC2++
			if r.Source < 16 {
				hot2++
			}
		}
	}
	if share := float64(hot2) / float64(nonCC2); share > 0.01 {
		t.Fatalf("uniform: hottest 16 vertices drew %.4f of traffic, want ~%v", share, 16.0/float64(cfg2.Vertices))
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Vertices: 0},
		{Vertices: 1, Arrival: "constant"},
		{Vertices: 1, Source: "pareto"},
		{Vertices: 1, Mix: map[string]float64{"pagerank": 1}},
		{Vertices: 1, Mix: map[string]float64{"bfs": 0}},
		{Vertices: 1, Tenants: []Tenant{{Name: "", Weight: 1}}},
		{Vertices: 1, Tenants: []Tenant{{Name: "x", Class: "platinum"}}},
		{Vertices: 1, Requests: -1},
		{Vertices: 1, Rate: -5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated: %+v", i, cfg)
		}
	}
	var cfg Config
	cfg.Vertices = 10
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zero config with vertices: %v", err)
	}
	if cfg.Requests != 1000 || cfg.Arrival != "poisson" || len(cfg.Tenants) != 1 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}
