package graph

import (
	"math/rand"
	"testing"
)

// shardTestGraph builds a random weighted digraph for partition tests.
func shardTestGraph(t *testing.T, n uint64, m int, seed int64) *CSR[uint32] {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge[uint32], 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, Edge[uint32]{
			Src: uint32(rng.Intn(int(n))),
			Dst: uint32(rng.Intn(int(n))),
			W:   Weight(rng.Intn(100) + 1),
		})
	}
	return mustBuild(t, n, true, true, edges)
}

func TestShardOf(t *testing.T) {
	for v := uint64(0); v < 1000; v++ {
		if got := ShardOf(v, 1); got != 0 {
			t.Fatalf("ShardOf(%d, 1) = %d, want 0", v, got)
		}
		if got := ShardOf(v, 0); got != 0 {
			t.Fatalf("ShardOf(%d, 0) = %d, want 0", v, got)
		}
	}
	for _, shards := range []int{2, 3, 4, 7} {
		counts := make([]int, shards)
		for v := uint64(0); v < 4096; v++ {
			k := ShardOf(v, shards)
			if k < 0 || k >= shards {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", v, shards, k)
			}
			counts[k]++
		}
		// The Fibonacci hash should spread sequential ids near-uniformly; a
		// lopsided partition would defeat per-shard devices entirely.
		for k, c := range counts {
			if c < 4096/shards/2 || c > 4096/shards*2 {
				t.Fatalf("shards=%d: shard %d holds %d of 4096 vertices", shards, k, c)
			}
		}
	}
}

func TestShardOfIsStable(t *testing.T) {
	// The assignment is baked into shard files (shard-map hash id 1); these
	// pinned values guard against accidental hash changes orphaning them.
	want := map[uint64]int{0: 0, 1: 1, 2: 2, 3: 3, 100: 0, 12345: 1}
	for v, k := range want {
		if got := ShardOf(v, 4); got != k {
			t.Fatalf("ShardOf(%d, 4) = %d, want %d", v, got, k)
		}
	}
}

func TestExtractShardErrors(t *testing.T) {
	g := shardTestGraph(t, 16, 40, 1)
	if _, err := ExtractShard(g, 0, 0); err == nil {
		t.Fatal("ExtractShard with shards=0 should fail")
	}
	if _, err := ExtractShard(g, -1, 2); err == nil {
		t.Fatal("ExtractShard with shard=-1 should fail")
	}
	if _, err := ExtractShard(g, 2, 2); err == nil {
		t.Fatal("ExtractShard with shard==shards should fail")
	}
}

func TestExtractShardPartitionsAdjacency(t *testing.T) {
	g := shardTestGraph(t, 200, 1200, 7)
	for _, shards := range []int{1, 2, 4} {
		subs := make([]*CSR[uint32], shards)
		var total uint64
		for k := range subs {
			sub, err := ExtractShard(g, k, shards)
			if err != nil {
				t.Fatalf("ExtractShard(%d, %d): %v", k, shards, err)
			}
			if sub.NumVertices() != g.NumVertices() {
				t.Fatalf("shard %d/%d: n = %d, want %d", k, shards, sub.NumVertices(), g.NumVertices())
			}
			subs[k] = sub
			total += sub.NumEdges()
		}
		if total != g.NumEdges() {
			t.Fatalf("shards=%d: member edges sum to %d, want %d", shards, total, g.NumEdges())
		}
		for v := uint64(0); v < g.NumVertices(); v++ {
			owner := ShardOf(v, shards)
			wantTs, wantWs, _ := g.Neighbors(uint32(v), nil)
			for k, sub := range subs {
				ts, ws, err := sub.Neighbors(uint32(v), nil)
				if err != nil {
					t.Fatalf("shard %d Neighbors(%d): %v", k, v, err)
				}
				if k != owner {
					if len(ts) != 0 {
						t.Fatalf("shard %d holds %d edges of vertex %d owned by shard %d", k, len(ts), v, owner)
					}
					continue
				}
				if len(ts) != len(wantTs) {
					t.Fatalf("owner shard %d: degree(%d) = %d, want %d", k, v, len(ts), len(wantTs))
				}
				for i := range ts {
					if ts[i] != wantTs[i] || ws[i] != wantWs[i] {
						t.Fatalf("owner shard %d: edge %d of vertex %d = (%d, %v), want (%d, %v)",
							k, i, v, ts[i], ws[i], wantTs[i], wantWs[i])
					}
				}
			}
		}
	}
}

func TestNewShardedValidation(t *testing.T) {
	g := shardTestGraph(t, 32, 100, 3)
	small := shardTestGraph(t, 16, 30, 3)
	if _, err := NewSharded[uint32](nil); err == nil {
		t.Fatal("NewSharded(nil) should fail")
	}
	if _, err := NewSharded([]Adjacency[uint32]{g, nil}); err == nil {
		t.Fatal("NewSharded with a nil member should fail")
	}
	if _, err := NewSharded([]Adjacency[uint32]{g, small}); err == nil {
		t.Fatal("NewSharded with mismatched vertex counts should fail")
	}
}

func TestShardedRouterMatchesCSR(t *testing.T) {
	g := shardTestGraph(t, 300, 2000, 11)
	for _, shards := range []int{1, 2, 4} {
		members := make([]Adjacency[uint32], shards)
		for k := range members {
			sub, err := ExtractShard(g, k, shards)
			if err != nil {
				t.Fatalf("ExtractShard: %v", err)
			}
			members[k] = sub
		}
		s, err := NewSharded(members)
		if err != nil {
			t.Fatalf("NewSharded: %v", err)
		}
		if s.NumShards() != shards {
			t.Fatalf("NumShards = %d, want %d", s.NumShards(), shards)
		}
		if s.NumVertices() != g.NumVertices() || s.NumEdges() != g.NumEdges() {
			t.Fatalf("shards=%d: n=%d m=%d, want n=%d m=%d",
				shards, s.NumVertices(), s.NumEdges(), g.NumVertices(), g.NumEdges())
		}
		if !s.Weighted() {
			t.Fatalf("shards=%d: Weighted() = false for a weighted graph", shards)
		}
		scratch := &Scratch[uint32]{}
		window := make([]uint32, 0, 8)
		for v := uint64(0); v < g.NumVertices(); v++ {
			window = append(window, uint32(v))
			if len(window) == cap(window) {
				s.NeighborsBatch(window, scratch)
				window = window[:0]
			}
			if d, want := s.Degree(uint32(v)), g.Degree(uint32(v)); d != want {
				t.Fatalf("shards=%d: Degree(%d) = %d, want %d", shards, v, d, want)
			}
			ts, ws, err := s.Neighbors(uint32(v), scratch)
			if err != nil {
				t.Fatalf("shards=%d: Neighbors(%d): %v", shards, v, err)
			}
			wantTs, wantWs, _ := g.Neighbors(uint32(v), nil)
			if len(ts) != len(wantTs) {
				t.Fatalf("shards=%d: Neighbors(%d) has %d targets, want %d", shards, v, len(ts), len(wantTs))
			}
			for i := range ts {
				if ts[i] != wantTs[i] || ws[i] != wantWs[i] {
					t.Fatalf("shards=%d: edge %d of vertex %d differs", shards, i, v)
				}
			}
		}
	}
}

func TestShardedNilScratch(t *testing.T) {
	g := shardTestGraph(t, 50, 200, 5)
	members := make([]Adjacency[uint32], 2)
	for k := range members {
		sub, err := ExtractShard(g, k, 2)
		if err != nil {
			t.Fatalf("ExtractShard: %v", err)
		}
		members[k] = sub
	}
	s, err := NewSharded(members)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	s.NeighborsBatch([]uint32{1, 2, 3}, nil) // must be a safe no-op
	ts, _, err := s.Neighbors(3, nil)
	wantTs, _, _ := g.Neighbors(3, nil)
	if err != nil || len(ts) != len(wantTs) {
		t.Fatalf("Neighbors with nil scratch: %v (got %d targets, want %d)", err, len(ts), len(wantTs))
	}
}

// TestShardedHotPathNoAllocs pins the acceptance criterion that routing adds
// no per-edge (or even per-visit) allocation: once a worker's shard scratch
// is warm, Degree/Neighbors/NeighborsBatch through the router are
// allocation-free.
func TestShardedHotPathNoAllocs(t *testing.T) {
	g := shardTestGraph(t, 256, 2000, 13)
	members := make([]Adjacency[uint32], 4)
	for k := range members {
		sub, err := ExtractShard(g, k, 4)
		if err != nil {
			t.Fatalf("ExtractShard: %v", err)
		}
		members[k] = sub
	}
	s, err := NewSharded(members)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	scratch := &Scratch[uint32]{}
	window := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	s.NeighborsBatch(window, scratch) // warm: builds the shard scratch + groups
	allocs := testing.AllocsPerRun(100, func() {
		s.NeighborsBatch(window, scratch)
		for _, v := range window {
			s.Degree(v)
			if _, _, err := s.Neighbors(v, scratch); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates %.1f times per window, want 0", allocs)
	}
}
