package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/pq"
)

// SSSPResult holds the output of a single-source shortest path traversal:
// per-vertex path length and parent, the paper's dist_array / parent_array.
type SSSPResult[V graph.Vertex] struct {
	Dist   []graph.Dist // InfDist for unreachable vertices
	Parent []V          // NoVertex for unreachable vertices; source parents itself
	Stats  Stats
}

// Reached reports whether v was reached from the source.
func (r *SSSPResult[V]) Reached(v V) bool { return r.Dist[v] != graph.InfDist }

// SSSP computes single-source shortest paths with the asynchronous
// label-correcting traversal of Algorithms 1 and 2: a hybrid of Bellman-Ford
// (label correction, no global ordering) and Dijkstra (each queue pops its
// locally shortest path first). Vertices may be visited multiple times; the
// relaxation predicate makes every visit monotone, so the final labels equal
// Dijkstra's. Only non-negative weights are supported (uint32 enforces this
// by construction).
func SSSP[V graph.Vertex](g graph.Adjacency[V], src V, cfg Config) (*SSSPResult[V], error) {
	n := g.NumVertices()
	if uint64(src) >= n {
		return nil, fmt.Errorf("core: source %d out of range for %d vertices", src, n)
	}
	res := &SSSPResult[V]{
		Dist:   make([]graph.Dist, n),
		Parent: make([]V, n),
	}
	for i := range res.Dist {
		res.Dist[i] = graph.InfDist
		res.Parent[i] = graph.NoVertex[V]()
	}

	e := New[V](cfg, func(ctx *Ctx[V], it pq.Item) error {
		v := V(it.V)
		if it.Pri >= res.Dist[v] {
			return nil // stale visitor: current label is already as good
		}
		res.Dist[v] = it.Pri // relax vertex information
		res.Parent[v] = V(it.Aux)
		targets, weights, err := g.Neighbors(v, ctx.Scratch)
		if err != nil {
			return err
		}
		for i, t := range targets {
			w := graph.Weight(1)
			if weights != nil {
				w = weights[i]
			}
			ctx.Push(it.Pri+uint64(w), t, uint64(v))
		}
		return nil
	})
	e.Start()
	e.Push(0, src, uint64(src)) // source visitor with path length 0, parent = self
	st, err := e.Wait()
	res.Stats = st
	if err != nil {
		return nil, err
	}
	return res, nil
}
