// Package gen produces the synthetic workloads of the paper's evaluation
// (§V-A): RMAT scale-free graphs with the RMAT-A and RMAT-B parameter sets,
// uniform (UW) and log-uniform (LUW) edge weights, the poor-parallelism chain
// of Figure 2, and web-like graphs standing in for the paper's real web
// traces (ClueWeb09, it-2004, sk-2005, uk-union, webbase-2001), which are not
// redistributable here.
package gen

import (
	"math/bits"
	"math/rand/v2"

	"repro/internal/graph"
)

// RMATParams are the recursive-matrix quadrant probabilities (a+b+c+d = 1).
type RMATParams struct {
	A, B, C, D float64
}

// RMATA is the paper's moderate-skew parameter set:
// a=0.45, b=0.15, c=0.15, d=0.25.
var RMATA = RMATParams{A: 0.45, B: 0.15, C: 0.15, D: 0.25}

// RMATB is the paper's heavy-skew parameter set:
// a=0.57, b=0.19, c=0.19, d=0.05.
var RMATB = RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05}

func rng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9E3779B97F4A7C15))
}

// RMATEdges generates m directed edges over 2^scale vertices using the
// recursive-matrix model of Chakrabarti et al., the generator the paper uses
// for all synthetic inputs. Vertex ids are scrambled with a random
// permutation-like hash so that degree does not correlate with id, matching
// standard RMAT practice. Duplicate edges may be produced; the caller
// de-duplicates at build time ("graphs with unique edges").
func RMATEdges[V graph.Vertex](scale int, m uint64, p RMATParams, seed uint64) []graph.Edge[V] {
	r := rng(seed)
	n := uint64(1) << scale
	mask := n - 1
	edges := make([]graph.Edge[V], 0, m)
	// The id scramble must be a bijection on [0, n) so every vertex keeps a
	// distinct identity: an affine step and a multiply (both odd-multiplier,
	// bijective mod 2^scale) around a xorshift (bijective for shift > 0).
	scrambleA := r.Uint64() | 1
	scrambleB := r.Uint64()
	scrambleC := r.Uint64() | 1
	shift := scale / 2
	if shift == 0 {
		shift = 1
	}
	scramble := func(v uint64) uint64 {
		v = (v*scrambleA + scrambleB) & mask
		v ^= v >> shift
		return (v * scrambleC) & mask
	}
	ab := p.A + p.B
	abNorm := p.A / (p.A + p.B) // P(stay left | top half)
	cNorm := p.C / (p.C + p.D)  // P(stay left | bottom half)
	for i := uint64(0); i < m; i++ {
		var src, dst uint64
		for d := 0; d < scale; d++ {
			src <<= 1
			dst <<= 1
			// Choose a quadrant; the standard noise-free recursion.
			if r.Float64() > ab { // bottom half: quadrants c or d
				src |= 1
				if r.Float64() > cNorm {
					dst |= 1
				}
			} else if r.Float64() > abNorm { // top-right quadrant b
				dst |= 1
			}
		}
		edges = append(edges, graph.Edge[V]{Src: V(scramble(src)), Dst: V(scramble(dst))})
	}
	return edges
}

// RMAT builds a directed CSR with 2^scale vertices and avgDegree*2^scale
// generated edges (unique after de-duplication, as in the paper, which
// generates "directed graphs with unique edges ... and an average out-degree
// of 16").
func RMAT[V graph.Vertex](scale, avgDegree int, p RMATParams, seed uint64) (*graph.CSR[V], error) {
	n := uint64(1) << scale
	edges := RMATEdges[V](scale, n*uint64(avgDegree), p, seed)
	return graph.FromEdges[V](n, false, true, edges)
}

// RMATUndirected builds the undirected (symmetrized) version used by the CC
// experiments.
func RMATUndirected[V graph.Vertex](scale, avgDegree int, p RMATParams, seed uint64) (*graph.CSR[V], error) {
	n := uint64(1) << scale
	b := graph.NewBuilder[V](n, false)
	b.AddEdges(RMATEdges[V](scale, n*uint64(avgDegree), p, seed))
	b.Symmetrize()
	return b.Build(true)
}

// UniformWeights assigns each edge a weight drawn uniformly from
// [0, numVertices), the paper's UW scheme. The CSR must have been built
// weighted; this regenerates it with weights attached.
func UniformWeights[V graph.Vertex](g *graph.CSR[V], seed uint64) (*graph.CSR[V], error) {
	r := rng(seed)
	n := g.NumVertices()
	return reweight(g, func() graph.Weight {
		return graph.Weight(r.Uint64N(n))
	})
}

// LogUniformWeights assigns each edge a weight from [0, 2^i) where i is
// uniform in [0, lg(numVertices)), the paper's LUW scheme: most weights are
// small, a few span the full range.
func LogUniformWeights[V graph.Vertex](g *graph.CSR[V], seed uint64) (*graph.CSR[V], error) {
	r := rng(seed)
	lg := bits.Len64(g.NumVertices()) - 1
	if lg < 1 {
		lg = 1
	}
	return reweight(g, func() graph.Weight {
		i := r.IntN(lg)
		return graph.Weight(r.Uint64N(uint64(1) << i))
	})
}

func reweight[V graph.Vertex](g *graph.CSR[V], next func() graph.Weight) (*graph.CSR[V], error) {
	targets := g.Targets()
	weights := make([]graph.Weight, len(targets))
	for i := range weights {
		weights[i] = next()
	}
	offsets := make([]uint64, len(g.Offsets()))
	copy(offsets, g.Offsets())
	tcopy := make([]V, len(targets))
	copy(tcopy, targets)
	return graph.NewCSRRaw(offsets, tcopy, weights)
}

// Chain builds the paper's Figure 2 worst case: a directed path
// 0 -> 1 -> ... -> n-1 with no independent pathways, which serializes the
// asynchronous traversal.
func Chain[V graph.Vertex](n uint64) (*graph.CSR[V], error) {
	b := graph.NewBuilder[V](n, false)
	for i := uint64(0); i+1 < n; i++ {
		b.AddEdge(V(i), V(i+1), 1)
	}
	return b.Build(false)
}

// ErdosRenyi builds a directed G(n, m) random graph: m edges with uniformly
// random endpoints. Used as a low-skew control workload.
func ErdosRenyi[V graph.Vertex](n, m uint64, seed uint64) (*graph.CSR[V], error) {
	r := rng(seed)
	edges := make([]graph.Edge[V], 0, m)
	for i := uint64(0); i < m; i++ {
		edges = append(edges, graph.Edge[V]{Src: V(r.Uint64N(n)), Dst: V(r.Uint64N(n))})
	}
	return graph.FromEdges[V](n, false, true, edges)
}

// WebGraph builds an undirected web-like graph standing in for the paper's
// real web traces: preferential attachment (power-law degrees, giant
// component) plus random "community" edges within small id neighborhoods
// (link locality, as in crawled host-ordered traces). attach is the number
// of preferential links per new vertex and community the number of local
// links.
func WebGraph[V graph.Vertex](n uint64, attach, community int, seed uint64) (*graph.CSR[V], error) {
	r := rng(seed)
	b := graph.NewBuilder[V](n, false)
	// endpoints records one endpoint per edge; sampling from it implements
	// preferential attachment (probability proportional to degree).
	endpoints := make([]V, 0, n*uint64(attach))
	endpoints = append(endpoints, 0)
	for v := uint64(1); v < n; v++ {
		for a := 0; a < attach; a++ {
			t := endpoints[r.IntN(len(endpoints))]
			b.AddEdge(V(v), t, 1)
			endpoints = append(endpoints, V(v), t)
		}
		for c := 0; c < community; c++ {
			span := uint64(1024)
			if v < span {
				span = v
			}
			t := v - 1 - r.Uint64N(span)
			b.AddEdge(V(v), V(t), 1)
		}
	}
	b.Symmetrize()
	return b.Build(true)
}

// Grid builds a rows x cols directed lattice: each cell links right and
// down. Grids have Θ(rows+cols) diameter with bounded path parallelism
// (min(rows, cols) independent frontier cells) — the intermediate case
// between the serialized chain of Figure 2 and a scale-free graph.
func Grid[V graph.Vertex](rows, cols uint64) (*graph.CSR[V], error) {
	n := rows * cols
	b := graph.NewBuilder[V](n, false)
	for r := uint64(0); r < rows; r++ {
		for c := uint64(0); c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				b.AddEdge(V(v), V(v+1), 1)
			}
			if r+1 < rows {
				b.AddEdge(V(v), V(v+cols), 1)
			}
		}
	}
	return b.Build(false)
}
