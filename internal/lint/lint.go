// Package lint is the repository's project-specific static-analysis suite:
// stdlib-only (go/ast, go/parser, go/types, go/token) analyzers that machine-
// check the conventions the engine's asynchronous ownership/termination
// protocol depends on — properties `go vet` and the race detector cannot
// see, because a protocol breach through correctly-ordered atomics is not a
// data race.
//
// The analyzers (run by cmd/lint, enforced in CI):
//
//   - atomic-mix: a struct field accessed both through sync/atomic and with
//     plain loads/stores anywhere in its package;
//   - locked-section: a sync.Mutex/RWMutex Lock without a deferred or
//     same-block Unlock covering every return path;
//   - hotpath: no fmt calls, time.Now, map allocation, or closure creation
//     inside functions annotated `//lint:hotpath`;
//   - droppederr: ignored error results from Read/ReadAt/Write/WriteAt/
//     Close/Flush/Sync calls;
//   - configcheck: every exported field of an exported ...Config struct must
//     be referenced by that package's validate/normalize function.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the suite's canonical
// "file:line: analyzer: message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Analyzer is one project-specific check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Diagnostic
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{AtomicMix, LockedSection, Hotpath, DroppedErr, ConfigCheck}
}

// RunAll applies every analyzer to every package and returns the findings
// sorted by file, line, and analyzer name.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		for _, a := range analyzers {
			diags = append(diags, a.Run(p)...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
