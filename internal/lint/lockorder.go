package lint

import (
	"go/token"
	"sort"
	"strings"
)

// LockOrder builds the global mutex-acquisition-order graph: an edge A -> B
// whenever some function acquires lock class B while (lexically,
// interprocedurally) holding class A — either directly, or by calling a
// function whose may-acquire summary contains B, including interface calls
// resolved by CHA. A cycle in this graph means two code paths take the same
// locks in opposite orders, the classic AB/BA deadlock; each strongly
// connected component is reported once, with a witness site per edge.
//
// Lock identity is per class (struct field, package variable, or local
// declaration site), not per instance: two distinct instances of the same
// struct type share a class. Self-edges (A -> A) are therefore skipped — the
// analysis cannot tell shard-by-shard iteration from genuine re-entry.
//
// An intentional hierarchy is documented by annotating the inner acquisition
// (or the call that performs it) with `//lint:lockorder <why>` on the same
// line or the line above; the annotated edge is dropped from the graph.
const lockOrderName = "lockorder"

var LockOrder = &Analyzer{
	Name:       lockOrderName,
	Doc:        "cycles in the global mutex-acquisition-order graph (AB/BA deadlock risk)",
	RunProgram: runLockOrder,
}

// orderEdge is one witnessed acquisition-order constraint from -> to.
type orderEdge struct {
	from, to string
	pos      token.Pos
	fn       string // display name of the acquiring function
	via      string // callee display name when the acquisition is indirect
}

func runLockOrder(prog *program) []Diagnostic {
	edges := make(map[string]map[string]orderEdge)
	addEdge := func(e orderEdge) {
		if e.from == e.to {
			return // instance-blind: do not call same-class nesting a cycle
		}
		m := edges[e.from]
		if m == nil {
			m = make(map[string]orderEdge)
			edges[e.from] = m
		}
		if prev, ok := m[e.to]; !ok || e.pos < prev.pos {
			m[e.to] = e
		}
	}
	for _, n := range prog.order {
		for _, a := range n.acquires {
			if a.annotated {
				continue
			}
			for _, h := range a.held {
				addEdge(orderEdge{from: h, to: a.class, pos: a.pos, fn: n.display})
			}
		}
		for _, c := range n.calls {
			if len(c.held) == 0 || prog.suppressed(lockOrderName, c.pos) {
				continue
			}
			callee := prog.nodes[c.callee]
			if callee == nil {
				continue
			}
			for class := range callee.mayAcquire {
				for _, h := range c.held {
					addEdge(orderEdge{from: h, to: class, pos: c.pos, fn: n.display, via: callee.display})
				}
			}
		}
		for _, d := range n.dyncalls {
			if len(d.held) == 0 || prog.suppressed(lockOrderName, d.pos) {
				continue
			}
			for _, key := range prog.cha[d.sig] {
				callee := prog.nodes[key]
				if callee == nil {
					continue
				}
				for class := range callee.mayAcquire {
					for _, h := range d.held {
						addEdge(orderEdge{from: h, to: class, pos: d.pos, fn: n.display, via: callee.display})
					}
				}
			}
		}
	}

	// Tarjan-free SCC detection is overkill for graphs this small: find the
	// classes reachable both ways (Kosaraju-style double DFS per component).
	classes := make([]string, 0, len(edges))
	for from := range edges {
		classes = append(classes, from)
	}
	sort.Strings(classes)
	reach := func(start string) map[string]bool {
		seen := map[string]bool{start: true}
		stack := []string{start}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for to := range edges[cur] {
				if !seen[to] {
					seen[to] = true
					stack = append(stack, to)
				}
			}
		}
		return seen
	}
	var diags []Diagnostic
	reported := make(map[string]bool)
	for _, start := range classes {
		if reported[start] {
			continue
		}
		fwd := reach(start)
		// SCC members: classes reachable from start that reach start back.
		var scc []string
		for c := range fwd {
			if c == start {
				continue
			}
			if reach(c)[start] {
				scc = append(scc, c)
			}
		}
		if len(scc) == 0 {
			continue
		}
		scc = append(scc, start)
		sort.Strings(scc)
		for _, c := range scc {
			reported[c] = true
		}
		diags = append(diags, cycleDiagnostic(prog, edges, scc))
	}
	return diags
}

// cycleDiagnostic renders one strongly connected component as a single
// finding anchored at its earliest witness site, spelling out one full cycle
// path with the function and position that witnesses each hop.
func cycleDiagnostic(prog *program, edges map[string]map[string]orderEdge, scc []string) Diagnostic {
	inSCC := make(map[string]bool, len(scc))
	for _, c := range scc {
		inSCC[c] = true
	}
	// Render the shortest cycle through the lexically-smallest class: BFS
	// from it over in-SCC edges until some discovered node closes back.
	start := scc[0]
	parent := make(map[string]string)
	queue := []string{start}
	closer := ""
	for len(queue) > 0 && closer == "" {
		cur := queue[0]
		queue = queue[1:]
		var nexts []string
		for to := range edges[cur] {
			if inSCC[to] {
				nexts = append(nexts, to)
			}
		}
		sort.Strings(nexts)
		for _, to := range nexts {
			if to == start {
				closer = cur
				break
			}
			if _, seen := parent[to]; !seen {
				parent[to] = cur
				queue = append(queue, to)
			}
		}
	}
	var hops []orderEdge
	if closer == "" {
		// Unreachable for a genuine SCC; degrade to the first outgoing edge.
		for to, e := range edges[start] {
			_ = to
			hops = append(hops, e)
			break
		}
	} else {
		var path []string // start ... closer, reconstructed backwards
		for cur := closer; ; cur = parent[cur] {
			path = append([]string{cur}, path...)
			if cur == start {
				break
			}
		}
		for i := 0; i+1 < len(path); i++ {
			hops = append(hops, edges[path[i]][path[i+1]])
		}
		hops = append(hops, edges[closer][start])
	}
	first := hops[0]
	for _, h := range hops {
		if h.pos < first.pos {
			first = h
		}
	}
	var b strings.Builder
	b.WriteString("lock-order cycle: ")
	b.WriteString(shortName(hops[len(hops)-1].to))
	for _, h := range hops {
		b.WriteString(" -> ")
		b.WriteString(shortName(h.to))
		b.WriteString(" (")
		if h.via != "" {
			b.WriteString("via " + h.via + " ")
		}
		b.WriteString("at " + prog.posLabel(h.pos) + " in " + h.fn + ")")
	}
	b.WriteString("; opposite acquisition orders can deadlock — reorder, or annotate an intentional hierarchy with //lint:lockorder")
	return Diagnostic{
		Pos:      prog.fset.Position(first.pos),
		Analyzer: lockOrderName,
		Message:  b.String(),
	}
}
