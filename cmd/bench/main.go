// Command bench regenerates the paper's evaluation: Figure 1, Figure 2,
// Tables I-V, and the ablation studies from DESIGN.md, printing each as an
// aligned table whose rows mirror the paper's.
//
// Examples:
//
//	bench                 # the full suite at default (scaled-down) sizes
//	bench -exp table4     # one experiment
//	bench -scales 12,13   # smaller/larger workloads
//	bench -quiet          # suppress progress lines on stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/sem"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: all, fig1, fig2, table1, table2, table3, table4, table5, ablation, direction, cachepolicy")
		scales    = flag.String("scales", "", "comma-separated log2 vertex counts for in-memory tables")
		semScales = flag.String("semscales", "", "comma-separated log2 vertex counts for SEM tables")
		degree    = flag.Int("degree", 0, "average out-degree (default 16)")
		seed      = flag.Uint64("seed", 0, "workload seed (default 42)")
		memModel  = flag.Bool("memmodel", true, "apply the DRAM-latency model to in-memory runs")
		compress  = flag.Bool("compress", false, "mount SEM tables on the delta+varint compressed (v2) edge format")
		shards    = flag.Int("shards", 1, "mount SEM tables as an N-way hash partition, one device per shard")
		dirFlag   = flag.String("direction", "", "BFS direction policy for SEM tables: topdown (default), bottomup, or hybrid")
		cachePol  = flag.String("cachepolicy", "", "SEM block-cache eviction policy: lru (default) or state")
		prefgap   = flag.String("prefetchgap", "", "span-coalescing slack for SEM prefetch reads (bytes, or with a k/KiB/m/MiB suffix; empty = harness default)")
		quiet     = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()

	o := harness.Defaults()
	if !*quiet {
		o.Log = os.Stderr
	}
	if *scales != "" {
		v, err := parseInts(*scales)
		if err != nil {
			usage(fmt.Errorf("-scales: %v", err))
		}
		o.Scales = v
	}
	if *semScales != "" {
		v, err := parseInts(*semScales)
		if err != nil {
			usage(fmt.Errorf("-semscales: %v", err))
		}
		o.SEMScales = v
	}
	if *degree > 0 {
		o.Degree = *degree
	}
	if *seed != 0 {
		o.Seed = *seed
	}
	o.MemModel = *memModel
	o.Compressed = *compress
	if *shards < 1 {
		usage(fmt.Errorf("-shards must be >= 1, got %d", *shards))
	}
	o.Shards = *shards
	dir, err := core.ParseDirection(*dirFlag)
	if err != nil {
		usage(err)
	}
	o.Direction = dir
	if o.CachePolicy, err = sem.ParseCachePolicy(*cachePol); err != nil {
		usage(fmt.Errorf("-cachepolicy: %v", err))
	}
	if *prefgap != "" {
		if o.PrefetchGap, err = sem.ParseByteSize(*prefgap); err != nil {
			usage(fmt.Errorf("-prefetchgap: %v", err))
		}
	}

	start := time.Now()
	tables, err := run(*exp, o)
	if err != nil {
		if strings.HasPrefix(err.Error(), "unknown -exp") {
			usage(err)
		}
		fatal(err)
	}
	for _, t := range tables {
		t.Render(os.Stdout)
	}
	fmt.Fprintf(os.Stderr, "\nbench: %s completed in %s\n", *exp, time.Since(start).Round(time.Millisecond))
}

func run(exp string, o harness.Options) ([]*harness.Table, error) {
	one := func(t *harness.Table, err error) ([]*harness.Table, error) {
		if err != nil {
			return nil, err
		}
		return []*harness.Table{t}, nil
	}
	switch exp {
	case "all":
		return harness.All(o)
	case "fig1":
		return one(harness.Figure1(o))
	case "fig2":
		return one(harness.Figure2(o))
	case "table1":
		return one(harness.Table1(o))
	case "table2":
		return one(harness.Table2(o))
	case "table3":
		return one(harness.Table3(o))
	case "table4":
		return one(harness.Table4(o))
	case "table5":
		return one(harness.Table5(o))
	case "ablation":
		return harness.Ablations(o)
	case "direction":
		return one(harness.AblationDirection(o))
	case "cachepolicy":
		return one(harness.AblationCachePolicy(o))
	default:
		return nil, fmt.Errorf("unknown -exp %q", exp)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// fatal reports a runtime failure (exit 1); usage reports a bad invocation
// (exit 2, the same convention cmd/traverse and cmd/serve follow for flag
// validation).
func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bench: %v\n", err)
	os.Exit(1)
}

func usage(err error) {
	fmt.Fprintf(os.Stderr, "bench: %v\n", err)
	os.Exit(2)
}
