//go:build invariants

// Protocol-invariant tests for instrumented builds: every scenario here
// violates the ownership/termination protocol on purpose and must panic
// with a recognizable message. The mirror file invariant_off_test.go runs
// the same scenarios without the tag and asserts they stay silent — the
// assertions must cost nothing in production builds.

package core

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/invariant"
	"repro/internal/pq"
)

func TestInvariantsEnabled(t *testing.T) {
	if !invariant.Enabled {
		t.Fatal("built with -tags invariants but invariant.Enabled is false")
	}
}

// expectInvariantPanic runs fn and asserts it panics with an invariant
// violation mentioning substr.
func expectInvariantPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected invariant panic containing %q, got none", substr)
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "invariant violation") || !strings.Contains(msg, substr) {
			t.Fatalf("panic %q does not look like an invariant violation containing %q", msg, substr)
		}
	}()
	fn()
}

// TestOwnerRuleViolationPanics runs a deliberately broken visitor that
// claims ownership of a vertex belonging to the other worker. Under
// -tags invariants AssertOwned must panic inside the visitor; the visitor
// recovers the panic itself (worker goroutines cannot be recovered from the
// test goroutine) and converts it to an error so the engine shuts down
// cleanly.
func TestOwnerRuleViolationPanics(t *testing.T) {
	var caught atomic.Pointer[string]
	visit := func(ctx *Ctx[uint32], it pq.Item) (err error) {
		defer func() {
			if r := recover(); r != nil {
				msg := fmt.Sprint(r)
				caught.Store(&msg)
				err = errors.New("owner rule violated")
			}
		}()
		// With IdentityHash and two workers, vertex it.V+1 always hashes to
		// the other worker: this write claim is always a violation.
		ctx.AssertOwned(uint32(it.V + 1))
		return nil
	}
	e := New[uint32](Config{Workers: 2, Hash: IdentityHash}, visit)
	e.Start()
	e.Push(0, 0, 0)
	if _, err := e.Wait(); err == nil {
		t.Fatal("broken visitor completed without error under -tags invariants")
	}
	msg := caught.Load()
	if msg == nil {
		t.Fatal("AssertOwned did not panic for a non-owned vertex")
	}
	if !strings.Contains(*msg, "owner rule") {
		t.Fatalf("panic %q does not mention the owner rule", *msg)
	}
}

// TestOwnsAgreesWithAssertOwned pins the non-panicking query against the
// asserting form: a visitor owns exactly the vertex it was delivered.
func TestOwnsAgreesWithAssertOwned(t *testing.T) {
	visit := func(ctx *Ctx[uint32], it pq.Item) error {
		if !ctx.Owns(uint32(it.V)) {
			return errors.New("visitor delivered a vertex it does not own")
		}
		ctx.AssertOwned(uint32(it.V)) // must not panic
		return nil
	}
	e := New[uint32](Config{Workers: 4, Hash: IdentityHash}, visit)
	e.Start()
	for v := uint32(0); v < 64; v++ {
		e.Push(uint64(v), v, 0)
	}
	if _, err := e.Wait(); err != nil {
		t.Fatalf("owner-respecting visitor failed: %v", err)
	}
}

func TestTerminatorUnderflowPanics(t *testing.T) {
	tm := NewTerminator()
	if !tm.Release() { // drops the init token: count 1 -> 0, terminated
		t.Fatal("Release of an idle terminator did not report termination")
	}
	expectInvariantPanic(t, "terminator underflow", func() {
		tm.Finish() // 0 -> -1: a Finish without a matching Start
	})
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	p := NewEnginePool[uint32](Config{Workers: 2})
	r := p.acquire()
	p.release(r)
	expectInvariantPanic(t, "released twice", func() {
		p.release(r)
	})
}

func TestPoolDirtyQueuePanics(t *testing.T) {
	cfg := Config{Workers: 2}
	cfg.normalize()
	r := newEngineRes[uint32](cfg)
	r.queues[0].push(pq.Item{Pri: 1, V: 7})
	expectInvariantPanic(t, "still holds", func() {
		r.assertPristine()
	})
}

func TestPoolResetRestoresPristine(t *testing.T) {
	cfg := Config{Workers: 2}
	cfg.normalize()
	r := newEngineRes[uint32](cfg)
	r.queues[0].push(pq.Item{Pri: 1, V: 7})
	r.queues[1].finish()
	// reset itself runs assertPristine under the tag; surviving it proves a
	// dirty, closed queue set is fully restored.
	r.reset()
}
