package fixture

import "sync"

// Seeded lockorder violations and accepted shapes. Lock classes are struct
// fields, so the order graph is over orderA.mu, orderB.mu, ...

type orderA struct{ mu sync.Mutex }
type orderB struct{ mu sync.Mutex }

// lockAB and lockBA take the same two locks in opposite orders: the genuine
// AB/BA deadlock. One cycle diagnostic.
func lockAB(a *orderA, b *orderB) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // edge orderA.mu -> orderB.mu
	defer b.mu.Unlock()
}

func lockBA(a *orderA, b *orderB) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // edge orderB.mu -> orderA.mu: closes the cycle
	defer a.mu.Unlock()
}

type orderC struct{ mu sync.Mutex }
type orderD struct{ mu sync.Mutex }

func lockCAlone(c *orderC) {
	c.mu.Lock()
	defer c.mu.Unlock()
}

func lockDAlone(d *orderD) {
	d.mu.Lock()
	defer d.mu.Unlock()
}

// cThenD and dThenC close the same cycle interprocedurally: the inner lock
// is taken inside a callee, visible only through the may-acquire summary.
func cThenD(c *orderC, d *orderD) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lockDAlone(d) // edge orderC.mu -> orderD.mu via lockDAlone
}

func dThenC(c *orderC, d *orderD) {
	d.mu.Lock()
	defer d.mu.Unlock()
	lockCAlone(c) // edge orderD.mu -> orderC.mu: closes the cycle
}

type orderE struct{ mu sync.Mutex }
type orderF struct{ mu sync.Mutex }

// A consistent hierarchy (E before F everywhere): no diagnostic.
func hierarchyOne(e *orderE, f *orderF) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
}

func hierarchyTwo(e *orderE, f *orderF) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
}

type orderG struct{ mu sync.Mutex }
type orderH struct{ mu sync.Mutex }

func gThenH(g *orderG, h *orderH) {
	g.mu.Lock()
	defer g.mu.Unlock()
	h.mu.Lock()
	defer h.mu.Unlock()
}

// The reversal is documented, so the H -> G edge is dropped: no diagnostic.
func hThenG(g *orderG, h *orderH) {
	h.mu.Lock()
	defer h.mu.Unlock()
	//lint:lockorder the G<->H reversal is serialized by the registry lock
	g.mu.Lock()
	defer g.mu.Unlock()
}
