// Quickstart: build a small graph, run the three asynchronous traversals
// (BFS, SSSP, CC), and print their results. This is the five-minute tour of
// the library's public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	// A small weighted road network: 8 intersections, two clusters joined by
	// one bridge, plus an unreachable island (vertices 6, 7).
	b := graph.NewBuilder[uint32](8, true)
	type edge struct {
		u, v uint32
		w    graph.Weight
	}
	edges := []edge{
		{0, 1, 4}, {0, 2, 1}, {2, 1, 2}, {1, 3, 5},
		{2, 3, 8}, {3, 4, 3}, {4, 5, 1}, {3, 5, 10},
		{6, 7, 2}, // island
	}
	for _, e := range edges {
		b.AddEdge(e.u, e.v, e.w)
		b.AddEdge(e.v, e.u, e.w) // make it undirected
	}
	g, err := b.Build(true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d directed edges\n\n", g.NumVertices(), g.NumEdges())

	// Breadth First Search: hop counts from vertex 0. The asynchronous
	// engine runs visitors over per-worker prioritized queues; Config{}
	// picks sensible defaults (4x GOMAXPROCS workers).
	bfs, err := core.BFS[uint32](g, 0, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("BFS from 0 (hops):")
	for v, l := range bfs.Level {
		if bfs.Reached(uint32(v)) {
			fmt.Printf("  vertex %d: level %d, parent %d\n", v, l, bfs.Parent[v])
		} else {
			fmt.Printf("  vertex %d: unreachable\n", v)
		}
	}
	fmt.Printf("  levels=%d visited=%.0f%%\n\n", bfs.NumLevels(), 100*bfs.FracVisited())

	// Single Source Shortest Path: weighted distances from vertex 0. The
	// traversal is label-correcting — vertices may be visited more than once
	// as shorter paths arrive, with no global synchronization.
	sssp, err := core.SSSP[uint32](g, 0, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SSSP from 0 (weighted):")
	for v, d := range sssp.Dist {
		if sssp.Reached(uint32(v)) {
			fmt.Printf("  vertex %d: dist %d via %d\n", v, d, sssp.Parent[v])
		} else {
			fmt.Printf("  vertex %d: unreachable\n", v)
		}
	}
	fmt.Printf("  engine stats: %s\n\n", sssp.Stats)

	// Connected Components: every vertex is labeled with the smallest vertex
	// id it can reach. The island gets its own label.
	cc, err := core.CC[uint32](g, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Connected components:")
	for label, size := range cc.Sizes() {
		fmt.Printf("  component %d: %d vertices\n", label, size)
	}
	fmt.Printf("  total: %d components\n", cc.NumComponents())
}
