package graph

// This file is the reverse-adjacency capability: the interfaces the
// direction-optimizing BFS kernel (internal/core) traverses in-edges through,
// and the in-memory pairing of a forward graph with its transpose. The
// bottom-up relaxation step inverts the paper's push model — instead of a
// frontier vertex pushing its label to out-neighbors, an unvisited vertex
// scans its in-edges for a settled parent — which requires every back end
// that wants the optimization to answer "who points at v?".
//
// Back ends expose the capability three ways:
//
//   - an in-memory CSR (raw or compressed) pairs with its Transpose /
//     TransposeCompressed in a Bidi wrapper;
//   - a symmetric graph is its own transpose: NewSymmetric serves in-edges
//     from the out-adjacency with zero extra storage;
//   - the semi-external store carries an on-flash in-edge section (or a
//     symmetric header flag) and implements these interfaces natively, as
//     does the shard router when every member does.

import "fmt"

// InAdjacency is implemented by back ends that can serve reverse (in-edge)
// adjacency alongside the forward Adjacency. Weights are not part of the
// interface: the only consumer is the bottom-up BFS step, which needs
// sources, not costs.
type InAdjacency[V Vertex] interface {
	Adjacency[V]
	// InDegree reports the number of edges pointing at v.
	InDegree(v V) int
	// InNeighbors returns the sources of the edges pointing at v. The
	// returned slice is valid only until the next adjacency call with the
	// same scratch.
	InNeighbors(v V, scratch *Scratch[V]) ([]V, error)
}

// InScanner is the bulk counterpart of InAdjacency for bottom-up phases: the
// caller asks for the in-adjacency of a contiguous vertex-id range and the
// back end streams it in storage order. Semi-external stores implement this
// with large sequential degree-array spans — the whole point of a bottom-up
// SEM phase is replacing per-vertex random reads with near-sequential scans.
type InScanner[V Vertex] interface {
	InAdjacency[V]
	// ScanInEdges calls visit(v, in) for every vertex v in [lo, hi) with
	// need(v) true and a nonzero in-degree, in unspecified order, where in is
	// v's in-neighbor list (valid only during the call). need is consulted
	// before any I/O or decode is spent on v. A non-nil error from visit
	// aborts the scan.
	ScanInEdges(lo, hi V, need func(V) bool, visit func(v V, in []V) error, scratch *Scratch[V]) error
}

// InEdges reports whether g can serve reverse adjacency, resolving both the
// static interface and the dynamic capability: back ends whose in-edge
// support depends on the mounted data (a sem store without an in-edge
// section, a shard router with incapable members) implement HasInEdges to
// decline at runtime.
func InEdges[V Vertex](g Adjacency[V]) (InAdjacency[V], bool) {
	ia, ok := g.(InAdjacency[V])
	if !ok {
		return nil, false
	}
	if h, ok := g.(interface{ HasInEdges() bool }); ok && !h.HasInEdges() {
		return nil, false
	}
	return ia, true
}

// Bidi pairs a forward adjacency with its reverse, making any back end
// direction-capable in memory: NewBidi(g, Transpose(g)) for a directed CSR,
// NewSymmetric(g) for a symmetric one. Forward reads delegate to fwd
// (including pop-window batching when fwd supports it); in-edge reads
// delegate to rev's forward adjacency. The two sides keep isolated
// sub-scratches so a back end's per-worker decode state never crosses
// directions.
type Bidi[V Vertex] struct {
	fwd   Adjacency[V]
	rev   Adjacency[V]
	batch BatchAdjacency[V] // fwd's batching side, nil when absent
}

// NewBidi builds the pairing. rev must be the transpose of fwd (or fwd
// itself for symmetric graphs); only the vertex counts are validated here.
func NewBidi[V Vertex](fwd, rev Adjacency[V]) (*Bidi[V], error) {
	if fwd == nil || rev == nil {
		return nil, fmt.Errorf("graph: bidi needs both a forward and a reverse adjacency")
	}
	if fn, rn := fwd.NumVertices(), rev.NumVertices(); fn != rn {
		return nil, fmt.Errorf("graph: bidi forward has %d vertices, reverse has %d", fn, rn)
	}
	b := &Bidi[V]{fwd: fwd, rev: rev}
	b.batch, _ = fwd.(BatchAdjacency[V])
	return b, nil
}

// NewSymmetric declares g its own transpose: in-edges are served from the
// out-adjacency. The caller asserts symmetry (e.g. Builder.Symmetrize
// output); nothing is checked.
func NewSymmetric[V Vertex](g Adjacency[V]) *Bidi[V] {
	b, _ := NewBidi(g, g)
	return b
}

// Forward exposes the out-adjacency side (stats inspection, device counters).
func (b *Bidi[V]) Forward() Adjacency[V] { return b.fwd }

// Reverse exposes the in-adjacency side.
func (b *Bidi[V]) Reverse() Adjacency[V] { return b.rev }

// bidiScratch keeps each direction's decode state isolated per worker.
type bidiScratch[V Vertex] struct {
	out, in *Scratch[V]
}

func (b *Bidi[V]) state(scratch *Scratch[V]) *bidiScratch[V] {
	bs, ok := scratch.Prefetch.(*bidiScratch[V])
	if !ok {
		bs = &bidiScratch[V]{out: &Scratch[V]{}, in: &Scratch[V]{}}
		if b.rev == b.fwd {
			bs.in = bs.out // symmetric: one decode state serves both directions
		}
		scratch.Prefetch = bs
	}
	return bs
}

// NumVertices implements Adjacency.
func (b *Bidi[V]) NumVertices() uint64 { return b.fwd.NumVertices() }

// NumEdges reports the forward edge count when fwd exposes one.
func (b *Bidi[V]) NumEdges() uint64 {
	if ne, ok := b.fwd.(interface{ NumEdges() uint64 }); ok {
		return ne.NumEdges()
	}
	return 0
}

// Weighted reports whether the forward side carries edge weights.
func (b *Bidi[V]) Weighted() bool {
	if w, ok := b.fwd.(interface{ Weighted() bool }); ok {
		return w.Weighted()
	}
	return false
}

// Degree implements Adjacency.
//
//lint:hotpath
func (b *Bidi[V]) Degree(v V) int { return b.fwd.Degree(v) }

// Neighbors implements Adjacency, delegating to the forward side with its
// own sub-scratch.
//
//lint:hotpath
func (b *Bidi[V]) Neighbors(v V, scratch *Scratch[V]) ([]V, []Weight, error) {
	if scratch == nil {
		scratch = &Scratch[V]{}
	}
	return b.fwd.Neighbors(v, b.state(scratch).out)
}

// NeighborsBatch implements BatchAdjacency when the forward side does;
// otherwise it is a no-op, matching the in-memory back ends.
func (b *Bidi[V]) NeighborsBatch(vs []V, scratch *Scratch[V]) {
	if b.batch == nil || scratch == nil {
		return
	}
	b.batch.NeighborsBatch(vs, b.state(scratch).out)
}

// InDegree implements InAdjacency.
//
//lint:hotpath
func (b *Bidi[V]) InDegree(v V) int { return b.rev.Degree(v) }

// InNeighbors implements InAdjacency from the reverse side's forward lists.
//
//lint:hotpath
func (b *Bidi[V]) InNeighbors(v V, scratch *Scratch[V]) ([]V, error) {
	if scratch == nil {
		scratch = &Scratch[V]{}
	}
	targets, _, err := b.rev.Neighbors(v, b.state(scratch).in)
	return targets, err
}

var (
	_ InAdjacency[uint32]    = (*Bidi[uint32])(nil)
	_ BatchAdjacency[uint32] = (*Bidi[uint32])(nil)
)
