package load

import (
	"math"
	"math/rand/v2"
)

// Source-vertex distributions. Real query traffic concentrates on a small
// hot set (the same landmark vertices, the same ego networks) — that is
// what makes result caches and block caches earn their keep — while a
// uniform draw defeats both. The generator offers the two extremes:
//
//   - zipfSource draws rank r with probability proportional to 1/(r+1)^s
//     and maps rank directly to vertex id. Low ids are the hottest keys; on
//     RMAT graphs low ids are also the high-degree hubs, so hot-key traffic
//     lands on expensive, highly shareable traversals — the realistic worst
//     case for admission and the best case for caching.
//   - uniformSource spreads queries evenly over the id space.
//
// The Zipf sampler inverts an explicit cumulative table (8 bytes per
// vertex, built once per run): exact for any s > 0 and trivially
// deterministic, which matters more here than the table's memory.

type sourcePicker interface {
	pick() uint64
}

type uniformSource struct {
	rng *rand.Rand
	n   uint64
}

func (u *uniformSource) pick() uint64 { return u.rng.Uint64N(u.n) }

type zipfSource struct {
	rng *rand.Rand
	cum []float64 // cum[i] = sum of 1/(j+1)^s for j <= i
}

func newZipfSource(rng *rand.Rand, n uint64, s float64) *zipfSource {
	cum := make([]float64, n)
	var total float64
	for i := range cum {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	return &zipfSource{rng: rng, cum: cum}
}

func (z *zipfSource) pick() uint64 {
	x := z.rng.Float64() * z.cum[len(z.cum)-1]
	// Binary search for the first rank whose cumulative weight covers x.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint64(lo)
}

// newSource builds the configured source-vertex distribution.
func newSource(cfg *Config, rng *rand.Rand) sourcePicker {
	if cfg.Source == "zipf" {
		return newZipfSource(rng, cfg.Vertices, cfg.ZipfS)
	}
	return &uniformSource{rng: rng, n: cfg.Vertices}
}
