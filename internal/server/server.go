// Package server is the long-lived traversal query service layered on the
// asynchronous engine: one process loads one or more graphs — in-memory CSRs
// or semi-external stores on a simulated flash device — as shared read-only
// stores and answers BFS / SSSP / CC queries over HTTP.
//
// The serving pipeline, request by request:
//
//	decode/validate → result-cache lookup → per-tenant rate limit →
//	SLO-aware admission → engine-pool traversal under a per-query
//	deadline → snapshot → cache fill → render
//
// Requests carry a tenant identity (X-Tenant) and an SLO class
// (X-SLO-Class: gold/silver/bronze/batch); the admission queue is ordered
// by class and remaining deadline budget, requests whose budget cannot
// survive the estimated queue wait are shed immediately, and each tenant's
// request rate is bounded by a token bucket (slo.go, admission.go,
// ratelimit.go).
//
// Three mechanisms make it safe to put the batch engine behind traffic:
//
//   - cancellation (core.Config.Context): every query runs under a deadline
//     derived from Config.QueryTimeout and the HTTP request context, so a
//     slow traversal or a disconnected client stops all engine workers
//     promptly instead of leaking goroutines;
//   - admission control (admission.go): concurrent traversals are capped and
//     excess requests queue briefly, bounding pressure on the SEM device's
//     channel pool (429 when the queue overflows, 503 when the wait times
//     out);
//   - the engine pool (core.EnginePool): per-worker queues, outboxes, and
//     scratch recycle across queries, so steady-state serving allocates only
//     result arrays.
//
// Everything is stdlib-only: net/http, encoding/json, expvar.
//
// Endpoints:
//
//	POST /v1/query   {"graph":"g","kernel":"sssp","source":1234,"targets":[5,6]}
//	GET  /v1/graphs  inventory of loaded graphs
//	GET  /healthz    liveness probe
//	GET  /metrics    expvar JSON: in-flight, queue depth, latency p50/p99,
//	                 cache and device counters
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sem"
	"repro/internal/ssd"
)

// Admission policy names for Config.Admission.
const (
	// AdmitPriority orders the wait queue by (SLO class, remaining deadline
	// budget); the default.
	AdmitPriority = "priority"
	// AdmitFIFO orders the wait queue by arrival, the pre-SLO behavior; kept
	// for policy comparison runs.
	AdmitFIFO = "fifo"
)

// Shedding policy names for Config.Shedding.
const (
	// ShedDeadline rejects requests whose latency budget cannot survive the
	// estimated queue wait, and queued requests whose deadline expires
	// before a slot frees; the default.
	ShedDeadline = "deadline"
	// ShedOff disables deadline-aware shedding: queued requests wait the
	// full QueueTimeout regardless of budget.
	ShedOff = "off"
)

// Config tunes the service. Zero values select the documented defaults.
type Config struct {
	// MaxConcurrent caps traversals running at once. Each traversal spawns
	// Engine.Workers goroutines and, on SEM stores, competes for the
	// device's bounded channel pool. Default 4.
	MaxConcurrent int
	// MaxQueue caps requests waiting for a traversal slot; the request
	// beyond it is rejected immediately with 429. Default 64.
	MaxQueue int
	// QueueTimeout bounds how long a request waits in the admission queue
	// before 503. Default 2s.
	QueueTimeout time.Duration
	// QueryTimeout is the per-query traversal deadline; a request may lower
	// (never raise) it via timeout_ms. Default 30s.
	QueryTimeout time.Duration
	// Admission selects the wait-queue order: AdmitPriority (default) or
	// AdmitFIFO. Unknown values select AdmitPriority.
	Admission string
	// Shedding selects deadline handling for queued requests: ShedDeadline
	// (default) or ShedOff. Unknown values select ShedDeadline.
	Shedding string
	// RateLimit configures per-tenant token buckets applied before
	// admission; the zero value disables limiting. Graphs may override it
	// via Graph.RateLimit.
	RateLimit RateLimitConfig
	// CacheEntries is the result-cache capacity in snapshots; 0 selects the
	// default 64, negative disables caching.
	CacheEntries int
	// Engine configures the traversal engine shared by all queries
	// (workers, semi-sort, batching, SEM prefetch window). Context is
	// ignored — the server installs a per-query context.
	Engine core.Config
}

func (c *Config) normalize() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.Admission != AdmitFIFO {
		c.Admission = AdmitPriority
	}
	if c.Shedding != ShedOff {
		c.Shedding = ShedDeadline
	}
	c.RateLimit.normalize()
	if c.CacheEntries == 0 {
		c.CacheEntries = 64
	}
	// The engine config's Context never applies here: runQuery installs a
	// per-query context derived from the request deadline.
	c.Engine.Context = nil
}

// Graph is one read-only store served by the Server. Adj must be safe for
// concurrent readers — all back ends are: the in-memory CSR is immutable,
// the semi-external store's reads share only the device, block cache, and
// prefetcher, each of which is concurrency-safe, and the shard router keeps
// all mutable state in per-worker scratches. Device/BlockCache (single
// store) and Devices/BlockCaches (one entry per shard, in shard order) are
// optional observability hooks surfaced under /metrics; AddGraph folds the
// singular fields into the slices.
type Graph struct {
	Name        string
	Adj         graph.Adjacency[uint32]
	Storage     string // "im" or "sem"; informational
	Device      *ssd.Device
	BlockCache  *sem.CachedStore
	Devices     []*ssd.Device
	BlockCaches []*sem.CachedStore
	// SEMGraphs are the semi-external member graphs behind Adj (one per
	// shard; nil for in-memory mounts). /metrics reads their prefetch
	// counters — span dedup in particular — without reaching through Adj.
	SEMGraphs []*sem.Graph[uint32]
	// Shards is the mount's partition width (0 or 1 = unsharded). Filled
	// from Adj when it is a shard router.
	Shards int
	// Alpha/Beta are this graph's hybrid direction-switch thresholds. When
	// the server's engine direction is not top-down and either is zero,
	// AddGraph derives both from the mounted graph's degree distribution.
	Alpha, Beta int
	// RateLimit overrides the server-wide per-tenant rate limit for queries
	// against this graph; nil uses Config.RateLimit.
	RateLimit *RateLimitConfig

	// limiter is the materialized per-graph bucket scope (nil = use the
	// server-wide limiter).
	limiter *limiter
}

func (g *Graph) weighted() bool {
	if w, ok := g.Adj.(interface{ Weighted() bool }); ok {
		return w.Weighted()
	}
	return false
}

func (g *Graph) numEdges() uint64 {
	if m, ok := g.Adj.(interface{ NumEdges() uint64 }); ok {
		return m.NumEdges()
	}
	return 0
}

// Server answers traversal queries over shared read-only graph stores.
// Create with New, register stores with AddGraph, and mount Handler on an
// http.Server. Safe for concurrent use.
type Server struct {
	cfg   Config
	pool  *core.EnginePool[uint32]
	admit *admission
	cache *resultCache // nil when disabled
	hist  *histogram

	mu     sync.RWMutex
	graphs map[string]*Graph

	limit *limiter // server-wide rate-limit scope; nil when disabled

	queriesTotal       atomic.Uint64
	queriesFailed      atomic.Uint64
	queriesCanceled    atomic.Uint64
	queriesDeadline    atomic.Uint64
	queriesRateLimited atomic.Uint64

	// Direction-controller counters, accumulated across every BFS that ran
	// the phase driver (all zero under pure top-down).
	tdPhases     atomic.Uint64
	buPhases     atomic.Uint64
	dirSwitches  atomic.Uint64
	peakFrontier atomic.Uint64 // high-water mark across queries

	vars *expvar.Map
	mux  *http.ServeMux
}

// New creates a Server with no graphs loaded.
func New(cfg Config) *Server {
	cfg.normalize()
	s := &Server{
		cfg:    cfg,
		pool:   core.NewEnginePool[uint32](cfg.Engine),
		admit:  newAdmission(&cfg),
		hist:   newHistogram(),
		limit:  newLimiter(cfg.RateLimit),
		graphs: make(map[string]*Graph),
	}
	if cfg.CacheEntries > 0 {
		s.cache = newResultCache(cfg.CacheEntries)
	}
	s.vars = s.buildVars()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/graphs", s.handleGraphs)
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	return s
}

// AddGraph registers a store under g.Name. Graphs may be added while the
// server is live; replacing or removing one is not supported (stores are
// immutable and cached results never go stale).
func (s *Server) AddGraph(g Graph) error {
	if g.Name == "" {
		return errors.New("server: graph name must be non-empty")
	}
	if g.Adj == nil {
		return fmt.Errorf("server: graph %q has no adjacency store", g.Name)
	}
	if g.Storage == "" {
		g.Storage = "im"
	}
	if g.Device != nil && len(g.Devices) == 0 {
		g.Devices = []*ssd.Device{g.Device}
	}
	if g.BlockCache != nil && len(g.BlockCaches) == 0 {
		g.BlockCaches = []*sem.CachedStore{g.BlockCache}
	}
	if g.Shards == 0 {
		if sh, ok := g.Adj.(interface{ NumShards() int }); ok {
			g.Shards = sh.NumShards()
		}
	}
	if g.RateLimit != nil {
		g.limiter = newLimiter(*g.RateLimit)
	}
	if dir := s.pool.Config().Direction; dir != core.DirectionTopDown {
		// Fail at load time, not on the first query: every served graph must
		// carry in-edges when the engine direction needs them.
		if _, ok := graph.InEdges[uint32](g.Adj); !ok {
			return fmt.Errorf("server: graph %q: %w (direction %s needs a graph written with in-edges)", g.Name, core.ErrNoInEdges, dir)
		}
		if g.Alpha <= 0 || g.Beta <= 0 {
			g.Alpha, g.Beta = graph.DegreesOf[uint32](g.Adj).DirectionThresholds()
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.graphs[g.Name]; dup {
		return fmt.Errorf("server: graph %q already loaded", g.Name)
	}
	s.graphs[g.Name] = &g
	return nil
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) graph(name string) *Graph {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.graphs[name]
}

// --- request/response shapes ---

type queryRequest struct {
	Graph  string `json:"graph"`
	Kernel string `json:"kernel"` // bfs | sssp | cc
	Source uint64 `json:"source"` // ignored for cc
	// Targets selects vertices whose state is returned; empty returns a
	// whole-traversal summary instead.
	Targets []uint64 `json:"targets,omitempty"`
	// TimeoutMs lowers the per-query deadline below Config.QueryTimeout.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses the result cache for this request (read and fill).
	NoCache bool `json:"no_cache,omitempty"`
}

type targetState struct {
	Vertex  uint64  `json:"vertex"`
	Reached bool    `json:"reached"`
	Value   uint64  `json:"value"` // level (bfs), distance (sssp), component id (cc)
	Parent  *uint64 `json:"parent,omitempty"`
}

type querySummary struct {
	Vertices   uint64 `json:"vertices"`
	Reached    uint64 `json:"reached"`
	MaxValue   uint64 `json:"max_value"` // largest finite label
	Components uint64 `json:"components,omitempty"`
}

type queryStats struct {
	Visits          uint64 `json:"visits"`
	Pushes          uint64 `json:"pushes"`
	MaxQueue        int    `json:"max_queue"`
	PeakOutstanding int64  `json:"peak_outstanding"`
	Workers         int    `json:"workers"`
	// Direction-controller counters; present only when the BFS ran the
	// phase driver (a non-top-down engine direction).
	TopDownPhases     int    `json:"topdown_phases,omitempty"`
	BottomUpPhases    int    `json:"bottomup_phases,omitempty"`
	DirectionSwitches int    `json:"direction_switches,omitempty"`
	PeakFrontier      uint64 `json:"peak_frontier,omitempty"`
}

type queryResponse struct {
	Graph     string        `json:"graph"`
	Kernel    string        `json:"kernel"`
	Source    uint64        `json:"source"`
	Cached    bool          `json:"cached"`
	ElapsedMs float64       `json:"elapsed_ms"` // traversal time of the (possibly cached) run
	Stats     queryStats    `json:"stats"`
	Targets   []targetState `json:"targets,omitempty"`
	Summary   *querySummary `json:"summary,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Best effort: the status line is already on the wire, so an encode
	// failure here can only mean the client went away mid-response.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// --- handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, s.vars.String())
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	type graphInfo struct {
		Name     string `json:"name"`
		Vertices uint64 `json:"vertices"`
		Edges    uint64 `json:"edges"`
		Weighted bool   `json:"weighted"`
		Storage  string `json:"storage"`
		Shards   int    `json:"shards,omitempty"`
	}
	s.mu.RLock()
	infos := make([]graphInfo, 0, len(s.graphs))
	for _, g := range s.graphs {
		infos = append(infos, graphInfo{
			Name:     g.Name,
			Vertices: g.Adj.NumVertices(),
			Edges:    g.numEdges(),
			Weighted: g.weighted(),
			Storage:  g.Storage,
			Shards:   g.Shards,
		})
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"graphs": infos})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	g := s.graph(req.Graph)
	if g == nil {
		writeError(w, http.StatusNotFound, "unknown graph %q (see /v1/graphs)", req.Graph)
		return
	}
	switch req.Kernel {
	case "bfs", "sssp":
		if req.Source >= g.Adj.NumVertices() {
			writeError(w, http.StatusBadRequest, "source %d out of range for %d vertices", req.Source, g.Adj.NumVertices())
			return
		}
	case "cc":
		req.Source = 0 // cc has no source; normalize so the cache key is canonical
	default:
		writeError(w, http.StatusBadRequest, "unknown kernel %q (want bfs, sssp, or cc)", req.Kernel)
		return
	}
	for _, t := range req.Targets {
		if t >= g.Adj.NumVertices() {
			writeError(w, http.StatusBadRequest, "target %d out of range for %d vertices", t, g.Adj.NumVertices())
			return
		}
	}

	s.queriesTotal.Add(1)
	key := s.cacheKeyFor(&req, g)
	if s.cache != nil && !req.NoCache {
		if res, ok := s.cache.get(key); ok {
			s.render(w, &req, res, true)
			return
		}
	}

	// Serving policy inputs: tenant identity, SLO class, and the absolute
	// deadline. The deadline is fixed before admission so queue wait spends
	// the same budget the traversal runs under — that is what makes
	// deadline-aware shedding mean something.
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		tenant = DefaultTenant
	}
	class := ParseSLOClass(r.Header.Get(ClassHeader))
	timeout := s.cfg.QueryTimeout
	if req.TimeoutMs > 0 {
		if d := time.Duration(req.TimeoutMs) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	deadline := time.Now().Add(timeout)

	// Rate limiting sits between the cache and admission: cached replies
	// cost no traversal and consume no tokens, everything else draws from
	// the tenant's bucket (the graph's own scope when configured).
	lim := g.limiter
	if lim == nil {
		lim = s.limit
	}
	if !lim.allow(tenant) {
		s.queriesRateLimited.Add(1)
		w.Header().Set(RejectReasonHeader, "rate-limit")
		writeError(w, http.StatusTooManyRequests, "server: tenant %q over its request rate", tenant)
		return
	}

	if err := s.admit.acquire(r.Context(), class, deadline); err != nil {
		switch {
		case errors.Is(err, ErrOverloaded):
			w.Header().Set(RejectReasonHeader, "queue-full")
			writeError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, ErrQueueTimeout):
			w.Header().Set(RejectReasonHeader, "queue-timeout")
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, ErrDeadlineShed):
			w.Header().Set(RejectReasonHeader, "deadline-shed")
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		default: // client went away while queued
			s.queriesCanceled.Add(1)
		}
		return
	}

	ctx, cancel := context.WithDeadline(r.Context(), deadline)
	defer cancel()

	start := time.Now()
	res, err := s.runQuery(ctx, g, req.Kernel, uint32(req.Source))
	elapsed := time.Since(start)
	s.admit.release(elapsed)
	s.hist.observe(elapsed)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.queriesDeadline.Add(1)
			writeError(w, http.StatusGatewayTimeout, "query exceeded its %v deadline", timeout)
		case errors.Is(err, context.Canceled):
			s.queriesCanceled.Add(1) // client disconnected; nothing to write
		default:
			s.queriesFailed.Add(1)
			writeError(w, http.StatusInternalServerError, "traversal failed: %v", err)
		}
		return
	}
	res.elapsed = elapsed
	if s.cache != nil && !req.NoCache {
		s.cache.put(key, res)
	}
	s.render(w, &req, res, false)
}

// cacheKeyFor builds the result-cache key for one validated request. Every
// result-determining input must appear here: graph name, kernel, source,
// weights-mode, and the engine's traversal direction (parent trees are
// direction-specific even when levels agree).
func (s *Server) cacheKeyFor(req *queryRequest, g *Graph) cacheKey {
	return cacheKey{
		graph:     req.Graph,
		kernel:    req.Kernel,
		source:    req.Source,
		weighted:  g.weighted(),
		direction: s.pool.Config().Direction,
	}
}

// runQuery executes one traversal on the engine pool and snapshots its
// vertex state. CC component ids are widened into the shared label array
// with the NoVertex sentinel mapped to InfDist, so "reached" means the same
// thing for every kernel.
func (s *Server) runQuery(ctx context.Context, g *Graph, kernel string, src uint32) (*queryResult, error) {
	switch kernel {
	case "bfs":
		var r *core.BFSResult[uint32]
		var err error
		if cfg := s.pool.Config(); cfg.Direction != core.DirectionTopDown {
			// The direction driver is level-synchronous and holds no engine
			// resources, so it runs outside the pool, under this graph's own
			// switch thresholds.
			cfg.Context = ctx
			cfg.Alpha, cfg.Beta = g.Alpha, g.Beta
			r, err = core.BFS[uint32](g.Adj, src, cfg)
		} else {
			r, err = s.pool.BFS(ctx, g.Adj, src)
		}
		if err != nil {
			return nil, err
		}
		s.noteDirection(r.Stats)
		return &queryResult{labels: r.Level, parent: r.Parent, stats: r.Stats}, nil
	case "sssp":
		r, err := s.pool.SSSP(ctx, g.Adj, src)
		if err != nil {
			return nil, err
		}
		return &queryResult{labels: r.Dist, parent: r.Parent, stats: r.Stats}, nil
	case "cc":
		r, err := s.pool.CC(ctx, g.Adj)
		if err != nil {
			return nil, err
		}
		labels := make([]graph.Dist, len(r.ID))
		no := graph.NoVertex[uint32]()
		for i, id := range r.ID {
			if id == no {
				labels[i] = graph.InfDist
			} else {
				labels[i] = graph.Dist(id)
			}
		}
		return &queryResult{labels: labels, stats: r.Stats}, nil
	}
	return nil, fmt.Errorf("server: unknown kernel %q", kernel)
}

// noteDirection folds one BFS run's phase counters into the server-wide
// direction metrics. Runs on the pure asynchronous kernel report no phases
// and are skipped.
func (s *Server) noteDirection(st core.Stats) {
	if st.TopDownPhases == 0 && st.BottomUpPhases == 0 {
		return
	}
	s.tdPhases.Add(uint64(st.TopDownPhases))
	s.buPhases.Add(uint64(st.BottomUpPhases))
	s.dirSwitches.Add(uint64(st.DirectionSwitches))
	for {
		cur := s.peakFrontier.Load()
		if st.PeakFrontier <= cur || s.peakFrontier.CompareAndSwap(cur, st.PeakFrontier) {
			return
		}
	}
}

// render writes the response for one request from a (possibly shared)
// snapshot: the requested targets' states, or a whole-traversal summary.
func (s *Server) render(w http.ResponseWriter, req *queryRequest, res *queryResult, cached bool) {
	resp := queryResponse{
		Graph:     req.Graph,
		Kernel:    req.Kernel,
		Source:    req.Source,
		Cached:    cached,
		ElapsedMs: ms(res.elapsed),
		Stats: queryStats{
			Visits:            res.stats.Visits,
			Pushes:            res.stats.Pushes,
			MaxQueue:          res.stats.MaxQueue,
			PeakOutstanding:   res.stats.PeakOutstanding,
			Workers:           res.stats.Workers,
			TopDownPhases:     res.stats.TopDownPhases,
			BottomUpPhases:    res.stats.BottomUpPhases,
			DirectionSwitches: res.stats.DirectionSwitches,
			PeakFrontier:      res.stats.PeakFrontier,
		},
	}
	if len(req.Targets) > 0 {
		no := graph.NoVertex[uint32]()
		resp.Targets = make([]targetState, len(req.Targets))
		for i, v := range req.Targets {
			ts := targetState{Vertex: v, Reached: res.labels[v] != graph.InfDist}
			if ts.Reached {
				ts.Value = res.labels[v]
				if res.parent != nil && res.parent[v] != no {
					p := uint64(res.parent[v])
					ts.Parent = &p
				}
			}
			resp.Targets[i] = ts
		}
	} else {
		sum := &querySummary{Vertices: uint64(len(res.labels))}
		for v, l := range res.labels {
			if l == graph.InfDist {
				continue
			}
			sum.Reached++
			if l > sum.MaxValue {
				sum.MaxValue = l
			}
			// A CC component's id is its minimum member, so roots (label ==
			// own index) count components in one pass.
			if req.Kernel == "cc" && l == graph.Dist(v) {
				sum.Components++
			}
		}
		resp.Summary = sum
	}
	writeJSON(w, http.StatusOK, resp)
}
