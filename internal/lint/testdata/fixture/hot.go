package fixture

import (
	"fmt"
	"time"
)

//lint:hotpath
func hotVisit(labels []uint64, v uint64) string {
	s := fmt.Sprintf("v=%d", v)     // violation: fmt call
	t := time.Now()                 // violation: time.Now
	seen := make(map[uint64]bool)   // violation: map make
	extra := map[string]int{"x": 1} // violation: map composite literal
	f := func() { labels[v] = 1 }   // violation: closure allocation
	f()
	seen[v] = true
	_ = extra
	_ = t
	return s
}

// coldVisit does all the same things without the annotation: no diagnostics.
func coldVisit(labels []uint64, v uint64) string {
	s := fmt.Sprintf("v=%d", v)
	t := time.Now()
	seen := make(map[uint64]bool)
	f := func() { labels[v] = 1 }
	f()
	seen[v] = true
	_ = t
	return s
}

//lint:hotpath
func hotClean(labels []uint64, v uint64) {
	// Slices and arithmetic are fine on the hot path.
	buf := make([]uint64, 0, 4)
	buf = append(buf, v)
	labels[v] = buf[0]
}
