package pq

import (
	"math/rand/v2"
	"testing"
)

func TestHeapPopBatchMatchesSuccessivePops(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 12))
	a, b := New(true), New(true)
	for i := 0; i < 500; i++ {
		it := Item{Pri: r.Uint64N(64), V: r.Uint64()}
		a.Push(it)
		b.Push(it)
	}
	var batch []Item
	for a.Len() > 0 {
		batch = a.PopBatch(batch[:0], 7)
		if len(batch) == 0 {
			t.Fatal("PopBatch returned nothing from a non-empty heap")
		}
		for _, got := range batch {
			want, ok := b.Pop()
			if !ok || got != want {
				t.Fatalf("PopBatch item %+v, successive Pop gave %+v (ok=%v)", got, want, ok)
			}
		}
	}
	if b.Len() != 0 {
		t.Fatalf("reference heap still holds %d items", b.Len())
	}
}

func TestHeapPopBatchBounds(t *testing.T) {
	h := New(false)
	if got := h.PopBatch(nil, 4); len(got) != 0 {
		t.Fatalf("empty heap PopBatch = %v", got)
	}
	h.Push(Item{Pri: 3, V: 30})
	h.Push(Item{Pri: 1, V: 10})
	got := h.PopBatch(nil, 8) // k beyond Len drains and stops
	if len(got) != 2 || got[0].V != 10 || got[1].V != 30 {
		t.Fatalf("PopBatch = %v, want items 10 then 30", got)
	}
	if h.Len() != 0 {
		t.Fatalf("heap not drained: %d left", h.Len())
	}
	// dst is appended to, preserving the caller's prefix.
	h.Push(Item{Pri: 5, V: 50})
	pre := []Item{{Pri: 99, V: 99}}
	got = h.PopBatch(pre, 1)
	if len(got) != 2 || got[0].V != 99 || got[1].V != 50 {
		t.Fatalf("PopBatch with prefix = %v", got)
	}
}

func TestBucketPopBatchCurrentBucketOnly(t *testing.T) {
	q := NewBucket()
	for _, it := range []Item{
		{Pri: 2, V: 20}, {Pri: 1, V: 10}, {Pri: 1, V: 11}, {Pri: 1, V: 12}, {Pri: 2, V: 21},
	} {
		q.Push(it)
	}
	// The batch never crosses a priority boundary, even with k to spare.
	got := q.PopBatch(nil, 10)
	if len(got) != 3 {
		t.Fatalf("PopBatch = %v, want the 3 priority-1 items", got)
	}
	for i, it := range got {
		if it.Pri != 1 || it.V != uint64(10+i) {
			t.Fatalf("PopBatch[%d] = %+v, want pri 1 in FIFO order", i, it)
		}
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2 priority-2 items left", q.Len())
	}
	got = q.PopBatch(nil, 10)
	if len(got) != 2 || got[0].V != 20 || got[1].V != 21 {
		t.Fatalf("second PopBatch = %v, want priority-2 items in FIFO order", got)
	}
	if got := q.PopBatch(nil, 4); len(got) != 0 {
		t.Fatalf("empty queue PopBatch = %v", got)
	}
}

func TestBucketPopBatchPartialDrain(t *testing.T) {
	q := NewBucket()
	for v := uint64(0); v < 6; v++ {
		q.Push(Item{Pri: 4, V: v})
	}
	got := q.PopBatch(nil, 4)
	if len(got) != 4 {
		t.Fatalf("PopBatch = %d items, want 4", len(got))
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	// The remainder of the bucket stays poppable in FIFO order.
	for want := uint64(4); want < 6; want++ {
		it, ok := q.Pop()
		if !ok || it.V != want {
			t.Fatalf("Pop = %+v (ok=%v), want V=%d", it, ok, want)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestQueueInterfacePopBatch(t *testing.T) {
	for _, q := range []Queue{New(true), NewBucket()} {
		q.Push(Item{Pri: 1, V: 1})
		if got := q.PopBatch(nil, 3); len(got) < 1 {
			t.Fatalf("%T: PopBatch on non-empty queue returned nothing", q)
		}
	}
}
