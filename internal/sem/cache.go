package sem

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// CachedStore wraps a Store with a fixed-budget block cache. The paper's
// semi-external runs read edge lists through the OS page cache (16 GB of RAM
// against 9-136 GB of graph), and the visitor queues' secondary vertex-id
// sort exists precisely to raise that cache's hit rate by "semi-sorting
// access" (§IV-C). CachedStore makes the same mechanism explicit and
// measurable: device reads happen in aligned blocks, recently used blocks are
// kept under a byte budget, and hit/miss counters expose the locality the
// semi-sort buys.
type CachedStore struct {
	inner     Store
	blockSize int64
	size      int64 // backing size, for tail-block clamping
	maxBlock  int64 // number of device blocks
	readahead int   // blocks fetched per miss (>= 1)
	capBlocks int64 // total block budget across shards
	shards    []cacheShard

	// policy, when non-nil, scores blocks at eviction time (see CachePolicy);
	// nil is exact LRU. Set once via UsePolicy/EnableStatePolicy before the
	// store sees traffic.
	policy CachePolicy

	// resident is a bitset over block ids: a set bit means the block is
	// cached or being fetched. It gives the prefetcher and the recency-touch
	// path a residency answer without taking shard locks on the hot path.
	resident []atomic.Uint64

	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheShard struct {
	mu       sync.Mutex
	capacity int // max cached blocks in this shard
	blocks   map[int64]*list.Element
	lru      *list.List // front = most recent; values are *cacheEntry
}

type cacheEntry struct {
	id    int64
	data  []byte
	ready chan struct{} // closed once data/err are set (singleflight)
	err   error
}

// Sizer is implemented by stores that know their total size (ssd.Device,
// os.File via a wrapper). CachedStore needs it to clamp the final block.
type Sizer interface{ Size() int64 }

// NewCachedStore creates a block cache over inner with the given block size
// and total capacity in bytes, and no readahead. inner must implement Sizer.
func NewCachedStore(inner Store, blockSize int, capacityBytes int64) (*CachedStore, error) {
	return NewCachedStoreRA(inner, blockSize, capacityBytes, 1)
}

// NewCachedStoreRA additionally fetches `readahead` consecutive blocks per
// miss in a single device operation, the way the OS page cache's readahead
// turns the semi-sorted edge sweep into large sequential transfers. One
// operation's latency is charged regardless of span; the extra bytes pay only
// the device's bandwidth term, matching sequential-transfer behaviour.
func NewCachedStoreRA(inner Store, blockSize int, capacityBytes int64, readahead int) (*CachedStore, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("sem: block size must be positive, got %d", blockSize)
	}
	if readahead < 1 {
		readahead = 1
	}
	szr, ok := inner.(Sizer)
	if !ok {
		return nil, fmt.Errorf("sem: cached store requires a store with a known size")
	}
	// Shard the lock only as far as the budget supports: a shard needs a
	// meaningful victim set (>= minShardBlocks) for any replacement order —
	// recency or score — to express a preference. Splitting a small budget 16
	// ways leaves one block per shard, and every install evicts the only
	// other resident whatever the policy says. Large budgets keep the full
	// shard count for lock spreading.
	const maxShards, minShardBlocks = 16, 32
	totalBlocks := capacityBytes / int64(blockSize)
	numShards := int(totalBlocks / minShardBlocks)
	if numShards > maxShards {
		numShards = maxShards
	}
	if numShards < 1 {
		numShards = 1
	}
	perShard := int(totalBlocks) / numShards
	if perShard < 1 {
		perShard = 1
	}
	c := &CachedStore{
		inner:     inner,
		blockSize: int64(blockSize),
		size:      szr.Size(),
		readahead: readahead,
		capBlocks: int64(perShard) * int64(numShards),
		shards:    make([]cacheShard, numShards),
	}
	c.maxBlock = (c.size + c.blockSize - 1) / c.blockSize
	c.resident = make([]atomic.Uint64, (c.maxBlock+63)/64)
	for i := range c.shards {
		c.shards[i] = cacheShard{
			capacity: perShard,
			blocks:   make(map[int64]*list.Element),
			lru:      list.New(),
		}
	}
	return c, nil
}

// UsePolicy installs an eviction policy (nil = exact LRU). Call before the
// store sees traffic; the policy pointer is read without synchronization on
// the miss path.
func (c *CachedStore) UsePolicy(p CachePolicy) { c.policy = p }

// EnableStatePolicy installs a state-aware policy sized for this store and
// returns it so the settle hook can feed it. Call before traffic.
func (c *CachedStore) EnableStatePolicy() *StatePolicy {
	sp := NewStatePolicy(c.maxBlock)
	sp.onHot = c.touch
	c.policy = sp
	return sp
}

// touch refreshes block id's recency if it is resident. The state policy
// calls it when a block gains its first pending visitor: the engine just
// queued a vertex whose adjacency lives there, so the block will be read
// within a pop-window's time. Pure LRU would leave it wherever its *last*
// read put it — often the tail, evicted in the push-to-pop gap and then
// re-read from the device moments later. The residency bitset pre-filters
// non-resident blocks, so the common cold-block case costs one atomic load
// and no lock.
//
//lint:hotpath
func (c *CachedStore) touch(id int64) {
	if id < 0 || id >= c.maxBlock {
		return
	}
	if c.resident[id>>6].Load()&(1<<(uint(id)&63)) == 0 {
		return
	}
	sh := c.shard(id)
	sh.mu.Lock()
	if el, ok := sh.blocks[id]; ok {
		sh.lru.MoveToFront(el)
	}
	sh.mu.Unlock()
}

// PolicyName reports the active eviction policy's flag spelling.
func (c *CachedStore) PolicyName() string {
	if c.policy == nil {
		return PolicyLRU
	}
	return c.policy.Name()
}

// PinnedHW reports the state policy's pinned-block high-water mark (0 under
// plain LRU).
func (c *CachedStore) PinnedHW() int64 {
	if sp, ok := c.policy.(*StatePolicy); ok {
		return sp.PinnedHW()
	}
	return 0
}

// setResident / clearResident maintain the residency bitset.
func (c *CachedStore) setResident(id int64) {
	if id >= 0 && id < c.maxBlock {
		c.resident[id>>6].Or(1 << (uint(id) & 63))
	}
}

func (c *CachedStore) clearResident(id int64) {
	if id >= 0 && id < c.maxBlock {
		c.resident[id>>6].And(^uint64(1 << (uint(id) & 63)))
	}
}

// residentRange reports whether every block covering [off, off+n) is cached
// or already being fetched. The prefetcher uses it to drop extents from span
// formation: a fully resident extent is served by a synchronous cache hit at
// visit time, so putting it in a device span would re-read bytes the cache
// already holds. Lock-free bitset probes; an in-flight block counts as
// resident because the visit-time hit simply waits on that fetch.
//
//lint:hotpath
func (c *CachedStore) residentRange(off int64, n int) bool {
	if n <= 0 {
		return true
	}
	last := (off + int64(n) - 1) / c.blockSize
	for b := off / c.blockSize; b <= last; b++ {
		if b < 0 || b >= c.maxBlock {
			return false
		}
		if c.resident[b>>6].Load()&(1<<(uint(b)&63)) == 0 {
			return false
		}
	}
	return true
}

// Stats reports cache hits and misses (block granularity).
func (c *CachedStore) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Size implements Sizer.
func (c *CachedStore) Size() int64 { return c.size }

func (c *CachedStore) shard(id int64) *cacheShard {
	return &c.shards[uint64(id)%uint64(len(c.shards))]
}

// install adds an in-flight placeholder for id to its shard, evicting
// entries past capacity. Returns (nil, existing) when id is already present.
func (c *CachedStore) install(id int64, entry *cacheEntry) (el *list.Element, existing *cacheEntry) {
	sh := c.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cur, ok := sh.blocks[id]; ok {
		sh.lru.MoveToFront(cur)
		return nil, cur.Value.(*cacheEntry)
	}
	el = sh.lru.PushFront(entry)
	sh.blocks[id] = el
	c.setResident(id)
	c.evictLocked(sh, el)
	return el, nil
}

// dropLocked removes one entry from the shard's list, map, and the residency
// bitset. Caller holds sh.mu.
func (c *CachedStore) dropLocked(sh *cacheShard, el *list.Element) {
	ent := el.Value.(*cacheEntry)
	sh.lru.Remove(el)
	delete(sh.blocks, ent.id)
	c.clearResident(ent.id)
}

// evictSampleSlack bounds how far past the overflow count the state-aware
// eviction pass looks for settled blocks before it starts evicting pinned
// ones. It caps the lock-hold time at O(overflow + slack), and it also bounds
// how far the policy may deviate from LRU order: on power-law graphs a hub
// block's counter dips to zero between label corrections, and a wide sample
// evicts exactly those about-to-be-re-queued blocks. A few positions of slack
// keep the settled-first preference without surrendering the recency signal.
const evictSampleSlack = 4

// evictLocked brings the shard back under capacity in one batched
// back-to-front pass (keep, when non-nil, is never evicted). With no policy
// this is exact LRU: the tail entries are dropped oldest-first. With a policy
// it samples the tail, evicting settled blocks (score 0) oldest-first and
// falling back to plain LRU order over the sample when the shard is over
// capacity with everything pinned — capacity is a hard budget, and recency
// beats near-uniform positive scores as a reuse predictor. Caller holds
// sh.mu.
func (c *CachedStore) evictLocked(sh *cacheShard, keep *list.Element) {
	over := sh.lru.Len() - sh.capacity
	if over <= 0 {
		return
	}
	if c.policy == nil {
		for el := sh.lru.Back(); el != nil && over > 0; {
			prev := el.Prev()
			if el != keep {
				c.dropLocked(sh, el)
				over--
			}
			el = prev
		}
		return
	}
	type victim struct {
		el    *list.Element
		score int64
	}
	cand := make([]victim, 0, over+evictSampleSlack)
	for el := sh.lru.Back(); el != nil && len(cand) < cap(cand); el = el.Prev() {
		if el == keep {
			continue
		}
		cand = append(cand, victim{el, c.policy.Score(el.Value.(*cacheEntry).id)})
	}
	// First pass: settled blocks, oldest first.
	for i := range cand {
		if over == 0 {
			return
		}
		if cand[i].score == 0 {
			c.dropLocked(sh, cand[i].el)
			cand[i].el = nil
			over--
		}
	}
	// Still over capacity: everything sampled is pinned, and pending-work
	// counts carry no recency signal — when the frontier spans several times
	// the cache, nearly every block scores positive and score differences are
	// noise. Fall back to LRU order (cand is back-to-front, oldest first):
	// capacity is a hard budget, and recency is the best remaining predictor.
	for i := range cand {
		if over == 0 {
			return
		}
		if cand[i].el != nil {
			c.dropLocked(sh, cand[i].el)
			cand[i].el = nil
			over--
		}
	}
}

// Resize changes the cache's total byte capacity at runtime, shrinking each
// shard in one batched eviction pass instead of a per-entry lock-and-walk.
func (c *CachedStore) Resize(capacityBytes int64) {
	perShard := int(capacityBytes / c.blockSize / int64(len(c.shards)))
	if perShard < 1 {
		perShard = 1
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.capacity = perShard
		c.evictLocked(sh, nil)
		sh.mu.Unlock()
	}
}

func (c *CachedStore) remove(id int64, el *list.Element) {
	sh := c.shard(id)
	sh.mu.Lock()
	if cur, ok := sh.blocks[id]; ok && cur == el {
		c.dropLocked(sh, el)
	}
	sh.mu.Unlock()
}

func (c *CachedStore) await(entry *cacheEntry) ([]byte, error) {
	<-entry.ready // no-op for completed entries
	if entry.err != nil {
		return nil, entry.err
	}
	c.hits.Add(1)
	return entry.data, nil
}

// block returns the cached contents of block id, fetching from the device on
// a miss. Concurrent misses on the same block share one device read
// (singleflight): with hundreds of visitors sweeping the same id range, the
// first requester fetches and the rest wait on the in-flight entry — without
// this, a cold block would be read once per waiting visitor. Each miss
// fetches up to `readahead` consecutive blocks in one device operation.
func (c *CachedStore) block(id int64) ([]byte, error) {
	sh := c.shard(id)
	sh.mu.Lock()
	if el, ok := sh.blocks[id]; ok {
		sh.lru.MoveToFront(el)
		entry := el.Value.(*cacheEntry)
		sh.mu.Unlock()
		return c.await(entry)
	}
	sh.mu.Unlock()

	maxBlock := (c.size + c.blockSize - 1) / c.blockSize
	if id >= maxBlock || id < 0 {
		return nil, fmt.Errorf("sem: cache read beyond device end (block %d)", id)
	}
	span := int64(c.readahead)
	if id+span > maxBlock {
		span = maxBlock - id
	}
	// State-aware span shaping: a miss's readahead window extends through
	// the contiguous run of blocks with pending visitors. Those blocks are
	// guaranteed future reads — the settle counters say queued work targets
	// them — so fetching them now converts their upcoming miss operations
	// into hits for only the bandwidth term of this one operation. The
	// extension is capped at 4x the legacy readahead and at half of the
	// cache's block budget: an uncapped span can install the entire cache
	// in one miss and flush exactly the residency it is trying to build
	// (measured as a ~10-20% read regression when the span reaches the
	// whole budget). Blocks past the pending run are never fetched
	// beyond the legacy window, so a cold start or a settled region reads
	// exactly as before.
	if c.policy != nil {
		max := 4 * int64(c.readahead)
		if cb := c.capBlocks / 2; cb < max {
			max = cb
		}
		if id+max > maxBlock {
			max = maxBlock - id
		}
		k := span
		for k < max && c.policy.Score(id+k) > 0 {
			k++
		}
		span = k
	}

	// Install placeholders for every absent block of the span. If block id
	// itself appears concurrently, another fetcher owns it: wait on theirs.
	type owned struct {
		id    int64
		el    *list.Element
		entry *cacheEntry
	}
	var mine []owned
	for k := int64(0); k < span; k++ {
		bid := id + k
		entry := &cacheEntry{id: bid, ready: make(chan struct{})}
		el, existing := c.install(bid, entry)
		if existing != nil {
			if k == 0 {
				return c.await(existing)
			}
			continue // already cached or being fetched by someone else
		}
		mine = append(mine, owned{id: bid, el: el, entry: entry})
	}
	c.misses.Add(1)

	// One device operation covers the whole span; extra blocks pay only the
	// bandwidth term, as with OS readahead.
	off := id * c.blockSize
	n := span * c.blockSize
	if off+n > c.size {
		n = c.size - off
	}
	data := make([]byte, n)
	_, err := c.inner.ReadAt(data, off)
	var out []byte
	for _, o := range mine {
		if err != nil {
			o.entry.err = err
			close(o.entry.ready)
			c.remove(o.id, o.el) // drop so later reads can retry
			continue
		}
		lo := (o.id - id) * c.blockSize
		hi := lo + c.blockSize
		if hi > n {
			hi = n
		}
		o.entry.data = data[lo:hi:hi]
		close(o.entry.ready)
		if o.id == id {
			out = o.entry.data
		}
	}
	if err != nil {
		return nil, err
	}
	if out == nil {
		// id was concurrently owned elsewhere and we fetched only trailing
		// blocks; fall back to the (now-present or refetchable) entry.
		return c.block(id)
	}
	return out, nil
}

// ReadAt implements Store, assembling the request from cached blocks.
func (c *CachedStore) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("sem: negative read offset %d", off)
	}
	read := 0
	for read < len(p) {
		pos := off + int64(read)
		id := pos / c.blockSize
		data, err := c.block(id)
		if err != nil {
			return read, err
		}
		inBlock := pos - id*c.blockSize
		if inBlock >= int64(len(data)) {
			return read, fmt.Errorf("sem: read past end of device at offset %d", pos)
		}
		read += copy(p[read:], data[inBlock:])
	}
	return read, nil
}
