package fixture

import (
	"context"
	"sync"
)

// Seeded spawnjoin violations and accepted joins.

// fireAndForget spawns a goroutine with no join signal of any kind:
// violation.
func fireAndForget(work func()) {
	go func() {
		work()
	}()
}

// unbufferedResult's goroutine signals completion only by sending on an
// unbuffered channel the spawner never receives from; an abandoned caller
// leaks the goroutine: violation.
func unbufferedResult() chan int {
	ch := make(chan int)
	go func() {
		ch <- 42
	}()
	return ch
}

// joinedByWaitGroup is the canonical join: no diagnostic.
func joinedByWaitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// joinedByClose signals completion by closing a done channel: no diagnostic.
func joinedByClose() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	return done
}

// contextWatcher is bounded by its context's lifetime: no diagnostic.
func contextWatcher(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// bufferedResult sends on a buffered channel: the goroutine cannot wedge
// even if the receiver walks away. No diagnostic.
func bufferedResult() chan int {
	ch := make(chan int, 1)
	go func() {
		ch <- 42
	}()
	return ch
}

// receivedHere sends on an unbuffered channel, but the spawner itself
// receives from it: a synchronous join. No diagnostic.
func receivedHere() int {
	ch := make(chan int)
	go func() {
		ch <- 42
	}()
	return <-ch
}

// retirer joins through a named-method chain: spawn -> work -> retire ->
// wg.Done, visible only interprocedurally. No diagnostic.
type retirer struct{ wg sync.WaitGroup }

func (r *retirer) retire() { r.wg.Done() }

func (r *retirer) work() { defer r.retire() }

func (r *retirer) spawn() {
	r.wg.Add(1)
	go r.work()
	r.wg.Wait()
}

// detachedFlusher is detached by design and documented: no diagnostic.
func detachedFlusher(tick <-chan struct{}) {
	//lint:spawnjoin process-lifetime flusher, detached by design
	go func() {
		for range tick {
			continue
		}
	}()
}
