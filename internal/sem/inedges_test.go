package sem

import (
	"bytes"
	"sort"
	"testing"

	"repro/internal/graph"
)

// openWith serializes g per cfg and reopens it over an in-memory store.
func openWith(t testing.TB, g *graph.CSR[uint32], cfg WriteConfig) *Graph[uint32] {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, g, cfg); err != nil {
		t.Fatal(err)
	}
	sg, err := Open[uint32](bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return sg
}

// TestInEdgeSectionRoundTrip checks that InDegree/InNeighbors served from
// the on-flash in-edge section (v1 and v2) match the in-memory transpose
// edge-for-edge, and that stores written without the section decline the
// capability.
func TestInEdgeSectionRoundTrip(t *testing.T) {
	g := buildGraph(t, 200, 1200, true, 21) // weighted: in-section must not inherit weights
	rev, err := graph.Transpose(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		cfg  WriteConfig
	}{
		{"v1", WriteConfig{InEdges: true}},
		{"v2", WriteConfig{Compress: true, InEdges: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sg := openWith(t, g, tc.cfg)
			if !sg.HasInEdges() {
				t.Fatal("store with in-edge section reports HasInEdges=false")
			}
			if _, ok := graph.InEdges[uint32](sg); !ok {
				t.Fatal("graph.InEdges declined a store with an in-edge section")
			}
			scratch := &graph.Scratch[uint32]{}
			revScratch := &graph.Scratch[uint32]{}
			for v := uint32(0); uint64(v) < g.NumVertices(); v++ {
				if got, want := sg.InDegree(v), rev.Degree(v); got != want {
					t.Fatalf("InDegree(%d) = %d, want %d", v, got, want)
				}
				got, err := sg.InNeighbors(v, scratch)
				if err != nil {
					t.Fatal(err)
				}
				want, _, err := rev.Neighbors(v, revScratch)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("InNeighbors(%d): %d sources, want %d", v, len(got), len(want))
				}
				gs, ws := append([]uint32(nil), got...), append([]uint32(nil), want...)
				sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })
				sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
				for i := range gs {
					if gs[i] != ws[i] {
						t.Fatalf("InNeighbors(%d)[%d] = %d, want %d", v, i, gs[i], ws[i])
					}
				}
			}
		})
	}

	plain := openWith(t, g, WriteConfig{})
	if plain.HasInEdges() {
		t.Fatal("plain store reports HasInEdges=true")
	}
	if _, ok := graph.InEdges[uint32](plain); ok {
		t.Fatal("graph.InEdges accepted a store without reverse capability")
	}
}

// TestScanInEdgesMatchesPerVertex checks the bulk scan against per-vertex
// InNeighbors for every back-end shape — v1/v2 sections, symmetric files,
// with and without a prefetcher (the double-buffered async span path) — and
// that need() filtering and the scan counters behave.
func TestScanInEdgesMatchesPerVertex(t *testing.T) {
	dg := buildGraph(t, 300, 2400, false, 22)
	ub := graph.NewBuilder[uint32](300, false)
	dg.ForEachEdge(func(u, v uint32, w graph.Weight) { ub.AddEdge(u, v, w) })
	ub.Symmetrize()
	ug, err := ub.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		g        *graph.CSR[uint32]
		cfg      WriteConfig
		prefetch bool
	}{
		{"v1", dg, WriteConfig{InEdges: true}, false},
		{"v1-prefetch", dg, WriteConfig{InEdges: true}, true},
		{"v2", dg, WriteConfig{Compress: true, InEdges: true}, false},
		{"v2-prefetch", dg, WriteConfig{Compress: true, InEdges: true}, true},
		{"symmetric-v1", ug, WriteConfig{Symmetric: true}, false},
		{"symmetric-v2-prefetch", ug, WriteConfig{Compress: true, Symmetric: true}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sg := openWith(t, tc.g, tc.cfg)
			if tc.prefetch {
				sg.EnablePrefetch(PrefetchConfig{MaxGap: 4096})
			}
			need := func(v uint32) bool { return v%3 != 0 } // skip a third: filtering must hold
			got := map[uint32][]uint32{}
			err := sg.ScanInEdges(0, uint32(sg.NumVertices()), need, func(v uint32, in []uint32) error {
				got[v] = append([]uint32(nil), in...)
				return nil
			}, &graph.Scratch[uint32]{})
			if err != nil {
				t.Fatal(err)
			}
			scratch := &graph.Scratch[uint32]{}
			for v := uint32(0); uint64(v) < sg.NumVertices(); v++ {
				want, err := sg.InNeighbors(v, scratch)
				if err != nil {
					t.Fatal(err)
				}
				if !need(v) || len(want) == 0 {
					if _, ok := got[v]; ok {
						t.Fatalf("scan visited %d (need=%v, indeg=%d)", v, need(v), len(want))
					}
					continue
				}
				g2 := got[v]
				if len(g2) != len(want) {
					t.Fatalf("scan in-list of %d has %d sources, want %d", v, len(g2), len(want))
				}
				for i := range g2 {
					if g2[i] != want[i] {
						t.Fatalf("scan in-list of %d differs at %d: %d vs %d", v, i, g2[i], want[i])
					}
				}
			}
			st := sg.PrefetchStats()
			if tc.prefetch && st.ScanSpans == 0 {
				t.Fatal("prefetch-enabled scan issued no counted spans")
			}
			if tc.prefetch && st.ScanBytes == 0 {
				t.Fatal("prefetch-enabled scan counted no bytes")
			}
			if !tc.prefetch && st.ScanSpans != 0 {
				t.Fatal("scan counters moved without a prefetcher attached")
			}
		})
	}
}

// TestWriteRejectsInEdgesWithSymmetric pins the writer-side exclusivity.
func TestWriteRejectsInEdgesWithSymmetric(t *testing.T) {
	g := buildGraph(t, 20, 40, false, 23)
	var buf bytes.Buffer
	if err := Write(&buf, g, WriteConfig{InEdges: true, Symmetric: true}); err == nil {
		t.Fatal("Write accepted InEdges+Symmetric")
	}
}

// TestOpenRejectsTruncatedInSection checks that a store cut off inside the
// in-edge section fails at open, not at first bottom-up read.
func TestOpenRejectsTruncatedInSection(t *testing.T) {
	g := buildGraph(t, 50, 300, false, 24)
	for _, cfg := range []WriteConfig{{InEdges: true}, {Compress: true, InEdges: true}} {
		var buf bytes.Buffer
		if err := Write(&buf, g, cfg); err != nil {
			t.Fatal(err)
		}
		full := buf.Bytes()
		cut := full[:len(full)-8]
		if _, err := Open[uint32](bytes.NewReader(cut)); err == nil {
			t.Fatalf("compress=%v: opened a store with a truncated in-edge section", cfg.Compress)
		}
	}
}
