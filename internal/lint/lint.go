// Package lint is the repository's project-specific static-analysis suite:
// stdlib-only (go/ast, go/parser, go/types, go/token) analyzers that machine-
// check the conventions the engine's asynchronous ownership/termination
// protocol depends on — properties `go vet` and the race detector cannot
// see, because a protocol breach through correctly-ordered atomics is not a
// data race.
//
// The analyzers (run by cmd/lint, enforced in CI):
//
//   - atomic-mix: a struct field accessed both through sync/atomic and with
//     plain loads/stores anywhere in its package;
//   - locked-section: a sync.Mutex/RWMutex Lock without a deferred or
//     same-block Unlock covering every return path;
//   - hotpath: no fmt calls, time.Now, map allocation, or closure creation
//     inside functions annotated `//lint:hotpath`;
//   - droppederr: ignored error results from Read/ReadAt/Write/WriteAt/
//     Close/Flush/Sync/Encode/WriteString calls, and `defer Close()` on a
//     write path whose write errors are otherwise handled;
//   - configcheck: every exported field of an exported ...Config struct must
//     be referenced by that package's validate/normalize function.
//
// On top of the per-package checks sits a whole-program layer (callgraph.go):
// a CHA-style static call graph with per-function may-acquire/may-block/
// join-signal summaries, feeding three interprocedural analyzers:
//
//   - lockorder: cycles in the global mutex-acquisition-order graph
//     (AB/BA deadlock risk), `//lint:lockorder` documents a hierarchy;
//   - spawnjoin: every `go` statement needs a reachable join signal
//     (WaitGroup.Done, close, context watcher, or a safe channel send),
//     `//lint:spawnjoin` documents a deliberately detached goroutine;
//   - blockwhilelocked: no blocking operation while a sync.Mutex/RWMutex is
//     statically held, `//lint:blockwhilelocked` documents an exception.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the suite's canonical
// "file:line: analyzer: message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Analyzer is one project-specific check. Per-package analyzers implement
// Run; whole-program (interprocedural) analyzers implement RunProgram and
// receive the call graph built once over the full package set.
type Analyzer struct {
	Name       string
	Doc        string
	Run        func(p *Package) []Diagnostic
	RunProgram func(prog *program) []Diagnostic
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AtomicMix, LockedSection, Hotpath, DroppedErr, ConfigCheck,
		LockOrder, SpawnJoin, BlockWhileLocked,
	}
}

// RunAll applies every analyzer to every package and returns the findings
// sorted by file, line, and analyzer name. The whole-program view is built
// lazily, only when some analyzer in the set needs it.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		for _, a := range analyzers {
			if a.Run != nil {
				diags = append(diags, a.Run(p)...)
			}
		}
	}
	var prog *program
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if prog == nil {
			prog = buildProgram(pkgs)
		}
		diags = append(diags, a.RunProgram(prog)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
