package pq

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyHeap(t *testing.T) {
	h := New(false)
	if h.Len() != 0 {
		t.Fatalf("new heap Len = %d, want 0", h.Len())
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty heap returned ok")
	}
	if _, ok := h.Peek(); ok {
		t.Fatal("Peek on empty heap returned ok")
	}
}

func TestPushPopSingle(t *testing.T) {
	h := New(false)
	h.Push(Item{Pri: 7, V: 3, Aux: 9})
	if h.Len() != 1 {
		t.Fatalf("Len = %d, want 1", h.Len())
	}
	it, ok := h.Peek()
	if !ok || it.Pri != 7 || it.V != 3 || it.Aux != 9 {
		t.Fatalf("Peek = %+v ok=%v", it, ok)
	}
	it, ok = h.Pop()
	if !ok || it.Pri != 7 || it.V != 3 || it.Aux != 9 {
		t.Fatalf("Pop = %+v ok=%v", it, ok)
	}
	if h.Len() != 0 {
		t.Fatalf("Len after pop = %d, want 0", h.Len())
	}
}

func TestPopOrderByPriority(t *testing.T) {
	h := New(false)
	pris := []uint64{5, 1, 9, 3, 3, 0, 12, 7}
	for _, p := range pris {
		h.Push(Item{Pri: p})
	}
	sorted := append([]uint64(nil), pris...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, want := range sorted {
		it, ok := h.Pop()
		if !ok {
			t.Fatalf("Pop %d: heap empty early", i)
		}
		if it.Pri != want {
			t.Fatalf("Pop %d: pri = %d, want %d", i, it.Pri, want)
		}
	}
}

func TestSemiSortBreaksTiesByVertex(t *testing.T) {
	h := New(true)
	vs := []uint64{9, 2, 7, 0, 5}
	for _, v := range vs {
		h.Push(Item{Pri: 4, V: v})
	}
	h.Push(Item{Pri: 3, V: 100}) // lower priority dominates regardless of id
	want := []uint64{100, 0, 2, 5, 7, 9}
	for i, w := range want {
		it, ok := h.Pop()
		if !ok || it.V != w {
			t.Fatalf("pop %d: got v=%d ok=%v, want v=%d", i, it.V, ok, w)
		}
	}
}

func TestWithoutSemiSortTiesUnordered(t *testing.T) {
	// Not an ordering guarantee — just confirm all tied items come out.
	h := New(false)
	for v := uint64(0); v < 10; v++ {
		h.Push(Item{Pri: 1, V: v})
	}
	seen := make(map[uint64]bool)
	for {
		it, ok := h.Pop()
		if !ok {
			break
		}
		seen[it.V] = true
	}
	if len(seen) != 10 {
		t.Fatalf("popped %d distinct items, want 10", len(seen))
	}
}

func TestMaxLenHighWaterMark(t *testing.T) {
	h := New(false)
	for i := 0; i < 5; i++ {
		h.Push(Item{Pri: uint64(i)})
	}
	h.Pop()
	h.Pop()
	h.Push(Item{Pri: 0})
	if h.MaxLen() != 5 {
		t.Fatalf("MaxLen = %d, want 5", h.MaxLen())
	}
}

func TestInterleavedPushPop(t *testing.T) {
	h := New(true)
	r := rand.New(rand.NewPCG(1, 2))
	var mirror []Item
	less := func(a, b Item) bool {
		if a.Pri != b.Pri {
			return a.Pri < b.Pri
		}
		return a.V < b.V
	}
	for op := 0; op < 5000; op++ {
		if r.IntN(3) != 0 || len(mirror) == 0 {
			it := Item{Pri: r.Uint64N(50), V: r.Uint64N(1000), Aux: r.Uint64()}
			h.Push(it)
			mirror = append(mirror, it)
		} else {
			got, ok := h.Pop()
			if !ok {
				t.Fatal("heap empty but mirror is not")
			}
			minIdx := 0
			for i, it := range mirror {
				if less(it, mirror[minIdx]) {
					minIdx = i
				}
			}
			if got.Pri != mirror[minIdx].Pri || got.V != mirror[minIdx].V {
				t.Fatalf("op %d: pop = (%d,%d), want (%d,%d)",
					op, got.Pri, got.V, mirror[minIdx].Pri, mirror[minIdx].V)
			}
			mirror = append(mirror[:minIdx], mirror[minIdx+1:]...)
		}
	}
}

// Property: for any push sequence, popping drains items in non-decreasing
// priority order and returns exactly the pushed multiset of priorities.
func TestQuickHeapOrdering(t *testing.T) {
	f := func(pris []uint64) bool {
		h := New(false)
		for _, p := range pris {
			h.Push(Item{Pri: p})
		}
		var got []uint64
		for {
			it, ok := h.Pop()
			if !ok {
				break
			}
			got = append(got, it.Pri)
		}
		if len(got) != len(pris) {
			return false
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			return false
		}
		want := append([]uint64(nil), pris...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: with semi-sort enabled, pops are lexicographically ordered on
// (Pri, V).
func TestQuickSemiSortLexOrder(t *testing.T) {
	f := func(raw []uint32) bool {
		h := New(true)
		for _, r := range raw {
			h.Push(Item{Pri: uint64(r % 16), V: uint64(r / 16 % 64)})
		}
		var prev Item
		first := true
		for {
			it, ok := h.Pop()
			if !ok {
				break
			}
			if !first {
				if it.Pri < prev.Pri || (it.Pri == prev.Pri && it.V < prev.V) {
					return false
				}
			}
			prev, first = it, false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCoarseHeapBuckets(t *testing.T) {
	// shift=2: priorities 0-3 are one bucket; within it, semi-sort by V.
	h := NewCoarse(true, 2)
	h.Push(Item{Pri: 3, V: 9})
	h.Push(Item{Pri: 0, V: 5})
	h.Push(Item{Pri: 2, V: 1})
	h.Push(Item{Pri: 4, V: 0}) // next bucket
	want := []uint64{1, 5, 9, 0}
	for i, v := range want {
		it, ok := h.Pop()
		if !ok || it.V != v {
			t.Fatalf("pop %d: got v=%d ok=%v, want %d", i, it.V, ok, v)
		}
	}
}

func TestCoarseShiftZeroIsExact(t *testing.T) {
	a := New(false)
	b := NewCoarse(false, 0)
	for _, p := range []uint64{9, 3, 7, 1} {
		a.Push(Item{Pri: p})
		b.Push(Item{Pri: p})
	}
	for {
		ia, oka := a.Pop()
		ib, okb := b.Pop()
		if oka != okb || ia.Pri != ib.Pri {
			t.Fatalf("divergence: %v/%v %v/%v", ia, oka, ib, okb)
		}
		if !oka {
			break
		}
	}
}
