package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Admission control: the SEM device services a bounded number of concurrent
// operations (ssd.Profile.Channels) and every traversal multiplies into
// hundreds of worker goroutines, so an unbounded query intake would
// oversubscribe the device and collapse every query's latency at once.
// admission caps running traversals at MaxConcurrent, parks up to MaxQueue
// excess requests on a wait list with a timeout, and sheds everything beyond
// that immediately — the standard load-shedding shape: bounded concurrency,
// bounded queue, bounded wait.

// ErrOverloaded reports that the admission queue is full; the handler maps it
// to 429 Too Many Requests.
var ErrOverloaded = errors.New("server: admission queue full")

// ErrQueueTimeout reports that a queued request waited QueueTimeout without a
// traversal slot freeing up; the handler maps it to 503 Service Unavailable.
var ErrQueueTimeout = errors.New("server: timed out waiting for a traversal slot")

type admission struct {
	slots        chan struct{} // capacity = MaxConcurrent
	maxQueue     int64
	queueTimeout time.Duration

	queued   atomic.Int64
	inFlight atomic.Int64
	rejected atomic.Uint64
	timedOut atomic.Uint64
}

func newAdmission(maxConcurrent, maxQueue int, queueTimeout time.Duration) *admission {
	return &admission{
		slots:        make(chan struct{}, maxConcurrent),
		maxQueue:     int64(maxQueue),
		queueTimeout: queueTimeout,
	}
}

// acquire claims a traversal slot, waiting in the bounded queue if none is
// free. It fails fast with ErrOverloaded when the queue is full, with
// ErrQueueTimeout after queueTimeout, and with ctx.Err() when the caller's
// request dies while waiting.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		a.inFlight.Add(1)
		return nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		a.rejected.Add(1)
		return ErrOverloaded
	}
	defer a.queued.Add(-1)
	timer := time.NewTimer(a.queueTimeout)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		a.inFlight.Add(1)
		return nil
	case <-timer.C:
		a.timedOut.Add(1)
		return ErrQueueTimeout
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot claimed by acquire.
func (a *admission) release() {
	<-a.slots
	a.inFlight.Add(-1)
}

// InFlight reports traversals currently running.
func (a *admission) InFlight() int64 { return a.inFlight.Load() }

// QueueDepth reports requests currently parked waiting for a slot.
func (a *admission) QueueDepth() int64 { return a.queued.Load() }
