package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ConfigCheck enforces that every exported field of an exported config
// struct (a struct type named "Config" or "...Config") is referenced by the
// package's validate/normalize function. The engine's knobs default and
// clamp in normalize; a field that normalize never sees is a knob that can
// be set to garbage and silently misbehave at traversal time — historically
// how an out-of-range CoarseShift or an unvalidated Queue kind slipped
// through. Validator names recognized: validate, Validate, normalize,
// Normalize — as a method on the struct (pointer or value receiver) or a
// function taking it as first parameter.
//
// Fields of type context.Context are exempt: they carry per-call lifecycle,
// not tunable configuration.
const configCheckName = "configcheck"

var ConfigCheck = &Analyzer{
	Name: configCheckName,
	Doc:  "every exported Config field must be referenced by the package's validate/normalize function",
	Run:  runConfigCheck,
}

var validatorNames = map[string]bool{
	"validate": true, "Validate": true, "normalize": true, "Normalize": true,
}

func runConfigCheck(p *Package) []Diagnostic {
	var diags []Diagnostic
	scope := p.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() || tn.IsAlias() {
			continue
		}
		if name != "Config" && !strings.HasSuffix(name, "Config") {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		validators := findValidators(p, named)
		if len(validators) == 0 {
			diags = append(diags, Diagnostic{
				Pos:      p.Fset.Position(tn.Pos()),
				Analyzer: configCheckName,
				Message:  "exported config struct " + name + " has no validate/normalize function",
			})
			continue
		}
		referenced := make(map[*types.Var]bool)
		for _, v := range validators {
			collectFieldRefs(p, v, referenced)
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() || referenced[f] || isContextType(f.Type()) {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:      p.Fset.Position(f.Pos()),
				Analyzer: configCheckName,
				Message:  name + "." + f.Name() + " is never referenced by " + name + "'s validate/normalize function; unvalidated knob",
			})
		}
	}
	return diags
}

// findValidators returns the bodies of validator functions for the named
// config type: methods named validate/normalize (any case) on the type, or
// package functions with it as the first parameter.
func findValidators(p *Package, named *types.Named) []*ast.FuncDecl {
	matches := func(t types.Type) bool {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		n, ok := t.(*types.Named)
		return ok && n.Obj() == named.Obj()
	}
	var out []*ast.FuncDecl
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !validatorNames[fn.Name.Name] {
				continue
			}
			obj, ok := p.Info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			if recv := sig.Recv(); recv != nil {
				if matches(recv.Type()) {
					out = append(out, fn)
				}
				continue
			}
			if sig.Params().Len() > 0 && matches(sig.Params().At(0).Type()) {
				out = append(out, fn)
			}
		}
	}
	return out
}

// collectFieldRefs marks every struct field selected anywhere in fn's body.
func collectFieldRefs(p *Package, fn *ast.FuncDecl, refs map[*types.Var]bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				refs[v] = true
			}
		}
		return true
	})
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
