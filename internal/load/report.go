package load

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// Report layer: outcomes in, judgment out. The headline number is goodput —
// replies that were both correct (200) and on time (within the request's
// deadline) — because under overload raw throughput stays flat while the
// share of useful work collapses; goodput is what the SLO policies are
// supposed to protect. Percentiles are computed per class and per tenant so
// a priority policy's gold-p99 win and its batch-p99 cost are both visible.

// Stats aggregates outcomes for one slice of traffic (a class, a tenant, or
// the whole run).
type Stats struct {
	// Requests is every arrival in the slice.
	Requests int `json:"requests"`
	// OK counts 200 replies (on time or not).
	OK int `json:"ok"`
	// Good counts 200 replies within deadline.
	Good int `json:"good"`
	// Late counts 200 replies past deadline plus 504s (budget exhausted
	// while running).
	Late int `json:"late"`
	// Rejected counts every non-200 reply, split by reason below.
	Rejected     int `json:"rejected"`
	QueueFull    int `json:"queue_full"`
	QueueTimeout int `json:"queue_timeout"`
	DeadlineShed int `json:"deadline_shed"`
	RateLimited  int `json:"rate_limited"`
	// Errors counts transport failures (no HTTP status at all).
	Errors int `json:"errors"`
	// Latency percentiles over 200 replies, in milliseconds.
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`

	latencies []time.Duration
}

func (s *Stats) add(o *Outcome) {
	s.Requests++
	if o.Err != "" {
		s.Errors++
		return
	}
	if o.Code == 200 {
		s.OK++
		s.latencies = append(s.latencies, o.Latency)
		if o.Good() {
			s.Good++
		} else {
			s.Late++
		}
		return
	}
	if o.Code == 504 {
		s.Late++
	}
	s.Rejected++
	switch o.Reason {
	case "queue-full":
		s.QueueFull++
	case "queue-timeout":
		s.QueueTimeout++
	case "deadline-shed":
		s.DeadlineShed++
	case "rate-limit":
		s.RateLimited++
	}
}

func (s *Stats) finish() {
	if len(s.latencies) == 0 {
		s.latencies = nil
		return
	}
	sort.Slice(s.latencies, func(i, j int) bool { return s.latencies[i] < s.latencies[j] })
	var sum time.Duration
	for _, l := range s.latencies {
		sum += l
	}
	s.MeanMs = roundMs(sum / time.Duration(len(s.latencies)))
	s.P50Ms = roundMs(percentile(s.latencies, 0.50))
	s.P95Ms = roundMs(percentile(s.latencies, 0.95))
	s.P99Ms = roundMs(percentile(s.latencies, 0.99))
	s.latencies = nil
}

// percentile takes the nearest-rank percentile of a sorted slice.
func percentile(sorted []time.Duration, q float64) time.Duration {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// roundMs keeps report JSON stable across float formatting quirks: three
// decimal places of milliseconds (microsecond resolution).
func roundMs(d time.Duration) float64 {
	return float64(d.Round(time.Microsecond).Microseconds()) / 1000
}

// Report is the full judged result of a run.
type Report struct {
	// Requests and WallTime describe the offered load: WallTime is the last
	// scheduled arrival plus its reply latency (virtual or real).
	Requests int     `json:"requests"`
	WallMs   float64 `json:"wall_ms"`
	// OfferedRate is requests over the scheduled arrival span, req/s.
	OfferedRate float64 `json:"offered_rate"`
	// Goodput is the fraction of all requests answered well.
	Goodput float64 `json:"goodput"`
	// Fairness is the Jain index over per-tenant goodput counts: 1.0 when
	// every tenant gets the same good replies, approaching 1/n when one
	// tenant takes everything.
	Fairness float64 `json:"fairness"`
	// Total aggregates every outcome; Classes and Tenants slice it.
	Total   Stats             `json:"total"`
	Classes map[string]*Stats `json:"classes"`
	Tenants map[string]*Stats `json:"tenants"`
}

// BuildReport judges a run's outcomes. Maps marshal with sorted keys, so
// the JSON is byte-stable for a given outcome slice.
func BuildReport(outcomes []Outcome) *Report {
	r := &Report{
		Requests: len(outcomes),
		Classes:  make(map[string]*Stats),
		Tenants:  make(map[string]*Stats),
	}
	var span, wall time.Duration
	for i := range outcomes {
		o := &outcomes[i]
		r.Total.add(o)
		cs := r.Classes[o.Req.Class]
		if cs == nil {
			cs = &Stats{}
			r.Classes[o.Req.Class] = cs
		}
		cs.add(o)
		ts := r.Tenants[o.Req.Tenant]
		if ts == nil {
			ts = &Stats{}
			r.Tenants[o.Req.Tenant] = ts
		}
		ts.add(o)
		if o.Req.At > span {
			span = o.Req.At
		}
		if end := o.Req.At + o.Latency; end > wall {
			wall = end
		}
	}
	r.Total.finish()
	for _, s := range r.Classes {
		s.finish()
	}
	for _, s := range r.Tenants {
		s.finish()
	}
	r.WallMs = roundMs(wall)
	if span > 0 {
		r.OfferedRate = float64(len(outcomes)-1) / span.Seconds()
	}
	if len(outcomes) > 0 {
		r.Goodput = float64(r.Total.Good) / float64(len(outcomes))
	}
	r.Fairness = jain(r.Tenants)
	return r
}

// jain computes the Jain fairness index (Σx)² / (n·Σx²) over per-tenant
// good-reply counts.
func jain(tenants map[string]*Stats) float64 {
	var sum, sumSq float64
	n := 0
	for _, s := range tenants {
		x := float64(s.Good)
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}

// JSON renders the report as indented, key-sorted JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Table renders the report as a human-readable summary.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests %d  offered %.1f req/s  goodput %.1f%%  fairness %.3f\n\n",
		r.Requests, r.OfferedRate, 100*r.Goodput, r.Fairness)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "slice\treqs\tgood\tlate\trej\t429q\t503t\tshed\trate\tp50ms\tp95ms\tp99ms")
	row := func(name string, s *Stats) {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f\t%.1f\t%.1f\n",
			name, s.Requests, s.Good, s.Late, s.Rejected,
			s.QueueFull, s.QueueTimeout, s.DeadlineShed, s.RateLimited,
			s.P50Ms, s.P95Ms, s.P99Ms)
	}
	row("total", &r.Total)
	for _, name := range sortedKeys(r.Classes) {
		row("class/"+name, r.Classes[name])
	}
	for _, name := range sortedKeys(r.Tenants) {
		row("tenant/"+name, r.Tenants[name])
	}
	_ = w.Flush() // strings.Builder writes cannot fail
	return b.String()
}

func sortedKeys(m map[string]*Stats) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
