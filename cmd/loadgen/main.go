// Command loadgen drives the traversal query service with a seeded,
// open-loop workload and reports per-tenant / per-SLO-class latency,
// goodput, and rejection breakdowns (see internal/load).
//
// Three targets, exactly one of which must be selected:
//
//	loadgen -url http://127.0.0.1:8080 -name rmat16 -n 2000 -rate 200
//	    fires at a live server; the vertex count is read from /v1/graphs.
//
//	loadgen -graph rmat16=a16.asg -n 2000 -rate 200
//	    mounts the graph and serves it in-process — no network, same
//	    admission pipeline. The policy flags (-admission, -shed, -ratelimit,
//	    -tenant-limit, -concurrency, -queue, -queue-timeout, -cache)
//	    configure that embedded server.
//
//	loadgen -sim -vertices 65536 -n 50000 -rate 400
//	    replays the schedule through the discrete-event model of the server
//	    in virtual time: instant, and byte-identical for a given seed. The
//	    same policy flags configure the model; -service and -jitter shape
//	    the synthetic traversal times.
//
// Workload shape: -rate (req/s) with -arrival poisson or gamma (-gamma-shape
// sets burstiness; CV² = 1/shape), -source zipf (-zipf-s) or uniform over
// -vertices, -mix "bfs=0.7,sssp=0.3" kernel blend, and repeatable -tenant
// "name:class:weight:deadline" profiles (class is gold/silver/bronze/batch).
// Same -seed → same schedule, always.
//
// Output: a human table on stdout; -json writes the full report ("-" for
// stdout, suppressing the table).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/load"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
}

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(2)
}

func run() error {
	var (
		// Target selection.
		url     = flag.String("url", "", "live server base URL (e.g. http://127.0.0.1:8080)")
		name    = flag.String("name", "", "graph name to query (default: the -graph spec's name)")
		simMode = flag.Bool("sim", false, "simulate the server in virtual time instead of driving a real one")

		// Workload.
		n          = flag.Int("n", 1000, "number of requests")
		rate       = flag.Float64("rate", 100, "mean arrival rate, req/s")
		arrival    = flag.String("arrival", "poisson", "inter-arrival process: poisson or gamma")
		gammaShape = flag.Float64("gamma-shape", 4, "gamma shape k (CV² = 1/k; <1 is burstier than poisson)")
		source     = flag.String("source", "zipf", "source-vertex distribution: zipf or uniform")
		zipfS      = flag.Float64("zipf-s", 1.1, "zipf exponent (higher = hotter hot set)")
		vertices   = flag.Uint64("vertices", 0, "vertex-id space (required for -sim; derived from the graph otherwise)")
		mixSpec    = flag.String("mix", "bfs=1", "kernel blend, as k=w[,k=w...] over bfs, sssp, cc")
		seed       = flag.Uint64("seed", 1, "workload seed; same seed, same schedule")
		noCache    = flag.Bool("nocache", false, "set no_cache on every query (defeat the result cache)")
		jsonOut    = flag.String("json", "", "write the JSON report to this file (\"-\" for stdout)")

		// Server / model policy (in-process and sim targets).
		concurrency  = flag.Int("concurrency", 4, "max traversals running at once")
		queue        = flag.Int("queue", 64, "max requests waiting for a traversal slot")
		queueTimeout = flag.Duration("queue-timeout", 2*time.Second, "max wait for a traversal slot before 503")
		admitPolicy  = flag.String("admission", server.AdmitPriority, "admission queue order: priority or fifo")
		shedPolicy   = flag.String("shed", server.ShedDeadline, "deadline shedding: deadline or off")
		rateLimit    = flag.String("ratelimit", "", "per-tenant token-bucket rate as rate[:burst] (empty = unlimited)")
		cacheEntries = flag.Int("cache", 64, "in-process result-cache capacity (negative disables)")
		workers      = flag.Int("workers", 0, "in-process engine workers per traversal (0 = default)")

		// Sim-only shape.
		jitter = flag.Float64("jitter", 0.2, "sim service-time jitter fraction")
	)
	var tenants []load.Tenant
	flag.Func("tenant", "tenant profile, as name:class:weight:deadline (repeatable; e.g. acme:gold:1:500ms)", func(arg string) error {
		t, err := parseTenant(arg)
		if err != nil {
			return err
		}
		tenants = append(tenants, t)
		return nil
	})
	var spec server.MountSpec
	var haveSpec bool
	flag.Func("graph", "graph to mount in-process, as name=path[,sem[,profile]][,shards=N]", func(arg string) error {
		s, err := server.ParseMountSpec(arg)
		if err != nil {
			return err
		}
		spec, haveSpec = s, true
		return nil
	})
	tenantLimits := make(map[string]server.TenantLimit)
	flag.Func("tenant-limit", "per-tenant rate override, as name=rate[:burst] (repeatable)", func(arg string) error {
		tname, rspec, ok := strings.Cut(arg, "=")
		if !ok || tname == "" {
			return fmt.Errorf("tenant limit %q: want name=rate[:burst]", arg)
		}
		r, b, err := server.ParseRateSpec(rspec)
		if err != nil {
			return err
		}
		tenantLimits[tname] = server.TenantLimit{Rate: r, Burst: b}
		return nil
	})
	flag.Parse()

	modes := 0
	for _, on := range []bool{*url != "", haveSpec, *simMode} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		usageErr("exactly one of -url, -graph, or -sim must be given")
	}
	if *admitPolicy != server.AdmitPriority && *admitPolicy != server.AdmitFIFO {
		usageErr("unknown -admission %q (want priority or fifo)", *admitPolicy)
	}
	if *shedPolicy != server.ShedDeadline && *shedPolicy != server.ShedOff {
		usageErr("unknown -shed %q (want deadline or off)", *shedPolicy)
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		usageErr("%v", err)
	}
	var rl server.RateLimitConfig
	if *rateLimit != "" {
		if rl.Rate, rl.Burst, err = server.ParseRateSpec(*rateLimit); err != nil {
			usageErr("-ratelimit: %v", err)
		}
	}
	if len(tenantLimits) > 0 {
		rl.Tenants = tenantLimits
	}

	graphName := *name
	if graphName == "" && haveSpec {
		graphName = spec.Name
	}
	cfg := load.Config{
		Graph:      graphName,
		Requests:   *n,
		Rate:       *rate,
		Arrival:    *arrival,
		GammaShape: *gammaShape,
		Source:     *source,
		ZipfS:      *zipfS,
		Vertices:   *vertices,
		Mix:        mix,
		Tenants:    tenants,
		Seed:       *seed,
		NoCache:    *noCache,
	}

	ctx := context.Background()
	var outcomes []load.Outcome
	switch {
	case *simMode:
		if cfg.Vertices == 0 {
			usageErr("-sim needs -vertices (no graph to derive it from)")
		}
		schedule, err := load.BuildSchedule(&cfg)
		if err != nil {
			return err
		}
		sim := load.SimConfig{
			Slots:        *concurrency,
			MaxQueue:     *queue,
			QueueTimeout: *queueTimeout,
			Admission:    *admitPolicy,
			Shedding:     *shedPolicy,
			Jitter:       *jitter,
			RateLimit:    rl.Rate,
			Burst:        rl.Burst,
		}
		if outcomes, err = load.Simulate(&cfg, &sim, schedule); err != nil {
			return err
		}

	case *url != "":
		target := &load.HTTPTarget{Base: *url, Graph: graphName, NoCache: *noCache}
		if graphName == "" {
			usageErr("-url needs -name to pick the graph to query")
		}
		if cfg.Vertices == 0 {
			v, err := target.Vertices(ctx)
			if err != nil {
				return fmt.Errorf("deriving -vertices from %s/v1/graphs: %w", *url, err)
			}
			cfg.Vertices = v
		}
		schedule, err := load.BuildSchedule(&cfg)
		if err != nil {
			return err
		}
		r := &load.Runner{Target: target}
		outcomes = r.Run(ctx, schedule)

	default: // in-process mount
		srv := server.New(server.Config{
			MaxConcurrent: *concurrency,
			MaxQueue:      *queue,
			QueueTimeout:  *queueTimeout,
			Admission:     *admitPolicy,
			Shedding:      *shedPolicy,
			RateLimit:     rl,
			CacheEntries:  *cacheEntries,
			Engine:        core.Config{Workers: *workers},
		})
		g, err := server.MountGraph(spec, server.MountOptions{})
		if err != nil {
			return err
		}
		if err := srv.AddGraph(g); err != nil {
			return err
		}
		if cfg.Vertices == 0 {
			cfg.Vertices = g.Adj.NumVertices()
		}
		schedule, err := load.BuildSchedule(&cfg)
		if err != nil {
			return err
		}
		r := &load.Runner{Target: &load.HandlerTarget{Handler: srv.Handler(), Graph: graphName, NoCache: *noCache}}
		outcomes = r.Run(ctx, schedule)
	}

	report := load.BuildReport(outcomes)
	if *jsonOut != "" {
		data, err := report.JSON()
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			_, err = os.Stdout.Write(data)
			return err
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return err
		}
	}
	fmt.Print(report.Table())
	return nil
}

// parseTenant parses name:class:weight:deadline, e.g. acme:gold:3:500ms.
func parseTenant(arg string) (load.Tenant, error) {
	parts := strings.Split(arg, ":")
	if len(parts) != 4 {
		return load.Tenant{}, fmt.Errorf("tenant %q: want name:class:weight:deadline", arg)
	}
	w, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || w <= 0 {
		return load.Tenant{}, fmt.Errorf("tenant %q: bad weight %q", arg, parts[2])
	}
	d, err := time.ParseDuration(parts[3])
	if err != nil || d <= 0 {
		return load.Tenant{}, fmt.Errorf("tenant %q: bad deadline %q", arg, parts[3])
	}
	return load.Tenant{Name: parts[0], Class: parts[1], Weight: w, Deadline: d}, nil
}

// parseMix parses k=w[,k=w...] into a kernel weight table.
func parseMix(arg string) (map[string]float64, error) {
	mix := make(map[string]float64)
	for _, part := range strings.Split(arg, ",") {
		k, ws, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("-mix %q: want k=w[,k=w...]", arg)
		}
		w, err := strconv.ParseFloat(ws, 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("-mix %q: bad weight for %q", arg, k)
		}
		mix[k] = w
	}
	return mix, nil
}
