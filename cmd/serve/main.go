// Command serve runs the traversal query service: it loads one or more graph
// files produced by cmd/gengraph as shared read-only stores — in-memory CSRs
// or semi-external stores on a simulated flash device — and answers BFS /
// SSSP / CC queries over HTTP (see internal/server).
//
// Each -graph flag loads one store. The spec is
// name=path[,sem[,profile]][,shards=N][,limit=R[:B]]:
//
//	serve -listen :8080 -graph rmat16=a16.asg
//	serve -graph small=a14.asg -graph big=a22.asg,sem,FusionIO
//	serve -graph big=b16.asg,sem,shards=4       # mounts b16.asg.shard0..3
//	serve -graph hot=a16.asg,limit=50:100       # 50 req/s per tenant on this graph
//
// shards=0 (the default) auto-detects: a plain file mounts as is, otherwise
// path.shard0.. are discovered and mounted as one sharded graph.
//
// Serving policy: requests carry a tenant (X-Tenant header) and an SLO class
// (X-SLO-Class: gold/silver/bronze/batch). -admission orders the wait queue
// by class and remaining deadline budget (priority, the default) or by
// arrival (fifo); -shed deadline rejects requests whose budget cannot
// survive the estimated queue wait; -ratelimit / -tenant-limit bound each
// tenant's request rate with a token bucket.
//
// Query it with:
//
//	curl localhost:8080/healthz
//	curl localhost:8080/v1/graphs
//	curl -d '{"graph":"rmat16","kernel":"bfs","source":0}' localhost:8080/v1/query
//	curl -H 'X-Tenant: acme' -H 'X-SLO-Class: gold' \
//	  -d '{"graph":"rmat16","kernel":"bfs","source":0,"timeout_ms":500}' localhost:8080/v1/query
//	curl localhost:8080/metrics
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/sem"
	"repro/internal/server"
)

func main() {
	var specs []server.MountSpec
	var (
		listen       = flag.String("listen", ":8080", "address to serve HTTP on")
		concurrency  = flag.Int("concurrency", 4, "max traversals running at once")
		queue        = flag.Int("queue", 64, "max requests waiting for a traversal slot")
		queueTimeout = flag.Duration("queue-timeout", 2*time.Second, "max wait for a traversal slot before 503")
		queryTimeout = flag.Duration("query-timeout", 30*time.Second, "per-query traversal deadline")
		admitPolicy  = flag.String("admission", server.AdmitPriority, "admission queue order: priority (SLO class + deadline) or fifo")
		shedPolicy   = flag.String("shed", server.ShedDeadline, "deadline shedding: deadline (reject budget-exhausted requests early) or off")
		rateLimit    = flag.String("ratelimit", "", "per-tenant token-bucket rate as rate[:burst] in req/s (empty = unlimited)")
		cacheEntries = flag.Int("cache", 64, "result-cache capacity in snapshots (negative disables)")
		workers      = flag.Int("workers", 0, "engine workers per traversal (0 = default)")
		semisort     = flag.Bool("semisort", true, "secondary vertex-id sort key (SEM locality)")
		batch        = flag.Int("batch", 0, "engine mailbox batch size (0 = default)")
		prefetch     = flag.Int("prefetch", 64, "SEM pop-window prefetch size (0 = off)")
		prefgap      = flag.String("prefetchgap", strconv.Itoa(sem.DefaultPrefetchGap), "max byte gap coalesced into one prefetch read (bytes, or with a k/KiB/m/MiB suffix)")
		cachePol     = flag.String("cachepolicy", sem.PolicyLRU, "SEM block-cache eviction policy: lru (legacy) or state (algorithm-driven pinning)")
		dirFlag      = flag.String("direction", "", "BFS direction policy: topdown (default), bottomup, or hybrid; non-topdown requires every -graph to carry in-edges")
	)
	tenantLimits := make(map[string]server.TenantLimit)
	flag.Func("graph", "graph to serve, as name=path[,sem[,profile]][,shards=N][,limit=R[:B]] (repeatable, required)", func(arg string) error {
		s, err := server.ParseMountSpec(arg)
		if err != nil {
			return err
		}
		specs = append(specs, s)
		return nil
	})
	flag.Func("tenant-limit", "per-tenant rate override, as name=rate[:burst] (repeatable)", func(arg string) error {
		name, spec, ok := strings.Cut(arg, "=")
		if !ok || name == "" {
			return fmt.Errorf("tenant limit %q: want name=rate[:burst]", arg)
		}
		rate, burst, err := server.ParseRateSpec(spec)
		if err != nil {
			return err
		}
		tenantLimits[name] = server.TenantLimit{Rate: rate, Burst: burst}
		return nil
	})
	flag.Parse()
	if len(specs) == 0 {
		fmt.Fprintln(os.Stderr, "serve: at least one -graph name=path is required")
		flag.Usage()
		os.Exit(2)
	}
	dir, err := core.ParseDirection(*dirFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(2)
	}
	gap, err := sem.ParseByteSize(*prefgap)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: -prefetchgap: %v\n", err)
		os.Exit(2)
	}
	policy, err := sem.ParseCachePolicy(*cachePol)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: -cachepolicy: %v\n", err)
		os.Exit(2)
	}
	if *admitPolicy != server.AdmitPriority && *admitPolicy != server.AdmitFIFO {
		fmt.Fprintf(os.Stderr, "serve: unknown -admission %q (want priority or fifo)\n", *admitPolicy)
		os.Exit(2)
	}
	if *shedPolicy != server.ShedDeadline && *shedPolicy != server.ShedOff {
		fmt.Fprintf(os.Stderr, "serve: unknown -shed %q (want deadline or off)\n", *shedPolicy)
		os.Exit(2)
	}
	var rl server.RateLimitConfig
	if *rateLimit != "" {
		if rl.Rate, rl.Burst, err = server.ParseRateSpec(*rateLimit); err != nil {
			fmt.Fprintf(os.Stderr, "serve: -ratelimit: %v\n", err)
			os.Exit(2)
		}
	}
	if len(tenantLimits) > 0 {
		rl.Tenants = tenantLimits
	}

	s := server.New(server.Config{
		MaxConcurrent: *concurrency,
		MaxQueue:      *queue,
		QueueTimeout:  *queueTimeout,
		QueryTimeout:  *queryTimeout,
		Admission:     *admitPolicy,
		Shedding:      *shedPolicy,
		RateLimit:     rl,
		CacheEntries:  *cacheEntries,
		Engine:        core.Config{Workers: *workers, SemiSort: *semisort, Batch: *batch, Prefetch: *prefetch, Direction: dir},
	})
	for _, spec := range specs {
		g, err := server.MountGraph(spec, server.MountOptions{Prefetch: *prefetch, PrefetchGap: gap, Direction: dir, CachePolicy: policy})
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			if errors.Is(err, sem.ErrShardSpec) {
				// The shard files contradict the requested mount: a usage
				// error, not a runtime failure.
				os.Exit(2)
			}
			os.Exit(1)
		}
		if err := s.AddGraph(g); err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			if errors.Is(err, core.ErrNoInEdges) {
				// The graph file cannot honor the requested direction: a
				// usage error caught at startup, not per query.
				os.Exit(2)
			}
			os.Exit(1)
		}
		if g.Shards > 1 {
			log.Printf("loaded %s (%s, %d shards) from %s.shard0..%d", spec.Name, g.Storage, g.Shards, spec.Path, g.Shards-1)
		} else {
			log.Printf("loaded %s (%s) from %s", spec.Name, g.Storage, spec.Path)
		}
	}

	log.Printf("serving %d graph(s) on %s (admission=%s shed=%s)", len(specs), *listen, *admitPolicy, *shedPolicy)
	if err := http.ListenAndServe(*listen, s.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
}
