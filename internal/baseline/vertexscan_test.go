package baseline

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestVertexScanBFSMatchesSerial(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := randomUndirected(t, 250, 700, seed)
		want, err := SerialBFS(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			got, err := VertexScanBFS(g, 0, workers)
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("seed=%d workers=%d level[%d] = %d, want %d",
						seed, workers, v, got[v], want[v])
				}
			}
		}
	}
	if _, err := VertexScanBFS(lineGraph(t, 3), 9, 2); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestVertexScanBFSZeroWorkers(t *testing.T) {
	g := lineGraph(t, 6)
	got, err := VertexScanBFS(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[5] != 5 {
		t.Fatalf("level[5] = %d", got[5])
	}
}

func TestQuickVertexScanEquivalence(t *testing.T) {
	type rawEdge struct{ S, D uint8 }
	f := func(raw []rawEdge, w uint8) bool {
		const n = 70
		workers := int(w%4) + 1
		edges := make([]graph.Edge[uint32], len(raw))
		for i, e := range raw {
			edges[i] = graph.Edge[uint32]{Src: uint32(e.S) % n, Dst: uint32(e.D) % n}
		}
		g, err := graph.FromEdges(n, false, true, edges)
		if err != nil {
			return false
		}
		want, err := SerialBFS(g, 0)
		if err != nil {
			return false
		}
		got, err := VertexScanBFS(g, 0, workers)
		if err != nil {
			return false
		}
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
