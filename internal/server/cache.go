package server

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// Result cache: traversal results are deterministic functions of
// (graph, kernel, source, weights-mode) — the stores are immutable and the
// label-correcting kernels converge to unique labels regardless of
// interleaving — so a completed query's vertex-state snapshot can be served
// to every later request with the same key without touching the engine or
// the device. The cache is a mutex-guarded LRU over whole snapshots; at
// server scale the lock is uncontended next to a traversal's cost.

// cacheKey identifies a cacheable traversal result. weighted distinguishes
// the weights-mode: SSSP over a weighted store and over an unweighted one
// (all weights 1) are different results even for the same graph name
// elsewhere, and keying on it keeps the key self-describing. direction is
// the engine's traversal direction policy: hybrid/bottom-up BFS produces
// bit-identical levels to top-down, but parent trees are direction-specific
// (a bottom-up phase picks a different valid parent), so a snapshot keyed
// without direction could serve a stale tree across a -direction remount.
type cacheKey struct {
	graph     string
	kernel    string
	source    uint64
	weighted  bool
	direction core.Direction
}

// queryResult is the immutable vertex-state snapshot of one completed
// traversal: labels holds the per-vertex result (BFS level, SSSP distance,
// CC component id; graph.InfDist = unreached), parent the traversal tree
// (nil for CC). Snapshots are shared between the cache and in-flight
// responses and must never be mutated.
type queryResult struct {
	labels  []graph.Dist
	parent  []uint32
	stats   core.Stats
	elapsed time.Duration
}

type cacheEntry struct {
	key cacheKey
	res *queryResult
}

type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[cacheKey]*list.Element
	lru     *list.List // front = most recent; values are *cacheEntry

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

func newResultCache(capEntries int) *resultCache {
	return &resultCache{
		cap:     capEntries,
		entries: make(map[cacheKey]*list.Element),
		lru:     list.New(),
	}
}

// get returns the cached snapshot for k, updating recency and counters.
func (c *resultCache) get(k cacheKey) (*queryResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).res, true
}

// put inserts (or refreshes) a snapshot, evicting least-recently-used
// entries past capacity.
func (c *resultCache) put(k cacheKey, res *queryResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).res = res
		c.lru.MoveToFront(el)
		return
	}
	c.entries[k] = c.lru.PushFront(&cacheEntry{key: k, res: res})
	for c.lru.Len() > c.cap {
		old := c.lru.Back()
		c.lru.Remove(old)
		delete(c.entries, old.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// Len reports cached entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Counters snapshots hit/miss/eviction counts.
func (c *resultCache) Counters() (hits, misses, evictions uint64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}
