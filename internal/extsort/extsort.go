// Package extsort builds semi-external graph files from edge streams that do
// not fit in memory — the preprocessing step behind the paper's inputs
// (billions of edges: uk-union has 5.5B, ClueWeb09 7.9B). Edges are
// accumulated in a bounded in-memory buffer, spilled as sorted runs to
// temporary files, and k-way merged twice: a first pass computes de-duplicated
// per-vertex degrees (the vertex index fits in memory, per the semi-external
// model), a second streams the edge records into the sem file format.
package extsort

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/graph"
	"repro/internal/pq"
	"repro/internal/sem"
)

const recordSize = 12 // src, dst, weight: 3 x uint32

// Builder accumulates edges and writes a semi-external CSR file. It is not
// safe for concurrent use.
type Builder struct {
	n        uint64
	weighted bool
	budget   int    // max in-memory edges before spilling
	tmpDir   string // where sorted runs are spilled

	buf    []graph.Edge[uint32]
	spills []*os.File
	total  uint64
	closed bool
}

// NewBuilder creates an out-of-core builder for a graph with n vertices.
// memBudgetEdges bounds the in-memory edge buffer (minimum 1024); sorted
// runs beyond it spill to tmpDir (""=os.TempDir()).
func NewBuilder(n uint64, weighted bool, memBudgetEdges int, tmpDir string) *Builder {
	if memBudgetEdges < 1024 {
		memBudgetEdges = 1024
	}
	return &Builder{n: n, weighted: weighted, budget: memBudgetEdges, tmpDir: tmpDir}
}

// Add appends one directed edge, spilling a sorted run if the memory budget
// is reached.
func (b *Builder) Add(src, dst uint32, w graph.Weight) error {
	if b.closed {
		return fmt.Errorf("extsort: builder already finished")
	}
	if uint64(src) >= b.n || uint64(dst) >= b.n {
		return fmt.Errorf("extsort: edge (%d,%d) out of range for %d vertices", src, dst, b.n)
	}
	b.buf = append(b.buf, graph.Edge[uint32]{Src: src, Dst: dst, W: w})
	b.total++
	if len(b.buf) >= b.budget {
		return b.spill()
	}
	return nil
}

// NumEdgesAdded reports the number of edges added so far (before dedup).
func (b *Builder) NumEdgesAdded() uint64 { return b.total }

func (b *Builder) sortBuf() {
	sort.Slice(b.buf, func(i, j int) bool {
		a, c := b.buf[i], b.buf[j]
		if a.Src != c.Src {
			return a.Src < c.Src
		}
		if a.Dst != c.Dst {
			return a.Dst < c.Dst
		}
		return a.W < c.W
	})
}

func (b *Builder) spill() error {
	if len(b.buf) == 0 {
		return nil
	}
	b.sortBuf()
	f, err := os.CreateTemp(b.tmpDir, "extsort-run-*.bin")
	if err != nil {
		return fmt.Errorf("extsort: create spill: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var rec [recordSize]byte
	for _, e := range b.buf {
		binary.LittleEndian.PutUint32(rec[0:], e.Src)
		binary.LittleEndian.PutUint32(rec[4:], e.Dst)
		binary.LittleEndian.PutUint32(rec[8:], e.W)
		if _, err := w.Write(rec[:]); err != nil {
			_ = f.Close()
			return fmt.Errorf("extsort: write spill: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return fmt.Errorf("extsort: flush spill: %w", err)
	}
	b.spills = append(b.spills, f)
	b.buf = b.buf[:0]
	return nil
}

// Cleanup removes all spill files. Safe to call multiple times; WriteTo calls
// it on success.
func (b *Builder) Cleanup() {
	for _, f := range b.spills {
		name := f.Name()
		_ = f.Close()
		_ = os.Remove(name)
	}
	b.spills = nil
}

// runReader streams records from one sorted source (a spill file or the
// final in-memory buffer).
type runReader struct {
	r    *bufio.Reader // nil for the in-memory run
	mem  []graph.Edge[uint32]
	pos  int
	cur  graph.Edge[uint32]
	done bool
}

func (rr *runReader) advance() error {
	if rr.r == nil {
		if rr.pos >= len(rr.mem) {
			rr.done = true
			return nil
		}
		rr.cur = rr.mem[rr.pos]
		rr.pos++
		return nil
	}
	var rec [recordSize]byte
	if _, err := io.ReadFull(rr.r, rec[:]); err != nil {
		if err == io.EOF {
			rr.done = true
			return nil
		}
		return fmt.Errorf("extsort: read spill: %w", err)
	}
	rr.cur = graph.Edge[uint32]{
		Src: binary.LittleEndian.Uint32(rec[0:]),
		Dst: binary.LittleEndian.Uint32(rec[4:]),
		W:   binary.LittleEndian.Uint32(rec[8:]),
	}
	return nil
}

// merge streams the global sorted, de-duplicated edge sequence across all
// runs, invoking emit for each unique (src, dst) with its minimum weight.
func (b *Builder) merge(emit func(e graph.Edge[uint32]) error) error {
	readers := make([]*runReader, 0, len(b.spills)+1)
	for _, f := range b.spills {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("extsort: rewind spill: %w", err)
		}
		readers = append(readers, &runReader{r: bufio.NewReaderSize(f, 1<<20)})
	}
	readers = append(readers, &runReader{mem: b.buf})

	// Key the merge heap on (src, dst) packed into Pri and weight in Aux;
	// the reader index rides in V.
	h := pq.New(false)
	for i, rr := range readers {
		if err := rr.advance(); err != nil {
			return err
		}
		if !rr.done {
			h.Push(pq.Item{Pri: pack(rr.cur), V: uint64(i), Aux: uint64(rr.cur.W)})
		}
	}
	havePrev := false
	var prev graph.Edge[uint32]
	for {
		it, ok := h.Pop()
		if !ok {
			break
		}
		rr := readers[it.V]
		e := rr.cur
		if err := rr.advance(); err != nil {
			return err
		}
		if !rr.done {
			h.Push(pq.Item{Pri: pack(rr.cur), V: it.V, Aux: uint64(rr.cur.W)})
		}
		if havePrev && prev.Src == e.Src && prev.Dst == e.Dst {
			// Duplicate (src,dst). Equal keys can arrive from different runs
			// in any weight order (the heap breaks ties arbitrarily), so
			// keep the minimum weight — matching graph.Builder's dedup rule.
			if e.W < prev.W {
				prev.W = e.W
			}
			continue
		}
		if havePrev {
			if err := emit(prev); err != nil {
				return err
			}
		}
		prev, havePrev = e, true
	}
	if havePrev {
		return emit(prev)
	}
	return nil
}

func pack(e graph.Edge[uint32]) uint64 { return uint64(e.Src)<<32 | uint64(e.Dst) }

// WriteTo finishes the build: it merges all runs twice — once to compute the
// de-duplicated vertex index, once to stream edge records — and writes a
// complete semi-external graph file to w. The writer must support Seek
// because the edge count is only known after the first pass. On success the
// spill files are removed and the builder cannot be reused.
func (b *Builder) WriteTo(f io.WriteSeeker) (edges uint64, err error) {
	if b.closed {
		return 0, fmt.Errorf("extsort: builder already finished")
	}
	b.closed = true
	defer b.Cleanup()
	b.sortBuf() // the final in-memory run participates in the merge

	// Pass 1: de-duplicated degrees -> offsets (RAM-resident, 8(n+1) bytes:
	// the semi-external vertex budget).
	offsets := make([]uint64, b.n+1)
	var m uint64
	err = b.merge(func(e graph.Edge[uint32]) error {
		offsets[e.Src+1]++
		m++
		return nil
	})
	if err != nil {
		return 0, err
	}
	for i := uint64(0); i < b.n; i++ {
		offsets[i+1] += offsets[i]
	}

	// Write header + offsets.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("extsort: seek: %w", err)
	}
	bw := bufio.NewWriterSize(writerOnly{f}, 1<<20)
	header := make([]byte, 40)
	binary.LittleEndian.PutUint32(header[0:], sem.Magic)
	binary.LittleEndian.PutUint32(header[4:], sem.Version)
	var flags uint64
	if b.weighted {
		flags |= 1 // sem flagWeighted
	}
	binary.LittleEndian.PutUint64(header[8:], flags)
	binary.LittleEndian.PutUint64(header[16:], b.n)
	binary.LittleEndian.PutUint64(header[24:], m)
	if _, err := bw.Write(header); err != nil {
		return 0, fmt.Errorf("extsort: write header: %w", err)
	}
	var tmp [8]byte
	for _, off := range offsets {
		binary.LittleEndian.PutUint64(tmp[:], off)
		if _, err := bw.Write(tmp[:]); err != nil {
			return 0, fmt.Errorf("extsort: write offsets: %w", err)
		}
	}

	// Pass 2: stream edge records.
	err = b.merge(func(e graph.Edge[uint32]) error {
		binary.LittleEndian.PutUint32(tmp[:4], e.Dst)
		if _, err := bw.Write(tmp[:4]); err != nil {
			return err
		}
		if b.weighted {
			binary.LittleEndian.PutUint32(tmp[:4], e.W)
			if _, err := bw.Write(tmp[:4]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("extsort: write edges: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return 0, fmt.Errorf("extsort: flush: %w", err)
	}
	return m, nil
}

// writerOnly hides the Seeker from bufio so buffered writes cannot bypass it.
type writerOnly struct{ w io.Writer }

func (w writerOnly) Write(p []byte) (int, error) { return w.w.Write(p) }
