package lint

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var (
	fixtureOnce sync.Once
	fixturePkgs []*Package
	fixtureErr  error
)

// loadFixture type-checks the seeded-violation module under testdata once
// per test binary; every analyzer test shares the result.
func loadFixture(t *testing.T) []*Package {
	t.Helper()
	fixtureOnce.Do(func() {
		fixturePkgs, fixtureErr = Load("testdata/fixture", "./...")
	})
	if fixtureErr != nil {
		t.Fatalf("loading fixture module: %v", fixtureErr)
	}
	if len(fixturePkgs) == 0 {
		t.Fatal("fixture module produced no packages")
	}
	return fixturePkgs
}

// runOn runs one analyzer over the fixture and returns its diagnostics keyed
// as "file.go:line".
func runOn(t *testing.T, a *Analyzer) map[string][]string {
	t.Helper()
	got := make(map[string][]string)
	for _, d := range RunAll(loadFixture(t), []*Analyzer{a}) {
		key := filepath.Base(d.Pos.Filename) + ":" + strconv.Itoa(d.Pos.Line)
		got[key] = append(got[key], d.Message)
	}
	return got
}

// expectExactly asserts the analyzer fired at precisely the wanted
// positions: every seeded violation is caught and nothing else (the clean
// counterparts in the same files stay quiet).
func expectExactly(t *testing.T, a *Analyzer, want map[string]string) {
	t.Helper()
	got := runOn(t, a)
	for key, substr := range want {
		msgs, ok := got[key]
		if !ok {
			t.Errorf("%s: expected a diagnostic at %s, got none", a.Name, key)
			continue
		}
		found := false
		for _, m := range msgs {
			if strings.Contains(m, substr) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: diagnostic at %s = %q, want substring %q", a.Name, key, msgs, substr)
		}
	}
	for key, msgs := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: unexpected diagnostic at %s: %q", a.Name, key, msgs)
		}
	}
}

func TestAtomicMix(t *testing.T) {
	expectExactly(t, AtomicMix, map[string]string{
		"atomic.go:26": "field mixed is accessed with a plain load/store",
		"atomic.go:27": "field boxed is accessed with a plain load/store",
	})
}

func TestLockedSection(t *testing.T) {
	expectExactly(t, LockedSection, map[string]string{
		"locks.go:14": "no matching r.mu.Unlock()",
		"locks.go:23": "return inside r.mu critical section",
		"locks.go:50": "no matching r.rw.RUnlock()",
	})
}

func TestHotpath(t *testing.T) {
	expectExactly(t, Hotpath, map[string]string{
		"hot.go:10": "call to fmt.Sprintf",
		"hot.go:11": "call to time.Now",
		"hot.go:12": "map allocation (make)",
		"hot.go:13": "map allocation (composite literal)",
		"hot.go:14": "closure allocation",
		"hot.go:47": "append growth in a loop without a capacity hint",
		"hot.go:94": "slice allocation (make) inside a loop without a cap() growth guard",
	})
}

func TestDroppedErr(t *testing.T) {
	expectExactly(t, DroppedErr, map[string]string{
		"dropped.go:11":      "s.Close error is dropped",
		"dropped.go:12":      "s.ReadAt error is blanked",
		"dropped.go:13":      "s.Write error is dropped",
		"droppedwrite.go:17": "s.Close error is discarded by defer on a write path",
		"droppedwrite.go:26": "s.Encode error is dropped",
		"droppedwrite.go:31": "s.WriteString error is dropped",
	})
}

func TestLockOrder(t *testing.T) {
	expectExactly(t, LockOrder, map[string]string{
		// Direct AB/BA reversal: lockAB vs lockBA.
		"lockorder.go:16": "lock-order cycle: fixture.orderA.mu -> fixture.orderB.mu",
		// The same cycle closed through callees' may-acquire summaries.
		"lockorder.go:45": "via fixture.lockDAlone",
	})
}

func TestSpawnJoin(t *testing.T) {
	expectExactly(t, SpawnJoin, map[string]string{
		"spawnjoin.go:13": "goroutine has no reachable join",
		"spawnjoin.go:23": "send on unbuffered channel",
	})
}

func TestBlockWhileLocked(t *testing.T) {
	expectExactly(t, BlockWhileLocked, map[string]string{
		"blocklocked.go:17": "channel receive while holding fixture.relay.mu",
		"blocklocked.go:23": "sync.WaitGroup.Wait while holding fixture.relay.mu",
		"blocklocked.go:38": "call to fixture.relay.drain may block",
		"blocklocked.go:52": "select without default while holding fixture.board.rw",
	})
}

func TestConfigCheck(t *testing.T) {
	expectExactly(t, ConfigCheck, map[string]string{
		"config.go:15": "Config.Depth is never referenced",
		"config.go:28": "OrphanConfig has no validate/normalize function",
		"config.go:60": "ShardConfig.Replicas is never referenced",
		"config.go:79": "PolicyConfig.Trace is never referenced",
	})
}

// TestDiagnosticFormat pins the contract the CI gate and editors rely on:
// one diagnostic per line, formatted file:line: analyzer: message.
func TestDiagnosticFormat(t *testing.T) {
	diags := RunAll(loadFixture(t), Analyzers())
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	for _, d := range diags {
		s := d.String()
		parts := strings.SplitN(s, ": ", 3)
		if len(parts) != 3 {
			t.Fatalf("diagnostic %q does not match file:line: analyzer: message", s)
		}
		if !strings.Contains(parts[0], ".go:") {
			t.Errorf("diagnostic %q position %q lacks file:line", s, parts[0])
		}
	}
	// RunAll output is sorted by position for stable CI logs.
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Fatalf("diagnostics out of order: %s before %s", a.String(), b.String())
		}
	}
}

// TestGoldenFixtureFindings diffs the full suite's output over the fixture
// module against the checked-in golden file, so any regression in analyzer
// coverage, message wording, or output ordering fails loudly. CI asserts the
// same golden through cmd/lint run inside the fixture directory.
func TestGoldenFixtureFindings(t *testing.T) {
	var b strings.Builder
	for _, d := range RunAll(loadFixture(t), Analyzers()) {
		b.WriteString(filepath.Base(d.Pos.Filename) + ":" + strconv.Itoa(d.Pos.Line) +
			": " + d.Analyzer + ": " + d.Message + "\n")
	}
	got := b.String()
	wantBytes, err := os.ReadFile(filepath.Join("testdata", "expected.txt"))
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(want, "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		g, w := "", ""
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Errorf("golden mismatch at line %d:\n  got:  %s\n  want: %s", i+1, g, w)
		}
	}
	t.Fatalf("fixture findings diverge from testdata/expected.txt (%d got, %d want lines); regenerate it if the change is intentional", len(gotLines)-1, len(wantLines)-1)
}
