package sem

// This file glues the traversal engine's state notifications to the block
// cache's state-aware policy. The engine sees vertices; the cache sees device
// blocks. The graph sits between them and owns the translation: extentOf maps
// a vertex to its adjacency bytes (format-blind, v1 records or v2 compressed
// blocks), and the byte offset divided by the cache's block size names the
// block whose pending-visitor counter the settle events drive. The same
// block translation drives the prefetcher's residency accounting against the
// cache's residency bitset.

import "repro/internal/graph"

// EnableStateCache switches the graph's block cache to the state-aware
// eviction policy and wires the graph up as a graph.Settler. It reports false (and changes nothing) when the
// graph does not read through a CachedStore — a raw-device mount has no cache
// to steer. Call once, before the first traversal.
func (g *Graph[V]) EnableStateCache() bool {
	cs, ok := g.store.(*CachedStore)
	if !ok {
		return false
	}
	g.cache = cs
	g.state = cs.EnableStatePolicy()
	return true
}

// StateCache reports the graph's cached store and whether the state-aware
// policy is active on it.
func (g *Graph[V]) StateCache() (*CachedStore, bool) {
	return g.cache, g.state != nil
}

// blockOf names the device block holding the start of v's adjacency extent.
// Extents are far smaller than a block at the repository defaults (degree x
// record size vs 4 KiB), so counting only the first block keeps the hot path
// to one division without losing precision where it matters.
//
//lint:hotpath
func (g *Graph[V]) blockOf(v V) (int64, bool) {
	if g.state == nil {
		return 0, false
	}
	off, n := g.extentOf(v)
	if n == 0 {
		return 0, false
	}
	return off / g.cache.blockSize, true
}

// SettleSink implements graph.SettleProvider: the graph is its own settle
// sink once the state-aware policy is active, nil (no per-push notification
// overhead) otherwise.
func (g *Graph[V]) SettleSink() graph.Settler {
	if g.state == nil {
		return nil
	}
	return g
}

// VertexQueued implements graph.Settler: a visitor for v entered the engine,
// so v's block gained pending work.
//
//lint:hotpath
func (g *Graph[V]) VertexQueued(v uint64) {
	if b, ok := g.blockOf(V(v)); ok {
		g.state.Queued(b)
	}
}

// VertexSettled implements graph.Settler: a visitor for v was visited or
// dropped stale, releasing its claim on the block.
//
//lint:hotpath
func (g *Graph[V]) VertexSettled(v uint64) {
	if b, ok := g.blockOf(V(v)); ok {
		g.state.Settled(b)
	}
}

var (
	_ graph.Settler        = (*Graph[uint32])(nil)
	_ graph.SettleProvider = (*Graph[uint32])(nil)
)
